// Name-space reduction (renaming) built on k-set agreement — the paper's
// Section I names renaming as the practical use of bounded-disagreement
// primitives. Twelve workers boot with 64-bit identifiers drawn from a
// huge sparse space; the cluster wants a small dense label space.
//
// Protocol (two phases, both using only the kset public API):
//
//  1. k-set agreement on the proposed identifiers. The run's synchrony
//     (here: a Psrcs(3)-grade skeleton) bounds the surviving identifiers
//     by k = MinK, no matter how many workers participate.
//  2. Each worker maps its decided identifier to its rank among the
//     (at most k) surviving identifiers — a name in {0..k-1}.
//
// The result: a 64-bit name space reduced to at most MinK dense labels,
// with labels consistent across every worker that decided the same value.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"kset"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(42))

	const workers = 12
	ids := make([]int64, workers)
	for i := range ids {
		ids[i] = rng.Int63() // sparse 64-bit boot identifiers
	}

	// A random stable skeleton with three root components (no noise
	// prefix, so no early value leakage across components): the network
	// guarantees Psrcs(k) for k = MinK >= 3.
	adv := kset.RandomSources(workers, 3, 0, 0, rng)

	out, err := kset.Solve(adv, ids)
	if err != nil {
		log.Fatal(err)
	}
	if err := out.Check(out.MinK); err != nil {
		log.Fatal(err)
	}

	// Phase 2: dense ranks over the surviving identifiers.
	survivors := out.DistinctDecisions()
	sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })
	rank := make(map[int64]int, len(survivors))
	for r, v := range survivors {
		rank[v] = r
	}

	fmt.Printf("%d workers, %d-bit sparse ids -> %d dense labels "+
		"(skeleton MinK = %d)\n\n", workers, 63, len(survivors), out.MinK)
	for i := 0; i < out.N; i++ {
		fmt.Printf("  worker %-2d id %-20d -> label %d (decided round %d)\n",
			i+1, out.Proposals[i], rank[out.Decisions[i]], out.DecideRounds[i])
	}
	fmt.Printf("\nname space reduced from 2^63 to %d labels; "+
		"at most MinK = %d labels were possible ✓\n", len(survivors), out.MinK)
}
