// Chaos: Algorithm 1 under a non-stabilizing churn adversary, with live
// invariant checking every round. The adversary injects fresh random
// extra edges forever; only the core skeleton is permanent. The paper's
// approximation guarantees are predicate-independent ("our algorithm
// yields a correct approximation atop of any communication predicate"),
// so every round we re-check, from outside the algorithm:
//
//   - Lemma 6 (no invented information): every labeled edge in every
//     approximation was a real skeleton edge at its label round;
//   - eq. (1): the observed skeleton only shrinks;
//   - decisions, once taken, never change and stay within MinK.
//
// This example uses the executor-level API re-exported by the facade: a
// custom Config with an Observer callback.
package main

import (
	"fmt"
	"log"

	"kset"
)

func main() {
	log.SetFlags(0)

	const n = 8
	skel := buildCore(n)
	churn := kset.NewChurn(skel, 0.25, 777)

	// Track the skeleton ourselves through the observer and snapshot it
	// per round for the Lemma 6 check.
	observed := make([]*kset.Digraph, 0, 64)
	skeleton := kset.CompleteDigraph(n)
	decided := map[int]int64{}

	cfg := kset.Config{
		Adversary:  churn,
		NewProcess: kset.NewFactory(kset.SeqProposals(n), kset.Options{}),
		MaxRounds:  60,
		Observer: kset.ObserverFunc(func(r int, g *kset.Digraph, procs []kset.Algorithm) {
			prev := skeleton.Clone()
			skeleton.IntersectWith(g)
			if !skeleton.SubgraphOf(prev) {
				log.Fatalf("round %d: skeleton grew — eq. (1) violated", r)
			}
			observed = append(observed, skeleton.Clone())

			for i, a := range procs {
				p := a.(*kset.Process)
				p.Approx().ForEachEdge(func(u, v, label int) {
					if !observed[label-1].HasEdge(u, v) {
						log.Fatalf("round %d: p%d invented edge p%d-%d->p%d (Lemma 6)",
							r, i+1, u+1, label, v+1)
					}
				})
				if p.Decided() {
					val, _ := p.Decision()
					if old, ok := decided[i]; ok && old != val {
						log.Fatalf("round %d: p%d changed decision %d -> %d", r, i+1, old, val)
					}
					decided[i] = val
				}
			}
		}),
		StopWhen: kset.AllDecided,
	}

	res, err := kset.RunSequential(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("churn run finished after %d rounds; skeleton converged to the core: %v\n",
		res.Rounds, skeleton.Equal(skel))
	values := map[int64][]int{}
	for i, a := range res.Procs {
		p := a.(*kset.Process)
		v, r := p.Decision()
		values[v] = append(values[v], i+1)
		fmt.Printf("  p%d decided %d in round %d (%s)\n", i+1, v, r, p.DecidedVia())
	}
	minK := kset.MinK(skel)
	fmt.Printf("\ndistinct values: %d (MinK of the core: %d)\n", len(values), minK)
	if len(values) > minK {
		log.Fatal("k-agreement violated")
	}
	fmt.Println("per-round invariants (Lemma 6, eq. (1), irrevocability) all held ✓")
}

// buildCore wires an 8-process skeleton: ring {p1,p2,p3}, ring {p4,p5},
// and a chain p5 -> p6 -> p7 -> p8, self-loops everywhere.
func buildCore(n int) *kset.Digraph {
	g := kset.NewFullDigraph(n)
	g.AddSelfLoops()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 3)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(6, 7)
	return g
}
