// Partitioned replicas: the paper's own motivating scenario (Section I) —
// "partitionable systems that need to reach consensus in every
// partition". A nine-replica deployment is split by a network fault into
// three isolated segments. Classic consensus is impossible system-wide,
// but k-set agreement with k = 3 is exactly achievable: Algorithm 1,
// without ever being told k, converges to one configuration value per
// partition.
package main

import (
	"fmt"
	"log"

	"kset"
)

func main() {
	log.SetFlags(0)

	const replicas = 9
	const segments = 3

	// Each replica proposes the configuration epoch it last saw.
	proposals := []int64{107, 103, 109, 204, 201, 208, 302, 306, 305}

	adv := kset.PartitionEven(replicas, segments)
	out, err := kset.Solve(adv, proposals)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network split into %d segments; MinK of the skeleton: %d\n\n",
		segments, out.MinK)
	for i := 0; i < out.N; i++ {
		fmt.Printf("  replica %d proposed epoch %d -> adopted epoch %d (round %d)\n",
			i+1, out.Proposals[i], out.Decisions[i], out.DecideRounds[i])
	}

	fmt.Printf("\nepochs in use after agreement: %v\n", out.DistinctDecisions())
	if err := out.Check(segments); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("each partition agreed internally on its minimum epoch — "+
		"%d-set agreement verified ✓\n", segments)

	// The same system healed (one partition = complete graph) reaches
	// full consensus: MinK drops to 1.
	healed, err := kset.Solve(kset.Complete(replicas), proposals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter healing: decisions %v (consensus on the global minimum)\n",
		healed.DistinctDecisions())
	if err := healed.Check(1); err != nil {
		log.Fatal(err)
	}
}
