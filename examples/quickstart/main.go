// Quickstart: solve k-set agreement with the public kset API in a dozen
// lines. Six processes propose distinct values and run Algorithm 1 on
// the paper's Figure 1 run, whose stable skeleton satisfies Psrcs(3):
// at most three distinct values may be decided (here: two).
package main

import (
	"fmt"
	"log"

	"kset"
)

func main() {
	log.SetFlags(0)

	adv := kset.Figure1() // a 6-process run satisfying Psrcs(3)
	out, err := kset.Solve(adv, []int64{10, 20, 30, 40, 50, 60})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("finished after %d rounds\n", out.Rounds)
	for i := 0; i < out.N; i++ {
		fmt.Printf("  p%d proposed %d, decided %d in round %d\n",
			i+1, out.Proposals[i], out.Decisions[i], out.DecideRounds[i])
	}
	fmt.Printf("distinct decisions: %v (bound: MinK = %d)\n",
		out.DistinctDecisions(), out.MinK)
	fmt.Printf("stable skeleton has %d root components, stabilized at round %d\n",
		out.RootComps, out.RST)

	// The run's correctness can be asserted programmatically:
	if err := out.Check(3); err != nil { // 3-agreement + validity + termination
		log.Fatal(err)
	}
	fmt.Println("3-set agreement verified ✓")
}
