package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: kset
BenchmarkHotTransition/n=8-8         	  500000	      2000 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotTransition/n=8-8         	  500000	      2100 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotTransition/n=8-8         	  500000	      1900 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotPrune-8                  	  100000	     10000 ns/op	      64 B/op	       2 allocs/op
PASS
ok  	kset	1.234s
`

func writeBaseline(t *testing.T, dir string) string {
	t.Helper()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "baseline.json")
	var out bytes.Buffer
	if err := run([]string{"-record", "-input", in, "-out", base}, &out); err != nil {
		t.Fatal(err)
	}
	return base
}

func TestRecordProducesMedians(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir)
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	tr, ok := b.Benchmarks["BenchmarkHotTransition/n=8"]
	if !ok {
		t.Fatalf("missing benchmark (GOMAXPROCS suffix not stripped?): %v", b.Benchmarks)
	}
	if tr.NsPerOp != 2000 || tr.AllocsPerOp != 0 || tr.Samples != 3 {
		t.Fatalf("median aggregation wrong: %+v", tr)
	}
	if b.Benchmarks["BenchmarkHotPrune"].AllocsPerOp != 2 {
		t.Fatalf("allocs not parsed: %+v", b.Benchmarks["BenchmarkHotPrune"])
	}
}

func compareWith(t *testing.T, base, benchText string, extraArgs ...string) (string, error) {
	t.Helper()
	dir := t.TempDir()
	in := filepath.Join(dir, "new.txt")
	if err := os.WriteFile(in, []byte(benchText), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	args := append([]string{"-compare", base, "-input", in}, extraArgs...)
	err := run(args, &out)
	return out.String(), err
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := writeBaseline(t, t.TempDir())
	newRun := strings.ReplaceAll(sampleBench, "2000 ns/op", "2200 ns/op") // +10%
	out, err := compareWith(t, base, newRun)
	if err != nil {
		t.Fatalf("within-tolerance run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "benchmark gate PASS") {
		t.Fatalf("missing PASS line:\n%s", out)
	}
}

func TestCompareFailsOnNsRegression(t *testing.T) {
	base := writeBaseline(t, t.TempDir())
	slow := strings.NewReplacer(
		"2000 ns/op", "3000 ns/op",
		"2100 ns/op", "3100 ns/op",
		"1900 ns/op", "2900 ns/op").Replace(sampleBench)
	out, err := compareWith(t, base, slow)
	if err == nil {
		t.Fatalf("+50%% ns/op passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "FAIL ns/op") {
		t.Fatalf("missing ns verdict:\n%s", out)
	}
}

func TestCompareFailsOnZeroAllocRegression(t *testing.T) {
	base := writeBaseline(t, t.TempDir())
	alloc := strings.ReplaceAll(sampleBench, "0 allocs/op", "1 allocs/op")
	out, err := compareWith(t, base, alloc)
	if err == nil {
		t.Fatalf("new allocation on a 0-alloc path passed:\n%s", out)
	}
	if !strings.Contains(out, "0-alloc path now allocates") {
		t.Fatalf("missing 0-alloc verdict:\n%s", out)
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	base := writeBaseline(t, t.TempDir())
	gone := strings.ReplaceAll(sampleBench, "BenchmarkHotPrune", "BenchmarkRenamed")
	out, err := compareWith(t, base, gone)
	if err == nil {
		t.Fatalf("missing benchmark passed:\n%s", out)
	}
	if !strings.Contains(out, "missing from new run") {
		t.Fatalf("missing-benchmark verdict absent:\n%s", out)
	}
}

func TestCompareWritesReport(t *testing.T) {
	base := writeBaseline(t, t.TempDir())
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	if _, err := compareWith(t, base, sampleBench, "-report", report); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var cmp Comparison
	if err := json.Unmarshal(raw, &cmp); err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 2 || len(cmp.Failures) != 0 {
		t.Fatalf("report content: %+v", cmp)
	}
}

func TestFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Fatal("neither -record nor -compare rejected? no")
	}
	if err := run([]string{"-record", "-compare", "x"}, &out); err == nil {
		t.Fatal("both -record and -compare accepted")
	}
}
