// Command benchdiff is the CI benchmark-regression gate: it parses
// `go test -bench` output, records a committed baseline, and compares
// later runs against it with benchstat-style medians.
//
// The gated set is the BenchmarkHot family (zero-alloc algorithm hot
// paths) plus BenchmarkTransportRound (round latency of the wire layer
// on both transports). Record the baseline (bench-baseline.json at the
// repo root):
//
//	go test -run '^$' -bench 'BenchmarkHot|BenchmarkTransportRound' \
//	    -count 5 -benchmem . > bench.txt
//	go run ./cmd/benchdiff -record -input bench.txt -out bench-baseline.json
//
// Gate a run against it (nonzero exit on regression):
//
//	go run ./cmd/benchdiff -compare bench-baseline.json -input bench-new.txt \
//	    -tolerance 0.15 -report bench-report.json
//
// Gate rules, per benchmark present in the baseline:
//
//   - median ns/op more than -tolerance (default 15%) above baseline → FAIL
//   - allocs/op > 0 where the baseline is 0 (the zero-allocation hot
//     paths pinned since PR 1) → FAIL
//   - allocs/op above a nonzero baseline median → FAIL (allocation
//     counts are deterministic; any growth is a real regression)
//   - benchmark missing from the new run → FAIL
//
// Improvements and new benchmarks are reported but never fail. The
// -report file is a machine-readable comparison for CI artifacts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Baseline is the committed benchmark reference.
type Baseline struct {
	// Note documents how the baseline was produced.
	Note       string               `json:"note,omitempty"`
	Benchmarks map[string]BenchStat `json:"benchmarks"`
}

// BenchStat is one benchmark's aggregated samples (medians).
type BenchStat struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// Comparison is the -report document.
type Comparison struct {
	Tolerance float64  `json:"tolerance"`
	Rows      []Row    `json:"rows"`
	Failures  []string `json:"failures"`
}

// Row compares one benchmark against its baseline.
type Row struct {
	Name      string  `json:"name"`
	BaseNs    float64 `json:"base_ns_per_op"`
	NewNs     float64 `json:"new_ns_per_op"`
	DeltaPct  float64 `json:"delta_pct"`
	BaseAlloc int64   `json:"base_allocs_per_op"`
	NewAlloc  int64   `json:"new_allocs_per_op"`
	Verdict   string  `json:"verdict"` // ok | improved | FAIL reason
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	record := fs.Bool("record", false, "record a baseline instead of comparing")
	compare := fs.String("compare", "", "baseline JSON to compare against")
	input := fs.String("input", "", "go test -bench output to read (default stdin)")
	out := fs.String("out", "", "where -record writes the baseline (default stdout)")
	report := fs.String("report", "", "where -compare writes the JSON comparison (optional)")
	tolerance := fs.Float64("tolerance", 0.15, "allowed fractional ns/op regression")
	note := fs.String("note", "", "free-form note stored in a recorded baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *record == (*compare != "") {
		return fmt.Errorf("need exactly one of -record or -compare")
	}

	in := io.Reader(os.Stdin)
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	stats, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(stats) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}

	if *record {
		base := Baseline{Note: *note, Benchmarks: stats}
		raw, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if *out == "" {
			_, err = stdout.Write(raw)
			return err
		}
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %d benchmarks to %s\n", len(stats), *out)
		return nil
	}

	raw, err := os.ReadFile(*compare)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", *compare, err)
	}
	cmp := diff(base, stats, *tolerance)
	printComparison(stdout, cmp)
	if *report != "" {
		rep, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*report, append(rep, '\n'), 0o644); err != nil {
			return err
		}
	}
	if len(cmp.Failures) > 0 {
		return fmt.Errorf("%d benchmark regression(s)", len(cmp.Failures))
	}
	fmt.Fprintf(stdout, "benchmark gate PASS: %d benchmarks within tolerance %.0f%%\n",
		len(cmp.Rows), *tolerance*100)
	return nil
}

// benchLine matches `go test -bench -benchmem` result lines, e.g.
// "BenchmarkHotTransition/n=32-8  123456  9876 ns/op  12 B/op  0 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

type samples struct {
	ns     []float64
	bytes  []int64
	allocs []int64
}

// parseBench aggregates repeated samples (-count N) per benchmark name
// (GOMAXPROCS suffix stripped) into medians.
func parseBench(r io.Reader) (map[string]BenchStat, error) {
	acc := map[string]*samples{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		s := acc[m[1]]
		if s == nil {
			s = &samples{}
			acc[m[1]] = s
		}
		s.ns = append(s.ns, ns)
		s.bytes = append(s.bytes, parseCount(m[3]))
		s.allocs = append(s.allocs, parseCount(m[4]))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]BenchStat{}
	for name, s := range acc {
		out[name] = BenchStat{
			NsPerOp:     medianF(s.ns),
			BytesPerOp:  medianI(s.bytes),
			AllocsPerOp: medianI(s.allocs),
			Samples:     len(s.ns),
		}
	}
	return out, nil
}

func parseCount(s string) int64 {
	if s == "" {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return int64(v)
}

func medianF(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

func medianI(v []int64) int64 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v[len(v)/2]
}

// diff applies the gate rules.
func diff(base Baseline, got map[string]BenchStat, tol float64) Comparison {
	cmp := Comparison{Tolerance: tol}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		g, ok := got[name]
		if !ok {
			cmp.Failures = append(cmp.Failures, fmt.Sprintf("%s: missing from new run", name))
			cmp.Rows = append(cmp.Rows, Row{Name: name, BaseNs: b.NsPerOp, BaseAlloc: b.AllocsPerOp, Verdict: "FAIL missing from new run"})
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (g.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		row := Row{
			Name: name, BaseNs: b.NsPerOp, NewNs: g.NsPerOp, DeltaPct: delta * 100,
			BaseAlloc: b.AllocsPerOp, NewAlloc: g.AllocsPerOp, Verdict: "ok",
		}
		switch {
		case b.AllocsPerOp == 0 && g.AllocsPerOp > 0:
			row.Verdict = fmt.Sprintf("FAIL 0-alloc path now allocates %d/op", g.AllocsPerOp)
		case g.AllocsPerOp > b.AllocsPerOp:
			row.Verdict = fmt.Sprintf("FAIL allocs %d -> %d per op", b.AllocsPerOp, g.AllocsPerOp)
		case delta > tol:
			row.Verdict = fmt.Sprintf("FAIL ns/op +%.1f%% (tolerance %.0f%%)", delta*100, tol*100)
		case delta < -0.10:
			row.Verdict = "improved"
		}
		if strings.HasPrefix(row.Verdict, "FAIL") {
			cmp.Failures = append(cmp.Failures, fmt.Sprintf("%s: %s", name, row.Verdict))
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	// New benchmarks are informational.
	for name, g := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			cmp.Rows = append(cmp.Rows, Row{Name: name, NewNs: g.NsPerOp, NewAlloc: g.AllocsPerOp, Verdict: "new (not gated)"})
		}
	}
	return cmp
}

func printComparison(w io.Writer, cmp Comparison) {
	fmt.Fprintf(w, "%-44s %14s %14s %8s %7s %7s  %s\n",
		"benchmark", "base ns/op", "new ns/op", "delta", "allocs", "→", "verdict")
	for _, r := range cmp.Rows {
		fmt.Fprintf(w, "%-44s %14.1f %14.1f %7.1f%% %7d %7d  %s\n",
			r.Name, r.BaseNs, r.NewNs, r.DeltaPct, r.BaseAlloc, r.NewAlloc, r.Verdict)
	}
}
