package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestFigure1Adversary pins the default run's decision table and
// skeleton summary (the schedule is deterministic).
func TestFigure1Adversary(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatalf("err = %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"run of 6 processes, 8 rounds, decisions [1 2]",
		"skeleton stabilized at round 3; root components: 2; MinK: 3",
		"k-agreement: 2 distinct decision(s) <= MinK=3",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output lacks %q:\n%s", want, s)
		}
	}
}

// TestWitnessNote pins that the E10 witness triggers the guard-flaw NOTE
// under the published guard and passes under -conservative.
func TestWitnessNote(t *testing.T) {
	var faithful bytes.Buffer
	if err := run([]string{"-adversary", "witness"}, &faithful); err != nil {
		t.Fatalf("err = %v\n%s", err, faithful.String())
	}
	if !strings.Contains(faithful.String(), "NOTE:") {
		t.Fatalf("witness did not trigger the guard-flaw NOTE:\n%s", faithful.String())
	}
	var cons bytes.Buffer
	if err := run([]string{"-adversary", "witness", "-conservative"}, &cons); err != nil {
		t.Fatalf("err = %v\n%s", err, cons.String())
	}
	if strings.Contains(cons.String(), "NOTE:") {
		t.Fatalf("conservative guard still shows the flaw:\n%s", cons.String())
	}
}

// TestRecordReplayRoundTrip records a random run to a runfile, replays
// it, and checks the two executions printed identical outcomes.
func TestRecordReplayRoundTrip(t *testing.T) {
	ksr := filepath.Join(t.TempDir(), "run.ksr")
	var recorded bytes.Buffer
	if err := run([]string{"-adversary", "random", "-n", "8", "-seed", "9",
		"-record", ksr}, &recorded); err != nil {
		t.Fatalf("err = %v\n%s", err, recorded.String())
	}
	var replayed bytes.Buffer
	if err := run([]string{"-replay", ksr}, &replayed); err != nil {
		t.Fatalf("err = %v\n%s", err, replayed.String())
	}
	// The replay output must match the original below the "recorded run"
	// banner line.
	rec := recorded.String()
	rec = rec[strings.Index(rec, "\n")+1:]
	if rec != replayed.String() {
		t.Fatalf("replayed outcome differs:\n--- recorded ---\n%s\n--- replayed ---\n%s",
			rec, replayed.String())
	}
}

// TestAdversarySelectionErrors pins the usage error paths.
func TestAdversarySelectionErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-adversary", "nope"}, &out); err == nil {
		t.Fatal("no error for an unknown adversary")
	}
	out.Reset()
	if err := run([]string{"-adversary", "churn", "-record", filepath.Join(t.TempDir(), "x.ksr")}, &out); err == nil {
		t.Fatal("no error recording a non-eventually-constant adversary")
	}
	out.Reset()
	if err := run([]string{"-replay", filepath.Join(t.TempDir(), "missing.ksr")}, &out); err == nil {
		t.Fatal("no error replaying a missing runfile")
	}
}

// TestTraceFlag smoke-checks the per-round trace path.
func TestTraceFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-adversary", "complete", "-n", "3", "-trace"}, &out); err != nil {
		t.Fatalf("err = %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "--- round 1") {
		t.Fatalf("trace output missing round banners:\n%s", out.String())
	}
}
