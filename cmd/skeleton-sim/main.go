// Command skeleton-sim runs one instrumented simulation of Algorithm 1
// under a selectable adversary and prints the outcome: decisions, rounds,
// stable skeleton, root components, MinK, and (optionally) wire traffic.
//
// Usage examples:
//
//	skeleton-sim -adversary figure1
//	skeleton-sim -adversary lowerbound -n 8 -k 3
//	skeleton-sim -adversary random -n 16 -roots 2 -noise 5 -seed 7
//	skeleton-sim -adversary churn -n 10 -seed 3 -meter
//	skeleton-sim -adversary partition -n 9 -blocks 3
//	skeleton-sim -adversary eventual -n 6 -prefix 6
//	skeleton-sim -adversary crash -n 8 -crashes 3
//	skeleton-sim -adversary witness            (the E10 counterexample)
//
// Runs of eventually-constant adversaries can be recorded to a runfile
// and replayed bit-identically (useful for sharing counterexamples —
// cmd/ksetcheck emits its shrunk schedules in exactly this format):
//
//	skeleton-sim -adversary random -n 12 -seed 9 -record bad.ksr
//	skeleton-sim -replay bad.ksr -trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/rounds"
	"kset/internal/runfile"
	"kset/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skeleton-sim: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("skeleton-sim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		advName = fs.String("adversary", "figure1",
			"figure1|complete|isolation|lowerbound|random|singlesource|churn|partition|eventual|crash|witness")
		n            = fs.Int("n", 6, "number of processes")
		k            = fs.Int("k", 2, "k for the lowerbound adversary")
		roots        = fs.Int("roots", 1, "root components for the random adversary")
		noise        = fs.Int("noise", 0, "noisy prefix rounds")
		noiseP       = fs.Float64("noisep", 0.3, "noise edge probability")
		blocks       = fs.Int("blocks", 2, "partition blocks")
		prefix       = fs.Int("prefix", 0, "isolation prefix for the eventual adversary")
		crashes      = fs.Int("crashes", 1, "crash count for the crash adversary")
		seed         = fs.Int64("seed", 1, "random seed")
		maxRounds    = fs.Int("rounds", 0, "round bound (0 = automatic)")
		concurrent   = fs.Bool("concurrent", false, "use the goroutine-per-process executor")
		meter        = fs.Bool("meter", false, "measure encoded message sizes")
		conservative = fs.Bool("conservative", false, "use the repaired line-28 guard (r >= 2n-1)")
		mergeOwn     = fs.Bool("mergeown", false, "merge own previous graph (ablation)")
		showSkeleton = fs.Bool("skeleton", true, "print the stable skeleton")
		record       = fs.String("record", "", "write the run to this runfile before executing")
		replay       = fs.String("replay", "", "load the run from this runfile (overrides -adversary)")
		traceRun     = fs.Bool("trace", false, "print per-round PT sets and approximation graphs")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h prints usage and exits 0, as ExitOnError did
		}
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	var adv rounds.Adversary
	if *replay != "" {
		loaded, err := runfile.ReadFile(*replay)
		if err != nil {
			return err
		}
		adv = loaded
		*advName = "replay"
		*n = loaded.N()
	}
	switch *advName {
	case "replay":
		// Loaded above.
	case "figure1":
		adv = adversary.Figure1()
		*n = 6
	case "complete":
		adv = adversary.Complete(*n)
	case "isolation":
		adv = adversary.Isolation(*n)
	case "lowerbound":
		adv = adversary.LowerBound(*n, *k)
	case "random":
		adv = adversary.RandomSources(*n, *roots, *noise, *noiseP, rng)
	case "singlesource":
		adv = adversary.RandomSingleSource(*n, *noise, 0.2, *noiseP, rng)
	case "churn":
		adv = adversary.NewChurn(graph.RandomRootedSkeleton(*n, *roots, rng), *noiseP, *seed)
	case "partition":
		adv = adversary.Partition(*n, adversary.EvenPartition(*n, *blocks))
	case "eventual":
		adv = adversary.Eventual(adversary.Complete(*n), *prefix)
	case "crash":
		crashRun, sched := adversary.RandomCrashes(*n, *crashes, 3, rng)
		adv = crashRun
		for p, r := range sched.Rounds {
			if r > 0 {
				fmt.Fprintf(stdout, "schedule: p%d crashes in round %d\n", p+1, r)
			}
		}
	case "witness":
		adv = adversary.ConsensusViolation()
		*n = 4
	default:
		return fmt.Errorf("unknown adversary %q", *advName)
	}

	if *record != "" {
		rec, ok := adv.(*adversary.Run)
		if !ok {
			return fmt.Errorf("-record requires an eventually-constant adversary, not %q", *advName)
		}
		if err := runfile.WriteFile(*record, rec); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded run to %s\n", *record)
	}

	proposals := sim.SeqProposals(adv.N())
	if *advName == "witness" {
		proposals = adversary.ConsensusViolationProposals()
	}

	var observer rounds.Observer
	if *traceRun {
		observer = rounds.ObserverFunc(func(r int, g *graph.Digraph, procs []rounds.Algorithm) {
			fmt.Fprintf(stdout, "--- round %d (graph: %d edges) ---\n", r, g.NumEdges())
			for i, a := range procs {
				p, ok := a.(interface {
					PT() graph.NodeSet
					Approx() *graph.Labeled
					Estimate() int64
					Decided() bool
				})
				if !ok {
					continue
				}
				status := " "
				if p.Decided() {
					status = "D"
				}
				fmt.Fprintf(stdout, "  p%-2d %s x=%-4d PT=%v G={%v}\n",
					i+1, status, p.Estimate(), p.PT(), p.Approx())
			}
		})
	}

	out, err := sim.Execute(sim.Spec{
		Observer:      observer,
		Adversary:     adv,
		Proposals:     proposals,
		MaxRounds:     *maxRounds,
		Concurrent:    *concurrent,
		MeterMessages: *meter,
		Opts: core.Options{
			ConservativeDecide: *conservative,
			MergeOwnGraph:      *mergeOwn,
		},
	})
	if err != nil {
		return err
	}

	fmt.Fprint(stdout, out.String())
	fmt.Fprintf(stdout, "skeleton stabilized at round %d; root components: %d; MinK: %d\n",
		out.RST, out.RootComps, out.MinK)
	if *showSkeleton {
		fmt.Fprintln(stdout, "stable skeleton:")
		fmt.Fprint(stdout, graph.ASCII(out.Skeleton))
	}
	if *meter {
		fmt.Fprintf(stdout, "wire: %d messages, %.1f B avg, %d B max, %d B total\n",
			out.Meter.Messages, out.Meter.Avg(), out.Meter.MaxBytes, out.Meter.TotalBytes)
	}
	if err := out.CheckTermination(); err != nil {
		return err
	}
	if err := out.CheckValidity(); err != nil {
		return err
	}
	if got := len(out.DistinctDecisions()); got > out.MinK {
		fmt.Fprintf(stdout, "NOTE: %d distinct decisions exceed MinK=%d — the E10 guard flaw "+
			"(rerun with -conservative)\n", got, out.MinK)
	} else {
		fmt.Fprintf(stdout, "k-agreement: %d distinct decision(s) <= MinK=%d\n",
			len(out.DistinctDecisions()), out.MinK)
	}
	return nil
}
