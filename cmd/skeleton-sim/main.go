// Command skeleton-sim runs one instrumented simulation of Algorithm 1
// under a selectable adversary and prints the outcome: decisions, rounds,
// stable skeleton, root components, MinK, and (optionally) wire traffic.
//
// Usage examples:
//
//	skeleton-sim -adversary figure1
//	skeleton-sim -adversary lowerbound -n 8 -k 3
//	skeleton-sim -adversary random -n 16 -roots 2 -noise 5 -seed 7
//	skeleton-sim -adversary churn -n 10 -seed 3 -meter
//	skeleton-sim -adversary partition -n 9 -blocks 3
//	skeleton-sim -adversary eventual -n 6 -prefix 6
//	skeleton-sim -adversary crash -n 8 -crashes 3
//	skeleton-sim -adversary witness            (the E10 counterexample)
//
// Runs of eventually-constant adversaries can be recorded to a runfile
// and replayed bit-identically (useful for sharing counterexamples):
//
//	skeleton-sim -adversary random -n 12 -seed 9 -record bad.ksr
//	skeleton-sim -replay bad.ksr -trace
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/rounds"
	"kset/internal/runfile"
	"kset/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skeleton-sim: ")
	var (
		advName = flag.String("adversary", "figure1",
			"figure1|complete|isolation|lowerbound|random|singlesource|churn|partition|eventual|crash|witness")
		n            = flag.Int("n", 6, "number of processes")
		k            = flag.Int("k", 2, "k for the lowerbound adversary")
		roots        = flag.Int("roots", 1, "root components for the random adversary")
		noise        = flag.Int("noise", 0, "noisy prefix rounds")
		noiseP       = flag.Float64("noisep", 0.3, "noise edge probability")
		blocks       = flag.Int("blocks", 2, "partition blocks")
		prefix       = flag.Int("prefix", 0, "isolation prefix for the eventual adversary")
		crashes      = flag.Int("crashes", 1, "crash count for the crash adversary")
		seed         = flag.Int64("seed", 1, "random seed")
		maxRounds    = flag.Int("rounds", 0, "round bound (0 = automatic)")
		concurrent   = flag.Bool("concurrent", false, "use the goroutine-per-process executor")
		meter        = flag.Bool("meter", false, "measure encoded message sizes")
		conservative = flag.Bool("conservative", false, "use the repaired line-28 guard (r >= 2n-1)")
		mergeOwn     = flag.Bool("mergeown", false, "merge own previous graph (ablation)")
		showSkeleton = flag.Bool("skeleton", true, "print the stable skeleton")
		record       = flag.String("record", "", "write the run to this runfile before executing")
		replay       = flag.String("replay", "", "load the run from this runfile (overrides -adversary)")
		traceRun     = flag.Bool("trace", false, "print per-round PT sets and approximation graphs")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var adv rounds.Adversary
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		run, err := runfile.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		adv = run
		*advName = "replay"
		*n = run.N()
	}
	switch *advName {
	case "replay":
		// Loaded above.
	case "figure1":
		adv = adversary.Figure1()
		*n = 6
	case "complete":
		adv = adversary.Complete(*n)
	case "isolation":
		adv = adversary.Isolation(*n)
	case "lowerbound":
		adv = adversary.LowerBound(*n, *k)
	case "random":
		adv = adversary.RandomSources(*n, *roots, *noise, *noiseP, rng)
	case "singlesource":
		adv = adversary.RandomSingleSource(*n, *noise, 0.2, *noiseP, rng)
	case "churn":
		adv = adversary.NewChurn(graph.RandomRootedSkeleton(*n, *roots, rng), *noiseP, *seed)
	case "partition":
		adv = adversary.Partition(*n, adversary.EvenPartition(*n, *blocks))
	case "eventual":
		adv = adversary.Eventual(adversary.Complete(*n), *prefix)
	case "crash":
		run, sched := adversary.RandomCrashes(*n, *crashes, 3, rng)
		adv = run
		for p, r := range sched.Rounds {
			if r > 0 {
				fmt.Printf("schedule: p%d crashes in round %d\n", p+1, r)
			}
		}
	case "witness":
		adv = adversary.ConsensusViolation()
		*n = 4
	default:
		log.Fatalf("unknown adversary %q", *advName)
	}

	if *record != "" {
		run, ok := adv.(*adversary.Run)
		if !ok {
			log.Fatalf("-record requires an eventually-constant adversary, not %q", *advName)
		}
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		if err := runfile.Write(f, run); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded run to %s\n", *record)
	}

	proposals := sim.SeqProposals(adv.N())
	if *advName == "witness" {
		proposals = adversary.ConsensusViolationProposals()
	}

	var observer rounds.Observer
	if *traceRun {
		observer = rounds.ObserverFunc(func(r int, g *graph.Digraph, procs []rounds.Algorithm) {
			fmt.Printf("--- round %d (graph: %d edges) ---\n", r, g.NumEdges())
			for i, a := range procs {
				p, ok := a.(interface {
					PT() graph.NodeSet
					Approx() *graph.Labeled
					Estimate() int64
					Decided() bool
				})
				if !ok {
					continue
				}
				status := " "
				if p.Decided() {
					status = "D"
				}
				fmt.Printf("  p%-2d %s x=%-4d PT=%v G={%v}\n",
					i+1, status, p.Estimate(), p.PT(), p.Approx())
			}
		})
	}

	out, err := sim.Execute(sim.Spec{
		Observer:      observer,
		Adversary:     adv,
		Proposals:     proposals,
		MaxRounds:     *maxRounds,
		Concurrent:    *concurrent,
		MeterMessages: *meter,
		Opts: core.Options{
			ConservativeDecide: *conservative,
			MergeOwnGraph:      *mergeOwn,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(out.String())
	fmt.Printf("skeleton stabilized at round %d; root components: %d; MinK: %d\n",
		out.RST, out.RootComps, out.MinK)
	if *showSkeleton {
		fmt.Println("stable skeleton:")
		fmt.Print(graph.ASCII(out.Skeleton))
	}
	if *meter {
		fmt.Printf("wire: %d messages, %.1f B avg, %d B max, %d B total\n",
			out.Meter.Messages, out.Meter.Avg(), out.Meter.MaxBytes, out.Meter.TotalBytes)
	}
	if err := out.CheckTermination(); err != nil {
		log.Fatal(err)
	}
	if err := out.CheckValidity(); err != nil {
		log.Fatal(err)
	}
	if got := len(out.DistinctDecisions()); got > out.MinK {
		fmt.Printf("NOTE: %d distinct decisions exceed MinK=%d — the E10 guard flaw "+
			"(rerun with -conservative)\n", got, out.MinK)
	} else {
		fmt.Printf("k-agreement: %d distinct decision(s) <= MinK=%d\n",
			len(out.DistinctDecisions()), out.MinK)
	}
}
