// Command lowerbound explores the paper's Theorem 2 construction: the run
// in which a set L of k-1 processes hears only itself and one source s is
// heard by everyone else. It prints the stable skeleton, verifies that
// Psrcs(k) holds while Psrcs(k-1) fails, runs Algorithm 1, and shows that
// exactly k distinct values are decided — the tightness of the predicate.
//
// Usage:
//
//	lowerbound [-n 8] [-k 3] [-conservative]
package main

import (
	"flag"
	"fmt"
	"log"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/predicate"
	"kset/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lowerbound: ")
	var (
		n            = flag.Int("n", 8, "number of processes")
		k            = flag.Int("k", 3, "k of Psrcs(k); the run forces exactly k values")
		conservative = flag.Bool("conservative", false, "use the repaired line-28 guard")
	)
	flag.Parse()
	if *k < 2 || *k >= *n {
		log.Fatalf("need 2 <= k < n (got n=%d k=%d)", *n, *k)
	}

	run := adversary.LowerBound(*n, *k)
	skel := run.StableSkeleton()
	fmt.Printf("Theorem 2 construction, n=%d k=%d\n", *n, *k)
	fmt.Printf("L (hear only themselves): %v\n", adversary.LowerBoundIsolated(*k))
	fmt.Printf("2-source s: p%d (heard by every process outside L)\n\n",
		adversary.LowerBoundSource(*k)+1)
	fmt.Println("stable skeleton:")
	fmt.Print(graph.ASCII(skel))

	fmt.Printf("\nPsrcs(%d) holds: %v   Psrcs(%d) holds: %v   MinK: %d\n",
		*k, predicate.Holds(skel, *k), *k-1, predicate.Holds(skel, *k-1),
		predicate.MinK(skel))
	if S, bad := predicate.Violation(skel, *k-1); bad {
		fmt.Printf("witness violating Psrcs(%d): %v has no 2-source\n", *k-1, S)
	}

	out, err := sim.Execute(sim.Spec{
		Adversary: run,
		Proposals: sim.SeqProposals(*n),
		Opts:      core.Options{ConservativeDecide: *conservative},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(out.String())
	distinct := len(out.DistinctDecisions())
	fmt.Printf("\ndistinct decisions: %d (expected exactly %d)\n", distinct, *k)
	switch {
	case distinct == *k:
		fmt.Printf("=> Psrcs(%d) is tight: (%d)-set agreement is impossible here, "+
			"and Algorithm 1 realizes the bound.\n", *k, *k-1)
	case distinct < *k:
		fmt.Println("=> fewer values than the bound (unexpected for this construction)")
	default:
		log.Fatalf("k-agreement violated: %d > %d", distinct, *k)
	}
}
