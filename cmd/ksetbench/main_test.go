package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONSmokeDeterministic runs the E1 reproduction twice through the
// JSON path on a fixed seed with timings zeroed: the documents must be
// valid JSON, carry the experiment record, and be byte-identical.
func TestJSONSmokeDeterministic(t *testing.T) {
	args := []string{"-quick", "-trials", "2", "-seed", "1", "-only", "E1", "-json", "-timings=false"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatalf("err = %v\n%s", err, a.String())
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("-json -timings=false output is not byte-stable across runs")
	}

	var suite jsonSuite
	if err := json.Unmarshal(a.Bytes(), &suite); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, a.String())
	}
	if suite.Failures != 0 {
		t.Fatalf("suite reports %d failures", suite.Failures)
	}
	if len(suite.Experiments) != 1 || suite.Experiments[0].ID != "E1" {
		t.Fatalf("experiments = %+v, want exactly E1", suite.Experiments)
	}
	if suite.Experiments[0].Violations != 0 {
		t.Fatalf("E1 reports %d violations", suite.Experiments[0].Violations)
	}
}

// TestTextMode checks the table path renders the experiment header.
func TestTextMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-trials", "2", "-seed", "1", "-only", "E1"}, &out); err != nil {
		t.Fatalf("err = %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "=== E1") {
		t.Fatalf("missing experiment header:\n%s", out.String())
	}
}

// TestUnknownOnly pins the error path for a bad -only id.
func TestUnknownOnly(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-quick", "-only", "E99"}, &out)
	if err == nil || !strings.Contains(err.Error(), "E99") {
		t.Fatalf("err = %v, want an E99 usage error", err)
	}
}
