// Command ksetbench runs the reproduction suite E1-E16 and E20
// (DESIGN.md §3) and prints the measured tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	ksetbench [-quick] [-trials N] [-seed S] [-workers W] [-only E5] [-json] [-timings=false]
//
// With -json the suite is emitted as one JSON document instead of text
// tables, so CI and future PRs can record BENCH_*.json trajectory files:
//
//	go run ./cmd/ksetbench -quick -json > BENCH_run.json
//
// Every experiment is deterministic given -trials and -seed, for any
// -workers value (the streaming sweep engine delivers outcomes to the
// aggregators in cell order regardless of scheduling); pass
// -timings=false to also zero the per-experiment seconds, making the
// -json document byte-identical across runs and worker counts.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"kset/internal/experiments"
)

// jsonExperiment is one experiment record of the -json output.
type jsonExperiment struct {
	ID         string     `json:"id"`
	Name       string     `json:"name"`
	Seconds    float64    `json:"seconds"`
	Violations int        `json:"violations"`
	Notes      []string   `json:"notes,omitempty"`
	Header     []string   `json:"header,omitempty"`
	Rows       [][]string `json:"rows,omitempty"`
}

// jsonSuite is the top-level -json document.
type jsonSuite struct {
	Suite       string           `json:"suite"`
	Trials      int              `json:"trials"`
	Seed        int64            `json:"seed"`
	Experiments []jsonExperiment `json:"experiments"`
	Failures    int              `json:"failures"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ksetbench: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ksetbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		quick   = fs.Bool("quick", false, "reduced trial counts")
		trials  = fs.Int("trials", 0, "override trials per cell")
		seed    = fs.Int64("seed", 0, "override experiment seed")
		workers = fs.Int("workers", 0, "override sweep worker count")
		only    = fs.String("only", "", "run only the experiment with this id (e.g. E5)")
		asJSON  = fs.Bool("json", false, "emit one JSON document instead of text tables")
		timings = fs.Bool("timings", true, "record per-experiment seconds (disable for byte-stable -json output)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h prints usage and exits 0, as ExitOnError did
		}
		return err
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}

	type step struct {
		id  string
		run func() (*experiments.Result, error)
	}
	steps := []step{
		{"E1", experiments.E1Figure1},
		{"E2", func() (*experiments.Result, error) { return experiments.E2RootComponents(cfg) }},
		{"E3", func() (*experiments.Result, error) { return experiments.E3LowerBound(cfg) }},
		{"E4", func() (*experiments.Result, error) { return experiments.E4DecisionRounds(cfg) }},
		{"E5", func() (*experiments.Result, error) { return experiments.E5MessageComplexity(cfg) }},
		{"E6", func() (*experiments.Result, error) { return experiments.E6Baselines(cfg) }},
		{"E7", func() (*experiments.Result, error) { return experiments.E7Consensus(cfg) }},
		{"E8", func() (*experiments.Result, error) { return experiments.E8Eventual(cfg) }},
		{"E9", func() (*experiments.Result, error) { return experiments.E9Ablations(cfg) }},
		{"E10", func() (*experiments.Result, error) { return experiments.E10GuardFlaw(cfg) }},
		{"E11", func() (*experiments.Result, error) { return experiments.E11Convergence(cfg) }},
		{"E12", func() (*experiments.Result, error) { return experiments.E12Mobile(cfg) }},
		{"E13", func() (*experiments.Result, error) { return experiments.E13TInterval(cfg) }},
		{"E14", func() (*experiments.Result, error) { return experiments.E14PartitionMerge(cfg) }},
		{"E15", func() (*experiments.Result, error) { return experiments.E15VertexStable(cfg) }},
		{"E16", func() (*experiments.Result, error) { return experiments.E16Scaling(cfg) }},
		{"E20", func() (*experiments.Result, error) {
			// Quick mode runs the n = {128, 256} rung; the full
			// ladder to n = 1024 takes tens of minutes (BENCH_7.json).
			if *quick {
				return experiments.E20Suite(cfg)
			}
			return experiments.E20LargeN(cfg)
		}},
		{"E23", func() (*experiments.Result, error) { return experiments.E23ApproxConvergence(cfg) }},
	}

	suite := jsonSuite{
		Suite:  "k-set agreement with stable skeleton graphs — reproduction suite",
		Trials: cfg.Trials,
		Seed:   cfg.Seed,
	}
	if !*asJSON {
		fmt.Fprintf(stdout, "%s\n", suite.Suite)
		fmt.Fprintf(stdout, "trials/cell=%d seed=%d\n\n", cfg.Trials, cfg.Seed)
	}
	ran := 0
	for _, s := range steps {
		if *only != "" && s.id != *only {
			continue
		}
		ran++
		start := time.Now()
		res, err := s.run()
		if err != nil {
			return fmt.Errorf("%s: %w", s.id, err)
		}
		secs := time.Since(start).Seconds()
		if !*timings {
			secs = 0
		}
		if res.Violations != 0 {
			suite.Failures++
		}
		if *asJSON {
			rec := jsonExperiment{
				ID:         s.id,
				Name:       res.Name,
				Seconds:    secs,
				Violations: res.Violations,
				Notes:      res.Notes,
			}
			if res.Table != nil {
				rec.Header = res.Table.Header
				rec.Rows = res.Table.Rows()
			}
			suite.Experiments = append(suite.Experiments, rec)
			continue
		}
		fmt.Fprintf(stdout, "=== %s (%.1fs)\n", res.Name, secs)
		fmt.Fprintln(stdout, res.Table.Render())
		for _, note := range res.Notes {
			fmt.Fprintf(stdout, "  note: %s\n", note)
		}
		if res.Violations != 0 {
			fmt.Fprintf(stdout, "  *** %d VIOLATIONS ***\n", res.Violations)
		}
		fmt.Fprintln(stdout)
	}
	if ran == 0 {
		return fmt.Errorf("-only %s matches no experiment (have E1..E16, E20, E23)", *only)
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(suite); err != nil {
			return err
		}
	}
	if suite.Failures > 0 {
		return fmt.Errorf("%d experiment(s) reported violations", suite.Failures)
	}
	return nil
}
