// Command ksetbench runs the reproduction suite E1-E12 (DESIGN.md §3) and
// prints the measured tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	ksetbench [-quick] [-trials N] [-seed S] [-only E5]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"kset/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ksetbench: ")
	var (
		quick  = flag.Bool("quick", false, "reduced trial counts")
		trials = flag.Int("trials", 0, "override trials per cell")
		seed   = flag.Int64("seed", 0, "override experiment seed")
		only   = flag.String("only", "", "run only the experiment with this prefix (e.g. E5)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	type step struct {
		id  string
		run func() (*experiments.Result, error)
	}
	steps := []step{
		{"E1", experiments.E1Figure1},
		{"E2", func() (*experiments.Result, error) { return experiments.E2RootComponents(cfg) }},
		{"E3", func() (*experiments.Result, error) { return experiments.E3LowerBound(cfg) }},
		{"E4", func() (*experiments.Result, error) { return experiments.E4DecisionRounds(cfg) }},
		{"E5", func() (*experiments.Result, error) { return experiments.E5MessageComplexity(cfg) }},
		{"E6", func() (*experiments.Result, error) { return experiments.E6Baselines(cfg) }},
		{"E7", func() (*experiments.Result, error) { return experiments.E7Consensus(cfg) }},
		{"E8", func() (*experiments.Result, error) { return experiments.E8Eventual(cfg) }},
		{"E9", func() (*experiments.Result, error) { return experiments.E9Ablations(cfg) }},
		{"E10", func() (*experiments.Result, error) { return experiments.E10GuardFlaw(cfg) }},
		{"E11", func() (*experiments.Result, error) { return experiments.E11Convergence(cfg) }},
		{"E12", func() (*experiments.Result, error) { return experiments.E12Mobile(cfg) }},
	}

	fmt.Printf("k-set agreement with stable skeleton graphs — reproduction suite\n")
	fmt.Printf("trials/cell=%d seed=%d\n\n", cfg.Trials, cfg.Seed)
	failures := 0
	for _, s := range steps {
		if *only != "" && s.id != *only {
			continue
		}
		start := time.Now()
		res, err := s.run()
		if err != nil {
			log.Fatalf("%s: %v", s.id, err)
		}
		fmt.Printf("=== %s (%.1fs)\n", res.Name, time.Since(start).Seconds())
		fmt.Println(res.Table.Render())
		for _, note := range res.Notes {
			fmt.Printf("  note: %s\n", note)
		}
		if res.Violations != 0 {
			fmt.Printf("  *** %d VIOLATIONS ***\n", res.Violations)
			failures++
		}
		fmt.Println()
	}
	if failures > 0 {
		os.Exit(1)
	}
}
