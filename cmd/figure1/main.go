// Command figure1 reproduces the paper's Figure 1: it executes
// Algorithm 1 on the reconstructed 6-process run where Psrcs(3) holds and
// prints the skeleton graphs G^∩2 and G^∩∞ (Figures 1a, 1b) and p6's
// approximation graphs G¹p6..G⁸p6 (Figures 1c-1h plus the convergence to
// the steady state), followed by the decision table.
//
// Usage:
//
//	figure1 [-dot] [-rounds N]
//
// With -dot, Graphviz sources are emitted instead of text.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/rounds"
	"kset/internal/skeleton"
	"kset/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figure1: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("figure1", flag.ContinueOnError)
	fs.SetOutput(stdout)
	dot := fs.Bool("dot", false, "emit Graphviz dot instead of text")
	nRounds := fs.Int("rounds", 8, "rounds of p6's approximation to show")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h prints usage and exits 0, as ExitOnError did
		}
		return err
	}

	fig := adversary.Figure1()
	const n = 6
	const p6 = 5

	// Skeletons (Figures 1a and 1b).
	tr := skeleton.NewTracker(n, true)
	for r := 1; r <= *nRounds; r++ {
		tr.Observe(r, fig.Graph(r))
	}
	stable := fig.StableSkeleton()

	if *dot {
		fmt.Fprint(stdout, graph.DOT(tr.At(2), "G_cap_2", true))
		fmt.Fprint(stdout, graph.DOT(stable, "G_cap_inf", true))
	} else {
		fmt.Fprintln(stdout, "Figure 1a — round-2 skeleton G^∩2 (self-loops omitted in the paper):")
		fmt.Fprint(stdout, graph.ASCII(tr.At(2)))
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "Figure 1b — stable skeleton G^∩∞:")
		fmt.Fprint(stdout, graph.ASCII(stable))
		fmt.Fprintf(stdout, "\nroot components: ")
		for i, rc := range graph.RootComponents(stable) {
			if i > 0 {
				fmt.Fprint(stdout, ", ")
			}
			fmt.Fprint(stdout, rc)
		}
		fmt.Fprintf(stdout, "   (Psrcs(3) holds; MinK = 3)\n\n")
	}

	// Execute Algorithm 1 and capture p6's approximations.
	procs := make([]*core.Process, n)
	factory := core.NewFactory([]int64{1, 2, 3, 4, 5, 6}, core.Options{})
	for i := range procs {
		procs[i] = factory(i).(*core.Process)
		procs[i].Init(i, n)
	}
	msgs := make([]any, n)
	figure := adversary.Figure1LabelMultisets()
	for r := 1; r <= *nRounds; r++ {
		for i, p := range procs {
			msgs[i] = p.Send(r)
		}
		g := fig.Graph(r)
		for q := 0; q < n; q++ {
			recv := make([]any, n)
			g.ForEachIn(q, func(p int) { recv[p] = msgs[p] })
			procs[q].Transition(r, recv)
		}
		approx := procs[p6].Approx()
		if *dot {
			fmt.Fprint(stdout, graph.DOTLabeled(approx, fmt.Sprintf("G%d_p6", r), true))
			continue
		}
		fmt.Fprintf(stdout, "Figure 1%c — G^%d_p6: %s\n", 'b'+byte(r), r, withoutSelfLoops(approx))
		if r <= len(figure) {
			fmt.Fprintf(stdout, "             paper labels: %v, measured: %v\n",
				figure[r-1], approx.LabelMultiset())
		}
	}

	// Run to completion for the decision table.
	res, err := rounds.RunSequential(rounds.Config{
		Adversary:  fig,
		NewProcess: core.NewFactory([]int64{1, 2, 3, 4, 5, 6}, core.Options{}),
		MaxRounds:  50,
		StopWhen:   rounds.AllDecided,
	})
	if err != nil {
		return err
	}
	oc, err := trace.Collect(res)
	if err != nil {
		return err
	}
	if !*dot {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, oc.String())
		if err := oc.Check(3); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "k-agreement (k=3), validity, termination: all hold")
	}
	return nil
}

// withoutSelfLoops renders the labeled edges of g, skipping self-loops to
// match the paper's drawing convention.
func withoutSelfLoops(g *graph.Labeled) string {
	s := ""
	g.ForEachEdge(func(u, v, l int) {
		if u == v {
			return
		}
		if s != "" {
			s += ", "
		}
		s += fmt.Sprintf("p%d-%d->p%d", u+1, l, v+1)
	})
	if s == "" {
		return "(no edges)"
	}
	return s
}
