package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestGoldenOutput pins the full text reproduction of Figure 1: the run
// is deterministic, so the output must match the checked-in golden
// byte for byte.
func TestGoldenOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatalf("err = %v\n%s", err, out.String())
	}
	want, err := os.ReadFile("testdata/figure1.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("output drifted from testdata/figure1.golden:\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), want)
	}
}

// TestDotMode checks the Graphviz path emits one digraph per figure.
func TestDotMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dot", "-rounds", "4"}, &out); err != nil {
		t.Fatalf("err = %v\n%s", err, out.String())
	}
	s := out.String()
	// G^∩2, G^∩∞, and four per-round approximation graphs.
	if got := strings.Count(s, "digraph "); got != 6 {
		t.Fatalf("%d digraph blocks, want 6:\n%s", got, s)
	}
	for _, name := range []string{`"G_cap_2"`, `"G_cap_inf"`, `"G1_p6"`, `"G4_p6"`} {
		if !strings.Contains(s, name) {
			t.Errorf("missing %s block", name)
		}
	}
}

// TestFlagErrors pins flag parsing through the testable entry point.
func TestFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("no error for an unknown flag")
	}
}
