// Command ksetcheck is the adversarial model-checker CLI (DESIGN.md §6):
// it drives the falsification engine's exhaustive explorer or schedule
// fuzzer against Algorithm 1 and, on any oracle violation, shrinks the
// failing schedule to a minimal counterexample and exports it as a
// replayable runfile plus DOT trace.
//
// Usage:
//
//	ksetcheck -mode=exhaustive [-n 3] [-depth 2] [-faithful] [-oracle sound|inverted-k] [-out DIR]
//	ksetcheck -mode=fuzz [-n 4] -budget 100000 [-seed 1] [-workers 1] [-strategy mixed] ...
//
// The default guard is the repaired conservative one (r >= 2n-1), under
// which every sound oracle holds on every schedule explored so far; pass
// -faithful to check the paper's published guard instead — the explorer
// then finds the E10 unsoundness mechanically (16 of the 4096 n=3
// depth-2 executions violate the k-bound). Pass -oracle inverted-k to
// fire-drill the pipeline: the deliberately broken oracle fails
// immediately and the shrinker reduces the failure to the trivial
// 1-process schedule.
//
// ksetcheck exits 1 when violations were found, 2 on usage errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"kset/internal/check"
	"kset/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ksetcheck: ")
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errViolations):
		os.Exit(1)
	default:
		log.Print(err)
		os.Exit(2)
	}
}

// errViolations distinguishes "the checker worked and found violations"
// from operational errors.
var errViolations = fmt.Errorf("oracle violations found")

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ksetcheck", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		mode     = fs.String("mode", "exhaustive", "exhaustive|fuzz")
		n        = fs.Int("n", 0, "number of processes (default 3 exhaustive, 4 fuzz)")
		depth    = fs.Int("depth", 2, "exhaustive: enumerated round graphs (last repeats forever)")
		budget   = fs.Int("budget", 100000, "fuzz: number of runs")
		seed     = fs.Int64("seed", 1, "fuzz: campaign base seed")
		workers  = fs.Int("workers", 1, "fuzz: sweep worker count")
		strategy = fs.String("strategy", "mixed", "fuzz: mixed|arbitrary|rooted|singlesource|mutate")
		faithful = fs.Bool("faithful", false, "check the paper's published line-28 guard (unsound, see E10) instead of the repaired one")
		oracle   = fs.String("oracle", "sound", "sound|inverted-k (inverted-k is the deliberately broken fire-drill oracle)")
		outDir   = fs.String("out", "counterexamples", "directory for shrunk counterexample artifacts")
		maxShrk  = fs.Int("maxshrink", 0, "shrinker execution budget (0 = 10000)")
		keep     = fs.Int("keep", 1, "failing runs to retain and shrink")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h prints usage and exits 0
		}
		return err
	}

	cfg := check.Config{
		Opts:    core.Options{ConservativeDecide: !*faithful},
		Oracles: check.SoundOracles(),
	}
	switch *oracle {
	case "sound":
	case "inverted-k":
		cfg.Oracles = check.OracleSet{InvertKBound: true}
	default:
		return fmt.Errorf("unknown -oracle %q (sound|inverted-k)", *oracle)
	}
	guard := "conservative"
	if *faithful {
		guard = "faithful"
	}

	var (
		failures []*check.Failure
		ran      uint64
		elapsed  time.Duration
	)
	switch *mode {
	case "exhaustive":
		if *n == 0 {
			*n = 3
		}
		start := time.Now()
		rep, err := check.Explore(check.ExploreConfig{
			N:            *n,
			Depth:        *depth,
			Check:        cfg,
			KeepFailures: *keep,
		})
		if err != nil {
			return err
		}
		elapsed = time.Since(start)
		ran = rep.Executions
		failures = rep.Failures
		fmt.Fprintf(stdout, "exhaustive: n=%d depth=%d guard=%s oracle=%s\n", *n, *depth, guard, *oracle)
		fmt.Fprintf(stdout, "configurations %d (schedules %d x proposal orders), canonical schedules %d, executions %d (%.1fx symmetry reduction)\n",
			rep.Configurations, rep.Sequences, rep.Canonical, rep.Executions, rep.Reduction())
		fmt.Fprintf(stdout, "violating runs %d, elapsed %.2fs (%.0f runs/sec)\n",
			rep.FailedRuns, elapsed.Seconds(), float64(rep.Executions)/elapsed.Seconds())

	case "fuzz":
		if *n == 0 {
			*n = 4
		}
		rep, err := check.Fuzz(check.FuzzConfig{
			N:            *n,
			Budget:       *budget,
			Seed:         *seed,
			Workers:      *workers,
			Strategy:     check.Strategy(*strategy),
			Check:        cfg,
			KeepFailures: *keep,
		})
		if err != nil {
			return err
		}
		elapsed = rep.Elapsed
		ran = uint64(rep.Runs)
		failures = rep.Failures
		fmt.Fprintf(stdout, "fuzz: n=%d budget=%d seed=%d strategy=%s workers=%d guard=%s oracle=%s\n",
			*n, *budget, *seed, *strategy, *workers, guard, *oracle)
		fmt.Fprintf(stdout, "runs %d, violating runs %d, elapsed %.2fs (%.0f runs/sec)\n",
			rep.Runs, rep.FailedRuns, elapsed.Seconds(), rep.RunsPerSec())

	default:
		return fmt.Errorf("unknown -mode %q (exhaustive|fuzz)", *mode)
	}
	_ = ran

	if len(failures) == 0 {
		fmt.Fprintf(stdout, "all oracles held\n")
		return nil
	}

	for i, fail := range failures {
		fmt.Fprintf(stdout, "\n--- failure %d (pre-shrink: n=%d, %d prefix rounds) ---\n",
			i+1, fail.Run.N(), fail.Run.PrefixLen())
		shrinkCfg := cfg
		shrinkCfg.Proposals = fail.Proposals
		res, err := check.Shrink(fail, shrinkCfg, *maxShrk)
		if err != nil {
			return err
		}
		min := res.Failure
		fmt.Fprintf(stdout, "shrunk to n=%d, %d prefix rounds, %d executed rounds (%d shrink executions, oracle %s):\n",
			min.Run.N(), min.Run.PrefixLen(), min.Outcome.Rounds, res.Executions, res.Oracle)
		fmt.Fprint(stdout, min.String())
		name := fmt.Sprintf("ce-%s-%s-%d", *mode, res.Oracle, i+1)
		paths, err := check.WriteCounterexample(*outDir, name, min)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "artifacts: %v\n", paths)
	}
	return errViolations
}
