package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kset/internal/check"
	"kset/internal/core"
	"kset/internal/runfile"
)

func TestExhaustiveN3Clean(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-mode", "exhaustive", "-n", "3", "-depth", "2", "-out", t.TempDir()}, &out)
	if err != nil {
		t.Fatalf("err = %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"exhaustive: n=3 depth=2 guard=conservative",
		"executions 4096 (6.0x symmetry reduction)",
		"violating runs 0",
		"all oracles held",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output lacks %q:\n%s", want, s)
		}
	}
}

func TestExhaustiveFaithfulFindsFlaw(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-mode", "exhaustive", "-n", "3", "-depth", "2", "-faithful", "-out", dir}, &out)
	if err != errViolations {
		t.Fatalf("err = %v, want errViolations\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "oracle k-bound") {
		t.Errorf("output lacks the k-bound shrink line:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "ce-exhaustive-k-bound-1.ksr")); err != nil {
		t.Errorf("counterexample runfile missing: %v", err)
	}
}

func TestFuzzCleanAndDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-mode", "fuzz", "-n", "4", "-budget", "500", "-seed", "7", "-out", t.TempDir()}
	if err := run(args, &a); err != nil {
		t.Fatalf("err = %v\n%s", err, a.String())
	}
	if !strings.Contains(a.String(), "violating runs 0") {
		t.Fatalf("sound oracles fired under the conservative guard:\n%s", a.String())
	}
	// Same seed, more workers: same verdict.
	if err := run(append(args, "-workers", "4"), &b); err != nil {
		t.Fatalf("err = %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "violating runs 0") {
		t.Fatalf("worker count changed the verdict:\n%s", b.String())
	}
}

// TestInvertedOracleProducesReplayableCounterexample pins the acceptance
// criterion end to end: the broken oracle yields a shrunk counterexample
// of <= 3 rounds whose runfile replays to the same violation.
func TestInvertedOracleProducesReplayableCounterexample(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-mode", "fuzz", "-n", "4", "-budget", "50", "-seed", "1",
		"-oracle", "inverted-k", "-out", dir}, &out)
	if err != errViolations {
		t.Fatalf("err = %v, want errViolations\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "shrunk to n=1, 0 prefix rounds, 1 executed rounds") {
		t.Errorf("shrinker did not reach the trivial schedule:\n%s", s)
	}

	ksr := filepath.Join(dir, "ce-fuzz-inverted-k-bound-1.ksr")
	replayed, err := runfile.ReadFile(ksr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := check.Config{
		Opts:    core.Options{ConservativeDecide: true},
		Oracles: check.OracleSet{InvertKBound: true},
	}
	fail, err := check.CheckRun(replayed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fail == nil {
		t.Fatal("replayed counterexample no longer violates")
	}
	if fail.Outcome.Rounds > 3 {
		t.Errorf("replayed counterexample needs %d rounds, want <= 3", fail.Outcome.Rounds)
	}
}

// TestHelpIsNotAnError pins that -h prints usage and returns nil (exit
// 0), matching the pre-refactor flag.ExitOnError behavior.
func TestHelpIsNotAnError(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(out.String(), "-mode") {
		t.Fatalf("usage text missing:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "nope"},
		{"-oracle", "nope"},
		{"-mode", "exhaustive", "-n", "9"},
		{"-mode", "fuzz", "-budget", "0"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil || err == errViolations {
			t.Errorf("args %v: err = %v, want a usage error", args, err)
		}
	}
}
