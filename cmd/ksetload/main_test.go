package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"kset/internal/service"
)

func TestRunRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"positional"},
		{"-mode", "no-such-mode"},
		{"-mode", "runtime", "-transport", "avian"},
		{"-mode", "runtime", "-n", "0"},
		{"-mode", "service", "-sessions", "0"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRuntimeModeMeasures(t *testing.T) {
	for _, tr := range []string{"sim", "inproc", "tcp"} {
		var out bytes.Buffer
		err := run([]string{"-mode", "runtime", "-transport", tr,
			"-n", "4", "-rounds", "20", "-trials", "1", "-json"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		var sum runtimeSummary
		if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
			t.Fatalf("%s: bad JSON %q: %v", tr, out.String(), err)
		}
		if sum.Transport != tr || sum.RoundsPerSec <= 0 {
			t.Fatalf("%s: summary %+v", tr, sum)
		}
	}
}

// TestServiceModeSmoke drives the full service-mode flow against an
// in-process ksetd core — the same path the CI gauntlet exercises
// against the real binary.
func TestServiceModeSmoke(t *testing.T) {
	svc := service.New(service.Config{Workers: 4, Queue: 128})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	var out bytes.Buffer
	err := run([]string{"-mode", "service", "-addr", srv.URL,
		"-sessions", "30", "-batch", "6", "-clients", "3", "-seed", "5"}, &out)
	if err != nil {
		t.Fatalf("service smoke: %v\noutput: %s", err, out.String())
	}
	if !strings.Contains(out.String(), "service smoke PASS") {
		t.Fatalf("missing PASS line: %s", out.String())
	}
}

func TestServiceModeReportsUnhealthy(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-mode", "service", "-addr", "http://127.0.0.1:1",
		"-sessions", "1", "-wait", "200ms"}, &out)
	if err == nil || !strings.Contains(err.Error(), "not healthy") {
		t.Fatalf("unreachable service: err = %v", err)
	}
}
