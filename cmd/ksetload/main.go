// Command ksetload drives the distributed stack for smoke tests and the
// E18 throughput measurements.
//
// Service mode exercises a running ksetd over its TCP HTTP API — the CI
// gauntlet's e2e smoke:
//
//	ksetload -mode service -addr http://127.0.0.1:8347 \
//	    -sessions 100 -batch 10 -clients 4 [-n 8] [-seed 1] [-timeout 120s]
//
// It waits for /healthz, submits the sessions in concurrent batches,
// polls every session to completion, fails unless every session decided
// within the k-bound (distinct <= MinK), scrapes /metrics for
// consistent counters, and reports sessions/sec.
//
// Runtime mode measures raw round throughput of one distributed run —
// rounds/sec over in-proc channels, TCP loopback, best-effort UDP, or
// the lockstep simulator for reference (EXPERIMENTS.md §E18, §E21):
//
//	ksetload -mode runtime -transport inproc|tcp|udp|sim -n 16 -rounds 200 -trials 3
//
// TCP and UDP runs take -nodes to group the n processes onto fewer mesh
// nodes (coalesced frames; 0 = one node per process). UDP runs take
// -loss to additionally lose that fraction of frames i.i.d. on the wire
// (deterministic from -seed), or -loss-model ge with -burst/-gap for
// Gilbert–Elliott bursty loss at rate burst/(burst+gap); the algorithm
// tolerates the loss, so the run still completes — slower, since lossy
// rounds close by deadline. -floor FAILS the run if the measured median
// falls below the given rounds/sec — the CI throughput smoke uses it as
// a regression tripwire. -cpuprofile writes a pprof CPU profile
// covering the measured trials.
//
// Chaos mode measures graceful degradation under real process crashes
// (EXPERIMENTS.md §E22): for each crash count 0..-crashes it runs
// -trials seeded chaos scenarios through internal/chaos — live run,
// injected deaths, replay verification — and reports rounds/sec,
// realized loss, and the agreement outcome per row:
//
//	ksetload -mode chaos -transport inproc|tcp|udp -n 8 -crashes 2 -trials 3
//
// Every scenario must pass the crash-replay differential and the
// agreement bound; -min-frac additionally FAILS the run unless every
// crashed row sustains that fraction of the 0-crash throughput.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"regexp"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"kset/internal/adversary"
	"kset/internal/chaos"
	"kset/internal/runtime"
	"kset/internal/service"
	"kset/internal/sim"
	ktransport "kset/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ksetload: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ksetload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	mode := fs.String("mode", "service", "service (drive a ksetd), runtime (rounds/sec measurement), or chaos (crash-fault degradation)")
	// Service mode.
	addr := fs.String("addr", "http://127.0.0.1:8347", "base URL of the ksetd under test")
	sessions := fs.Int("sessions", 100, "total sessions to submit")
	batch := fs.Int("batch", 10, "sessions per submission request")
	clients := fs.Int("clients", 4, "concurrent submitting/polling clients")
	timeout := fs.Duration("timeout", 120*time.Second, "overall deadline for the service smoke")
	wait := fs.Duration("wait", 30*time.Second, "how long to wait for /healthz")
	// Shared / runtime mode.
	n := fs.Int("n", 8, "processes per session/run")
	seed := fs.Int64("seed", 1, "base seed")
	transport := fs.String("transport", "inproc", "runtime mode: inproc, tcp, udp, or sim (lockstep reference)")
	rounds := fs.Int("rounds", 200, "runtime mode: rounds per trial")
	trials := fs.Int("trials", 3, "runtime mode: trials (median reported)")
	nodes := fs.Int("nodes", 0, "runtime mode, tcp/udp: mesh nodes to group processes onto (0 = one per process)")
	loss := fs.Float64("loss", 0, "runtime mode, udp: i.i.d. frame loss probability injected on the wire")
	lossModel := fs.String("loss-model", "iid", "runtime mode, udp: iid (each frame independently, -loss) or ge (Gilbert-Elliott bursts, -burst/-gap)")
	burst := fs.Float64("burst", 4, "runtime mode, udp, -loss-model ge: mean burst length in rounds (lossy state)")
	gap := fs.Float64("gap", 36, "runtime mode, udp, -loss-model ge: mean gap length in rounds (clean state)")
	floor := fs.Float64("floor", 0, "runtime mode: fail unless median rounds/sec reaches this floor (0 = no check)")
	cpuprofile := fs.String("cpuprofile", "", "runtime mode: write a CPU profile of the measured trials to this file")
	crashes := fs.Int("crashes", 2, "chaos mode: maximum injected crashes (rows run 0..crashes)")
	minFrac := fs.Float64("min-frac", 0, "chaos mode: fail unless every crashed row sustains this fraction of the 0-crash throughput (0 = no check)")
	asJSON := fs.Bool("json", false, "emit a JSON summary instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	switch *mode {
	case "service":
		return runService(stdout, *addr, *sessions, *batch, *clients, *n, *seed, *timeout, *wait, *asJSON)
	case "runtime":
		return runRuntime(stdout, runtimeParams{
			transport: *transport, n: *n, rounds: *rounds, trials: *trials,
			nodes: *nodes, loss: *loss, lossModel: *lossModel, burst: *burst, gap: *gap,
			seed: *seed, floor: *floor, cpuprofile: *cpuprofile, asJSON: *asJSON,
		})
	case "chaos":
		return runChaos(stdout, chaosParams{
			transport: *transport, n: *n, crashes: *crashes, trials: *trials,
			seed: *seed, minFrac: *minFrac, asJSON: *asJSON,
		})
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// serviceSummary is the -json output of service mode.
type serviceSummary struct {
	Sessions       int     `json:"sessions"`
	Seconds        float64 `json:"seconds"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	RoundsTotal    int     `json:"rounds_total"`
	Completed      int     `json:"metrics_completed_total"`
}

func runService(stdout io.Writer, addr string, total, batch, clients, n int, seed int64, timeout, wait time.Duration, asJSON bool) error {
	if batch < 1 || total < 1 || clients < 1 {
		return fmt.Errorf("need positive -sessions, -batch, -clients")
	}
	addr = strings.TrimRight(addr, "/")
	if err := waitHealthy(addr, wait); err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	families := []string{"rooted", "single_source", "lowerbound", "partition_merge", "vertex_stable", "complete"}
	specs := make([]service.SessionSpec, total)
	for i := range specs {
		sn := 2 + (n+i)%15
		specs[i] = service.SessionSpec{
			N:      sn,
			Family: families[i%len(families)],
			Seed:   seed + int64(i),
			Noisy:  i % 5,
			Roots:  1 + i%min(3, sn),
		}
	}

	start := time.Now()
	ids := make([]string, 0, total)
	type submitOut struct {
		ids []string
		err error
	}
	work := make(chan []service.SessionSpec, (total+batch-1)/batch)
	for lo := 0; lo < total; lo += batch {
		hi := min(lo+batch, total)
		work <- specs[lo:hi]
	}
	close(work)
	outs := make(chan submitOut, clients)
	for c := 0; c < clients; c++ {
		go func() {
			var got []string
			for b := range work {
				ids, err := submitBatch(addr, b)
				if err != nil {
					outs <- submitOut{err: err}
					return
				}
				got = append(got, ids...)
			}
			outs <- submitOut{ids: got}
		}()
	}
	for c := 0; c < clients; c++ {
		o := <-outs
		if o.err != nil {
			return o.err
		}
		ids = append(ids, o.ids...)
	}
	if len(ids) != total {
		return fmt.Errorf("service accepted %d of %d sessions", len(ids), total)
	}

	roundsTotal := 0
	for _, id := range ids {
		sess, err := pollDone(addr, id, deadline)
		if err != nil {
			return err
		}
		if sess.Status != "done" {
			return fmt.Errorf("session %s %s: %s", id, sess.Status, sess.Error)
		}
		if !sess.Result.KBound {
			return fmt.Errorf("session %s violated the k-bound: %d distinct > MinK %d",
				id, len(sess.Result.Distinct), sess.Result.MinK)
		}
		if !sess.Result.AllDecided {
			return fmt.Errorf("session %s left processes undecided", id)
		}
		roundsTotal += sess.Result.Rounds
	}
	elapsed := time.Since(start)

	metrics, err := scrapeMetrics(addr)
	if err != nil {
		return err
	}
	completed := metrics["ksetd_sessions_completed_total"]
	if completed < total {
		return fmt.Errorf("metrics report %d completed sessions, want >= %d", completed, total)
	}
	if metrics["ksetd_rounds_total"] == 0 {
		return fmt.Errorf("metrics report zero rounds executed")
	}
	if v := metrics["ksetd_kbound_violations_total"]; v != 0 {
		return fmt.Errorf("metrics report %d k-bound violations", v)
	}

	sum := serviceSummary{
		Sessions:       total,
		Seconds:        elapsed.Seconds(),
		SessionsPerSec: float64(total) / elapsed.Seconds(),
		RoundsTotal:    roundsTotal,
		Completed:      completed,
	}
	if asJSON {
		return json.NewEncoder(stdout).Encode(sum)
	}
	fmt.Fprintf(stdout, "service smoke PASS: %d sessions in %.2fs (%.1f sessions/sec, %d rounds); all decisions within the k-bound\n",
		sum.Sessions, sum.Seconds, sum.SessionsPerSec, sum.RoundsTotal)
	return nil
}

func waitHealthy(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service at %s not healthy after %v (last error: %v)", addr, wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func submitBatch(addr string, specs []service.SessionSpec) ([]string, error) {
	body, err := json.Marshal(service.BatchRequest{Sessions: specs})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(addr+"/v1/sessions", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var br service.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	var ids []string
	for i, r := range br.Results {
		if r.Error != "" {
			return nil, fmt.Errorf("submit: spec %d rejected: %s", i, r.Error)
		}
		ids = append(ids, r.ID)
	}
	return ids, nil
}

func pollDone(addr, id string, deadline time.Time) (service.Session, error) {
	for {
		resp, err := http.Get(addr + "/v1/sessions/" + id)
		if err != nil {
			return service.Session{}, err
		}
		var sess service.Session
		err = json.NewDecoder(resp.Body).Decode(&sess)
		resp.Body.Close()
		if err != nil {
			return service.Session{}, err
		}
		if sess.Status == "done" || sess.Status == "failed" {
			return sess, nil
		}
		if time.Now().After(deadline) {
			return sess, fmt.Errorf("session %s still %s at deadline", id, sess.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var metricLine = regexp.MustCompile(`(?m)^(ksetd_[a-z_]+) (\d+)$`)

func scrapeMetrics(addr string) (map[string]int, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]int{}
	for _, m := range metricLine.FindAllStringSubmatch(string(raw), -1) {
		v, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("metric %s: %v", m[1], err)
		}
		out[m[1]] = v
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no ksetd_ metrics in scrape")
	}
	return out, nil
}

// runtimeSummary is the -json output of runtime mode.
type runtimeSummary struct {
	Transport    string  `json:"transport"`
	N            int     `json:"n"`
	Nodes        int     `json:"nodes,omitempty"`
	Rounds       int     `json:"rounds"`
	Trials       int     `json:"trials"`
	Seconds      float64 `json:"seconds_median"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
}

// runtimeParams bundles the runtime-mode flags.
type runtimeParams struct {
	transport  string
	n          int
	rounds     int
	trials     int
	nodes      int
	loss       float64
	lossModel  string
	burst, gap float64
	seed       int64
	floor      float64
	cpuprofile string
	asJSON     bool
}

func runRuntime(stdout io.Writer, p runtimeParams) error {
	if p.n < 1 || p.rounds < 1 || p.trials < 1 {
		return fmt.Errorf("need positive -n, -rounds, -trials")
	}
	if p.nodes != 0 && p.transport != "tcp" && p.transport != "udp" {
		return fmt.Errorf("-nodes only applies to -transport tcp or udp")
	}
	if p.loss != 0 && p.transport != "udp" {
		return fmt.Errorf("-loss only applies to -transport udp")
	}
	switch p.lossModel {
	case "", "iid":
	case "ge":
		if p.transport != "udp" {
			return fmt.Errorf("-loss-model ge only applies to -transport udp")
		}
		if p.loss != 0 {
			return fmt.Errorf("-loss-model ge sets its own rate (burst/(burst+gap)); drop -loss")
		}
	default:
		return fmt.Errorf("unknown -loss-model %q (want iid or ge)", p.lossModel)
	}
	if p.cpuprofile != "" {
		f, err := os.Create(p.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	var secs []float64
	for trial := 0; trial < p.trials; trial++ {
		rng := rand.New(rand.NewSource(p.seed + int64(trial)))
		spec := sim.Spec{
			Adversary:       adversary.RandomSingleSource(p.n, 0, 0.2, 0, rng),
			Proposals:       sim.SeqProposals(p.n),
			MaxRounds:       p.rounds,
			RunToCompletion: true,
		}
		switch p.transport {
		case "sim":
			// Lockstep reference: no Runner override.
		case "inproc":
			spec.Runner = runtime.NewRunner(runtime.RunnerOpts{})
		case "tcp":
			spec.Runner = runtime.NewRunner(runtime.RunnerOpts{Kind: "tcp", Nodes: p.nodes})
		case "udp":
			ropts := runtime.RunnerOpts{
				Kind: "udp", Nodes: p.nodes, Loss: p.loss, LossSeed: p.seed,
			}
			if p.lossModel == "ge" {
				// Bursty loss: the Gilbert-Elliott walk drops whole
				// per-link frame runs instead of i.i.d. singles.
				drop, err := ktransport.GEFrameLoss(p.burst, p.gap, p.seed)
				if err != nil {
					return err
				}
				ropts.UDP.DropDatagram = drop
			}
			spec.Runner = runtime.NewRunner(ropts)
		default:
			return fmt.Errorf("unknown transport %q (want inproc, tcp, udp, or sim)", p.transport)
		}
		start := time.Now()
		if _, err := sim.Execute(spec); err != nil {
			return err
		}
		secs = append(secs, time.Since(start).Seconds())
	}
	sort.Float64s(secs)
	med := secs[len(secs)/2]
	sum := runtimeSummary{
		Transport:    p.transport,
		N:            p.n,
		Nodes:        p.nodes,
		Rounds:       p.rounds,
		Trials:       p.trials,
		Seconds:      med,
		RoundsPerSec: float64(p.rounds) / med,
	}
	if p.asJSON {
		if err := json.NewEncoder(stdout).Encode(sum); err != nil {
			return err
		}
	} else {
		label := sum.Transport
		if sum.Nodes > 0 {
			label = fmt.Sprintf("%s/nodes=%d", sum.Transport, sum.Nodes)
		}
		fmt.Fprintf(stdout, "runtime %s: n=%d rounds=%d median %.3fs (%.0f rounds/sec)\n",
			label, sum.N, sum.Rounds, sum.Seconds, sum.RoundsPerSec)
	}
	if p.floor > 0 && sum.RoundsPerSec < p.floor {
		return fmt.Errorf("throughput %.0f rounds/sec below floor %.0f", sum.RoundsPerSec, p.floor)
	}
	return nil
}

// chaosRow is one crash count's measurement in the -mode chaos sweep.
type chaosRow struct {
	Crashes      int     `json:"crashes"`
	Rounds       int     `json:"rounds"`
	Seconds      float64 `json:"seconds_median"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	LostLinks    int     `json:"lost_links"`
	Distinct     int     `json:"distinct"`
	MinK         int     `json:"min_k"`
}

// chaosSummary is the -json output of chaos mode.
type chaosSummary struct {
	Transport string     `json:"transport"`
	N         int        `json:"n"`
	Trials    int        `json:"trials"`
	MinFrac   float64    `json:"min_frac,omitempty"`
	Rows      []chaosRow `json:"rows"`
}

// chaosParams bundles the chaos-mode flags.
type chaosParams struct {
	transport string
	n         int
	crashes   int
	trials    int
	seed      int64
	minFrac   float64
	asJSON    bool
}

// runChaos measures graceful degradation under real process crashes:
// for each crash count 0..crashes it runs `trials` seeded chaos
// scenarios over the chosen transport, requires every live run to
// verify bit-for-bit against its lockstep replay (internal/chaos), and
// reports the median round throughput per row. -min-frac turns the
// degradation curve into a pass/fail check against the 0-crash row.
func runChaos(stdout io.Writer, p chaosParams) error {
	if p.n < 2 || p.trials < 1 {
		return fmt.Errorf("need -n >= 2 and positive -trials")
	}
	if p.crashes < 0 || p.crashes >= p.n {
		return fmt.Errorf("-crashes %d out of range [0,%d] (the harness needs a survivor)", p.crashes, p.n-1)
	}
	switch p.transport {
	case "inproc", "tcp", "udp":
	default:
		return fmt.Errorf("unknown transport %q (chaos mode runs inproc, tcp, or udp)", p.transport)
	}
	sum := chaosSummary{Transport: p.transport, N: p.n, Trials: p.trials, MinFrac: p.minFrac}
	for c := 0; c <= p.crashes; c++ {
		var secs []float64
		var last *runtime.CrashReplayReport
		rounds := 0
		lost := 0
		for trial := 0; trial < p.trials; trial++ {
			cfg := chaos.BatteryConfig{
				Name:    fmt.Sprintf("%s-n%d-c%d-t%d", p.transport, p.n, c, trial),
				Kind:    p.transport,
				N:       p.n,
				Crashes: c,
				Seed:    p.seed + int64(trial),
			}
			start := time.Now()
			rep, err := chaos.Run(cfg, "")
			if err != nil {
				return fmt.Errorf("chaos %s: replay verification failed: %w", cfg.Name, err)
			}
			if !rep.KBound {
				return fmt.Errorf("chaos %s: %d distinct decisions exceed realized MinK %d",
					cfg.Name, rep.Distinct, rep.Replay.MinK)
			}
			secs = append(secs, time.Since(start).Seconds())
			rounds += rep.Live.Rounds
			lost += rep.LostLinks
			last = rep
		}
		sort.Float64s(secs)
		med := secs[len(secs)/2]
		row := chaosRow{
			Crashes:      c,
			Rounds:       rounds / p.trials,
			Seconds:      med,
			RoundsPerSec: float64(rounds/p.trials) / med,
			LostLinks:    lost,
			Distinct:     last.Distinct,
			MinK:         last.Replay.MinK,
		}
		sum.Rows = append(sum.Rows, row)
		if !p.asJSON {
			fmt.Fprintf(stdout, "chaos %s: n=%d crashes=%d median %.3fs (%d rounds, %.0f rounds/sec, %d lost links) replay OK\n",
				p.transport, p.n, c, row.Seconds, row.Rounds, row.RoundsPerSec, row.LostLinks)
		}
	}
	if p.asJSON {
		if err := json.NewEncoder(stdout).Encode(sum); err != nil {
			return err
		}
	}
	if p.minFrac > 0 {
		base := sum.Rows[0].RoundsPerSec
		for _, row := range sum.Rows[1:] {
			if row.RoundsPerSec < p.minFrac*base {
				return fmt.Errorf("chaos: %d-crash throughput %.0f rounds/sec below %.0f%% of the 0-crash %.0f",
					row.Crashes, row.RoundsPerSec, 100*p.minFrac, base)
			}
		}
		if !p.asJSON {
			fmt.Fprintf(stdout, "chaos degradation PASS: every crashed row sustains >= %.0f%% of %.0f rounds/sec\n",
				100*p.minFrac, sum.Rows[0].RoundsPerSec)
		}
	}
	return nil
}
