package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckFuzzTarget(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\nimport \"testing\"\n\nfunc FuzzThing(f *testing.F) {}\n"
	if err := os.WriteFile(filepath.Join(dir, "thing_test.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if p := checkFuzzTarget("fam", dir+":FuzzThing"); p != "" {
		t.Errorf("existing target flagged: %s", p)
	}
	for _, tc := range []struct{ target, want string }{
		{dir + ":FuzzMissing", "not found"},
		{"no-such-dir:FuzzThing", "no-such-dir"},
		{"malformed", "malformed"},
	} {
		if p := checkFuzzTarget("fam", tc.target); !strings.Contains(p, tc.want) {
			t.Errorf("target %q: problem %q does not mention %q", tc.target, p, tc.want)
		}
	}
}

// TestRegisteredFuzzTargetsExist runs the real gate against the real
// registry from the module root — the same check CI executes.
func TestRegisteredFuzzTargetsExist(t *testing.T) {
	if err := os.Chdir("../.."); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir("cmd/docscheck")
	for _, tc := range []struct{ family, target string }{
		{"kset", "internal/wire:FuzzDecode"},
		{"approx", "internal/approx:FuzzDecode"},
	} {
		if p := checkFuzzTarget(tc.family, tc.target); p != "" {
			t.Errorf("%s", p)
		}
	}
}
