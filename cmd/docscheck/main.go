// Command docscheck is the CI documentation gate: it fails (exit 1) when
// any Go package under internal/ lacks a godoc package comment. The
// reproduction's packages double as the map of the paper's structure
// (see DESIGN.md §1), so an uncommented package is a hole in that map.
//
// Usage:
//
//	go run ./cmd/docscheck [dir]
//
// dir defaults to internal; every directory below it containing
// non-test .go files is checked.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := "internal"
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var missing []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		ok, checked, err := packageHasComment(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if checked && !ok {
			missing = append(missing, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: packages missing a package comment:\n")
		for _, p := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: all packages under %s have package comments\n", root)
}

// packageHasComment parses the non-test .go files of dir and reports
// whether any carries a package doc comment. checked is false when the
// directory contains no non-test Go files.
func packageHasComment(dir string) (ok, checked bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		checked = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return false, checked, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, checked, nil
}
