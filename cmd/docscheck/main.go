// Command docscheck is the CI documentation-and-contract gate: it fails
// (exit 1) when any Go package under internal/ lacks a godoc package
// comment, or when a registered algorithm family declares a codec fuzz
// target that does not exist. The reproduction's packages double as the
// map of the paper's structure (see DESIGN.md §1), so an uncommented
// package is a hole in that map — and a family whose hostile-input fuzz
// target has gone missing is a codec nobody is hardening.
//
// Usage:
//
//	go run ./cmd/docscheck [dir]
//
// dir defaults to internal; every directory below it containing
// non-test .go files is checked. The fuzz-target gate always runs
// against the registry (internal/algo), resolving each family's
// declared "dir:FuzzName" to a func FuzzName(f *testing.F) in that
// directory's _test.go files.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"kset/internal/algo"
)

func main() {
	root := "internal"
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var missing []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		ok, checked, err := packageHasComment(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if checked && !ok {
			missing = append(missing, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: packages missing a package comment:\n")
		for _, p := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", p)
		}
		os.Exit(1)
	}
	var broken []string
	for _, name := range algo.Names() {
		if problem := checkFuzzTarget(name, algo.MustLookup(name).FuzzTarget); problem != "" {
			broken = append(broken, problem)
		}
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: algorithm families with broken fuzz targets:\n")
		for _, p := range broken {
			fmt.Fprintf(os.Stderr, "  %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: all packages under %s have package comments; all %d registered algorithm fuzz targets exist\n",
		root, len(algo.Names()))
}

// checkFuzzTarget resolves one family's "dir:FuzzName" declaration and
// returns a human-readable problem, or "" when the target exists.
func checkFuzzTarget(family, target string) string {
	dir, fuzzName, ok := strings.Cut(target, ":")
	if !ok || dir == "" || fuzzName == "" {
		return fmt.Sprintf("%s: malformed fuzz target %q (want dir:FuzzName)", family, target)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Sprintf("%s: fuzz target dir %s: %v", family, dir, err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return fmt.Sprintf("%s: parse %s: %v", family, filepath.Join(dir, name), err)
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil || fn.Name.Name != fuzzName {
				continue
			}
			if len(fn.Type.Params.List) == 1 {
				return "" // found func FuzzName(f *testing.F)
			}
		}
	}
	return fmt.Sprintf("%s: fuzz target %s not found: no func %s in %s/*_test.go", family, target, fuzzName, dir)
}

// packageHasComment parses the non-test .go files of dir and reports
// whether any carries a package doc comment. checked is false when the
// directory contains no non-test Go files.
func packageHasComment(dir string) (ok, checked bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		checked = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return false, checked, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, checked, nil
}
