package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read run's output while run is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(context.Background(), []string{"positional"}, &out); err == nil {
		t.Fatal("positional argument accepted")
	}
}

var listenLine = regexp.MustCompile(`ksetd listening on ([0-9.:]+)`)

// TestServeSubmitShutdown boots the real server on an ephemeral port,
// pushes a session through the HTTP API, and verifies graceful shutdown
// on context cancellation.
func TestServeSubmitShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out)
	}()

	var addr string
	for deadline := time.Now().Add(10 * time.Second); ; {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			addr = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(addr+"/v1/sessions", "application/json",
		strings.NewReader(`{"sessions":[{"n":5,"family":"single_source","seed":4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var br struct {
		Results []struct {
			ID    string `json:"id"`
			Error string `json:"error"`
		} `json:"results"`
	}
	err = json.NewDecoder(resp.Body).Decode(&br)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || len(br.Results) != 1 || br.Results[0].Error != "" {
		t.Fatalf("submit: status %d, results %+v", resp.StatusCode, br.Results)
	}

	// Poll the session to done, then health.
	id := br.Results[0].ID
	for deadline := time.Now().Add(20 * time.Second); ; {
		resp, err := http.Get(addr + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var sess struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&sess)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sess.Status == "done" {
			break
		}
		if sess.Status == "failed" {
			t.Fatalf("session failed: %s", sess.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %s", sess.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, err := http.Get(addr + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "graceful shutdown complete") {
		t.Fatalf("missing shutdown confirmation; output:\n%s", out.String())
	}
}
