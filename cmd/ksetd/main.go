// Command ksetd is the long-running agreement service: it serves the
// batched session-submission API of internal/service over HTTP,
// executing each agreement session on the distributed runtime
// (goroutine-per-process over an in-proc, TCP, or UDP transport) with a
// bounded worker pool, and exposing /healthz and Prometheus-style
// /metrics (per-algorithm breakdowns under ksetd_algorithm_*).
//
// Sessions pick their algorithm family by name ("algorithm" in the
// session spec): "kset" — Algorithm 1 of the source paper, the default
// — or "approx" — approximate agreement on a path or cycle graph.
// Unknown names get a 400 listing the registered families.
//
// Usage:
//
//	ksetd [-addr 127.0.0.1:8347] [-workers 8] [-queue 256] [-maxn 128] [-retain 4096]
//	      [-session-timeout 0] [-pprof 127.0.0.1:6060]
//
// -pprof serves net/http/pprof on a separate listener (off by default;
// profiling is never exposed on the API address).
//
// The API surface (see DESIGN.md §7 and internal/service):
//
//	POST /v1/sessions          submit a batch of sessions
//	GET  /v1/sessions/{id}     poll one session
//	GET  /v1/sessions?status=  list sessions
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus text format
//
// -session-timeout arms a per-session watchdog: a session still running
// at the deadline is declared crashed — its transport is torn down and
// the partial outcome observed so far stays pollable under status
// "crashed" (ksetd_sessions_crashed_total counts them).
//
// ksetd shuts down gracefully on SIGINT/SIGTERM: the HTTP server drains,
// running sessions finish (crashed in-flight sessions flush their
// partial outcomes), queued ones are failed with a shutdown error.
// Drive it with cmd/ksetload (the CI gauntlet boots ksetd and pushes 100
// concurrent sessions through this API over TCP).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kset/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ksetd: ")
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable entry point: it serves until args are invalid,
// the listener fails, or ctx is canceled (graceful shutdown).
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ksetd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	addr := fs.String("addr", "127.0.0.1:8347", "listen address")
	workers := fs.Int("workers", 8, "concurrent session executions")
	queue := fs.Int("queue", 256, "bounded queue of accepted sessions (backpressure beyond it)")
	maxn := fs.Int("maxn", 128, "largest per-session process count accepted")
	retain := fs.Int("retain", 4096, "finished sessions kept for polling before eviction")
	sessionTimeout := fs.Duration("session-timeout", 0, "per-session watchdog deadline; a session running longer is crashed with partial results (0 disables)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	svc := service.New(service.Config{
		Workers: *workers,
		Queue:   *queue,
		MaxN:    *maxn,
		Retain:  *retain,

		SessionTimeout: *sessionTimeout,
	})
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ksetd listening on %s (workers=%d queue=%d maxn=%d)\n",
		ln.Addr(), *workers, *queue, *maxn)

	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	if *pprofAddr != "" {
		// The profiling endpoint gets its own listener and servemux —
		// never the API's — so pprof exposure is an explicit, separately
		// addressable opt-in. net/http/pprof registers its handlers on
		// http.DefaultServeMux at import.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		fmt.Fprintf(stdout, "ksetd pprof on %s\n", pln.Addr())
		psrv := &http.Server{Handler: http.DefaultServeMux}
		defer psrv.Close()
		go func() {
			if err := psrv.Serve(pln); err != nil && err != http.ErrServerClosed {
				errc <- fmt.Errorf("pprof server: %w", err)
			}
		}()
	}
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "ksetd: graceful shutdown complete")
		return nil
	}
}
