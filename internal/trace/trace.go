// Package trace collects and checks the outcome of agreement runs: who
// decided what, when, and whether the run satisfies the three properties
// of k-set agreement (Section II-A of the paper) — k-agreement, validity,
// and termination — plus irrevocability, which the round executors
// guarantee structurally (deciders are write-once).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"kset/internal/rounds"
)

// Outcome is the decision summary of one finished run.
type Outcome struct {
	// N is the number of processes.
	N int
	// Rounds is the number of rounds executed.
	Rounds int
	// Proposals[i] is process i's initial value.
	Proposals []int64
	// Decided[i] reports whether process i decided.
	Decided []bool
	// Decisions[i] is process i's decision (valid only if Decided[i]).
	Decisions []int64
	// DecideRounds[i] is the round of process i's decision (valid only
	// if Decided[i]).
	DecideRounds []int
}

// Collect extracts an Outcome from an executor result. Every process
// must implement rounds.Decider.
func Collect(res *rounds.Result) (*Outcome, error) {
	n := len(res.Procs)
	o := &Outcome{
		N:            n,
		Rounds:       res.Rounds,
		Proposals:    make([]int64, n),
		Decided:      make([]bool, n),
		Decisions:    make([]int64, n),
		DecideRounds: make([]int, n),
	}
	for i, p := range res.Procs {
		d, ok := p.(rounds.Decider)
		if !ok {
			return nil, fmt.Errorf("trace: process %d (%T) is not a Decider", i, p)
		}
		o.Proposals[i] = d.Proposal()
		if d.Decided() {
			o.Decided[i] = true
			o.Decisions[i], o.DecideRounds[i] = d.Decision()
		}
	}
	return o, nil
}

// DistinctDecisions returns the sorted distinct decided values.
func (o *Outcome) DistinctDecisions() []int64 {
	seen := map[int64]bool{}
	for i := range o.Decisions {
		if o.Decided[i] {
			seen[o.Decisions[i]] = true
		}
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DistinctDecisionsAmong returns the sorted distinct values decided by
// the processes selected by include. Classical crash-model guarantees
// (e.g. FloodMin's) quantify only over surviving processes; this lets the
// harness evaluate them on their own terms.
func (o *Outcome) DistinctDecisionsAmong(include func(i int) bool) []int64 {
	seen := map[int64]bool{}
	for i := range o.Decisions {
		if o.Decided[i] && include(i) {
			seen[o.Decisions[i]] = true
		}
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxDecisionRound returns the latest decision round, or 0 if nobody
// decided.
func (o *Outcome) MaxDecisionRound() int {
	m := 0
	for i, r := range o.DecideRounds {
		if o.Decided[i] && r > m {
			m = r
		}
	}
	return m
}

// CheckTermination returns an error naming every undecided process.
func (o *Outcome) CheckTermination() error {
	var missing []string
	for i, d := range o.Decided {
		if !d {
			missing = append(missing, fmt.Sprintf("p%d", i+1))
		}
	}
	if missing != nil {
		return fmt.Errorf("trace: termination violated after %d rounds: %s undecided",
			o.Rounds, strings.Join(missing, ", "))
	}
	return nil
}

// CheckValidity returns an error if any decision is not some process's
// proposal.
func (o *Outcome) CheckValidity() error {
	valid := map[int64]bool{}
	for _, v := range o.Proposals {
		valid[v] = true
	}
	for i := range o.Decisions {
		if o.Decided[i] && !valid[o.Decisions[i]] {
			return fmt.Errorf("trace: validity violated: p%d decided %d, never proposed",
				i+1, o.Decisions[i])
		}
	}
	return nil
}

// CheckKAgreement returns an error if more than k distinct values were
// decided.
func (o *Outcome) CheckKAgreement(k int) error {
	if got := len(o.DistinctDecisions()); got > k {
		return fmt.Errorf("trace: %d-agreement violated: %d distinct decisions %v",
			k, got, o.DistinctDecisions())
	}
	return nil
}

// CheckDecisionFloor returns an error if any process decided before the
// given round floor. Algorithm 1's line-28 guard admits connectivity
// decisions only from round n (2n-1 with the conservative repair), and
// line-12 adoptions can only follow an earlier decision, so no decision
// round may precede the floor; the falsification engine (internal/check)
// uses this as an oracle against guard regressions.
func (o *Outcome) CheckDecisionFloor(floor int) error {
	for i, r := range o.DecideRounds {
		if o.Decided[i] && r < floor {
			return fmt.Errorf("trace: p%d decided in round %d, before the floor %d",
				i+1, r, floor)
		}
	}
	return nil
}

// Check verifies termination, validity, and k-agreement together.
func (o *Outcome) Check(k int) error {
	if err := o.CheckTermination(); err != nil {
		return err
	}
	if err := o.CheckValidity(); err != nil {
		return err
	}
	return o.CheckKAgreement(k)
}

// String renders a compact per-process table of the outcome.
func (o *Outcome) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run of %d processes, %d rounds, decisions %v\n",
		o.N, o.Rounds, o.DistinctDecisions())
	for i := 0; i < o.N; i++ {
		if o.Decided[i] {
			fmt.Fprintf(&b, "  p%-3d proposed %-6d decided %-6d (round %d)\n",
				i+1, o.Proposals[i], o.Decisions[i], o.DecideRounds[i])
		} else {
			fmt.Fprintf(&b, "  p%-3d proposed %-6d UNDECIDED\n", i+1, o.Proposals[i])
		}
	}
	return b.String()
}
