package trace

import (
	"strings"
	"testing"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/rounds"
)

func figureOutcome(t *testing.T) *Outcome {
	t.Helper()
	props := []int64{1, 2, 3, 4, 5, 6}
	res, err := rounds.RunSequential(rounds.Config{
		Adversary:  adversary.Figure1(),
		NewProcess: core.NewFactory(props, core.Options{}),
		MaxRounds:  30,
		StopWhen:   rounds.AllDecided,
	})
	if err != nil {
		t.Fatal(err)
	}
	oc, err := Collect(res)
	if err != nil {
		t.Fatal(err)
	}
	return oc
}

func TestCollectFigure1(t *testing.T) {
	oc := figureOutcome(t)
	if oc.N != 6 || oc.Rounds != 8 {
		t.Fatalf("N=%d Rounds=%d", oc.N, oc.Rounds)
	}
	got := oc.DistinctDecisions()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("DistinctDecisions = %v", got)
	}
	if oc.MaxDecisionRound() != 8 {
		t.Fatalf("MaxDecisionRound = %d", oc.MaxDecisionRound())
	}
	if err := oc.Check(3); err != nil {
		t.Fatal(err)
	}
}

func TestCheckKAgreementFails(t *testing.T) {
	oc := figureOutcome(t)
	if err := oc.CheckKAgreement(1); err == nil {
		t.Fatal("1-agreement should fail with 2 values")
	}
}

func TestCheckValidityFails(t *testing.T) {
	oc := figureOutcome(t)
	oc.Decisions[0] = 999
	if err := oc.CheckValidity(); err == nil {
		t.Fatal("forged decision accepted")
	}
}

func TestCheckTerminationFails(t *testing.T) {
	oc := figureOutcome(t)
	oc.Decided[3] = false
	err := oc.CheckTermination()
	if err == nil {
		t.Fatal("missing decision accepted")
	}
	if !strings.Contains(err.Error(), "p4") {
		t.Fatalf("error should name p4: %v", err)
	}
}

func TestCollectRejectsNonDeciders(t *testing.T) {
	res := &rounds.Result{Procs: []rounds.Algorithm{nonDecider{}}}
	if _, err := Collect(res); err == nil {
		t.Fatal("non-decider accepted")
	}
}

type nonDecider struct{}

func (nonDecider) Init(int, int)         {}
func (nonDecider) Send(int) any          { return struct{}{} }
func (nonDecider) Transition(int, []any) {}

func TestOutcomeString(t *testing.T) {
	oc := figureOutcome(t)
	s := oc.String()
	for _, want := range []string{"6 processes", "p1", "decided"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
	oc.Decided[5] = false
	if !strings.Contains(oc.String(), "UNDECIDED") {
		t.Fatal("undecided not rendered")
	}
}

func TestMaxDecisionRoundEmpty(t *testing.T) {
	oc := &Outcome{N: 2, Decided: []bool{false, false}, DecideRounds: []int{0, 0}, Decisions: []int64{0, 0}}
	if oc.MaxDecisionRound() != 0 {
		t.Fatal("MaxDecisionRound of undecided run should be 0")
	}
	if got := oc.DistinctDecisions(); len(got) != 0 {
		t.Fatalf("DistinctDecisions = %v", got)
	}
}
