package sim

import (
	"fmt"
	"sync"

	"kset/internal/adversary"
)

// This file is the sharded streaming sweep engine (DESIGN.md §5). The
// original Sweep buffered every *Outcome of a parameter sweep before the
// caller could aggregate, putting an O(trials) memory ceiling on
// experiment size; StreamSweep instead fans cells out to a worker pool in
// shards and delivers each outcome to the caller exactly once, in cell
// order, so incremental aggregators (stats.Running, stats.Stream) can
// consume and discard it. Determinism contract: OnOutcome is invoked in
// strictly ascending cell order for every worker count, and Spec must be
// a pure function of its cell index (derive all randomness from
// CellSeed), so a streamed table is byte-identical for Workers = 1 and
// Workers = 64.

// DefaultShardSize is the number of cells a worker claims at a time when
// StreamConfig.ShardSize is 0. Shards amortize channel traffic without
// hurting load balance; peak retained outcomes are O(Workers · ShardSize),
// independent of the total cell count.
const DefaultShardSize = 16

// StreamConfig describes a streaming sweep.
type StreamConfig struct {
	// Cells is the number of simulations; required, >= 0.
	Cells int
	// Spec builds the cell-th simulation; required. It is called from
	// worker goroutines and must be a pure function of cell: derive any
	// randomness from CellSeed(baseSeed, cell), never from shared
	// mutable state, or the sweep loses its determinism guarantee.
	Spec func(cell int) (Spec, error)
	// OnOutcome consumes the cell-th outcome; required. It is called on
	// the StreamSweep goroutine in strictly ascending cell order, and
	// the outcome must not be retained after the call returns (the
	// engine releases its reference; keeping all of them reintroduces
	// the memory ceiling streaming exists to remove). A non-nil error
	// aborts the sweep.
	OnOutcome func(cell int, out *Outcome) error
	// OnProgress, if non-nil, is called on the StreamSweep goroutine
	// after each outcome is delivered, with the number of delivered
	// cells and the total.
	OnProgress func(done, total int)
	// Workers bounds parallelism; <= 1 runs sequentially on the calling
	// goroutine.
	Workers int
	// ShardSize is the number of cells per work unit; 0 means
	// DefaultShardSize.
	ShardSize int
}

// CellSeed derives the per-cell random seed of a sweep from its base
// seed, so that neighboring cells get statistically independent streams
// and cell seeds never depend on worker scheduling. It is
// adversary.MixSeed — the one splitmix64 mixer behind the DESIGN.md §5
// determinism scheme. The result is non-negative.
func CellSeed(base int64, cell int) int64 { return adversary.MixSeed(base, cell) }

// shardResult carries one executed shard from a worker to the collector.
// On error, outs holds the cells completed before the failure and err is
// already wrapped with the failing cell index.
type shardResult struct {
	start int
	outs  []*Outcome
	err   error
}

// StreamSweep runs a streaming sweep. The first error — from Spec,
// Execute, or OnOutcome — aborts the sweep and is returned wrapped with
// its cell index. Errors are deterministic like deliveries: for every
// worker count, OnOutcome receives exactly the outcomes of cells
// 0..f-1 (in order) where f is the LOWEST failing cell, and the
// returned error is cell f's — not whichever failure happened to finish
// first. Workers already running when the error surfaces finish their
// current shard and are discarded.
func StreamSweep(cfg StreamConfig) error {
	if cfg.Spec == nil {
		return fmt.Errorf("sim: StreamConfig.Spec is nil")
	}
	if cfg.OnOutcome == nil {
		return fmt.Errorf("sim: StreamConfig.OnOutcome is nil")
	}
	if cfg.Cells < 0 {
		return fmt.Errorf("sim: StreamConfig.Cells = %d", cfg.Cells)
	}
	shard := cfg.ShardSize
	if shard <= 0 {
		shard = DefaultShardSize
	}

	runCell := func(cell int) (*Outcome, error) {
		spec, err := cfg.Spec(cell)
		if err != nil {
			return nil, fmt.Errorf("sim: cell %d: %w", cell, err)
		}
		out, err := Execute(spec)
		if err != nil {
			return nil, fmt.Errorf("sim: cell %d: %w", cell, err)
		}
		return out, nil
	}
	deliver := func(cell int, out *Outcome) error {
		if err := cfg.OnOutcome(cell, out); err != nil {
			return fmt.Errorf("sim: cell %d: %w", cell, err)
		}
		if cfg.OnProgress != nil {
			cfg.OnProgress(cell+1, cfg.Cells)
		}
		return nil
	}

	if cfg.Workers <= 1 || cfg.Cells <= 1 {
		for cell := 0; cell < cfg.Cells; cell++ {
			out, err := runCell(cell)
			if err != nil {
				return err
			}
			if err := deliver(cell, out); err != nil {
				return err
			}
		}
		return nil
	}

	numShards := (cfg.Cells + shard - 1) / shard
	workers := cfg.Workers
	if workers > numShards {
		workers = numShards
	}

	work := make(chan int) // shard starts
	results := make(chan shardResult, workers)
	stop := make(chan struct{}) // closed on first failure to halt dispatch
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	// tokens bounds the shards in flight (dispatched but not yet
	// delivered): the dispatcher acquires one per shard, the collector
	// releases it after delivering the shard. Shards are dispatched in
	// ascending order, so the lowest undelivered shard always owns a
	// token and is either being computed or already deliverable — no
	// deadlock — while the reorder buffer stays bounded at
	// O(workers · ShardSize) outcomes no matter how skewed the shard
	// latencies are.
	tokens := make(chan struct{}, workers+1)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for start := range work {
				res := shardResult{start: start}
				end := start + shard
				if end > cfg.Cells {
					end = cfg.Cells
				}
				res.outs = make([]*Outcome, 0, end-start)
				for cell := start; cell < end; cell++ {
					out, err := runCell(cell)
					if err != nil {
						res.err = err
						halt()
						break
					}
					res.outs = append(res.outs, out)
				}
				results <- res
			}
		}()
	}

	// Dispatcher: feed shard starts until done or halted, throttled by
	// the in-flight token bucket.
	go func() {
		defer close(work)
		for s := 0; s < numShards; s++ {
			select {
			case tokens <- struct{}{}:
			case <-stop:
				return
			}
			select {
			case work <- s * shard:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: reorder shards and deliver outcomes in strictly
	// ascending cell order. The token bucket keeps at most workers+1
	// undelivered shards alive, so the reorder buffer is bounded
	// regardless of Cells.
	//
	// Error determinism: an arriving shard error only halts DISPATCH of
	// new shards; delivery continues in cell order until the erroring
	// shard itself is reached. Shards below it were dispatched earlier
	// (dispatch is ascending), so their outcomes always arrive and are
	// delivered first — for every worker count the caller sees exactly
	// the outcomes below the lowest failing cell, then that cell's
	// error, matching what a sequential sweep would do. (The previous
	// collector stopped delivering the moment any error ARRIVED, so the
	// delivered prefix — and even which error was returned — depended on
	// worker scheduling.)
	pending := make(map[int]shardResult, workers)
	next := 0 // next cell to deliver
	var firstErr error
	done := false
	for res := range results {
		if res.err != nil {
			halt() // stop dispatching; already-dispatched shards still arrive
		}
		pending[res.start] = res
		for !done {
			sr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			for i, out := range sr.outs {
				if err := deliver(next, out); err != nil {
					firstErr = err
					halt()
					done = true
					break
				}
				sr.outs[i] = nil // release: streaming retains nothing
				next++
			}
			<-tokens // shard consumed: let the dispatcher refill
			if !done && sr.err != nil {
				// The in-order walk reached the erroring shard: its
				// completed cells are delivered, its failing cell's
				// error is the sweep's verdict.
				firstErr = sr.err
				done = true
			}
			if next >= cfg.Cells {
				done = true
			}
		}
		// Keep draining results so workers never block on send.
	}
	return firstErr
}

// Sweep executes specs on `workers` goroutines and returns all outcomes
// in order; it is the buffering convenience wrapper over StreamSweep for
// small sweeps whose caller wants the slice. Large sweeps should call
// StreamSweep directly and aggregate incrementally. A nil or zero workers
// value runs sequentially. The first error aborts the sweep.
func Sweep(specs []Spec, workers int) ([]*Outcome, error) {
	outs := make([]*Outcome, len(specs))
	err := StreamSweep(StreamConfig{
		Cells:   len(specs),
		Workers: workers,
		// One spec per shard: callers of the buffered API expect up to
		// `workers` specs executing concurrently even for small sweeps.
		ShardSize: 1,
		Spec:      func(cell int) (Spec, error) { return specs[cell], nil },
		OnOutcome: func(cell int, out *Outcome) error {
			outs[cell] = out
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}
