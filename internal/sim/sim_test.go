package sim

import (
	"math/rand"
	"strings"
	"testing"

	"kset/internal/adversary"
	"kset/internal/baseline"
	"kset/internal/core"
	"kset/internal/rounds"
)

func TestExecuteFigure1(t *testing.T) {
	out, err := Execute(Spec{
		Adversary: adversary.Figure1(),
		Proposals: SeqProposals(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Check(3); err != nil {
		t.Fatal(err)
	}
	if out.RootComps != 2 || out.MinK != 3 {
		t.Fatalf("RootComps=%d MinK=%d, want 2/3", out.RootComps, out.MinK)
	}
	if out.RST != 3 {
		t.Fatalf("RST = %d, want 3", out.RST)
	}
	if out.Rounds != 8 {
		t.Fatalf("Rounds = %d, want 8 (stops when all decided)", out.Rounds)
	}
	if !out.Skeleton.Equal(adversary.Figure1StableSkeleton()) {
		t.Fatal("skeleton mismatch")
	}
}

func TestExecuteMeterCountsAllMessages(t *testing.T) {
	out, err := Execute(Spec{
		Adversary:     adversary.Figure1(),
		Proposals:     SeqProposals(6),
		MeterMessages: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantMsgs := 6 * out.Rounds // every process broadcasts once per round
	if out.Meter.Messages != wantMsgs {
		t.Fatalf("Messages = %d, want %d", out.Meter.Messages, wantMsgs)
	}
	if out.Meter.MaxBytes <= 0 || out.Meter.Avg() <= 0 {
		t.Fatal("meter recorded nothing")
	}
}

func TestExecuteConcurrentMatchesSequential(t *testing.T) {
	a, err := Execute(Spec{Adversary: adversary.Figure1(), Proposals: SeqProposals(6)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(Spec{Adversary: adversary.Figure1(), Proposals: SeqProposals(6), Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Fatalf("round counts differ: %d vs %d", a.Rounds, b.Rounds)
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] || a.DecideRounds[i] != b.DecideRounds[i] {
			t.Fatalf("p%d differs across executors", i+1)
		}
	}
}

func TestExecuteBaselineOverride(t *testing.T) {
	n := 5
	out, err := Execute(Spec{
		Adversary:  adversary.Complete(n),
		NewProcess: baseline.NewFloodMinFactory(SeqProposals(n), 0, 1),
		MaxRounds:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Check(1); err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 1 {
		t.Fatalf("FloodMin f=0 should finish in 1 round, took %d", out.Rounds)
	}
}

func TestExecuteRunToCompletion(t *testing.T) {
	out, err := Execute(Spec{
		Adversary:       adversary.Figure1(),
		Proposals:       SeqProposals(6),
		MaxRounds:       20,
		RunToCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 20 {
		t.Fatalf("Rounds = %d, want full 20", out.Rounds)
	}
}

func TestExecuteValidation(t *testing.T) {
	if _, err := Execute(Spec{}); err == nil {
		t.Fatal("nil adversary accepted")
	}
	if _, err := Execute(Spec{Adversary: adversary.Complete(3), Proposals: SeqProposals(2)}); err == nil {
		t.Fatal("proposal length mismatch accepted")
	}
}

func TestExecuteDefaultBoundNonStabilizer(t *testing.T) {
	ch := adversary.NewChurn(adversary.Figure1StableSkeleton(), 0.1, 5)
	out, err := Execute(Spec{Adversary: ch, Proposals: SeqProposals(6)})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.CheckTermination(); err != nil {
		t.Fatal(err)
	}
	// Churn has no exact StableSkeleton method; sim falls back to the
	// tracker's skeleton, which converges to the core.
	if out.MinK < 1 {
		t.Fatal("MinK not computed")
	}
}

func TestSweepPreservesOrderAndParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var specs []Spec
	var wantK []int
	for i := 0; i < 12; i++ {
		k := 2 + rng.Intn(3)
		n := k + 2 + rng.Intn(3)
		specs = append(specs, Spec{
			Adversary: adversary.LowerBound(n, k),
			Proposals: SeqProposals(n),
		})
		wantK = append(wantK, k)
	}
	for _, workers := range []int{0, 1, 4} {
		outs, err := Sweep(specs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != len(specs) {
			t.Fatalf("outs = %d", len(outs))
		}
		for i, out := range outs {
			if got := len(out.DistinctDecisions()); got != wantK[i] {
				t.Fatalf("workers=%d spec %d: %d decisions, want %d",
					workers, i, got, wantK[i])
			}
		}
	}
}

func TestSweepPropagatesError(t *testing.T) {
	specs := []Spec{
		{Adversary: adversary.Complete(2), Proposals: SeqProposals(2)},
		{}, // invalid
	}
	if _, err := Sweep(specs, 2); err == nil {
		t.Fatal("error not propagated")
	}
	if _, err := Sweep(specs, 1); err == nil {
		t.Fatal("error not propagated sequentially")
	}
}

func TestMeteredProcStillDecider(t *testing.T) {
	// The metering wrapper must keep the Decider interface visible.
	out, err := Execute(Spec{
		Adversary:     adversary.Complete(3),
		Proposals:     SeqProposals(3),
		MeterMessages: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.CheckTermination(); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("E0: demo", "n", "k", "mean")
	tb.AddRow(4, 2, 1.5)
	tb.AddRow(16, 3, 2.25)
	s := tb.Render()
	for _, want := range []string{"E0: demo", "n", "mean", "1.50", "2.25", "16"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Render missing %q:\n%s", want, s)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow(1)
}

// Interface checks for the wrapped process.
var _ rounds.Decider = meteredProc{}
var _ rounds.Algorithm = meteredProc{}
var _ = core.Options{}
