package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kset/internal/adversary"
	"kset/internal/stats"
)

// streamDigest runs a streaming sweep over `cells` random-source trials
// and renders the aggregated statistics as a string. Any dependence of
// the aggregation on the worker count would change the digest.
func streamDigest(t *testing.T, cells, workers, shardSize int) string {
	t.Helper()
	n := 8
	rounds := stats.NewStream()
	var distinct stats.Running
	order := make([]int, 0, cells)
	err := StreamSweep(StreamConfig{
		Cells:     cells,
		Workers:   workers,
		ShardSize: shardSize,
		Spec: func(cell int) (Spec, error) {
			rng := rand.New(rand.NewSource(CellSeed(42, cell)))
			return Spec{
				Adversary: adversary.RandomSources(n, 1+rng.Intn(3), rng.Intn(n), 0.25, rng),
				Proposals: SeqProposals(n),
			}, nil
		},
		OnOutcome: func(cell int, out *Outcome) error {
			order = append(order, cell)
			rounds.Add(float64(out.MaxDecisionRound()))
			distinct.Add(float64(len(out.DistinctDecisions())))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range order {
		if c != i {
			t.Fatalf("workers=%d: outcome %d delivered at position %d", workers, c, i)
		}
	}
	return fmt.Sprintf("%v | distinct mean=%v max=%v", rounds.Summary(), distinct.Mean(), distinct.Max())
}

func TestStreamSweepByteStableAcrossWorkers(t *testing.T) {
	const cells = 60
	want := streamDigest(t, cells, 1, 4)
	for _, workers := range []int{4, 8} {
		for _, shard := range []int{1, 4, 16} {
			if got := streamDigest(t, cells, workers, shard); got != want {
				t.Fatalf("workers=%d shard=%d digest\n  %s\nwant (workers=1)\n  %s",
					workers, shard, got, want)
			}
		}
	}
}

func TestStreamSweepProgress(t *testing.T) {
	var calls []int
	err := StreamSweep(StreamConfig{
		Cells:     5,
		Workers:   3,
		ShardSize: 2,
		Spec: func(cell int) (Spec, error) {
			return Spec{Adversary: adversary.Complete(3), Proposals: SeqProposals(3)}, nil
		},
		OnOutcome: func(cell int, out *Outcome) error { return nil },
		OnProgress: func(done, total int) {
			if total != 5 {
				t.Errorf("total = %d", total)
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 5 {
		t.Fatalf("progress calls = %v", calls)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress out of order: %v", calls)
		}
	}
}

func TestStreamSweepPropagatesErrors(t *testing.T) {
	specErr := func(cell int) (Spec, error) {
		if cell == 3 {
			return Spec{}, fmt.Errorf("boom")
		}
		return Spec{Adversary: adversary.Complete(3), Proposals: SeqProposals(3)}, nil
	}
	for _, workers := range []int{1, 4} {
		err := StreamSweep(StreamConfig{
			Cells:     10,
			Workers:   workers,
			ShardSize: 2,
			Spec:      specErr,
			OnOutcome: func(cell int, out *Outcome) error { return nil },
		})
		if err == nil || !strings.Contains(err.Error(), "cell 3") {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}

	// Consumer errors abort too.
	err := StreamSweep(StreamConfig{
		Cells:   8,
		Workers: 4,
		Spec: func(cell int) (Spec, error) {
			return Spec{Adversary: adversary.Complete(3), Proposals: SeqProposals(3)}, nil
		},
		OnOutcome: func(cell int, out *Outcome) error {
			if cell == 2 {
				return fmt.Errorf("consumer stop")
			}
			return nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "cell 2") {
		t.Fatalf("consumer error not propagated: %v", err)
	}
}

func TestStreamSweepValidation(t *testing.T) {
	ok := func(cell int, out *Outcome) error { return nil }
	spec := func(cell int) (Spec, error) {
		return Spec{Adversary: adversary.Complete(2), Proposals: SeqProposals(2)}, nil
	}
	if err := StreamSweep(StreamConfig{Cells: 1, OnOutcome: ok}); err == nil {
		t.Fatal("nil Spec accepted")
	}
	if err := StreamSweep(StreamConfig{Cells: 1, Spec: spec}); err == nil {
		t.Fatal("nil OnOutcome accepted")
	}
	if err := StreamSweep(StreamConfig{Cells: -1, Spec: spec, OnOutcome: ok}); err == nil {
		t.Fatal("negative Cells accepted")
	}
	// Zero cells is a valid empty sweep.
	if err := StreamSweep(StreamConfig{Cells: 0, Spec: spec, OnOutcome: ok}); err != nil {
		t.Fatal(err)
	}
}

func TestCellSeedDistinctAndStable(t *testing.T) {
	seen := map[int64]int{}
	for cell := 0; cell < 10000; cell++ {
		s := CellSeed(20110222, cell)
		if s < 0 {
			t.Fatalf("negative seed for cell %d", cell)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("cells %d and %d share seed %d", prev, cell, s)
		}
		seen[s] = cell
	}
	if CellSeed(1, 1) != CellSeed(1, 1) {
		t.Fatal("CellSeed not deterministic")
	}
	if CellSeed(1, 1) == CellSeed(2, 1) {
		t.Fatal("CellSeed ignores base seed")
	}
}

// TestExecuteAutoBound pins the Spec.MaxRounds == 0 contract stated in
// the field's doc comment: stabilization round + 2n + 5 for Stabilizer
// adversaries, 12n for adversaries with no known stabilization round
// (e.g. Churn). RunToCompletion makes the executed round count equal the
// bound, so a drift between comment and code fails here.
func TestExecuteAutoBound(t *testing.T) {
	n := 6
	churn := adversary.NewChurn(adversary.Figure1StableSkeleton(), 0.05, 3)
	out, err := Execute(Spec{
		Adversary:       churn,
		Proposals:       SeqProposals(n),
		RunToCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 12*n {
		t.Fatalf("non-Stabilizer auto bound ran %d rounds, want 12n = %d", out.Rounds, 12*n)
	}

	stab := adversary.Eventual(adversary.Complete(n), 4) // stabilizes at round 5
	out, err = Execute(Spec{
		Adversary:       stab,
		Proposals:       SeqProposals(n),
		RunToCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := stab.StabilizationRound() + 2*n + 5; out.Rounds != want {
		t.Fatalf("Stabilizer auto bound ran %d rounds, want %d", out.Rounds, want)
	}
}
