package sim

import (
	"testing"

	"kset/internal/adversary"
	"kset/internal/graph"
	"kset/internal/rounds"
)

// TestSpecObserverChainsWithTracker verifies that a user observer passed
// through Spec runs alongside the driver's internal skeleton tracker and
// sees every round in order.
func TestSpecObserverChainsWithTracker(t *testing.T) {
	var seen []int
	out, err := Execute(Spec{
		Adversary: adversary.Figure1(),
		Proposals: SeqProposals(6),
		Observer: rounds.ObserverFunc(func(r int, g *graph.Digraph, _ []rounds.Algorithm) {
			seen = append(seen, r)
			if g == nil {
				t.Error("nil graph in observer")
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != out.Rounds {
		t.Fatalf("observer saw %d rounds, run had %d", len(seen), out.Rounds)
	}
	for i, r := range seen {
		if r != i+1 {
			t.Fatalf("rounds out of order: %v", seen)
		}
	}
	// The driver's own skeleton instrumentation must still work.
	if out.RST != 3 || out.MinK != 3 {
		t.Fatalf("tracker bypassed: RST=%d MinK=%d", out.RST, out.MinK)
	}
}

// TestSpecObserverWithConcurrentExecutor ensures the observer contract
// holds under the goroutine-per-process executor too.
func TestSpecObserverWithConcurrentExecutor(t *testing.T) {
	count := 0
	out, err := Execute(Spec{
		Adversary:  adversary.Complete(4),
		Proposals:  SeqProposals(4),
		Concurrent: true,
		Observer: rounds.ObserverFunc(func(int, *graph.Digraph, []rounds.Algorithm) {
			count++
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != out.Rounds {
		t.Fatalf("observer calls %d != rounds %d", count, out.Rounds)
	}
}
