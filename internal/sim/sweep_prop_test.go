package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kset/internal/adversary"
)

// This file is the property battery for StreamSweep's ordering and
// error-path determinism: for EVERY worker count, outcomes arrive in
// strictly ascending cell order, and on failure the caller sees exactly
// the outcomes below the lowest failing cell followed by that cell's
// error — regardless of how worker scheduling interleaves shard
// completion. The jittered Spec below makes high shards finish first,
// which is exactly the schedule that broke the previous collector (it
// stopped delivering the moment any error arrived, so the delivered
// prefix depended on scheduling, and a high cell's error could shadow a
// low cell's).

// jitterSpec builds a valid tiny spec after a scheduling-dependent
// sleep: later cells sleep less, so with many workers high shards land
// in the reorder buffer before low ones.
func jitterSpec(cells int, rng *rand.Rand) func(cell int) (Spec, error) {
	jitter := make([]time.Duration, cells)
	for i := range jitter {
		jitter[i] = time.Duration(rng.Intn(300)) * time.Microsecond
		if i < cells/4 {
			jitter[i] += time.Millisecond
		}
	}
	return func(cell int) (Spec, error) {
		time.Sleep(jitter[cell])
		return Spec{
			Adversary: adversary.Complete(3),
			Proposals: SeqProposals(3),
		}, nil
	}
}

func TestStreamSweepStrictOrderUnderJitter(t *testing.T) {
	const cells = 120
	for _, workers := range []int{1, 2, 3, 8, 16} {
		rng := rand.New(rand.NewSource(int64(workers)))
		var delivered []int
		err := StreamSweep(StreamConfig{
			Cells:     cells,
			Workers:   workers,
			ShardSize: 4,
			Spec:      jitterSpec(cells, rng),
			OnOutcome: func(cell int, out *Outcome) error {
				delivered = append(delivered, cell)
				return nil
			},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(delivered) != cells {
			t.Fatalf("workers=%d: delivered %d of %d", workers, len(delivered), cells)
		}
		for i, c := range delivered {
			if c != i {
				t.Fatalf("workers=%d: cell %d delivered at position %d", workers, c, i)
			}
		}
	}
}

// TestStreamSweepErrorPathDeterministic pins the repaired contract: a
// failing Spec at a fixed cell yields, for every worker count, exactly
// the outcomes 0..failCell-1 in order and an error naming that cell —
// even though higher shards (dispatched concurrently) already finished.
func TestStreamSweepErrorPathDeterministic(t *testing.T) {
	const cells, failCell = 96, 37
	for _, workers := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(7))
		base := jitterSpec(cells, rng)
		var delivered []int
		var executedHigh atomic.Bool
		err := StreamSweep(StreamConfig{
			Cells:     cells,
			Workers:   workers,
			ShardSize: 4,
			Spec: func(cell int) (Spec, error) {
				if cell == failCell {
					return Spec{}, errors.New("planted failure")
				}
				if cell > failCell+8 {
					executedHigh.Store(true)
				}
				return base(cell)
			},
			OnOutcome: func(cell int, out *Outcome) error {
				delivered = append(delivered, cell)
				return nil
			},
		})
		if err == nil {
			t.Fatalf("workers=%d: sweep did not fail", workers)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("cell %d", failCell)) {
			t.Fatalf("workers=%d: error %q does not name cell %d", workers, err, failCell)
		}
		if len(delivered) != failCell {
			t.Fatalf("workers=%d: delivered %d outcomes before the failure, want exactly %d",
				workers, len(delivered), failCell)
		}
		for i, c := range delivered {
			if c != i {
				t.Fatalf("workers=%d: cell %d delivered at position %d", workers, c, i)
			}
		}
		if workers > 2 && !executedHigh.Load() {
			t.Logf("workers=%d: note: no shard beyond the failing one executed (jitter too tame to stress reordering)", workers)
		}
	}
}

// TestStreamSweepOnOutcomeErrorDeterministic does the same for a
// consumer-side failure: OnOutcome runs on the collector in cell order,
// so its first error is always at the same cell.
func TestStreamSweepOnOutcomeErrorDeterministic(t *testing.T) {
	const cells, failCell = 64, 29
	for _, workers := range []int{1, 3, 8} {
		rng := rand.New(rand.NewSource(11))
		var delivered []int
		err := StreamSweep(StreamConfig{
			Cells:     cells,
			Workers:   workers,
			ShardSize: 5,
			Spec:      jitterSpec(cells, rng),
			OnOutcome: func(cell int, out *Outcome) error {
				if cell == failCell {
					return errors.New("consumer rejects")
				}
				delivered = append(delivered, cell)
				return nil
			},
		})
		if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("cell %d", failCell)) {
			t.Fatalf("workers=%d: err = %v, want a cell-%d error", workers, err, failCell)
		}
		if len(delivered) != failCell {
			t.Fatalf("workers=%d: delivered %d, want %d", workers, len(delivered), failCell)
		}
	}
}

// TestStreamSweepLowestErrorWins plants TWO failing cells; the returned
// error must always be the lower one's, for every worker count (the
// previous collector returned whichever arrived first).
func TestStreamSweepLowestErrorWins(t *testing.T) {
	const cells, lowFail, highFail = 80, 21, 22
	for _, workers := range []int{1, 2, 8} {
		rng := rand.New(rand.NewSource(13))
		base := jitterSpec(cells, rng)
		err := StreamSweep(StreamConfig{
			Cells:     cells,
			Workers:   workers,
			ShardSize: 1, // every cell its own shard: maximal reordering freedom
			Spec: func(cell int) (Spec, error) {
				switch cell {
				case lowFail:
					time.Sleep(2 * time.Millisecond) // make the low failure finish LAST
					return Spec{}, errors.New("low failure")
				case highFail:
					return Spec{}, errors.New("high failure")
				}
				return base(cell)
			},
			OnOutcome: func(cell int, out *Outcome) error { return nil },
		})
		if err == nil || !strings.Contains(err.Error(), "low failure") {
			t.Fatalf("workers=%d: err = %v, want the low-cell failure", workers, err)
		}
	}
}
