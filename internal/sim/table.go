package sim

import (
	"fmt"
	"strings"
)

// Table renders experiment results as aligned plain-text tables, the
// format EXPERIMENTS.md and cmd/ksetbench print.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells are rendered with %v. Row length must match
// the header.
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("sim: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the rendered cell strings, row-major; used by the JSON
// output of cmd/ksetbench. The result shares storage with the table.
func (t *Table) Rows() [][]string { return t.rows }

// Render returns the table as aligned text with a title line and a rule
// under the header.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
