package sim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/stats"
)

// TestOptsShimByteIdentical pins the deprecated Spec.Opts spelling
// against Spec.Params: for the same schedule and options the two specs
// must produce outcomes whose JSON renderings are byte-identical —
// decisions, rounds, skeleton measurements, meter, and the resolved
// run record included. Existing callers and saved sweep configs keep
// the old field; nothing may shift underneath them.
func TestOptsShimByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(5)
		adv := adversary.MaterializeRun(
			adversary.RandomSources(n, 1+rng.Intn(3), rng.Intn(n), 0.3, rng), 12*n)
		opts := core.Options{
			ConservativeDecide: trial%2 == 0,
			PurgeWindow:        (trial % 3) * n,
		}
		oldStyle := Spec{Adversary: adv, Proposals: SeqProposals(n), Opts: opts}
		newStyle := Spec{Adversary: adv, Proposals: SeqProposals(n), Params: opts}
		a, err := Execute(oldStyle)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Execute(newStyle)
		if err != nil {
			t.Fatal(err)
		}
		aj, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(aj) != string(bj) {
			t.Fatalf("trial %d: Opts and Params outcomes differ:\n  opts:   %s\n  params: %s", trial, aj, bj)
		}
		if got := a.Run.Params.(core.Options); got != opts {
			t.Fatalf("trial %d: resolved params %+v, want the shimmed options %+v", trial, got, opts)
		}
	}
}

// TestOptsShimSweepDigestIdentical re-runs a whole streaming sweep with
// the deprecated spelling and requires the rendered aggregate digest to
// match the Params spelling byte for byte — the sweep-level face of the
// shim, covering what ksetbench-style -json sweeps consume.
func TestOptsShimSweepDigestIdentical(t *testing.T) {
	digest := func(useShim bool) string {
		n := 6
		rounds := stats.NewStream()
		var distinct stats.Running
		err := StreamSweep(StreamConfig{
			Cells:   24,
			Workers: 4,
			Spec: func(cell int) (Spec, error) {
				rng := rand.New(rand.NewSource(CellSeed(99, cell)))
				s := Spec{
					Adversary: adversary.RandomSources(n, 1+rng.Intn(3), rng.Intn(n), 0.25, rng),
					Proposals: SeqProposals(n),
				}
				opts := core.Options{ConservativeDecide: cell%2 == 0}
				if useShim {
					s.Opts = opts
				} else {
					s.Params = opts
				}
				return s, nil
			},
			OnOutcome: func(cell int, out *Outcome) error {
				rounds.Add(float64(out.MaxDecisionRound()))
				distinct.Add(float64(len(out.DistinctDecisions())))
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v | distinct mean=%v max=%v", rounds.Summary(), distinct.Mean(), distinct.Max())
	}
	oldStyle, newStyle := digest(true), digest(false)
	if oldStyle != newStyle {
		t.Fatalf("sweep digests differ:\n  Opts:   %s\n  Params: %s", oldStyle, newStyle)
	}
}
