// Package sim is the experiment driver: it wires an adversary, a
// registered algorithm family (internal/algo — Algorithm 1 by default,
// or a baseline), the skeleton tracker, the wire meter, and the outcome
// checker into one call (Execute), and runs parameter sweeps on a worker
// pool — either buffered (Sweep) or sharded-and-streaming (StreamSweep),
// which delivers outcomes to incremental aggregators in deterministic
// cell order without retaining per-trial records. All experiment tables
// in EXPERIMENTS.md are produced through this package (see cmd/ksetbench
// and bench_test.go).
package sim

import (
	"fmt"
	"sync"

	"kset/internal/algo"
	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/predicate"
	"kset/internal/rounds"
	"kset/internal/skeleton"
	"kset/internal/trace"
	"kset/internal/wire"
)

// Spec describes one simulation.
type Spec struct {
	// Adversary generates the run; required.
	Adversary rounds.Adversary
	// Algorithm names the registered algorithm family to execute; ""
	// means algo.Default ("kset", Algorithm 1). See internal/algo.
	Algorithm string
	// Proposals are the initial values; len must equal Adversary.N().
	Proposals []int64
	// Params carries the algorithm family's options (core.Options for
	// kset, approx.Options for approx); nil means the family defaults.
	// Resolve normalizes it in place.
	Params any
	// Opts configures Algorithm 1.
	//
	// Deprecated: Opts is the k-set-only spelling of Params, kept
	// working for existing callers — when Algorithm is "kset" (or
	// empty) and Params is nil, Opts is used, and sweeps built either
	// way produce byte-identical output. New code should set Params.
	Opts core.Options
	// NewProcess optionally overrides the algorithm under test (e.g. a
	// baseline); when nil, the registered Algorithm family runs with
	// Proposals and Params.
	NewProcess func(self int) rounds.Algorithm
	// MaxRounds bounds the run; 0 means the family's automatic bound
	// (for kset, generous enough for Lemma 11: stabilization + 2n + 5,
	// or 12n without a Stabilizer).
	MaxRounds int
	// RunToCompletion keeps executing until MaxRounds even after all
	// processes decided (needed when later rounds are inspected).
	RunToCompletion bool
	// Concurrent selects the goroutine-per-process executor.
	Concurrent bool
	// Runner, if non-nil, overrides the executor entirely (taking
	// precedence over Concurrent). The distributed runtime plugs in here
	// (runtime.NewRunner), so the whole sim pipeline — skeleton tracker,
	// wire meter, outcome checks — runs unchanged over a real transport;
	// the differential harness compares such runs against the lockstep
	// executor. A Runner is single-use when it owns a transport: build a
	// fresh Spec per Execute call.
	Runner func(rounds.Config) (*rounds.Result, error)
	// MeterMessages measures encoded message sizes through the family's
	// wire codec (for kset, the internal/wire encoding the Section V
	// bit-complexity claim is stated in).
	MeterMessages bool
	// Observer, if non-nil, is notified after every round (in addition
	// to the skeleton tracker the driver installs).
	Observer rounds.Observer
}

// Outcome bundles the decision summary with skeleton- and wire-level
// measurements.
type Outcome struct {
	trace.Outcome
	// RST is the observed stabilization round of the skeleton (last
	// round that removed an edge; >= 1) — the paper's r_ST, the pivot of
	// the Lemma 11 termination bound r_ST + 2n - 1.
	RST int
	// RootComps is the number of root components of the stable skeleton;
	// Theorem 1 bounds it by MinK.
	RootComps int
	// MinK is the smallest k for which Psrcs(k) holds in this run — the
	// tightest decision-diversity bound the paper's theorems give it.
	// Exact for n <= 64 (and whenever the polynomial bounds pin it);
	// above that it is the certified clique-cover upper bound, so
	// distinct decisions <= MinK remains a sound check at every scale
	// (see minKOf).
	MinK int
	// Skeleton is the stable skeleton G^∩∞ of the run.
	Skeleton *graph.Digraph
	// Meter holds wire statistics when Spec.MeterMessages was set.
	Meter wire.Meter
	// Run is the resolved algorithm run (family name, normalized
	// params, stabilization data, round bound) when a registered family
	// executed; nil when Spec.NewProcess overrode the algorithm.
	// CheckAlgorithm evaluates the family's oracles against it.
	Run *algo.Run
	// Observer echoes Spec.Observer, so sweep consumers that attach
	// per-run instrumentation to a spec (e.g. the E15 stale-edge meter)
	// can read it back from the streamed outcome.
	Observer rounds.Observer
}

// meteredProc wraps Algorithm 1 to measure outgoing message sizes.
type meteredProc struct {
	*core.Process
	mu    *sync.Mutex
	meter *wire.Meter
}

// Send implements rounds.Algorithm; it feeds every outgoing (tag, x, G)
// message through the wire meter before broadcast, measuring the
// Section V bit-complexity claim without touching the algorithm.
func (m meteredProc) Send(r int) any {
	msg := m.Process.Send(r).(*core.Message)
	m.mu.Lock()
	m.meter.ObserveMessage(*msg)
	m.mu.Unlock()
	return msg
}

// meteredAlg is the family-generic metering wrapper: it measures each
// outgoing message by encoding it through the family's own codec —
// exactly the bytes the distributed runtime would put on the wire.
type meteredAlg struct {
	rounds.Algorithm
	dec   rounds.Decider
	mu    *sync.Mutex
	codec algo.Codec
	buf   *[]byte
	meter *wire.Meter
}

// Send implements rounds.Algorithm.
func (m meteredAlg) Send(r int) any {
	msg := m.Algorithm.Send(r)
	m.mu.Lock()
	// Registration self-tests every codec against its family's own
	// messages, so an encode failure here cannot happen in a registered
	// family; an unmetered message is the safe degradation regardless.
	if b, err := m.codec.Encode((*m.buf)[:0], msg); err == nil {
		*m.buf = b
		m.meter.Observe(len(b))
	}
	m.mu.Unlock()
	return msg
}

// Proposal implements rounds.Decider.
func (m meteredAlg) Proposal() int64 { return m.dec.Proposal() }

// Decided implements rounds.Decider.
func (m meteredAlg) Decided() bool { return m.dec.Decided() }

// Decision implements rounds.Decider.
func (m meteredAlg) Decision() (int64, int) { return m.dec.Decision() }

// meteredFactory wraps a family's process factory with metering. The
// kset family keeps its historical wrapper (byte-identical meters are
// pinned by the E5 differential battery); other families meter through
// their codec.
func meteredFactory(alg *algo.Algorithm, inner func(int) rounds.Algorithm, meter *wire.Meter) func(int) rounds.Algorithm {
	var mu sync.Mutex
	if alg.Name == algo.KSet {
		return func(self int) rounds.Algorithm {
			return meteredProc{Process: inner(self).(*core.Process), mu: &mu, meter: meter}
		}
	}
	buf := new([]byte)
	return func(self int) rounds.Algorithm {
		p := inner(self)
		dec, ok := p.(rounds.Decider)
		if !ok {
			// A family with a custom Collect and no Decider cannot be
			// wrapped without hiding its real type; run it unmetered.
			return p
		}
		return meteredAlg{Algorithm: p, dec: dec, mu: &mu, codec: alg.Codec, buf: buf, meter: meter}
	}
}

// Resolve normalizes the spec in place for its registered algorithm
// family: it validates the adversary and proposals, applies the
// deprecated Opts shim, fills Params defaults through the family's
// Prepare hook, and computes the automatic MaxRounds bound. Execute
// calls it internally; the differential harness (runtime.Diff) calls it
// before materializing the schedule, so parameter defaults that depend
// on the adversary's stabilization round are identical in both
// executions. Resolve is idempotent.
func (s *Spec) Resolve() error {
	if s.Adversary == nil {
		return fmt.Errorf("sim: nil adversary")
	}
	n := s.Adversary.N()
	if s.NewProcess != nil {
		if s.MaxRounds == 0 {
			s.MaxRounds = defaultMaxRounds(s.Adversary)
		}
		return nil
	}
	if len(s.Proposals) != n {
		return fmt.Errorf("sim: %d proposals for %d processes", len(s.Proposals), n)
	}
	alg, err := algo.Lookup(s.Algorithm)
	if err != nil {
		return err
	}
	s.Algorithm = alg.Name
	run := s.algoRun(alg, n)
	if err := alg.Prepare(&run); err != nil {
		return err
	}
	s.Params = run.Params
	if s.MaxRounds == 0 {
		s.MaxRounds = alg.MaxRounds(run)
	}
	return nil
}

// algoRun assembles the family's run description from the spec and the
// adversary's stabilization data.
func (s *Spec) algoRun(alg *algo.Algorithm, n int) algo.Run {
	run := algo.Run{
		Algorithm: alg.Name,
		N:         n,
		Proposals: s.Proposals,
		Params:    s.Params,
		MaxRounds: s.MaxRounds,
	}
	if alg.Name == algo.KSet && run.Params == nil {
		run.Params = s.Opts // the deprecated Spec.Opts shim
	}
	if st, ok := s.Adversary.(rounds.Stabilizer); ok {
		run.Stabilizes = true
		run.Stab = st.StabilizationRound()
	}
	return run
}

// defaultMaxRounds is the historical automatic bound, retained for
// NewProcess-override runs (baselines): stabilization + 2n + 5, or 12n
// without a Stabilizer.
func defaultMaxRounds(adv rounds.Adversary) int {
	n := adv.N()
	if s, ok := adv.(rounds.Stabilizer); ok {
		return s.StabilizationRound() + 2*n + 5
	}
	return 12 * n
}

// Execute runs one simulation.
func Execute(spec Spec) (*Outcome, error) {
	if err := spec.Resolve(); err != nil {
		return nil, err
	}
	n := spec.Adversary.N()

	out := &Outcome{Observer: spec.Observer}
	tracker := skeleton.NewTracker(n, false)

	factory := spec.NewProcess
	collect := trace.Collect
	if factory == nil {
		alg := algo.MustLookup(spec.Algorithm)
		run := spec.algoRun(alg, n)
		f, err := alg.NewFactory(run)
		if err != nil {
			return nil, err
		}
		factory = f
		collect = alg.Collect
		out.Run = &run
		if spec.MeterMessages {
			factory = meteredFactory(alg, factory, &out.Meter)
		}
	}

	var observer rounds.Observer = tracker
	if spec.Observer != nil {
		observer = rounds.MultiObserver{tracker, spec.Observer}
	}
	cfg := rounds.Config{
		Adversary:  spec.Adversary,
		NewProcess: factory,
		MaxRounds:  spec.MaxRounds,
		Observer:   observer,
	}
	if !spec.RunToCompletion {
		cfg.StopWhen = rounds.AllDecided
	}

	runner := rounds.RunSequential
	if spec.Concurrent {
		runner = rounds.RunConcurrent
	}
	if spec.Runner != nil {
		runner = spec.Runner
	}
	res, err := runner(cfg)
	if err != nil {
		return nil, err
	}

	oc, err := collect(res)
	if err != nil {
		return nil, err
	}
	out.Outcome = *oc

	// Prefer the adversary's exact stable skeleton (runs may stop before
	// the tracker has seen all transient edges disappear).
	if sp, ok := spec.Adversary.(interface{ StableSkeleton() *graph.Digraph }); ok {
		out.Skeleton = sp.StableSkeleton()
	} else {
		out.Skeleton = tracker.Skeleton()
	}
	out.RST = tracker.LastChange()
	if out.RST < 1 {
		out.RST = 1
	}
	out.RootComps = len(graph.RootComponents(out.Skeleton))
	out.MinK = minKOf(out.Skeleton)
	return out, nil
}

// CheckAlgorithm evaluates the executed family's whole-run oracles
// (validity, agreement/k-bound, termination — as the family defines
// them) against this outcome and returns the violations; nil when every
// oracle held, and nil for NewProcess-override runs, which have no
// registered oracle set. A violation means the algorithm, an executor,
// or a transport broke its contract — internal/check's whole-trace
// oracles and the service's per-session bound verdicts are built on
// this hook.
func (o *Outcome) CheckAlgorithm() []algo.Violation {
	if o.Run == nil {
		return nil
	}
	alg, err := algo.Lookup(o.Run.Algorithm)
	if err != nil || alg.Check == nil {
		return nil
	}
	oc := o.Outcome
	return alg.Check(*o.Run, algo.Facts{
		Outcome:   &oc,
		Skeleton:  o.Skeleton,
		RootComps: o.RootComps,
		MinK:      o.MinK,
	})
}

// minKOf computes Outcome.MinK. The exact independence-number search is
// exponential in the worst case; past the 64-process single-word bitset
// regime, sparse shares-a-source graphs make it genuinely intractable
// (the n=128 differential suite hit hours-long searches). There the
// polynomial two-sided bounds stand in: when they pin the answer the
// value is still exact, and when they disagree the clique-cover upper
// bound is reported — the smallest k the harness can certify Psrcs(k)
// for in polynomial time. Every k-bound check (distinct decisions <=
// MinK) remains sound either way, because the exact MinK never exceeds
// the reported value.
func minKOf(skel *graph.Digraph) int {
	lo, hi := predicate.MinKBounds(skel)
	if lo == hi || skel.N() > 64 {
		return hi
	}
	return predicate.MinK(skel)
}

// SeqProposals returns the canonical distinct proposal vector
// 1, 2, ..., n.
func SeqProposals(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}
