// Package sim is the experiment driver: it wires an adversary, Algorithm 1
// (or a baseline), the skeleton tracker, the wire meter, and the outcome
// checker into one call (Execute), and runs parameter sweeps on a worker
// pool — either buffered (Sweep) or sharded-and-streaming (StreamSweep),
// which delivers outcomes to incremental aggregators in deterministic
// cell order without retaining per-trial records. All experiment tables
// in EXPERIMENTS.md are produced through this package (see cmd/ksetbench
// and bench_test.go).
package sim

import (
	"fmt"
	"sync"

	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/predicate"
	"kset/internal/rounds"
	"kset/internal/skeleton"
	"kset/internal/trace"
	"kset/internal/wire"
)

// Spec describes one simulation.
type Spec struct {
	// Adversary generates the run; required.
	Adversary rounds.Adversary
	// Proposals are the initial values; len must equal Adversary.N().
	Proposals []int64
	// Opts configures Algorithm 1.
	Opts core.Options
	// NewProcess optionally overrides the algorithm under test (e.g. a
	// baseline); when nil, Algorithm 1 with Proposals/Opts is used.
	NewProcess func(self int) rounds.Algorithm
	// MaxRounds bounds the run; 0 means an automatic bound generous
	// enough for Lemma 11 (stabilization + 2n + 5, or 12n without a
	// Stabilizer).
	MaxRounds int
	// RunToCompletion keeps executing until MaxRounds even after all
	// processes decided (needed when later rounds are inspected).
	RunToCompletion bool
	// Concurrent selects the goroutine-per-process executor.
	Concurrent bool
	// Runner, if non-nil, overrides the executor entirely (taking
	// precedence over Concurrent). The distributed runtime plugs in here
	// (runtime.NewRunner), so the whole sim pipeline — skeleton tracker,
	// wire meter, outcome checks — runs unchanged over a real transport;
	// the differential harness compares such runs against the lockstep
	// executor. A Runner is single-use when it owns a transport: build a
	// fresh Spec per Execute call.
	Runner func(rounds.Config) (*rounds.Result, error)
	// MeterMessages measures encoded message sizes (Algorithm 1 only).
	MeterMessages bool
	// Observer, if non-nil, is notified after every round (in addition
	// to the skeleton tracker the driver installs).
	Observer rounds.Observer
}

// Outcome bundles the decision summary with skeleton- and wire-level
// measurements.
type Outcome struct {
	trace.Outcome
	// RST is the observed stabilization round of the skeleton (last
	// round that removed an edge; >= 1) — the paper's r_ST, the pivot of
	// the Lemma 11 termination bound r_ST + 2n - 1.
	RST int
	// RootComps is the number of root components of the stable skeleton;
	// Theorem 1 bounds it by MinK.
	RootComps int
	// MinK is the smallest k for which Psrcs(k) holds in this run — the
	// tightest decision-diversity bound the paper's theorems give it.
	// Exact for n <= 64 (and whenever the polynomial bounds pin it);
	// above that it is the certified clique-cover upper bound, so
	// distinct decisions <= MinK remains a sound check at every scale
	// (see minKOf).
	MinK int
	// Skeleton is the stable skeleton G^∩∞ of the run.
	Skeleton *graph.Digraph
	// Meter holds wire statistics when Spec.MeterMessages was set.
	Meter wire.Meter
	// Observer echoes Spec.Observer, so sweep consumers that attach
	// per-run instrumentation to a spec (e.g. the E15 stale-edge meter)
	// can read it back from the streamed outcome.
	Observer rounds.Observer
}

// meteredProc wraps Algorithm 1 to measure outgoing message sizes.
type meteredProc struct {
	*core.Process
	mu    *sync.Mutex
	meter *wire.Meter
}

// Send implements rounds.Algorithm; it feeds every outgoing (tag, x, G)
// message through the wire meter before broadcast, measuring the
// Section V bit-complexity claim without touching the algorithm.
func (m meteredProc) Send(r int) any {
	msg := m.Process.Send(r).(*core.Message)
	m.mu.Lock()
	m.meter.ObserveMessage(*msg)
	m.mu.Unlock()
	return msg
}

// Execute runs one simulation.
func Execute(spec Spec) (*Outcome, error) {
	if spec.Adversary == nil {
		return nil, fmt.Errorf("sim: nil adversary")
	}
	n := spec.Adversary.N()
	if spec.NewProcess == nil && len(spec.Proposals) != n {
		return nil, fmt.Errorf("sim: %d proposals for %d processes", len(spec.Proposals), n)
	}

	maxRounds := spec.MaxRounds
	if maxRounds == 0 {
		if s, ok := spec.Adversary.(rounds.Stabilizer); ok {
			maxRounds = s.StabilizationRound() + 2*n + 5
		} else {
			maxRounds = 12 * n
		}
	}

	out := &Outcome{Observer: spec.Observer}
	tracker := skeleton.NewTracker(n, false)

	factory := spec.NewProcess
	if factory == nil {
		inner := core.NewFactory(spec.Proposals, spec.Opts)
		if spec.MeterMessages {
			var mu sync.Mutex
			factory = func(self int) rounds.Algorithm {
				return meteredProc{
					Process: inner(self).(*core.Process),
					mu:      &mu,
					meter:   &out.Meter,
				}
			}
		} else {
			factory = inner
		}
	}

	var observer rounds.Observer = tracker
	if spec.Observer != nil {
		observer = rounds.MultiObserver{tracker, spec.Observer}
	}
	cfg := rounds.Config{
		Adversary:  spec.Adversary,
		NewProcess: factory,
		MaxRounds:  maxRounds,
		Observer:   observer,
	}
	if !spec.RunToCompletion {
		cfg.StopWhen = rounds.AllDecided
	}

	runner := rounds.RunSequential
	if spec.Concurrent {
		runner = rounds.RunConcurrent
	}
	if spec.Runner != nil {
		runner = spec.Runner
	}
	res, err := runner(cfg)
	if err != nil {
		return nil, err
	}

	oc, err := trace.Collect(res)
	if err != nil {
		return nil, err
	}
	out.Outcome = *oc

	// Prefer the adversary's exact stable skeleton (runs may stop before
	// the tracker has seen all transient edges disappear).
	if sp, ok := spec.Adversary.(interface{ StableSkeleton() *graph.Digraph }); ok {
		out.Skeleton = sp.StableSkeleton()
	} else {
		out.Skeleton = tracker.Skeleton()
	}
	out.RST = tracker.LastChange()
	if out.RST < 1 {
		out.RST = 1
	}
	out.RootComps = len(graph.RootComponents(out.Skeleton))
	out.MinK = minKOf(out.Skeleton)
	return out, nil
}

// minKOf computes Outcome.MinK. The exact independence-number search is
// exponential in the worst case; past the 64-process single-word bitset
// regime, sparse shares-a-source graphs make it genuinely intractable
// (the n=128 differential suite hit hours-long searches). There the
// polynomial two-sided bounds stand in: when they pin the answer the
// value is still exact, and when they disagree the clique-cover upper
// bound is reported — the smallest k the harness can certify Psrcs(k)
// for in polynomial time. Every k-bound check (distinct decisions <=
// MinK) remains sound either way, because the exact MinK never exceeds
// the reported value.
func minKOf(skel *graph.Digraph) int {
	lo, hi := predicate.MinKBounds(skel)
	if lo == hi || skel.N() > 64 {
		return hi
	}
	return predicate.MinK(skel)
}

// SeqProposals returns the canonical distinct proposal vector
// 1, 2, ..., n.
func SeqProposals(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}
