package graph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Edge is a directed edge from From to To.
type Edge struct {
	From, To int
}

func (e Edge) String() string { return fmt.Sprintf("p%d->p%d", e.From+1, e.To+1) }

// Digraph is a directed graph over a node universe 0..n-1 with an explicit
// present-node set (the paper distinguishes V from Π: approximation graphs
// contain only the processes a node has heard about). Both out- and
// in-adjacency are maintained so that timely neighborhoods (in-neighbor
// queries) are O(1).
type Digraph struct {
	n       int
	present NodeSet
	out     []NodeSet
	in      []NodeSet
}

// NewDigraph returns an empty graph over the universe 0..n-1 with no nodes
// present. All 2n+1 node sets (present, out, in) share one flat []uint64
// arena, so construction costs three allocations instead of 2n+2; the
// full-capacity reslices confine each set to its arena slot even if it is
// later grown through append.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative universe size %d", n))
	}
	words := (n + wordBits - 1) / wordBits
	sets := make([]NodeSet, 2*n)
	arena := make([]uint64, (2*n+1)*words)
	g := &Digraph{
		n:       n,
		present: NodeSet{words: arena[0:words:words]},
		out:     sets[:n:n],
		in:      sets[n:],
	}
	for i := 0; i < n; i++ {
		lo := (1 + i) * words
		g.out[i] = NodeSet{words: arena[lo : lo+words : lo+words]}
		lo = (1 + n + i) * words
		g.in[i] = NodeSet{words: arena[lo : lo+words : lo+words]}
	}
	return g
}

// NewFullDigraph returns a graph over 0..n-1 with all nodes present and no
// edges.
func NewFullDigraph(n int) *Digraph {
	g := NewDigraph(n)
	for i := 0; i < n; i++ {
		g.AddNode(i)
	}
	return g
}

// CompleteDigraph returns the complete graph on n nodes including all
// self-loops: every process hears from every process.
func CompleteDigraph(n int) *Digraph {
	g := NewFullDigraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// N returns the size of the node universe.
func (g *Digraph) N() int { return g.n }

// Nodes returns the set of present nodes (a copy).
func (g *Digraph) Nodes() NodeSet { return g.present.Clone() }

// NumNodes returns the number of present nodes.
func (g *Digraph) NumNodes() int { return g.present.Len() }

// HasNode reports whether v is present.
func (g *Digraph) HasNode(v int) bool { return g.present.Has(v) }

// AddNode marks v present.
func (g *Digraph) AddNode(v int) {
	g.check(v)
	g.present.Add(v)
}

// RemoveNode removes v and all its incident edges.
func (g *Digraph) RemoveNode(v int) {
	g.check(v)
	if !g.present.Has(v) {
		return
	}
	g.out[v].ForEach(func(w int) { g.in[w].Remove(v) })
	g.in[v].ForEach(func(u int) { g.out[u].Remove(v) })
	g.out[v].Clear()
	g.in[v].Clear()
	g.present.Remove(v)
}

// AddEdge inserts the edge u->v, adding both endpoints if absent.
func (g *Digraph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	g.present.Add(u)
	g.present.Add(v)
	g.out[u].Add(v)
	g.in[v].Add(u)
}

// RemoveEdge deletes the edge u->v if present; endpoints stay.
func (g *Digraph) RemoveEdge(u, v int) {
	g.check(u)
	g.check(v)
	g.out[u].Remove(v)
	g.in[v].Remove(u)
}

// HasEdge reports whether the edge u->v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	return g.out[u].Has(v)
}

// OutNeighbors returns a copy of the out-neighborhood of v.
func (g *Digraph) OutNeighbors(v int) NodeSet {
	g.check(v)
	return g.out[v].Clone()
}

// InNeighbors returns a copy of the in-neighborhood of v. For a round graph
// G^r this is exactly the set of processes v hears from in round r.
func (g *Digraph) InNeighbors(v int) NodeSet {
	g.check(v)
	return g.in[v].Clone()
}

// HasCommonInNeighbor reports whether some process sends to both q and
// qq, i.e. PT(q) ∩ PT(qq) ≠ ∅ when g is a skeleton. Unlike intersecting
// the InNeighbors copies, this compares the stored bitsets directly.
func (g *Digraph) HasCommonInNeighbor(q, qq int) bool {
	g.check(q)
	g.check(qq)
	return g.in[q].Intersects(g.in[qq])
}

// ForEachOut calls fn for every out-neighbor of v in ascending order.
func (g *Digraph) ForEachOut(v int, fn func(w int)) {
	g.check(v)
	g.out[v].ForEach(fn)
}

// ForEachIn calls fn for every in-neighbor of v in ascending order.
func (g *Digraph) ForEachIn(v int, fn func(u int)) {
	g.check(v)
	g.in[v].ForEach(fn)
}

// OutDegree returns the number of out-neighbors of v.
func (g *Digraph) OutDegree(v int) int {
	g.check(v)
	return g.out[v].Len()
}

// InDegree returns the number of in-neighbors of v.
func (g *Digraph) InDegree(v int) int {
	g.check(v)
	return g.in[v].Len()
}

// NumEdges returns the total number of edges, self-loops included.
func (g *Digraph) NumEdges() int {
	n := 0
	g.present.ForEach(func(v int) { n += g.out[v].Len() })
	return n
}

// Edges returns every edge in deterministic (from, to) order.
func (g *Digraph) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	g.present.ForEach(func(u int) {
		g.out[u].ForEach(func(v int) {
			edges = append(edges, Edge{u, v})
		})
	})
	return edges
}

// AddSelfLoops adds v->v for every present node. Round graphs in this
// reproduction always contain all self-loops (every process hears itself;
// cf. the caption of the paper's Figure 1).
func (g *Digraph) AddSelfLoops() {
	g.present.ForEach(func(v int) { g.AddEdge(v, v) })
}

// Clone returns a deep copy of g, arena-backed like NewDigraph.
func (g *Digraph) Clone() *Digraph {
	c := NewDigraph(g.n)
	c.present.CopyFrom(g.present)
	for i := 0; i < g.n; i++ {
		c.out[i].CopyFrom(g.out[i])
		c.in[i].CopyFrom(g.in[i])
	}
	return c
}

// Equal reports whether g and h have identical present-node and edge sets.
func (g *Digraph) Equal(h *Digraph) bool {
	if g.n != h.n || !g.present.Equal(h.present) {
		return false
	}
	for i := 0; i < g.n; i++ {
		if !g.out[i].Equal(h.out[i]) {
			return false
		}
	}
	return true
}

// Intersect returns the graph ⟨V ∩ V', E ∩ E'⟩ as in the paper's definition
// of skeleton intersection (footnote 3).
func (g *Digraph) Intersect(h *Digraph) *Digraph {
	if g.n != h.n {
		panic(fmt.Sprintf("graph: intersect over different universes %d and %d", g.n, h.n))
	}
	r := NewDigraph(g.n)
	r.present = g.present.Intersect(h.present)
	r.present.ForEach(func(u int) {
		common := g.out[u].Intersect(h.out[u])
		common.IntersectWith(r.present)
		common.ForEach(func(v int) { r.AddEdge(u, v) })
	})
	return r
}

// IntersectWith replaces g by g ∩ h in place and reports whether g changed.
// This is the hot operation of skeleton maintenance (E^∩r = ⋂ E^r'); it
// works word-by-word on the bitsets and allocates nothing.
func (g *Digraph) IntersectWith(h *Digraph) bool {
	if g.n != h.n {
		panic(fmt.Sprintf("graph: intersect over different universes %d and %d", g.n, h.n))
	}
	changed := false
	// Drop nodes absent from h, with their incident edges.
	for i := range g.present.words {
		var hw uint64
		if i < len(h.present.words) {
			hw = h.present.words[i]
		}
		rem := g.present.words[i] &^ hw
		for rem != 0 {
			b := bits.TrailingZeros64(rem)
			rem &^= 1 << b
			g.RemoveNode(i*wordBits + b)
			changed = true
		}
	}
	// Drop edges absent from h.
	for u := g.present.Next(0); u >= 0; u = g.present.Next(u + 1) {
		ow := g.out[u].words
		hw := h.out[u].words
		for i := range ow {
			var hwi uint64
			if i < len(hw) {
				hwi = hw[i]
			}
			extra := ow[i] &^ hwi
			for extra != 0 {
				b := bits.TrailingZeros64(extra)
				extra &^= 1 << b
				g.RemoveEdge(u, i*wordBits+b)
				changed = true
			}
		}
	}
	return changed
}

// Union returns the graph ⟨V ∪ V', E ∪ E'⟩.
func (g *Digraph) Union(h *Digraph) *Digraph {
	if g.n != h.n {
		panic(fmt.Sprintf("graph: union over different universes %d and %d", g.n, h.n))
	}
	r := g.Clone()
	h.present.ForEach(func(v int) { r.AddNode(v) })
	h.present.ForEach(func(u int) {
		h.out[u].ForEach(func(v int) { r.AddEdge(u, v) })
	})
	return r
}

// InducedSubgraph returns the subgraph induced by keep ∩ present nodes.
func (g *Digraph) InducedSubgraph(keep NodeSet) *Digraph {
	r := NewDigraph(g.n)
	kept := g.present.Intersect(keep)
	kept.ForEach(func(v int) { r.AddNode(v) })
	kept.ForEach(func(u int) {
		g.out[u].ForEach(func(v int) {
			if kept.Has(v) {
				r.AddEdge(u, v)
			}
		})
	})
	return r
}

// Transpose returns the graph with every edge reversed.
func (g *Digraph) Transpose() *Digraph {
	r := NewDigraph(g.n)
	g.present.ForEach(func(v int) { r.AddNode(v) })
	g.present.ForEach(func(u int) {
		g.out[u].ForEach(func(v int) { r.AddEdge(v, u) })
	})
	return r
}

// SubgraphOf reports whether g ⊆ h (node- and edge-wise).
func (g *Digraph) SubgraphOf(h *Digraph) bool {
	if g.n != h.n || !g.present.SubsetOf(h.present) {
		return false
	}
	ok := true
	g.present.ForEach(func(u int) {
		if !g.out[u].SubsetOf(h.out[u]) {
			ok = false
		}
	})
	return ok
}

// String renders the graph as a deterministic adjacency list, e.g.
// "p1->{p2}; p2->{p1,p3}".
func (g *Digraph) String() string {
	var parts []string
	g.present.ForEach(func(u int) {
		targets := make([]string, 0, g.out[u].Len())
		g.out[u].ForEach(func(v int) { targets = append(targets, fmt.Sprintf("p%d", v+1)) })
		sort.Strings(targets)
		parts = append(parts, fmt.Sprintf("p%d->{%s}", u+1, strings.Join(targets, ",")))
	})
	return strings.Join(parts, "; ")
}

func (g *Digraph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: node %d out of universe [0,%d)", v, g.n))
	}
}
