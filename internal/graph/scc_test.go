package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// bruteSCC computes components via pairwise reachability, the simplest
// possible oracle implementation.
func bruteSCC(g *Digraph) []NodeSet {
	var comps []NodeSet
	assigned := NewNodeSet(g.N())
	g.Nodes().ForEach(func(v int) {
		if assigned.Has(v) {
			return
		}
		comp := ComponentOf(g, v)
		assigned.UnionWith(comp)
		comps = append(comps, comp)
	})
	return comps
}

func sameComponents(a, b []NodeSet) bool {
	if len(a) != len(b) {
		return false
	}
	a = append([]NodeSet(nil), a...)
	b = append([]NodeSet(nil), b...)
	SortNodeSets(a)
	SortNodeSets(b)
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestSCCLineGraph(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	comps := SCC(g)
	if len(comps) != 4 {
		t.Fatalf("len = %d, want 4 singletons", len(comps))
	}
}

func TestSCCCycle(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	comps := SCC(g)
	if len(comps) != 1 || comps[0].Len() != 3 {
		t.Fatalf("comps = %v", comps)
	}
}

func TestSCCTwoComponents(t *testing.T) {
	g := NewDigraph(5)
	// component {0,1}, component {2,3,4}, bridge 1->2
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	g.AddEdge(1, 2)
	comps := SCC(g)
	if len(comps) != 2 {
		t.Fatalf("len = %d, want 2", len(comps))
	}
	if !sameComponents(comps, []NodeSet{NodeSetOf(0, 1), NodeSetOf(2, 3, 4)}) {
		t.Fatalf("comps = %v", comps)
	}
}

func TestSCCReverseTopologicalOrder(t *testing.T) {
	// Tarjan emits a component before any component it points into.
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	comps := SCC(g)
	if len(comps) != 2 {
		t.Fatalf("len = %d", len(comps))
	}
	if !comps[0].Equal(NodeSetOf(2, 3)) {
		t.Fatalf("first component %v, want downstream {p3,p4}", comps[0])
	}
}

func TestSCCIgnoresAbsentNodes(t *testing.T) {
	g := NewDigraph(6)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	comps := SCC(g)
	if len(comps) != 1 || !comps[0].Equal(NodeSetOf(1, 2)) {
		t.Fatalf("comps = %v", comps)
	}
}

func TestSCCEmpty(t *testing.T) {
	if comps := SCC(NewDigraph(4)); len(comps) != 0 {
		t.Fatalf("comps of empty graph = %v", comps)
	}
}

func TestSCCAgainstBruteForceAndKosaraju(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		g := RandomDigraph(n, rng.Float64()*0.5, rng)
		// Randomly drop some nodes so the present set is a strict subset.
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.2 {
				g.RemoveNode(v)
			}
		}
		want := bruteSCC(g)
		if got := SCC(g); !sameComponents(got, want) {
			t.Fatalf("Tarjan mismatch on %v:\n got  %v\n want %v", g, got, want)
		}
		if got := SCCKosaraju(g); !sameComponents(got, want) {
			t.Fatalf("Kosaraju mismatch on %v:\n got  %v\n want %v", g, got, want)
		}
	}
}

func TestSCCComponentsPartitionNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		g := RandomDigraph(10, 0.25, rng)
		comps := SCC(g)
		union := NewNodeSet(10)
		total := 0
		for _, c := range comps {
			if c.Empty() {
				t.Fatal("empty component")
			}
			if union.Intersects(c) {
				t.Fatal("components overlap")
			}
			union.UnionWith(c)
			total += c.Len()
		}
		if !union.Equal(g.Nodes()) || total != g.NumNodes() {
			t.Fatal("components do not partition the nodes")
		}
	}
}

func TestSCCDeepGraphNoStackOverflow(t *testing.T) {
	const n = 50000
	g := NewDigraph(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	g.AddEdge(n-1, 0) // one giant cycle
	comps := SCC(g)
	if len(comps) != 1 || comps[0].Len() != n {
		t.Fatalf("giant cycle not a single component: %d comps", len(comps))
	}
}

func TestComponentOf(t *testing.T) {
	g := NewDigraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddNode(4)
	if got := ComponentOf(g, 0); !got.Equal(NodeSetOf(0, 1)) {
		t.Fatalf("ComponentOf(0) = %v", got)
	}
	if got := ComponentOf(g, 2); !got.Equal(NodeSetOf(2)) {
		t.Fatalf("ComponentOf(2) = %v", got)
	}
	if got := ComponentOf(g, 4); !got.Equal(NodeSetOf(4)) {
		t.Fatalf("ComponentOf(4) = %v", got)
	}
}

func TestStronglyConnected(t *testing.T) {
	single := NewDigraph(3)
	single.AddNode(1)
	if !StronglyConnected(single) {
		t.Fatal("single node should be strongly connected (Algorithm 1 line 28)")
	}
	empty := NewDigraph(3)
	if StronglyConnected(empty) {
		t.Fatal("empty graph should not be strongly connected")
	}
	cyc := NewDigraph(3)
	cyc.AddEdge(0, 1)
	cyc.AddEdge(1, 2)
	cyc.AddEdge(2, 0)
	if !StronglyConnected(cyc) {
		t.Fatal("cycle should be strongly connected")
	}
	cyc.AddNode(0) // no-op
	cyc.RemoveEdge(2, 0)
	if StronglyConnected(cyc) {
		t.Fatal("broken cycle reported strongly connected")
	}
}

func TestStronglyConnectedMatchesSCCCount(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		g := RandomDigraph(8, rng.Float64(), rng)
		want := len(SCC(g)) == 1
		if got := StronglyConnected(g); got != want {
			t.Fatalf("StronglyConnected = %v, SCC count says %v for %v", got, want, g)
		}
	}
}

func TestSCCLabelSetsSorted(t *testing.T) {
	// Kosaraju returns topological order: upstream component first.
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	comps := SCCKosaraju(g)
	if len(comps) != 2 || !comps[0].Equal(NodeSetOf(0, 1)) {
		t.Fatalf("Kosaraju order wrong: %v", comps)
	}
	// And the two orders are exact reverses for a chain of SCCs.
	tarjan := SCC(g)
	for i := range tarjan {
		if !tarjan[i].Equal(comps[len(comps)-1-i]) {
			t.Fatalf("orders not reversed: tarjan=%v kosaraju=%v", tarjan, comps)
		}
	}
}

func TestSCCSingletonSelfLoop(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 0)
	g.AddNode(1)
	comps := SCC(g)
	sort.Slice(comps, func(i, j int) bool { return comps[i].Min() < comps[j].Min() })
	if len(comps) != 2 || comps[0].Len() != 1 || comps[1].Len() != 1 {
		t.Fatalf("comps = %v", comps)
	}
}
