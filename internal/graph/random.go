package graph

import "math/rand"

// RandomDigraph returns a graph on all n nodes where every ordered pair
// (u, v), u != v, carries an edge independently with probability p.
// All self-loops are always present (round graphs contain them).
func RandomDigraph(n int, p float64, rng *rand.Rand) *Digraph {
	g := NewFullDigraph(n)
	g.AddSelfLoops()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// RandomCycleComponent wires the given nodes into a random strongly
// connected component of g: a random Hamiltonian cycle over the nodes plus
// extra random internal chords with probability chord.
func RandomCycleComponent(g *Digraph, nodes []int, chord float64, rng *rand.Rand) {
	if len(nodes) == 0 {
		return
	}
	perm := rng.Perm(len(nodes))
	for i := range perm {
		u := nodes[perm[i]]
		v := nodes[perm[(i+1)%len(perm)]]
		if len(nodes) == 1 {
			v = u
		}
		g.AddEdge(u, v)
	}
	for _, u := range nodes {
		for _, v := range nodes {
			if u != v && rng.Float64() < chord {
				g.AddEdge(u, v)
			}
		}
	}
}

// RandomRootedSkeleton builds a random stable-skeleton-shaped graph on n
// nodes with exactly the requested number of root components: roots
// disjoint strongly connected components with no incoming edges, and every
// remaining node wired strictly downstream (reachable from at least one
// root component, never feeding back into any root). All self-loops are
// present. It panics unless 1 <= roots <= n.
func RandomRootedSkeleton(n, roots int, rng *rand.Rand) *Digraph {
	if roots < 1 || roots > n {
		panic("graph: RandomRootedSkeleton requires 1 <= roots <= n")
	}
	g := NewFullDigraph(n)
	g.AddSelfLoops()

	perm := rng.Perm(n)
	// Split the first chunk of the permutation into `roots` nonempty
	// component seats, then leave the rest downstream.
	downstreamStart := roots + rng.Intn(n-roots+1)
	members := perm[:downstreamStart]
	downstream := perm[downstreamStart:]

	// Assign members to components: first `roots` one each, rest randomly.
	comps := make([][]int, roots)
	for i := 0; i < roots; i++ {
		comps[i] = []int{members[i]}
	}
	for _, v := range members[roots:] {
		c := rng.Intn(roots)
		comps[c] = append(comps[c], v)
	}
	for _, comp := range comps {
		RandomCycleComponent(g, comp, 0.3, rng)
	}

	// Wire downstream nodes: node i gets 1-3 in-edges from earlier layers
	// (roots or earlier downstream nodes), guaranteeing no back-edges into
	// the root components and acyclic inter-component structure.
	upstream := append([]int(nil), members...)
	for _, v := range downstream {
		deg := 1 + rng.Intn(3)
		for d := 0; d < deg; d++ {
			u := upstream[rng.Intn(len(upstream))]
			g.AddEdge(u, v)
		}
		upstream = append(upstream, v)
	}
	return g
}
