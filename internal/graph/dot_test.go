package graph

import (
	"strings"
	"testing"
)

func TestDOTBasic(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	g.AddNode(2)
	out := DOT(g, "test", false)
	for _, want := range []string{"digraph \"test\"", "p1 -> p2;", "p2 -> p2;", "p3;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestDOTOmitSelfLoops(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	out := DOT(g, "x", true)
	if strings.Contains(out, "p1 -> p1") {
		t.Fatal("self-loop not omitted")
	}
	if !strings.Contains(out, "p1 -> p2") {
		t.Fatal("real edge omitted")
	}
}

func TestDOTLabeled(t *testing.T) {
	g := NewLabeled(3)
	g.MergeEdge(0, 1, 4)
	g.MergeEdge(1, 1, 2)
	out := DOTLabeled(g, "approx", true)
	if !strings.Contains(out, "p1 -> p2 [label=4];") {
		t.Fatalf("labeled edge missing:\n%s", out)
	}
	if strings.Contains(out, "p2 -> p2") {
		t.Fatal("self-loop not omitted")
	}
}

func TestDOTDeterministic(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(3, 1)
	g.AddEdge(0, 2)
	if DOT(g, "d", false) != DOT(g, "d", false) {
		t.Fatal("DOT not deterministic")
	}
}

func TestASCII(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 1)
	out := ASCII(g)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("ASCII lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "1") {
		t.Fatalf("edge not rendered:\n%s", out)
	}
}

func TestASCIIAbsentNodes(t *testing.T) {
	g := NewDigraph(2)
	g.AddNode(0)
	out := ASCII(g)
	if !strings.Contains(out, ".") {
		t.Fatalf("absent node should render '.':\n%s", out)
	}
}
