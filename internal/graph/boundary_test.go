package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// Word-seam battery: NodeSet operations and the shared-arena layouts of
// Digraph and Labeled at every universe width on, just below, and just
// above the 64-bit word boundaries — the classic off-by-one surface of
// a multi-word bitset rewrite.

var boundaryWidths = []int{63, 64, 65, 127, 128, 129, 192}

// seamIndices returns the probe set for width n: both sides of every
// word seam inside [0, n), plus the universe edges.
func seamIndices(n int) []int {
	cand := []int{0, 1, 62, 63, 64, 65, 126, 127, 128, 129, 190, 191, n - 2, n - 1}
	out := make([]int, 0, len(cand))
	seen := map[int]bool{}
	for _, v := range cand {
		if v >= 0 && v < n && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// TestNodeSetWordBoundaries drives every NodeSet operation against a
// map-based reference at each boundary width, with elements drawn from
// the seam probe set so each word's low and high bits are exercised.
func TestNodeSetWordBoundaries(t *testing.T) {
	for _, n := range boundaryWidths {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7400 + n)))
			probes := seamIndices(n)
			s := NewNodeSet(n)
			ref := map[int]bool{}
			// t deliberately gets a universe one word smaller when
			// possible: mixed word counts are part of the contract
			// ("missing high bits are absent nodes").
			tn := n
			if n > 64 {
				tn = n - 64
			}
			other := NewNodeSet(tn)
			refOther := map[int]bool{}
			for step := 0; step < 300; step++ {
				v := probes[rng.Intn(len(probes))]
				switch rng.Intn(8) {
				case 0:
					s.Add(v)
					ref[v] = true
				case 1:
					s.Remove(v)
					delete(ref, v)
				case 2:
					if v < tn {
						other.Add(v)
						refOther[v] = true
					}
				case 3:
					if v < tn {
						other.Remove(v)
						delete(refOther, v)
					}
				case 4:
					s.UnionWith(other)
					for w := range refOther {
						ref[w] = true
					}
				case 5:
					s.IntersectWith(other)
					for w := range ref {
						if !refOther[w] {
							delete(ref, w)
						}
					}
				case 6:
					s.SubtractWith(other)
					for w := range refOther {
						delete(ref, w)
					}
				case 7:
					s.CopyFrom(other)
					ref = map[int]bool{}
					for w := range refOther {
						ref[w] = true
					}
				}
				// Full-state comparison against the reference.
				if s.Len() != len(ref) {
					t.Fatalf("step %d: Len = %d, ref %d", step, s.Len(), len(ref))
				}
				if s.Empty() != (len(ref) == 0) {
					t.Fatalf("step %d: Empty = %v, ref %v", step, s.Empty(), len(ref) == 0)
				}
				for _, p := range probes {
					if s.Has(p) != ref[p] {
						t.Fatalf("step %d: Has(%d) = %v, ref %v", step, p, s.Has(p), ref[p])
					}
				}
				// Next must agree with a linear scan from every probe.
				for _, p := range probes {
					want := -1
					for w := p; w < n+70; w++ {
						if ref[w] {
							want = w
							break
						}
					}
					if got := s.Next(p); got != want {
						t.Fatalf("step %d: Next(%d) = %d, ref %d", step, p, got, want)
					}
				}
				wantMin := -1
				for w := 0; w < n; w++ {
					if ref[w] {
						wantMin = w
						break
					}
				}
				if got := s.Min(); got != wantMin {
					t.Fatalf("step %d: Min = %d, ref %d", step, got, wantMin)
				}
				// Derived relations vs other.
				refSubset, refIntersects := true, false
				for w := range ref {
					if !refOther[w] {
						refSubset = false
					}
					if refOther[w] {
						refIntersects = true
					}
				}
				if s.SubsetOf(other) != refSubset {
					t.Fatalf("step %d: SubsetOf = %v, ref %v", step, s.SubsetOf(other), refSubset)
				}
				if s.Intersects(other) != refIntersects {
					t.Fatalf("step %d: Intersects = %v, ref %v", step, s.Intersects(other), refIntersects)
				}
				refEqual := len(ref) == len(refOther) && refSubset
				if s.Equal(other) != refEqual {
					t.Fatalf("step %d: Equal = %v, ref %v", step, s.Equal(other), refEqual)
				}
				// ForEach must enumerate ascending, exactly ref.
				prev := -1
				count := 0
				s.ForEach(func(w int) {
					if w <= prev {
						t.Fatalf("step %d: ForEach order violated at %d after %d", step, w, prev)
					}
					if !ref[w] {
						t.Fatalf("step %d: ForEach yielded %d not in ref", step, w)
					}
					prev = w
					count++
				})
				if count != len(ref) {
					t.Fatalf("step %d: ForEach yielded %d elems, ref %d", step, count, len(ref))
				}
				// Clone then mutate: the original must not move.
				c := s.Clone()
				c.Add(probes[rng.Intn(len(probes))])
				for _, p := range probes {
					if s.Has(p) != ref[p] {
						t.Fatalf("step %d: Clone mutation leaked into original at %d", step, p)
					}
				}
			}
		})
	}
}

// TestDigraphArenaBoundaries pins the shared-arena layout of Digraph at
// every boundary width: one edge written between seam nodes must light
// exactly its own out bit, in bit, and the two presence bits — any
// arena-stride or reslice error bleeds into a neighboring set's words.
func TestDigraphArenaBoundaries(t *testing.T) {
	for _, n := range boundaryWidths {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			probes := seamIndices(n)
			for _, u := range probes {
				for _, v := range probes {
					g := NewDigraph(n)
					g.AddEdge(u, v)
					if got := g.present.Len(); (u == v && got != 1) || (u != v && got != 2) {
						t.Fatalf("edge %d->%d: present = %v", u, v, g.present)
					}
					for w := 0; w < n; w++ {
						wantOut := 0
						if w == u {
							wantOut = 1
						}
						if g.out[w].Len() != wantOut {
							t.Fatalf("edge %d->%d: out[%d] = %v", u, v, w, g.out[w])
						}
						wantIn := 0
						if w == v {
							wantIn = 1
						}
						if g.in[w].Len() != wantIn {
							t.Fatalf("edge %d->%d: in[%d] = %v", u, v, w, g.in[w])
						}
					}
					if !g.out[u].Has(v) || !g.in[v].Has(u) {
						t.Fatalf("edge %d->%d: adjacency bits missing", u, v)
					}
				}
			}
		})
	}
}

// TestDigraphArenaAppendConfinement verifies the full-capacity reslices:
// growing one arena-backed set past its slot (via Add on a node beyond
// the universe) must reallocate that set's words, never clobber the
// neighboring slot of the shared arena.
func TestDigraphArenaAppendConfinement(t *testing.T) {
	for _, n := range boundaryWidths {
		g := NewDigraph(n)
		for u := 0; u < n; u++ {
			g.AddEdge(u, (u+1)%n)
		}
		snapshot := NewDigraph(n)
		snapshot.present.CopyFrom(g.present)
		for i := 0; i < n; i++ {
			snapshot.out[i].CopyFrom(g.out[i])
			snapshot.in[i].CopyFrom(g.in[i])
		}
		// Grow out[0] beyond the universe: the append must escape the
		// arena instead of overwriting out[1]'s words.
		g.out[0].Add(n + 130)
		if !g.present.Equal(snapshot.present) {
			t.Fatalf("n=%d: present changed after out[0] grew", n)
		}
		for i := 1; i < n; i++ {
			if !g.out[i].Equal(snapshot.out[i]) {
				t.Fatalf("n=%d: out[%d] clobbered after out[0] grew", n, i)
			}
		}
		for i := 0; i < n; i++ {
			if !g.in[i].Equal(snapshot.in[i]) {
				t.Fatalf("n=%d: in[%d] clobbered after out[0] grew", n, i)
			}
		}
	}
}

// TestLabeledArenaBoundaries is the Labeled counterpart: one labeled
// edge between seam nodes must produce exactly one label cell, one out
// shadow bit, one in shadow bit, and the right presence bits.
func TestLabeledArenaBoundaries(t *testing.T) {
	for _, n := range boundaryWidths {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			probes := seamIndices(n)
			for _, u := range probes {
				for _, v := range probes {
					g := NewLabeled(n)
					g.MergeEdge(u, v, 7)
					if g.NumEdges() != 1 || g.Label(u, v) != 7 {
						t.Fatalf("edge %d->%d: NumEdges=%d Label=%d", u, v, g.NumEdges(), g.Label(u, v))
					}
					for w := 0; w < n; w++ {
						wantOut := 0
						if w == u {
							wantOut = 1
						}
						if g.out[w].Len() != wantOut {
							t.Fatalf("edge %d->%d: out shadow [%d] = %v", u, v, w, g.out[w])
						}
						wantIn := 0
						if w == v {
							wantIn = 1
						}
						if g.in[w].Len() != wantIn {
							t.Fatalf("edge %d->%d: in shadow [%d] = %v", u, v, w, g.in[w])
						}
					}
					for a := 0; a < n; a++ {
						for b := 0; b < n; b++ {
							want := 0
							if a == u && b == v {
								want = 7
							}
							if g.Label(a, b) != want {
								t.Fatalf("edge %d->%d: stray label at (%d,%d)=%d", u, v, a, b, g.Label(a, b))
							}
						}
					}
					checkLabeledInvariants(t, g)
				}
			}
		})
	}
}
