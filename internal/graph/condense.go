package graph

// Condensation is the DAG obtained by contracting every strongly connected
// component of a digraph to a single node (paper, proof of Lemma 11). Comp
// i of Comps corresponds to node i of DAG; NodeComp maps each present node
// of the original graph to its component index.
type Condensation struct {
	Comps    []NodeSet
	DAG      *Digraph
	NodeComp []int
}

// Condense computes the condensation of g. Components are indexed in the
// order returned by SCC (reverse topological). Self-loops of the DAG are
// never created: an edge inside a component is contracted away.
func Condense(g *Digraph) *Condensation {
	comps := SCC(g)
	nodeComp := make([]int, g.N())
	for i := range nodeComp {
		nodeComp[i] = -1
	}
	for ci, comp := range comps {
		comp.ForEach(func(v int) { nodeComp[v] = ci })
	}
	dag := NewDigraph(len(comps))
	for ci := range comps {
		dag.AddNode(ci)
	}
	g.present.ForEach(func(u int) {
		g.out[u].ForEach(func(v int) {
			cu, cv := nodeComp[u], nodeComp[v]
			if cu != cv {
				dag.AddEdge(cu, cv)
			}
		})
	})
	return &Condensation{Comps: comps, DAG: dag, NodeComp: nodeComp}
}

// RootComponents returns the root components of g: strongly connected
// components with no incoming edges from outside the component (paper,
// Section II). Every nonempty digraph has at least one root component
// because the condensation is acyclic (used in the proof of Lemma 11).
// Results are ordered by smallest member for determinism.
func RootComponents(g *Digraph) []NodeSet {
	c := Condense(g)
	var roots []NodeSet
	for ci, comp := range c.Comps {
		if c.DAG.InDegree(ci) == 0 {
			roots = append(roots, comp)
		}
	}
	SortNodeSets(roots)
	return roots
}

// IsRootComponent reports whether the given node set is a root component
// of g: it must be an exact strongly connected component and have no
// incoming edges from outside.
func IsRootComponent(g *Digraph, comp NodeSet) bool {
	m := comp.Min()
	if m < 0 || !g.HasNode(m) {
		return false
	}
	if !ComponentOf(g, m).Equal(comp) {
		return false
	}
	ok := true
	comp.ForEach(func(v int) {
		g.in[v].ForEach(func(u int) {
			if !comp.Has(u) {
				ok = false
			}
		})
	})
	return ok
}

// IsDAG reports whether g has no directed cycle (self-loops count as
// cycles).
func IsDAG(g *Digraph) bool {
	for _, comp := range SCC(g) {
		if comp.Len() > 1 {
			return false
		}
		v := comp.Min()
		if g.HasEdge(v, v) {
			return false
		}
	}
	return true
}

// TopoOrder returns a topological order of a DAG's present nodes; it
// panics if g has a cycle.
func TopoOrder(g *Digraph) []int {
	if !IsDAG(g) {
		panic("graph: TopoOrder on cyclic graph")
	}
	indeg := make([]int, g.N())
	var queue []int
	g.present.ForEach(func(v int) {
		indeg[v] = g.InDegree(v)
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	})
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		g.out[v].ForEach(func(w int) {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		})
	}
	return order
}
