package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genGraph is a quick.Generator-compatible random digraph wrapper.
type genGraph struct {
	G *Digraph
}

// Generate implements quick.Generator.
func (genGraph) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(9)
	g := NewDigraph(n)
	for v := 0; v < n; v++ {
		if r.Intn(4) > 0 {
			g.AddNode(v)
		}
	}
	g.Nodes().ForEach(func(u int) {
		g.Nodes().ForEach(func(v int) {
			if r.Float64() < 0.3 {
				g.AddEdge(u, v)
			}
		})
	})
	return reflect.ValueOf(genGraph{G: g})
}

// pad lifts two graphs onto a common universe so binary ops are legal.
func pad(a, b *Digraph) (*Digraph, *Digraph) {
	n := a.N()
	if b.N() > n {
		n = b.N()
	}
	lift := func(g *Digraph) *Digraph {
		out := NewDigraph(n)
		g.Nodes().ForEach(func(v int) { out.AddNode(v) })
		for _, e := range g.Edges() {
			out.AddEdge(e.From, e.To)
		}
		return out
	}
	return lift(a), lift(b)
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(w genGraph) bool {
		return w.G.Transpose().Transpose().Equal(w.G)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectCommutative(t *testing.T) {
	f := func(wa, wb genGraph) bool {
		a, b := pad(wa.G, wb.G)
		return a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionCommutativeAndAbsorbing(t *testing.T) {
	f := func(wa, wb genGraph) bool {
		a, b := pad(wa.G, wb.G)
		u := a.Union(b)
		if !u.Equal(b.Union(a)) {
			return false
		}
		// a ⊆ a ∪ b and (a ∪ b) ∩ a = a.
		return a.SubgraphOf(u) && u.Intersect(a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectIsLowerBound(t *testing.T) {
	f := func(wa, wb genGraph) bool {
		a, b := pad(wa.G, wb.G)
		i := a.Intersect(b)
		return i.SubgraphOf(a) && i.SubgraphOf(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(w genGraph) bool {
		c := w.G.Clone()
		if !c.Equal(w.G) {
			return false
		}
		// Mutating the clone must not affect the original.
		c.Nodes().ForEach(func(v int) { c.RemoveNode(v) })
		return c.NumNodes() == 0 && w.G.Equal(w.G.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSCCPartition(t *testing.T) {
	f := func(w genGraph) bool {
		comps := SCC(w.G)
		seen := NewNodeSet(w.G.N())
		for _, c := range comps {
			if c.Empty() || seen.Intersects(c) {
				return false
			}
			seen.UnionWith(c)
		}
		return seen.Equal(w.G.Nodes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCondensationAcyclic(t *testing.T) {
	f := func(w genGraph) bool {
		return IsDAG(Condense(w.G).DAG)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReachabilityTransitive(t *testing.T) {
	f := func(w genGraph) bool {
		g := w.G
		ok := true
		g.Nodes().ForEach(func(u int) {
			ru := Reachable(g, u)
			ru.ForEach(func(v int) {
				if !Reachable(g, v).SubsetOf(ru) {
					ok = false
				}
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// genLabeled generates random labeled graphs for merge-law checks.
type genLabeled struct {
	G *Labeled
}

// Generate implements quick.Generator.
func (genLabeled) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(8)
	g := NewLabeled(n)
	for i := 0; i < r.Intn(20); i++ {
		g.MergeEdge(r.Intn(n), r.Intn(n), 1+r.Intn(30))
	}
	return reflect.ValueOf(genLabeled{G: g})
}

func TestQuickLabeledMergeIdempotent(t *testing.T) {
	f := func(w genLabeled) bool {
		c := w.G.Clone()
		w.G.ForEachEdge(func(u, v, l int) { c.MergeEdge(u, v, l) })
		return c.Equal(w.G)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLabeledPurgeMonotone(t *testing.T) {
	f := func(w genLabeled, rawT uint8) bool {
		threshold := int(rawT % 32)
		c := w.G.Clone()
		removed := c.PurgeOlderThan(threshold)
		if removed != w.G.NumEdges()-c.NumEdges() {
			return false
		}
		ok := true
		c.ForEachEdge(func(_, _, l int) {
			if l <= threshold {
				ok = false
			}
		})
		// Purging again is a no-op.
		return ok && c.PurgeOlderThan(threshold) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLabeledUnlabeledPreservesStructure(t *testing.T) {
	f := func(w genLabeled) bool {
		d := w.G.Unlabeled()
		if d.NumEdges() != w.G.NumEdges() || !d.Nodes().Equal(w.G.Nodes()) {
			return false
		}
		ok := true
		w.G.ForEachEdge(func(u, v, _ int) {
			if !d.HasEdge(u, v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
