package graph

// SCC computes the strongly connected components of g using Tarjan's
// algorithm (iterative, so deep graphs cannot overflow the goroutine
// stack). Components are returned in reverse topological order of the
// condensation (a component appears before any component it has an edge
// into), each as a NodeSet; only present nodes are considered. Components
// are nonempty and maximal, matching the paper's convention.
func SCC(g *Digraph) []NodeSet {
	n := g.N()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		comps   []NodeSet
		stack   []int
		counter int
	)

	type frame struct {
		v    int
		iter []int // remaining out-neighbors to visit
	}

	var callStack []frame
	visit := func(root int) {
		callStack = callStack[:0]
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		callStack = append(callStack, frame{v: root, iter: g.out[root].Elems()})

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			advanced := false
			for len(f.iter) > 0 {
				w := f.iter[0]
				f.iter = f.iter[1:]
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w, iter: g.out[w].Elems()})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// All neighbors of f.v processed: pop.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				comp := NewNodeSet(n)
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp.Add(w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}

	g.present.ForEach(func(v int) {
		if index[v] == unvisited {
			visit(v)
		}
	})
	return comps
}

// SCCKosaraju computes strongly connected components with Kosaraju's
// two-pass algorithm. It exists as an independent implementation used by
// the test suite to cross-check SCC; production code should prefer SCC.
// Components are returned in topological order of the condensation.
func SCCKosaraju(g *Digraph) []NodeSet {
	n := g.N()
	visited := make([]bool, n)
	order := make([]int, 0, g.NumNodes())

	// First pass: record reverse-finish order on g.
	var stack []int
	var iters [][]int
	g.present.ForEach(func(s int) {
		if visited[s] {
			return
		}
		visited[s] = true
		stack = append(stack[:0], s)
		iters = append(iters[:0], g.out[s].Elems())
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			it := iters[len(iters)-1]
			advanced := false
			for len(it) > 0 {
				w := it[0]
				it = it[1:]
				if !visited[w] {
					visited[w] = true
					iters[len(iters)-1] = it
					stack = append(stack, w)
					iters = append(iters, g.out[w].Elems())
					advanced = true
					break
				}
			}
			if advanced {
				continue
			}
			iters[len(iters)-1] = it
			order = append(order, v)
			stack = stack[:len(stack)-1]
			iters = iters[:len(iters)-1]
		}
	})

	// Second pass: DFS on the transpose in reverse finish order.
	t := g.Transpose()
	for i := range visited {
		visited[i] = false
	}
	var comps []NodeSet
	for i := len(order) - 1; i >= 0; i-- {
		s := order[i]
		if visited[s] {
			continue
		}
		comp := NewNodeSet(n)
		visited[s] = true
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp.Add(v)
			t.out[v].ForEach(func(w int) {
				if !visited[w] {
					visited[w] = true
					stack = append(stack, w)
				}
			})
		}
		comps = append(comps, comp)
	}
	return comps
}

// ComponentOf returns the strongly connected component of v in g, i.e. the
// paper's C^r_p when g is the round-r skeleton. It panics if v is not
// present.
func ComponentOf(g *Digraph, v int) NodeSet {
	if !g.HasNode(v) {
		panic("graph: ComponentOf on absent node")
	}
	fwd := Reachable(g, v)
	bwd := NodesReaching(g, v)
	return fwd.Intersect(bwd)
}

// StronglyConnected reports whether the present nodes of g form a single
// strongly connected component. The empty graph is not strongly connected;
// a single node is (with or without a self-loop), matching the decision
// test of Algorithm 1 line 28.
func StronglyConnected(g *Digraph) bool {
	first := g.present.Min()
	if first < 0 {
		return false
	}
	if !Reachable(g, first).Equal(g.present) {
		return false
	}
	return NodesReaching(g, first).Equal(g.present)
}
