package graph

// SCCScratch holds the reusable Tarjan state (index/low/onStack arrays,
// component stack, and DFS frames), so repeated SCC computations stop
// allocating traversal storage per call — only the resulting component
// sets are allocated. The zero value is ready to use; one scratch may
// serve graphs of different universe sizes.
type SCCScratch struct {
	index, low []int
	onStack    []bool
	stack      []int
	frameV     []int // DFS frames: node per frame
	frameCur   []int // DFS frames: next out-neighbor candidate (resume point)
}

const sccUnvisited = -1

// reset prepares the scratch for a universe of n nodes.
func (s *SCCScratch) reset(n int) {
	if cap(s.index) < n {
		s.index = make([]int, n)
		s.low = make([]int, n)
		s.onStack = make([]bool, n)
		s.stack = make([]int, 0, n)
		s.frameV = make([]int, 0, n)
		s.frameCur = make([]int, 0, n)
	}
	s.index = s.index[:n]
	s.low = s.low[:n]
	s.onStack = s.onStack[:n]
	for i := range s.index {
		s.index[i] = sccUnvisited
		s.onStack[i] = false
	}
	s.stack = s.stack[:0]
	s.frameV = s.frameV[:0]
	s.frameCur = s.frameCur[:0]
}

// SCC computes the strongly connected components of g using Tarjan's
// algorithm (iterative, so deep graphs cannot overflow the goroutine
// stack). Components are returned in reverse topological order of the
// condensation (a component appears before any component it has an edge
// into), each as a NodeSet; only present nodes are considered. Components
// are nonempty and maximal, matching the paper's convention.
func SCC(g *Digraph) []NodeSet {
	var s SCCScratch
	return s.SCC(g)
}

// SCC is the scratch-reusing variant of the package-level SCC: traversal
// state lives in s and is reused across calls; only the returned
// component sets are freshly allocated.
func (s *SCCScratch) SCC(g *Digraph) []NodeSet {
	n := g.N()
	s.reset(n)
	var comps []NodeSet
	counter := 0

	visit := func(root int) {
		s.index[root] = counter
		s.low[root] = counter
		counter++
		s.stack = append(s.stack, root)
		s.onStack[root] = true
		s.frameV = append(s.frameV, root)
		s.frameCur = append(s.frameCur, 0)

		for len(s.frameV) > 0 {
			ti := len(s.frameV) - 1
			v := s.frameV[ti]
			advanced := false
			for {
				w := g.out[v].Next(s.frameCur[ti])
				if w < 0 {
					break
				}
				s.frameCur[ti] = w + 1
				if s.index[w] == sccUnvisited {
					s.index[w] = counter
					s.low[w] = counter
					counter++
					s.stack = append(s.stack, w)
					s.onStack[w] = true
					s.frameV = append(s.frameV, w)
					s.frameCur = append(s.frameCur, 0)
					advanced = true
					break
				}
				if s.onStack[w] && s.index[w] < s.low[v] {
					s.low[v] = s.index[w]
				}
			}
			if advanced {
				continue
			}
			// All neighbors of v processed: pop.
			s.frameV = s.frameV[:ti]
			s.frameCur = s.frameCur[:ti]
			if ti > 0 {
				parent := s.frameV[ti-1]
				if s.low[v] < s.low[parent] {
					s.low[parent] = s.low[v]
				}
			}
			if s.low[v] == s.index[v] {
				comp := NewNodeSet(n)
				for {
					w := s.stack[len(s.stack)-1]
					s.stack = s.stack[:len(s.stack)-1]
					s.onStack[w] = false
					comp.Add(w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}

	g.present.ForEach(func(v int) {
		if s.index[v] == sccUnvisited {
			visit(v)
		}
	})
	return comps
}

// SCCKosaraju computes strongly connected components with Kosaraju's
// two-pass algorithm. It exists as an independent implementation used by
// the test suite to cross-check SCC; production code should prefer SCC.
// Components are returned in topological order of the condensation.
func SCCKosaraju(g *Digraph) []NodeSet {
	n := g.N()
	visited := make([]bool, n)
	order := make([]int, 0, g.NumNodes())

	// First pass: record reverse-finish order on g.
	var stack []int
	var iters [][]int
	g.present.ForEach(func(s int) {
		if visited[s] {
			return
		}
		visited[s] = true
		stack = append(stack[:0], s)
		iters = append(iters[:0], g.out[s].Elems())
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			it := iters[len(iters)-1]
			advanced := false
			for len(it) > 0 {
				w := it[0]
				it = it[1:]
				if !visited[w] {
					visited[w] = true
					iters[len(iters)-1] = it
					stack = append(stack, w)
					iters = append(iters, g.out[w].Elems())
					advanced = true
					break
				}
			}
			if advanced {
				continue
			}
			iters[len(iters)-1] = it
			order = append(order, v)
			stack = stack[:len(stack)-1]
			iters = iters[:len(iters)-1]
		}
	})

	// Second pass: DFS on the transpose in reverse finish order.
	t := g.Transpose()
	for i := range visited {
		visited[i] = false
	}
	var comps []NodeSet
	for i := len(order) - 1; i >= 0; i-- {
		s := order[i]
		if visited[s] {
			continue
		}
		comp := NewNodeSet(n)
		visited[s] = true
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp.Add(v)
			t.out[v].ForEach(func(w int) {
				if !visited[w] {
					visited[w] = true
					stack = append(stack, w)
				}
			})
		}
		comps = append(comps, comp)
	}
	return comps
}

// ComponentOf returns the strongly connected component of v in g, i.e. the
// paper's C^r_p when g is the round-r skeleton. It panics if v is not
// present.
func ComponentOf(g *Digraph, v int) NodeSet {
	if !g.HasNode(v) {
		panic("graph: ComponentOf on absent node")
	}
	fwd := Reachable(g, v)
	bwd := NodesReaching(g, v)
	return fwd.Intersect(bwd)
}

// StronglyConnected reports whether the present nodes of g form a single
// strongly connected component. The empty graph is not strongly connected;
// a single node is (with or without a self-loop), matching the decision
// test of Algorithm 1 line 28.
func StronglyConnected(g *Digraph) bool {
	first := g.present.Min()
	if first < 0 {
		return false
	}
	if !Reachable(g, first).Equal(g.present) {
		return false
	}
	return NodesReaching(g, first).Equal(g.present)
}
