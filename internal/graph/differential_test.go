package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// Differential battery for the width-generic bitset kernels: every
// word-parallel kernel (reach, prune, connectivity, merge, purge, reset,
// removal) is checked bit-for-bit against a deliberately naive
// per-element reference model on seeded random graphs, across widths on
// both sides of every word seam. The reference model is maps and nested
// loops — no bitsets, no shared arenas — so a word-level bug (shifted
// mask, off-by-one at a seam, stale shadow bit) cannot be mirrored by
// the oracle. CI runs this file under -race alongside the rest of the
// package.

// diffWidths crosses every word seam: one below, on, and above 64, 128,
// and the two-word/three-word boundary at 192.
var diffWidths = []int{1, 2, 7, 63, 64, 65, 127, 128, 129, 192}

// refLabeled is the reference model of Labeled: a label map keyed by
// ordered pair plus a presence map.
type refLabeled struct {
	n       int
	present map[int]bool
	labels  map[[2]int]int
}

func newRefLabeled(n int) *refLabeled {
	return &refLabeled{n: n, present: map[int]bool{}, labels: map[[2]int]int{}}
}

func (r *refLabeled) addNode(v int) { r.present[v] = true }

func (r *refLabeled) mergeEdge(u, v, label int) {
	r.present[u] = true
	r.present[v] = true
	if label > r.labels[[2]int{u, v}] {
		r.labels[[2]int{u, v}] = label
	}
}

func (r *refLabeled) removeNode(v int) {
	if !r.present[v] {
		return
	}
	for k := range r.labels {
		if k[0] == v || k[1] == v {
			delete(r.labels, k)
		}
	}
	delete(r.present, v)
}

func (r *refLabeled) reset() {
	r.present = map[int]bool{}
	r.labels = map[[2]int]int{}
}

func (r *refLabeled) purgeOlderThan(threshold int) {
	for k, l := range r.labels {
		if l <= threshold {
			delete(r.labels, k)
		}
	}
}

func (r *refLabeled) mergeFrom(src *refLabeled) {
	for v := range src.present {
		r.present[v] = true
	}
	for k, l := range src.labels {
		if l > r.labels[k] {
			r.labels[k] = l
		}
	}
}

// reachSet runs a per-element DFS over the label map. forward follows
// u->v edges out of the start; !forward follows them backward.
func (r *refLabeled) reachSet(start int, forward bool) map[int]bool {
	seen := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for w := 0; w < r.n; w++ {
			if seen[w] {
				continue
			}
			var l int
			if forward {
				l = r.labels[[2]int{u, w}]
			} else {
				l = r.labels[[2]int{w, u}]
			}
			if l != 0 {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

func (r *refLabeled) pruneUnreachableTo(p int) {
	r.present[p] = true
	seen := r.reachSet(p, false)
	for v := range r.present {
		if !seen[v] {
			r.removeNode(v)
		}
	}
}

func (r *refLabeled) stronglyConnected() bool {
	first := -1
	for v := range r.present {
		if first < 0 || v < first {
			first = v
		}
	}
	if first < 0 {
		return false
	}
	fwd := r.reachSet(first, true)
	bwd := r.reachSet(first, false)
	for v := range r.present {
		if !fwd[v] || !bwd[v] {
			return false
		}
	}
	for v := range fwd {
		if !r.present[v] {
			return false
		}
	}
	for v := range bwd {
		if !r.present[v] {
			return false
		}
	}
	return true
}

// checkLabeledInvariants verifies the bit-shadow invariant directly
// against the label matrix: out[u] has bit v and in[v] has bit u exactly
// when labels[u*n+v] != 0, and edges exist only between present nodes.
func checkLabeledInvariants(t *testing.T, g *Labeled) {
	t.Helper()
	for u := 0; u < g.n; u++ {
		for v := 0; v < g.n; v++ {
			l := g.labels[u*g.n+v]
			if (l != 0) != g.out[u].Has(v) {
				t.Fatalf("shadow invariant: labels[%d->%d]=%d but out bit %v", u, v, l, g.out[u].Has(v))
			}
			if (l != 0) != g.in[v].Has(u) {
				t.Fatalf("shadow invariant: labels[%d->%d]=%d but in bit %v", u, v, l, g.in[v].Has(u))
			}
			if l != 0 && (!g.present.Has(u) || !g.present.Has(v)) {
				t.Fatalf("edge %d->%d between non-present nodes", u, v)
			}
		}
	}
	count := 0
	for u := 0; u < g.n; u++ {
		count += g.out[u].Len()
	}
	if g.m != count {
		t.Fatalf("edge counter m = %d, shadows hold %d edges", g.m, count)
	}
}

// checkLabeledMatchesRef compares the full observable state of g with
// the reference model: presence, every label cell, and the deterministic
// edge enumeration.
func checkLabeledMatchesRef(t *testing.T, g *Labeled, ref *refLabeled) {
	t.Helper()
	if g.NumNodes() != len(ref.present) {
		t.Fatalf("NumNodes = %d, ref %d", g.NumNodes(), len(ref.present))
	}
	if g.NumEdges() != len(ref.labels) {
		t.Fatalf("NumEdges = %d, ref %d", g.NumEdges(), len(ref.labels))
	}
	for v := 0; v < g.n; v++ {
		if g.HasNode(v) != ref.present[v] {
			t.Fatalf("HasNode(%d) = %v, ref %v", v, g.HasNode(v), ref.present[v])
		}
	}
	for u := 0; u < g.n; u++ {
		for v := 0; v < g.n; v++ {
			if g.Label(u, v) != ref.labels[[2]int{u, v}] {
				t.Fatalf("Label(%d,%d) = %d, ref %d", u, v, g.Label(u, v), ref.labels[[2]int{u, v}])
			}
		}
	}
	prevU, prevV := -1, -1
	g.ForEachEdge(func(u, v, l int) {
		if u < prevU || (u == prevU && v <= prevV) {
			t.Fatalf("ForEachEdge order violated: (%d,%d) after (%d,%d)", u, v, prevU, prevV)
		}
		prevU, prevV = u, v
		if l != ref.labels[[2]int{u, v}] {
			t.Fatalf("ForEachEdge label %d->%d = %d, ref %d", u, v, l, ref.labels[[2]int{u, v}])
		}
	})
}

// TestDifferentialLabeledOps drives Labeled and the reference model
// through identical seeded random operation sequences at every width,
// comparing full state and shadow invariants after each step. The op mix
// covers the entire per-round kernel surface of Algorithm 1's rebuild.
func TestDifferentialLabeledOps(t *testing.T) {
	for _, n := range diffWidths {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7100 + n)))
			g := NewLabeled(n)
			ref := newRefLabeled(n)
			other := NewLabeled(n)
			refOther := newRefLabeled(n)
			steps := 120
			if n >= 127 {
				steps = 60
			}
			for step := 0; step < steps; step++ {
				switch op := rng.Intn(10); op {
				case 0, 1, 2, 3: // merge a batch of edges, seams included
					for i := 0; i < 1+rng.Intn(8); i++ {
						u, v := seamNode(rng, n), seamNode(rng, n)
						l := 1 + rng.Intn(50)
						g.MergeEdge(u, v, l)
						ref.mergeEdge(u, v, l)
					}
				case 4: // remove a node
					v := seamNode(rng, n)
					g.RemoveNode(v)
					ref.removeNode(v)
				case 5: // purge old labels
					thr := rng.Intn(60) - 5
					g.PurgeOlderThan(thr)
					ref.purgeOlderThan(thr)
				case 6: // rebuild the side graph and merge it in
					other.Reset()
					refOther.reset()
					for i := 0; i < 1+rng.Intn(10); i++ {
						u, v := seamNode(rng, n), seamNode(rng, n)
						l := 1 + rng.Intn(50)
						other.MergeEdge(u, v, l)
						refOther.mergeEdge(u, v, l)
					}
					g.MergeFrom(other)
					ref.mergeFrom(refOther)
				case 7: // prune to a node
					p := seamNode(rng, n)
					g.PruneUnreachableTo(p)
					ref.pruneUnreachableTo(p)
				case 8: // add an isolated node
					v := seamNode(rng, n)
					g.AddNode(v)
					ref.addNode(v)
				case 9: // reset
					if rng.Intn(4) == 0 {
						g.Reset()
						ref.reset()
					}
				}
				if g.StronglyConnected() != ref.stronglyConnected() {
					t.Fatalf("step %d: StronglyConnected = %v, ref %v\n%s", step, g.StronglyConnected(), ref.stronglyConnected(), g)
				}
				checkLabeledMatchesRef(t, g, ref)
				checkLabeledInvariants(t, g)
			}
		})
	}
}

// seamNode draws a node biased toward word seams: indices within two of
// a multiple of 64 (and the top of the universe) are picked half the
// time, uniform otherwise.
func seamNode(rng *rand.Rand, n int) int {
	if rng.Intn(2) == 0 {
		seams := []int{0, 62, 63, 64, 65, 126, 127, 128, 129, 190, 191, n - 2, n - 1}
		for i := 0; i < len(seams); i++ {
			v := seams[rng.Intn(len(seams))]
			if v >= 0 && v < n {
				return v
			}
		}
	}
	return rng.Intn(n)
}

// refReachable is the per-element reference for the Digraph reachability
// kernels: plain DFS probing HasEdge cell by cell.
func refReachable(g *Digraph, start int, forward bool) map[int]bool {
	seen := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for w := 0; w < g.N(); w++ {
			if seen[w] {
				continue
			}
			ok := false
			if forward {
				ok = g.HasEdge(u, w)
			} else {
				ok = g.HasEdge(w, u)
			}
			if ok {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// TestDifferentialDigraphReach checks the word-parallel frontier BFS of
// ReachableInto/NodesReachingInto against the per-element DFS on seeded
// random digraphs at every width.
func TestDifferentialDigraphReach(t *testing.T) {
	for _, n := range diffWidths {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7200 + n)))
			for trial := 0; trial < 20; trial++ {
				g := NewDigraph(n)
				for v := 0; v < n; v++ {
					if rng.Intn(5) > 0 {
						g.AddNode(v)
					}
				}
				edges := 2 * n
				nodes := g.Nodes()
				for i := 0; i < edges; i++ {
					u, v := seamNode(rng, n), seamNode(rng, n)
					if nodes.Has(u) && nodes.Has(v) {
						g.AddEdge(u, v)
					}
				}
				start := g.Nodes().Min()
				if start < 0 {
					continue
				}
				var s ReachScratch
				got := ReachableInto(g, start, &s)
				want := refReachable(g, start, true)
				for v := 0; v < n; v++ {
					if got.Has(v) != want[v] {
						t.Fatalf("trial %d: Reachable(%d).Has(%d) = %v, ref %v", trial, start, v, got.Has(v), want[v])
					}
				}
				got = NodesReachingInto(g, start, &s)
				want = refReachable(g, start, false)
				for v := 0; v < n; v++ {
					if got.Has(v) != want[v] {
						t.Fatalf("trial %d: NodesReaching(%d).Has(%d) = %v, ref %v", trial, start, v, got.Has(v), want[v])
					}
				}
			}
		})
	}
}

// TestDifferentialEmbedding pins width-independence directly: the same
// logical graph run in a 64-node universe and embedded unchanged in a
// 192-node universe (extra nodes absent) must produce identical kernel
// results on the common prefix — decisions about the first 64 nodes may
// not depend on how many empty words trail the bitsets.
func TestDifferentialEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(7300))
	for trial := 0; trial < 30; trial++ {
		small := NewLabeled(64)
		big := NewLabeled(192)
		for i := 0; i < 1+rng.Intn(150); i++ {
			u, v := rng.Intn(64), rng.Intn(64)
			l := 1 + rng.Intn(40)
			small.MergeEdge(u, v, l)
			big.MergeEdge(u, v, l)
		}
		thr := rng.Intn(30)
		if small.PurgeOlderThan(thr) != big.PurgeOlderThan(thr) {
			t.Fatalf("trial %d: purge counts differ", trial)
		}
		p := rng.Intn(64)
		if small.PruneUnreachableTo(p) != big.PruneUnreachableTo(p) {
			t.Fatalf("trial %d: prune counts differ", trial)
		}
		if small.StronglyConnected() != big.StronglyConnected() {
			t.Fatalf("trial %d: connectivity differs across embedding", trial)
		}
		if small.NumEdges() != big.NumEdges() || small.NumNodes() != big.NumNodes() {
			t.Fatalf("trial %d: edge/node counts differ across embedding", trial)
		}
		for u := 0; u < 64; u++ {
			for v := 0; v < 64; v++ {
				if small.Label(u, v) != big.Label(u, v) {
					t.Fatalf("trial %d: Label(%d,%d) differs across embedding", trial, u, v)
				}
			}
		}
	}
}
