package graph

import (
	"math/rand"
	"testing"
)

func TestDigraphNodesAndEdges(t *testing.T) {
	g := NewDigraph(5)
	if g.NumNodes() != 0 {
		t.Fatal("new graph should have no nodes")
	}
	g.AddEdge(0, 1) // implicitly adds both endpoints
	if !g.HasNode(0) || !g.HasNode(1) {
		t.Fatal("AddEdge did not add endpoints")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge direction wrong")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	g.AddEdge(0, 1) // duplicate
	if g.NumEdges() != 1 {
		t.Fatal("duplicate edge counted")
	}
}

func TestDigraphInOutNeighbors(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	in := g.InNeighbors(2)
	if !in.Equal(NodeSetOf(0, 1)) {
		t.Fatalf("InNeighbors(2) = %v", in)
	}
	out := g.OutNeighbors(2)
	if !out.Equal(NodeSetOf(3)) {
		t.Fatalf("OutNeighbors(2) = %v", out)
	}
	if g.InDegree(2) != 2 || g.OutDegree(2) != 1 {
		t.Fatal("degrees wrong")
	}
}

func TestDigraphRemoveEdge(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Fatal("edge not removed")
	}
	if !g.HasNode(0) || !g.HasNode(1) {
		t.Fatal("RemoveEdge should keep nodes")
	}
}

func TestDigraphRemoveNodeCleansAdjacency(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(1, 1)
	g.RemoveNode(1)
	if g.HasNode(1) {
		t.Fatal("node still present")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d after removing hub", g.NumEdges())
	}
	if g.InNeighbors(2).Len() != 0 || g.OutNeighbors(0).Len() != 0 {
		t.Fatal("stale adjacency left behind")
	}
}

func TestDigraphSelfLoops(t *testing.T) {
	g := NewFullDigraph(3)
	g.AddSelfLoops()
	for v := 0; v < 3; v++ {
		if !g.HasEdge(v, v) {
			t.Fatalf("missing self-loop %d", v)
		}
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestCompleteDigraph(t *testing.T) {
	g := CompleteDigraph(4)
	if g.NumEdges() != 16 {
		t.Fatalf("NumEdges = %d, want 16", g.NumEdges())
	}
}

func TestDigraphIntersect(t *testing.T) {
	a := NewDigraph(4)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	a.AddEdge(2, 3)
	b := NewDigraph(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	got := a.Intersect(b)
	if !got.HasEdge(0, 1) || !got.HasEdge(2, 3) {
		t.Fatal("missing common edges")
	}
	if got.HasEdge(1, 2) || got.HasEdge(3, 0) {
		t.Fatal("non-common edge present")
	}
}

func TestDigraphIntersectNodes(t *testing.T) {
	a := NewDigraph(4)
	a.AddNode(0)
	a.AddNode(1)
	a.AddEdge(0, 1)
	b := NewDigraph(4)
	b.AddNode(1)
	b.AddNode(2)
	got := a.Intersect(b)
	if !got.Nodes().Equal(NodeSetOf(1)) {
		t.Fatalf("nodes = %v, want {p2}", got.Nodes())
	}
	if got.NumEdges() != 0 {
		t.Fatal("edges with absent endpoint survived")
	}
}

func TestDigraphIntersectWithMatchesIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := RandomDigraph(8, 0.3, rng)
		b := RandomDigraph(8, 0.3, rng)
		want := a.Intersect(b)
		c := a.Clone()
		changed := c.IntersectWith(b)
		if !c.Equal(want) {
			t.Fatalf("IntersectWith != Intersect\n a=%v\n b=%v", a, b)
		}
		if changed != !a.Equal(want) {
			t.Fatal("changed flag wrong")
		}
	}
}

func TestDigraphUnion(t *testing.T) {
	a := NewDigraph(3)
	a.AddEdge(0, 1)
	b := NewDigraph(3)
	b.AddEdge(1, 2)
	u := a.Union(b)
	if !u.HasEdge(0, 1) || !u.HasEdge(1, 2) {
		t.Fatal("union missing edges")
	}
}

func TestDigraphInducedSubgraph(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	sub := g.InducedSubgraph(NodeSetOf(0, 1, 2))
	if sub.HasNode(3) || sub.HasEdge(2, 3) {
		t.Fatal("excluded node leaked")
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || !sub.HasEdge(2, 0) {
		t.Fatal("internal edges missing")
	}
}

func TestDigraphTranspose(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	tr := g.Transpose()
	if !tr.HasEdge(1, 0) || tr.HasEdge(0, 1) {
		t.Fatal("transpose wrong")
	}
	if !tr.HasEdge(1, 1) {
		t.Fatal("self-loop lost")
	}
	if !tr.Transpose().Equal(g) {
		t.Fatal("double transpose != original")
	}
}

func TestDigraphSubgraphOf(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	h := g.Clone()
	h.AddEdge(1, 2)
	if !g.SubgraphOf(h) {
		t.Fatal("g should be subgraph of h")
	}
	if h.SubgraphOf(g) {
		t.Fatal("h is not subgraph of g")
	}
}

func TestDigraphCloneIndependence(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("clone aliases original")
	}
	c.RemoveNode(0)
	if !g.HasNode(0) {
		t.Fatal("clone aliases original nodes")
	}
}

func TestDigraphEqual(t *testing.T) {
	a := NewDigraph(3)
	a.AddEdge(0, 1)
	b := NewDigraph(3)
	b.AddEdge(0, 1)
	if !a.Equal(b) {
		t.Fatal("equal graphs not Equal")
	}
	b.AddNode(2)
	if a.Equal(b) {
		t.Fatal("different node sets Equal")
	}
}

func TestDigraphEdgesDeterministic(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(3, 0)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	e := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {3, 0}}
	if len(e) != len(want) {
		t.Fatalf("Edges = %v", e)
	}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", e, want)
		}
	}
}

func TestDigraphString(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	if got := g.String(); got != "p1->{p2,p3}; p2->{}; p3->{}" {
		t.Fatalf("String = %q", got)
	}
}

func TestDigraphOutOfUniversePanics(t *testing.T) {
	g := NewDigraph(2)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 2) },
		func() { g.AddNode(-1) },
		func() { g.InNeighbors(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDigraphIntersectUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDigraph(2).Intersect(NewDigraph(3))
}
