package graph

import (
	"math/rand"
	"testing"
)

func TestCondenseSimple(t *testing.T) {
	g := NewDigraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // comp A
	g.AddEdge(2, 3)
	g.AddEdge(3, 2) // comp B
	g.AddEdge(1, 2) // A -> B
	g.AddNode(4)    // comp C isolated
	c := Condense(g)
	if len(c.Comps) != 3 {
		t.Fatalf("comps = %v", c.Comps)
	}
	if c.NodeComp[0] != c.NodeComp[1] || c.NodeComp[2] != c.NodeComp[3] {
		t.Fatal("NodeComp inconsistent")
	}
	if c.NodeComp[0] == c.NodeComp[2] {
		t.Fatal("distinct components merged")
	}
	if !c.DAG.HasEdge(c.NodeComp[0], c.NodeComp[2]) {
		t.Fatal("DAG missing inter-component edge")
	}
	if !IsDAG(c.DAG) {
		t.Fatal("condensation must be a DAG")
	}
}

func TestCondenseNoSelfLoopsInDAG(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 0)
	c := Condense(g)
	ci := c.NodeComp[0]
	if c.DAG.HasEdge(ci, ci) {
		t.Fatal("condensation has a self-loop")
	}
}

func TestCondensationAlwaysDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		g := RandomDigraph(9, rng.Float64()*0.6, rng)
		c := Condense(g)
		if !IsDAG(c.DAG) {
			t.Fatalf("condensation cyclic for %v", g)
		}
	}
}

func TestRootComponentsFigure1(t *testing.T) {
	// The stable skeleton of the paper's Figure 1b: root components
	// {p1,p2} and {p3,p4,p5}; p6 downstream of {p3,p4,p5}.
	g := figure1StableSkeleton()
	roots := RootComponents(g)
	if len(roots) != 2 {
		t.Fatalf("roots = %v, want 2 components", roots)
	}
	if !roots[0].Equal(NodeSetOf(0, 1)) || !roots[1].Equal(NodeSetOf(2, 3, 4)) {
		t.Fatalf("roots = %v, want [{p1,p2} {p3,p4,p5}]", roots)
	}
}

// figure1StableSkeleton builds the paper's Figure 1b graph: self-loops,
// p1<->p2, the cycle p3->p4->p5->p3, and p5->p6.
func figure1StableSkeleton() *Digraph {
	g := NewFullDigraph(6)
	g.AddSelfLoops()
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	g.AddEdge(4, 5)
	return g
}

func TestEveryGraphHasRootComponent(t *testing.T) {
	// Paper, proof of Lemma 11: the condensation is a DAG, hence at least
	// one node with no incoming edges exists.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		g := RandomDigraph(n, rng.Float64(), rng)
		if len(RootComponents(g)) < 1 {
			t.Fatalf("no root component in %v", g)
		}
	}
}

func TestRootComponentsHaveNoIncomingEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		g := RandomDigraph(8, 0.3, rng)
		for _, root := range RootComponents(g) {
			if !IsRootComponent(g, root) {
				t.Fatalf("reported root %v fails IsRootComponent in %v", root, g)
			}
		}
	}
}

func TestIsRootComponentRejectsNonComponents(t *testing.T) {
	g := figure1StableSkeleton()
	if IsRootComponent(g, NodeSetOf(0)) {
		t.Fatal("{p1} is not maximal (p1,p2 strongly connected)")
	}
	if IsRootComponent(g, NodeSetOf(5)) {
		t.Fatal("{p6} has incoming edge from p5")
	}
	if IsRootComponent(g, NodeSetOf(0, 1, 2)) {
		t.Fatal("{p1,p2,p3} is not a strongly connected component")
	}
	if !IsRootComponent(g, NodeSetOf(2, 3, 4)) {
		t.Fatal("{p3,p4,p5} should be a root component")
	}
}

func TestIsDAG(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !IsDAG(g) {
		t.Fatal("chain should be a DAG")
	}
	g.AddEdge(2, 0)
	if IsDAG(g) {
		t.Fatal("cycle reported as DAG")
	}
	h := NewDigraph(1)
	h.AddEdge(0, 0)
	if IsDAG(h) {
		t.Fatal("self-loop reported as DAG")
	}
}

func TestTopoOrder(t *testing.T) {
	g := NewDigraph(5)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddNode(4)
	order := TopoOrder(g)
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %v violates topological order %v", e, order)
		}
	}
}

func TestTopoOrderPanicsOnCycle(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TopoOrder(g)
}

func TestRootComponentCountMatchesCondensationSources(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 200; trial++ {
		g := RandomDigraph(10, 0.2, rng)
		c := Condense(g)
		sources := 0
		c.DAG.Nodes().ForEach(func(ci int) {
			if c.DAG.InDegree(ci) == 0 {
				sources++
			}
		})
		if got := len(RootComponents(g)); got != sources {
			t.Fatalf("roots=%d sources=%d", got, sources)
		}
	}
}

func TestRandomRootedSkeletonExactRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(14)
		roots := 1 + rng.Intn(n)
		g := RandomRootedSkeleton(n, roots, rng)
		if got := len(RootComponents(g)); got != roots {
			t.Fatalf("n=%d requested %d roots, got %d: %v", n, roots, got, g)
		}
		// Every node is reachable from some root component.
		covered := NewNodeSet(n)
		for _, root := range RootComponents(g) {
			covered.UnionWith(Reachable(g, root.Min()))
		}
		if !covered.Equal(FullNodeSet(n)) {
			t.Fatalf("nodes unreachable from roots: %v", covered)
		}
	}
}
