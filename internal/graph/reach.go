package graph

import "math/bits"

// ReachScratch holds the reusable traversal state (visited bitset plus
// DFS stack) of the reachability and connectivity kernels, so per-round
// calls allocate nothing in steady state. The zero value is ready to use,
// and one scratch may serve graphs of different universe sizes: reset
// regrows it on demand and reuses the storage otherwise.
type ReachScratch struct {
	seen  NodeSet
	stack []int
}

// reset prepares the scratch for one traversal over a universe of n
// nodes: the visited set is sized and cleared, the stack emptied.
func (s *ReachScratch) reset(n int) {
	w := (n + wordBits - 1) / wordBits
	if cap(s.seen.words) < w {
		s.seen.words = make([]uint64, w)
	}
	s.seen.words = s.seen.words[:w]
	s.seen.Clear()
	if cap(s.stack) < n {
		s.stack = make([]int, 0, n)
	}
	s.stack = s.stack[:0]
}

// Reachable returns the set of present nodes reachable from v by a
// directed path of length >= 0 (v itself included). It panics if v is not
// present.
func Reachable(g *Digraph, v int) NodeSet {
	var s ReachScratch
	ReachableInto(g, v, &s)
	return s.seen
}

// ReachableInto is Reachable with caller-owned scratch: the returned set
// is the scratch's visited set and stays valid only until the scratch is
// reused. The frontier walk is word-parallel: each popped node merges its
// whole adjacency row with one AND-NOT + OR per word, and only newly seen
// nodes are pushed.
func ReachableInto(g *Digraph, v int, s *ReachScratch) NodeSet {
	if !g.HasNode(v) {
		panic("graph: Reachable from absent node")
	}
	s.reset(g.N())
	s.seen.Add(v)
	s.stack = append(s.stack, v)
	for len(s.stack) > 0 {
		u := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		for i, w := range g.out[u].words {
			nw := w &^ s.seen.words[i]
			if nw == 0 {
				continue
			}
			s.seen.words[i] |= nw
			for nw != 0 {
				x := bits.TrailingZeros64(nw)
				nw &^= 1 << x
				s.stack = append(s.stack, i*wordBits+x)
			}
		}
	}
	return s.seen
}

// NodesReaching returns the set of present nodes that can reach v by a
// directed path of length >= 0 (v itself included). Algorithm 1 line 25
// keeps exactly these nodes in the approximation graph.
func NodesReaching(g *Digraph, v int) NodeSet {
	var s ReachScratch
	NodesReachingInto(g, v, &s)
	return s.seen
}

// NodesReachingInto is NodesReaching with caller-owned scratch: the
// returned set is the scratch's visited set and stays valid only until
// the scratch is reused. Same word-parallel frontier walk as
// ReachableInto, over the in-adjacency rows.
func NodesReachingInto(g *Digraph, v int, s *ReachScratch) NodeSet {
	if !g.HasNode(v) {
		panic("graph: NodesReaching on absent node")
	}
	s.reset(g.N())
	s.seen.Add(v)
	s.stack = append(s.stack, v)
	for len(s.stack) > 0 {
		u := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		for i, w := range g.in[u].words {
			nw := w &^ s.seen.words[i]
			if nw == 0 {
				continue
			}
			s.seen.words[i] |= nw
			for nw != 0 {
				x := bits.TrailingZeros64(nw)
				nw &^= 1 << x
				s.stack = append(s.stack, i*wordBits+x)
			}
		}
	}
	return s.seen
}

// CanReach reports whether there is a directed path from u to v.
func CanReach(g *Digraph, u, v int) bool {
	if !g.HasNode(u) || !g.HasNode(v) {
		return false
	}
	return Reachable(g, u).Has(v)
}

// Distances returns the BFS distance (number of edges on a shortest path)
// from src to every node; unreachable nodes get -1. Self-loops do not
// shorten anything: dist[src] is 0.
func Distances(g *Digraph, src int) []int {
	if !g.HasNode(src) {
		panic("graph: Distances from absent node")
	}
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.out[u].ForEach(func(w int) {
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		})
	}
	return dist
}

// DistancesTo returns the BFS distance from every node to dst (following
// edges forward); unreachable nodes get -1.
func DistancesTo(g *Digraph, dst int) []int {
	if !g.HasNode(dst) {
		panic("graph: DistancesTo on absent node")
	}
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []int{dst}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.in[u].ForEach(func(w int) {
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		})
	}
	return dist
}

// ShortestPath returns one shortest directed path from u to v as a node
// sequence (u first, v last), or nil if v is unreachable from u. The paper
// repeatedly uses the fact that simple paths have length at most n-1.
func ShortestPath(g *Digraph, u, v int) []int {
	if !g.HasNode(u) || !g.HasNode(v) {
		return nil
	}
	prev := make([]int, g.N())
	for i := range prev {
		prev[i] = -1
	}
	if u == v {
		return []int{u}
	}
	seen := NewNodeSet(g.N())
	seen.Add(u)
	queue := []int{u}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		found := false
		g.out[cur].ForEach(func(w int) {
			if found || seen.Has(w) {
				return
			}
			seen.Add(w)
			prev[w] = cur
			if w == v {
				found = true
				return
			}
			queue = append(queue, w)
		})
		if found {
			break
		}
	}
	if prev[v] == -1 {
		return nil
	}
	var rev []int
	for cur := v; cur != -1; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == u {
			break
		}
	}
	path := make([]int, len(rev))
	for i, x := range rev {
		path[len(rev)-1-i] = x
	}
	return path
}

// IsPath reports whether nodes forms a directed path of distinct nodes in
// g (the paper's convention: all nodes on a path are distinct).
func IsPath(g *Digraph, nodes []int) bool {
	if len(nodes) == 0 {
		return false
	}
	seen := NewNodeSet(g.N())
	for i, v := range nodes {
		if !g.HasNode(v) || seen.Has(v) {
			return false
		}
		seen.Add(v)
		if i > 0 && !g.HasEdge(nodes[i-1], v) {
			return false
		}
	}
	return true
}
