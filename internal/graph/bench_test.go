package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n int, p float64) *Digraph {
	return RandomDigraph(n, p, rand.New(rand.NewSource(1)))
}

func BenchmarkSCCSparse(b *testing.B) {
	g := benchGraph(128, 0.02)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SCC(g)
	}
}

func BenchmarkSCCDense(b *testing.B) {
	g := benchGraph(128, 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SCC(g)
	}
}

func BenchmarkKosaraju(b *testing.B) {
	g := benchGraph(128, 0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SCCKosaraju(g)
	}
}

func BenchmarkIntersectWith(b *testing.B) {
	a := benchGraph(128, 0.2)
	c := benchGraph(128, 0.2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := a.Clone()
		x.IntersectWith(c)
	}
}

func BenchmarkRootComponents(b *testing.B) {
	g := RandomRootedSkeleton(96, 5, rand.New(rand.NewSource(2)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RootComponents(g)
	}
}

func BenchmarkLabeledMergeRound(b *testing.B) {
	// Simulates one round of approximation merging: reset + fresh edges
	// + merge of 8 received graphs.
	n := 64
	rng := rand.New(rand.NewSource(3))
	received := make([]*Labeled, 8)
	for i := range received {
		received[i] = NewLabeled(n)
		for j := 0; j < 3*n; j++ {
			received[i].MergeEdge(rng.Intn(n), rng.Intn(n), 1+rng.Intn(50))
		}
	}
	g := NewLabeled(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		g.AddNode(0)
		for q := 0; q < 8; q++ {
			g.MergeEdge(q, 0, 51)
			received[q].ForEachEdge(func(u, v, l int) { g.MergeEdge(u, v, l) })
		}
		g.PurgeOlderThan(1)
		g.PruneUnreachableTo(0)
	}
}

func BenchmarkReachable(b *testing.B) {
	g := benchGraph(256, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Reachable(g, 0)
	}
}

func BenchmarkNodeSetOps(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := NewNodeSet(512)
	y := NewNodeSet(512)
	for i := 0; i < 200; i++ {
		x.Add(rng.Intn(512))
		y.Add(rng.Intn(512))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := x.Clone()
		z.IntersectWith(y)
		z.UnionWith(x)
		_ = z.Len()
	}
}
