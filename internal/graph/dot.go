package graph

import (
	"fmt"
	"strings"
)

// DOT renders g in Graphviz dot syntax. Self-loops are included unless
// omitSelfLoops is set (the paper's figures omit them). Output is
// deterministic.
func DOT(g *Digraph, name string, omitSelfLoops bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	g.Nodes().ForEach(func(v int) {
		fmt.Fprintf(&b, "  p%d;\n", v+1)
	})
	for _, e := range g.Edges() {
		if omitSelfLoops && e.From == e.To {
			continue
		}
		fmt.Fprintf(&b, "  p%d -> p%d;\n", e.From+1, e.To+1)
	}
	b.WriteString("}\n")
	return b.String()
}

// DOTLabeled renders a labeled graph in dot syntax with round labels on
// the edges, matching the presentation of the paper's Figure 1c-1h.
func DOTLabeled(g *Labeled, name string, omitSelfLoops bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	g.ForEachNode(func(v int) {
		fmt.Fprintf(&b, "  p%d;\n", v+1)
	})
	g.ForEachEdge(func(u, v, l int) {
		if omitSelfLoops && u == v {
			return
		}
		fmt.Fprintf(&b, "  p%d -> p%d [label=%d];\n", u+1, v+1, l)
	})
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders a fixed-width adjacency matrix of g: rows are sources,
// columns destinations, '1' marks an edge. Useful for terminal output of
// small graphs.
func ASCII(g *Digraph) string {
	n := g.N()
	var b strings.Builder
	b.WriteString("     ")
	for v := 0; v < n; v++ {
		fmt.Fprintf(&b, "p%-3d", v+1)
	}
	b.WriteByte('\n')
	for u := 0; u < n; u++ {
		fmt.Fprintf(&b, "p%-3d ", u+1)
		for v := 0; v < n; v++ {
			switch {
			case !g.HasNode(u) || !g.HasNode(v):
				b.WriteString(".   ")
			case g.HasEdge(u, v):
				b.WriteString("1   ")
			default:
				b.WriteString("0   ")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
