package graph

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// LabeledEdge is a directed edge carrying the round label of the paper's
// approximation graphs: (From --Label--> To) means "To heard From in round
// Label, and no fresher evidence is known".
type LabeledEdge struct {
	From, To, Label int
}

func (e LabeledEdge) String() string {
	return fmt.Sprintf("p%d-%d->p%d", e.From+1, e.Label, e.To+1)
}

// MaxLabel is the largest edge label Labeled stores. Labels are round
// numbers; a label beyond 2^31-1 would mean a run of two billion rounds
// and almost certainly indicates a caller bug, so MergeEdge rejects it
// loudly instead of truncating (labels are stored as int32 to halve the
// matrix footprint at large n).
const MaxLabel = math.MaxInt32

// Labeled is a round-labeled digraph over the universe 0..n-1: the
// weighted approximation graph G_p of Algorithm 1. Invariant (paper
// Lemma 3(c) / Lemma 4(b)): at most one label per ordered node pair, and
// merging keeps the maximum label ever seen. Labels are >= 1; 0 means "no
// edge".
//
// The representation is a dense label matrix plus a pair of bit-matrix
// shadows: out[u] holds bit v and in[v] holds bit u exactly when
// labels[u*n+v] != 0. The shadows make every structural kernel
// word-parallel and edge-proportional — merge, purge, reachability, and
// prune walk 64 node pairs per machine word instead of one matrix cell at
// a time — which is what lets the per-round rebuild scale past n = 64
// (DESIGN.md §8). Edges exist only between present nodes: MergeEdge adds
// both endpoints, RemoveNode clears its row and column.
type Labeled struct {
	n       int
	m       int // edge count, maintained incrementally (len of the shadow union)
	present NodeSet
	out     []NodeSet // row shadows: out[u] = {v : labels[u*n+v] != 0}
	in      []NodeSet // column shadows: in[v] = {u : labels[u*n+v] != 0}
	labels  []int32   // n*n row-major; labels[u*n+v] = label of u->v, 0 if absent
	arena   []uint64  // flat backing store of present + out + in
}

// NewLabeled returns an empty labeled graph over the universe 0..n-1. All
// 2n+1 bitsets (present, out, in) share one flat arena, as in NewDigraph;
// the full-capacity reslices confine each set to its arena slot.
func NewLabeled(n int) *Labeled {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative universe size %d", n))
	}
	words := (n + wordBits - 1) / wordBits
	sets := make([]NodeSet, 2*n)
	arena := make([]uint64, (2*n+1)*words)
	g := &Labeled{
		n:       n,
		present: NodeSet{words: arena[0:words:words]},
		out:     sets[:n:n],
		in:      sets[n:],
		labels:  make([]int32, n*n),
		arena:   arena,
	}
	for i := 0; i < n; i++ {
		lo := (1 + i) * words
		g.out[i] = NodeSet{words: arena[lo : lo+words : lo+words]}
		lo = (1 + n + i) * words
		g.in[i] = NodeSet{words: arena[lo : lo+words : lo+words]}
	}
	return g
}

// N returns the universe size.
func (g *Labeled) N() int { return g.n }

// denseWordCut is the popcount above which the sparse matrix kernels
// switch from per-bit extraction to a straight scan of the word's 64
// label cells. Per-bit costs a TrailingZeros + branch per edge; the
// linear scan costs one predictable pass the hardware prefetches, so it
// wins once a word is mostly full while sparse words keep the O(edges)
// walk.
const denseWordCut = 16

// dense reports whether the graph is dense enough (>= 25% of all ordered
// pairs labeled) that flat whole-matrix kernels beat the shadow-guided
// edge-proportional ones. Complete-graph rounds — the decided steady
// state of Algorithm 1 on a stable skeleton — sit firmly on the flat
// side; large sparse approximations (E20's hub skeletons) on the other.
func (g *Labeled) dense() bool { return 4*g.m >= g.n*g.n }

// Reset empties the graph in place, retaining allocated storage; used by
// the per-round rebuild (Algorithm 1 line 15). Dense graphs take one
// flat clear of the label matrix and the bitset arena; sparse graphs
// touch only rows and columns of present nodes (absent nodes have none
// by invariant), costing O(present·words + edges), not O(n²).
func (g *Labeled) Reset() {
	if g.dense() {
		clear(g.labels)
		clear(g.arena)
		g.m = 0
		return
	}
	for u := g.present.Next(0); u >= 0; u = g.present.Next(u + 1) {
		row := g.out[u].words
		base := u * g.n
		for i, w := range row {
			if w == 0 {
				continue
			}
			if bits.OnesCount64(w) >= denseWordCut {
				lo := i * wordBits
				hi := min(lo+wordBits, g.n)
				clear(g.labels[base+lo : base+hi])
			} else {
				for w != 0 {
					b := bits.TrailingZeros64(w)
					w &^= 1 << b
					g.labels[base+i*wordBits+b] = 0
				}
			}
			row[i] = 0
		}
		g.in[u].Clear()
	}
	g.present.Clear()
	g.m = 0
}

// AddNode marks v present.
func (g *Labeled) AddNode(v int) {
	g.check(v)
	g.present.Add(v)
}

// HasNode reports whether v is present.
func (g *Labeled) HasNode(v int) bool { return g.present.Has(v) }

// Nodes returns a copy of the present-node set.
func (g *Labeled) Nodes() NodeSet { return g.present.Clone() }

// NumNodes returns the number of present nodes.
func (g *Labeled) NumNodes() int { return g.present.Len() }

// RemoveNode removes v and all incident edges in O(degree) time: the bit
// shadows name exactly the label cells to clear, so no row or column scan
// is needed.
func (g *Labeled) RemoveNode(v int) {
	g.check(v)
	if !g.present.Has(v) {
		return
	}
	g.m -= g.out[v].Len() + g.in[v].Len()
	if g.out[v].Has(v) {
		g.m++ // the self-loop sits in both shadows but is one edge
	}
	row := g.out[v].words
	base := v * g.n
	for i, w := range row {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			t := i*wordBits + b
			g.labels[base+t] = 0
			g.in[t].Remove(v)
		}
		row[i] = 0
	}
	col := g.in[v].words
	for i, w := range col {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			s := i*wordBits + b
			g.labels[s*g.n+v] = 0
			g.out[s].Remove(v)
		}
		col[i] = 0
	}
	g.present.Remove(v)
}

// MergeEdge merges the edge u --label--> v keeping the maximum label for
// the pair (the paper's lines 19-23 collapsed: R_{i,j} max-merge). Both
// endpoints become present. It reports whether the stored label changed.
func (g *Labeled) MergeEdge(u, v, label int) bool {
	g.check(u)
	g.check(v)
	if label <= 0 {
		panic(fmt.Sprintf("graph: non-positive label %d", label))
	}
	if label > MaxLabel {
		panic(fmt.Sprintf("graph: label %d exceeds MaxLabel %d", label, MaxLabel))
	}
	g.present.Add(u)
	g.present.Add(v)
	if int32(label) > g.labels[u*g.n+v] {
		if g.labels[u*g.n+v] == 0 {
			g.out[u].Add(v)
			g.in[v].Add(u)
			g.m++
		}
		g.labels[u*g.n+v] = int32(label)
		return true
	}
	return false
}

// Label returns the label of u->v, or 0 if the edge is absent.
func (g *Labeled) Label(u, v int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0
	}
	return int(g.labels[u*g.n+v])
}

// HasEdge reports whether the edge u->v is present.
func (g *Labeled) HasEdge(u, v int) bool { return g.Label(u, v) != 0 }

// NumEdges returns the number of labeled edges (self-loops included),
// maintained incrementally so the density dispatch and callers pay O(1).
func (g *Labeled) NumEdges() int { return g.m }

// Edges returns all labeled edges in deterministic (from, to) order.
func (g *Labeled) Edges() []LabeledEdge {
	out := make([]LabeledEdge, 0, g.NumEdges())
	g.ForEachEdge(func(u, v, l int) {
		out = append(out, LabeledEdge{From: u, To: v, Label: l})
	})
	return out
}

// ForEachEdge calls fn for every labeled edge in (from, to) order. The
// row shadows word-skip the empty part of the matrix, so the walk is
// proportional to the edge count, not n².
func (g *Labeled) ForEachEdge(fn func(u, v, label int)) {
	for u := g.present.Next(0); u >= 0; u = g.present.Next(u + 1) {
		row := g.out[u].words
		base := u * g.n
		for i, w := range row {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &^= 1 << b
				v := i*wordBits + b
				fn(u, v, int(g.labels[base+v]))
			}
		}
	}
}

// ForEachNode calls fn for every present node in ascending order.
func (g *Labeled) ForEachNode(fn func(v int)) { g.present.ForEach(fn) }

// MergeFrom merges every node and edge of src into g, keeping the maximum
// label per ordered pair: Algorithm 1 lines 18-23 for one received graph.
// A dense src takes the flat path — one element-wise max over the label
// matrices plus one word-parallel OR of the whole bitset arena (nodes and
// both shadows merge by union) — the branch-predictable scan that wins on
// complete-graph rounds. A sparse src is walked edge-proportionally
// through its row shadows: O(src present·words + src edges), not O(n²).
// Either way it allocates nothing.
func (g *Labeled) MergeFrom(src *Labeled) {
	if g.n != src.n {
		panic(fmt.Sprintf("graph: MergeFrom universe mismatch %d vs %d", g.n, src.n))
	}
	if src.dense() {
		da := g.arena[:len(src.arena)]
		for i, w := range src.arena { // present + both shadows: union is OR
			da[i] |= w
		}
		words := len(g.present.words)
		m := 0
		for _, w := range da[words : (1+g.n)*words] { // recount from the row shadows
			m += bits.OnesCount64(w)
		}
		g.m = m
		dl := g.labels[:len(src.labels)]
		for i, l := range src.labels {
			if l > dl[i] {
				dl[i] = l
			}
		}
		return
	}
	g.present.UnionWith(src.present)
	for u := src.present.Next(0); u >= 0; u = src.present.Next(u + 1) {
		srow := src.out[u].words
		drow := g.out[u].words
		base := u * g.n
		sl := src.labels[base : base+g.n]
		dl := g.labels[base : base+g.n]
		for i, w := range srow {
			if w == 0 {
				continue
			}
			if bits.OnesCount64(w) >= denseWordCut {
				// Dense word: linear max-merge over the 64 cells
				// (absent cells have sl[v] == 0, so they never win),
				// with in-shadow updates only for genuinely new edges.
				lo := i * wordBits
				hi := min(lo+wordBits, g.n)
				for v := lo; v < hi; v++ {
					if sl[v] > dl[v] {
						dl[v] = sl[v]
					}
				}
				nw := w &^ drow[i]
				g.m += bits.OnesCount64(nw)
				for nw != 0 {
					b := bits.TrailingZeros64(nw)
					nw &^= 1 << b
					g.in[lo+b].Add(u)
				}
			} else {
				for t := w; t != 0; {
					b := bits.TrailingZeros64(t)
					t &^= 1 << b
					v := i*wordBits + b
					if sl[v] > dl[v] {
						if dl[v] == 0 {
							g.in[v].Add(u)
							g.m++
						}
						dl[v] = sl[v]
					}
				}
			}
			drow[i] |= w
		}
	}
}

// PurgeOlderThan removes every edge with label <= threshold: Algorithm 1
// line 24 with threshold = r - n. It returns the number of edges removed.
// Labels are >= 1, so thresholds below 1 return immediately; otherwise
// the row shadows restrict the scan to actual edges.
func (g *Labeled) PurgeOlderThan(threshold int) int {
	if threshold < 1 {
		return 0
	}
	t32 := int32(MaxLabel)
	if threshold < MaxLabel {
		t32 = int32(threshold)
	}
	removed := 0
	if g.dense() {
		// Flat path: one predictable scan of the whole matrix. In the
		// decided steady state every label is fresh, so this is a pure
		// read pass; the per-edge shadow repair runs only on removal.
		for i, l := range g.labels {
			if l != 0 && l <= t32 {
				u, v := i/g.n, i%g.n
				g.labels[i] = 0
				g.out[u].Remove(v)
				g.in[v].Remove(u)
				removed++
			}
		}
		g.m -= removed
		return removed
	}
	for u := g.present.Next(0); u >= 0; u = g.present.Next(u + 1) {
		row := g.out[u].words
		base := u * g.n
		for i, w := range row {
			if w == 0 {
				continue
			}
			if bits.OnesCount64(w) >= denseWordCut {
				lo := i * wordBits
				hi := min(lo+wordBits, g.n)
				for v := lo; v < hi; v++ {
					if l := g.labels[base+v]; l != 0 && l <= t32 {
						g.labels[base+v] = 0
						row[i] &^= 1 << (v - lo)
						g.in[v].Remove(u)
						removed++
					}
				}
			} else {
				for t := w; t != 0; {
					b := bits.TrailingZeros64(t)
					t &^= 1 << b
					v := i*wordBits + b
					if g.labels[base+v] <= t32 {
						g.labels[base+v] = 0
						row[i] &^= 1 << b
						g.in[v].Remove(u)
						removed++
					}
				}
			}
		}
	}
	g.m -= removed
	return removed
}

// Unlabeled returns the plain digraph with the same present nodes and
// edges (labels dropped): the paper's "unweighted version of G_p" used for
// the subgraph relations in Section IV-A. The bit shadows are copied
// word-wise straight into the digraph's adjacency sets.
func (g *Labeled) Unlabeled() *Digraph {
	d := NewDigraph(g.n)
	d.present.CopyFrom(g.present)
	for i := 0; i < g.n; i++ {
		d.out[i].CopyFrom(g.out[i])
		d.in[i].CopyFrom(g.in[i])
	}
	return d
}

// PruneUnreachableTo removes every node (and incident edges) from which p
// is unreachable: Algorithm 1 line 25. p itself is always kept. It returns
// the number of nodes removed.
func (g *Labeled) PruneUnreachableTo(p int) int {
	var s ReachScratch
	return g.PruneUnreachableToInPlace(p, &s)
}

// PruneUnreachableToInPlace is PruneUnreachableTo with caller-owned
// scratch. Reverse reachability from p runs word-parallel on the column
// shadows, the dead set is one word-level AND-NOT against the present
// bitset, and each removal is O(degree); steady-state calls allocate
// nothing.
func (g *Labeled) PruneUnreachableToInPlace(p int, s *ReachScratch) int {
	g.check(p)
	g.present.Add(p)
	g.reverseReachInto(p, s)
	removed := 0
	for i, word := range g.present.words {
		dead := word &^ s.seen.words[i]
		for dead != 0 {
			b := bits.TrailingZeros64(dead)
			dead &^= 1 << b
			g.RemoveNode(i*wordBits + b)
			removed++
		}
	}
	return removed
}

// StronglyConnected reports whether the present nodes form one strongly
// connected component: the decision test of Algorithm 1 line 28. A single
// present node is strongly connected.
func (g *Labeled) StronglyConnected() bool {
	var s ReachScratch
	return g.StronglyConnectedInto(&s)
}

// StronglyConnectedInto is StronglyConnected with caller-owned scratch:
// a forward reachability pass over the row shadows and a backward pass
// over the column shadows from the smallest present node, each compared
// word-wise against the present bitset. Steady-state calls allocate
// nothing.
func (g *Labeled) StronglyConnectedInto(s *ReachScratch) bool {
	first := g.present.Min()
	if first < 0 {
		return false
	}
	// Forward pass: everything first reaches, following rows.
	g.forwardReachInto(first, s)
	if !s.seen.Equal(g.present) {
		return false
	}
	// Backward pass: everything reaching first, following columns.
	g.reverseReachInto(first, s)
	return s.seen.Equal(g.present)
}

// forwardReachInto fills s.seen with every present node reachable from
// start along out-edges. The frontier walk is word-parallel: each popped
// node contributes its whole adjacency row with one AND-NOT + OR per
// word, and only newly seen nodes are pushed.
func (g *Labeled) forwardReachInto(start int, s *ReachScratch) {
	s.reset(g.n)
	s.seen.Add(start)
	s.stack = append(s.stack, start)
	for len(s.stack) > 0 {
		u := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		for i, w := range g.out[u].words {
			nw := w &^ s.seen.words[i]
			if nw == 0 {
				continue
			}
			s.seen.words[i] |= nw
			for nw != 0 {
				b := bits.TrailingZeros64(nw)
				nw &^= 1 << b
				s.stack = append(s.stack, i*wordBits+b)
			}
		}
	}
}

// reverseReachInto fills s.seen with every present node that reaches
// start, following in-edges. Identical word-parallel frontier walk as
// forwardReachInto, over the column shadows — no strided column scans of
// the label matrix.
func (g *Labeled) reverseReachInto(start int, s *ReachScratch) {
	s.reset(g.n)
	s.seen.Add(start)
	s.stack = append(s.stack, start)
	for len(s.stack) > 0 {
		u := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		for i, w := range g.in[u].words {
			nw := w &^ s.seen.words[i]
			if nw == 0 {
				continue
			}
			s.seen.words[i] |= nw
			for nw != 0 {
				b := bits.TrailingZeros64(nw)
				nw &^= 1 << b
				s.stack = append(s.stack, i*wordBits+b)
			}
		}
	}
}

// Clone returns a deep copy.
func (g *Labeled) Clone() *Labeled {
	c := NewLabeled(g.n)
	c.CopyFrom(g)
	return c
}

// CopyFrom overwrites g with the contents of src (same universe
// required), reusing the receiver's arena and label matrix so repeated
// copies allocate nothing. The whole bitset arena (present + both
// shadows) is one flat copy.
func (g *Labeled) CopyFrom(src *Labeled) {
	if g.n != src.n {
		panic(fmt.Sprintf("graph: CopyFrom universe mismatch %d vs %d", g.n, src.n))
	}
	copy(g.arena, src.arena)
	copy(g.labels, src.labels)
	g.m = src.m
}

// Equal reports whether g and h have the same nodes, edges, and labels.
func (g *Labeled) Equal(h *Labeled) bool {
	if g.n != h.n || !g.present.Equal(h.present) {
		return false
	}
	for i := range g.labels {
		if g.labels[i] != h.labels[i] {
			return false
		}
	}
	return true
}

// LabelMultiset returns the sorted (descending) multiset of labels of
// non-self-loop edges. The paper's Figure 1 is drawn without self-loops,
// so this is the quantity compared in experiment E1.
func (g *Labeled) LabelMultiset() []int {
	var out []int
	g.ForEachEdge(func(u, v, l int) {
		if u != v {
			out = append(out, l)
		}
	})
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// String renders the labeled edges (self-loops included) deterministically,
// e.g. "p5-3->p6, p4-2->p5".
func (g *Labeled) String() string {
	var parts []string
	g.ForEachEdge(func(u, v, l int) {
		parts = append(parts, LabeledEdge{u, v, l}.String())
	})
	if len(parts) == 0 {
		return fmt.Sprintf("(nodes %s, no edges)", g.present.String())
	}
	return strings.Join(parts, ", ")
}

func (g *Labeled) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: node %d out of universe [0,%d)", v, g.n))
	}
}
