package graph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// LabeledEdge is a directed edge carrying the round label of the paper's
// approximation graphs: (From --Label--> To) means "To heard From in round
// Label, and no fresher evidence is known".
type LabeledEdge struct {
	From, To, Label int
}

func (e LabeledEdge) String() string {
	return fmt.Sprintf("p%d-%d->p%d", e.From+1, e.Label, e.To+1)
}

// Labeled is a round-labeled digraph over the universe 0..n-1: the
// weighted approximation graph G_p of Algorithm 1. Invariant (paper
// Lemma 3(c) / Lemma 4(b)): at most one label per ordered node pair, and
// merging keeps the maximum label ever seen. Labels are >= 1; 0 means "no
// edge". The representation is a dense matrix because graphs are rebuilt
// for every process in every round and n is small.
type Labeled struct {
	n       int
	present NodeSet
	labels  []int // n*n row-major; labels[u*n+v] = label of u->v, 0 if absent
}

// NewLabeled returns an empty labeled graph over the universe 0..n-1.
func NewLabeled(n int) *Labeled {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative universe size %d", n))
	}
	return &Labeled{
		n:       n,
		present: NewNodeSet(n),
		labels:  make([]int, n*n),
	}
}

// N returns the universe size.
func (g *Labeled) N() int { return g.n }

// Reset empties the graph in place, retaining allocated storage; used by
// the per-round rebuild (Algorithm 1 line 15).
func (g *Labeled) Reset() {
	g.present.Clear()
	for i := range g.labels {
		g.labels[i] = 0
	}
}

// AddNode marks v present.
func (g *Labeled) AddNode(v int) {
	g.check(v)
	g.present.Add(v)
}

// HasNode reports whether v is present.
func (g *Labeled) HasNode(v int) bool { return g.present.Has(v) }

// Nodes returns a copy of the present-node set.
func (g *Labeled) Nodes() NodeSet { return g.present.Clone() }

// NumNodes returns the number of present nodes.
func (g *Labeled) NumNodes() int { return g.present.Len() }

// RemoveNode removes v and all incident edges.
func (g *Labeled) RemoveNode(v int) {
	g.check(v)
	if !g.present.Has(v) {
		return
	}
	for w := 0; w < g.n; w++ {
		g.labels[v*g.n+w] = 0
		g.labels[w*g.n+v] = 0
	}
	g.present.Remove(v)
}

// MergeEdge merges the edge u --label--> v keeping the maximum label for
// the pair (the paper's lines 19-23 collapsed: R_{i,j} max-merge). Both
// endpoints become present. It reports whether the stored label changed.
func (g *Labeled) MergeEdge(u, v, label int) bool {
	g.check(u)
	g.check(v)
	if label <= 0 {
		panic(fmt.Sprintf("graph: non-positive label %d", label))
	}
	g.present.Add(u)
	g.present.Add(v)
	if label > g.labels[u*g.n+v] {
		g.labels[u*g.n+v] = label
		return true
	}
	return false
}

// Label returns the label of u->v, or 0 if the edge is absent.
func (g *Labeled) Label(u, v int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0
	}
	return g.labels[u*g.n+v]
}

// HasEdge reports whether the edge u->v is present.
func (g *Labeled) HasEdge(u, v int) bool { return g.Label(u, v) != 0 }

// NumEdges returns the number of labeled edges (self-loops included).
func (g *Labeled) NumEdges() int {
	c := 0
	for _, l := range g.labels {
		if l != 0 {
			c++
		}
	}
	return c
}

// Edges returns all labeled edges in deterministic (from, to) order.
func (g *Labeled) Edges() []LabeledEdge {
	out := make([]LabeledEdge, 0, 16)
	for u := 0; u < g.n; u++ {
		row := g.labels[u*g.n : (u+1)*g.n]
		for v, l := range row {
			if l != 0 {
				out = append(out, LabeledEdge{From: u, To: v, Label: l})
			}
		}
	}
	return out
}

// ForEachEdge calls fn for every labeled edge in (from, to) order. Only
// rows of present nodes are scanned (edges exist only between present
// nodes — MergeEdge adds endpoints, RemoveNode clears its row and
// column), which word-skips the empty part of the matrix.
func (g *Labeled) ForEachEdge(fn func(u, v, label int)) {
	for u := g.present.Next(0); u >= 0; u = g.present.Next(u + 1) {
		row := g.labels[u*g.n : (u+1)*g.n]
		for v, l := range row {
			if l != 0 {
				fn(u, v, l)
			}
		}
	}
}

// ForEachNode calls fn for every present node in ascending order.
func (g *Labeled) ForEachNode(fn func(v int)) { g.present.ForEach(fn) }

// MergeFrom merges every node and edge of src into g, keeping the maximum
// label per ordered pair: Algorithm 1 lines 18-23 for one received graph,
// as one word-level present union plus one element-wise max over the
// label matrices. It allocates nothing.
func (g *Labeled) MergeFrom(src *Labeled) {
	if g.n != src.n {
		panic(fmt.Sprintf("graph: MergeFrom universe mismatch %d vs %d", g.n, src.n))
	}
	g.present.UnionWith(src.present)
	dst := g.labels
	for i, l := range src.labels {
		if l > dst[i] {
			dst[i] = l
		}
	}
}

// PurgeOlderThan removes every edge with label <= threshold: Algorithm 1
// line 24 with threshold = r - n. It returns the number of edges removed.
func (g *Labeled) PurgeOlderThan(threshold int) int {
	removed := 0
	for i, l := range g.labels {
		if l != 0 && l <= threshold {
			g.labels[i] = 0
			removed++
		}
	}
	return removed
}

// Unlabeled returns the plain digraph with the same present nodes and
// edges (labels dropped): the paper's "unweighted version of G_p" used for
// the subgraph relations in Section IV-A.
func (g *Labeled) Unlabeled() *Digraph {
	d := NewDigraph(g.n)
	g.present.ForEach(func(v int) { d.AddNode(v) })
	g.ForEachEdge(func(u, v, _ int) { d.AddEdge(u, v) })
	return d
}

// PruneUnreachableTo removes every node (and incident edges) from which p
// is unreachable: Algorithm 1 line 25. p itself is always kept. It returns
// the number of nodes removed.
func (g *Labeled) PruneUnreachableTo(p int) int {
	var s ReachScratch
	return g.PruneUnreachableToInPlace(p, &s)
}

// PruneUnreachableToInPlace is PruneUnreachableTo with caller-owned
// scratch. It runs directly on the label matrix — reverse reachability
// from p word-scans the present bitset for in-neighbors — so no
// intermediate Digraph is materialized and steady-state calls allocate
// nothing.
func (g *Labeled) PruneUnreachableToInPlace(p int, s *ReachScratch) int {
	g.check(p)
	g.present.Add(p)
	g.reverseReachInto(p, s)
	removed := 0
	for i, word := range g.present.words {
		dead := word &^ s.seen.words[i]
		for dead != 0 {
			b := bits.TrailingZeros64(dead)
			dead &^= 1 << b
			g.RemoveNode(i*wordBits + b)
			removed++
		}
	}
	return removed
}

// StronglyConnected reports whether the present nodes form one strongly
// connected component: the decision test of Algorithm 1 line 28. A single
// present node is strongly connected.
func (g *Labeled) StronglyConnected() bool {
	var s ReachScratch
	return g.StronglyConnectedInto(&s)
}

// StronglyConnectedInto is StronglyConnected with caller-owned scratch.
// It runs directly on the label matrix: a forward reachability pass over
// the rows and a backward pass over the columns from the smallest present
// node, each compared word-wise against the present bitset. No Digraph is
// materialized and steady-state calls allocate nothing.
func (g *Labeled) StronglyConnectedInto(s *ReachScratch) bool {
	first := g.present.Min()
	if first < 0 {
		return false
	}
	// Forward pass: everything first reaches, following rows.
	g.forwardReachInto(first, s)
	if !s.seen.Equal(g.present) {
		return false
	}
	// Backward pass: everything reaching first, following columns.
	g.reverseReachInto(first, s)
	return s.seen.Equal(g.present)
}

// forwardReachInto fills s.seen with every present node reachable from
// start along label-matrix rows (out-edges).
func (g *Labeled) forwardReachInto(start int, s *ReachScratch) {
	s.reset(g.n)
	s.seen.Add(start)
	s.stack = append(s.stack, start)
	for len(s.stack) > 0 {
		u := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		row := g.labels[u*g.n : (u+1)*g.n]
		for i, word := range g.present.words {
			cand := word &^ s.seen.words[i]
			for cand != 0 {
				b := bits.TrailingZeros64(cand)
				cand &^= 1 << b
				if row[i*wordBits+b] != 0 {
					s.seen.words[i] |= 1 << b
					s.stack = append(s.stack, i*wordBits+b)
				}
			}
		}
	}
}

// reverseReachInto fills s.seen with every present node that reaches
// start, following label-matrix columns (in-edges).
func (g *Labeled) reverseReachInto(start int, s *ReachScratch) {
	s.reset(g.n)
	s.seen.Add(start)
	s.stack = append(s.stack, start)
	for len(s.stack) > 0 {
		u := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		for i, word := range g.present.words {
			cand := word &^ s.seen.words[i]
			for cand != 0 {
				b := bits.TrailingZeros64(cand)
				cand &^= 1 << b
				w := i*wordBits + b
				if g.labels[w*g.n+u] != 0 {
					s.seen.words[i] |= 1 << b
					s.stack = append(s.stack, w)
				}
			}
		}
	}
}

// Clone returns a deep copy.
func (g *Labeled) Clone() *Labeled {
	c := &Labeled{
		n:       g.n,
		present: g.present.Clone(),
		labels:  make([]int, len(g.labels)),
	}
	copy(c.labels, g.labels)
	return c
}

// CopyFrom overwrites g with the contents of src (same universe
// required), reusing the receiver's present-set words and label matrix so
// repeated copies allocate nothing.
func (g *Labeled) CopyFrom(src *Labeled) {
	if g.n != src.n {
		panic(fmt.Sprintf("graph: CopyFrom universe mismatch %d vs %d", g.n, src.n))
	}
	g.present.CopyFrom(src.present)
	copy(g.labels, src.labels)
}

// Equal reports whether g and h have the same nodes, edges, and labels.
func (g *Labeled) Equal(h *Labeled) bool {
	if g.n != h.n || !g.present.Equal(h.present) {
		return false
	}
	for i := range g.labels {
		if g.labels[i] != h.labels[i] {
			return false
		}
	}
	return true
}

// LabelMultiset returns the sorted (descending) multiset of labels of
// non-self-loop edges. The paper's Figure 1 is drawn without self-loops,
// so this is the quantity compared in experiment E1.
func (g *Labeled) LabelMultiset() []int {
	var out []int
	g.ForEachEdge(func(u, v, l int) {
		if u != v {
			out = append(out, l)
		}
	})
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// String renders the labeled edges (self-loops included) deterministically,
// e.g. "p5-3->p6, p4-2->p5".
func (g *Labeled) String() string {
	var parts []string
	g.ForEachEdge(func(u, v, l int) {
		parts = append(parts, LabeledEdge{u, v, l}.String())
	})
	if len(parts) == 0 {
		return fmt.Sprintf("(nodes %s, no edges)", g.present.String())
	}
	return strings.Join(parts, ", ")
}

func (g *Labeled) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: node %d out of universe [0,%d)", v, g.n))
	}
}
