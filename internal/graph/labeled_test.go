package graph

import (
	"math/rand"
	"testing"
)

func TestLabeledMergeMaxWins(t *testing.T) {
	g := NewLabeled(4)
	if !g.MergeEdge(0, 1, 3) {
		t.Fatal("first merge should change")
	}
	if g.MergeEdge(0, 1, 2) {
		t.Fatal("lower label should not overwrite")
	}
	if got := g.Label(0, 1); got != 3 {
		t.Fatalf("Label = %d, want 3", got)
	}
	if !g.MergeEdge(0, 1, 5) {
		t.Fatal("higher label should overwrite")
	}
	if got := g.Label(0, 1); got != 5 {
		t.Fatalf("Label = %d, want 5", got)
	}
}

func TestLabeledOneLabelPerPair(t *testing.T) {
	// Lemma 3(c)/4(b): at most one labeled edge per ordered pair.
	g := NewLabeled(3)
	g.MergeEdge(0, 1, 1)
	g.MergeEdge(0, 1, 4)
	g.MergeEdge(0, 1, 2)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestLabeledMergeAddsNodes(t *testing.T) {
	g := NewLabeled(4)
	g.MergeEdge(2, 3, 1)
	if !g.HasNode(2) || !g.HasNode(3) {
		t.Fatal("endpoints not added")
	}
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
}

func TestLabeledZeroLabelPanics(t *testing.T) {
	g := NewLabeled(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.MergeEdge(0, 1, 0)
}

func TestLabeledPurge(t *testing.T) {
	g := NewLabeled(4)
	g.MergeEdge(0, 1, 1)
	g.MergeEdge(1, 2, 2)
	g.MergeEdge(2, 3, 3)
	if got := g.PurgeOlderThan(2); got != 2 {
		t.Fatalf("purged %d, want 2", got)
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 2) {
		t.Fatal("old edges survived purge")
	}
	if !g.HasEdge(2, 3) {
		t.Fatal("fresh edge purged")
	}
	// Nodes stay present after purge (only PruneUnreachableTo drops nodes).
	if !g.HasNode(0) {
		t.Fatal("node dropped by purge")
	}
}

func TestLabeledRemoveNode(t *testing.T) {
	g := NewLabeled(3)
	g.MergeEdge(0, 1, 1)
	g.MergeEdge(1, 2, 2)
	g.MergeEdge(2, 1, 2)
	g.RemoveNode(1)
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d after hub removal", g.NumEdges())
	}
	if g.HasNode(1) {
		t.Fatal("node still present")
	}
}

func TestLabeledPruneUnreachableTo(t *testing.T) {
	// 0 -> 1 -> 2, and 3 dangling off 2 (2->3): node 3 cannot reach 2.
	g := NewLabeled(5)
	g.MergeEdge(0, 1, 1)
	g.MergeEdge(1, 2, 1)
	g.MergeEdge(2, 3, 1)
	g.AddNode(4) // isolated
	removed := g.PruneUnreachableTo(2)
	if removed != 2 {
		t.Fatalf("removed = %d, want 2 (p4 and p5)", removed)
	}
	if g.HasNode(3) || g.HasNode(4) {
		t.Fatal("unreachable-to-p nodes kept")
	}
	if !g.HasNode(0) || !g.HasNode(1) || !g.HasNode(2) {
		t.Fatal("ancestors dropped")
	}
}

func TestLabeledPruneKeepsTargetEvenIfAbsent(t *testing.T) {
	g := NewLabeled(3)
	g.MergeEdge(0, 1, 1)
	g.PruneUnreachableTo(2)
	if !g.HasNode(2) {
		t.Fatal("target not present after prune")
	}
	if g.HasNode(0) || g.HasNode(1) {
		t.Fatal("nodes not reaching target survived")
	}
}

func TestLabeledUnlabeled(t *testing.T) {
	g := NewLabeled(3)
	g.MergeEdge(0, 1, 7)
	g.AddNode(2)
	d := g.Unlabeled()
	if !d.HasEdge(0, 1) || !d.HasNode(2) {
		t.Fatal("Unlabeled lost structure")
	}
	if d.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", d.NumEdges())
	}
}

func TestLabeledStronglyConnected(t *testing.T) {
	g := NewLabeled(3)
	g.AddNode(0)
	if !g.StronglyConnected() {
		t.Fatal("single node should be strongly connected")
	}
	g.MergeEdge(0, 1, 1)
	if g.StronglyConnected() {
		t.Fatal("one-way edge reported strongly connected")
	}
	g.MergeEdge(1, 0, 2)
	if !g.StronglyConnected() {
		t.Fatal("2-cycle should be strongly connected")
	}
}

func TestLabeledSelfLoopIgnoredForConnectivity(t *testing.T) {
	g := NewLabeled(2)
	g.MergeEdge(0, 0, 1)
	if !g.StronglyConnected() {
		t.Fatal("single node with self-loop should be strongly connected")
	}
}

func TestLabeledReset(t *testing.T) {
	g := NewLabeled(3)
	g.MergeEdge(0, 1, 5)
	g.Reset()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("Reset incomplete")
	}
	g.MergeEdge(1, 2, 1)
	if g.Label(0, 1) != 0 {
		t.Fatal("stale label after reset")
	}
}

func TestLabeledCloneAndCopyFrom(t *testing.T) {
	g := NewLabeled(3)
	g.MergeEdge(0, 1, 2)
	c := g.Clone()
	c.MergeEdge(1, 2, 3)
	if g.HasEdge(1, 2) {
		t.Fatal("clone aliases original")
	}
	h := NewLabeled(3)
	h.CopyFrom(g)
	if !h.Equal(g) {
		t.Fatal("CopyFrom mismatch")
	}
	h.MergeEdge(2, 0, 9)
	if g.HasEdge(2, 0) {
		t.Fatal("CopyFrom aliases source")
	}
}

func TestLabeledEqual(t *testing.T) {
	a := NewLabeled(3)
	a.MergeEdge(0, 1, 2)
	b := NewLabeled(3)
	b.MergeEdge(0, 1, 2)
	if !a.Equal(b) {
		t.Fatal("identical graphs not Equal")
	}
	b.MergeEdge(0, 1, 3)
	if a.Equal(b) {
		t.Fatal("different labels Equal")
	}
	c := NewLabeled(3)
	c.MergeEdge(0, 1, 2)
	c.AddNode(2)
	if a.Equal(c) {
		t.Fatal("different node sets Equal")
	}
}

func TestLabeledLabelMultiset(t *testing.T) {
	g := NewLabeled(4)
	g.MergeEdge(0, 1, 2)
	g.MergeEdge(1, 2, 1)
	g.MergeEdge(2, 3, 2)
	g.MergeEdge(3, 3, 9) // self-loop excluded
	got := g.LabelMultiset()
	want := []int{2, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("multiset = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multiset = %v, want %v", got, want)
		}
	}
}

func TestLabeledEdgesDeterministic(t *testing.T) {
	g := NewLabeled(3)
	g.MergeEdge(2, 0, 1)
	g.MergeEdge(0, 2, 3)
	g.MergeEdge(0, 1, 2)
	e := g.Edges()
	want := []LabeledEdge{{0, 1, 2}, {0, 2, 3}, {2, 0, 1}}
	if len(e) != len(want) {
		t.Fatalf("Edges = %v", e)
	}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", e, want)
		}
	}
}

func TestLabeledString(t *testing.T) {
	g := NewLabeled(3)
	g.MergeEdge(1, 2, 4)
	if got := g.String(); got != "p2-4->p3" {
		t.Fatalf("String = %q", got)
	}
	empty := NewLabeled(2)
	empty.AddNode(0)
	if got := empty.String(); got != "(nodes {p1}, no edges)" {
		t.Fatalf("String = %q", got)
	}
}

func TestLabeledRandomizedMaxMergeCommutes(t *testing.T) {
	// Merging the same multiset of labeled edges in any order yields the
	// same graph (max is commutative/associative/idempotent).
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		type le struct{ u, v, l int }
		var edges []le
		for i := 0; i < 20; i++ {
			edges = append(edges, le{rng.Intn(n), rng.Intn(n), 1 + rng.Intn(9)})
		}
		a := NewLabeled(n)
		for _, e := range edges {
			a.MergeEdge(e.u, e.v, e.l)
		}
		b := NewLabeled(n)
		for _, i := range rng.Perm(len(edges)) {
			b.MergeEdge(edges[i].u, edges[i].v, edges[i].l)
		}
		if !a.Equal(b) {
			t.Fatal("merge order changed result")
		}
	}
}
