package graph

import (
	"math/rand"
	"testing"
)

func TestRandomDigraphSelfLoopsAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, p := range []float64{0, 0.5, 1} {
		g := RandomDigraph(6, p, rng)
		for v := 0; v < 6; v++ {
			if !g.HasEdge(v, v) {
				t.Fatalf("p=%v: missing self-loop %d", p, v)
			}
		}
	}
}

func TestRandomDigraphDensityExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	sparse := RandomDigraph(8, 0, rng)
	if sparse.NumEdges() != 8 {
		t.Fatalf("p=0 should give self-loops only, got %d edges", sparse.NumEdges())
	}
	dense := RandomDigraph(8, 1, rng)
	if dense.NumEdges() != 64 {
		t.Fatalf("p=1 should give the complete graph, got %d edges", dense.NumEdges())
	}
}

func TestRandomCycleComponentStronglyConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 100; trial++ {
		n := 8
		g := NewFullDigraph(n)
		g.AddSelfLoops()
		size := 1 + rng.Intn(n)
		nodes := rng.Perm(n)[:size]
		RandomCycleComponent(g, nodes, rng.Float64()*0.5, rng)
		set := NodeSetOf(nodes...)
		sub := g.InducedSubgraph(set)
		if !StronglyConnected(sub) {
			t.Fatalf("component over %v not strongly connected: %v", nodes, sub)
		}
	}
}

func TestRandomCycleComponentEmptyNoop(t *testing.T) {
	g := NewFullDigraph(3)
	g.AddSelfLoops()
	before := g.NumEdges()
	RandomCycleComponent(g, nil, 0.5, rand.New(rand.NewSource(1)))
	if g.NumEdges() != before {
		t.Fatal("empty component changed the graph")
	}
}

func TestRandomRootedSkeletonSelfLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := RandomRootedSkeleton(10, 3, rng)
	for v := 0; v < 10; v++ {
		if !g.HasEdge(v, v) {
			t.Fatalf("missing self-loop %d", v)
		}
	}
}

func TestRandomRootedSkeletonPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for _, args := range [][2]int{{5, 0}, {5, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RandomRootedSkeleton(%d,%d) should panic", args[0], args[1])
				}
			}()
			RandomRootedSkeleton(args[0], args[1], rng)
		}()
	}
}

func TestRandomRootedSkeletonDownstreamReachable(t *testing.T) {
	// Every non-root node must be reachable from a root component and
	// must not reach back into any root component.
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(10)
		roots := 1 + rng.Intn(n)
		g := RandomRootedSkeleton(n, roots, rng)
		rootSets := RootComponents(g)
		inRoot := NewNodeSet(n)
		for _, rs := range rootSets {
			inRoot.UnionWith(rs)
		}
		for v := 0; v < n; v++ {
			if inRoot.Has(v) {
				continue
			}
			back := Reachable(g, v)
			if back.Intersects(inRoot) {
				t.Fatalf("downstream p%d reaches back into a root component", v+1)
			}
		}
	}
}
