package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNodeSetBasics(t *testing.T) {
	s := NewNodeSet(10)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	s.Add(3)
	s.Add(7)
	s.Add(3)
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if !s.Has(3) || !s.Has(7) || s.Has(4) {
		t.Fatal("membership wrong")
	}
	s.Remove(3)
	if s.Has(3) {
		t.Fatal("Remove failed")
	}
	s.Remove(3) // removing absent is a no-op
	if got := s.Len(); got != 1 {
		t.Fatalf("Len after removes = %d, want 1", got)
	}
}

func TestNodeSetGrowsBeyondUniverse(t *testing.T) {
	s := NewNodeSet(4)
	s.Add(100)
	if !s.Has(100) {
		t.Fatal("set did not grow")
	}
	if s.Has(99) {
		t.Fatal("spurious member after grow")
	}
}

func TestNodeSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	s := NewNodeSet(4)
	s.Add(-1)
}

func TestNodeSetOf(t *testing.T) {
	s := NodeSetOf(5, 1, 5, 9)
	if got := s.Elems(); len(got) != 3 || got[0] != 1 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("Elems = %v, want [1 5 9]", got)
	}
}

func TestFullNodeSet(t *testing.T) {
	s := FullNodeSet(70) // spans two words
	if s.Len() != 70 {
		t.Fatalf("Len = %d, want 70", s.Len())
	}
	for i := 0; i < 70; i++ {
		if !s.Has(i) {
			t.Fatalf("missing %d", i)
		}
	}
	if s.Has(70) {
		t.Fatal("unexpected member 70")
	}
}

func TestNodeSetSetOps(t *testing.T) {
	a := NodeSetOf(1, 2, 3)
	b := NodeSetOf(3, 4)
	if got := a.Union(b).Elems(); len(got) != 4 {
		t.Fatalf("union = %v", got)
	}
	if got := a.Intersect(b).Elems(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("intersect = %v", got)
	}
	if got := a.Subtract(b).Elems(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("subtract = %v", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects false")
	}
	if a.Intersects(NodeSetOf(9)) {
		t.Fatal("Intersects true for disjoint")
	}
}

func TestNodeSetSubsetAndEqualAcrossSizes(t *testing.T) {
	small := NodeSetOf(1, 2)
	big := NewNodeSet(200)
	big.Add(1)
	big.Add(2)
	if !small.Equal(big) || !big.Equal(small) {
		t.Fatal("Equal should ignore universe size")
	}
	if !small.SubsetOf(big) || !big.SubsetOf(small) {
		t.Fatal("SubsetOf should ignore universe size")
	}
	big.Add(150)
	if small.Equal(big) {
		t.Fatal("Equal after high-bit add")
	}
	if !small.SubsetOf(big) {
		t.Fatal("small should still be subset")
	}
	if big.SubsetOf(small) {
		t.Fatal("big is not subset of small")
	}
}

func TestNodeSetCloneIndependence(t *testing.T) {
	a := NodeSetOf(1, 2)
	b := a.Clone()
	b.Add(9)
	if a.Has(9) {
		t.Fatal("clone aliases original")
	}
}

func TestNodeSetMin(t *testing.T) {
	if m := NodeSetOf(9, 70, 3).Min(); m != 3 {
		t.Fatalf("Min = %d, want 3", m)
	}
	empty := NewNodeSet(8)
	if m := empty.Min(); m != -1 {
		t.Fatalf("Min of empty = %d, want -1", m)
	}
}

func TestNodeSetString(t *testing.T) {
	if got := NodeSetOf(0, 2).String(); got != "{p1, p3}" {
		t.Fatalf("String = %q", got)
	}
	if got := NewNodeSet(3).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestSortNodeSets(t *testing.T) {
	sets := []NodeSet{NodeSetOf(5), NodeSetOf(1, 9), NodeSetOf(3)}
	SortNodeSets(sets)
	if sets[0].Min() != 1 || sets[1].Min() != 3 || sets[2].Min() != 5 {
		t.Fatalf("sort order wrong: %v", sets)
	}
}

// randomSet draws a random subset of 0..119 (crosses word boundaries).
func randomSet(rng *rand.Rand) NodeSet {
	s := NewNodeSet(120)
	for i := 0; i < 120; i++ {
		if rng.Intn(2) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestNodeSetPropertyDeMorgan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	universe := FullNodeSet(120)
	for trial := 0; trial < 200; trial++ {
		a, b := randomSet(rng), randomSet(rng)
		// universe \ (a ∪ b) == (universe \ a) ∩ (universe \ b)
		left := universe.Subtract(a.Union(b))
		right := universe.Subtract(a).Intersect(universe.Subtract(b))
		if !left.Equal(right) {
			t.Fatalf("De Morgan violated: a=%v b=%v", a, b)
		}
	}
}

func TestNodeSetPropertyLenUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		a, b := randomSet(rng), randomSet(rng)
		if a.Union(b).Len()+a.Intersect(b).Len() != a.Len()+b.Len() {
			t.Fatal("inclusion-exclusion violated")
		}
	}
}

func TestNodeSetQuickElemsRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		s := NewNodeSet(256)
		seen := map[int]bool{}
		for _, v := range raw {
			s.Add(int(v))
			seen[int(v)] = true
		}
		elems := s.Elems()
		if len(elems) != len(seen) {
			return false
		}
		for i, v := range elems {
			if !seen[v] {
				return false
			}
			if i > 0 && elems[i-1] >= v {
				return false // must be strictly ascending
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSetForEachOrder(t *testing.T) {
	s := NodeSetOf(64, 0, 63, 65, 1)
	var got []int
	s.ForEach(func(v int) { got = append(got, v) })
	want := []int{0, 1, 63, 64, 65}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v, want %v", got, want)
		}
	}
}
