// Package graph provides the directed-graph substrate used throughout the
// stable-skeleton reproduction: node sets, plain and round-labeled digraphs,
// strongly connected components, root components, condensations,
// reachability, and DOT/ASCII rendering.
//
// Nodes are dense integers 0..n-1 and stand for the processes p1..pn of the
// paper (node i is process p(i+1)). All structures are sized for a fixed
// universe of n nodes, which keeps hot paths allocation-free: the simulator
// rebuilds approximation graphs every round for every process.
package graph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// NodeSet is a set of nodes over a fixed universe, backed by a bitset.
// The zero value is an empty set over an empty universe; use NewNodeSet to
// size it. Operations whose receivers or arguments have different universe
// sizes treat missing high bits as absent nodes.
type NodeSet struct {
	words []uint64
}

const wordBits = 64

// NewNodeSet returns an empty set able to hold nodes 0..n-1.
func NewNodeSet(n int) NodeSet {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative universe size %d", n))
	}
	return NodeSet{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NodeSetOf returns a set containing exactly the given nodes, sized to fit.
func NodeSetOf(nodes ...int) NodeSet {
	maxNode := -1
	for _, v := range nodes {
		if v > maxNode {
			maxNode = v
		}
	}
	s := NewNodeSet(maxNode + 1)
	for _, v := range nodes {
		s.Add(v)
	}
	return s
}

// FullNodeSet returns the set {0, ..., n-1}.
func FullNodeSet(n int) NodeSet {
	s := NewNodeSet(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

func (s *NodeSet) grow(v int) {
	need := v/wordBits + 1
	for len(s.words) < need {
		s.words = append(s.words, 0)
	}
}

// Add inserts v into the set, growing the universe if needed.
func (s *NodeSet) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("graph: negative node %d", v))
	}
	s.grow(v)
	s.words[v/wordBits] |= 1 << (v % wordBits)
}

// Remove deletes v from the set. Removing an absent node is a no-op.
func (s *NodeSet) Remove(v int) {
	if v < 0 || v/wordBits >= len(s.words) {
		return
	}
	s.words[v/wordBits] &^= 1 << (v % wordBits)
}

// Has reports whether v is in the set.
func (s NodeSet) Has(v int) bool {
	if v < 0 || v/wordBits >= len(s.words) {
		return false
	}
	return s.words[v/wordBits]&(1<<(v%wordBits)) != 0
}

// Len returns the number of nodes in the set.
func (s NodeSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s NodeSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s NodeSet) Clone() NodeSet {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return NodeSet{words: w}
}

// CopyFrom overwrites s with the contents of t, reusing s's storage when
// it is large enough. Hot paths use this instead of Clone to stay
// allocation-free in steady state.
func (s *NodeSet) CopyFrom(t NodeSet) {
	if cap(s.words) < len(t.words) {
		s.words = make([]uint64, len(t.words))
	}
	s.words = s.words[:len(t.words)]
	copy(s.words, t.words)
}

// Clear removes all elements, keeping the universe size.
func (s *NodeSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith adds every element of t to s.
func (s *NodeSet) UnionWith(t NodeSet) {
	for len(s.words) < len(t.words) {
		s.words = append(s.words, 0)
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in t.
func (s *NodeSet) IntersectWith(t NodeSet) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// SubtractWith removes every element of t from s.
func (s *NodeSet) SubtractWith(t NodeSet) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &^= t.words[i]
		}
	}
}

// Union returns a new set s ∪ t.
func (s NodeSet) Union(t NodeSet) NodeSet {
	r := s.Clone()
	r.UnionWith(t)
	return r
}

// Intersect returns a new set s ∩ t.
func (s NodeSet) Intersect(t NodeSet) NodeSet {
	r := s.Clone()
	r.IntersectWith(t)
	return r
}

// Subtract returns a new set s \ t.
func (s NodeSet) Subtract(t NodeSet) NodeSet {
	r := s.Clone()
	r.SubtractWith(t)
	return r
}

// Equal reports whether s and t contain the same nodes.
func (s NodeSet) Equal(t NodeSet) bool {
	long, short := s.words, t.words
	if len(long) < len(short) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s NodeSet) SubsetOf(t NodeSet) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t is nonempty.
func (s NodeSet) Intersects(t NodeSet) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every node in ascending order.
func (s NodeSet) ForEach(fn func(v int)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(i*wordBits + b)
			w &^= 1 << b
		}
	}
}

// Elems returns the nodes in ascending order.
func (s NodeSet) Elems() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(v int) { out = append(out, v) })
	return out
}

// Next returns the smallest element >= from, or -1 if there is none.
// Iterating with Next avoids the closure of ForEach and the slice of
// Elems, so traversals can run without allocating.
func (s NodeSet) Next(from int) int {
	if from < 0 {
		from = 0
	}
	i := from / wordBits
	if i >= len(s.words) {
		return -1
	}
	if w := s.words[i] >> (from % wordBits); w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for i++; i < len(s.words); i++ {
		if w := s.words[i]; w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Min returns the smallest node in the set, or -1 if empty.
func (s NodeSet) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// String renders the set as "{p1, p3}" using 1-based process names.
func (s NodeSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "p%d", v+1)
	})
	b.WriteByte('}')
	return b.String()
}

// SortNodeSets orders a slice of sets by their smallest element; useful for
// deterministic output of component lists.
func SortNodeSets(sets []NodeSet) {
	sort.Slice(sets, func(i, j int) bool { return sets[i].Min() < sets[j].Min() })
}
