package graph

import (
	"math/rand"
	"testing"
)

func chainGraph(n int) *Digraph {
	g := NewDigraph(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestReachable(t *testing.T) {
	g := chainGraph(4)
	if got := Reachable(g, 1); !got.Equal(NodeSetOf(1, 2, 3)) {
		t.Fatalf("Reachable(1) = %v", got)
	}
	if got := Reachable(g, 3); !got.Equal(NodeSetOf(3)) {
		t.Fatalf("Reachable(3) = %v", got)
	}
}

func TestNodesReaching(t *testing.T) {
	g := chainGraph(4)
	if got := NodesReaching(g, 2); !got.Equal(NodeSetOf(0, 1, 2)) {
		t.Fatalf("NodesReaching(2) = %v", got)
	}
	if got := NodesReaching(g, 0); !got.Equal(NodeSetOf(0)) {
		t.Fatalf("NodesReaching(0) = %v", got)
	}
}

func TestReachableMirrorsNodesReachingOnTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 150; trial++ {
		g := RandomDigraph(9, 0.25, rng)
		tr := g.Transpose()
		for v := 0; v < 9; v++ {
			if !Reachable(g, v).Equal(NodesReaching(tr, v)) {
				t.Fatalf("mismatch at %d in %v", v, g)
			}
		}
	}
}

func TestCanReach(t *testing.T) {
	g := chainGraph(3)
	if !CanReach(g, 0, 2) || CanReach(g, 2, 0) {
		t.Fatal("CanReach wrong")
	}
	if !CanReach(g, 1, 1) {
		t.Fatal("every node reaches itself")
	}
	if CanReach(g, 0, 5) {
		t.Fatal("absent node reached")
	}
}

func TestDistances(t *testing.T) {
	g := chainGraph(4)
	g.AddEdge(0, 2) // shortcut
	d := Distances(g, 0)
	want := []int{0, 1, 1, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Distances = %v, want %v", d, want)
		}
	}
}

func TestDistancesUnreachable(t *testing.T) {
	g := NewDigraph(3)
	g.AddNode(0)
	g.AddNode(1)
	g.AddNode(2)
	g.AddEdge(0, 1)
	d := Distances(g, 0)
	if d[2] != -1 {
		t.Fatalf("unreachable distance = %d, want -1", d[2])
	}
}

func TestDistancesToMatchesForwardOnTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		g := RandomDigraph(8, 0.3, rng)
		tr := g.Transpose()
		for v := 0; v < 8; v++ {
			a := DistancesTo(g, v)
			b := Distances(tr, v)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("DistancesTo mismatch at %d", v)
				}
			}
		}
	}
}

func TestSelfLoopDoesNotChangeDistance(t *testing.T) {
	g := chainGraph(3)
	g.AddSelfLoops()
	d := Distances(g, 0)
	if d[0] != 0 || d[1] != 1 || d[2] != 2 {
		t.Fatalf("Distances = %v", d)
	}
}

func TestShortestPath(t *testing.T) {
	g := chainGraph(5)
	g.AddEdge(0, 3)
	path := ShortestPath(g, 0, 4)
	want := []int{0, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if !IsPath(g, path) {
		t.Fatal("returned path is not a valid path")
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := chainGraph(2)
	p := ShortestPath(g, 1, 1)
	if len(p) != 1 || p[0] != 1 {
		t.Fatalf("path = %v, want [1]", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := chainGraph(3)
	if p := ShortestPath(g, 2, 0); p != nil {
		t.Fatalf("path = %v, want nil", p)
	}
}

func TestShortestPathLengthMatchesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		g := RandomDigraph(9, 0.25, rng)
		for u := 0; u < 9; u++ {
			d := Distances(g, u)
			for v := 0; v < 9; v++ {
				p := ShortestPath(g, u, v)
				if d[v] == -1 {
					if p != nil {
						t.Fatalf("path to unreachable node: %v", p)
					}
					continue
				}
				if len(p)-1 != d[v] {
					t.Fatalf("path len %d, distance %d (u=%d v=%d)", len(p)-1, d[v], u, v)
				}
				if !IsPath(g, p) {
					t.Fatalf("invalid path %v", p)
				}
			}
		}
	}
}

func TestIsPath(t *testing.T) {
	g := chainGraph(4)
	if !IsPath(g, []int{0, 1, 2}) {
		t.Fatal("valid path rejected")
	}
	if IsPath(g, []int{0, 2}) {
		t.Fatal("non-edge accepted")
	}
	if IsPath(g, []int{}) {
		t.Fatal("empty path accepted")
	}
	if IsPath(g, []int{0, 1, 0}) {
		t.Fatal("repeated node accepted (paper: path nodes are distinct)")
	}
	if !IsPath(g, []int{2}) {
		t.Fatal("single node path rejected")
	}
}

func TestSimplePathLengthBound(t *testing.T) {
	// The paper repeatedly uses: a simple path has length at most n-1.
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		g := RandomDigraph(n, 0.5, rng)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if p := ShortestPath(g, u, v); p != nil && len(p)-1 > n-1 {
					t.Fatalf("path longer than n-1: %v", p)
				}
			}
		}
	}
}

func TestReachablePanicsOnAbsent(t *testing.T) {
	g := NewDigraph(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Reachable(g, 0)
}
