package graph

import (
	"math/rand"
	"testing"
)

// Allocation-regression tests for the in-place graph kernels: once their
// scratch is warm, the hot-path operations must not allocate. See
// DESIGN.md §4.

func TestPruneUnreachableToInPlaceAllocs(t *testing.T) {
	// 128 exercises the multi-word path: steady state must stay 0-alloc
	// on both sides of the one-word boundary.
	for _, n := range []int{8, 32, 128} {
		rng := rand.New(rand.NewSource(21))
		g := NewLabeled(n)
		work := NewLabeled(n)
		for i := 0; i < 3*n; i++ {
			g.MergeEdge(rng.Intn(n), rng.Intn(n), 1+rng.Intn(9))
		}
		var s ReachScratch
		work.CopyFrom(g)
		work.PruneUnreachableToInPlace(0, &s) // warm the scratch
		avg := testing.AllocsPerRun(50, func() {
			work.CopyFrom(g)
			work.PruneUnreachableToInPlace(0, &s)
		})
		if avg != 0 {
			t.Errorf("n=%d: %v allocs per prune, want 0", n, avg)
		}
	}
}

func TestStronglyConnectedIntoAllocs(t *testing.T) {
	for _, n := range []int{8, 32, 128} {
		g := NewLabeled(n)
		for v := 0; v < n; v++ {
			g.MergeEdge(v, (v+1)%n, 1) // a directed cycle: strongly connected
		}
		var s ReachScratch
		if !g.StronglyConnectedInto(&s) {
			t.Fatalf("n=%d: cycle not strongly connected", n)
		}
		avg := testing.AllocsPerRun(50, func() {
			if !g.StronglyConnectedInto(&s) {
				t.Fatal("cycle not strongly connected")
			}
		})
		if avg != 0 {
			t.Errorf("n=%d: %v allocs per connectivity check, want 0", n, avg)
		}
	}
}

func TestDigraphIntersectWithAllocs(t *testing.T) {
	for _, n := range []int{32, 128} {
		rng := rand.New(rand.NewSource(22))
		g := RandomDigraph(n, 0.3, rng)
		h := RandomDigraph(n, 0.3, rng)
		work := g.Clone()
		work.IntersectWith(h)
		avg := testing.AllocsPerRun(50, func() {
			// Steady state: work already is g ∩ h, so re-intersecting with h
			// removes nothing; this is exactly the skeleton tracker's
			// post-stabilization regime.
			if work.IntersectWith(h) {
				t.Fatal("stable intersection changed")
			}
		})
		if avg != 0 {
			t.Errorf("n=%d: %v allocs per stable IntersectWith, want 0", n, avg)
		}
	}
}

func TestSCCScratchReuseAllocs(t *testing.T) {
	// With a warm scratch, Tarjan allocates only the component sets (one
	// NodeSet per component: 2 allocs each — header slice + words) and
	// the comps slice itself.
	n := 64
	g := NewDigraph(n)
	for v := 0; v < n; v++ {
		g.AddNode(v)
		g.AddEdge(v, (v+1)%n)
	}
	var s SCCScratch
	comps := s.SCC(g)
	if len(comps) != 1 {
		t.Fatalf("cycle has %d components, want 1", len(comps))
	}
	avg := testing.AllocsPerRun(50, func() {
		if len(s.SCC(g)) != 1 {
			t.Fatal("component count changed")
		}
	})
	// One component: its NodeSet (struct is returned in a slice — the
	// words allocation) plus the comps slice. Allow a small constant,
	// reject anything scaling with n (the pre-scratch version allocated
	// 4+ slices of length n plus n Elems() slices).
	if avg > 4 {
		t.Errorf("%v allocs per SCC with warm scratch, want <= 4", avg)
	}
}

func TestNewDigraphAllocs(t *testing.T) {
	// Arena construction: struct + NodeSet backing + one flat word arena.
	// The bound is width-independent — multi-word universes cost the same
	// three allocations, just with longer slices.
	for _, n := range []int{64, 128, 192} {
		avg := testing.AllocsPerRun(50, func() {
			if NewDigraph(n).N() != n {
				t.Fatal("bad universe")
			}
		})
		if avg > 3 {
			t.Errorf("NewDigraph(%d) costs %v allocs, want <= 3", n, avg)
		}
	}
}

func TestNewLabeledAllocs(t *testing.T) {
	// Labeled construction: struct + set headers + word arena + label
	// matrix, at any width.
	for _, n := range []int{64, 128, 192} {
		avg := testing.AllocsPerRun(50, func() {
			if NewLabeled(n).N() != n {
				t.Fatal("bad universe")
			}
		})
		if avg > 4 {
			t.Errorf("NewLabeled(%d) costs %v allocs, want <= 4", n, avg)
		}
	}
}

func TestLabeledMergePurgeAllocs(t *testing.T) {
	// The per-round rebuild kernels (MergeFrom, PurgeOlderThan, Reset)
	// must allocate nothing at any width once the graphs exist.
	for _, n := range []int{32, 128} {
		rng := rand.New(rand.NewSource(23))
		src := NewLabeled(n)
		for i := 0; i < 4*n; i++ {
			src.MergeEdge(rng.Intn(n), rng.Intn(n), 1+rng.Intn(9))
		}
		dst := NewLabeled(n)
		avg := testing.AllocsPerRun(50, func() {
			dst.Reset()
			dst.MergeFrom(src)
			dst.PurgeOlderThan(5)
		})
		if avg != 0 {
			t.Errorf("n=%d: %v allocs per merge/purge/reset cycle, want 0", n, avg)
		}
	}
}
