package runtime

import (
	"fmt"
	"os"
	"path/filepath"

	"kset/internal/adversary"
	"kset/internal/graph"
	"kset/internal/rounds"
	"kset/internal/runfile"
	"kset/internal/sim"
	"kset/internal/transport"
)

// CrashReplayOpts configures one crash-fault differential replay.
type CrashReplayOpts struct {
	// Kind selects the live transport: "inproc" (default), "tcp", "udp".
	Kind string
	// Nodes groups the processes onto this many mesh nodes (0 = one per
	// process). Silent crash plans require one process per node.
	Nodes int
	// UDP configures the datagram mesh; the Meter field is owned by
	// CrashReplay and must be nil.
	UDP transport.UDPOpts
	// TCP tunes the TCP mesh; with a silent crash plan its Stall knobs
	// must enable chaos mode or the run will wedge on the dead peer.
	TCP transport.TCPOpts
	// Loss adds i.i.d. frame loss on the UDP mesh (see RunnerOpts.Loss),
	// composing real loss under the injected crashes.
	Loss     float64
	LossSeed int64
	// Stall optionally delays surviving senders (see StallPlan).
	Stall *StallPlan
	// Codec encodes the algorithm's messages; nil means WireCodec.
	Codec Codec
	// ArtifactDir, when non-empty, receives a .ksr runfile of the
	// realized graphs whenever the replay diverges from the live run, so
	// the divergence can be re-executed standalone.
	ArtifactDir string
}

// CrashReplayReport is the evidence one crash replay produced.
type CrashReplayReport struct {
	// Live is the outcome of the chaos run over the real transport.
	Live *sim.Outcome
	// Replay is the lockstep simulator's outcome on the realized
	// heard-sets — verified identical to Live for every surviving
	// process and every pre-crash decision.
	Replay *sim.Outcome
	// Realized holds the per-round heard-set graphs the survivors
	// actually gathered, self-loops restored for the dead (the paper's
	// internally-correct crashed node).
	Realized []*graph.Digraph
	// LostLinks counts scheduled deliveries the wire lost beyond the
	// crash cut (0 on reliable transports).
	LostLinks int
	// Crashed is the number of processes the plan killed.
	Crashed int
	// Distinct is the number of distinct values decided in the live run
	// (pre-crash decisions of the dead included: a decision is
	// irrevocable even when its process is not).
	Distinct int
	// KBound reports Distinct <= Replay.MinK — the paper's agreement
	// bound evaluated against the realized skeleton, in which a crashed
	// process is an isolated self-looped node and the bound degrades
	// exactly as Theorem 1 prescribes.
	KBound bool
	// Artifact is the path of the divergence runfile, when one was
	// written.
	Artifact string
}

// CrashReplay is the differential harness for crash faults, the
// crash-layer analogue of LossReplay: it proves that a distributed run
// with real process deaths — goroutines gone mid-protocol, streams cut,
// rounds closed by deadline — is still bit-for-bit an execution of the
// paper's round model on the communication pattern the crashes carved
// out.
//
//  1. Run spec live under plan over a metered transport: processes die
//     at their planned rounds and sites, and the meter records exactly
//     which deliveries the survivors gathered.
//  2. Check containment: realized heard-sets never exceed the schedule
//     restricted by the crash cut — a dead process sends nothing it
//     was not entitled to, and nobody hears the dead.
//  3. Replay the realized graphs (self-loops restored) through the
//     lockstep simulator. Every surviving process's decision bit,
//     value, and round must match the live run exactly; a crashed
//     process that decided before dying must match too (decisions are
//     irrevocable). Crashed-undecided processes are exempt: their
//     replay twins outlive them.
//  4. Evaluate the paper's agreement bound on the realized run:
//     distinct live decisions against the replay's MinK.
//
// On any divergence the realized graphs are written to ArtifactDir as a
// .ksr runfile (when set) and the error names the path.
func CrashReplay(spec sim.Spec, plan *CrashPlan, opts CrashReplayOpts) (*CrashReplayReport, error) {
	if spec.Adversary == nil {
		return nil, fmt.Errorf("runtime: CrashReplay with nil adversary")
	}
	if opts.UDP.Meter != nil {
		return nil, fmt.Errorf("runtime: CrashReplay owns the heard meter; UDP.Meter must be nil")
	}
	n := spec.Adversary.N()
	if err := plan.validate(n); err != nil {
		return nil, err
	}
	if plan.Crashes() >= n {
		return nil, fmt.Errorf("runtime: crash plan kills all %d processes; need a survivor to meter the run", n)
	}
	maxRounds := spec.MaxRounds
	if maxRounds == 0 {
		if s, ok := spec.Adversary.(rounds.Stabilizer); ok {
			maxRounds = s.StabilizationRound() + 2*n + 5
		} else {
			maxRounds = 12 * n
		}
	}
	sched := adversary.MaterializeRun(spec.Adversary, maxRounds)
	spec.Adversary = sched
	spec.MaxRounds = maxRounds

	meter := transport.NewHeardMeter(n)
	live := spec
	live.Runner = NewRunner(RunnerOpts{
		Kind:     opts.Kind,
		Nodes:    opts.Nodes,
		UDP:      opts.UDP,
		TCPOpts:  opts.TCP,
		Loss:     opts.Loss,
		LossSeed: opts.LossSeed,
		Codec:    opts.Codec,
		Crash:    plan,
		Stall:    opts.Stall,
		Meter:    meter,
	})
	liveOut, err := sim.Execute(live)
	if err != nil {
		return nil, fmt.Errorf("runtime: CrashReplay live execution: %w", err)
	}
	realized := meter.Graphs()
	if len(realized) != liveOut.Rounds {
		return nil, fmt.Errorf("runtime: meter recorded %d rounds, live run executed %d", len(realized), liveOut.Rounds)
	}
	if liveOut.Rounds < 1 {
		return nil, fmt.Errorf("runtime: live run executed no rounds")
	}

	// Containment under the crash cut. A receiver that is dead (or dying
	// this round — a crashing process never gathers its crash round)
	// records nothing, so only live gatherers are audited for loss.
	lost := 0
	for r := 1; r <= liveOut.Rounds; r++ {
		g, want := realized[r-1], sched.Graph(r)
		for q := 0; q < n; q++ {
			gathering := plan == nil || plan.Round[q] == 0 || r < plan.Round[q]
			for p := 0; p < n; p++ {
				if !gathering {
					if g.HasEdge(p, q) {
						return nil, fmt.Errorf("runtime: round %d: dead p%d recorded a delivery from p%d", r, q+1, p+1)
					}
					continue
				}
				s := (want.HasEdge(p, q) || p == q) && plan.Sends(r, p, q)
				switch got := g.HasEdge(p, q); {
				case got && !s:
					return nil, fmt.Errorf("runtime: round %d: wire delivered p%d->p%d through a cut link", r, p+1, q+1)
				case s && !got:
					lost++
				}
			}
		}
	}

	// Restore the dead processes' self-loops: a crashed node stays
	// internally correct in the paper's model (it hears itself), it just
	// stopped recording. Every other edge of the dead stays absent, so
	// the replay twin of a dead process runs on in isolation.
	for _, g := range realized {
		g.AddSelfLoops()
	}

	replay := spec
	replay.Runner = nil
	replay.Concurrent = false
	replay.Adversary = adversary.NewRun(realized[:liveOut.Rounds-1], realized[liveOut.Rounds-1])
	replay.MaxRounds = liveOut.Rounds
	replayOut, err := sim.Execute(replay)
	if err != nil {
		return nil, fmt.Errorf("runtime: CrashReplay reference execution: %w", err)
	}

	rep := &CrashReplayReport{
		Live:     liveOut,
		Replay:   replayOut,
		Realized: realized,
		Crashed:  plan.Crashes(),
	}
	diverge := func(format string, args ...any) error {
		err := fmt.Errorf(format, args...)
		if opts.ArtifactDir != "" {
			if path, werr := writeDivergence(opts.ArtifactDir, realized, liveOut.Rounds); werr == nil {
				rep.Artifact = path
				err = fmt.Errorf("%w (realized graphs: %s)", err, path)
			}
		}
		return err
	}
	if replayOut.Rounds != liveOut.Rounds {
		return rep, diverge("runtime: replay executed %d rounds, live %d", replayOut.Rounds, liveOut.Rounds)
	}
	distinct := map[int64]bool{}
	for i := 0; i < n; i++ {
		crashed := plan != nil && plan.Round[i] != 0
		if crashed && !liveOut.Decided[i] {
			continue // died undecided: its replay twin outlives it and may decide
		}
		if liveOut.Decided[i] != replayOut.Decided[i] {
			return rep, diverge("runtime: p%d decided: live %v, replay %v", i+1, liveOut.Decided[i], replayOut.Decided[i])
		}
		if !liveOut.Decided[i] {
			continue
		}
		if liveOut.Decisions[i] != replayOut.Decisions[i] {
			return rep, diverge("runtime: p%d decision: live %d, replay %d", i+1, liveOut.Decisions[i], replayOut.Decisions[i])
		}
		if liveOut.DecideRounds[i] != replayOut.DecideRounds[i] {
			return rep, diverge("runtime: p%d decision round: live %d, replay %d", i+1, liveOut.DecideRounds[i], replayOut.DecideRounds[i])
		}
		distinct[liveOut.Decisions[i]] = true
	}
	rep.Distinct = len(distinct)
	rep.KBound = len(distinct) <= replayOut.MinK
	return rep, nil
}

// writeDivergence persists the realized graphs as a replayable .ksr
// runfile named by its content length, for standalone re-execution of a
// diverging run.
func writeDivergence(dir string, realized []*graph.Digraph, rounds int) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	run := adversary.NewRun(realized[:rounds-1], realized[rounds-1])
	path := filepath.Join(dir, fmt.Sprintf("crash-divergence-r%d.ksr", rounds))
	if err := runfile.WriteFile(path, run); err != nil {
		return "", err
	}
	return path, nil
}
