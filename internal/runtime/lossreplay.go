package runtime

import (
	"fmt"

	"kset/internal/adversary"
	"kset/internal/graph"
	"kset/internal/rounds"
	"kset/internal/sim"
	"kset/internal/transport"
)

// LossReplayOpts configures one loss-tolerant differential replay.
type LossReplayOpts struct {
	// Nodes groups the processes onto this many UDP mesh nodes
	// (0 = one per process, the fully distributed shape).
	Nodes int
	// UDP configures the datagram mesh (deadline, grace, datagram size,
	// extra DropDatagram hooks). The Meter field is owned by LossReplay
	// and must be nil.
	UDP transport.UDPOpts
	// Loss injects i.i.d. frame loss with this probability on top of
	// whatever the wire really loses; see RunnerOpts.Loss.
	Loss     float64
	LossSeed int64
	// Codec encodes the algorithm's messages; nil means WireCodec.
	Codec Codec
}

// LossReplayReport is the evidence one loss-tolerant replay produced.
type LossReplayReport struct {
	// Live is the outcome of the run over the real UDP mesh.
	Live *sim.Outcome
	// Replay is the lockstep simulator's outcome on the realized
	// heard-sets — by the verification in LossReplay, identical to Live
	// in every decision-relevant field.
	Replay *sim.Outcome
	// Realized holds the per-round heard-set graphs the wire actually
	// delivered, as recorded by the transport's meter.
	Realized []*graph.Digraph
	// LostLinks counts scheduled deliveries the wire lost across the
	// whole run (0 on a quiet loopback with no injected loss).
	LostLinks int
	// Distinct is the number of distinct values decided in the live run.
	Distinct int
	// KBound reports Distinct <= Replay.MinK — the paper's agreement
	// bound evaluated against the realized communication pattern. It is
	// a report field rather than an error because the bound is a theorem
	// only for the repaired decision guard: the E10 witness deliberately
	// violates it under the published guard, and the harness's job there
	// is to detect the violation, not to refuse to measure it.
	KBound bool
}

// LossReplay is the differential harness for the best-effort transport,
// where Diff's premise — the realized run equals the scheduled run —
// does not hold: datagrams may be lost, so the heard-sets the processes
// actually observe are known only after the fact. The paper's model has
// no difficulty with that (a lossy round is just a sparser round graph),
// and this harness turns the model's view into a checkable statement:
//
//  1. Run spec live over a metered UDP mesh; the meter records, per
//     round, exactly which sender→receiver deliveries happened.
//  2. Check containment: realized heard-sets never exceed the schedule
//     (plus unconditional self-delivery) — loss only shrinks rounds.
//  3. Re-run the lockstep simulator against the realized graphs as the
//     adversary. Every per-process decision bit, decision round, and
//     the round count must match the live run exactly: whatever the
//     network did, the distributed execution behaved as the round model
//     on the realized communication pattern.
//  4. Evaluate the paper's agreement bound on the realized run — the
//     number of distinct live decisions against the replay's MinK, the
//     tightest k the theorems grant for that communication pattern —
//     and report it (LossReplayReport.KBound).
//
// The returned report carries both outcomes and the realized graphs so
// callers (tests, the nightly soak) can assert more on top.
func LossReplay(spec sim.Spec, opts LossReplayOpts) (*LossReplayReport, error) {
	if spec.Adversary == nil {
		return nil, fmt.Errorf("runtime: LossReplay with nil adversary")
	}
	if opts.UDP.Meter != nil {
		return nil, fmt.Errorf("runtime: LossReplay owns the heard meter; UDP.Meter must be nil")
	}
	n := spec.Adversary.N()
	maxRounds := spec.MaxRounds
	if maxRounds == 0 {
		if s, ok := spec.Adversary.(rounds.Stabilizer); ok {
			maxRounds = s.StabilizationRound() + 2*n + 5
		} else {
			maxRounds = 12 * n
		}
	}
	sched := adversary.MaterializeRun(spec.Adversary, maxRounds)
	spec.Adversary = sched
	spec.MaxRounds = maxRounds

	meter := transport.NewHeardMeter(n)
	u := opts.UDP
	u.Meter = meter
	live := spec
	live.Runner = NewRunner(RunnerOpts{
		Kind:     "udp",
		Nodes:    opts.Nodes,
		UDP:      u,
		Loss:     opts.Loss,
		LossSeed: opts.LossSeed,
		Codec:    opts.Codec,
	})
	liveOut, err := sim.Execute(live)
	if err != nil {
		return nil, fmt.Errorf("runtime: LossReplay live execution: %w", err)
	}
	realized := meter.Graphs()
	if len(realized) != liveOut.Rounds {
		return nil, fmt.Errorf("runtime: meter recorded %d rounds, live run executed %d", len(realized), liveOut.Rounds)
	}
	if liveOut.Rounds < 1 {
		return nil, fmt.Errorf("runtime: live run executed no rounds")
	}

	// Containment: the wire can only lose scheduled deliveries, never
	// invent them; self-delivery is unconditional in the model and on
	// every transport.
	lost := 0
	for r := 1; r <= liveOut.Rounds; r++ {
		g, want := realized[r-1], sched.Graph(r)
		for q := 0; q < n; q++ {
			for p := 0; p < n; p++ {
				s := want.HasEdge(p, q) || p == q
				switch got := g.HasEdge(p, q); {
				case got && !s:
					return nil, fmt.Errorf("runtime: round %d: wire delivered p%d->p%d through a dropped link", r, p+1, q+1)
				case s && !got:
					lost++
				}
			}
		}
		if !g.HasEdge(0, 0) { // meter graphs carry self-loops by construction
			return nil, fmt.Errorf("runtime: round %d: realized graph lost a self-loop", r)
		}
	}

	// Replay the realized communication pattern on the lockstep
	// simulator. The stable graph past the recorded prefix is the last
	// realized round — it is never consulted (MaxRounds pins the run to
	// the live length) but NewRun requires one.
	replay := spec
	replay.Runner = nil
	replay.Concurrent = false
	replay.Adversary = adversary.NewRun(realized[:liveOut.Rounds-1], realized[liveOut.Rounds-1])
	replay.MaxRounds = liveOut.Rounds
	replayOut, err := sim.Execute(replay)
	if err != nil {
		return nil, fmt.Errorf("runtime: LossReplay reference execution: %w", err)
	}

	if replayOut.Rounds != liveOut.Rounds {
		return nil, fmt.Errorf("runtime: replay executed %d rounds, live %d", replayOut.Rounds, liveOut.Rounds)
	}
	distinct := map[int64]bool{}
	for i := 0; i < n; i++ {
		if liveOut.Decided[i] != replayOut.Decided[i] {
			return nil, fmt.Errorf("runtime: p%d decided: live %v, replay %v", i+1, liveOut.Decided[i], replayOut.Decided[i])
		}
		if !liveOut.Decided[i] {
			continue
		}
		if liveOut.Decisions[i] != replayOut.Decisions[i] {
			return nil, fmt.Errorf("runtime: p%d decision: live %d, replay %d", i+1, liveOut.Decisions[i], replayOut.Decisions[i])
		}
		if liveOut.DecideRounds[i] != replayOut.DecideRounds[i] {
			return nil, fmt.Errorf("runtime: p%d decision round: live %d, replay %d", i+1, liveOut.DecideRounds[i], replayOut.DecideRounds[i])
		}
		distinct[liveOut.Decisions[i]] = true
	}
	return &LossReplayReport{
		Live:      liveOut,
		Replay:    replayOut,
		Realized:  realized,
		LostLinks: lost,
		Distinct:  len(distinct),
		KBound:    len(distinct) <= replayOut.MinK,
	}, nil
}
