package runtime

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kset/internal/adversary"
	"kset/internal/graph"
	"kset/internal/rounds"
	"kset/internal/sim"
	"kset/internal/transport"
)

// countingAlg is a minimal algorithm for control-plane tests: it
// broadcasts (self, round) as raw bytes and counts what it hears.
type countingAlg struct {
	self, n int
	rounds  int
	heard   int
}

func (a *countingAlg) Init(self, n int) { a.self, a.n = self, n }
func (a *countingAlg) Send(r int) any   { return []byte{byte(a.self), byte(r)} }
func (a *countingAlg) Transition(r int, recv []any) {
	a.rounds = r
	for _, m := range recv {
		if m != nil {
			a.heard++
		}
	}
}

func TestRunExecutesMaxRoundsAndNotifiesObserver(t *testing.T) {
	n, maxRounds := 4, 7
	var observed []int
	cfg := rounds.Config{
		Adversary:  adversary.Complete(n),
		NewProcess: func(self int) rounds.Algorithm { return &countingAlg{} },
		MaxRounds:  maxRounds,
		Observer: rounds.ObserverFunc(func(r int, g *graph.Digraph, procs []rounds.Algorithm) {
			observed = append(observed, r)
			for i, p := range procs {
				if got := p.(*countingAlg).rounds; got != r {
					t.Errorf("observer at round %d: p%d has only transitioned %d rounds", r, i+1, got)
				}
			}
		}),
	}
	res, err := Run(cfg, transport.NewInProc(n, nil), RawCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != maxRounds || res.Stopped {
		t.Fatalf("Rounds = %d, Stopped = %v; want %d, false", res.Rounds, res.Stopped, maxRounds)
	}
	if len(observed) != maxRounds {
		t.Fatalf("observer saw rounds %v, want 1..%d", observed, maxRounds)
	}
	for i, r := range observed {
		if r != i+1 {
			t.Fatalf("observer saw rounds %v out of order", observed)
		}
	}
	for i, p := range res.Procs {
		if got := p.(*countingAlg).heard; got != n*maxRounds {
			t.Fatalf("p%d heard %d messages over a complete graph, want %d", i+1, got, n*maxRounds)
		}
	}
}

func TestRunStopWhen(t *testing.T) {
	n := 3
	cfg := rounds.Config{
		Adversary:  adversary.Complete(n),
		NewProcess: func(self int) rounds.Algorithm { return &countingAlg{} },
		MaxRounds:  50,
		StopWhen:   func(r int, procs []rounds.Algorithm) bool { return r == 4 },
	}
	res, err := Run(cfg, transport.NewInProc(n, nil), RawCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 || !res.Stopped {
		t.Fatalf("Rounds = %d, Stopped = %v; want 4, true", res.Rounds, res.Stopped)
	}
}

// badGraphAdversary violates the model (missing self-loop) from a given
// round on; Run must surface the same structural error the sequential
// executor reports.
type badGraphAdversary struct {
	n    int
	from int
}

func (a badGraphAdversary) N() int { return a.n }
func (a badGraphAdversary) Graph(r int) *graph.Digraph {
	g := graph.CompleteDigraph(a.n)
	if r >= a.from {
		g.RemoveEdge(0, 0)
	}
	return g
}

func TestRunRejectsInvalidGraph(t *testing.T) {
	n := 3
	cfg := rounds.Config{
		Adversary:  badGraphAdversary{n: n, from: 3},
		NewProcess: func(self int) rounds.Algorithm { return &countingAlg{} },
		MaxRounds:  10,
	}
	_, err := Run(cfg, transport.NewInProc(n, nil), RawCodec{})
	if err == nil || !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("Run with a self-loop-free round graph returned %v, want structural error", err)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(rounds.Config{}, transport.NewInProc(1, nil), RawCodec{}); err == nil {
		t.Fatal("Run accepted an empty Config")
	}
	cfg := rounds.Config{
		Adversary:  adversary.Complete(3),
		NewProcess: func(self int) rounds.Algorithm { return &countingAlg{} },
		MaxRounds:  5,
	}
	if _, err := Run(cfg, transport.NewInProc(2, nil), RawCodec{}); err == nil {
		t.Fatal("Run accepted a transport sized for the wrong n")
	}
}

// TestRunnerMatchesSequentialExecutor is the narrow end of the
// differential harness: the full sim pipeline over the runtime equals
// the lockstep executor on a nontrivial schedule, for both transports.
func TestRunnerMatchesSequentialExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	run := adversary.RandomSources(8, 2, 6, 0.3, rng)
	for _, tcp := range []bool{false, true} {
		spec := sim.Spec{Adversary: run, Proposals: sim.SeqProposals(8)}
		if err := Diff(spec, DiffOpts{TCP: tcp}); err != nil {
			t.Fatalf("tcp=%v: %v", tcp, err)
		}
	}
}

func TestWireCodecRejectsForeignMessage(t *testing.T) {
	if _, err := (WireCodec{}).Encode(nil, "not a message"); err == nil {
		t.Fatal("WireCodec encoded a string")
	}
	dec := WireCodec{}.NewDecoder(2)
	if _, err := dec.Decode(5, nil); err == nil {
		t.Fatal("decoder accepted out-of-range sender")
	}
	if _, err := dec.Decode(0, []byte{0xFF}); err == nil {
		t.Fatal("decoder accepted garbage payload")
	}
}

// TestRunnerEncodesRealWireBytes pins that the runtime's data plane
// really is the internal/wire encoding: a metered runtime run must
// account the same bytes the simulator's meter sees.
func TestRunnerEncodesRealWireBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	run := adversary.RandomSources(6, 2, 4, 0.3, rng)
	spec := sim.Spec{Adversary: run, Proposals: sim.SeqProposals(6), MeterMessages: true}
	if err := Diff(spec, DiffOpts{}); err != nil {
		t.Fatal(err)
	}
}

func ExampleNewRunner() {
	// Replay the paper's Figure 1 run over real TCP sockets and check
	// the decisions against the lockstep simulator.
	spec := sim.Spec{
		Adversary: adversary.Figure1(),
		Proposals: sim.SeqProposals(6),
		Runner:    NewRunner(RunnerOpts{TCP: true}),
	}
	out, err := sim.Execute(spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("decisions:", out.DistinctDecisions())
	// Output:
	// decisions: [1 2]
}
