package runtime

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"kset/internal/adversary"
	"kset/internal/algo"
	"kset/internal/approx"
	"kset/internal/sim"
)

// approxSuite is the differential corpus for the second algorithm
// family: path and cycle graphs, stabilizing and adversarial schedules,
// one metered spec so the wire-byte accounting is compared too.
func approxSuite(n int, seed int64) []NamedSchedule {
	rng := rand.New(rand.NewSource(seed))
	if n < 4 {
		n = 4
	}
	props := make([]int64, n)
	for i := range props {
		props[i] = int64(rng.Intn(n + 1))
	}
	cycProps := make([]int64, n)
	v := n + 2
	for i := range cycProps {
		// Narrow arc wrapping vertex 0 — the universal-cover lifting path.
		cycProps[i] = int64((v - 1 + rng.Intn(3)) % v)
	}
	suite := []NamedSchedule{
		{"A1-path-sources", sim.Spec{
			Algorithm: algo.Approx,
			Adversary: adversary.RandomSources(n, 1, 1+rng.Intn(n), 0.3, rng),
			Proposals: props,
		}},
		{"A2-path-eventual", sim.Spec{
			Algorithm: algo.Approx,
			Adversary: adversary.Eventual(adversary.Complete(n), n/2),
			Proposals: props,
		}},
		{"A3-cycle-narrow", sim.Spec{
			Algorithm: algo.Approx,
			Adversary: adversary.RandomSources(n, 1, rng.Intn(n), 0.25, rng),
			Proposals: cycProps,
			Params:    approx.Options{Graph: approx.Graph{Shape: approx.Cycle, V: v}},
		}},
		{"A4-path-metered", sim.Spec{
			Algorithm:     algo.Approx,
			Adversary:     adversary.RandomSources(n, 1, n/2, 0.3, rng),
			Proposals:     props,
			MeterMessages: true,
		}},
		{"A5-path-nonstab", sim.Spec{
			Algorithm: algo.Approx,
			Adversary: adversary.NewChurn(adversary.Complete(n).Base(), 0.2, rng.Int63()),
			Proposals: props,
		}},
	}
	return suite
}

// TestApproxDifferentialInProc replays the approx corpus on the
// distributed runtime over the in-process transport and requires
// outcome-for-outcome equality with the lockstep simulator — the same
// bit-exactness contract the kset E-suite battery enforces, now through
// the registry-resolved codec instead of the historical hardwired one.
func TestApproxDifferentialInProc(t *testing.T) {
	ns := []int{4, 7}
	if testing.Short() {
		ns = []int{4}
	}
	for _, n := range ns {
		for _, sched := range approxSuite(n, int64(300+n)) {
			if err := Diff(sched.Spec, DiffOpts{}); err != nil {
				t.Errorf("n=%d %s: %v", n, sched.Name, err)
			}
		}
	}
}

// TestApproxDifferentialTCP replays the approx corpus over real TCP
// loopback sockets, fully distributed and with processes coalesced onto
// 2 mesh nodes, plus jittered link delays on the distributed lane.
func TestApproxDifferentialTCP(t *testing.T) {
	n := 5
	for _, sched := range approxSuite(n, 311) {
		for _, opts := range []DiffOpts{
			{Kind: "tcp", Jitter: 150 * time.Microsecond, JitterSeed: 9},
			{Kind: "tcp", Nodes: 2},
		} {
			if err := Diff(sched.Spec, opts); err != nil {
				t.Errorf("%s (nodes=%d): %v", sched.Name, opts.Nodes, err)
			}
		}
	}
}

// TestApproxDifferentialUDP replays a small approx subset over the
// best-effort UDP transport with the service's loopback timing, where a
// quiet loopback is effectively lossless and the comparison stays
// bit-exact. Kept small: each UDP round waits out its grace window.
func TestApproxDifferentialUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("UDP differential lane exceeds the short-test budget")
	}
	suite := approxSuite(4, 331)
	for _, sched := range suite[:2] {
		if err := Diff(sched.Spec, DiffOpts{Kind: "udp"}); err != nil {
			t.Errorf("%s: %v", sched.Name, err)
		}
	}
}

// TestApproxDifferentialNightly is the long-budget approx battery the
// nightly workflow runs (KSET_NIGHTLY=1): more sizes, several seeds,
// all three transports.
func TestApproxDifferentialNightly(t *testing.T) {
	if os.Getenv("KSET_NIGHTLY") == "" {
		t.Skip("nightly approx differential battery; set KSET_NIGHTLY=1 to run")
	}
	for _, n := range []int{4, 6, 9, 12} {
		for seed := int64(1); seed <= 3; seed++ {
			for _, sched := range approxSuite(n, seed) {
				configs := []DiffOpts{
					{},
					{Jitter: 150 * time.Microsecond, JitterSeed: seed},
					{Kind: "tcp", JitterSeed: seed},
					{Kind: "tcp", Nodes: 3, JitterSeed: seed},
				}
				if n <= 6 {
					configs = append(configs, DiffOpts{Kind: "udp"})
				}
				for i, opts := range configs {
					if err := Diff(sched.Spec, opts); err != nil {
						t.Errorf("n=%d seed=%d %s (config %d): %v", n, seed, sched.Name, i, err)
					}
				}
			}
		}
	}
}
