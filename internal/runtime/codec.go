package runtime

import (
	"fmt"

	"kset/internal/core"
	"kset/internal/wire"
)

// Codec translates between an algorithm's in-memory messages and the
// byte payloads a transport carries. Codec values are shared by every
// process goroutine and must be stateless; per-goroutine decode state
// lives in the Decoder each goroutine obtains from NewDecoder.
type Codec interface {
	// Encode appends msg's wire form to dst and returns the extended
	// buffer (the runtime reuses dst across rounds).
	Encode(dst []byte, msg any) ([]byte, error)
	// NewDecoder returns a decoder for one process goroutine on an
	// n-process transport.
	NewDecoder(n int) Decoder
}

// Decoder decodes one sender's payloads. The returned message is valid
// only until the next Decode call for the same sender — decoders reuse
// per-sender scratch, mirroring the round model's "messages are valid
// for the duration of the Transition call" contract.
type Decoder interface {
	Decode(from int, payload []byte) (any, error)
}

// WireCodec carries Algorithm 1 messages in the canonical internal/wire
// encoding — the same bytes the E5 bit-complexity experiment meters.
type WireCodec struct{}

// Encode implements Codec; msg must be a *core.Message (what
// core.Process.Send returns).
func (WireCodec) Encode(dst []byte, msg any) ([]byte, error) {
	m, ok := msg.(*core.Message)
	if !ok {
		return nil, fmt.Errorf("runtime: WireCodec got %T, want *core.Message", msg)
	}
	return wire.AppendEncode(dst, *m), nil
}

// NewDecoder implements Codec.
func (WireCodec) NewDecoder(n int) Decoder {
	return &wireDecoder{msgs: make([]core.Message, n)}
}

// wireDecoder keeps one scratch message per sender, so steady-state
// decoding reuses graph storage (wire.DecodeInto) instead of allocating
// a fresh Θ(n²) graph per message per round.
type wireDecoder struct {
	msgs []core.Message
}

// Decode implements Decoder.
func (d *wireDecoder) Decode(from int, payload []byte) (any, error) {
	if from < 0 || from >= len(d.msgs) {
		return nil, fmt.Errorf("runtime: decode from out-of-range sender %d", from)
	}
	m := &d.msgs[from]
	if err := wire.DecodeInto(payload, m); err != nil {
		return nil, fmt.Errorf("runtime: decode message from p%d: %w", from+1, err)
	}
	return m, nil
}

// RawCodec carries opaque byte slices unchanged — for algorithms (and
// tests) whose messages already are bytes. Decode hands the transport's
// payload through without copying; the round-scoped validity contract
// is the transport's.
type RawCodec struct{}

// Encode implements Codec; msg must be a []byte.
func (RawCodec) Encode(dst []byte, msg any) ([]byte, error) {
	b, ok := msg.([]byte)
	if !ok {
		return nil, fmt.Errorf("runtime: RawCodec got %T, want []byte", msg)
	}
	return append(dst, b...), nil
}

// NewDecoder implements Codec.
func (RawCodec) NewDecoder(n int) Decoder { return rawDecoder{} }

type rawDecoder struct{}

// Decode implements Decoder.
func (rawDecoder) Decode(from int, payload []byte) (any, error) { return payload, nil }
