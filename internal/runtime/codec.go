package runtime

import (
	"fmt"
	"sync"

	"kset/internal/algo"
)

// Codec and Decoder are the registry's interfaces (internal/algo owns
// the contract; see algo.Codec for the shared-statelessness and
// decode-into-scratch requirements). The runtime aliases them so
// transport plumbing keeps reading naturally, and resolves a nil Codec
// through the algorithm registry instead of hardwiring the k-set wire
// format.
type (
	Codec   = algo.Codec
	Decoder = algo.Decoder
)

// WireCodec carries Algorithm 1 messages in the canonical internal/wire
// encoding — the same bytes the E5 bit-complexity experiment meters. It
// is the registry's kset codec under its historical runtime name.
type WireCodec = algo.KSetCodec

// decodeShare deduplicates decoding across the processes of one run.
// Both transports deliver one shared payload buffer per (sender, round)
// to every co-located receiver (InProc: all n; TCPMesh: the node's
// local group), so without sharing each receiver decodes an identical
// byte string — Θ(n²) DecodeInto calls per round, the dominant cost of
// a TCP round once frames are coalesced. The cache keys on (sender,
// backing array): the first receiver to miss decodes with its own
// Decoder and publishes the value; co-located receivers reuse it.
//
// Sharing one decoded message among receivers is the round model's
// native shape — the lockstep executors (rounds.RunSequential and
// RunConcurrent, including concurrent transitions) hand every receiver
// the same Send(r) result, so Transition treats received messages as
// read-only by contract. Entry lifetime is also the model's: a value is
// reused only within its round, and the control barrier orders every
// round-r Transition before any round-r+1 Decode can overwrite the
// scratch the value lives in. Stale keys cannot alias — a recycled
// payload buffer re-enters the cache under its new round, and the
// refcount on the shared buffer keeps it pinned while any co-located
// receiver is still in the round.
type decodeShare struct {
	slots []shareSlot
}

type shareSlot struct {
	mu      sync.Mutex
	entries map[*byte]shareEntry
}

type shareEntry struct {
	round int
	val   any
	err   error
}

func newDecodeShare(n int) *decodeShare {
	s := &decodeShare{slots: make([]shareSlot, n)}
	for i := range s.slots {
		s.slots[i].entries = make(map[*byte]shareEntry, 4)
	}
	return s
}

// decode returns sender from's round-r message, decoding payload with
// dec only if no co-located receiver already has.
func (s *decodeShare) decode(dec Decoder, from, r int, payload []byte) (any, error) {
	if len(payload) == 0 {
		return dec.Decode(from, payload)
	}
	sl := &s.slots[from]
	key := &payload[0]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if e, ok := sl.entries[key]; ok && e.round == r {
		return e.val, e.err
	}
	if len(sl.entries) > 64 {
		// Pool churn can mint fresh backing arrays; drop dead rounds so
		// the map tracks only the live buffer set.
		for k, e := range sl.entries {
			if e.round != r {
				delete(sl.entries, k)
			}
		}
	}
	val, err := dec.Decode(from, payload)
	sl.entries[key] = shareEntry{round: r, val: val, err: err}
	return val, err
}

// RawCodec carries opaque byte slices unchanged — for algorithms (and
// tests) whose messages already are bytes. Decode hands the transport's
// payload through without copying; the round-scoped validity contract
// is the transport's.
type RawCodec struct{}

// Encode implements Codec; msg must be a []byte.
func (RawCodec) Encode(dst []byte, msg any) ([]byte, error) {
	b, ok := msg.([]byte)
	if !ok {
		return nil, fmt.Errorf("runtime: RawCodec got %T, want []byte", msg)
	}
	return append(dst, b...), nil
}

// NewDecoder implements Codec.
func (RawCodec) NewDecoder(n int) Decoder { return rawDecoder{} }

type rawDecoder struct{}

// Decode implements Decoder.
func (rawDecoder) Decode(from int, payload []byte) (any, error) { return payload, nil }
