package runtime

import (
	"fmt"
	"sync"

	"kset/internal/core"
	"kset/internal/wire"
)

// Codec translates between an algorithm's in-memory messages and the
// byte payloads a transport carries. Codec values are shared by every
// process goroutine and must be stateless; per-goroutine decode state
// lives in the Decoder each goroutine obtains from NewDecoder.
type Codec interface {
	// Encode appends msg's wire form to dst and returns the extended
	// buffer (the runtime reuses dst across rounds).
	Encode(dst []byte, msg any) ([]byte, error)
	// NewDecoder returns a decoder for one process goroutine on an
	// n-process transport.
	NewDecoder(n int) Decoder
}

// Decoder decodes one sender's payloads. The returned message is valid
// only until the next Decode call for the same sender — decoders reuse
// per-sender scratch, mirroring the round model's "messages are valid
// for the duration of the Transition call" contract.
type Decoder interface {
	Decode(from int, payload []byte) (any, error)
}

// WireCodec carries Algorithm 1 messages in the canonical internal/wire
// encoding — the same bytes the E5 bit-complexity experiment meters.
type WireCodec struct{}

// Encode implements Codec; msg must be a *core.Message (what
// core.Process.Send returns).
func (WireCodec) Encode(dst []byte, msg any) ([]byte, error) {
	m, ok := msg.(*core.Message)
	if !ok {
		return nil, fmt.Errorf("runtime: WireCodec got %T, want *core.Message", msg)
	}
	return wire.AppendEncode(dst, *m), nil
}

// NewDecoder implements Codec.
func (WireCodec) NewDecoder(n int) Decoder {
	return &wireDecoder{msgs: make([]core.Message, n)}
}

// wireDecoder keeps one scratch message per sender, so steady-state
// decoding reuses graph storage (wire.DecodeInto) instead of allocating
// a fresh Θ(n²) graph per message per round.
type wireDecoder struct {
	msgs []core.Message
}

// Decode implements Decoder.
func (d *wireDecoder) Decode(from int, payload []byte) (any, error) {
	if from < 0 || from >= len(d.msgs) {
		return nil, fmt.Errorf("runtime: decode from out-of-range sender %d", from)
	}
	m := &d.msgs[from]
	if err := wire.DecodeInto(payload, m); err != nil {
		return nil, fmt.Errorf("runtime: decode message from p%d: %w", from+1, err)
	}
	return m, nil
}

// decodeShare deduplicates decoding across the processes of one run.
// Both transports deliver one shared payload buffer per (sender, round)
// to every co-located receiver (InProc: all n; TCPMesh: the node's
// local group), so without sharing each receiver decodes an identical
// byte string — Θ(n²) DecodeInto calls per round, the dominant cost of
// a TCP round once frames are coalesced. The cache keys on (sender,
// backing array): the first receiver to miss decodes with its own
// Decoder and publishes the value; co-located receivers reuse it.
//
// Sharing one decoded message among receivers is the round model's
// native shape — the lockstep executors (rounds.RunSequential and
// RunConcurrent, including concurrent transitions) hand every receiver
// the same Send(r) result, so Transition treats received messages as
// read-only by contract. Entry lifetime is also the model's: a value is
// reused only within its round, and the control barrier orders every
// round-r Transition before any round-r+1 Decode can overwrite the
// scratch the value lives in. Stale keys cannot alias — a recycled
// payload buffer re-enters the cache under its new round, and the
// refcount on the shared buffer keeps it pinned while any co-located
// receiver is still in the round.
type decodeShare struct {
	slots []shareSlot
}

type shareSlot struct {
	mu      sync.Mutex
	entries map[*byte]shareEntry
}

type shareEntry struct {
	round int
	val   any
	err   error
}

func newDecodeShare(n int) *decodeShare {
	s := &decodeShare{slots: make([]shareSlot, n)}
	for i := range s.slots {
		s.slots[i].entries = make(map[*byte]shareEntry, 4)
	}
	return s
}

// decode returns sender from's round-r message, decoding payload with
// dec only if no co-located receiver already has.
func (s *decodeShare) decode(dec Decoder, from, r int, payload []byte) (any, error) {
	if len(payload) == 0 {
		return dec.Decode(from, payload)
	}
	sl := &s.slots[from]
	key := &payload[0]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if e, ok := sl.entries[key]; ok && e.round == r {
		return e.val, e.err
	}
	if len(sl.entries) > 64 {
		// Pool churn can mint fresh backing arrays; drop dead rounds so
		// the map tracks only the live buffer set.
		for k, e := range sl.entries {
			if e.round != r {
				delete(sl.entries, k)
			}
		}
	}
	val, err := dec.Decode(from, payload)
	sl.entries[key] = shareEntry{round: r, val: val, err: err}
	return val, err
}

// RawCodec carries opaque byte slices unchanged — for algorithms (and
// tests) whose messages already are bytes. Decode hands the transport's
// payload through without copying; the round-scoped validity contract
// is the transport's.
type RawCodec struct{}

// Encode implements Codec; msg must be a []byte.
func (RawCodec) Encode(dst []byte, msg any) ([]byte, error) {
	b, ok := msg.([]byte)
	if !ok {
		return nil, fmt.Errorf("runtime: RawCodec got %T, want []byte", msg)
	}
	return append(dst, b...), nil
}

// NewDecoder implements Codec.
func (RawCodec) NewDecoder(n int) Decoder { return rawDecoder{} }

type rawDecoder struct{}

// Decode implements Decoder.
func (rawDecoder) Decode(from int, payload []byte) (any, error) { return payload, nil }
