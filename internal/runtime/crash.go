package runtime

import (
	"fmt"
	"time"

	"kset/internal/graph"
	"kset/internal/rounds"
	"kset/internal/transport"
)

// CrashSite pins where inside its crash round a process dies. The three
// sites carve the round at its observable boundaries: before the
// broadcast (the round-r message reaches nobody), in the middle of it (a
// strict subset of receivers got it — the paper's Figure 1 asymmetry,
// manufactured on purpose), or after it (everyone got the last message,
// then the process fell silent).
type CrashSite uint8

const (
	// CrashBeforeSend kills the process before its round-r broadcast.
	CrashBeforeSend CrashSite = iota
	// CrashMidSend kills the process mid-broadcast: only the receivers
	// in the plan's Partial set get the round-r message.
	CrashMidSend
	// CrashAfterSend kills the process right after a complete round-r
	// broadcast, before it gathers or transitions.
	CrashAfterSend
)

// String implements fmt.Stringer.
func (s CrashSite) String() string {
	switch s {
	case CrashBeforeSend:
		return "before-send"
	case CrashMidSend:
		return "mid-send"
	case CrashAfterSend:
		return "after-send"
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// CrashPlan schedules process crashes for one run: process i dies in
// round Round[i] (0 = never) at Site[i]; for a mid-send crash,
// Partial[i] names the receivers its final broadcast reaches (its own
// node always hears itself — self-delivery is unconditional on every
// transport, matching the paper's crashed-but-internally-correct node).
//
// The plan acts in three places, which together make an injected crash
// indistinguishable from a real one at every layer below the injector:
// the process goroutine returns at the site (the process IS dead, not
// simulating dead), the crash-cut transport policy drops the sends a
// real crash would have lost, and the controller stops expecting the
// victim's reports.
//
// Notify selects announced versus silent death. Announced (Notify =
// true) calls MarkDead on the transport at the crash, the way a
// supervisor announces a dead child — required on the in-proc transport,
// which has no deadline machinery to notice silence. Silent (false)
// leaves detection to the transport's stall layer: receivers burn
// deadlines until the stall detector's verdict. Silent crashes assume
// one process per node on the socket meshes — a silent co-located
// process would wedge its node's shared writer, which is faithful to
// what an OS process crash does to everything inside it.
type CrashPlan struct {
	Round   []int
	Site    []CrashSite
	Partial []graph.NodeSet
	Notify  bool
}

// validate checks the plan's shape against an n-process run. A nil plan
// is valid (no crashes).
func (p *CrashPlan) validate(n int) error {
	if p == nil {
		return nil
	}
	if len(p.Round) != n || len(p.Site) != n {
		return fmt.Errorf("runtime: crash plan sized for %d/%d processes, run has %d", len(p.Round), len(p.Site), n)
	}
	for i, r := range p.Round {
		if r < 0 {
			return fmt.Errorf("runtime: p%d crash round %d, need >= 0", i+1, r)
		}
		if r != 0 && p.Site[i] == CrashMidSend && (p.Partial == nil || len(p.Partial) != n) {
			return fmt.Errorf("runtime: p%d crashes mid-send but the plan has no Partial sets", i+1)
		}
		if p.Site[i] > CrashAfterSend {
			return fmt.Errorf("runtime: p%d crash site %d out of range", i+1, p.Site[i])
		}
	}
	return nil
}

// Crashes returns the number of processes the plan kills.
func (p *CrashPlan) Crashes() int {
	if p == nil {
		return 0
	}
	c := 0
	for _, r := range p.Round {
		if r != 0 {
			c++
		}
	}
	return c
}

// Sends reports whether process from's round-r broadcast reaches `to`
// under the plan (the crash cut alone — the run's schedule composes on
// top). Everything before the crash round is untouched; everything
// after it is gone; the crash round itself depends on the site.
func (p *CrashPlan) Sends(r, from, to int) bool {
	if p == nil {
		return true
	}
	cr := p.Round[from]
	if cr == 0 || r < cr {
		return true
	}
	if r > cr {
		return false
	}
	switch p.Site[from] {
	case CrashBeforeSend:
		return false
	case CrashMidSend:
		return p.Partial[from].Has(to)
	default:
		return true
	}
}

// aliveEntering counts the processes that will report round r: everyone
// whose crash round is unset or still ahead — a process reports (as
// crashed) IN its crash round, and never after.
func (p *CrashPlan) aliveEntering(r int) int {
	alive := 0
	for _, cr := range p.Round {
		if cr == 0 || cr >= r {
			alive++
		}
	}
	return alive
}

// survivorsDecided reports whether every process the plan never kills
// has decided — the chaos run's graceful-degradation stop rule. False
// when a survivor does not implement Decider (no decision to wait for).
func (p *CrashPlan) survivorsDecided(procs []rounds.Algorithm) bool {
	for i, proc := range procs {
		if p.Round[i] != 0 {
			continue
		}
		d, ok := proc.(rounds.Decider)
		if !ok || !d.Decided() {
			return false
		}
	}
	return true
}

// crashCut composes a crash plan's send cut under an inner policy: a
// delivery happens iff the plan lets the sender make it AND the inner
// policy (the run's schedule) delivers it. Delays pass through.
type crashCut struct {
	inner transport.Policy
	plan  *CrashPlan
}

// Deliver implements transport.Policy.
func (c crashCut) Deliver(r, from, to int) bool {
	return c.plan.Sends(r, from, to) && c.inner.Deliver(r, from, to)
}

// Delay implements transport.Policy.
func (c crashCut) Delay(r, from, to int) time.Duration { return c.inner.Delay(r, from, to) }

// StallPlan delays processes' broadcasts without killing them: process
// i's round-r send is preceded by a Delay[i] sleep for every r in
// [From[i], To[i]]. It is the stimulus for the recoverable half of the
// stall machinery — deadline closures, grace extensions, miss streaks
// that end before the verdict — and, when Delay ≥ RoundTimeout ×
// DeadAfter, for a false-positive death verdict on a slow-but-alive
// peer, which the chaos battery exercises deliberately.
type StallPlan struct {
	From, To []int
	Delay    []time.Duration
}

// validate checks the plan's shape. A nil plan is valid (no stalls).
func (s *StallPlan) validate(n int) error {
	if s == nil {
		return nil
	}
	if len(s.From) != n || len(s.To) != n || len(s.Delay) != n {
		return fmt.Errorf("runtime: stall plan sized for %d/%d/%d processes, run has %d",
			len(s.From), len(s.To), len(s.Delay), n)
	}
	return nil
}

// delay returns process self's send delay for round r.
func (s *StallPlan) delay(self, r int) time.Duration {
	if s == nil || s.Delay[self] <= 0 {
		return 0
	}
	if r >= s.From[self] && r <= s.To[self] {
		return s.Delay[self]
	}
	return 0
}

// procChaos is one process's slice of the chaos plans, precomputed so
// the per-round hot path is two field reads for the (overwhelmingly
// common) untouched process.
type procChaos struct {
	crashRound int
	site       CrashSite
	notify     bool
	dm         transport.DeadMarker
	stall      *StallPlan
	self       int
}

// newProcChaos returns process self's chaos state, or nil when no plan
// touches it (the hot-path fast out).
func newProcChaos(self int, plan *CrashPlan, stall *StallPlan, dm transport.DeadMarker) *procChaos {
	crashRound := 0
	var site CrashSite
	notify := false
	if plan != nil && plan.Round[self] != 0 {
		crashRound, site, notify = plan.Round[self], plan.Site[self], plan.Notify
	}
	if crashRound == 0 && (stall == nil || stall.Delay[self] <= 0) {
		return nil
	}
	return &procChaos{crashRound: crashRound, site: site, notify: notify, dm: dm, stall: stall, self: self}
}

// sendDelay returns the stall delay before the round-r send (nil-safe).
func (c *procChaos) sendDelay(r int) time.Duration {
	if c == nil || c.stall == nil {
		return 0
	}
	return c.stall.delay(c.self, r)
}
