// Package runtime executes the round model as a real distributed system:
// one goroutine per process running its algorithm end-to-end, messages
// crossing a pluggable transport (internal/transport) as encoded bytes,
// and per-link drops/delays injected by the transport's policy instead
// of a lock-step delivery loop. It is the second, independent
// implementation of the executor contract in internal/rounds — the
// differential harness in this package (Diff) proves it
// decision-for-decision identical to the simulator, in the same spirit
// as the differential baselines in internal/baseline and the
// model-checker's brute-force cross-check in internal/check.
//
// # Determinism
//
// A run is fully determined by (schedule, proposals, options): rounds
// are communication-closed, transitions are deterministic, and the
// transport's fault injection is a pure function of (round, link). Real
// concurrency — goroutine scheduling, TCP timing, jittered link delays —
// can therefore change only wall-clock phase, never decisions. That is
// not assumed but enforced: Diff replays any schedule over a transport
// and compares every per-process decision, decision round, and skeleton
// measurement against sim.Execute on the same schedule and seed.
//
// # Control plane
//
// Data-plane messages (the algorithm's (tag, x, G) broadcasts) travel
// over the transport. Round pacing is a thin control plane on the
// runner: after its round-r transition, each process reports to the
// controller, which runs the observers and the stop predicate against
// the quiescent round-r state and releases round r+1 — or ends the run.
// The barrier also bounds transport lookahead at one round, so per-link
// buffering stays O(1).
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"kset/internal/adversary"
	"kset/internal/rounds"
	"kset/internal/transport"
)

// report is one process's round-completion message to the controller.
type report struct {
	self  int
	round int
	err   error
}

// Run executes cfg with one goroutine per process over the given
// transport. It enforces exactly the contract of rounds.RunSequential /
// RunConcurrent (same Config validation, same graph checks, same
// observer and stop semantics) and produces the identical Result for
// the identical inputs, provided the transport's drop policy replays
// cfg.Adversary (see NewRunner, which wires that up).
//
// Run owns the transport: it is closed before Run returns, on every
// path. cfg.Adversary is read concurrently by the controller and — via
// the transport policy — by every process goroutine, so it must be safe
// for concurrent Graph calls (adversary.MaterializeRun makes any
// adversary so).
func Run(cfg rounds.Config, tr transport.Transport, codec Codec) (*rounds.Result, error) {
	defer tr.Close()
	n, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	if tr.N() != n {
		return nil, fmt.Errorf("runtime: transport has %d endpoints, adversary has %d processes", tr.N(), n)
	}
	if codec == nil {
		codec = WireCodec{}
	}

	procs := make([]rounds.Algorithm, n)
	for i := 0; i < n; i++ {
		procs[i] = cfg.NewProcess(i)
		procs[i].Init(i, n)
	}

	var (
		reports = make(chan report, n)
		conts   = make([]chan bool, n)
		stop    = make(chan struct{})
		wg      sync.WaitGroup
	)
	for i := range conts {
		conts[i] = make(chan bool, 1)
	}

	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(self int, p rounds.Algorithm) {
			defer wg.Done()
			runProcess(self, n, p, tr, codec, reports, conts[self], stop)
		}(i, procs[i])
	}

	res := &rounds.Result{Procs: procs}
	var runErr error
loop:
	for r := 1; r <= cfg.MaxRounds; r++ {
		g := cfg.Adversary.Graph(r)
		if err := rounds.CheckGraph(g, n, r); err != nil {
			runErr = err
			break
		}
		for i := 0; i < n; i++ {
			rep := <-reports
			if rep.err != nil {
				runErr = rep.err
				break loop
			}
			if rep.round != r {
				runErr = fmt.Errorf("runtime: p%d reported round %d during round %d", rep.self+1, rep.round, r)
				break loop
			}
		}
		// All round-r transitions are complete and every process is
		// parked awaiting release: the quiescent state observers and
		// stop predicates are defined on.
		res.Rounds = r
		if cfg.Observer != nil {
			cfg.Observer.OnRound(r, g, procs)
		}
		stopNow := r == cfg.MaxRounds
		if cfg.StopWhen != nil && cfg.StopWhen(r, procs) {
			res.Stopped = true
			stopNow = true
		}
		for i := range conts {
			conts[i] <- !stopNow
		}
		if stopNow {
			break
		}
	}
	close(stop)
	tr.Close()
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// runProcess is one process goroutine: encode-broadcast-gather-decode-
// transition, then rendezvous with the controller, every round until
// released or aborted.
func runProcess(self, n int, p rounds.Algorithm, tr transport.Transport, codec Codec, reports chan<- report, cont <-chan bool, stop <-chan struct{}) {
	sendReport := func(rep report) bool {
		select {
		case reports <- rep:
			return true
		case <-stop:
			return false
		}
	}
	ep, err := tr.Endpoint(self)
	if err != nil {
		sendReport(report{self: self, err: fmt.Errorf("runtime: p%d endpoint: %w", self+1, err)})
		return
	}
	dec := codec.NewDecoder(n)
	recv := make([]any, n)
	var sendBuf []byte
	var frames [][]byte
	for r := 1; ; r++ {
		sendBuf, err = codec.Encode(sendBuf[:0], p.Send(r))
		if err == nil {
			err = ep.Broadcast(r, sendBuf)
		}
		var got [][]byte
		if err == nil {
			got, err = ep.Gather(r, frames)
		}
		if err != nil {
			sendReport(report{self: self, round: r, err: abortErr(self, r, err)})
			return
		}
		frames = got
		for q := 0; q < n; q++ {
			recv[q] = nil
			if got[q] == nil {
				continue
			}
			v, derr := dec.Decode(q, got[q])
			if derr != nil {
				sendReport(report{self: self, round: r, err: derr})
				return
			}
			recv[q] = v
		}
		p.Transition(r, recv)
		if !sendReport(report{self: self, round: r}) {
			return
		}
		select {
		case ok := <-cont:
			if !ok {
				return
			}
		case <-stop:
			return
		}
	}
}

// abortErr keeps teardown noise out of error reports: a transport closed
// under a process (because the run is ending) is not that process's
// failure.
func abortErr(self, r int, err error) error {
	if errors.Is(err, transport.ErrClosed) {
		return err
	}
	return fmt.Errorf("runtime: p%d round %d: %w", self+1, r, err)
}

// RunnerOpts configures NewRunner.
type RunnerOpts struct {
	// TCP selects the TCP loopback transport; default is in-process
	// channels.
	TCP bool
	// Codec encodes the algorithm's messages; nil means WireCodec
	// (Algorithm 1 over internal/wire).
	Codec Codec
	// Jitter, when positive, layers deterministic per-link receive
	// latency in [0, Jitter) on top of the schedule's drops, seeded by
	// JitterSeed. Decisions are unaffected (Diff proves it); timing
	// skew is.
	Jitter     time.Duration
	JitterSeed int64
}

// NewRunner adapts the distributed runtime to the executor signature of
// internal/rounds, for sim.Spec.Runner: the returned function builds a
// fresh transport whose drop policy replays cfg.Adversary (materialized
// for concurrent access), runs cfg over it, and tears the transport
// down. Each call of the returned runner is an independent run.
func NewRunner(opts RunnerOpts) func(rounds.Config) (*rounds.Result, error) {
	return func(cfg rounds.Config) (*rounds.Result, error) {
		if _, err := cfg.Validate(); err != nil {
			return nil, err
		}
		adv := adversary.MaterializeRun(cfg.Adversary, cfg.MaxRounds)
		cfg.Adversary = adv
		var pol transport.Policy = transport.NewSchedule(adv)
		if opts.Jitter > 0 {
			pol = transport.Jitter{Inner: pol, Seed: opts.JitterSeed, Max: opts.Jitter}
		}
		var tr transport.Transport
		if opts.TCP {
			t, err := transport.NewTCPLoopback(adv.N(), pol)
			if err != nil {
				return nil, err
			}
			tr = t
		} else {
			tr = transport.NewInProc(adv.N(), pol)
		}
		return Run(cfg, tr, opts.Codec)
	}
}
