// Package runtime executes the round model as a real distributed system:
// one goroutine per process running its algorithm end-to-end, messages
// crossing a pluggable transport (internal/transport) as encoded bytes,
// and per-link drops/delays injected by the transport's policy instead
// of a lock-step delivery loop. It is the second, independent
// implementation of the executor contract in internal/rounds — the
// differential harness in this package (Diff) proves it
// decision-for-decision identical to the simulator, in the same spirit
// as the differential baselines in internal/baseline and the
// model-checker's brute-force cross-check in internal/check.
//
// # Determinism
//
// A run is fully determined by (schedule, proposals, options): rounds
// are communication-closed, transitions are deterministic, and the
// transport's fault injection is a pure function of (round, link). Real
// concurrency — goroutine scheduling, TCP timing, jittered link delays —
// can therefore change only wall-clock phase, never decisions. That is
// not assumed but enforced: Diff replays any schedule over a transport
// and compares every per-process decision, decision round, and skeleton
// measurement against sim.Execute on the same schedule and seed.
//
// # Control plane and pipelining
//
// Data-plane messages (the algorithm's (tag, x, G) broadcasts) travel
// over the transport. Round pacing is a thin control plane on the
// runner: after its round-r transition, each process reports to the
// controller, which runs the observers and the stop predicate against
// the quiescent round-r state and releases round r+1 — or ends the run.
//
// Fixed-length runs (StopWhen == nil — benchmarks, load generators,
// service sessions) are pipelined: a process writes its round-r+1
// broadcast immediately after its round-r transition, BEFORE reporting
// to the controller, so by the time the barrier releases round r+1
// every process's message is already deposited (or on the wire) and
// Gather completes without waiting out a fresh send burst. This is
// exact, not just safe: with no early-stop predicate, rounds 1..
// MaxRounds all execute, so the pipelined run performs precisely the
// Send calls and per-link drops the lockstep simulator does — only
// earlier in wall-clock — and the transport contract's bounded
// lookahead (one round past the lowest un-gathered round) licenses the
// head start. Runs with a StopWhen predicate are not pipelined: the
// controller's stop decision is not locally predictable, so a
// speculative round-r+1 broadcast after a stop at round r would call
// Send (observable to metering wrappers) and consult the drop policy
// for a round the simulator never executes. The differential harness
// covers both paths.
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"kset/internal/adversary"
	"kset/internal/algo"
	"kset/internal/rounds"
	"kset/internal/transport"
)

// report is one process's round-completion message to the controller.
type report struct {
	self    int
	round   int
	crashed bool // the process executed its planned crash in this round
	err     error
}

// Run executes cfg with one goroutine per process over the given
// transport. It enforces exactly the contract of rounds.RunSequential /
// RunConcurrent (same Config validation, same graph checks, same
// observer and stop semantics) and produces the identical Result for
// the identical inputs, provided the transport's drop policy replays
// cfg.Adversary (see NewRunner, which wires that up).
//
// Run owns the transport: it is closed before Run returns, on every
// path. cfg.Adversary is read concurrently by the controller and — via
// the transport policy — by every process goroutine, so it must be safe
// for concurrent Graph calls (adversary.MaterializeRun makes any
// adversary so).
func Run(cfg rounds.Config, tr transport.Transport, codec Codec) (*rounds.Result, error) {
	return RunChaos(cfg, tr, codec, nil, nil)
}

// RunChaos is Run with fault injection: plan schedules process crashes
// (site-exact, see CrashPlan), stall delays processes' sends without
// killing them. Both may be nil; with both nil this IS Run.
//
// Crashed processes freeze at their pre-crash state (they appear in the
// Result undecided or with their pre-crash decision, the paper's
// internally-correct crashed node), the controller stops expecting their
// reports, and — when cfg.StopWhen is set — the run additionally ends as
// soon as every surviving process has decided, since waiting on the dead
// is exactly the wedge this layer exists to remove. Fixed-length runs
// (StopWhen == nil) still execute all MaxRounds with the survivors.
func RunChaos(cfg rounds.Config, tr transport.Transport, codec Codec, plan *CrashPlan, stall *StallPlan) (*rounds.Result, error) {
	defer tr.Close()
	n, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	if tr.N() != n {
		return nil, fmt.Errorf("runtime: transport has %d endpoints, adversary has %d processes", tr.N(), n)
	}
	if err := plan.validate(n); err != nil {
		return nil, err
	}
	if err := stall.validate(n); err != nil {
		return nil, err
	}
	if codec == nil {
		codec = WireCodec{}
	}

	procs := make([]rounds.Algorithm, n)
	for i := 0; i < n; i++ {
		procs[i] = cfg.NewProcess(i)
		procs[i].Init(i, n)
	}

	var (
		reports = make(chan report, n)
		conts   = make([]chan bool, n)
		stop    = make(chan struct{})
		wg      sync.WaitGroup
	)
	for i := range conts {
		conts[i] = make(chan bool, 1)
	}

	// Pipelining is exact only for fixed-length runs; see the package
	// comment. Chaos runs are never pipelined: a crash or stall makes the
	// next round's send burst locally unpredictable.
	pipelined := cfg.StopWhen == nil && plan == nil && stall == nil
	share := newDecodeShare(n)
	dm, _ := tr.(transport.DeadMarker)

	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(self int, p rounds.Algorithm) {
			defer wg.Done()
			runProcess(self, n, cfg.MaxRounds, pipelined, p, tr, codec, share, reports, conts[self], stop, newProcChaos(self, plan, stall, dm))
		}(i, procs[i])
	}

	res := &rounds.Result{Procs: procs}
	var runErr error
loop:
	for r := 1; r <= cfg.MaxRounds; r++ {
		g := cfg.Adversary.Graph(r)
		if err := rounds.CheckGraph(g, n, r); err != nil {
			runErr = err
			break
		}
		expect := n
		if plan != nil {
			expect = plan.aliveEntering(r)
			if expect == 0 {
				break // everyone has crashed; round r never happens
			}
		}
		for i := 0; i < expect; i++ {
			rep := <-reports
			if rep.err != nil {
				runErr = rep.err
				break loop
			}
			if rep.round != r {
				runErr = fmt.Errorf("runtime: p%d reported round %d during round %d", rep.self+1, rep.round, r)
				break loop
			}
			if rep.crashed != (plan != nil && plan.Round[rep.self] == r) {
				runErr = fmt.Errorf("runtime: p%d crash report in round %d disagrees with the plan", rep.self+1, r)
				break loop
			}
		}
		// All round-r transitions are complete and every live process is
		// parked awaiting release: the quiescent state observers and
		// stop predicates are defined on.
		res.Rounds = r
		if cfg.Observer != nil {
			cfg.Observer.OnRound(r, g, procs)
		}
		stopNow := r == cfg.MaxRounds
		if cfg.StopWhen != nil {
			if cfg.StopWhen(r, procs) || (plan != nil && plan.survivorsDecided(procs)) {
				res.Stopped = true
				stopNow = true
			}
		}
		for i := range conts {
			if plan != nil && plan.Round[i] != 0 && plan.Round[i] <= r {
				continue // crashed: its goroutine is gone
			}
			conts[i] <- !stopNow
		}
		if stopNow {
			break
		}
	}
	close(stop)
	tr.Close()
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// runProcess is one process goroutine: gather-decode-transition, then
// (when pipelined) the round-r+1 broadcast, then rendezvous with the
// controller, every round until released or aborted. In pipelined mode
// the round-1 send primes the pipeline before the loop; otherwise each
// round's send happens at the top of its own iteration, after the
// controller's release. chaos, when non-nil, injects this process's
// planned crash (site-exact) and stall delays; a crashing process
// performs its site's sends, optionally announces its death, reports
// crashed, and returns — its goroutine is the thing that dies.
func runProcess(self, n, maxRounds int, pipelined bool, p rounds.Algorithm, tr transport.Transport, codec Codec, share *decodeShare, reports chan<- report, cont <-chan bool, stop <-chan struct{}, chaos *procChaos) {
	sendReport := func(rep report) bool {
		select {
		case reports <- rep:
			return true
		case <-stop:
			return false
		}
	}
	ep, err := tr.Endpoint(self)
	if err != nil {
		sendReport(report{self: self, err: fmt.Errorf("runtime: p%d endpoint: %w", self+1, err)})
		return
	}
	dec := codec.NewDecoder(n)
	recv := make([]any, n)
	var sendBuf []byte
	var frames [][]byte
	send := func(r int) error {
		var serr error
		sendBuf, serr = codec.Encode(sendBuf[:0], p.Send(r))
		if serr != nil {
			return serr
		}
		return ep.Broadcast(r, sendBuf)
	}
	if pipelined {
		if err := send(1); err != nil {
			sendReport(report{self: self, round: 1, err: abortErr(self, 1, err)})
			return
		}
	}
	for r := 1; ; r++ {
		if chaos != nil && chaos.crashRound == r {
			// The planned crash. Before-send dies with the round-r message
			// unsent; mid-send broadcasts through the crash-cut policy (the
			// receivers in Partial get it, the rest get tombstones);
			// after-send broadcasts in full. Then the goroutine — the
			// process — is gone: no gather, no transition, no report beyond
			// the crash notice.
			if chaos.site != CrashBeforeSend {
				if err := send(r); err != nil {
					sendReport(report{self: self, round: r, err: abortErr(self, r, err)})
					return
				}
			}
			if chaos.notify && chaos.dm != nil {
				from := r
				if chaos.site != CrashBeforeSend {
					from = r + 1 // the round-r frame was really sent; only later rounds are dead
				}
				chaos.dm.MarkDead(self, from)
			}
			sendReport(report{self: self, round: r, crashed: true})
			return
		}
		if !pipelined {
			if d := chaos.sendDelay(r); d > 0 {
				time.Sleep(d)
			}
			if err := send(r); err != nil {
				sendReport(report{self: self, round: r, err: abortErr(self, r, err)})
				return
			}
		}
		got, err := ep.Gather(r, frames)
		if err != nil {
			sendReport(report{self: self, round: r, err: abortErr(self, r, err)})
			return
		}
		frames = got
		for q := 0; q < n; q++ {
			recv[q] = nil
			if got[q] == nil {
				continue
			}
			v, derr := share.decode(dec, q, r, got[q])
			if derr != nil {
				sendReport(report{self: self, round: r, err: derr})
				return
			}
			recv[q] = v
		}
		p.Transition(r, recv)
		// Pipelined send: round r+1's broadcast goes out before the
		// round-r report, so the next round's frames are in flight while
		// the controller runs observers. Observers run only after every
		// round-r report, so they never see a difference. The last round
		// sends nothing — the schedule is defined only up to MaxRounds.
		if pipelined && r < maxRounds {
			if err := send(r + 1); err != nil {
				sendReport(report{self: self, round: r, err: abortErr(self, r+1, err)})
				return
			}
		}
		if !sendReport(report{self: self, round: r}) {
			return
		}
		select {
		case ok := <-cont:
			if !ok {
				return
			}
		case <-stop:
			return
		}
	}
}

// abortErr keeps teardown noise out of error reports: a transport closed
// under a process (because the run is ending) is not that process's
// failure.
func abortErr(self, r int, err error) error {
	if errors.Is(err, transport.ErrClosed) {
		return err
	}
	return fmt.Errorf("runtime: p%d round %d: %w", self+1, r, err)
}

// RunnerOpts configures NewRunner.
type RunnerOpts struct {
	// Kind selects the transport: "inproc" (default), "tcp", or "udp".
	// Empty defers to the legacy TCP flag below.
	Kind string
	// Nodes groups the n processes onto this many mesh nodes for the
	// socket transports (co-located processes share sockets and their
	// rounds coalesce into one frame per node pair). 0 or >= n means one
	// node per process — the fully distributed shape.
	Nodes int
	// UDP configures the datagram mesh when Kind is "udp" (round
	// deadline, grace, datagram size, meter, injected datagram loss).
	// The zero value takes the transport's defaults.
	UDP transport.UDPOpts
	// Loss, when positive and Kind is "udp", loses each round frame on
	// the wire i.i.d. with this probability (deterministically from
	// LossSeed) — real absence-style loss, composed with any
	// UDP.DropDatagram hook and with the schedule's Policy drops. The
	// algorithm tolerates it by design; the loss-replay harness
	// (LossReplay) verifies the realized run still satisfies the paper's
	// bounds.
	Loss     float64
	LossSeed int64

	// TCP selects the TCP loopback transport when Kind is empty; kept
	// for existing call sites, equivalent to Kind: "tcp".
	TCP bool
	// TCPNodes is the legacy spelling of Nodes.
	TCPNodes int

	// Algorithm names the registered family whose Codec carries the
	// messages when Codec is nil; "" resolves to the registry default
	// (kset). An explicit Codec always wins.
	Algorithm string
	// Codec encodes the algorithm's messages; nil resolves the
	// Algorithm name through the registry (default: WireCodec,
	// Algorithm 1 over internal/wire).
	Codec Codec
	// Jitter, when positive, layers deterministic per-link receive
	// latency in [0, Jitter) on top of the schedule's drops, seeded by
	// JitterSeed. Decisions are unaffected (Diff proves it); timing
	// skew is.
	Jitter     time.Duration
	JitterSeed int64

	// Crash, when non-nil, injects process crashes (see CrashPlan): the
	// planned processes' goroutines die at their planned rounds and
	// sites, their sends are cut accordingly in the transport policy,
	// and the run continues with the survivors (RunChaos).
	Crash *CrashPlan
	// Stall, when non-nil, delays processes' sends without killing them
	// (see StallPlan) — the stimulus for deadline closures and stall
	// streaks that end in recovery rather than a death verdict.
	Stall *StallPlan
	// TCPOpts tunes the TCP mesh (chaos knobs: deadline closure, stall
	// detection, reconnect). The zero value is the classic reliable mesh.
	TCPOpts transport.TCPOpts
	// Meter, when non-nil, records the realized heard-set of every
	// gather. On the UDP mesh it is wired natively (overriding
	// UDP.Meter); the other transports are wrapped with Metered.
	Meter *transport.HeardMeter
	// OnTransport, when non-nil, is called with each run's transport
	// right after construction — the hook the agreement service uses to
	// get a DeadMarker handle for watchdog verdicts.
	OnTransport func(transport.Transport)
}

// kind resolves the transport selection, folding the legacy TCP flag in.
func (o RunnerOpts) kind() string {
	if o.Kind != "" {
		return o.Kind
	}
	if o.TCP {
		return "tcp"
	}
	return "inproc"
}

// meshNodes resolves the node count for an n-process socket mesh.
func (o RunnerOpts) meshNodes(n int) int {
	nodes := o.Nodes
	if nodes == 0 {
		nodes = o.TCPNodes
	}
	if nodes <= 0 || nodes > n {
		nodes = n
	}
	return nodes
}

// NewRunner adapts the distributed runtime to the executor signature of
// internal/rounds, for sim.Spec.Runner: the returned function builds a
// fresh transport whose drop policy replays cfg.Adversary (materialized
// for concurrent access), runs cfg over it, and tears the transport
// down. Each call of the returned runner is an independent run.
func NewRunner(opts RunnerOpts) func(rounds.Config) (*rounds.Result, error) {
	return func(cfg rounds.Config) (*rounds.Result, error) {
		if _, err := cfg.Validate(); err != nil {
			return nil, err
		}
		if opts.Codec == nil {
			alg, err := algo.Lookup(opts.Algorithm)
			if err != nil {
				return nil, err
			}
			opts.Codec = alg.Codec
		}
		adv := adversary.MaterializeRun(cfg.Adversary, cfg.MaxRounds)
		cfg.Adversary = adv
		var pol transport.Policy = transport.NewSchedule(adv)
		if opts.Crash != nil {
			// The crash cut composes under the schedule: a crashing
			// process's round-r sends are restricted to its site's
			// receivers before the schedule's own drops apply.
			pol = crashCut{inner: pol, plan: opts.Crash}
		}
		if opts.Jitter > 0 {
			pol = transport.Jitter{Inner: pol, Seed: opts.JitterSeed, Max: opts.Jitter}
		}
		var tr transport.Transport
		switch kind := opts.kind(); kind {
		case "inproc":
			tr = transport.NewInProc(adv.N(), pol)
		case "tcp":
			t, err := transport.NewTCPMeshLoopbackOpts(adv.N(), opts.meshNodes(adv.N()), pol, opts.TCPOpts)
			if err != nil {
				return nil, err
			}
			tr = t
		case "udp":
			u := opts.UDP
			if injected := transport.FrameLoss(opts.Loss, opts.LossSeed); injected != nil {
				inner := u.DropDatagram
				u.DropDatagram = func(r, from, to, frag int) bool {
					return injected(r, from, to, frag) || (inner != nil && inner(r, from, to, frag))
				}
			}
			if opts.Meter != nil {
				u.Meter = opts.Meter
			}
			t, err := transport.NewUDPMeshLoopback(adv.N(), opts.meshNodes(adv.N()), pol, u)
			if err != nil {
				return nil, err
			}
			tr = t
		default:
			return nil, fmt.Errorf("runtime: unknown transport kind %q", kind)
		}
		if opts.Meter != nil && opts.kind() != "udp" {
			tr = transport.Metered(tr, opts.Meter)
		}
		if opts.OnTransport != nil {
			opts.OnTransport(tr)
		}
		return RunChaos(cfg, tr, opts.Codec, opts.Crash, opts.Stall)
	}
}
