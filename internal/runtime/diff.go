package runtime

import (
	"fmt"
	"math/rand"
	"time"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/rounds"
	"kset/internal/sim"
	"kset/internal/transport"
)

// DiffOpts configures one differential replay.
type DiffOpts struct {
	// Kind selects the replay transport: "inproc" (default), "tcp", or
	// "udp". The UDP replay uses the service's generous loopback timing
	// (250ms round deadline, 2ms grace) so a quiet loopback is
	// effectively lossless and the comparison stays bit-exact.
	Kind string
	// Nodes groups the processes onto this many mesh nodes for the
	// socket transports (0 = one per process); see RunnerOpts.Nodes.
	// Frame coalescing across co-located processes must not change a
	// single decision bit.
	Nodes int

	// TCP is the legacy spelling of Kind: "tcp".
	TCP bool
	// TCPNodes is the legacy spelling of Nodes.
	TCPNodes int
	// Jitter/JitterSeed inject deterministic per-link receive latency,
	// to prove timing skew cannot leak into decisions.
	Jitter     time.Duration
	JitterSeed int64
}

// Diff is the differential harness: it executes spec once on the
// lockstep simulator and once on the distributed runtime over a real
// transport replaying the same schedule, and returns an error unless
// the two outcomes are identical — every per-process decision bit,
// decision round, round count, and skeleton measurement. The schedule
// is materialized exactly once, so stateful adversaries feed both
// executions the same run.
func Diff(spec sim.Spec, opts DiffOpts) error {
	if spec.Adversary == nil {
		return fmt.Errorf("runtime: Diff with nil adversary")
	}
	// Resolve against the original adversary, before materialization can
	// change the StabilizationRound answer: both the family's automatic
	// round bound and its normalized options (approx's decide round) key
	// off the genuine stabilization data. Resolve is idempotent, so the
	// Execute calls below re-resolving the spec is a no-op.
	if err := spec.Resolve(); err != nil {
		return fmt.Errorf("runtime: Diff resolve: %w", err)
	}
	spec.Adversary = adversary.MaterializeRun(spec.Adversary, spec.MaxRounds)

	want, err := sim.Execute(spec)
	if err != nil {
		return fmt.Errorf("runtime: Diff reference execution: %w", err)
	}
	rt := spec
	ro := RunnerOpts{
		Kind:       opts.Kind,
		Nodes:      opts.Nodes,
		TCP:        opts.TCP,
		TCPNodes:   opts.TCPNodes,
		Jitter:     opts.Jitter,
		JitterSeed: opts.JitterSeed,
		Algorithm:  spec.Algorithm,
	}
	if ro.kind() == "udp" {
		ro.UDP = transport.UDPOpts{RoundTimeout: 250 * time.Millisecond, Grace: 2 * time.Millisecond}
	}
	rt.Runner = NewRunner(ro)
	got, err := sim.Execute(rt)
	if err != nil {
		return fmt.Errorf("runtime: Diff runtime execution: %w", err)
	}
	if err := CompareOutcomes(want, got); err != nil {
		return fmt.Errorf("runtime diverged from simulator: %w", err)
	}
	return nil
}

// CompareOutcomes reports the first difference between a simulator
// outcome and a runtime outcome of the same spec, or nil if they are
// identical in every decision-relevant field.
func CompareOutcomes(want, got *sim.Outcome) error {
	if want.N != got.N {
		return fmt.Errorf("n: sim %d, runtime %d", want.N, got.N)
	}
	if want.Rounds != got.Rounds {
		return fmt.Errorf("rounds executed: sim %d, runtime %d", want.Rounds, got.Rounds)
	}
	for i := 0; i < want.N; i++ {
		if want.Decided[i] != got.Decided[i] {
			return fmt.Errorf("p%d decided: sim %v, runtime %v", i+1, want.Decided[i], got.Decided[i])
		}
		if !want.Decided[i] {
			continue
		}
		if want.Decisions[i] != got.Decisions[i] {
			return fmt.Errorf("p%d decision: sim %d, runtime %d", i+1, want.Decisions[i], got.Decisions[i])
		}
		if want.DecideRounds[i] != got.DecideRounds[i] {
			return fmt.Errorf("p%d decision round: sim %d, runtime %d", i+1, want.DecideRounds[i], got.DecideRounds[i])
		}
	}
	if want.RST != got.RST {
		return fmt.Errorf("r_ST: sim %d, runtime %d", want.RST, got.RST)
	}
	if want.RootComps != got.RootComps {
		return fmt.Errorf("root components: sim %d, runtime %d", want.RootComps, got.RootComps)
	}
	if want.MinK != got.MinK {
		return fmt.Errorf("MinK: sim %d, runtime %d", want.MinK, got.MinK)
	}
	if !want.Skeleton.Equal(got.Skeleton) {
		return fmt.Errorf("stable skeleton: sim %v, runtime %v", want.Skeleton, got.Skeleton)
	}
	if want.Meter.Messages > 0 || got.Meter.Messages > 0 {
		if want.Meter != got.Meter {
			return fmt.Errorf("wire meter: sim %+v, runtime %+v", want.Meter, got.Meter)
		}
	}
	return nil
}

// NamedSchedule is one entry of the E1–E16 schedule suite.
type NamedSchedule struct {
	// Name identifies the experiment family the schedule is drawn from.
	Name string
	// Spec is ready to Execute (Adversary, Proposals, Opts set).
	Spec sim.Spec
}

// ScheduleSuite returns one representative schedule per experiment
// family E1–E16 (DESIGN.md §3), parameterized by n where the family
// allows it (fixed-size constructions like Figure 1 and the E10 witness
// keep their intrinsic n). It is the corpus the differential harness
// replays: if the runtime diverges from the simulator anywhere, it
// should diverge here.
func ScheduleSuite(n int, seed int64) []NamedSchedule {
	rng := rand.New(rand.NewSource(seed))
	if n < 4 {
		n = 4
	}
	k := n / 2
	if k < 2 {
		k = 2
	}
	crashRun, _ := adversary.RandomCrashes(n, (n-1)/3, 3, rng)
	suite := []NamedSchedule{
		{"E1-figure1", sim.Spec{Adversary: adversary.Figure1(), Proposals: sim.SeqProposals(6)}},
		{"E2-rooted-skeleton", spec(adversary.RandomSources(n, 1+rng.Intn(n), n/2, 0.25, rng))},
		{"E3-lowerbound", spec(adversary.LowerBound(n, k))},
		{"E4-noisy-sources", spec(adversary.RandomSources(n, 1+rng.Intn(3), 2*n, 0.3, rng))},
		{"E5-metered", metered(adversary.RandomSources(n, 1+rng.Intn(3), n/2, 0.3, rng))},
		{"E6-crashes", spec(crashRun)},
		{"E7-single-source", spec(adversary.RandomSingleSource(n, rng.Intn(n), 0.2, 0.2, rng))},
		{"E8-eventual-isolation", spec(adversary.Eventual(adversary.Complete(n), n/2))},
		{"E9-merge-own-graph", withOpts(adversary.RandomSources(n, 2, n/2, 0.25, rng), core.Options{MergeOwnGraph: true})},
		{"E9-purge-2n", withOpts(adversary.RandomSources(n, 2, n/2, 0.25, rng), core.Options{PurgeWindow: 2 * n})},
		{"E10-witness", sim.Spec{Adversary: adversary.ConsensusViolation(), Proposals: adversary.ConsensusViolationProposals()}},
		{"E10-witness-repaired", sim.Spec{
			Adversary: adversary.ConsensusViolation(),
			Proposals: adversary.ConsensusViolationProposals(),
			Opts:      core.Options{ConservativeDecide: true},
		}},
		{"E11-churn", spec(adversary.NewChurn(adversary.Complete(n).Base(), 0.15, rng.Int63()))},
		{"E12-mobile", spec(adversary.NewMobileRoundRobin(n, 1, n, rng.Int63()))},
		{"E13-tinterval", spec(adversary.NewTInterval(n, 4, 4*n, 3, rng.Int63()))},
		{"E14-partition-merge", spec(adversary.NewPartitionMerge(n, min(4, n), 2, rng.Int63()))},
		{"E15-vertex-stable-root", spec(adversary.NewVertexStableRoot(n, max(1, n/4), 0.3, rng.Int63()))},
		{"E16-scaling-sources", spec(adversary.RandomSources(n, 1+rng.Intn(4), n, 0.2, rng))},
	}
	return suite
}

func spec(adv rounds.Adversary) sim.Spec {
	return sim.Spec{Adversary: adv, Proposals: sim.SeqProposals(adv.N())}
}

func metered(adv rounds.Adversary) sim.Spec {
	s := spec(adv)
	s.MeterMessages = true
	return s
}

func withOpts(adv rounds.Adversary, opts core.Options) sim.Spec {
	s := spec(adv)
	s.Opts = opts
	return s
}
