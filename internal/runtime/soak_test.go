package runtime

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/sim"
	"kset/internal/transport"
)

// TestLossReplayNightlySoak is the long-budget lossy-UDP battery the
// nightly workflow runs (KSET_NIGHTLY=1): many seeds and mesh shapes
// under sustained 10% injected frame loss COMBINED with real
// kernel-buffer pressure — the sockets get the smallest buffers the
// kernel will grant, so bursts overflow and the wire genuinely drops
// datagrams on its own, beyond the injected schedule. Every run must
// survive the full loss-replay verification (the live run equals the
// lockstep simulator on the realized heard-sets, bit for bit) with
// zero k-bound violations; across the whole soak the network must
// actually have lost traffic, or the battery proved nothing.
func TestLossReplayNightlySoak(t *testing.T) {
	if os.Getenv("KSET_NIGHTLY") == "" {
		t.Skip("nightly lossy-UDP soak; set KSET_NIGHTLY=1 to run")
	}
	totalLost := 0
	for _, n := range []int{6, 8, 12} {
		for _, nodes := range []int{0, 2} {
			for seed := int64(1); seed <= 8; seed++ {
				rng := rand.New(rand.NewSource(seed + int64(100*n+nodes)))
				spec := sim.Spec{
					Adversary: adversary.RandomSources(n, 1+rng.Intn(3), n/2, 0.25, rng),
					Proposals: sim.SeqProposals(n),
					Opts:      core.Options{ConservativeDecide: true},
					MaxRounds: 40,
				}
				rep, err := LossReplay(spec, LossReplayOpts{
					Nodes: nodes,
					UDP: transport.UDPOpts{
						RoundTimeout: 15 * time.Millisecond,
						Grace:        2 * time.Millisecond,
						SocketBuffer: 1 << 12, // kernel clamps up to its floor; small enough to overflow under bursts
					},
					Loss:     0.10,
					LossSeed: seed,
				})
				if err != nil {
					t.Errorf("n=%d nodes=%d seed=%d: %v", n, nodes, seed, err)
					continue
				}
				totalLost += rep.LostLinks
				if !rep.KBound {
					t.Errorf("n=%d nodes=%d seed=%d: k-bound violation: %d distinct decisions, realized MinK %d",
						n, nodes, seed, rep.Distinct, rep.Replay.MinK)
				}
			}
		}
	}
	if totalLost == 0 {
		t.Error("soak lost no traffic anywhere: loss injection or buffer pressure is not working")
	}
}
