package runtime

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kset/internal/adversary"
	"kset/internal/rounds"
	"kset/internal/runfile"
)

// TestDifferentialSuiteInProc replays the full E1–E16 schedule suite on
// the distributed runtime over the in-process transport and requires
// outcome-for-outcome equality with the simulator. One n also runs with
// jittered link delays: timing skew must not leak into decisions.
func TestDifferentialSuiteInProc(t *testing.T) {
	ns := []int{4, 8, 16}
	if testing.Short() {
		ns = []int{4, 8}
	}
	for _, n := range ns {
		for _, sched := range ScheduleSuite(n, int64(1000+n)) {
			opts := DiffOpts{}
			if n == 8 {
				opts.Jitter = 100 * time.Microsecond
				opts.JitterSeed = int64(n)
			}
			if err := Diff(sched.Spec, opts); err != nil {
				t.Errorf("n=%d %s: %v", n, sched.Name, err)
			}
		}
	}
}

// TestDifferentialSuiteN128 replays the full schedule suite at n = 128
// on the distributed runtime over the in-process transport — 128
// process goroutines per run, every E1–E16 family — and requires exact
// outcome equality with the simulator. This is the scale pin: the
// runtime's control plane, codec sharing, and transport windowing must
// not degrade into divergence (or deadlock) an order of magnitude above
// the everyday test sizes. Rounds are capped: per-round cost at this n
// is dominated by the O(n^4) knowledge-graph merges (~0.4s/round on one
// core once knowledge saturates), so full-length decided runs belong to
// benchmarks, not the default test budget — twelve rounds already cross
// every multi-word bitset path, the shared-decode plane, and the
// transport window machinery at full width.
func TestDifferentialSuiteN128(t *testing.T) {
	if testing.Short() {
		t.Skip("n=128 differential suite exceeds the short-test budget")
	}
	const n = 128
	for _, sched := range ScheduleSuite(n, int64(1000+n)) {
		sched.Spec.MaxRounds = 12
		if err := Diff(sched.Spec, DiffOpts{}); err != nil {
			t.Errorf("n=%d %s: %v", n, sched.Name, err)
		}
	}
}

// TestDifferentialPipelined replays the suite with RunToCompletion set:
// no StopWhen predicate, so the runtime takes the pipelined send path
// (round r+1's broadcast precedes the round-r report). Every decision,
// decision round, and skeleton measurement must still match the
// lockstep simulator exactly, on both transports and with coalesced
// multi-process mesh nodes.
func TestDifferentialPipelined(t *testing.T) {
	n := 6
	for _, sched := range ScheduleSuite(n, 77) {
		sched.Spec.RunToCompletion = true
		for _, opts := range []DiffOpts{
			{},
			{TCP: true},
			{TCP: true, TCPNodes: 2},
		} {
			if err := Diff(sched.Spec, opts); err != nil {
				t.Errorf("%s (tcp=%v nodes=%d): %v", sched.Name, opts.TCP, opts.TCPNodes, err)
			}
		}
	}
}

// TestDifferentialSuiteTCP replays the full suite over real TCP
// loopback sockets with jittered delays — both fully distributed (one
// node per process) and grouped onto 3 mesh nodes, where all of a
// round's messages between two nodes travel as one coalesced frame.
func TestDifferentialSuiteTCP(t *testing.T) {
	n := 6
	for _, sched := range ScheduleSuite(n, 2026) {
		for _, nodes := range []int{0, 3} {
			opts := DiffOpts{TCP: true, TCPNodes: nodes, Jitter: 200 * time.Microsecond, JitterSeed: 7}
			if err := Diff(sched.Spec, opts); err != nil {
				t.Errorf("n=%d nodes=%d %s: %v", n, nodes, sched.Name, err)
			}
		}
	}
}

// TestDifferentialNightly is the long-budget harness the nightly CI
// workflow runs (KSET_NIGHTLY=1): the full suite at n up to 32, several
// seeds, both transports. On divergence it writes the materialized
// schedule as a .ksr runfile into KSET_ARTIFACT_DIR, so the workflow
// can upload a replayable counterexample.
func TestDifferentialNightly(t *testing.T) {
	if os.Getenv("KSET_NIGHTLY") == "" {
		t.Skip("nightly differential harness; set KSET_NIGHTLY=1 to run")
	}
	artifactDir := os.Getenv("KSET_ARTIFACT_DIR")
	for _, n := range []int{8, 16, 24, 32} {
		for seed := int64(1); seed <= 3; seed++ {
			for _, sched := range ScheduleSuite(n, seed) {
				configs := []DiffOpts{
					{},
					{Jitter: 150 * time.Microsecond, JitterSeed: seed},
				}
				if n <= 16 {
					configs = append(configs,
						DiffOpts{TCP: true, JitterSeed: seed},
						DiffOpts{TCP: true, TCPNodes: 4, JitterSeed: seed})
				}
				for i, opts := range configs {
					err := Diff(sched.Spec, opts)
					if err == nil {
						continue
					}
					t.Errorf("n=%d seed=%d %s (config %d): %v", n, seed, sched.Name, i, err)
					if artifactDir != "" {
						writeDivergenceArtifact(t, artifactDir, sched, n, seed, err)
					}
				}
			}
		}
	}
}

// writeDivergenceArtifact materializes the diverging schedule and drops
// it as a runfile plus a human-readable report next to it.
func writeDivergenceArtifact(t *testing.T, dir string, sched NamedSchedule, n int, seed int64, derr error) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	adv := sched.Spec.Adversary
	maxRounds := sched.Spec.MaxRounds
	if maxRounds == 0 {
		if s, ok := adv.(rounds.Stabilizer); ok {
			maxRounds = s.StabilizationRound() + 2*adv.N() + 5
		} else {
			maxRounds = 12 * adv.N()
		}
	}
	base := filepath.Join(dir, fmt.Sprintf("diff-%s-n%d-seed%d", sched.Name, n, seed))
	if err := runfile.WriteFile(base+".ksr", adversary.MaterializeRun(adv, maxRounds)); err != nil {
		t.Logf("write runfile artifact: %v", err)
	}
	report := fmt.Sprintf("schedule %s (n=%d, seed=%d)\nproposals %v\nopts %+v\ndivergence: %v\n",
		sched.Name, n, seed, sched.Spec.Proposals, sched.Spec.Opts, derr)
	if err := os.WriteFile(base+".txt", []byte(report), 0o644); err != nil {
		t.Logf("write report artifact: %v", err)
	}
}

// TestScheduleSuiteCoversE1ThroughE16 pins that the differential corpus
// really spans every experiment family.
func TestScheduleSuiteCoversE1ThroughE16(t *testing.T) {
	suite := ScheduleSuite(8, 1)
	seen := map[string]bool{}
	for _, s := range suite {
		fam := strings.SplitN(s.Name, "-", 2)[0]
		seen[fam] = true
		if s.Spec.Adversary == nil {
			t.Fatalf("%s: nil adversary", s.Name)
		}
		if len(s.Spec.Proposals) != s.Spec.Adversary.N() {
			t.Fatalf("%s: %d proposals for n=%d", s.Name, len(s.Spec.Proposals), s.Spec.Adversary.N())
		}
	}
	for e := 1; e <= 16; e++ {
		if !seen[fmt.Sprintf("E%d", e)] {
			t.Errorf("suite has no schedule for experiment family E%d", e)
		}
	}
}
