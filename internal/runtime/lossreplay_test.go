package runtime

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/sim"
	"kset/internal/transport"
)

// quietUDP is the UDP shape for loss-replay tests that want NO real
// loss: a deadline far beyond any scheduler stall, so absence closure
// fires only when a test injects loss deliberately.
func quietUDP() transport.UDPOpts {
	return transport.UDPOpts{RoundTimeout: 5 * time.Second, Grace: 10 * time.Millisecond}
}

// lossyUDP is the shape for tests that inject loss: a deadline tight
// enough that lossy rounds close quickly. A scheduler stall beyond the
// deadline just manifests as extra loss — which the harness tolerates
// by construction, so tightness cannot make these tests flaky.
func lossyUDP() transport.UDPOpts {
	return transport.UDPOpts{RoundTimeout: 15 * time.Millisecond, Grace: 2 * time.Millisecond}
}

// TestLossReplayLosslessEqualsSchedule runs suite schedules over a
// quiet UDP mesh: nothing is lost, so the realized heard-sets equal the
// scheduled ones and the loss-replay must verify with zero lost links.
func TestLossReplayLosslessEqualsSchedule(t *testing.T) {
	for _, sched := range ScheduleSuite(6, 88) {
		// Families with fixed small n keep it; the meter adapts.
		rep, err := LossReplay(sched.Spec, LossReplayOpts{UDP: quietUDP()})
		if err != nil {
			t.Errorf("%s: %v", sched.Name, err)
			continue
		}
		if rep.LostLinks != 0 {
			t.Errorf("%s: quiet loopback lost %d scheduled deliveries", sched.Name, rep.LostLinks)
		}
		if rep.Live.Rounds != rep.Replay.Rounds {
			t.Errorf("%s: live %d rounds, replay %d", sched.Name, rep.Live.Rounds, rep.Replay.Rounds)
		}
		// E10-witness runs the published guard against the schedule built
		// to break it; the harness must *detect* the violation. Every
		// other suite entry must respect the bound.
		if wantKBound := sched.Name != "E10-witness"; rep.KBound != wantKBound {
			t.Errorf("%s: KBound = %v (distinct %d, MinK %d), want %v",
				sched.Name, rep.KBound, rep.Distinct, rep.Replay.MinK, wantKBound)
		}
	}
}

// TestLossReplayBoundedInjectedLoss kills 30% of frames during the
// first six rounds, then lets the network go quiet: the realized run
// stabilizes, processes decide, and the replay must reproduce the
// decisions bit for bit with the k-bound intact.
func TestLossReplayBoundedInjectedLoss(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + int(seed%3)
		spec := sim.Spec{
			Adversary: adversary.RandomSources(n, 1+rng.Intn(3), n/2, 0.3, rng),
			Proposals: sim.SeqProposals(n),
			Opts:      core.Options{ConservativeDecide: true},
		}
		inject := transport.FrameLoss(0.3, seed)
		u := quietUDP()
		u.RoundTimeout = 15 * time.Millisecond
		u.DropDatagram = func(r, from, to, frag int) bool { return r <= 6 && inject(r, from, to, frag) }
		rep, err := LossReplay(spec, LossReplayOpts{UDP: u})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.LostLinks == 0 {
			t.Errorf("seed %d: 30%% injected loss lost nothing", seed)
		}
		decided := 0
		for _, d := range rep.Live.Decided {
			if d {
				decided++
			}
		}
		if decided != n {
			t.Errorf("seed %d: only %d/%d processes decided after loss stopped", seed, decided, n)
		}
		if !rep.KBound {
			t.Errorf("seed %d: %d distinct decisions exceed realized MinK %d", seed, rep.Distinct, rep.Replay.MinK)
		}
	}
}

// TestLossReplaySustainedTenPercent is the acceptance shape: 10% i.i.d.
// frame loss for the whole run (nothing ever stabilizes for sure), over
// the fully distributed mesh and a grouped one. Whatever the realized
// run did — decided or not — it must equal its own replay and respect
// the k-bound the realized skeleton grants.
func TestLossReplaySustainedTenPercent(t *testing.T) {
	for _, nodes := range []int{0, 2} {
		for seed := int64(10); seed <= 12; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 6
			spec := sim.Spec{
				Adversary: adversary.RandomSources(n, 2, n/2, 0.25, rng),
				Proposals: sim.SeqProposals(n),
				Opts:      core.Options{ConservativeDecide: true},
				MaxRounds: 30,
			}
			rep, err := LossReplay(spec, LossReplayOpts{
				Nodes: nodes,
				UDP:   lossyUDP(),
				Loss:  0.10, LossSeed: seed,
			})
			if err != nil {
				t.Fatalf("nodes=%d seed=%d: %v", nodes, seed, err)
			}
			if rep.LostLinks == 0 {
				t.Errorf("nodes=%d seed=%d: sustained 10%% loss lost nothing", nodes, seed)
			}
			if !rep.KBound {
				t.Errorf("nodes=%d seed=%d: %d distinct decisions exceed realized MinK %d",
					nodes, seed, rep.Distinct, rep.Replay.MinK)
			}
		}
	}
}

// TestLossReplayPipelined sets RunToCompletion, driving the runtime's
// pipelined send path (round r+1 broadcast before the round-r report)
// over the lossy mesh: the bounded-lookahead window and the absence
// closure must compose, and the replay must still match.
func TestLossReplayPipelined(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 5
	spec := sim.Spec{
		Adversary:       adversary.RandomSources(n, 2, n/2, 0.3, rng),
		Proposals:       sim.SeqProposals(n),
		Opts:            core.Options{ConservativeDecide: true},
		MaxRounds:       25,
		RunToCompletion: true,
	}
	rep, err := LossReplay(spec, LossReplayOpts{UDP: lossyUDP(), Loss: 0.08, LossSeed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Live.Rounds != 25 {
		t.Fatalf("pipelined run executed %d rounds, want 25", rep.Live.Rounds)
	}
}

// TestLossReplayOwnsMeter pins the misuse guard: the harness installs
// its own heard meter, so a caller-supplied one is rejected instead of
// silently ignored.
func TestLossReplayOwnsMeter(t *testing.T) {
	spec := sim.Spec{Adversary: adversary.Complete(4), Proposals: sim.SeqProposals(4)}
	u := quietUDP()
	u.Meter = transport.NewHeardMeter(4)
	_, err := LossReplay(spec, LossReplayOpts{UDP: u})
	if err == nil || !strings.Contains(err.Error(), "Meter") {
		t.Fatalf("caller-supplied meter accepted: %v", err)
	}
}
