package baseline

import (
	"math/rand"
	"testing"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/rounds"
	"kset/internal/trace"
)

func seqProposals(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

func runFloodMin(t *testing.T, adv rounds.Adversary, f, k, maxRounds int) *trace.Outcome {
	t.Helper()
	n := adv.N()
	res, err := rounds.RunSequential(rounds.Config{
		Adversary:  adv,
		NewProcess: NewFloodMinFactory(seqProposals(n), f, k),
		MaxRounds:  maxRounds,
		StopWhen:   rounds.AllDecided,
	})
	if err != nil {
		t.Fatal(err)
	}
	oc, err := trace.Collect(res)
	if err != nil {
		t.Fatal(err)
	}
	return oc
}

func TestFloodMinRoundsFormula(t *testing.T) {
	cases := []struct{ f, k, want int }{
		{0, 1, 1}, {1, 1, 2}, {3, 1, 4},
		{3, 2, 2}, {4, 2, 3}, {5, 3, 2}, {6, 3, 3},
	}
	for _, c := range cases {
		fm := NewFloodMin(0, c.f, c.k)
		if got := fm.Rounds(); got != c.want {
			t.Errorf("Rounds(f=%d,k=%d) = %d, want %d", c.f, c.k, got, c.want)
		}
	}
}

func TestFloodMinSynchronousConsensus(t *testing.T) {
	// No failures: everyone decides the global minimum after 1 round.
	oc := runFloodMin(t, adversary.Complete(5), 0, 1, 10)
	if err := oc.Check(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if oc.Decisions[i] != 1 || oc.DecideRounds[i] != 1 {
			t.Fatalf("p%d decided (%d, %d)", i+1, oc.Decisions[i], oc.DecideRounds[i])
		}
	}
}

func TestFloodMinToleratesCrashes(t *testing.T) {
	// The classical guarantee: with at most f crashes, ⌊f/k⌋+1 rounds
	// suffice for k-set agreement among the surviving processes. (The
	// paper's model additionally requires crashed-but-internally-correct
	// processes to decide; FloodMin makes no promise about them, which is
	// part of experiment E6's point.)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6)
		f := rng.Intn(n)
		k := 1 + rng.Intn(3)
		adv, sched := adversary.RandomCrashes(n, f, NewFloodMin(0, f, k).Rounds(), rng)
		oc := runFloodMin(t, adv, f, k, 20)
		if err := oc.CheckTermination(); err != nil {
			t.Fatalf("n=%d f=%d k=%d: %v", n, f, k, err)
		}
		if err := oc.CheckValidity(); err != nil {
			t.Fatalf("n=%d f=%d k=%d: %v", n, f, k, err)
		}
		survivors := oc.DistinctDecisionsAmong(func(i int) bool { return sched.Rounds[i] == 0 })
		if len(survivors) > k {
			t.Fatalf("n=%d f=%d k=%d: %d distinct survivor decisions %v",
				n, f, k, len(survivors), survivors)
		}
	}
}

func TestFloodSetConsensusUnderCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(5)
		f := rng.Intn(n)
		adv, sched := adversary.RandomCrashes(n, f, f+1, rng)
		res, err := rounds.RunSequential(rounds.Config{
			Adversary:  adv,
			NewProcess: NewFloodSetFactory(seqProposals(n), f),
			MaxRounds:  f + 3,
			StopWhen:   rounds.AllDecided,
		})
		if err != nil {
			t.Fatal(err)
		}
		oc, err := trace.Collect(res)
		if err != nil {
			t.Fatal(err)
		}
		survivors := oc.DistinctDecisionsAmong(func(i int) bool { return sched.Rounds[i] == 0 })
		if len(survivors) > 1 {
			t.Fatalf("n=%d f=%d: survivors decided %v", n, f, survivors)
		}
	}
}

func TestCrashedProcessCanDivergeUnderFloodMin(t *testing.T) {
	// Documented behavioral difference with Algorithm 1: a process that
	// crashes in round 1 without delivering its (globally minimal) value
	// keeps it forever, because it still hears everyone else but nobody
	// hears it. FloodMin lets it decide that private value; Algorithm 1
	// on the same run stays within the skeleton's MinK bound for all
	// processes, crashed ones included.
	n := 4
	sched := adversary.NewCrashSchedule(n).Crash(0, 1) // p1 silent from round 1
	adv := adversary.Crashes(n, sched)
	oc := runFloodMin(t, adv, 1, 1, 10) // f=1, k=1: 2 rounds
	if got := oc.DistinctDecisions(); len(got) != 2 {
		t.Fatalf("expected crashed p1 to diverge, decisions %v", got)
	}
	survivors := oc.DistinctDecisionsAmong(func(i int) bool { return i != 0 })
	if len(survivors) != 1 {
		t.Fatalf("survivors should agree, got %v", survivors)
	}

	res, err := rounds.RunSequential(rounds.Config{
		Adversary:  adv,
		NewProcess: core.NewFactory(seqProposals(n), core.Options{}),
		MaxRounds:  8 * n,
		StopWhen:   rounds.AllDecided,
	})
	if err != nil {
		t.Fatal(err)
	}
	oc2, err := trace.Collect(res)
	if err != nil {
		t.Fatal(err)
	}
	// The skeleton has two root components ({p1} and the survivor
	// clique), so MinK = 2 and Algorithm 1 guarantees <= 2 values for
	// ALL processes — a guarantee FloodMin cannot make for any k here.
	if err := oc2.Check(2); err != nil {
		t.Fatal(err)
	}
}

func TestFloodMinUnsafeUnderPsrcsRuns(t *testing.T) {
	// The point of experiment E6: FloodMin's f-crash assumption does not
	// cover the message loss Psrcs(k) permits. On the Theorem 2
	// lower-bound run, downstream processes hear only themselves and the
	// source s; when their own proposals are smaller than s's, each keeps
	// its own minimum and FloodMin decides n distinct values — far more
	// than k — while Algorithm 1 on the identical run stays at k.
	n, k := 6, 3
	adv := adversary.LowerBound(n, k)
	props := []int64{60, 50, 40, 30, 20, 10} // descending: L={p1,p2}, s=p3
	res, err := rounds.RunSequential(rounds.Config{
		Adversary:  adv,
		NewProcess: NewFloodMinFactory(props, k, k),
		MaxRounds:  10,
		StopWhen:   rounds.AllDecided,
	})
	if err != nil {
		t.Fatal(err)
	}
	oc, err := trace.Collect(res)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(oc.DistinctDecisions()); got != n {
		t.Fatalf("FloodMin should decide n=%d distinct values here, got %d (%v)",
			n, got, oc.DistinctDecisions())
	}
	if err := oc.CheckKAgreement(k); err == nil {
		t.Fatal("expected FloodMin to violate 3-agreement")
	}
	// It still terminates and stays valid — only agreement breaks.
	if err := oc.CheckTermination(); err != nil {
		t.Fatal(err)
	}
	if err := oc.CheckValidity(); err != nil {
		t.Fatal(err)
	}

	// Algorithm 1 on the identical run and proposals: exactly k values.
	res2, err := rounds.RunSequential(rounds.Config{
		Adversary:  adv,
		NewProcess: core.NewFactory(props, core.Options{}),
		MaxRounds:  40,
		StopWhen:   rounds.AllDecided,
	})
	if err != nil {
		t.Fatal(err)
	}
	oc2, err := trace.Collect(res2)
	if err != nil {
		t.Fatal(err)
	}
	if err := oc2.Check(k); err != nil {
		t.Fatalf("Algorithm 1 on the same run: %v", err)
	}
	if got := len(oc2.DistinctDecisions()); got != k {
		t.Fatalf("Algorithm 1 should realize exactly k=%d values, got %d", k, got)
	}
}

func TestFloodMinIrrevocable(t *testing.T) {
	fm := NewFloodMin(5, 0, 1)
	fm.Init(0, 2)
	recv := []any{int64(5), int64(9)}
	fm.Transition(1, recv)
	if !fm.Decided() {
		t.Fatal("should decide at round 1 with f=0")
	}
	v, r := fm.Decision()
	if v != 5 || r != 1 {
		t.Fatalf("decision (%d, %d)", v, r)
	}
	// Later smaller values must not change the decision.
	fm.Transition(2, []any{int64(1), nil})
	if got, _ := fm.Decision(); got != 5 {
		t.Fatalf("decision changed to %d", got)
	}
}

func TestFloodMinValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewFloodMin(0, -1, 1) },
		func() { NewFloodMin(0, 0, 0) },
		func() { fm := NewFloodMin(0, 0, 1); fm.Decision() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFloodMinProposal(t *testing.T) {
	fm := NewFloodMin(77, 1, 2)
	fm.Init(0, 3)
	if fm.Proposal() != 77 {
		t.Fatal("Proposal wrong")
	}
}
