package baseline

import (
	"math/rand"
	"testing"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/rounds"
	"kset/internal/sim"
)

// This file is the differential battery: FloodMin/FloodSet and
// OneThirdRule run against Algorithm 1 on IDENTICAL fuzzed schedules,
// and every algorithm is held to the guarantee its own model grants on
// that schedule family. Cross-algorithm value equality is asserted
// exactly where it is provable:
//
//   - failure-free synchronous runs: all three algorithms decide the
//     global minimum (distinct proposals make OneThirdRule's round-1
//     frequency tie break to the minimum);
//   - crash schedules: Algorithm 1's line-27 estimate and FloodMin's
//     min evolve identically (received-from sets are prefix-closed under
//     crashes, so PT equals the per-round heard set), hence FloodSet and
//     Algorithm 1 decide the same value at every process;
//   - lossy Psrcs(1) schedules: only Algorithm 1 still solves consensus
//     — FloodMin is unsafe under message loss and OneThirdRule need not
//     terminate (experiment E6), so they are exempt by design there.
func TestDifferentialConsensusRegime(t *testing.T) {
	const n, trials = 6, 25

	type familyResult struct {
		alg1, floodSet, otr *sim.Outcome
		sched               *adversary.CrashSchedule // nil outside the crash family
	}

	families := []struct {
		name string
		gen  func(rng *rand.Rand) (*adversary.Run, *adversary.CrashSchedule)
		// checks receives the three outcomes on the same schedule.
		checks func(t *testing.T, res familyResult)
	}{
		{
			name: "synchronous",
			gen: func(rng *rand.Rand) (*adversary.Run, *adversary.CrashSchedule) {
				return adversary.Complete(n), nil
			},
			checks: func(t *testing.T, res familyResult) {
				for _, out := range []*sim.Outcome{res.alg1, res.floodSet, res.otr} {
					if err := out.Check(1); err != nil {
						t.Fatal(err)
					}
					if got := out.DistinctDecisions(); len(got) != 1 || got[0] != 1 {
						t.Fatalf("synchronous decision %v, want the global min 1", got)
					}
				}
			},
		},
		{
			name: "crash",
			gen: func(rng *rand.Rand) (*adversary.Run, *adversary.CrashSchedule) {
				f := 1 + rng.Intn(2)
				run, sched := adversary.RandomCrashes(n, f, 3, rng)
				return run, sched
			},
			checks: func(t *testing.T, res familyResult) {
				survives := func(i int) bool { return res.sched.Rounds[i] == 0 }
				// Algorithm 1 mirrors FloodSet's min-flood at every
				// process, crashed ones included ("internally correct":
				// they keep stepping and decide their frozen value).
				for i := 0; i < n; i++ {
					if !res.alg1.Decided[i] || !res.floodSet.Decided[i] {
						t.Fatalf("p%d undecided: alg1=%v floodset=%v",
							i+1, res.alg1.Decided[i], res.floodSet.Decided[i])
					}
					if res.alg1.Decisions[i] != res.floodSet.Decisions[i] {
						t.Fatalf("p%d: alg1 decided %d, floodset %d",
							i+1, res.alg1.Decisions[i], res.floodSet.Decisions[i])
					}
				}
				// Both reach consensus among survivors.
				for name, out := range map[string]*sim.Outcome{"alg1": res.alg1, "floodset": res.floodSet} {
					if got := out.DistinctDecisionsAmong(survives); len(got) != 1 {
						t.Fatalf("%s survivors decided %v, want one value", name, got)
					}
				}
				// OneThirdRule: with 3f < n every survivor keeps hearing
				// > 2n/3 processes; safety plus convergence give
				// consensus among survivors (its value may legitimately
				// differ from the flood-min value).
				if 3*res.sched.NumCrashes() < n {
					got := res.otr.DistinctDecisionsAmong(func(i int) bool {
						return survives(i) && res.otr.Decided[i]
					})
					undecided := 0
					for i := 0; i < n; i++ {
						if survives(i) && !res.otr.Decided[i] {
							undecided++
						}
					}
					if undecided != 0 || len(got) != 1 {
						t.Fatalf("onethirdrule survivors: %d undecided, values %v", undecided, got)
					}
					if err := res.otr.CheckValidity(); err != nil {
						t.Fatal(err)
					}
				}
			},
		},
		{
			name: "singlesource",
			gen: func(rng *rand.Rand) (*adversary.Run, *adversary.CrashSchedule) {
				return adversary.RandomSingleSource(n, rng.Intn(n+1), 0.2, 0.3, rng), nil
			},
			checks: func(t *testing.T, res familyResult) {
				// The k=1 regime: Psrcs(1) holds, so Algorithm 1 must
				// solve consensus despite the message loss.
				if err := res.alg1.Check(1); err != nil {
					t.Fatal(err)
				}
			},
		},
	}

	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(sim.CellSeed(11, trial)))
				run, sched := fam.gen(rng)
				f := 0
				if sched != nil {
					f = sched.NumCrashes()
				}

				execute := func(newProcess func(self int) rounds.Algorithm) *sim.Outcome {
					t.Helper()
					out, err := sim.Execute(sim.Spec{
						Adversary:  run,
						Proposals:  sim.SeqProposals(n),
						NewProcess: newProcess,
						Opts:       core.Options{ConservativeDecide: true},
					})
					if err != nil {
						t.Fatalf("trial %d: %v", trial, err)
					}
					return out
				}

				res := familyResult{
					sched:    sched,
					alg1:     execute(nil), // Algorithm 1 with the options above
					floodSet: execute(NewFloodSetFactory(sim.SeqProposals(n), f)),
					otr:      execute(NewOneThirdRuleFactory(sim.SeqProposals(n))),
				}
				func() {
					defer func() {
						if t.Failed() {
							t.Logf("trial %d schedule: stable %v", trial, run.Base())
						}
					}()
					fam.checks(t, res)
				}()
				if t.Failed() {
					t.Fatalf("family %s failed at trial %d", fam.name, trial)
				}
			}
		})
	}
}

// TestDifferentialFloodMinUnsafeUnderLoss pins the other side of the E6
// comparison as a differential fact: there exist Psrcs(1) schedules
// (consensus-solvable for Algorithm 1) on which FloodMin violates
// agreement — which is exactly why the lossy family above exempts it.
func TestDifferentialFloodMinUnsafeUnderLoss(t *testing.T) {
	const n = 5
	// A universal source p1 plus an isolated-value holder p2 that nobody
	// hears: FloodMin floods p1's value to deciders while p2 keeps (and
	// decides) its own smaller value. Psrcs(1) holds via p1.
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		rng := rand.New(rand.NewSource(seed))
		run := adversary.RandomSingleSource(n, rng.Intn(3), 0.1, 0.3, rng)
		out, err := sim.Execute(sim.Spec{
			Adversary:  run,
			Proposals:  sim.SeqProposals(n),
			NewProcess: NewFloodMinFactory(sim.SeqProposals(n), n-1, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.DistinctDecisions()) > 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("FloodMin never violated agreement on 20 lossy Psrcs(1) schedules; " +
			"the E6 separation should reproduce here")
	}
}
