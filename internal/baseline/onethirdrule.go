package baseline

import (
	"fmt"
	"sort"

	"kset/internal/rounds"
)

// OneThirdRule is the canonical consensus algorithm of the Heard-Of model
// (Charron-Bost & Schiper, "The Heard-Of model", Distributed Computing
// 22(1), 2009) — the framework the paper's round structure builds on.
// Per round, every process broadcasts its estimate and then:
//
//   - if it hears more than 2n/3 processes, it adopts the smallest most
//     frequent value among the received ones;
//   - if additionally more than 2n/3 of the *received* values are equal,
//     it decides that value.
//
// Safety holds in every run; liveness needs rounds in which enough
// processes hear the same large set. Under the paper's Psrcs(k)
// skeletons, heard-of sets can stay below the 2n/3 threshold forever, so
// OneThirdRule simply never terminates where Algorithm 1 does — the
// second axis (besides FloodMin's unsafety) of the E6 comparison.
type OneThirdRule struct {
	proposal int64

	self, n     int
	x           int64
	decided     bool
	decideVal   int64
	decideRound int
}

var _ rounds.Algorithm = (*OneThirdRule)(nil)
var _ rounds.Decider = (*OneThirdRule)(nil)

// NewOneThirdRule returns a process proposing the given value.
func NewOneThirdRule(proposal int64) *OneThirdRule {
	return &OneThirdRule{proposal: proposal}
}

// NewOneThirdRuleFactory adapts a proposal vector to the executor factory.
func NewOneThirdRuleFactory(proposals []int64) func(self int) rounds.Algorithm {
	return func(self int) rounds.Algorithm {
		return NewOneThirdRule(proposals[self])
	}
}

// Init implements rounds.Algorithm.
func (o *OneThirdRule) Init(self, n int) {
	o.self = self
	o.n = n
	o.x = o.proposal
}

// Send implements rounds.Algorithm.
func (o *OneThirdRule) Send(r int) any { return o.x }

// Transition implements rounds.Algorithm.
func (o *OneThirdRule) Transition(r int, recv []any) {
	counts := map[int64]int{}
	heard := 0
	for _, m := range recv {
		if m == nil {
			continue
		}
		heard++
		counts[m.(int64)]++
	}
	if 3*heard <= 2*o.n {
		return // too few heard: keep the estimate
	}
	// Adopt the smallest most frequent received value.
	type kv struct {
		v int64
		c int
	}
	var freq []kv
	for v, c := range counts {
		freq = append(freq, kv{v, c})
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].c != freq[j].c {
			return freq[i].c > freq[j].c
		}
		return freq[i].v < freq[j].v
	})
	o.x = freq[0].v
	if !o.decided && 3*freq[0].c > 2*o.n {
		o.decided = true
		o.decideVal = freq[0].v
		o.decideRound = r
	}
}

// Proposal implements rounds.Decider.
func (o *OneThirdRule) Proposal() int64 { return o.proposal }

// Decided implements rounds.Decider.
func (o *OneThirdRule) Decided() bool { return o.decided }

// Decision implements rounds.Decider.
func (o *OneThirdRule) Decision() (int64, int) {
	if !o.decided {
		panic(fmt.Sprintf("baseline: OneThirdRule p%d undecided", o.self+1))
	}
	return o.decideVal, o.decideRound
}

// Estimate returns the current estimate (for tests).
func (o *OneThirdRule) Estimate() int64 { return o.x }
