// Package baseline implements the classical synchronous k-set agreement
// and consensus algorithms the reproduction compares Algorithm 1 against
// (experiment E6):
//
//   - FloodMin — the ⌊f/k⌋+1-round k-set agreement algorithm for the
//     synchronous model with at most f crash failures (Chaudhuri's line of
//     work; see also Lynch, "Distributed Algorithms", ch. 7). It is correct
//     under crash failures but has no defense against the message loss
//     allowed by Psrcs(k): the experiments show it violating k-agreement on
//     runs where Algorithm 1 stays safe.
//
//   - FloodSet — the f+1-round consensus variant (k = 1).
//
// Both implement rounds.Algorithm and rounds.Decider, so they run under
// the exact same executors and adversaries as Algorithm 1.
package baseline

import (
	"fmt"

	"kset/internal/rounds"
)

// FloodMin is one process of the FloodMin algorithm. Unlike Algorithm 1
// it must know the failure budget f and the target k in advance: it
// decides unconditionally at the end of round ⌊f/k⌋ + 1.
type FloodMin struct {
	proposal int64
	f, k     int

	self, n     int
	min         int64
	decided     bool
	decideRound int
	rounds      int
}

var _ rounds.Algorithm = (*FloodMin)(nil)
var _ rounds.Decider = (*FloodMin)(nil)

// NewFloodMin returns a FloodMin process proposing the given value,
// tolerating f crashes, and solving k-set agreement.
func NewFloodMin(proposal int64, f, k int) *FloodMin {
	if f < 0 || k < 1 {
		panic(fmt.Sprintf("baseline: invalid FloodMin parameters f=%d k=%d", f, k))
	}
	return &FloodMin{proposal: proposal, f: f, k: k}
}

// NewFloodMinFactory adapts a proposal vector to the executor factory.
func NewFloodMinFactory(proposals []int64, f, k int) func(self int) rounds.Algorithm {
	return func(self int) rounds.Algorithm {
		return NewFloodMin(proposals[self], f, k)
	}
}

// Rounds returns the number of rounds FloodMin runs before deciding:
// ⌊f/k⌋ + 1.
func (fm *FloodMin) Rounds() int { return fm.f/fm.k + 1 }

// Init implements rounds.Algorithm.
func (fm *FloodMin) Init(self, n int) {
	fm.self = self
	fm.n = n
	fm.min = fm.proposal
	fm.rounds = fm.Rounds()
}

// Send implements rounds.Algorithm: broadcast the smallest value seen.
// After deciding, FloodMin keeps gossiping its decision (harmless, and it
// keeps the executor uniform).
func (fm *FloodMin) Send(r int) any { return fm.min }

// Transition implements rounds.Algorithm.
func (fm *FloodMin) Transition(r int, recv []any) {
	for _, msg := range recv {
		if msg == nil {
			continue
		}
		if v := msg.(int64); v < fm.min && !fm.decided {
			fm.min = v
		}
	}
	if !fm.decided && r >= fm.rounds {
		fm.decided = true
		fm.decideRound = r
	}
}

// Proposal implements rounds.Decider.
func (fm *FloodMin) Proposal() int64 { return fm.proposal }

// Decided implements rounds.Decider.
func (fm *FloodMin) Decided() bool { return fm.decided }

// Decision implements rounds.Decider.
func (fm *FloodMin) Decision() (int64, int) {
	if !fm.decided {
		panic("baseline: FloodMin.Decision before deciding")
	}
	return fm.min, fm.decideRound
}

// FloodSet is the f+1-round consensus algorithm: FloodMin with k = 1.
type FloodSet struct {
	FloodMin
}

// NewFloodSet returns a FloodSet process proposing the given value and
// tolerating f crashes.
func NewFloodSet(proposal int64, f int) *FloodSet {
	return &FloodSet{FloodMin: *NewFloodMin(proposal, f, 1)}
}

// NewFloodSetFactory adapts a proposal vector to the executor factory.
func NewFloodSetFactory(proposals []int64, f int) func(self int) rounds.Algorithm {
	return func(self int) rounds.Algorithm {
		return NewFloodSet(proposals[self], f)
	}
}
