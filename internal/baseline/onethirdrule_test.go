package baseline

import (
	"math/rand"
	"testing"

	"kset/internal/adversary"
	"kset/internal/rounds"
	"kset/internal/trace"
)

func runOTR(t *testing.T, adv rounds.Adversary, props []int64, maxRounds int) *trace.Outcome {
	t.Helper()
	res, err := rounds.RunSequential(rounds.Config{
		Adversary:  adv,
		NewProcess: NewOneThirdRuleFactory(props),
		MaxRounds:  maxRounds,
		StopWhen:   rounds.AllDecided,
	})
	if err != nil {
		t.Fatal(err)
	}
	oc, err := trace.Collect(res)
	if err != nil {
		t.Fatal(err)
	}
	return oc
}

func TestOneThirdRuleSynchronousConsensus(t *testing.T) {
	// Complete graph: everyone hears all n values, the smallest most
	// frequent value is the global minimum of... all values are
	// distinct, so the tie-break picks the smallest; decided as soon as
	// >2n/3 received values agree — after round 1 everyone holds the
	// minimum, so round 2 decides.
	oc := runOTR(t, adversary.Complete(6), seqProposals(6), 10)
	if err := oc.Check(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if oc.Decisions[i] != 1 {
			t.Fatalf("p%d decided %d, want 1", i+1, oc.Decisions[i])
		}
	}
}

func TestOneThirdRuleUnanimousDecidesFast(t *testing.T) {
	props := []int64{7, 7, 7, 7}
	oc := runOTR(t, adversary.Complete(4), props, 5)
	for i := range props {
		if !oc.Decided[i] || oc.Decisions[i] != 7 || oc.DecideRounds[i] != 1 {
			t.Fatalf("p%d: decided=%v val=%d round=%d",
				i+1, oc.Decided[i], oc.Decisions[i], oc.DecideRounds[i])
		}
	}
}

func TestOneThirdRuleSafeUnderAnyRun(t *testing.T) {
	// Safety (agreement + validity among deciders) must hold whatever
	// the communication: run random adversaries and check any decisions
	// that appear.
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(6)
		adv := adversary.RandomSources(n, 1+rng.Intn(3), rng.Intn(4), 0.4, rng)
		res, err := rounds.RunSequential(rounds.Config{
			Adversary:  adv,
			NewProcess: NewOneThirdRuleFactory(seqProposals(n)),
			MaxRounds:  4 * n,
		})
		if err != nil {
			t.Fatal(err)
		}
		oc, err := trace.Collect(res)
		if err != nil {
			t.Fatal(err)
		}
		if err := oc.CheckValidity(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := len(oc.DistinctDecisions()); got > 1 {
			t.Fatalf("n=%d: OneThirdRule agreement violated: %v",
				n, oc.DistinctDecisions())
		}
	}
}

func TestOneThirdRuleStallsOnSparsePsrcsRuns(t *testing.T) {
	// The E6 liveness axis: the Theorem 2 run satisfies Psrcs(3), and
	// Algorithm 1 terminates there, but heard-of sets have size <= 2,
	// far below the 2n/3 threshold — OneThirdRule never decides.
	n := 6
	adv := adversary.LowerBound(n, 3)
	res, err := rounds.RunSequential(rounds.Config{
		Adversary:  adv,
		NewProcess: NewOneThirdRuleFactory(seqProposals(n)),
		MaxRounds:  20 * n,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Procs {
		if p.(*OneThirdRule).Decided() {
			t.Fatalf("p%d decided despite sub-threshold heard-of sets", i+1)
		}
	}
}

func TestOneThirdRuleKeepsEstimateBelowThreshold(t *testing.T) {
	o := NewOneThirdRule(9)
	o.Init(0, 6)
	// Hears only 2 of 6 (<= 2n/3 = 4): estimate unchanged.
	recv := make([]any, 6)
	recv[0] = int64(9)
	recv[1] = int64(1)
	o.Transition(1, recv)
	if o.Estimate() != 9 {
		t.Fatalf("estimate changed to %d below threshold", o.Estimate())
	}
	// Hears 5 of 6 with majority value 1: adopts it.
	for i := 0; i < 5; i++ {
		recv[i] = int64(1)
	}
	o.Transition(2, recv)
	if o.Estimate() != 1 {
		t.Fatalf("estimate = %d, want 1", o.Estimate())
	}
	if !o.Decided() {
		t.Fatal("5 equal values of 6 exceed 2n/3: should decide")
	}
	if v, r := o.Decision(); v != 1 || r != 2 {
		t.Fatalf("decision (%d, %d)", v, r)
	}
}

func TestOneThirdRuleDecisionPanicsUndecided(t *testing.T) {
	o := NewOneThirdRule(1)
	o.Init(0, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.Decision()
}

func TestOneThirdRuleTieBreakDeterministic(t *testing.T) {
	// Two values with equal counts above threshold: smallest wins.
	o := NewOneThirdRule(5)
	o.Init(0, 4)
	recv := []any{int64(3), int64(3), int64(2), int64(2)}
	o.Transition(1, recv)
	if o.Estimate() != 2 {
		t.Fatalf("tie-break picked %d, want 2", o.Estimate())
	}
}
