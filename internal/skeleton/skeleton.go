// Package skeleton maintains the paper's skeleton graphs: the round-r
// skeleton G^∩r (the intersection of all communication graphs up to round
// r, paper Section II), the timely neighborhoods PT(p, r), and the stable
// skeleton G^∩∞ together with its stabilization round r_ST.
package skeleton

import (
	"fmt"

	"kset/internal/graph"
	"kset/internal/rounds"
)

// Tracker incrementally computes G^∩r from observed round graphs. It
// implements rounds.Observer, so it can be attached to an executor
// directly. The zero value is not usable; use NewTracker.
type Tracker struct {
	n          int
	round      int
	skel       *graph.Digraph
	lastChange int
	history    []*graph.Digraph // snapshots per round if recording
	record     bool
}

// NewTracker returns a tracker for n processes. Before any round is
// observed the skeleton is the complete graph (the empty intersection
// over an empty set of rounds): G^∩0 ⊇ G^∩1 ⊇ ... as in paper eq. (1).
// If recordHistory is set, a snapshot of every G^∩r is kept and
// retrievable via At (memory: O(rounds·n²/64)).
func NewTracker(n int, recordHistory bool) *Tracker {
	return &Tracker{
		n:      n,
		skel:   graph.CompleteDigraph(n),
		record: recordHistory,
	}
}

// Observe folds the round-r communication graph into the skeleton.
// Rounds must be observed in order 1, 2, 3, ...
func (t *Tracker) Observe(r int, g *graph.Digraph) {
	if r != t.round+1 {
		panic(fmt.Sprintf("skeleton: observed round %d after round %d", r, t.round))
	}
	if g.N() != t.n {
		panic(fmt.Sprintf("skeleton: graph universe %d, want %d", g.N(), t.n))
	}
	t.round = r
	if t.skel.IntersectWith(g) {
		t.lastChange = r
	}
	if t.record {
		t.history = append(t.history, t.skel.Clone())
	}
}

// OnRound implements rounds.Observer.
func (t *Tracker) OnRound(r int, g *graph.Digraph, _ []rounds.Algorithm) {
	t.Observe(r, g)
}

// Round returns the last observed round.
func (t *Tracker) Round() int { return t.round }

// Skeleton returns a copy of the current skeleton G^∩r.
func (t *Tracker) Skeleton() *graph.Digraph { return t.skel.Clone() }

// At returns a copy of G^∩r for an already-observed round r >= 1. It
// panics unless the tracker records history.
func (t *Tracker) At(r int) *graph.Digraph {
	if !t.record {
		panic("skeleton: At requires history recording")
	}
	if r < 1 || r > t.round {
		panic(fmt.Sprintf("skeleton: round %d not observed (have 1..%d)", r, t.round))
	}
	return t.history[r-1].Clone()
}

// LastChange returns the last round in which the skeleton lost an edge or
// node — once the underlying run is stable this is the stabilization
// round r_ST of the paper (∀r >= r_ST: G^∩r = G^∩∞). Returns 0 if the
// skeleton never changed (fully synchronous run).
func (t *Tracker) LastChange() int { return t.lastChange }

// PT returns the timely neighborhood PT(p, r) for the current round r:
// the set of processes from which p received a message in every round up
// to and including r. Per the model's self-loop convention, p ∈ PT(p, r).
func (t *Tracker) PT(p int) graph.NodeSet { return t.skel.InNeighbors(p) }

// RootComponents returns the root components of the current skeleton.
func (t *Tracker) RootComponents() []graph.NodeSet {
	return graph.RootComponents(t.skel)
}

// ComponentOf returns C^r_p, the strongly connected component of p in the
// current skeleton.
func (t *Tracker) ComponentOf(p int) graph.NodeSet {
	return graph.ComponentOf(t.skel, p)
}

// StableSkeleton computes G^∩∞ and the stabilization round for an
// adversary whose graph sequence becomes constant. For adversaries
// implementing rounds.Stabilizer this is exact: the intersection of all
// round graphs up to the stabilization round equals the intersection over
// the infinite run. For other adversaries, pass horizon > 0 to intersect
// the first `horizon` rounds (an over-approximation of G^∩∞: skeletons
// only shrink, paper eq. (1)).
func StableSkeleton(adv rounds.Adversary, horizon int) (*graph.Digraph, int) {
	limit := horizon
	if s, ok := adv.(rounds.Stabilizer); ok {
		limit = s.StabilizationRound()
	}
	if limit < 1 {
		panic("skeleton: StableSkeleton needs a Stabilizer adversary or horizon >= 1")
	}
	t := NewTracker(adv.N(), false)
	for r := 1; r <= limit; r++ {
		t.Observe(r, adv.Graph(r))
	}
	return t.Skeleton(), t.LastChange()
}
