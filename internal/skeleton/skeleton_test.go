package skeleton

import (
	"math/rand"
	"testing"

	"kset/internal/graph"
	"kset/internal/rounds"
)

// seqAdv replays graphs then repeats the last one forever.
type seqAdv struct {
	graphs []*graph.Digraph
}

func (a seqAdv) N() int { return a.graphs[0].N() }
func (a seqAdv) Graph(r int) *graph.Digraph {
	if r-1 < len(a.graphs) {
		return a.graphs[r-1]
	}
	return a.graphs[len(a.graphs)-1]
}
func (a seqAdv) StabilizationRound() int { return len(a.graphs) }

func loopy(n int, edges ...[2]int) *graph.Digraph {
	g := graph.NewFullDigraph(n)
	g.AddSelfLoops()
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestTrackerIntersects(t *testing.T) {
	tr := NewTracker(3, false)
	tr.Observe(1, loopy(3, [2]int{0, 1}, [2]int{1, 2}))
	tr.Observe(2, loopy(3, [2]int{0, 1}))
	s := tr.Skeleton()
	if !s.HasEdge(0, 1) {
		t.Fatal("persistent edge lost")
	}
	if s.HasEdge(1, 2) {
		t.Fatal("transient edge kept")
	}
	for v := 0; v < 3; v++ {
		if !s.HasEdge(v, v) {
			t.Fatal("self-loop lost")
		}
	}
}

func TestTrackerMonotone(t *testing.T) {
	// Paper eq. (1): G^∩r ⊇ G^∩(r+1).
	rng := rand.New(rand.NewSource(5))
	tr := NewTracker(6, true)
	prev := tr.Skeleton()
	for r := 1; r <= 20; r++ {
		g := graph.RandomDigraph(6, 0.6, rng)
		tr.Observe(r, g)
		cur := tr.Skeleton()
		if !cur.SubgraphOf(prev) {
			t.Fatalf("skeleton grew at round %d", r)
		}
		prev = cur
	}
}

func TestTrackerPTMonotone(t *testing.T) {
	// Paper eq. (3): PT(p, r) ⊇ PT(p, r+1).
	rng := rand.New(rand.NewSource(6))
	tr := NewTracker(5, false)
	prev := make([]graph.NodeSet, 5)
	for p := range prev {
		prev[p] = graph.FullNodeSet(5)
	}
	for r := 1; r <= 15; r++ {
		tr.Observe(r, graph.RandomDigraph(5, 0.5, rng))
		for p := 0; p < 5; p++ {
			cur := tr.PT(p)
			if !cur.SubsetOf(prev[p]) {
				t.Fatalf("PT(p%d) grew at round %d", p+1, r)
			}
			if !cur.Has(p) {
				t.Fatalf("p%d not in own PT", p+1)
			}
			prev[p] = cur
		}
	}
}

func TestTrackerOutOfOrderPanics(t *testing.T) {
	tr := NewTracker(2, false)
	tr.Observe(1, loopy(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Observe(3, loopy(2))
}

func TestTrackerUniverseMismatchPanics(t *testing.T) {
	tr := NewTracker(2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Observe(1, loopy(3))
}

func TestTrackerLastChange(t *testing.T) {
	tr := NewTracker(3, false)
	stable := loopy(3, [2]int{0, 1})
	noisy := loopy(3, [2]int{0, 1}, [2]int{2, 0})
	tr.Observe(1, noisy)  // drops everything except noisy's edges: change
	tr.Observe(2, noisy)  // no change
	tr.Observe(3, stable) // drops 2->0: change
	tr.Observe(4, stable)
	tr.Observe(5, stable)
	if got := tr.LastChange(); got != 3 {
		t.Fatalf("LastChange = %d, want 3", got)
	}
}

func TestTrackerLastChangeZeroForSynchronousRun(t *testing.T) {
	tr := NewTracker(2, false)
	full := graph.CompleteDigraph(2)
	for r := 1; r <= 4; r++ {
		tr.Observe(r, full)
	}
	if got := tr.LastChange(); got != 0 {
		t.Fatalf("LastChange = %d, want 0", got)
	}
}

func TestTrackerHistory(t *testing.T) {
	tr := NewTracker(3, true)
	g1 := loopy(3, [2]int{0, 1}, [2]int{1, 2})
	g2 := loopy(3, [2]int{0, 1})
	tr.Observe(1, g1)
	tr.Observe(2, g2)
	if !tr.At(1).Equal(g1) {
		t.Fatal("At(1) wrong")
	}
	want := g1.Intersect(g2)
	if !tr.At(2).Equal(want) {
		t.Fatal("At(2) wrong")
	}
}

func TestTrackerAtPanics(t *testing.T) {
	tr := NewTracker(2, false)
	tr.Observe(1, loopy(2))
	for _, fn := range []func(){
		func() { tr.At(1) },                  // no history recorded
		func() { NewTracker(2, true).At(1) }, // not yet observed
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTrackerAsObserver(t *testing.T) {
	adv := seqAdv{graphs: []*graph.Digraph{
		loopy(3, [2]int{0, 1}, [2]int{1, 2}),
		loopy(3, [2]int{0, 1}),
	}}
	tr := NewTracker(3, false)
	_, err := rounds.RunSequential(rounds.Config{
		Adversary:  adv,
		NewProcess: func(int) rounds.Algorithm { return noop{} },
		MaxRounds:  6,
		Observer:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Round() != 6 {
		t.Fatalf("Round = %d", tr.Round())
	}
	if tr.Skeleton().HasEdge(1, 2) {
		t.Fatal("transient edge survived")
	}
	if !tr.Skeleton().HasEdge(0, 1) {
		t.Fatal("stable edge lost")
	}
}

type noop struct{}

func (noop) Init(int, int)         {}
func (noop) Send(int) any          { return struct{}{} }
func (noop) Transition(int, []any) {}

func TestStableSkeletonWithStabilizer(t *testing.T) {
	adv := seqAdv{graphs: []*graph.Digraph{
		loopy(4, [2]int{0, 1}, [2]int{1, 0}, [2]int{2, 3}),
		loopy(4, [2]int{0, 1}, [2]int{1, 0}),
	}}
	skel, rst := StableSkeleton(adv, 0)
	if !skel.HasEdge(0, 1) || !skel.HasEdge(1, 0) {
		t.Fatal("stable edges missing")
	}
	if skel.HasEdge(2, 3) {
		t.Fatal("transient edge in stable skeleton")
	}
	if rst != 2 {
		t.Fatalf("r_ST = %d, want 2", rst)
	}
}

func TestStableSkeletonHorizon(t *testing.T) {
	// Without a Stabilizer, a horizon must be given.
	adv := plainAdv{seqAdv{graphs: []*graph.Digraph{loopy(2, [2]int{0, 1})}}}
	skel, _ := StableSkeleton(adv, 5)
	if !skel.HasEdge(0, 1) {
		t.Fatal("edge missing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without horizon")
		}
	}()
	StableSkeleton(adv, 0)
}

// plainAdv hides the Stabilizer method of the embedded adversary.
type plainAdv struct{ inner seqAdv }

func (a plainAdv) N() int                     { return a.inner.N() }
func (a plainAdv) Graph(r int) *graph.Digraph { return a.inner.Graph(r) }

func TestTrackerRootComponentsAndComponentOf(t *testing.T) {
	// Figure 1b skeleton.
	g := loopy(6,
		[2]int{0, 1}, [2]int{1, 0},
		[2]int{2, 3}, [2]int{3, 4}, [2]int{4, 2},
		[2]int{4, 5})
	tr := NewTracker(6, false)
	tr.Observe(1, g)
	roots := tr.RootComponents()
	if len(roots) != 2 {
		t.Fatalf("roots = %v", roots)
	}
	if !tr.ComponentOf(2).Equal(graph.NodeSetOf(2, 3, 4)) {
		t.Fatalf("ComponentOf(p3) = %v", tr.ComponentOf(2))
	}
	if !tr.ComponentOf(5).Equal(graph.NodeSetOf(5)) {
		t.Fatalf("ComponentOf(p6) = %v", tr.ComponentOf(5))
	}
}

func TestComponentMonotone(t *testing.T) {
	// Paper eq. (5): C^r_p ⊇ C^(r+1)_p.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		tr := NewTracker(6, false)
		prev := make([]graph.NodeSet, 6)
		for p := range prev {
			prev[p] = graph.FullNodeSet(6)
		}
		for r := 1; r <= 10; r++ {
			g := graph.RandomDigraph(6, 0.7, rng)
			tr.Observe(r, g)
			for p := 0; p < 6; p++ {
				cur := tr.ComponentOf(p)
				if !cur.SubsetOf(prev[p]) {
					t.Fatalf("component of p%d grew at round %d", p+1, r)
				}
				prev[p] = cur
			}
		}
	}
}
