package skeleton

import (
	"testing"

	"kset/internal/graph"
)

// TestObserveAllocsPerRun pins the skeleton tracker's hot path: once the
// run's skeleton has stabilized, folding in further round graphs must not
// allocate (the word-level Digraph.IntersectWith). See DESIGN.md §4.
func TestObserveAllocsPerRun(t *testing.T) {
	n := 32
	// A stable round graph sparser than the initial complete skeleton:
	// the first observation removes edges, later ones are steady-state.
	g := graph.NewFullDigraph(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, v)
		g.AddEdge(v, (v+1)%n)
	}
	tr := NewTracker(n, false)
	r := 0
	observe := func() {
		r++
		tr.Observe(r, g)
	}
	observe() // round 1 shrinks complete -> ring; scratch-free from here on
	avg := testing.AllocsPerRun(50, observe)
	if avg != 0 {
		t.Errorf("%v allocs per steady-state Observe, want 0", avg)
	}
	if tr.LastChange() != 1 {
		t.Fatalf("LastChange = %d, want 1", tr.LastChange())
	}
}
