package experiments

import (
	"fmt"

	"kset/internal/adversary"
	"kset/internal/algo"
	"kset/internal/approx"
	"kset/internal/sim"
	"kset/internal/stats"
)

// E23ApproxConvergence measures the second registered algorithm family:
// graph approximate agreement on paths and cycles, executed through the
// same sim pipeline as every kset experiment. Each table cell runs
// cfg.Trials randomized stabilizing single-rooted schedules (the regime
// the family claims convergence in), checks the family's own oracles
// (termination at exactly DecideRound, hull/arc validity, pairwise
// adjacency), and reports the realized decide round against the
// amortized phase bound plus how tightly decisions cluster.
func E23ApproxConvergence(cfg Config) (*Result, error) {
	res := &Result{Name: "E23 graph approximate agreement (path and cycle convergence)"}
	table := sim.NewTable("E23: approx decisions within distance 1 after the amortized phase schedule",
		"graph", "n", "trials", "decide round", "mean spread", "max spread", "violations")
	rng := newRng(cfg.Seed + 23)
	type cell struct {
		shape approx.Shape
		n, v  int
	}
	cells := []cell{
		{approx.Path, 4, 0}, // V defaults to n+1
		{approx.Path, 8, 12},
		{approx.Path, 12, 0},
		{approx.Cycle, 4, 8},
		{approx.Cycle, 8, 12},
	}
	for _, c := range cells {
		v := c.v
		if v == 0 {
			v = c.n + 1
		}
		g := approx.Graph{Shape: c.shape, V: v}
		var spreads []float64
		decideRound := 0
		viol := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			props := make([]int64, c.n)
			if c.shape == approx.Cycle {
				// Narrow arc wrapping vertex 0: the universal-cover regime.
				for i := range props {
					props[i] = int64((v - 1 + rng.Intn(3)) % v)
				}
			} else {
				for i := range props {
					props[i] = int64(rng.Intn(v))
				}
			}
			out, err := sim.Execute(sim.Spec{
				Algorithm: algo.Approx,
				Adversary: adversary.RandomSources(c.n, 1, rng.Intn(2*c.n), 0.3, rng),
				Proposals: props,
				Params:    approx.Options{Graph: g},
			})
			if err != nil {
				return nil, err
			}
			viol += len(out.CheckAlgorithm())
			decideRound = out.Run.Params.(approx.Options).DecideRound
			var worst int64
			for i := 0; i < out.N; i++ {
				for j := i + 1; j < out.N; j++ {
					if d := approx.Dist(g, out.Decisions[i], out.Decisions[j]); d > worst {
						worst = d
					}
				}
			}
			spreads = append(spreads, float64(worst))
			if worst > 1 {
				viol++
			}
		}
		res.Violations += viol
		s := stats.Summarize(spreads)
		table.AddRow(fmt.Sprintf("%s-%d", c.shape, v), c.n, cfg.Trials, decideRound, s.Mean, int(s.Max), viol)
	}
	res.Table = table
	res.note("every pair of decisions is adjacent on the target graph; all processes decide at exactly the amortized phase bound")
	return res, nil
}
