// Package experiments implements the reproduction suite E1-E16 and E20
// defined in DESIGN.md §3: every figure of the paper, every quantitative
// claim of its theorems, the soundness audit of its main proof, the
// classical regimes it cites, the dynamic-network adversary suite
// E13-E16 that probes just outside the paper's eventually-stable model,
// and the E20 multi-word scaling sweep, rendered as measured tables. cmd/ksetbench prints these tables (EXPERIMENTS.md
// records them) and bench_test.go wraps them as Go benchmarks.
package experiments

import (
	"fmt"

	"kset/internal/adversary"
	"kset/internal/baseline"
	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/predicate"
	"kset/internal/rounds"
	"kset/internal/sim"
)

// Config scales the randomized experiments.
type Config struct {
	// Trials is the number of randomized runs per table cell.
	Trials int
	// Seed feeds all randomized adversaries (experiments are fully
	// deterministic given a seed).
	Seed int64
	// Workers bounds sweep parallelism.
	Workers int
}

// DefaultConfig returns the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config { return Config{Trials: 200, Seed: 20110222, Workers: 8} }

// QuickConfig returns a fast configuration for smoke tests and go test.
func QuickConfig() Config { return Config{Trials: 20, Seed: 20110222, Workers: 4} }

// Result couples a rendered table with machine-checkable pass/fail notes.
type Result struct {
	Name  string
	Table *sim.Table
	// Violations counts property violations observed (must be 0 for a
	// successful reproduction).
	Violations int
	// Notes carries headline numbers for EXPERIMENTS.md.
	Notes []string
}

func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// E1Figure1 reproduces Figure 1: p6's approximation graphs G¹p6..G⁶p6
// label-for-label, with the documented stale-edge deviation in rounds 5-6
// (see DESIGN.md §3).
func E1Figure1() (*Result, error) {
	res := &Result{Name: "E1 Figure 1 (approximation of the stable skeleton)"}
	run := adversary.Figure1()

	var approxes []*graph.Labeled
	spec := sim.Spec{
		Adversary:       run,
		Proposals:       sim.SeqProposals(6),
		MaxRounds:       12,
		RunToCompletion: true,
	}
	// Execute manually to capture p6's graphs: use the facade-level
	// pieces directly for full control.
	procs, err := captureApprox(spec, 5, 8)
	if err != nil {
		return nil, err
	}
	approxes = procs

	want := adversary.Figure1LabelMultisets()
	table := sim.NewTable("E1: p6's approximation graphs vs paper Figure 1c-1h",
		"round", "measured labels", "figure labels", "match")
	for r := 1; r <= 8; r++ {
		got := approxes[r-1].LabelMultiset()
		wantStr := "(steady state)"
		match := "exact"
		switch {
		case r <= 4:
			wantStr = fmt.Sprint(want[r-1])
			if fmt.Sprint(got) != wantStr {
				match = "MISMATCH"
				res.Violations++
			}
		case r <= 6:
			wantStr = fmt.Sprint(want[r-1])
			withStale := append(append([]int{}, want[r-1]...), 1)
			if fmt.Sprint(got) != fmt.Sprint(withStale) {
				match = "MISMATCH"
				res.Violations++
			} else {
				match = "exact + 1 stale edge (purged r7)"
			}
		default:
			expect := []int{r, r - 1, r - 2, r - 3}
			if r == 7 {
				// One last transient wave (p5 2->p3 copy) visible at r=7.
				expect = append(expect, 2)
			}
			if fmt.Sprint(got) != fmt.Sprint(expect) {
				match = "MISMATCH"
				res.Violations++
			} else {
				match = "steady chain r,r-1,r-2,r-3"
				if r == 7 {
					match += " + last wave"
				}
			}
		}
		table.AddRow(r, fmt.Sprint(got), wantStr, match)
	}
	res.Table = table

	out, err := sim.Execute(sim.Spec{Adversary: run, Proposals: sim.SeqProposals(6)})
	if err != nil {
		return nil, err
	}
	if err := out.Check(3); err != nil {
		res.Violations++
		res.note("correctness check failed: %v", err)
	}
	res.note("stable skeleton: root components %v, MinK=%d, r_ST=%d",
		rootsString(out.Skeleton), out.MinK, out.RST)
	res.note("decisions: %v in %d rounds (2 values <= k=3)",
		out.DistinctDecisions(), out.Rounds)
	return res, nil
}

// captureApprox runs Algorithm 1 and returns process `who`'s
// approximation graph after each of the first `upTo` rounds.
func captureApprox(spec sim.Spec, who, upTo int) ([]*graph.Labeled, error) {
	var approxes []*graph.Labeled
	n := spec.Adversary.N()
	factory := core.NewFactory(spec.Proposals, spec.Opts)
	procs := make([]*core.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = factory(i).(*core.Process)
		procs[i].Init(i, n)
	}
	msgs := make([]any, n)
	for r := 1; r <= upTo; r++ {
		for i, p := range procs {
			msgs[i] = p.Send(r)
		}
		g := spec.Adversary.Graph(r)
		for q := 0; q < n; q++ {
			recv := make([]any, n)
			g.ForEachIn(q, func(p int) { recv[p] = msgs[p] })
			procs[q].Transition(r, recv)
		}
		approxes = append(approxes, procs[who].Approx())
	}
	return approxes, nil
}

func rootsString(skel *graph.Digraph) string {
	roots := graph.RootComponents(skel)
	s := ""
	for i, r := range roots {
		if i > 0 {
			s += " "
		}
		s += r.String()
	}
	return s
}

// E2RootComponents validates Theorem 1 statistically: over random stable
// skeletons, the number of root components never exceeds MinK (the
// smallest k with Psrcs(k)).
func E2RootComponents(cfg Config) (*Result, error) {
	res := &Result{Name: "E2 Theorem 1 (#root components <= k for Psrcs(k) runs)"}
	table := sim.NewTable("E2: root components vs MinK over random skeletons",
		"n", "trials", "mean roots", "mean MinK", "max roots", "violations")
	rng := newRng(cfg.Seed)
	for _, n := range []int{4, 8, 16, 32, 48} {
		var sumRoots, sumK, maxRoots, viol int
		for trial := 0; trial < cfg.Trials; trial++ {
			roots := 1 + rng.Intn(n)
			skel := graph.RandomRootedSkeleton(n, roots, rng)
			rc, minK, ok := predicate.RootComponentBound(skel)
			if !ok {
				viol++
			}
			sumRoots += rc
			sumK += minK
			if rc > maxRoots {
				maxRoots = rc
			}
		}
		res.Violations += viol
		table.AddRow(n, cfg.Trials,
			float64(sumRoots)/float64(cfg.Trials),
			float64(sumK)/float64(cfg.Trials),
			maxRoots, viol)
	}
	res.Table = table
	res.note("Theorem 1 bound #roots <= MinK held in every trial")
	return res, nil
}

// E3LowerBound validates Theorem 2's tightness: Algorithm 1 on the
// lower-bound run decides exactly k distinct values, so Psrcs(k) cannot
// solve (k-1)-set agreement.
func E3LowerBound(cfg Config) (*Result, error) {
	res := &Result{Name: "E3 Theorem 2 (lower bound: exactly k values under Psrcs(k))"}
	table := sim.NewTable("E3: distinct decisions on the Theorem 2 run",
		"n", "k", "distinct", "k-agreement", "(k-1)-agreement")
	for _, n := range []int{4, 8, 16, 32} {
		for _, k := range []int{2, 3, n / 2, n - 1} {
			if k < 2 || k >= n {
				continue
			}
			out, err := sim.Execute(sim.Spec{
				Adversary: adversary.LowerBound(n, k),
				Proposals: sim.SeqProposals(n),
			})
			if err != nil {
				return nil, err
			}
			distinct := len(out.DistinctDecisions())
			kOK := "holds"
			if err := out.Check(k); err != nil {
				kOK = "VIOLATED"
				res.Violations++
			}
			k1 := "violated (expected)"
			if distinct <= k-1 {
				k1 = "HELD (unexpected)"
				res.Violations++
			}
			table.AddRow(n, k, distinct, kOK, k1)
		}
	}
	res.Table = table
	res.note("every (n,k) cell produced exactly k values: the predicate is tight")
	return res, nil
}

// E4DecisionRounds validates Lemma 11's termination bound: every process
// decides by r_ST + 2n - 1.
func E4DecisionRounds(cfg Config) (*Result, error) {
	res := &Result{Name: "E4 Lemma 11 (termination by r_ST + 2n - 1)"}
	table := sim.NewTable("E4: decision rounds vs the Lemma 11 bound",
		"n", "noise prefix", "trials", "mean last decision", "max last decision", "bound", "violations")
	rng := newRng(cfg.Seed + 4)
	for _, n := range []int{4, 8, 16, 32} {
		for _, noisy := range []int{0, n / 2, 2 * n} {
			var sum, max, viol, boundMax int
			for trial := 0; trial < cfg.Trials; trial++ {
				run := adversary.RandomSources(n, 1+rng.Intn(n), noisy, 0.25, rng)
				out, err := sim.Execute(sim.Spec{
					Adversary: run,
					Proposals: sim.SeqProposals(n),
				})
				if err != nil {
					return nil, err
				}
				if err := out.CheckTermination(); err != nil {
					viol++
					continue
				}
				last := out.MaxDecisionRound()
				bound := out.RST + 2*n - 1
				if bound > boundMax {
					boundMax = bound
				}
				if last > bound {
					viol++
				}
				sum += last
				if last > max {
					max = last
				}
			}
			res.Violations += viol
			table.AddRow(n, noisy, cfg.Trials,
				float64(sum)/float64(cfg.Trials), max, boundMax, viol)
		}
	}
	res.Table = table
	res.note("all decisions within r_ST + 2n - 1; root components decide by r_ST + n - 1")
	return res, nil
}

// E5MessageComplexity measures encoded message sizes against the paper's
// "polynomial in n" bit-complexity claim (Section V).
func E5MessageComplexity(cfg Config) (*Result, error) {
	res := &Result{Name: "E5 message bit complexity (polynomial in n)"}
	table := sim.NewTable("E5: wire size of (tag, x, G) messages",
		"n", "avg bytes", "max bytes", "n^2 reference", "max/n^2")
	rng := newRng(cfg.Seed + 5)
	var ns, maxs []float64
	for _, n := range []int{4, 8, 16, 32, 64} {
		run := adversary.RandomSources(n, 1+rng.Intn(3), n/2, 0.3, rng)
		out, err := sim.Execute(sim.Spec{
			Adversary:     run,
			Proposals:     sim.SeqProposals(n),
			MeterMessages: true,
		})
		if err != nil {
			return nil, err
		}
		nn := float64(n * n)
		table.AddRow(n, out.Meter.Avg(), out.Meter.MaxBytes, n*n,
			float64(out.Meter.MaxBytes)/nn)
		ns = append(ns, float64(n))
		maxs = append(maxs, float64(out.Meter.MaxBytes))
	}
	res.Table = table
	exp := powerLaw(ns, maxs)
	res.note("max message bytes grow as ~n^%.2f (polynomial, matching Section V)", exp)
	if exp > 3.0 {
		res.Violations++
		res.note("growth exponent exceeds cubic: unexpected")
	}
	return res, nil
}

// E6Baselines compares Algorithm 1 with FloodMin/FloodSet: both safe
// under crashes (survivor semantics); only Algorithm 1 stays safe on
// Psrcs(k) runs with perpetual message loss, and only Algorithm 1 covers
// crashed-but-internally-correct processes.
func E6Baselines(cfg Config) (*Result, error) {
	res := &Result{Name: "E6 Algorithm 1 vs FloodMin/FloodSet"}
	table := sim.NewTable("E6: distinct decisions per scenario",
		"scenario", "algorithm", "distinct", "guarantee", "verdict")
	rng := newRng(cfg.Seed + 6)

	// Scenario A: crash runs (f = 3 of n = 8, k = 2).
	n, f, k := 8, 3, 2
	worstFMSurv, worstA1 := 0, 0
	for trial := 0; trial < cfg.Trials; trial++ {
		crashRun, sched := adversary.RandomCrashes(n, f, 3, rng)
		fmOut, err := runBaselineFloodMin(crashRun, sim.SeqProposals(n), f, k)
		if err != nil {
			return nil, err
		}
		surv := fmOut.DistinctDecisionsAmong(func(i int) bool { return sched.Rounds[i] == 0 })
		if len(surv) > worstFMSurv {
			worstFMSurv = len(surv)
		}
		a1Out, err := sim.Execute(sim.Spec{Adversary: crashRun, Proposals: sim.SeqProposals(n)})
		if err != nil {
			return nil, err
		}
		if got := len(a1Out.DistinctDecisions()); got > worstA1 {
			worstA1 = got
		}
		if got := len(a1Out.DistinctDecisions()); got > a1Out.MinK {
			res.Violations++
		}
	}
	table.AddRow("crashes f=3, n=8", "FloodMin(f=3,k=2)", worstFMSurv, "<= k among survivors", verdict(worstFMSurv <= k))
	table.AddRow("crashes f=3, n=8", "Algorithm 1", worstA1, "<= MinK for ALL processes", verdict(worstA1 <= n))

	// Scenario B: the Theorem 2 run with descending proposals (the
	// downstream processes hold values smaller than the source's, which
	// the source cannot override — the leak FloodMin has no answer to).
	nb, kb := 8, 3
	lb := adversary.LowerBound(nb, kb)
	desc := make([]int64, nb)
	for i := range desc {
		desc[i] = int64(10 * (nb - i))
	}
	fmOut, err := runBaselineFloodMin(lb, desc, kb, kb)
	if err != nil {
		return nil, err
	}
	fmDistinct := len(fmOut.DistinctDecisions())
	a1Out, err := sim.Execute(sim.Spec{Adversary: lb, Proposals: desc})
	if err != nil {
		return nil, err
	}
	a1Distinct := len(a1Out.DistinctDecisions())
	if a1Distinct > kb {
		res.Violations++
	}
	if fmDistinct <= kb {
		// FloodMin must break here (descending proposals leak).
		res.Violations++
	}
	table.AddRow("Psrcs(3) loss run, n=8", "FloodMin(f=3,k=3)", fmDistinct, "<= 3 (assumes crashes only)", verdict(fmDistinct <= kb)+" (loss ≠ crash)")
	table.AddRow("Psrcs(3) loss run, n=8", "Algorithm 1", a1Distinct, "<= 3 (Psrcs(3))", verdict(a1Distinct <= kb))

	// Scenario C: liveness. OneThirdRule (the Heard-Of model's canonical
	// consensus algorithm) is safe in every run but needs heard-of sets
	// above 2n/3; on the same loss run it never decides, while
	// Algorithm 1 terminates within the Lemma 11 bound.
	otrRes, err := rounds.RunSequential(rounds.Config{
		Adversary:  lb,
		NewProcess: baseline.NewOneThirdRuleFactory(desc),
		MaxRounds:  20 * nb,
	})
	if err != nil {
		return nil, err
	}
	otrDecided := 0
	for _, p := range otrRes.Procs {
		if p.(rounds.Decider).Decided() {
			otrDecided++
		}
	}
	if otrDecided != 0 {
		res.Violations++ // heard-of sets of size <= 2 must stay below 2n/3
	}
	table.AddRow("Psrcs(3) loss run, n=8", "OneThirdRule",
		fmt.Sprintf("undecided after %d rounds", 20*nb),
		"needs |HO| > 2n/3", "never terminates")
	table.AddRow("Psrcs(3) loss run, n=8", "Algorithm 1 (again)",
		fmt.Sprintf("all decide by round %d", a1Out.MaxDecisionRound()),
		"r_ST + 2n - 1", "terminates")
	res.Table = table
	res.note("FloodMin worst survivor diversity under crashes: %d (bound %d)", worstFMSurv, k)
	res.note("on the Psrcs(3) loss run FloodMin decides %d values, Algorithm 1 %d (bound 3)",
		fmDistinct, a1Distinct)
	return res, nil
}

func verdict(ok bool) string {
	if ok {
		return "safe"
	}
	return "VIOLATES"
}

// E7Consensus probes the Section V remark that the algorithm "actually
// solves consensus in sufficiently well-behaved runs". The precise
// well-behavedness condition is MinK = 1 (Psrcs(1): every pair of
// processes shares a perpetual source); there consensus is guaranteed and
// asserted. A single root component alone is NOT sufficient — MinK can
// still exceed 1, and noisy prefixes realize multi-value single-root
// runs; those are reported observationally (and checked against the
// theorem bound distinct <= MinK).
func E7Consensus(cfg Config) (*Result, error) {
	res := &Result{Name: "E7 consensus in well-behaved runs"}
	table := sim.NewTable("E7: consensus on Psrcs(1) runs (universal 2-source)",
		"n", "trials", "published guard: consensus rate", "repaired guard: consensus", "single-root runs: consensus rate")
	rng := newRng(cfg.Seed + 7)
	for _, n := range []int{4, 8, 16, 32, 48} {
		publishedConsensus := 0
		repairedOK := true
		singleRootConsensus := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			// The guaranteed-by-theorem case: universal 2-source,
			// MinK = 1. The published guard can still decide two values
			// (the E10 flaw); the repaired guard must not.
			run := adversary.RandomSingleSource(n, rng.Intn(n), 0.2, 0.2, rng)
			out, err := sim.Execute(sim.Spec{Adversary: run, Proposals: sim.SeqProposals(n)})
			if err != nil {
				return nil, err
			}
			if out.MinK != 1 {
				return nil, fmt.Errorf("E7: single-source run has MinK %d", out.MinK)
			}
			if len(out.DistinctDecisions()) == 1 {
				publishedConsensus++
			}
			outR, err := sim.Execute(sim.Spec{
				Adversary: run,
				Proposals: sim.SeqProposals(n),
				Opts:      core.Options{ConservativeDecide: true},
			})
			if err != nil {
				return nil, err
			}
			if len(outR.DistinctDecisions()) != 1 {
				repairedOK = false
				res.Violations++
			}

			// Observational: one root component, unconstrained MinK —
			// consensus is NOT implied (the bound is MinK, checked).
			run2 := adversary.RandomSources(n, 1, rng.Intn(n), 0.2, rng)
			out2, err := sim.Execute(sim.Spec{Adversary: run2, Proposals: sim.SeqProposals(n)})
			if err != nil {
				return nil, err
			}
			if d := len(out2.DistinctDecisions()); d == 1 {
				singleRootConsensus++
			}
		}
		table.AddRow(n, cfg.Trials,
			fmt.Sprintf("%d/%d", publishedConsensus, cfg.Trials),
			repairedOK,
			fmt.Sprintf("%d/%d", singleRootConsensus, cfg.Trials))
	}
	res.Table = table
	res.note("'sufficiently well-behaved' = Psrcs(1) (MinK = 1); the repaired guard always reaches consensus there")
	res.note("the published guard misses consensus on a small fraction of Psrcs(1) runs — the E10 flaw")
	res.note("a single root component alone does not imply consensus (bound is MinK, not 1)")
	return res, nil
}

// E10GuardFlaw isolates the reproduction's main negative finding: the
// published line-28 guard (r >= n) violates k-agreement on runs whose
// skeleton stabilizes after round 1, because approximations in rounds
// [n, r_ST+n-2] can be strongly connected through stale pre-stabilization
// edges. The deterministic 4-process witness satisfies Psrcs(1) yet
// decides two values; raising the guard to r >= 2n-1 repairs it (and
// makes the paper's own Lemma 15 proof sound). See DESIGN.md §2.
func E10GuardFlaw(cfg Config) (*Result, error) {
	res := &Result{Name: "E10 line-28 guard flaw and repair"}
	table := sim.NewTable("E10: the Lemma 15 counterexample and the repaired guard",
		"run", "guard", "decisions", "MinK", "k-agreement")

	witness := adversary.ConsensusViolation()
	props := adversary.ConsensusViolationProposals()
	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"published r>=n", core.Options{}},
		{"repaired r>=2n-1", core.Options{ConservativeDecide: true}},
	} {
		out, err := sim.Execute(sim.Spec{Adversary: witness, Proposals: props, Opts: variant.opts})
		if err != nil {
			return nil, err
		}
		d := out.DistinctDecisions()
		ok := len(d) <= out.MinK
		verdictStr := verdict(ok)
		if variant.opts.ConservativeDecide {
			if !ok {
				res.Violations++ // the repair must hold
			}
		} else if ok {
			res.Violations++ // the witness must break the published guard
		}
		table.AddRow("4-process witness", variant.name, fmt.Sprint(d), out.MinK, verdictStr)
	}

	// Violation rate on the randomized vulnerable family.
	rng := newRng(cfg.Seed + 10)
	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"published r>=n", core.Options{}},
		{"repaired r>=2n-1", core.Options{ConservativeDecide: true}},
	} {
		viol := 0
		worst := 0
		rng2 := newRng(rng.Int63())
		for trial := 0; trial < cfg.Trials; trial++ {
			n := 4 + rng2.Intn(5)
			run := adversary.RandomSingleSource(n, 1+rng2.Intn(n), 0.3, 0.3, rng2)
			out, err := sim.Execute(sim.Spec{Adversary: run, Proposals: sim.SeqProposals(n), Opts: variant.opts})
			if err != nil {
				return nil, err
			}
			if d := len(out.DistinctDecisions()); d > out.MinK {
				viol++
				if d > worst {
					worst = d
				}
			}
		}
		if variant.opts.ConservativeDecide && viol > 0 {
			res.Violations += viol
		}
		table.AddRow(fmt.Sprintf("random Psrcs(1) family (%d runs)", cfg.Trials),
			variant.name, fmt.Sprintf("viol. rate %d/%d", viol, cfg.Trials), 1,
			verdict(viol == 0))
	}
	res.Table = table
	res.note("the published guard decides {1,4} on the Psrcs(1) witness (consensus required)")
	res.note("flaw: Lemma 15 applies the round-n Lemma 14 to round-(ri-n+1) components; sound only for ri >= 2n-1")
	res.note("repair: require r >= 2n-1 in line 28 — k-agreement restored, termination bound grows by <= n rounds")
	return res, nil
}

// E8Eventual demonstrates the Section III argument that ♦Psrcs(k) is too
// weak, and why Psrcs(k) must be perpetual: a single round of total
// isolation permanently empties every timely neighborhood (PT sets only
// shrink), so every approximation graph collapses to the singleton {p} —
// trivially strongly connected — and all n processes decide their own
// values in round n. Only the prefix-free run reaches consensus.
func E8Eventual(cfg Config) (*Result, error) {
	res := &Result{Name: "E8 ♦Psrcs is too weak (isolation prefixes)"}
	table := sim.NewTable("E8: distinct decisions vs isolation prefix length (n=8)",
		"prefix", "distinct", "MinK of G^∩∞", "all own values")
	n := 8
	for _, prefix := range []int{0, 1, 2, 4, 8, 12} {
		adv := adversary.Eventual(adversary.Complete(n), prefix)
		out, err := sim.Execute(sim.Spec{Adversary: adv, Proposals: sim.SeqProposals(n)})
		if err != nil {
			return nil, err
		}
		distinct := len(out.DistinctDecisions())
		allOwn := distinct == n
		if prefix >= 1 && !allOwn {
			res.Violations++
		}
		if prefix == 0 && distinct != 1 {
			res.Violations++
		}
		// Sanity: the decisions always respect the run's actual MinK
		// (which jumps to n as soon as one isolated round exists).
		if distinct > out.MinK {
			res.Violations++
		}
		table.AddRow(prefix, distinct, out.MinK, allOwn)
	}
	res.Table = table
	res.note("one isolated round already collapses PT sets to {p}: MinK jumps to n and all processes decide their own values — the predicate must be perpetual")
	return res, nil
}

// E9Ablations measures the two interpretation knobs (DESIGN.md §2):
// merging one's own previous graph, and widening the purge window. Both
// preserve all correctness properties; they change staleness and wire
// size only.
func E9Ablations(cfg Config) (*Result, error) {
	res := &Result{Name: "E9 ablations (own-graph merge, purge window)"}
	table := sim.NewTable("E9: ablations on random Psrcs runs (n=16)",
		"variant", "trials", "mean last decision", "mean max bytes", "correctness")
	rng := newRng(cfg.Seed + 9)
	n := 16
	variants := []struct {
		name string
		opts core.Options
	}{
		{"paper-faithful", core.Options{}},
		{"merge own graph", core.Options{MergeOwnGraph: true}},
		{"purge window n-1", core.Options{PurgeWindow: n - 1}},
		{"purge window 2n", core.Options{PurgeWindow: 2 * n}},
	}
	type seedSpec struct {
		roots, noisy int
		seed         int64
	}
	seeds := make([]seedSpec, cfg.Trials)
	for i := range seeds {
		seeds[i] = seedSpec{roots: 1 + rng.Intn(4), noisy: rng.Intn(n), seed: rng.Int63()}
	}
	for _, v := range variants {
		var sumLast int
		var sumBytes float64
		ok := true
		for _, s := range seeds {
			run := adversary.RandomSources(n, s.roots, s.noisy, 0.25, newRng(s.seed))
			out, err := sim.Execute(sim.Spec{
				Adversary:     run,
				Proposals:     sim.SeqProposals(n),
				Opts:          v.opts,
				MeterMessages: true,
			})
			if err != nil {
				return nil, err
			}
			if err := out.Check(out.MinK); err != nil {
				ok = false
				res.Violations++
			}
			sumLast += out.MaxDecisionRound()
			sumBytes += float64(out.Meter.MaxBytes)
		}
		table.AddRow(v.name, cfg.Trials,
			float64(sumLast)/float64(cfg.Trials),
			sumBytes/float64(cfg.Trials),
			verdict(ok))
	}
	res.Table = table
	res.note("all variants satisfy k-agreement/validity/termination; differences are wire size and latency only")
	return res, nil
}

// All runs the full suite in order.
func All(cfg Config) ([]*Result, error) {
	var out []*Result
	steps := []func() (*Result, error){
		E1Figure1,
		func() (*Result, error) { return E2RootComponents(cfg) },
		func() (*Result, error) { return E3LowerBound(cfg) },
		func() (*Result, error) { return E4DecisionRounds(cfg) },
		func() (*Result, error) { return E5MessageComplexity(cfg) },
		func() (*Result, error) { return E6Baselines(cfg) },
		func() (*Result, error) { return E7Consensus(cfg) },
		func() (*Result, error) { return E8Eventual(cfg) },
		func() (*Result, error) { return E9Ablations(cfg) },
		func() (*Result, error) { return E10GuardFlaw(cfg) },
		func() (*Result, error) { return E11Convergence(cfg) },
		func() (*Result, error) { return E12Mobile(cfg) },
		func() (*Result, error) { return E13TInterval(cfg) },
		func() (*Result, error) { return E14PartitionMerge(cfg) },
		func() (*Result, error) { return E15VertexStable(cfg) },
		func() (*Result, error) { return E16Scaling(cfg) },
		// The suite runs E20's CI rung; the full n = 1024 ladder is
		// `ksetbench -only E20` (see e20SuiteSizes).
		func() (*Result, error) { return E20Suite(cfg) },
		func() (*Result, error) { return E23ApproxConvergence(cfg) },
	}
	for _, step := range steps {
		r, err := step()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
