package experiments

import (
	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/rounds"
	"kset/internal/sim"
	"kset/internal/skeleton"
	"kset/internal/stats"
)

// E11Convergence quantifies how fast the local approximations converge
// after the run stabilizes. Lemma 11 proves that a root-component member
// p has G^(r_ST+n-1)_p equal to its component; more generally, once the
// purge has flushed all pre-stabilization information, the *shape* (nodes
// and unlabeled edges) of every approximation becomes constant — only
// labels keep advancing. The measured quantity is the lag
//
//	λ_p = (first round from which shape(G^r_p) stays constant) − r_ST
//
// reported as mean and max over processes and runs, against the paper's
// n−1 reference for root members (and ≤ 2n for everyone, the purge
// window plus propagation).
func E11Convergence(cfg Config) (*Result, error) {
	res := &Result{Name: "E11 approximation convergence lag after stabilization"}
	table := sim.NewTable("E11: rounds until the local view shape stops changing (lag after r_ST)",
		"n", "noise prefix", "trials", "mean lag", "p95 lag", "max lag", "bound 2n", "violations")
	rng := newRng(cfg.Seed + 11)
	for _, n := range []int{4, 8, 16} {
		for _, noisy := range []int{0, n} {
			var lags []float64
			viol := 0
			for trial := 0; trial < cfg.Trials; trial++ {
				run := adversary.RandomSources(n, 1+rng.Intn(3), noisy, 0.25, rng)
				lag, err := convergenceLag(run, n)
				if err != nil {
					return nil, err
				}
				lags = append(lags, float64(lag))
				if lag > 2*n {
					viol++
				}
			}
			res.Violations += viol
			s := stats.Summarize(lags)
			table.AddRow(n, noisy, cfg.Trials, s.Mean, s.P95, int(s.Max), 2*n, viol)
		}
	}
	res.Table = table
	res.note("every local view shape froze within 2n rounds of skeleton stabilization")
	return res, nil
}

// convergenceLag runs Algorithm 1 under run (which must stabilize) and
// returns the worst per-process lag between the skeleton stabilization
// round and the round from which the approximation's shape (present
// nodes + unlabeled edges) never changes again.
func convergenceLag(run *adversary.Run, n int) (int, error) {
	horizon := run.StabilizationRound() + 3*n + 2
	shapes := make([][]*graph.Digraph, n) // per process, per round
	tracker := skeleton.NewTracker(n, false)
	obs := rounds.ObserverFunc(func(r int, g *graph.Digraph, procs []rounds.Algorithm) {
		for i, a := range procs {
			p := a.(*core.Process)
			shapes[i] = append(shapes[i], p.Approx().Unlabeled())
		}
	})
	_, err := rounds.RunSequential(rounds.Config{
		Adversary:  run,
		NewProcess: core.NewFactory(sim.SeqProposals(n), core.Options{}),
		MaxRounds:  horizon,
		Observer:   rounds.MultiObserver{tracker, obs},
	})
	if err != nil {
		return 0, err
	}
	rst := tracker.LastChange()
	if rst < 1 {
		rst = 1
	}
	worst := 0
	for p := 0; p < n; p++ {
		// Find the first round from which the shape is constant.
		stableFrom := horizon
		for r := horizon - 1; r >= 1; r-- {
			if !shapes[p][r-1].Equal(shapes[p][horizon-1]) {
				break
			}
			stableFrom = r
		}
		lag := stableFrom - rst
		if lag < 0 {
			lag = 0
		}
		if lag > worst {
			worst = lag
		}
	}
	return worst, nil
}
