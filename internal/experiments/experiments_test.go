package experiments

import (
	"strings"
	"testing"
)

// The quick configuration keeps the full suite affordable in go test;
// cmd/ksetbench runs DefaultConfig for EXPERIMENTS.md.

func TestE1Figure1(t *testing.T) {
	res, err := E1Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("E1 violations: %d\n%s", res.Violations, res.Table.Render())
	}
	if res.Table.NumRows() != 8 {
		t.Fatalf("E1 rows = %d", res.Table.NumRows())
	}
	rendered := res.Table.Render()
	for _, want := range []string{"[1 1]", "[2 2 1 1]", "[3 2 1 1]", "exact"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("E1 table missing %q:\n%s", want, rendered)
		}
	}
}

func TestE2RootComponents(t *testing.T) {
	res, err := E2RootComponents(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("Theorem 1 violated:\n%s", res.Table.Render())
	}
}

func TestE3LowerBound(t *testing.T) {
	res, err := E3LowerBound(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("Theorem 2 tightness violated:\n%s", res.Table.Render())
	}
	if !strings.Contains(res.Table.Render(), "violated (expected)") {
		t.Fatal("E3 should show (k-1)-agreement failing")
	}
}

func TestE4DecisionRounds(t *testing.T) {
	res, err := E4DecisionRounds(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("Lemma 11 bound violated:\n%s", res.Table.Render())
	}
}

func TestE5MessageComplexity(t *testing.T) {
	res, err := E5MessageComplexity(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("message growth unexpected:\n%s", res.Table.Render())
	}
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "n^") {
		t.Fatalf("E5 notes missing exponent: %v", res.Notes)
	}
}

func TestE6Baselines(t *testing.T) {
	res, err := E6Baselines(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("baseline comparison unexpected:\n%s", res.Table.Render())
	}
	rendered := res.Table.Render()
	if !strings.Contains(rendered, "VIOLATES") {
		t.Fatalf("E6 should show FloodMin violating on the loss run:\n%s", rendered)
	}
}

func TestE7Consensus(t *testing.T) {
	res, err := E7Consensus(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("consensus claim violated:\n%s", res.Table.Render())
	}
}

func TestE8Eventual(t *testing.T) {
	res, err := E8Eventual(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("eventual argument mismatch:\n%s", res.Table.Render())
	}
}

func TestE9Ablations(t *testing.T) {
	cfg := QuickConfig()
	cfg.Trials = 8
	res, err := E9Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("ablation broke correctness:\n%s", res.Table.Render())
	}
	if res.Table.NumRows() != 4 {
		t.Fatalf("E9 rows = %d", res.Table.NumRows())
	}
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	cfg := QuickConfig()
	cfg.Trials = 5
	results, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 18 {
		t.Fatalf("suite size = %d", len(results))
	}
	for _, r := range results {
		if r.Violations != 0 {
			t.Errorf("%s: %d violations", r.Name, r.Violations)
		}
		if r.Table == nil || r.Table.NumRows() == 0 {
			t.Errorf("%s: empty table", r.Name)
		}
	}
}

func TestE10GuardFlaw(t *testing.T) {
	res, err := E10GuardFlaw(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("E10 unexpected:\n%s", res.Table.Render())
	}
	rendered := res.Table.Render()
	if !strings.Contains(rendered, "VIOLATES") {
		t.Fatalf("E10 must show the published guard violating:\n%s", rendered)
	}
	if !strings.Contains(rendered, "repaired r>=2n-1") {
		t.Fatalf("E10 must include the repaired guard:\n%s", rendered)
	}
}

func TestE11Convergence(t *testing.T) {
	res, err := E11Convergence(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("convergence lag exceeded 2n:\n%s", res.Table.Render())
	}
	if res.Table.NumRows() != 6 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
}

func TestE12Mobile(t *testing.T) {
	res, err := E12Mobile(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("mobile regime unexpected:\n%s", res.Table.Render())
	}
	if res.Table.NumRows() != 9 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
}

func TestE13TInterval(t *testing.T) {
	res, err := E13TInterval(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("T-interval regime violated Theorem 1:\n%s", res.Table.Render())
	}
	if res.Table.NumRows() != 6 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
}

func TestE14PartitionMerge(t *testing.T) {
	res, err := E14PartitionMerge(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("partition bound not tight:\n%s", res.Table.Render())
	}
	if res.Table.NumRows() != 15 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
}

func TestE15VertexStable(t *testing.T) {
	res, err := E15VertexStable(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("stale-edge bound or consensus violated:\n%s", res.Table.Render())
	}
	if !strings.Contains(res.Table.Render(), "true") {
		t.Fatalf("E15 should reach consensus:\n%s", res.Table.Render())
	}
}

func TestE16Scaling(t *testing.T) {
	cfg := QuickConfig()
	cfg.Trials = 8
	res, err := E16Scaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("scaling sweep violated bounds:\n%s", res.Table.Render())
	}
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
}

// TestDynamicSuiteWorkerIndependent pins the streaming determinism
// contract at the experiment level: the rendered tables of E13-E16 must
// be byte-identical for 1 and 8 sweep workers.
func TestDynamicSuiteWorkerIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("worker-independence sweep in short mode")
	}
	steps := []func(Config) (*Result, error){
		E13TInterval, E14PartitionMerge, E15VertexStable, E16Scaling,
	}
	for i, step := range steps {
		cfg := QuickConfig()
		cfg.Trials = 6
		cfg.Workers = 1
		a, err := step(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 8
		b, err := step(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Table.Render() != b.Table.Render() {
			t.Errorf("E%d table depends on worker count:\n--- workers=1\n%s\n--- workers=8\n%s",
				13+i, a.Table.Render(), b.Table.Render())
		}
	}
}
