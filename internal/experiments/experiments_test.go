package experiments

import (
	"strings"
	"testing"
)

// The quick configuration keeps the full suite affordable in go test;
// cmd/ksetbench runs DefaultConfig for EXPERIMENTS.md.

func TestE1Figure1(t *testing.T) {
	res, err := E1Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("E1 violations: %d\n%s", res.Violations, res.Table.Render())
	}
	if res.Table.NumRows() != 8 {
		t.Fatalf("E1 rows = %d", res.Table.NumRows())
	}
	rendered := res.Table.Render()
	for _, want := range []string{"[1 1]", "[2 2 1 1]", "[3 2 1 1]", "exact"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("E1 table missing %q:\n%s", want, rendered)
		}
	}
}

func TestE2RootComponents(t *testing.T) {
	res, err := E2RootComponents(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("Theorem 1 violated:\n%s", res.Table.Render())
	}
}

func TestE3LowerBound(t *testing.T) {
	res, err := E3LowerBound(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("Theorem 2 tightness violated:\n%s", res.Table.Render())
	}
	if !strings.Contains(res.Table.Render(), "violated (expected)") {
		t.Fatal("E3 should show (k-1)-agreement failing")
	}
}

func TestE4DecisionRounds(t *testing.T) {
	res, err := E4DecisionRounds(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("Lemma 11 bound violated:\n%s", res.Table.Render())
	}
}

func TestE5MessageComplexity(t *testing.T) {
	res, err := E5MessageComplexity(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("message growth unexpected:\n%s", res.Table.Render())
	}
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "n^") {
		t.Fatalf("E5 notes missing exponent: %v", res.Notes)
	}
}

func TestE6Baselines(t *testing.T) {
	res, err := E6Baselines(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("baseline comparison unexpected:\n%s", res.Table.Render())
	}
	rendered := res.Table.Render()
	if !strings.Contains(rendered, "VIOLATES") {
		t.Fatalf("E6 should show FloodMin violating on the loss run:\n%s", rendered)
	}
}

func TestE7Consensus(t *testing.T) {
	res, err := E7Consensus(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("consensus claim violated:\n%s", res.Table.Render())
	}
}

func TestE8Eventual(t *testing.T) {
	res, err := E8Eventual(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("eventual argument mismatch:\n%s", res.Table.Render())
	}
}

func TestE9Ablations(t *testing.T) {
	cfg := QuickConfig()
	cfg.Trials = 8
	res, err := E9Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("ablation broke correctness:\n%s", res.Table.Render())
	}
	if res.Table.NumRows() != 4 {
		t.Fatalf("E9 rows = %d", res.Table.NumRows())
	}
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	cfg := QuickConfig()
	cfg.Trials = 5
	results, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 {
		t.Fatalf("suite size = %d", len(results))
	}
	for _, r := range results {
		if r.Violations != 0 {
			t.Errorf("%s: %d violations", r.Name, r.Violations)
		}
		if r.Table == nil || r.Table.NumRows() == 0 {
			t.Errorf("%s: empty table", r.Name)
		}
	}
}

func TestE10GuardFlaw(t *testing.T) {
	res, err := E10GuardFlaw(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("E10 unexpected:\n%s", res.Table.Render())
	}
	rendered := res.Table.Render()
	if !strings.Contains(rendered, "VIOLATES") {
		t.Fatalf("E10 must show the published guard violating:\n%s", rendered)
	}
	if !strings.Contains(rendered, "repaired r>=2n-1") {
		t.Fatalf("E10 must include the repaired guard:\n%s", rendered)
	}
}

func TestE11Convergence(t *testing.T) {
	res, err := E11Convergence(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("convergence lag exceeded 2n:\n%s", res.Table.Render())
	}
	if res.Table.NumRows() != 6 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
}

func TestE12Mobile(t *testing.T) {
	res, err := E12Mobile(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("mobile regime unexpected:\n%s", res.Table.Render())
	}
	if res.Table.NumRows() != 9 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
}
