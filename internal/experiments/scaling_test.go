package experiments

import (
	"os"
	"testing"
)

// TestE20Smoke runs the n = 128 rung of the scaling sweep — the smallest
// size at which every bitset kernel takes its multi-word path — within
// the tier-1 time budget. The full sweep up to n = 1024 runs via
// cmd/ksetbench (BENCH_7.json) and the nightly lane below.
func TestE20Smoke(t *testing.T) {
	cfg := QuickConfig()
	cfg.Trials = 6
	res, err := e20(cfg, []int{128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("E20 violations at n=128: %d\n%s", res.Violations, res.Table.Render())
	}
	if got, want := res.Table.NumRows(), len(e20Hubs(128)); got != want {
		t.Fatalf("E20 rows = %d, want %d", got, want)
	}
}

// TestE20Nightly512 is the deep rung: n = 512 with 8-word bitset rows.
// Too slow for every push, it runs in the nightly workflow (and locally
// via KSET_NIGHTLY=1 go test ./internal/experiments -run TestE20Nightly).
func TestE20Nightly512(t *testing.T) {
	if os.Getenv("KSET_NIGHTLY") == "" {
		t.Skip("set KSET_NIGHTLY=1 to run the n=512 scaling rung")
	}
	cfg := QuickConfig()
	res, err := e20(cfg, []int{512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("E20 violations at n=512: %d\n%s", res.Violations, res.Table.Render())
	}
}
