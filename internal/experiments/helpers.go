package experiments

import (
	"math/rand"

	"kset/internal/baseline"
	"kset/internal/rounds"
	"kset/internal/stats"
	"kset/internal/trace"
)

// newRng returns a deterministic source for an experiment.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// runBaselineFloodMin executes FloodMin under the given adversary with
// the given proposals and returns the trace outcome.
func runBaselineFloodMin(adv rounds.Adversary, proposals []int64, f, k int) (*trace.Outcome, error) {
	res, err := rounds.RunSequential(rounds.Config{
		Adversary:  adv,
		NewProcess: baseline.NewFloodMinFactory(proposals, f, k),
		MaxRounds:  f + k + 5,
		StopWhen:   rounds.AllDecided,
	})
	if err != nil {
		return nil, err
	}
	return trace.Collect(res)
}

// powerLaw fits y = c·x^e and returns the growth exponent e.
func powerLaw(xs, ys []float64) float64 {
	return stats.PowerLawExponent(xs, ys)
}
