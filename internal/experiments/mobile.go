package experiments

import (
	"fmt"

	"kset/internal/adversary"
	"kset/internal/sim"
)

// E12Mobile exercises the Santoro-Widmayer mobile-omission regime the
// paper cites as [15, 16] ("Time is not a healer"): every round, f
// freshly chosen processes are silenced in an otherwise fully synchronous
// system. Nobody is permanently faulty, yet:
//
//   - if the silence keeps moving, the stable skeleton collapses to
//     self-loops, MinK becomes n, and Algorithm 1 — correctly — decides n
//     distinct values: even ONE mobile omission fault per round makes any
//     nontrivial agreement impossible, matching the classical result;
//
//   - if the silence settles on a fixed set from some round r_s, the
//     skeleton retains the survivors' clique, MinK drops back to a small
//     value, and Algorithm 1 terminates within the Lemma 11 bound.
func E12Mobile(cfg Config) (*Result, error) {
	res := &Result{Name: "E12 mobile omissions (Santoro-Widmayer regime)"}
	table := sim.NewTable("E12: Algorithm 1 under mobile omission faults (n=8)",
		"silence", "f", "distinct", "MinK", "last decision", "within bounds")
	n := 8
	for _, f := range []int{1, 2, 4} {
		// Round-robin forever: the classical schedule sweeps every
		// process within ⌈n/f⌉ ≤ n rounds, so every PT set collapses to
		// {p} and every process decides its round-n estimate at round n.
		// The f processes silenced in round 1 keep their own (private)
		// values and everyone else keeps the minimum of the rest:
		// exactly f+1 distinct decisions. Consensus is impossible with
		// even a single mobile omission fault — "time is not a healer".
		rr := adversary.NewMobileRoundRobin(n, f, 0, cfg.Seed+int64(f))
		out, err := sim.Execute(sim.Spec{
			Adversary: rr,
			Proposals: sim.SeqProposals(n),
			MaxRounds: 6 * n,
		})
		if err != nil {
			return nil, err
		}
		distinct := len(out.DistinctDecisions())
		ok := distinct == f+1 && distinct >= 2 && out.MaxDecisionRound() == n
		if !ok {
			res.Violations++
		}
		table.AddRow("round-robin forever", f, distinct, n,
			out.MaxDecisionRound(), verdict(ok))

		// Randomly moving forever: observational — silence may not
		// sweep everyone before decisions happen, so diversity varies;
		// only termination is asserted.
		mob := adversary.NewMobile(n, f, 0, cfg.Seed+int64(f))
		outR, err := sim.Execute(sim.Spec{
			Adversary: mob,
			Proposals: sim.SeqProposals(n),
			MaxRounds: 6 * n,
		})
		if err != nil {
			return nil, err
		}
		if err := outR.CheckTermination(); err != nil {
			res.Violations++
		}
		table.AddRow("random forever", f, len(outR.DistinctDecisions()), "-",
			outR.MaxDecisionRound(), "observational")

		// Settling at round n: survivors keep their clique, the
		// skeleton's MinK bounds decisions, Lemma 11 bounds latency.
		settled := adversary.NewMobile(n, f, n, cfg.Seed+int64(f)).Settled()
		out2, err := sim.Execute(sim.Spec{
			Adversary: settled,
			Proposals: sim.SeqProposals(n),
		})
		if err != nil {
			return nil, err
		}
		d2 := len(out2.DistinctDecisions())
		bound := out2.RST + 2*n - 1
		ok2 := d2 <= out2.MinK && out2.MaxDecisionRound() <= bound
		if !ok2 {
			res.Violations++
		}
		table.AddRow(fmt.Sprintf("settles at round %d", n), f, d2, out2.MinK,
			out2.MaxDecisionRound(), verdict(ok2))
	}
	res.Table = table
	res.note("round-robin silence forces exactly f+1 values at round n: consensus fails even for f = 1 (time does not heal)")
	res.note("once the silence settles, the surviving structure's MinK bounds decisions again")
	return res, nil
}
