package experiments

import (
	"time"

	"kset/internal/adversary"
	"kset/internal/sim"
	"kset/internal/stats"
)

// e20Sizes is the full sweep of E20LargeN: every size is past the
// one-word boundary, doubling up to 16 words per bitset row.
var e20Sizes = []int{128, 256, 512, 1024}

// e20SuiteSizes is the rung All() runs: past the word boundary on both
// sizes so every multi-word path is exercised, but within the tier-1
// test budget. The full ladder to n = 1024 runs via
// `ksetbench -only E20` (BENCH_7.json) and the nightly n = 512 lane.
var e20SuiteSizes = []int{128, 256}

// e20Hubs returns the hub counts exercised at size n. MinK is computed
// exactly per trial (sim.Execute always evaluates the shares-a-source
// independence number), and on a hub-cluster skeleton the branch-and-
// bound search costs roughly (n/hubs)^(hubs-1) — so the hub count must
// stay small, and smaller still at the largest sizes.
func e20Hubs(n int) []int {
	if n >= 512 {
		return []int{1, 2}
	}
	return []int{1, 2, 4}
}

// e20Trials scales the per-size trial count by the quadratic per-trial
// cost so the sweep's wall clock stays roughly flat across sizes.
func e20Trials(cfg Config, n int) int {
	t := cfg.Trials * (128 * 128) / (n * n)
	return max(2, t)
}

// e20Workers caps sweep parallelism by memory: one in-flight trial holds
// n processes × O(n²) label matrices (≈ 8.6 MB per process at n = 1024),
// so the largest size keeps at most a handful of trials resident.
func e20Workers(cfg Config, n int) int {
	if n >= 1024 {
		return min(cfg.Workers, 4)
	}
	return cfg.Workers
}

// e20 runs the hub-cluster scaling sweep over the given sizes; see
// E20LargeN. Factored out so the CI smoke test can run the n = 128 rung
// and the nightly lane the n = 512 rung in isolation.
func e20(cfg Config, sizes []int) (*Result, error) {
	res := &Result{Name: "E20 multi-word scaling (hub-cluster skeletons)"}
	table := sim.NewTable("E20: Algorithm 1 beyond one word (hub-cluster runs, streamed aggregation)",
		"n", "hubs", "trials", "mean last", "p95 last", "max last", "MinK=hubs", "ms/trial", "violations")
	for ni, n := range sizes {
		for hi, hubs := range e20Hubs(n) {
			trials := e20Trials(cfg, n)
			last := stats.NewStream()
			exact := 0
			viol := 0
			start := time.Now()
			err := sim.StreamSweep(sim.StreamConfig{
				Cells:   trials,
				Workers: e20Workers(cfg, n),
				Spec: func(cell int) (sim.Spec, error) {
					rng := newRng(sim.CellSeed(cfg.Seed+20, (ni*8+hi)*cfg.Trials+cell))
					// A short noisy prefix (p ≈ 2/n extra edges per round)
					// keeps the purge and merge paths honest without
					// changing the skeleton.
					run := adversary.HubClusters(n, hubs, 8, 2/float64(n), rng)
					return sim.Spec{
						Adversary: run,
						Proposals: sim.SeqProposals(n),
					}, nil
				},
				OnOutcome: func(cell int, out *sim.Outcome) error {
					if err := out.CheckTermination(); err != nil {
						viol++
						return nil
					}
					l := out.MaxDecisionRound()
					if l > out.RST+2*n-1 {
						viol++
					}
					if len(out.DistinctDecisions()) > out.MinK {
						viol++
					}
					// The analytic pin: hub-cluster skeletons have MinK =
					// hubs and a single root component by construction, so
					// the multi-word MIS and SCC kernels are checked
					// against known-correct values at every size.
					if out.MinK == hubs && out.RootComps == 1 {
						exact++
					} else {
						viol++
					}
					last.Add(float64(l))
					return nil
				},
			})
			if err != nil {
				return nil, err
			}
			res.Violations += viol
			perTrial := float64(time.Since(start).Milliseconds()) / float64(trials)
			s := last.Summary()
			table.AddRow(n, hubs, trials, s.Mean, s.P95, int(s.Max),
				exact, perTrial, viol)
		}
	}
	res.Table = table
	res.note("hub-cluster skeletons: MinK = hubs and RootComps = 1 held exactly at every size")
	res.note("Lemma 11 (r_ST + 2n - 1) and Theorem 1 (distinct <= MinK) held up to n = %d", sizes[len(sizes)-1])
	return res, nil
}

// E20Suite runs the n = {128, 256} rung of the sweep — every kernel is
// multi-word at both sizes, but the wall clock fits the tier-1 budget.
// All() and `ksetbench -quick` run this rung; the full ladder is
// E20LargeN.
func E20Suite(cfg Config) (*Result, error) { return e20(cfg, e20SuiteSizes) }

// E20LargeN is the multi-word scaling sweep: Algorithm 1 on hub-cluster
// skeletons at n = 128..1024, where every bitset kernel (merge, purge,
// reachability, prune, SCC, MIS) runs its multi-word path. Each trial is
// held to the same bounds as E16 — termination, Lemma 11's r_ST + 2n - 1,
// Theorem 1's distinct <= MinK — plus the analytic pins MinK = hubs and
// RootComps = 1 that the skeleton family guarantees by construction. The
// ms/trial column is the scaling curve published as BENCH_7.json.
func E20LargeN(cfg Config) (*Result, error) { return e20(cfg, e20Sizes) }
