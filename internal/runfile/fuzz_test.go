package runfile

import (
	"bytes"
	"math/rand"
	"testing"

	"kset/internal/adversary"
)

// fuzzSeeds returns representative encoded runs for the fuzz corpus.
func fuzzSeeds() [][]byte {
	rng := rand.New(rand.NewSource(1))
	return [][]byte{
		Encode(adversary.Figure1()),
		Encode(adversary.Isolation(1)),
		Encode(adversary.Complete(4)),
		Encode(adversary.RandomRun(5, 3, rng)),
		Encode(adversary.Eventual(adversary.Complete(3), 2)),
		[]byte("KSR1"), // magic only
	}
}

// FuzzDecode feeds arbitrary bytes through Decode; every accepted input
// must round-trip through Encode to an equal schedule, and no input may
// panic or allocate graphs beyond what its own length can justify (the
// decoder bounds universe, prefix, and edge counts against the
// remaining input).
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		run, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(run)
		run2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded run does not decode: %v", err)
		}
		if run2.N() != run.N() || run2.PrefixLen() != run.PrefixLen() {
			t.Fatalf("round-trip changed the shape: n %d->%d prefix %d->%d",
				run.N(), run2.N(), run.PrefixLen(), run2.PrefixLen())
		}
		for r := 1; r <= run.StabilizationRound(); r++ {
			if !run.Graph(r).Equal(run2.Graph(r)) {
				t.Fatalf("round-trip changed round %d", r)
			}
		}
		// Canonical: a second encoding must be byte-identical.
		if !bytes.Equal(re, Encode(run2)) {
			t.Fatal("encoding is not canonical")
		}
	})
}
