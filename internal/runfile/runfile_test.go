package runfile

import (
	"bytes"
	"math/rand"
	"testing"

	"kset/internal/adversary"
	"kset/internal/sim"
)

func TestRoundTripFigure1(t *testing.T) {
	orig := adversary.Figure1()
	got, err := Decode(Encode(orig))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != orig.N() || got.PrefixLen() != orig.PrefixLen() {
		t.Fatalf("shape mismatch: n=%d prefix=%d", got.N(), got.PrefixLen())
	}
	for r := 1; r <= orig.PrefixLen()+2; r++ {
		if !got.Graph(r).Equal(orig.Graph(r)) {
			t.Fatalf("round %d graph differs", r)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(12)
		orig := adversary.RandomSources(n, 1+rng.Intn(n), rng.Intn(6), 0.4, rng)
		got, err := Decode(Encode(orig))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for r := 1; r <= orig.PrefixLen()+1; r++ {
			if !got.Graph(r).Equal(orig.Graph(r)) {
				t.Fatalf("n=%d round %d differs", n, r)
			}
		}
		if !got.StableSkeleton().Equal(orig.StableSkeleton()) {
			t.Fatal("stable skeleton differs after round-trip")
		}
	}
}

func TestReplayedRunProducesIdenticalDecisions(t *testing.T) {
	// The point of runfiles: a recorded counterexample must replay
	// bit-identically. Round-trip the E10 witness and re-run it.
	orig := adversary.ConsensusViolation()
	replayed, err := Decode(Encode(orig))
	if err != nil {
		t.Fatal(err)
	}
	props := adversary.ConsensusViolationProposals()
	a, err := sim.Execute(sim.Spec{Adversary: orig, Proposals: props})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Execute(sim.Spec{Adversary: replayed, Proposals: props})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] || a.DecideRounds[i] != b.DecideRounds[i] {
			t.Fatalf("p%d diverges on replay", i+1)
		}
	}
}

func TestWriteRead(t *testing.T) {
	var buf bytes.Buffer
	orig := adversary.LowerBound(6, 3)
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.StableSkeleton().Equal(orig.StableSkeleton()) {
		t.Fatal("Write/Read mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	good := Encode(adversary.Figure1())
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Decode([]byte("XXXX")); err != ErrBadMagic {
		t.Fatalf("bad magic error = %v", err)
	}
	for cut := 4; cut < len(good); cut += 7 {
		if _, err := Decode(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeRejectsBadEdges(t *testing.T) {
	// magic + n=2 + prefix=0 + stable graph with out-of-range edge.
	buf := []byte{'K', 'S', 'R', '1', 2, 0, 1, 5, 0}
	if _, err := Decode(buf); err == nil {
		t.Fatal("out-of-universe edge accepted")
	}
	// Explicit self-loop (must be implied, not stored).
	buf = []byte{'K', 'S', 'R', '1', 2, 0, 1, 1, 1}
	if _, err := Decode(buf); err == nil {
		t.Fatal("explicit self-loop accepted")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	run := adversary.Figure1()
	if !bytes.Equal(Encode(run), Encode(run)) {
		t.Fatal("encoding not deterministic")
	}
}
