// Package runfile serializes eventually-constant runs (an adversary's
// prefix graphs plus its stable graph) to a compact binary format, so
// that interesting runs — counterexamples, regression cases, fuzzing
// finds — can be stored, shared, and replayed bit-identically.
//
// Layout (all integers unsigned varints):
//
//	magic   "KSR1" (4 bytes)
//	varint  n      (universe size)
//	varint  p      (number of prefix graphs)
//	graph × (p+1)  (prefix graphs, then the stable graph)
//
// where each graph is
//
//	varint  e      (edge count)
//	edge × e:      varint from, varint to
//
// All graphs must contain every node and every self-loop (the round
// model's requirement), so only edges are stored; nodes are implied.
package runfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"kset/internal/adversary"
	"kset/internal/graph"
)

var magic = [4]byte{'K', 'S', 'R', '1'}

// ErrBadMagic reports input that is not a runfile.
var ErrBadMagic = errors.New("runfile: bad magic")

// Decoding limits. A graph over universe n costs Θ(n²/8) bytes of bitset
// arena, so untrusted headers must not be able to demand huge universes
// or graph counts before any actual edge data has been seen (found by
// FuzzDecode: a 10-byte input could previously request a 2^20-node
// universe). MaxUniverse is far above any simulated system size;
// MaxPrefix matches the longest schedules the adversaries generate.
const (
	// MaxUniverse is the largest accepted universe size n.
	MaxUniverse = 4096
	// MaxPrefix is the largest accepted prefix length.
	MaxPrefix = 1 << 20
)

// Encode serializes a run.
func Encode(run *adversary.Run) []byte {
	n := run.N()
	buf := append([]byte(nil), magic[:]...)
	buf = binary.AppendUvarint(buf, uint64(n))
	p := run.PrefixLen()
	buf = binary.AppendUvarint(buf, uint64(p))
	for r := 1; r <= p; r++ {
		buf = appendGraph(buf, run.Graph(r))
	}
	return appendGraph(buf, run.Base())
}

// Write streams the encoding to w.
func Write(w io.Writer, run *adversary.Run) error {
	_, err := w.Write(Encode(run))
	return err
}

func appendGraph(buf []byte, g *graph.Digraph) []byte {
	edges := g.Edges()
	// Self-loops are implied; store only the rest.
	count := 0
	for _, e := range edges {
		if e.From != e.To {
			count++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(count))
	for _, e := range edges {
		if e.From == e.To {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(e.From))
		buf = binary.AppendUvarint(buf, uint64(e.To))
	}
	return buf
}

// Decode parses a runfile back into a replayable adversary.
func Decode(buf []byte) (*adversary.Run, error) {
	if len(buf) < 4 || buf[0] != magic[0] || buf[1] != magic[1] ||
		buf[2] != magic[2] || buf[3] != magic[3] {
		return nil, ErrBadMagic
	}
	buf = buf[4:]
	un, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, errTrunc("universe")
	}
	buf = buf[k:]
	n := int(un)
	if n < 1 || n > MaxUniverse {
		return nil, fmt.Errorf("runfile: implausible universe %d", n)
	}
	up, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, errTrunc("prefix length")
	}
	buf = buf[k:]
	p := int(up)
	if p < 0 || p > MaxPrefix {
		return nil, fmt.Errorf("runfile: implausible prefix length %d", p)
	}
	// Every graph costs at least one byte (its edge-count varint), so a
	// header demanding more graphs than there are bytes left is lying;
	// rejecting it here keeps the decode cost proportional to the input.
	if p+1 > len(buf) {
		return nil, fmt.Errorf("runfile: prefix length %d exceeds remaining input %d", p, len(buf))
	}
	graphs := make([]*graph.Digraph, 0, p+1)
	for i := 0; i <= p; i++ {
		g, rest, err := decodeGraph(buf, n)
		if err != nil {
			return nil, fmt.Errorf("runfile: graph %d: %w", i, err)
		}
		graphs = append(graphs, g)
		buf = rest
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("runfile: %d trailing bytes", len(buf))
	}
	return adversary.NewRun(graphs[:p], graphs[p]), nil
}

// Read consumes all of r and decodes it.
func Read(r io.Reader) (*adversary.Run, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}

// WriteFile encodes run into the named file — the counterexample-export
// entry point of the falsification engine (internal/check).
func WriteFile(path string, run *adversary.Run) error {
	return os.WriteFile(path, Encode(run), 0o644)
}

// ReadFile decodes the named file back into a replayable adversary.
func ReadFile(path string) (*adversary.Run, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}

func decodeGraph(buf []byte, n int) (*graph.Digraph, []byte, error) {
	g := graph.NewFullDigraph(n)
	g.AddSelfLoops()
	ue, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTrunc("edge count")
	}
	buf = buf[k:]
	// Each stored edge is at least two varint bytes; a count beyond that
	// is a lying header, not a long file.
	if ue > uint64(len(buf))/2 {
		return nil, nil, fmt.Errorf("edge count %d exceeds remaining input %d", ue, len(buf))
	}
	for i := uint64(0); i < ue; i++ {
		uf, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, nil, errTrunc("edge from")
		}
		buf = buf[k:]
		ut, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, nil, errTrunc("edge to")
		}
		buf = buf[k:]
		// Compare in uint64 space: a >= 2^63 varint would overflow int
		// to a negative value and sail past an int comparison (found by
		// FuzzDecode: panic in AddEdge instead of a decode error).
		if uf >= uint64(n) || ut >= uint64(n) {
			return nil, nil, fmt.Errorf("edge p%d->p%d out of universe %d", uf+1, ut+1, n)
		}
		if uf == ut {
			return nil, nil, fmt.Errorf("explicit self-loop p%d (implied, must not be stored)", uf+1)
		}
		g.AddEdge(int(uf), int(ut))
	}
	return g, buf, nil
}

func errTrunc(what string) error { return fmt.Errorf("runfile: truncated at %s", what) }
