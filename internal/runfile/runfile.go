// Package runfile serializes eventually-constant runs (an adversary's
// prefix graphs plus its stable graph) to a compact binary format, so
// that interesting runs — counterexamples, regression cases, fuzzing
// finds — can be stored, shared, and replayed bit-identically.
//
// Layout (all integers unsigned varints):
//
//	magic   "KSR1" (4 bytes)
//	varint  n      (universe size)
//	varint  p      (number of prefix graphs)
//	graph × (p+1)  (prefix graphs, then the stable graph)
//
// where each graph is
//
//	varint  e      (edge count)
//	edge × e:      varint from, varint to
//
// All graphs must contain every node and every self-loop (the round
// model's requirement), so only edges are stored; nodes are implied.
package runfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"kset/internal/adversary"
	"kset/internal/graph"
)

var magic = [4]byte{'K', 'S', 'R', '1'}

// ErrBadMagic reports input that is not a runfile.
var ErrBadMagic = errors.New("runfile: bad magic")

// Encode serializes a run.
func Encode(run *adversary.Run) []byte {
	n := run.N()
	buf := append([]byte(nil), magic[:]...)
	buf = binary.AppendUvarint(buf, uint64(n))
	p := run.PrefixLen()
	buf = binary.AppendUvarint(buf, uint64(p))
	for r := 1; r <= p; r++ {
		buf = appendGraph(buf, run.Graph(r))
	}
	return appendGraph(buf, run.Base())
}

// Write streams the encoding to w.
func Write(w io.Writer, run *adversary.Run) error {
	_, err := w.Write(Encode(run))
	return err
}

func appendGraph(buf []byte, g *graph.Digraph) []byte {
	edges := g.Edges()
	// Self-loops are implied; store only the rest.
	count := 0
	for _, e := range edges {
		if e.From != e.To {
			count++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(count))
	for _, e := range edges {
		if e.From == e.To {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(e.From))
		buf = binary.AppendUvarint(buf, uint64(e.To))
	}
	return buf
}

// Decode parses a runfile back into a replayable adversary.
func Decode(buf []byte) (*adversary.Run, error) {
	if len(buf) < 4 || buf[0] != magic[0] || buf[1] != magic[1] ||
		buf[2] != magic[2] || buf[3] != magic[3] {
		return nil, ErrBadMagic
	}
	buf = buf[4:]
	un, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, errTrunc("universe")
	}
	buf = buf[k:]
	n := int(un)
	if n < 1 || n > 1<<20 {
		return nil, fmt.Errorf("runfile: implausible universe %d", n)
	}
	up, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, errTrunc("prefix length")
	}
	buf = buf[k:]
	p := int(up)
	if p < 0 || p > 1<<24 {
		return nil, fmt.Errorf("runfile: implausible prefix length %d", p)
	}
	graphs := make([]*graph.Digraph, 0, p+1)
	for i := 0; i <= p; i++ {
		g, rest, err := decodeGraph(buf, n)
		if err != nil {
			return nil, fmt.Errorf("runfile: graph %d: %w", i, err)
		}
		graphs = append(graphs, g)
		buf = rest
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("runfile: %d trailing bytes", len(buf))
	}
	return adversary.NewRun(graphs[:p], graphs[p]), nil
}

// Read consumes all of r and decodes it.
func Read(r io.Reader) (*adversary.Run, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}

func decodeGraph(buf []byte, n int) (*graph.Digraph, []byte, error) {
	g := graph.NewFullDigraph(n)
	g.AddSelfLoops()
	ue, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTrunc("edge count")
	}
	buf = buf[k:]
	for i := uint64(0); i < ue; i++ {
		uf, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, nil, errTrunc("edge from")
		}
		buf = buf[k:]
		ut, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, nil, errTrunc("edge to")
		}
		buf = buf[k:]
		if int(uf) >= n || int(ut) >= n {
			return nil, nil, fmt.Errorf("edge p%d->p%d out of universe %d", uf+1, ut+1, n)
		}
		if uf == ut {
			return nil, nil, fmt.Errorf("explicit self-loop p%d (implied, must not be stored)", uf+1)
		}
		g.AddEdge(int(uf), int(ut))
	}
	return g, buf, nil
}

func errTrunc(what string) error { return fmt.Errorf("runfile: truncated at %s", what) }
