package predicate

import (
	"math/rand"
	"testing"

	"kset/internal/graph"
)

func TestNoSplit(t *testing.T) {
	// All hear p1 and themselves: any two HO sets share p1.
	g := loopy(4)
	for v := 0; v < 4; v++ {
		g.AddEdge(0, v)
	}
	if !NoSplit(g) {
		t.Fatal("star should satisfy NoSplit")
	}
	// Two isolated pairs: split.
	h := loopy(4, [2]int{0, 1}, [2]int{1, 0}, [2]int{2, 3}, [2]int{3, 2})
	if NoSplit(h) {
		t.Fatal("disjoint pairs should violate NoSplit")
	}
}

func TestMajorityHO(t *testing.T) {
	g := graph.CompleteDigraph(5)
	if !MajorityHO(g) {
		t.Fatal("complete graph has majority HO sets")
	}
	g.RemoveEdge(0, 1)
	g.RemoveEdge(2, 1)
	// p2 now hears 3 of 5: still a majority.
	if !MajorityHO(g) {
		t.Fatal("3/5 is still a majority")
	}
	g.RemoveEdge(3, 1)
	// p2 hears 2 of 5: no majority.
	if MajorityHO(g) {
		t.Fatal("2/5 is not a majority")
	}
}

func TestMajorityImpliesNoSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(9)
		g := graph.RandomDigraph(n, rng.Float64(), rng)
		if !ImpliesNoSplit(g) {
			t.Fatalf("majority without no-split on %v", g)
		}
		if MajorityHO(g) && !NoSplit(g) {
			t.Fatalf("textbook implication violated on %v", g)
		}
	}
}

func TestUniformHO(t *testing.T) {
	g := graph.CompleteDigraph(3)
	if !UniformHO(g) {
		t.Fatal("complete rounds are uniform")
	}
	g.RemoveEdge(0, 1)
	if UniformHO(g) {
		t.Fatal("asymmetric round reported uniform")
	}
}

func TestKernel(t *testing.T) {
	g := loopy(4)
	for v := 0; v < 4; v++ {
		g.AddEdge(2, v) // p3 heard by everyone
	}
	if got := Kernel(g); !got.Equal(graph.NodeSetOf(2)) {
		t.Fatalf("Kernel = %v, want {p3}", got)
	}
	if !KernelNonEmpty(g) {
		t.Fatal("kernel should be nonempty")
	}
	iso := loopy(3)
	if KernelNonEmpty(iso) {
		t.Fatal("isolation has empty kernel for n > 1")
	}
	single := loopy(1)
	if !KernelNonEmpty(single) {
		t.Fatal("single process is its own kernel")
	}
}

func TestSkeletonKernelImpliesMinK1(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		skel := graph.RandomDigraph(n, rng.Float64()*0.4, rng)
		if !SkeletonKernel(skel).Empty() && MinK(skel) != 1 {
			t.Fatalf("nonempty kernel but MinK = %d for %v", MinK(skel), skel)
		}
	}
}

func TestCrashTolerant(t *testing.T) {
	g := graph.CompleteDigraph(4)
	if !CrashTolerant(g, 0) {
		t.Fatal("complete graph is 0-crash-shaped")
	}
	g.RemoveEdge(1, 0)
	g.RemoveEdge(1, 2)
	if CrashTolerant(g, 0) {
		t.Fatal("one silent process is not 0-crash-shaped")
	}
	if !CrashTolerant(g, 1) {
		t.Fatal("one silent process fits f=1")
	}
}

func TestHoldsEveryRound(t *testing.T) {
	full := graph.CompleteDigraph(3)
	weak := loopy(3)
	graphs := []*graph.Digraph{full, full, weak}
	at := func(r int) *graph.Digraph { return graphs[r-1] }
	if !HoldsEveryRound(MajorityHO, at, 2) {
		t.Fatal("first two rounds satisfy majority")
	}
	if HoldsEveryRound(MajorityHO, at, 3) {
		t.Fatal("round 3 breaks majority")
	}
}
