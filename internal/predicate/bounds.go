package predicate

import (
	"math/rand"

	"kset/internal/graph"
)

// MinK is exact but exponential in the worst case (it computes an
// independence number). For skeletons beyond a few dozen processes the
// experiment harness needs cheap two-sided bounds:
//
//	MinKLower(skel) <= MinK(skel) <= MinKUpper(skel)
//
// The lower bound is a maximal independent set found greedily (any
// independent set witnesses that Psrcs fails below its size); the upper
// bound is a greedy clique cover (every clique of the shares-a-source
// graph contributes at most one member to any independent set). Both are
// deterministic; MinKLowerRandomized restarts the greedy search from
// random orders to tighten the lower bound.

// MinKLower returns a lower bound on MinK: the size of a greedily built
// maximal independent set of the shares-a-source graph (minimum-degree
// heuristic).
func MinKLower(skel *graph.Digraph) int {
	return greedyIndependent(SharesSourceGraph(skel), nil).Len()
}

// MinKLowerRandomized tightens MinKLower with `restarts` random greedy
// orders; it never returns less than MinKLower.
func MinKLowerRandomized(skel *graph.Digraph, restarts int, rng *rand.Rand) int {
	h := SharesSourceGraph(skel)
	best := greedyIndependent(h, nil).Len()
	n := h.N()
	for i := 0; i < restarts; i++ {
		order := rng.Perm(n)
		if got := greedyIndependent(h, order).Len(); got > best {
			best = got
		}
	}
	return best
}

// MinKUpper returns an upper bound on MinK: the number of cliques in a
// greedy clique cover of the shares-a-source graph.
func MinKUpper(skel *graph.Digraph) int {
	h := SharesSourceGraph(skel)
	n := h.N()
	assigned := graph.NewNodeSet(n)
	cliques := 0
	for v := 0; v < n; v++ {
		if assigned.Has(v) {
			continue
		}
		// Grow a clique starting from v: candidates are unassigned
		// neighbors adjacent to every member so far.
		clique := graph.NodeSetOf(v)
		assigned.Add(v)
		cand := h.OutNeighbors(v)
		cand.SubtractWith(assigned)
		for {
			pick := -1
			cand.ForEach(func(w int) {
				if pick == -1 {
					pick = w
				}
			})
			if pick == -1 {
				break
			}
			clique.Add(pick)
			assigned.Add(pick)
			cand.Remove(pick)
			cand.IntersectWith(h.OutNeighbors(pick))
			cand.SubtractWith(assigned)
		}
		cliques++
	}
	return cliques
}

// greedyIndependent builds a maximal independent set. With a nil order it
// repeatedly picks the unremoved vertex of minimum remaining degree;
// otherwise it scans vertices in the given order.
func greedyIndependent(h *graph.Digraph, order []int) graph.NodeSet {
	n := h.N()
	removed := graph.NewNodeSet(n)
	out := graph.NewNodeSet(n)
	take := func(v int) {
		out.Add(v)
		removed.Add(v)
		h.OutNeighbors(v).ForEach(func(w int) { removed.Add(w) })
	}
	if order != nil {
		for _, v := range order {
			if !removed.Has(v) {
				take(v)
			}
		}
		return out
	}
	for {
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if removed.Has(v) {
				continue
			}
			deg := 0
			h.OutNeighbors(v).ForEach(func(w int) {
				if !removed.Has(w) && w != v {
					deg++
				}
			})
			if deg < bestDeg {
				best, bestDeg = v, deg
			}
		}
		if best == -1 {
			return out
		}
		take(best)
	}
}

// MinKBounds returns (lower, upper) bounds on MinK computed in polynomial
// time. lower == upper pins MinK exactly without the exponential search.
func MinKBounds(skel *graph.Digraph) (lower, upper int) {
	return MinKLower(skel), MinKUpper(skel)
}
