package predicate

import (
	"kset/internal/graph"
)

// This file collects classic communication predicates from the
// round-by-round literature the paper builds on, expressed over the
// structures of this reproduction. They come in two flavors:
//
//   - round-wise predicates over a single communication graph G^r (the
//     Heard-Of style: a run satisfies the predicate if every round does);
//   - skeleton predicates over G^∩∞ (the paper's style, like Psrcs).
//
// Sources: Charron-Bost & Schiper, "The Heard-Of model" (Distributed
// Computing 22(1), 2009) for Pnosplit and the majority predicates; Gafni,
// PODC 1998 for the RRFD view; Santoro & Widmayer, STACS 1989 for the
// mobile-omission regimes exercised by adversary.Mobile.

// RoundPredicate is a predicate over one round's communication graph.
type RoundPredicate func(g *graph.Digraph) bool

// HoldsEveryRound checks a round-wise predicate over rounds 1..horizon of
// an eventually-constant graph sequence produced by graphAt.
func HoldsEveryRound(pred RoundPredicate, graphAt func(r int) *graph.Digraph, horizon int) bool {
	for r := 1; r <= horizon; r++ {
		if !pred(graphAt(r)) {
			return false
		}
	}
	return true
}

// NoSplit is the HO predicate P_nosplit: any two heard-of sets intersect
// (∀p, q: HO(p) ∩ HO(q) ≠ ∅). It is the classic requirement for safe
// voting-style consensus algorithms such as OneThirdRule's safety.
func NoSplit(g *graph.Digraph) bool {
	n := g.N()
	for p := 0; p < n; p++ {
		inP := g.InNeighbors(p)
		for q := p + 1; q < n; q++ {
			if !inP.Intersects(g.InNeighbors(q)) {
				return false
			}
		}
	}
	return true
}

// MajorityHO reports whether every process hears a strict majority this
// round (∀p: |HO(p)| > n/2). Majority heard-of sets imply NoSplit.
func MajorityHO(g *graph.Digraph) bool {
	n := g.N()
	for p := 0; p < n; p++ {
		if 2*g.InDegree(p) <= n {
			return false
		}
	}
	return true
}

// UniformHO reports whether all processes hear exactly the same set this
// round (∀p, q: HO(p) = HO(q)) — the "space-uniform" rounds under which
// one round of voting decides.
func UniformHO(g *graph.Digraph) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	first := g.InNeighbors(0)
	for p := 1; p < n; p++ {
		if !g.InNeighbors(p).Equal(first) {
			return false
		}
	}
	return true
}

// KernelNonEmpty reports whether some process is heard by everyone this
// round (⋂_p HO(p) ≠ ∅ — the round's "kernel"). A perpetual nonempty
// kernel with a fixed member makes that member a universal 2-source, i.e.
// Psrcs(1) on the skeleton.
func KernelNonEmpty(g *graph.Digraph) bool {
	return !Kernel(g).Empty()
}

// Kernel returns ⋂_p HO(p): the processes heard by everyone this round.
func Kernel(g *graph.Digraph) graph.NodeSet {
	n := g.N()
	acc := graph.FullNodeSet(n)
	for p := 0; p < n; p++ {
		acc.IntersectWith(g.InNeighbors(p))
	}
	return acc
}

// SkeletonKernel returns the kernel of the stable skeleton: processes
// perpetually heard by everyone. Nonempty iff Psrcs(1) holds via a single
// universal source (sufficient, not necessary, for MinK = 1).
func SkeletonKernel(skel *graph.Digraph) graph.NodeSet { return Kernel(skel) }

// CrashTolerant reports whether the round graph is consistent with at
// most f crashed processes in a synchronous system: at most f processes
// have missing out-edges, and the silent set is consistent (a process
// either reaches everyone or is crashed). This is the classic f-resilient
// synchronous round shape FloodMin assumes.
func CrashTolerant(g *graph.Digraph, f int) bool {
	n := g.N()
	broken := 0
	for p := 0; p < n; p++ {
		if g.OutDegree(p) < n {
			broken++
		}
	}
	return broken <= f
}

// ImpliesNoSplit re-checks the textbook implication "majority heard-of
// sets imply no-split" on a concrete graph; exported for the test suite
// and for documentation of the predicate hierarchy.
func ImpliesNoSplit(g *graph.Digraph) bool {
	if !MajorityHO(g) {
		return true // implication vacuous
	}
	return NoSplit(g)
}
