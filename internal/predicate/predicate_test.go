package predicate

import (
	"math/rand"
	"testing"

	"kset/internal/graph"
)

func loopy(n int, edges ...[2]int) *graph.Digraph {
	g := graph.NewFullDigraph(n)
	g.AddSelfLoops()
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// figure1Skeleton is the paper's Figure 1b stable skeleton, for which
// Psrcs(3) holds.
func figure1Skeleton() *graph.Digraph {
	return loopy(6,
		[2]int{0, 1}, [2]int{1, 0},
		[2]int{2, 3}, [2]int{3, 4}, [2]int{4, 2},
		[2]int{4, 5})
}

func TestPsrcBasic(t *testing.T) {
	// p5 -> p3 and p5 -> p6 in Figure 1b: p5 is a 2-source for {p3, p6}.
	skel := figure1Skeleton()
	if !Psrc(skel, 4, graph.NodeSetOf(2, 5)) {
		t.Fatal("p5 should be 2-source for {p3,p6}")
	}
	// p1 only reaches p1, p2: not a 2-source for {p3, p6}.
	if Psrc(skel, 0, graph.NodeSetOf(2, 5)) {
		t.Fatal("p1 should not be a 2-source for {p3,p6}")
	}
}

func TestPsrcSelfCounts(t *testing.T) {
	// The paper allows p = q: a process hearing itself plus one other.
	// p1 -> p2 with self-loops: p1 ∈ PT(p1) ∩ PT(p2).
	skel := loopy(2, [2]int{0, 1})
	if !Psrc(skel, 0, graph.NodeSetOf(0, 1)) {
		t.Fatal("self-loop 2-source not recognized")
	}
}

func TestPsrcRequiresTwoDistinct(t *testing.T) {
	skel := loopy(3) // only self-loops
	if Psrc(skel, 0, graph.NodeSetOf(0, 1, 2)) {
		t.Fatal("single receiver cannot make a 2-source")
	}
}

func TestTwoSources(t *testing.T) {
	skel := figure1Skeleton()
	srcs := TwoSources(skel, graph.NodeSetOf(2, 5))
	if !srcs.Equal(graph.NodeSetOf(4)) {
		t.Fatalf("TwoSources = %v, want {p5}", srcs)
	}
}

func TestCommonSources(t *testing.T) {
	skel := figure1Skeleton()
	if got := CommonSources(skel, 2, 5); !got.Equal(graph.NodeSetOf(4)) {
		t.Fatalf("CommonSources(p3,p6) = %v, want {p5}", got)
	}
	if got := CommonSources(skel, 0, 5); !got.Empty() {
		t.Fatalf("CommonSources(p1,p6) = %v, want empty", got)
	}
}

func TestFigure1SatisfiesPsrcs3Not2(t *testing.T) {
	skel := figure1Skeleton()
	if !Holds(skel, 3) {
		t.Fatal("Psrcs(3) should hold for Figure 1 (paper statement)")
	}
	if Holds(skel, 2) {
		t.Fatal("Psrcs(2) should fail: {p1,p3,p6} pairwise share no source")
	}
	if got := MinK(skel); got != 3 {
		t.Fatalf("MinK = %d, want 3", got)
	}
}

func TestHoldsEdgeCases(t *testing.T) {
	skel := loopy(3)
	if Holds(skel, 0) {
		t.Fatal("k=0 never holds")
	}
	if !Holds(skel, 3) {
		t.Fatal("k >= n holds vacuously")
	}
	// Only self-loops: every pair shares nothing; MinK = n.
	if got := MinK(skel); got != 3 {
		t.Fatalf("MinK of isolated = %d, want 3", got)
	}
}

func TestSingleSourceStar(t *testing.T) {
	// One process s heard by everyone: Psrcs(1) holds (consensus-grade).
	n := 5
	skel := loopy(n)
	for v := 0; v < n; v++ {
		skel.AddEdge(0, v)
	}
	if got := MinK(skel); got != 1 {
		t.Fatalf("MinK of star = %d, want 1", got)
	}
	if !Holds(skel, 1) {
		t.Fatal("Psrcs(1) should hold for a star")
	}
}

func TestSharesSourceGraphSymmetricNoSelfLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 50; trial++ {
		skel := graph.RandomDigraph(7, 0.3, rng)
		h := SharesSourceGraph(skel)
		for u := 0; u < 7; u++ {
			if h.HasEdge(u, u) {
				t.Fatal("self-loop in shares graph")
			}
			for v := 0; v < 7; v++ {
				if h.HasEdge(u, v) != h.HasEdge(v, u) {
					t.Fatal("shares graph not symmetric")
				}
			}
		}
	}
}

func TestSharesSourceGraphEdges(t *testing.T) {
	skel := figure1Skeleton()
	h := SharesSourceGraph(skel)
	// p3 and p6 share p5.
	if !h.HasEdge(2, 5) {
		t.Fatal("p3~p6 missing")
	}
	// p1 and p6 share nothing.
	if h.HasEdge(0, 5) {
		t.Fatal("p1~p6 spurious")
	}
	// p1 and p2 share both p1 and p2.
	if !h.HasEdge(0, 1) {
		t.Fatal("p1~p2 missing")
	}
}

func TestHoldsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(6)
		skel := graph.RandomDigraph(n, rng.Float64()*0.5, rng)
		for k := 1; k <= n; k++ {
			want := HoldsBrute(skel, k)
			if got := Holds(skel, k); got != want {
				t.Fatalf("Holds(%d) = %v, brute = %v for %v", k, got, want, skel)
			}
		}
	}
}

func TestMinKIsTight(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		skel := graph.RandomDigraph(n, rng.Float64()*0.4, rng)
		k := MinK(skel)
		if !Holds(skel, k) {
			t.Fatalf("Psrcs(MinK=%d) does not hold", k)
		}
		if k > 1 && Holds(skel, k-1) {
			t.Fatalf("Psrcs(MinK-1=%d) holds, MinK not minimal", k-1)
		}
	}
}

func TestViolationWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		skel := graph.RandomDigraph(n, rng.Float64()*0.4, rng)
		k := MinK(skel)
		if k > 1 {
			S, ok := Violation(skel, k-1)
			if !ok {
				t.Fatalf("no witness though Psrcs(%d) fails", k-1)
			}
			if S.Len() != k {
				t.Fatalf("witness size %d, want %d", S.Len(), k)
			}
			if !TwoSources(skel, S).Empty() {
				t.Fatalf("witness %v has a 2-source", S)
			}
		}
		if _, ok := Violation(skel, k); ok {
			t.Fatalf("violation witness for holding predicate k=%d", k)
		}
	}
}

func TestMaxIndependentSetKnownGraphs(t *testing.T) {
	// Triangle: α = 1.
	tri := graph.NewFullDigraph(3)
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if u != v {
				tri.AddEdge(u, v)
			}
		}
	}
	if got := IndependenceNumber(tri); got != 1 {
		t.Fatalf("α(K3) = %d, want 1", got)
	}
	// 5-cycle: α = 2.
	c5 := graph.NewFullDigraph(5)
	for i := 0; i < 5; i++ {
		c5.AddEdge(i, (i+1)%5)
		c5.AddEdge((i+1)%5, i)
	}
	if got := IndependenceNumber(c5); got != 2 {
		t.Fatalf("α(C5) = %d, want 2", got)
	}
	// Empty graph on 4 nodes: α = 4.
	empty := graph.NewFullDigraph(4)
	if got := IndependenceNumber(empty); got != 4 {
		t.Fatalf("α(empty) = %d, want 4", got)
	}
}

func TestMaxIndependentSetAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		h := graph.NewFullDigraph(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					h.AddEdge(u, v)
					h.AddEdge(v, u)
				}
			}
		}
		want := bruteAlpha(h)
		got := MaxIndependentSet(h)
		if got.Len() != want {
			t.Fatalf("α = %d, brute = %d", got.Len(), want)
		}
		// Verify the returned set is independent.
		got.ForEach(func(u int) {
			got.ForEach(func(v int) {
				if u != v && h.HasEdge(u, v) {
					t.Fatalf("returned set not independent: %v", got)
				}
			})
		})
	}
}

func bruteAlpha(h *graph.Digraph) int {
	n := h.N()
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		size := 0
		for u := 0; u < n && ok; u++ {
			if mask&(1<<u) == 0 {
				continue
			}
			size++
			for v := u + 1; v < n && ok; v++ {
				if mask&(1<<v) != 0 && h.HasEdge(u, v) {
					ok = false
				}
			}
		}
		if ok && size > best {
			best = size
		}
	}
	return best
}

func TestRootComponentBound(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(8)
		roots := 1 + rng.Intn(n)
		skel := graph.RandomRootedSkeleton(n, roots, rng)
		rc, minK, ok := RootComponentBound(skel)
		if !ok {
			t.Fatalf("bound violated: roots=%d minK=%d for %v", rc, minK, skel)
		}
		if rc != roots {
			t.Fatalf("constructed %d roots, measured %d", roots, rc)
		}
	}
}

func TestRootComponentBoundOnRandomGraphs(t *testing.T) {
	// Theorem 1's combinatorial core, checked on arbitrary graphs.
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		skel := graph.RandomDigraph(n, rng.Float64()*0.5, rng)
		if _, _, ok := RootComponentBound(skel); !ok {
			t.Fatalf("roots > MinK for %v", skel)
		}
	}
}

func TestTheorem2ConstructionSkeleton(t *testing.T) {
	// The lower-bound run of Theorem 2: L = k-1 processes hear only
	// themselves; everyone else hears itself and s. The paper argues
	// Psrcs(k) holds and (k-1)-set agreement is impossible.
	for n := 3; n <= 8; n++ {
		for k := 2; k < n; k++ {
			skel := loopy(n)
			s := k - 1 // process index of the 2-source s
			for v := k - 1; v < n; v++ {
				skel.AddEdge(s, v)
			}
			if !Holds(skel, k) {
				t.Fatalf("Theorem 2 construction violates Psrcs(%d) (n=%d)", k, n)
			}
			if got := MinK(skel); got != k {
				t.Fatalf("MinK = %d, want exactly %d (n=%d)", got, k, n)
			}
		}
	}
}
