// Package predicate implements the paper's communication predicates over
// stable skeletons, most importantly Psrcs(k) (Section III): in every set
// S of k+1 processes there are two distinct processes q, q' that receive
// timely messages from a common 2-source p, in every round.
//
// Because PT(q) is exactly the in-neighborhood of q in the stable
// skeleton G^∩∞, Psrcs(k) is a property of that one graph. The package
// also provides the structural quantities the paper's theorems connect:
//
//	#root components of G^∩∞  ≤  MinK(G^∩∞)  ≤  k   for any k with Psrcs(k)
//
// where MinK is the smallest k for which Psrcs(k) holds. MinK equals the
// independence number of the "shares-a-source" graph (two processes are
// adjacent iff their timely neighborhoods intersect), computed exactly.
package predicate

import (
	"fmt"
	"math/bits"

	"kset/internal/graph"
)

// Psrc reports whether p is a 2-source for the set S under the given
// stable skeleton: ∃ q, q' ∈ S, q ≠ q', with p ∈ PT(q) ∩ PT(q')
// (paper eq. (8), first line). PT(q) is the in-neighborhood of q, so this
// checks that p has edges to two distinct members of S. p may itself be
// in S (the paper allows p = q via self-loops).
func Psrc(skel *graph.Digraph, p int, S graph.NodeSet) bool {
	if !skel.HasNode(p) {
		return false
	}
	timelyReceivers := skel.OutNeighbors(p)
	timelyReceivers.IntersectWith(S)
	return timelyReceivers.Len() >= 2
}

// TwoSources returns every process that is a 2-source for S:
// {p : Psrc(skel, p, S)}.
func TwoSources(skel *graph.Digraph, S graph.NodeSet) graph.NodeSet {
	out := graph.NewNodeSet(skel.N())
	skel.Nodes().ForEach(func(p int) {
		if Psrc(skel, p, S) {
			out.Add(p)
		}
	})
	return out
}

// CommonSources returns PT(q) ∩ PT(q'): the processes both q and q'
// perpetually hear from.
func CommonSources(skel *graph.Digraph, q, qq int) graph.NodeSet {
	return skel.InNeighbors(q).Intersect(skel.InNeighbors(qq))
}

// SharesSourceGraph builds the undirected "shares-a-source" graph over
// all n processes: q and q' (q ≠ q') are adjacent iff PT(q) ∩ PT(q') ≠ ∅.
// It is represented as a symmetric digraph without self-loops.
func SharesSourceGraph(skel *graph.Digraph) *graph.Digraph {
	n := skel.N()
	h := graph.NewFullDigraph(n)
	for q := 0; q < n; q++ {
		for qq := q + 1; qq < n; qq++ {
			if skel.HasCommonInNeighbor(q, qq) {
				h.AddEdge(q, qq)
				h.AddEdge(qq, q)
			}
		}
	}
	return h
}

// Holds reports whether Psrcs(k) holds for the stable skeleton: every
// (k+1)-subset of processes contains two distinct members with a common
// source (paper eq. (8)). Equivalently, the shares-a-source graph has no
// independent set of size k+1.
func Holds(skel *graph.Digraph, k int) bool {
	if k < 1 {
		return false
	}
	if k >= skel.N() {
		// Sets of size k+1 > n do not exist; the universal
		// quantification is vacuously true.
		return true
	}
	return MinK(skel) <= k
}

// MinK returns the smallest k for which Psrcs(k) holds: the independence
// number α of the shares-a-source graph. A skeleton with all self-loops
// always has α >= 1, and Psrcs(k) holds exactly for all k >= MinK
// (violating sets of size α+1 cannot exist, and an independent set of
// size α is a violating set for k = α-1).
func MinK(skel *graph.Digraph) int {
	return IndependenceNumber(SharesSourceGraph(skel))
}

// Violation returns a set S of k+1 processes with no 2-source, i.e. a
// witness that Psrcs(k) fails, or ok=false if Psrcs(k) holds.
func Violation(skel *graph.Digraph, k int) (S graph.NodeSet, ok bool) {
	if k >= skel.N() || k < 0 {
		return graph.NodeSet{}, false
	}
	shares := SharesSourceGraph(skel)
	is := MaxIndependentSet(shares)
	if is.Len() >= k+1 {
		// Any (k+1)-subset of a maximum independent set violates.
		out := graph.NewNodeSet(skel.N())
		count := 0
		is.ForEach(func(v int) {
			if count < k+1 {
				out.Add(v)
				count++
			}
		})
		return out, true
	}
	return graph.NodeSet{}, false
}

// HoldsBrute checks Psrcs(k) by enumerating every (k+1)-subset; it is the
// oracle the test suite uses to validate Holds and is exponential in n.
func HoldsBrute(skel *graph.Digraph, k int) bool {
	n := skel.N()
	if k < 1 {
		return false
	}
	if k >= n {
		return true
	}
	subset := make([]int, 0, k+1)
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(subset) == k+1 {
			S := graph.NodeSetOf(subset...)
			found := false
			for p := 0; p < n && !found; p++ {
				found = Psrc(skel, p, S)
			}
			return found
		}
		for v := start; v < n; v++ {
			subset = append(subset, v)
			ok := rec(v + 1)
			subset = subset[:len(subset)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// MaxIndependentSet computes a maximum independent set of an undirected
// graph (given as a symmetric digraph) exactly, by branch and bound. All
// n universe nodes participate, present or not (absent nodes have no
// edges and are trivially independent). Exponential worst case; fast in
// practice on the dense shares-a-source graphs MinK feeds it.
//
// For n ≤ 64 the search runs on single-word bitsets; beyond one word it
// runs on a flat multi-word matrix with depth-indexed candidate rows, so
// neither path allocates per branch node. The branch order (always split
// on the smallest candidate, include-branch first) is identical in both,
// so they return bit-identical sets on any graph both can represent
// (pinned by the differential tests).
func MaxIndependentSet(h *graph.Digraph) graph.NodeSet {
	if h.N() <= 64 {
		return maxIndependentSet64(h)
	}
	return maxIndependentSetMulti(h)
}

// maxIndependentSetMulti is the width-generic branch-and-bound. All
// traversal state lives in three flat allocations made once per call: a
// row-major adjacency bit matrix, a (n+1)×words stack of candidate rows
// indexed by recursion depth, and the cur/best sets — no per-branch
// allocation, no NodeSet clones.
func maxIndependentSetMulti(h *graph.Digraph) graph.NodeSet {
	n := h.N()
	words := (n + 63) / 64
	adj := make([]uint64, n*words)
	for v := 0; v < n; v++ {
		if !h.HasNode(v) {
			continue
		}
		row := adj[v*words : (v+1)*words]
		h.ForEachOut(v, func(u int) { row[u/64] |= 1 << (u % 64) })
		row[v/64] &^= 1 << (v % 64) // ignore self-loops
	}
	cand := make([]uint64, (n+1)*words)
	curBest := make([]uint64, 2*words)
	cur, best := curBest[:words], curBest[words:]
	bestLen, curLen := 0, 0
	full := cand[:words]
	for i := range full {
		full[i] = ^uint64(0)
	}
	if n%64 != 0 {
		full[words-1] = (uint64(1) << (n % 64)) - 1
	}
	var rec func(d int)
	rec = func(d int) {
		row := cand[d*words : (d+1)*words]
		for {
			pc := 0
			for _, w := range row {
				pc += bits.OnesCount64(w)
			}
			if curLen+pc <= bestLen {
				return // bound: cannot beat the incumbent
			}
			if pc == 0 {
				copy(best, cur)
				bestLen = curLen
				return
			}
			v := 0
			for i, w := range row {
				if w != 0 {
					v = i*64 + bits.TrailingZeros64(w)
					break
				}
			}
			vi, vb := v/64, uint64(1)<<(v%64)
			// Branch 1: v in the set — drop v and its neighbors.
			next := cand[(d+1)*words : (d+2)*words]
			arow := adj[v*words : (v+1)*words]
			for i := range row {
				next[i] = row[i] &^ arow[i]
			}
			next[vi] &^= vb
			cur[vi] |= vb
			curLen++
			rec(d + 1)
			cur[vi] &^= vb
			curLen--
			// Branch 2: v not in the set — clear v and loop (the loop
			// iteration is the recursive call of the single-word path).
			row[vi] &^= vb
		}
	}
	rec(0)
	out := graph.NewNodeSet(n)
	for i, w := range best {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			out.Add(i*64 + b)
		}
	}
	return out
}

// maxIndependentSet64 is the single-word branch-and-bound used for
// universes of at most 64 nodes — the hot path of MinK, which sim.Execute
// runs once per simulation. It refuses wider universes loudly: a silent
// call would truncate the adjacency to the first word.
func maxIndependentSet64(h *graph.Digraph) graph.NodeSet {
	n := h.N()
	if n > 64 {
		panic(fmt.Sprintf("predicate: maxIndependentSet64 on universe %d > 64", n))
	}
	var adj [64]uint64
	for v := 0; v < n; v++ {
		if !h.HasNode(v) {
			continue
		}
		w := uint64(0)
		h.ForEachOut(v, func(u int) { w |= 1 << u })
		adj[v] = w &^ (1 << v) // ignore self-loops
	}
	var full uint64
	if n == 64 {
		full = ^uint64(0)
	} else {
		full = (1 << n) - 1
	}
	var best, cur uint64
	bestLen, curLen := 0, 0
	var rec func(cand uint64)
	rec = func(cand uint64) {
		if curLen+bits.OnesCount64(cand) <= bestLen {
			return // bound: cannot beat the incumbent
		}
		if cand == 0 {
			best, bestLen = cur, curLen
			return
		}
		v := bits.TrailingZeros64(cand)
		bit := uint64(1) << v
		// Branch 1: v in the set — drop v and its neighbors.
		cur |= bit
		curLen++
		rec(cand &^ bit &^ adj[v])
		cur &^= bit
		curLen--
		// Branch 2: v not in the set.
		rec(cand &^ bit)
	}
	rec(full)
	out := graph.NewNodeSet(n)
	for w := best; w != 0; {
		v := bits.TrailingZeros64(w)
		w &^= 1 << v
		out.Add(v)
	}
	return out
}

// IndependenceNumber returns the size of a maximum independent set of the
// undirected graph h.
func IndependenceNumber(h *graph.Digraph) int {
	return MaxIndependentSet(h).Len()
}

// RootComponentBound re-checks the inequality chain used by Theorem 1 on
// a concrete skeleton: it returns (#root components, MinK) and whether
// #rootcomps ≤ MinK. Distinct root components never share a source (all
// in-edges of a root component member stay inside the component), so one
// process per root component forms an independent set of the
// shares-a-source graph.
func RootComponentBound(skel *graph.Digraph) (rootComps, minK int, ok bool) {
	rootComps = len(graph.RootComponents(skel))
	minK = MinK(skel)
	return rootComps, minK, rootComps <= minK
}
