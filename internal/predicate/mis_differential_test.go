package predicate

import (
	"fmt"
	"math/rand"
	"testing"

	"kset/internal/graph"
)

// Differential battery for the width-generic MaxIndependentSet: the
// multi-word branch-and-bound must return the bit-identical set the
// single-word path returns on every graph both can represent, and must
// stay exact (size matches subset enumeration, result independent) at
// the word-seam widths only it can handle.

// randomSymmetric builds a random undirected graph (symmetric digraph,
// no self-loops) with edge density p, nodes present with probability
// 0.9 — matching what SharesSourceGraph feeds the solver.
func randomSymmetric(rng *rand.Rand, n int, p float64) *graph.Digraph {
	h := graph.NewDigraph(n)
	for v := 0; v < n; v++ {
		if rng.Float64() < 0.9 {
			h.AddNode(v)
		}
	}
	nodes := h.Nodes()
	for u := 0; u < n; u++ {
		if !nodes.Has(u) {
			continue
		}
		for v := u + 1; v < n; v++ {
			if nodes.Has(v) && rng.Float64() < p {
				h.AddEdge(u, v)
				h.AddEdge(v, u)
			}
		}
	}
	return h
}

// assertIndependent fails unless set is independent in h.
func assertIndependent(t *testing.T, h *graph.Digraph, set graph.NodeSet) {
	t.Helper()
	set.ForEach(func(u int) {
		set.ForEach(func(v int) {
			if u != v && h.HasEdge(u, v) {
				t.Fatalf("set %v not independent: edge %d-%d", set, u, v)
			}
		})
	})
}

// bruteIndependenceNumber enumerates all subsets of the ≤20 universe
// nodes and returns the maximum independent-set size.
func bruteIndependenceNumber(h *graph.Digraph) int {
	n := h.N()
	best := 0
	for mask := uint32(0); mask < 1<<n; mask++ {
		sz := 0
		ok := true
		for u := 0; u < n && ok; u++ {
			if mask&(1<<u) == 0 {
				continue
			}
			sz++
			for v := u + 1; v < n; v++ {
				if mask&(1<<v) != 0 && h.HasEdge(u, v) {
					ok = false
					break
				}
			}
		}
		if ok && sz > best {
			best = sz
		}
	}
	return best
}

// TestMISMultiMatchesSingleWordBitIdentical pins the claim the solver's
// doc comment makes: the two paths share a branch order, so on any
// graph with n ≤ 64 the multi-word solver returns the byte-identical
// set — not just the same size — as the single-word fast path.
func TestMISMultiMatchesSingleWordBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7500))
	for _, n := range []int{1, 2, 3, 8, 17, 33, 63, 64} {
		// Sparse wide graphs make exact MIS exponential (the
		// independence number, hence the search depth, grows as
		// density falls), so density scales up with n; the dense end
		// matches the shares-a-source graphs MinK actually solves.
		densities := []float64{0.05, 0.2, 0.5, 0.8}
		if n > 32 {
			densities = []float64{0.4, 0.6, 0.8}
		}
		for _, p := range densities {
			for trial := 0; trial < 10; trial++ {
				h := randomSymmetric(rng, n, p)
				want := maxIndependentSet64(h)
				got := maxIndependentSetMulti(h)
				if !got.Equal(want) {
					t.Fatalf("n=%d p=%.2f trial %d: multi %v != single-word %v\n%s", n, p, trial, got, want, h)
				}
				assertIndependent(t, h, got)
			}
		}
	}
}

// TestMISMultiExactAtBoundaryWidths checks the multi-word solver alone
// at word-seam widths, against greedy lower bounds and independence; at
// these widths exactness is cross-checked by embedding a small graph
// whose independence number brute force knows.
func TestMISMultiExactAtBoundaryWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(7501))
	for _, n := range []int{65, 127, 128, 129, 192} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				// Dense only: sparse exact MIS is exponential at
				// these widths (see the density note above).
				h := randomSymmetric(rng, n, 0.8)
				set := MaxIndependentSet(h)
				assertIndependent(t, h, set)
				// Exactness witness: α ≥ greedy maximal set size.
				greedy := greedyIndependent(h, nil)
				if set.Len() < greedy.Len() {
					t.Fatalf("n=%d trial %d: MIS %d below greedy %d", n, trial, set.Len(), greedy.Len())
				}
			}
		})
	}
}

// TestMISMultiEmbeddedBruteForce embeds small graphs (exact α known by
// subset enumeration) into seam-width universes with all other nodes
// absent: absent nodes are trivially independent, so the expected α is
// brute + (n - small). This gives the multi-word solver a brute-force
// exactness check at widths the single-word path cannot reach.
func TestMISMultiEmbeddedBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7502))
	for _, n := range []int{65, 127, 128, 129, 192} {
		for trial := 0; trial < 6; trial++ {
			small := 4 + rng.Intn(9)
			h := graph.NewDigraph(n)
			core := graph.NewDigraph(small)
			for v := 0; v < small; v++ {
				h.AddNode(v)
				core.AddNode(v)
			}
			for u := 0; u < small; u++ {
				for v := u + 1; v < small; v++ {
					if rng.Float64() < 0.4 {
						h.AddEdge(u, v)
						h.AddEdge(v, u)
						core.AddEdge(u, v)
						core.AddEdge(v, u)
					}
				}
			}
			// Absent high nodes count toward the independent set (the
			// solver's contract: all universe nodes participate).
			want := bruteIndependenceNumber(core) + (n - small)
			got := MaxIndependentSet(h)
			if got.Len() != want {
				t.Fatalf("n=%d trial %d: α = %d, brute %d (core %s)", n, trial, got.Len(), want, core)
			}
			assertIndependent(t, h, got)
		}
	}
}

// TestMaxIndependentSet64RefusesWideUniverse pins the loud-failure
// contract of the fast path: calling it past one word must panic
// instead of silently truncating the adjacency to 64 nodes.
func TestMaxIndependentSet64RefusesWideUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("maxIndependentSet64 accepted a 65-node universe")
		}
	}()
	maxIndependentSet64(graph.NewFullDigraph(65))
}

// TestMinKWideSkeleton runs the full MinK pipeline (shares-a-source
// graph + MIS) on a >64-node skeleton: a disjoint union of c cliques
// with all self-loops has exactly c pairwise source-disjoint groups, so
// MinK must be c at any width.
func TestMinKWideSkeleton(t *testing.T) {
	// The popcount bound prunes block-structured graphs only near the
	// leaves, so the search costs ~(n/c)^(c-1) — keep c small.
	for _, n := range []int{65, 128, 130, 192} {
		for _, c := range []int{1, 2, 5} {
			if n%c != 0 {
				continue
			}
			size := n / c
			skel := graph.NewFullDigraph(n)
			for b := 0; b < c; b++ {
				for u := b * size; u < (b+1)*size; u++ {
					for v := b * size; v < (b+1)*size; v++ {
						skel.AddEdge(u, v)
					}
				}
			}
			if got := MinK(skel); got != c {
				t.Fatalf("n=%d cliques=%d: MinK = %d, want %d", n, c, got, c)
			}
		}
	}
}
