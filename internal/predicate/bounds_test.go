package predicate

import (
	"math/rand"
	"testing"

	"kset/internal/graph"
)

func TestMinKBoundsSandwichExact(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(10)
		skel := graph.RandomDigraph(n, rng.Float64()*0.5, rng)
		exact := MinK(skel)
		lo, hi := MinKBounds(skel)
		if lo > exact || exact > hi {
			t.Fatalf("bounds [%d, %d] do not sandwich exact %d for %v",
				lo, hi, exact, skel)
		}
	}
}

func TestMinKLowerRandomizedImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(8)
		skel := graph.RandomDigraph(n, 0.2, rng)
		base := MinKLower(skel)
		better := MinKLowerRandomized(skel, 20, rng)
		if better < base {
			t.Fatalf("randomized lower bound %d below greedy %d", better, base)
		}
		if better > MinK(skel) {
			t.Fatalf("randomized lower bound %d exceeds exact %d", better, MinK(skel))
		}
	}
}

func TestMinKBoundsTightOnStructuredSkeletons(t *testing.T) {
	// Star: exact MinK = 1 — bounds must pin it.
	star := loopy(6)
	for v := 0; v < 6; v++ {
		star.AddEdge(0, v)
	}
	if lo, hi := MinKBounds(star); lo != 1 || hi != 1 {
		t.Fatalf("star bounds [%d, %d], want [1, 1]", lo, hi)
	}
	// Isolation: shares graph empty, exact MinK = n.
	iso := loopy(5)
	if lo, hi := MinKBounds(iso); lo != 5 || hi != 5 {
		t.Fatalf("isolation bounds [%d, %d], want [5, 5]", lo, hi)
	}
	// Figure 1: exact MinK = 3.
	fig := figure1Skeleton()
	lo, hi := MinKBounds(fig)
	if lo > 3 || hi < 3 {
		t.Fatalf("figure bounds [%d, %d] exclude 3", lo, hi)
	}
}

func TestMinKBoundsScaleToLargeN(t *testing.T) {
	// The point of the bounds: n = 96 would be hopeless for exact MinK
	// on adversarial graphs; the bounds must finish instantly and still
	// sandwich the structural lower bound (#root components).
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 10; trial++ {
		n := 96
		roots := 1 + rng.Intn(8)
		skel := graph.RandomRootedSkeleton(n, roots, rng)
		lo, hi := MinKBounds(skel)
		if lo < roots {
			t.Fatalf("lower bound %d below #roots %d", lo, roots)
		}
		if hi < lo {
			t.Fatalf("upper %d below lower %d", hi, lo)
		}
	}
}

func TestGreedyIndependentIsIndependentAndMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(10)
		skel := graph.RandomDigraph(n, 0.3, rng)
		h := SharesSourceGraph(skel)
		is := greedyIndependent(h, nil)
		is.ForEach(func(u int) {
			is.ForEach(func(v int) {
				if u != v && h.HasEdge(u, v) {
					t.Fatalf("greedy set %v not independent", is)
				}
			})
		})
		// Maximality: every vertex outside has a neighbor inside.
		for v := 0; v < n; v++ {
			if is.Has(v) {
				continue
			}
			if !h.OutNeighbors(v).Intersects(is) {
				t.Fatalf("greedy set %v not maximal: %d addable", is, v)
			}
		}
	}
}
