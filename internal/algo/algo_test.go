package algo_test

// Registry seam tests: the contract is that a broken family is rejected
// loudly at registration time (structural checks + the probe self-test)
// or surfaces at first use (oracle verdicts through CheckAlgorithm) —
// never silently misbehaves rounds deep inside a run. The fakes here
// are deliberately broken in exactly the ways the self-test exists to
// catch.

import (
	"encoding/binary"
	"strings"
	"testing"

	"kset/internal/adversary"
	"kset/internal/algo"
	"kset/internal/rounds"
	"kset/internal/sim"
)

// echoMsg/echoProc/echoCodec are a minimal valid family: broadcast your
// value, adopt the minimum heard, decide it in round 2.
type echoMsg struct{ v int64 }

type echoProc struct {
	self, n  int
	proposal int64
	val      int64
	decided  bool
	dr       int
	out      [2]echoMsg
}

func (p *echoProc) Init(self, n int) { p.self, p.n = self, n; p.val = p.proposal }

func (p *echoProc) Send(r int) any {
	m := &p.out[r&1]
	m.v = p.val
	return m
}

func (p *echoProc) Transition(r int, recv []any) {
	for _, raw := range recv {
		if raw == nil {
			continue
		}
		if m := raw.(*echoMsg); m.v < p.val {
			p.val = m.v
		}
	}
	if r == 2 && !p.decided {
		p.decided = true
		p.dr = r
	}
}

func (p *echoProc) Proposal() int64        { return p.proposal }
func (p *echoProc) Decided() bool          { return p.decided }
func (p *echoProc) Decision() (int64, int) { return p.val, p.dr }

type echoCodec struct {
	// corruptDecode makes the decoder return a different value than was
	// encoded, so decode→re-encode is not byte-identical — the
	// round-trip mismatch the self-test must catch.
	corruptDecode bool
}

func (c echoCodec) Encode(dst []byte, msg any) ([]byte, error) {
	m := msg.(*echoMsg)
	return binary.AppendVarint(dst, m.v), nil
}

func (c echoCodec) NewDecoder(n int) algo.Decoder {
	return &echoDecoder{msgs: make([]echoMsg, n), corrupt: c.corruptDecode}
}

type echoDecoder struct {
	msgs    []echoMsg
	corrupt bool
}

func (d *echoDecoder) Decode(from int, payload []byte) (any, error) {
	v, _ := binary.Varint(payload)
	m := &d.msgs[from]
	m.v = v
	if d.corrupt {
		m.v = v + 1
	}
	return m, nil
}

// echoFamily returns a fully valid registration under the given name;
// tests break one field at a time.
func echoFamily(name string) *algo.Algorithm {
	return &algo.Algorithm{
		Name:  name,
		Codec: echoCodec{},
		Prepare: func(run *algo.Run) error {
			return nil
		},
		NewFactory: func(run algo.Run) (func(int) rounds.Algorithm, error) {
			props := run.Proposals
			return func(self int) rounds.Algorithm {
				return &echoProc{proposal: props[self]}
			}, nil
		},
		MaxRounds:  func(run algo.Run) int { return 4 },
		Probe:      func() algo.Run { return algo.Run{N: 2, Proposals: []int64{3, 9}} },
		FuzzTarget: "internal/algo:FuzzEcho",
	}
}

func TestRegisterValidEcho(t *testing.T) {
	if err := algo.Register(echoFamily("echo-ok")); err != nil {
		t.Fatalf("valid family rejected: %v", err)
	}
	defer algo.Unregister("echo-ok")
	if _, err := algo.Lookup("echo-ok"); err != nil {
		t.Fatal(err)
	}
	if err := algo.Register(echoFamily("echo-ok")); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate registration: got %v", err)
	}
}

func TestRegisterRejectsStructuralBreakage(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(a *algo.Algorithm)
		want   string
	}{
		{"bad name", func(a *algo.Algorithm) { a.Name = "No Spaces!" }, "invalid algorithm name"},
		{"nil codec", func(a *algo.Algorithm) { a.Codec = nil }, "nil Codec"},
		{"nil prepare", func(a *algo.Algorithm) { a.Prepare = nil }, "nil Prepare"},
		{"nil factory", func(a *algo.Algorithm) { a.NewFactory = nil }, "nil NewFactory"},
		{"nil maxrounds", func(a *algo.Algorithm) { a.MaxRounds = nil }, "nil MaxRounds"},
		{"nil probe", func(a *algo.Algorithm) { a.Probe = nil }, "nil Probe"},
		{"no fuzz target", func(a *algo.Algorithm) { a.FuzzTarget = "" }, "fuzz target"},
	}
	for _, c := range cases {
		a := echoFamily("echo-broken")
		c.mutate(a)
		err := algo.Register(a)
		if err == nil {
			algo.Unregister("echo-broken")
			t.Errorf("%s: registration accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestRegisterRejectsNilSend(t *testing.T) {
	a := echoFamily("echo-nilsend")
	a.NewFactory = func(run algo.Run) (func(int) rounds.Algorithm, error) {
		return func(self int) rounds.Algorithm { return nilSendProc{} }, nil
	}
	err := algo.Register(a)
	if err == nil {
		algo.Unregister("echo-nilsend")
		t.Fatal("family whose Send returns nil was registered")
	}
	if !strings.Contains(err.Error(), "Send(1) returned nil") {
		t.Fatalf("error %q does not name the nil send", err)
	}
}

type nilSendProc struct{}

func (nilSendProc) Init(self, n int)           {}
func (nilSendProc) Send(r int) any             { return nil }
func (nilSendProc) Transition(r int, rv []any) {}
func (nilSendProc) Proposal() int64            { return 0 }
func (nilSendProc) Decided() bool              { return false }
func (nilSendProc) Decision() (int64, int)     { return 0, 0 }

func TestRegisterRejectsRoundTripMismatch(t *testing.T) {
	a := echoFamily("echo-corrupt")
	a.Codec = echoCodec{corruptDecode: true}
	err := algo.Register(a)
	if err == nil {
		algo.Unregister("echo-corrupt")
		t.Fatal("codec that does not round-trip was registered")
	}
	if !strings.Contains(err.Error(), "round-trip mismatch") {
		t.Fatalf("error %q does not name the round-trip mismatch", err)
	}
}

func TestRegisterRejectsForeignDecodePanic(t *testing.T) {
	// A codec whose decoder hands back the wrong message type makes the
	// family's Transition assertion panic; the self-test converts that
	// into a registration error instead of letting it kill a process
	// goroutine mid-run.
	a := echoFamily("echo-foreign")
	a.Codec = foreignCodec{}
	err := algo.Register(a)
	if err == nil {
		algo.Unregister("echo-foreign")
		t.Fatal("codec decoding to a foreign type was registered")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error %q does not surface the panic", err)
	}
}

type foreignCodec struct{}

func (foreignCodec) Encode(dst []byte, msg any) ([]byte, error) { return append(dst, 1), nil }
func (foreignCodec) NewDecoder(n int) algo.Decoder              { return foreignDecoder{} }

type foreignDecoder struct{}

func (foreignDecoder) Decode(from int, payload []byte) (any, error) { return "not an echoMsg", nil }

// TestFireDrillOracle registers a family whose oracle always fires and
// proves the verdict surfaces at first use through CheckAlgorithm —
// the same seam internal/check and ksetd read, so a real violation
// cannot be silently swallowed between layers.
func TestFireDrillOracle(t *testing.T) {
	a := echoFamily("echo-firedrill")
	a.Check = func(run algo.Run, f algo.Facts) []algo.Violation {
		return []algo.Violation{{Oracle: "fire-drill", Detail: "deliberately broken oracle fired"}}
	}
	if err := algo.Register(a); err != nil {
		t.Fatal(err)
	}
	defer algo.Unregister("echo-firedrill")

	out, err := sim.Execute(sim.Spec{
		Adversary: adversary.Complete(3),
		Algorithm: "echo-firedrill",
		Proposals: []int64{5, 1, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	viols := out.CheckAlgorithm()
	if len(viols) != 1 || viols[0].Oracle != "fire-drill" {
		t.Fatalf("fire-drill oracle verdict lost: %v", viols)
	}
	// The run itself executed: min-echo decides the minimum everywhere.
	for i := 0; i < out.N; i++ {
		if !out.Decided[i] || out.Decisions[i] != 1 {
			t.Fatalf("p%d decided (%v, %d), want min proposal 1", i+1, out.Decided[i], out.Decisions[i])
		}
	}
}

func TestLookupUnknownListsNames(t *testing.T) {
	_, err := algo.Lookup("no-such-family")
	if err == nil {
		t.Fatal("unknown name resolved")
	}
	for _, want := range []string{"kset", "approx", "registered:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if alg, err := algo.Lookup(""); err != nil || alg.Name != algo.Default {
		t.Fatalf("empty name: got (%v, %v), want the default family", alg, err)
	}
}

// TestBuiltinCodecAllocs re-pins the decode-into-scratch contract for
// every registered family: steady-state encode+decode through the
// family's own codec allocates nothing.
func TestBuiltinCodecAllocs(t *testing.T) {
	for _, name := range algo.Names() {
		alg := algo.MustLookup(name)
		run := alg.Probe()
		run.Algorithm = name
		if err := alg.Prepare(&run); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		factory, err := alg.NewFactory(run)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := factory(0)
		p.Init(0, run.N)
		msg := p.Send(1)
		dec := alg.Codec.NewDecoder(run.N)
		buf := make([]byte, 0, 4096)
		// Warm-up: the first decode may size per-sender scratch.
		if buf, err = alg.Codec.Encode(buf[:0], msg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := dec.Decode(0, buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			b, err := alg.Codec.Encode(buf[:0], msg)
			if err != nil {
				t.Fatal(err)
			}
			buf = b
			if _, err := dec.Decode(0, buf); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state encode+decode allocates %.1f per round, want 0", name, allocs)
		}
	}
}
