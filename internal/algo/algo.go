// Package algo is the algorithm registry: the seam that makes the
// rounds/transport/sim/runtime/check/service stack generic over the
// agreement problem it executes instead of hardwired to k-set
// agreement. A registered Algorithm bundles everything a layer needs to
// run one family end to end — a rounds.Algorithm factory, the wire
// Codec its messages travel under, an outcome extractor, its automatic
// round bound, and its whole-run correctness oracles — so executors,
// the differential harness, and ksetd resolve behavior by name instead
// of type-asserting k-set message types.
//
// Two families are built in: "kset" (Algorithm 1 of the source paper,
// the default everywhere a name is omitted) and "approx" (approximate
// agreement on path/cycle graphs, internal/approx). Registering a third
// is additive: implement rounds.Algorithm + rounds.Decider, a Codec,
// and the oracle hook, then MustRegister it — see DESIGN.md §9.
//
// Register validates every entry up front: structural checks plus a
// smoke run of the factory and a codec round-trip on a real message
// (selfTest), so a broken registration — nil sends, codecs that do not
// round-trip, factories that reject their own probe — fails loudly at
// registration time, not rounds deep inside a process goroutine.
package algo

import (
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"sync"

	"kset/internal/graph"
	"kset/internal/rounds"
	"kset/internal/trace"
)

// Codec translates between an algorithm's in-memory messages and the
// byte payloads a transport carries. Codec values are shared by every
// process goroutine and must be stateless; per-goroutine decode state
// lives in the Decoder each goroutine obtains from NewDecoder.
type Codec interface {
	// Encode appends msg's wire form to dst and returns the extended
	// buffer (the runtime reuses dst across rounds). msg is whatever the
	// algorithm's Send returns; encoding a foreign message type is an
	// error, surfaced by Register's self-test before any run starts.
	Encode(dst []byte, msg any) ([]byte, error)
	// NewDecoder returns a decoder for one process goroutine on an
	// n-process transport.
	NewDecoder(n int) Decoder
}

// Decoder decodes one sender's payloads. Implementations decode into
// per-sender scratch: the returned message is valid only until the next
// Decode call for the same sender, mirroring the round model's
// "messages are valid for the duration of the Transition call"
// contract. That is what keeps the steady state allocation-free —
// decoding reuses the scratch message (and any storage hanging off it,
// e.g. k-set's approximation graphs) instead of allocating per message
// per round; AllocsPerRun tests pin this for every built-in codec.
type Decoder interface {
	Decode(from int, payload []byte) (any, error)
}

// Run bundles the run-level inputs an algorithm family needs: the
// instance size, the proposal vector, the family's own options, and
// what is known about the adversary's stabilization behavior (the
// automatic round bounds key off it).
type Run struct {
	// Algorithm is the registered family name (filled by sim.Resolve).
	Algorithm string
	// N is the number of processes.
	N int
	// Proposals are the initial values; length N.
	Proposals []int64
	// Params carries the family's options (core.Options for kset,
	// approx.Options for approx); nil means defaults. Prepare replaces
	// it with the normalized value.
	Params any
	// Stab is the adversary's stabilization round when Stabilizes.
	Stab int
	// Stabilizes reports whether the adversary implements
	// rounds.Stabilizer.
	Stabilizes bool
	// MaxRounds is the resolved round bound of the run (filled by
	// sim.Resolve after Prepare); oracles quote it in violations.
	MaxRounds int
}

// Facts are the measured, algorithm-independent properties of one
// finished run, handed to an Algorithm's Check oracles.
type Facts struct {
	// Outcome is the decision summary.
	Outcome *trace.Outcome
	// Skeleton is the stable skeleton G^∩∞ of the realized schedule.
	Skeleton *graph.Digraph
	// RootComps is the number of root components of the skeleton.
	RootComps int
	// MinK is the smallest certified k with Psrcs(k) for the skeleton.
	MinK int
}

// Violation is one whole-run oracle failure.
type Violation struct {
	// Oracle names the violated invariant ("validity", "k-bound",
	// "agreement", "termination").
	Oracle string
	// Detail is a human-readable account of the failure.
	Detail string
}

func (v Violation) String() string { return fmt.Sprintf("[%s] %s", v.Oracle, v.Detail) }

// Algorithm is one registered family. All function fields must be safe
// for concurrent use; Prepare mutates only its argument.
type Algorithm struct {
	// Name registers the family ([a-z0-9_-]+).
	Name string
	// Codec carries the family's messages across transports.
	Codec Codec
	// Prepare normalizes run.Params in place — filling defaults from N,
	// Proposals, and the stabilization data — and validates the run.
	// It must be idempotent: preparing an already-normalized run is a
	// no-op (the differential harness resolves once and replays).
	Prepare func(run *Run) error
	// NewFactory builds the per-process constructor for a prepared run.
	NewFactory func(run Run) (func(self int) rounds.Algorithm, error)
	// MaxRounds returns the automatic round bound for a prepared run.
	MaxRounds func(run Run) int
	// Collect extracts the outcome of a finished run; nil defaults to
	// trace.Collect (every process a rounds.Decider).
	Collect func(res *rounds.Result) (*trace.Outcome, error)
	// Check evaluates the family's whole-run oracles; nil checks
	// nothing. Oracles must be sound: a returned Violation is a bug in
	// the algorithm, the executor, or the transport.
	Check func(run Run, f Facts) []Violation
	// Probe returns a minimal valid run for the registration self-test.
	Probe func() Run
	// FuzzTarget names the codec's fuzz target as "pkgdir:FuzzName"
	// (e.g. "internal/wire:FuzzDecode"); cmd/docscheck verifies it
	// exists so every registered codec stays wired into the fuzz lanes.
	FuzzTarget string
}

// Default is the algorithm an empty name resolves to.
const Default = KSet

var (
	regMu    sync.RWMutex
	registry = map[string]*Algorithm{}
)

var nameRE = regexp.MustCompile(`^[a-z0-9_-]+$`)

// Register validates and adds a family to the registry. It fails on
// structural problems (bad name, missing hooks, duplicate) and on a
// failed self-test — a probe run through the factory, one Send, a codec
// round-trip, and a Transition on the decoded message.
func Register(a *Algorithm) error {
	if a == nil {
		return fmt.Errorf("algo: Register(nil)")
	}
	if !nameRE.MatchString(a.Name) {
		return fmt.Errorf("algo: invalid algorithm name %q", a.Name)
	}
	switch {
	case a.Codec == nil:
		return fmt.Errorf("algo: %s: nil Codec", a.Name)
	case a.Prepare == nil:
		return fmt.Errorf("algo: %s: nil Prepare", a.Name)
	case a.NewFactory == nil:
		return fmt.Errorf("algo: %s: nil NewFactory", a.Name)
	case a.MaxRounds == nil:
		return fmt.Errorf("algo: %s: nil MaxRounds", a.Name)
	case a.Probe == nil:
		return fmt.Errorf("algo: %s: nil Probe", a.Name)
	case a.FuzzTarget == "":
		return fmt.Errorf("algo: %s: no codec fuzz target declared", a.Name)
	}
	if err := selfTest(a); err != nil {
		return fmt.Errorf("algo: %s failed the registration self-test: %w", a.Name, err)
	}
	if a.Collect == nil {
		a.Collect = trace.Collect
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[a.Name]; dup {
		return fmt.Errorf("algo: %s registered twice", a.Name)
	}
	registry[a.Name] = a
	return nil
}

// MustRegister is Register, panicking on error (built-in init paths).
func MustRegister(a *Algorithm) {
	if err := Register(a); err != nil {
		panic(err)
	}
}

// Unregister removes a family — the hook registry seam tests use to
// register deliberately-broken fakes without leaking them into other
// tests. Built-ins are never unregistered by production code.
func Unregister(name string) {
	regMu.Lock()
	delete(registry, name)
	regMu.Unlock()
}

// Lookup resolves a family by name; "" resolves to Default. Unknown
// names fail with the valid-name list (the 400 body ksetd serves).
func Lookup(name string) (*Algorithm, error) {
	if name == "" {
		name = Default
	}
	regMu.RLock()
	a := registry[name]
	regMu.RUnlock()
	if a == nil {
		return nil, fmt.Errorf("algo: unknown algorithm %q (registered: %v)", name, Names())
	}
	return a, nil
}

// MustLookup resolves a family that is known to be registered.
func MustLookup(name string) *Algorithm {
	a, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Names returns the registered family names, sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// selfTest smoke-runs a registration: probe run through Prepare and
// NewFactory, each process Inits and Sends, the codec round-trips the
// message byte-identically, and Transition accepts the decoded value.
// A panic anywhere (nil Send dereferenced by the codec, a Transition
// type assertion on a mismatched decode) is converted into the error.
func selfTest(a *Algorithm) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	run := a.Probe()
	run.Algorithm = a.Name
	if err := a.Prepare(&run); err != nil {
		return fmt.Errorf("Prepare rejected the probe run: %w", err)
	}
	if b := a.MaxRounds(run); b < 1 {
		return fmt.Errorf("MaxRounds returned %d for the probe run", b)
	}
	factory, err := a.NewFactory(run)
	if err != nil {
		return fmt.Errorf("NewFactory rejected the probe run: %w", err)
	}
	if factory == nil {
		return fmt.Errorf("NewFactory returned a nil factory")
	}
	dec := a.Codec.NewDecoder(run.N)
	if dec == nil {
		return fmt.Errorf("NewDecoder returned nil")
	}
	recv := make([]any, run.N)
	for self := 0; self < run.N; self++ {
		p := factory(self)
		if p == nil {
			return fmt.Errorf("factory returned a nil process for p%d", self+1)
		}
		p.Init(self, run.N)
		msg := p.Send(1)
		if msg == nil {
			return fmt.Errorf("p%d Send(1) returned nil", self+1)
		}
		enc, err := a.Codec.Encode(nil, msg)
		if err != nil {
			return fmt.Errorf("codec cannot encode p%d's own message: %w", self+1, err)
		}
		decoded, err := dec.Decode(self, enc)
		if err != nil {
			return fmt.Errorf("codec cannot decode p%d's own message: %w", self+1, err)
		}
		re, err := a.Codec.Encode(nil, decoded)
		if err != nil {
			return fmt.Errorf("codec cannot re-encode p%d's decoded message: %w", self+1, err)
		}
		if !bytes.Equal(enc, re) {
			return fmt.Errorf("codec round-trip mismatch for p%d: %d bytes became %d", self+1, len(enc), len(re))
		}
		for q := range recv {
			recv[q] = nil
		}
		recv[self] = decoded
		p.Transition(1, recv)
		if _, ok := p.(rounds.Decider); !ok {
			if a.Collect == nil {
				return fmt.Errorf("p%d (%T) is not a rounds.Decider and no Collect override is set", self+1, p)
			}
		}
	}
	return nil
}
