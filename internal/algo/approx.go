package algo

import (
	"fmt"

	"kset/internal/approx"
	"kset/internal/rounds"
)

// Approx is the registered name of graph approximate agreement
// (internal/approx) — the second family, proving the stack generalizes
// beyond the source paper.
const Approx = "approx"

// approxCodec carries approx.Message values (see internal/approx wire
// format).
type approxCodec struct{}

// Encode implements Codec.
func (approxCodec) Encode(dst []byte, msg any) ([]byte, error) {
	m, ok := msg.(*approx.Message)
	if !ok {
		return nil, fmt.Errorf("algo: approx codec cannot encode %T", msg)
	}
	return approx.AppendEncode(dst, *m), nil
}

// NewDecoder implements Codec.
func (approxCodec) NewDecoder(n int) Decoder {
	return &approxDecoder{msgs: make([]approx.Message, n)}
}

// approxDecoder decodes into per-sender scratch (the Decoder contract);
// approx messages are three ints, so this is trivially allocation-free.
type approxDecoder struct {
	msgs []approx.Message
}

// Decode implements Decoder.
func (d *approxDecoder) Decode(from int, payload []byte) (any, error) {
	if from < 0 || from >= len(d.msgs) {
		return nil, fmt.Errorf("algo: decode from out-of-range sender %d", from)
	}
	m := &d.msgs[from]
	if err := approx.DecodeInto(payload, m); err != nil {
		return nil, fmt.Errorf("algo: decode message from p%d: %w", from+1, err)
	}
	return m, nil
}

// approxOpts coerces a Run's Params into approx.Options (nil =
// defaults).
func approxOpts(params any) (approx.Options, error) {
	switch v := params.(type) {
	case nil:
		return approx.Options{}, nil
	case approx.Options:
		return v, nil
	default:
		return approx.Options{}, fmt.Errorf("algo: approx params are %T, want approx.Options", params)
	}
}

func init() {
	MustRegister(&Algorithm{
		Name:  Approx,
		Codec: approxCodec{},
		Prepare: func(run *Run) error {
			opts, err := approxOpts(run.Params)
			if err != nil {
				return err
			}
			if err := opts.Normalize(run.N, run.Proposals, run.Stab, run.Stabilizes); err != nil {
				return err
			}
			run.Params = opts
			return nil
		},
		NewFactory: func(run Run) (func(self int) rounds.Algorithm, error) {
			opts, err := approxOpts(run.Params)
			if err != nil {
				return nil, err
			}
			return approx.NewFactory(run.Proposals, opts), nil
		},
		// Every process decides exactly at the (prepared) decide round.
		MaxRounds: func(run Run) int {
			opts, err := approxOpts(run.Params)
			if err != nil || opts.DecideRound == 0 {
				return 12 * run.N
			}
			return opts.DecideRound
		},
		Check:      approxCheck,
		Probe:      func() Run { return Run{N: 2, Proposals: []int64{0, 2}, Stab: 1, Stabilizes: true} },
		FuzzTarget: "internal/approx:FuzzDecode",
	})
}

// approxCheck evaluates approximate agreement's whole-run properties.
//
// Termination is exact, not just bounded: every process decides in
// precisely round DecideRound (checked whenever the run got that far).
// Validity is hull containment — decisions lie in the minimal interval
// (path) or, when the inputs fit an arc shorter than half the cycle,
// the minimal covering arc of the proposals. Agreement (all decisions
// pairwise adjacent on the target graph) is claimed exactly under the
// conditions the convergence argument needs: a stabilizing schedule
// whose stable skeleton has one root component (every post-stable round
// graph rooted), a decide round no earlier than DecideRoundFor's bound,
// and on cycles the narrow-arc input regime — outside them the problem
// is unsolvable in general and the oracle stays silent rather than
// report phantom violations.
func approxCheck(run Run, f Facts) []Violation {
	opts, err := approxOpts(run.Params)
	if err != nil {
		return []Violation{{"params", err.Error()}}
	}
	g := opts.Graph
	out := f.Outcome
	var viols []Violation

	if out.Rounds >= opts.DecideRound {
		for i := 0; i < out.N; i++ {
			switch {
			case !out.Decided[i]:
				viols = append(viols, Violation{"termination",
					fmt.Sprintf("p%d undecided after round %d (decide round %d)", i+1, out.Rounds, opts.DecideRound)})
			case out.DecideRounds[i] != opts.DecideRound:
				viols = append(viols, Violation{"termination",
					fmt.Sprintf("p%d decided in round %d, want exactly %d", i+1, out.DecideRounds[i], opts.DecideRound)})
			}
		}
	}

	start, span := approx.Span(g, out.Proposals)
	narrow := g.Shape != approx.Cycle || 2*span < int64(g.V)
	for i := 0; i < out.N; i++ {
		if !out.Decided[i] {
			continue
		}
		d := out.Decisions[i]
		if d < 0 || d >= int64(g.V) {
			viols = append(viols, Violation{"validity",
				fmt.Sprintf("p%d decided %d, not a vertex of %s-%d", i+1, d, g.Shape, g.V)})
			continue
		}
		if narrow && !approx.InSpan(g, start, span, d) {
			viols = append(viols, Violation{"validity",
				fmt.Sprintf("p%d decided %d outside the proposal %s [%d,+%d] on %s-%d",
					i+1, d, spanNoun(g), start, span, g.Shape, g.V)})
		}
	}

	claimAgreement := run.Stabilizes && f.RootComps == 1 && narrow &&
		opts.DecideRound >= approx.DecideRoundFor(run.N, g.V, run.Stab)
	if claimAgreement {
		for i := 0; i < out.N; i++ {
			if !out.Decided[i] {
				continue
			}
			for j := i + 1; j < out.N; j++ {
				if !out.Decided[j] {
					continue
				}
				if dist := approx.Dist(g, out.Decisions[i], out.Decisions[j]); dist > 1 {
					viols = append(viols, Violation{"agreement",
						fmt.Sprintf("p%d decided %d and p%d decided %d: distance %d on %s-%d",
							i+1, out.Decisions[i], j+1, out.Decisions[j], dist, g.Shape, g.V)})
				}
			}
		}
	}
	return viols
}

func spanNoun(g approx.Graph) string {
	if g.Shape == approx.Cycle {
		return "arc"
	}
	return "interval"
}
