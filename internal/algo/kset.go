package algo

import (
	"fmt"

	"kset/internal/core"
	"kset/internal/rounds"
	"kset/internal/wire"
)

// KSet is the registered name of Algorithm 1 (k-set agreement with
// stable skeleton graphs) — the stack's default family.
const KSet = "kset"

// KSetCodec carries Algorithm 1 messages in the canonical internal/wire
// encoding — the same bytes the E5 bit-complexity experiment meters.
// runtime.WireCodec aliases it for existing call sites.
type KSetCodec struct{}

// Encode implements Codec; msg is what core.Process.Send returns.
func (KSetCodec) Encode(dst []byte, msg any) ([]byte, error) {
	m, ok := msg.(*core.Message)
	if !ok {
		return nil, fmt.Errorf("algo: kset codec cannot encode %T", msg)
	}
	return wire.AppendEncode(dst, *m), nil
}

// NewDecoder implements Codec.
func (KSetCodec) NewDecoder(n int) Decoder {
	return &ksetDecoder{msgs: make([]core.Message, n)}
}

// ksetDecoder keeps one scratch message per sender, so steady-state
// decoding reuses graph storage (wire.DecodeInto) instead of allocating
// a fresh Θ(n²) graph per message per round — the Decoder scratch
// contract.
type ksetDecoder struct {
	msgs []core.Message
}

// Decode implements Decoder.
func (d *ksetDecoder) Decode(from int, payload []byte) (any, error) {
	if from < 0 || from >= len(d.msgs) {
		return nil, fmt.Errorf("algo: decode from out-of-range sender %d", from)
	}
	m := &d.msgs[from]
	if err := wire.DecodeInto(payload, m); err != nil {
		return nil, fmt.Errorf("algo: decode message from p%d: %w", from+1, err)
	}
	return m, nil
}

// ksetOpts coerces a Run's Params into core.Options (nil = defaults).
func ksetOpts(params any) (core.Options, error) {
	switch v := params.(type) {
	case nil:
		return core.Options{}, nil
	case core.Options:
		return v, nil
	default:
		return core.Options{}, fmt.Errorf("algo: kset params are %T, want core.Options", params)
	}
}

func init() {
	MustRegister(&Algorithm{
		Name:  KSet,
		Codec: KSetCodec{},
		Prepare: func(run *Run) error {
			opts, err := ksetOpts(run.Params)
			if err != nil {
				return err
			}
			run.Params = opts
			return nil
		},
		NewFactory: func(run Run) (func(self int) rounds.Algorithm, error) {
			opts, err := ksetOpts(run.Params)
			if err != nil {
				return nil, err
			}
			return core.NewFactory(run.Proposals, opts), nil
		},
		// The automatic bound is generous for Lemma 11: stabilization +
		// 2n + 5 when the adversary declares a stabilization round, 12n
		// otherwise. (sim.Execute's historical formula, verbatim — the
		// differential batteries pin it bit for bit.)
		MaxRounds: func(run Run) int {
			if run.Stabilizes {
				return run.Stab + 2*run.N + 5
			}
			return 12 * run.N
		},
		Check:      ksetCheck,
		Probe:      func() Run { return Run{N: 2, Proposals: []int64{1, 2}} },
		FuzzTarget: "internal/wire:FuzzDecode",
	})
}

// ksetCheck evaluates the paper's whole-run properties: termination
// within the run's bound, validity (every decision is some proposal),
// and the k-bound (distinct decisions never exceed MinK of the realized
// stable skeleton — the Theorem 1 / Lemma 15 chain with k instantiated
// as tightly as the run allows).
func ksetCheck(run Run, f Facts) []Violation {
	var out []Violation
	if err := f.Outcome.CheckTermination(); err != nil {
		out = append(out, Violation{"termination", fmt.Sprintf("%v (bound %d)", err, run.MaxRounds)})
	}
	if err := f.Outcome.CheckValidity(); err != nil {
		out = append(out, Violation{"validity", err.Error()})
	}
	if distinct := len(f.Outcome.DistinctDecisions()); distinct > f.MinK {
		out = append(out, Violation{"k-bound", fmt.Sprintf("%d distinct decisions %v exceed MinK=%d",
			distinct, f.Outcome.DistinctDecisions(), f.MinK)})
	}
	return out
}
