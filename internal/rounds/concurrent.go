package rounds

import "sync"

// RunConcurrent executes a run with one goroutine per process,
// communicating over channels: each process goroutine emits its round-r
// message, a coordinator routes the messages along the round-r
// communication graph, and each process applies its transition to whatever
// arrived. Rounds are communication-closed, so the per-round barrier is
// inherent to the model, not an artifact of the implementation.
//
// RunConcurrent produces exactly the same run as RunSequential for the
// same Config (the test suite checks trace equality); use it when process
// transitions are expensive enough to benefit from parallelism.
func RunConcurrent(cfg Config) (*Result, error) {
	n, err := cfg.Validate()
	if err != nil {
		return nil, err
	}

	procs := make([]Algorithm, n)
	for i := 0; i < n; i++ {
		procs[i] = cfg.NewProcess(i)
		procs[i].Init(i, n)
	}

	type outMsg struct {
		from int
		msg  any
	}
	var (
		outbox  = make(chan outMsg, n) // round-r broadcasts, process -> coordinator
		acks    = make(chan int, n)    // transition-done signals, process -> coordinator
		inboxes = make([]chan []any, n)
		done    = make(chan struct{}) // closed to terminate all process goroutines
		wg      sync.WaitGroup
	)
	for i := range inboxes {
		inboxes[i] = make(chan []any, 1)
	}
	// One reusable receive buffer per process. Reuse is safe: the
	// coordinator refills recvBufs[q] for round r+1 only after collecting
	// every round-r ack, and q reads its buffer only before acking; the
	// ack and inbox channels order those accesses.
	recvBufs := make([][]any, n)
	for i := range recvBufs {
		recvBufs[i] = make([]any, n)
	}

	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(self int, p Algorithm) {
			defer wg.Done()
			for r := 1; ; r++ {
				select {
				case <-done:
					return
				case outbox <- outMsg{from: self, msg: p.Send(r)}:
				}
				var recv []any
				select {
				case <-done:
					return
				case recv = <-inboxes[self]:
				}
				p.Transition(r, recv)
				select {
				case <-done:
					return
				case acks <- self:
				}
			}
		}(i, procs[i])
	}

	stop := func() {
		close(done)
		wg.Wait()
	}

	msgs := make([]any, n)
	res := &Result{Procs: procs}
	for r := 1; r <= cfg.MaxRounds; r++ {
		// Collect every process's round-r broadcast.
		for i := 0; i < n; i++ {
			m := <-outbox
			msgs[m.from] = m.msg
		}
		g := cfg.Adversary.Graph(r)
		if err := CheckGraph(g, n, r); err != nil {
			stop()
			return nil, err
		}
		// Route along the round graph.
		for q := 0; q < n; q++ {
			recv := recvBufs[q]
			for p := range recv {
				recv[p] = nil
			}
			g.ForEachIn(q, func(p int) { recv[p] = msgs[p] })
			inboxes[q] <- recv
		}
		// Barrier: all round-r transitions done before observing.
		for i := 0; i < n; i++ {
			<-acks
		}
		res.Rounds = r
		if cfg.Observer != nil {
			cfg.Observer.OnRound(r, g, procs)
		}
		if cfg.StopWhen != nil && cfg.StopWhen(r, procs) {
			res.Stopped = true
			break
		}
	}
	stop()
	return res, nil
}
