// Package rounds implements the paper's computing model (Section II): an
// infinite sequence of communication-closed rounds in which every process
// broadcasts a message computed by its sending function and then applies
// its transition function to the vector of messages that arrived. Which
// messages arrive in round r is exactly the edge set of the round-r
// communication graph G^r, supplied by an Adversary.
//
// A run is completely determined by the initial states of the processes
// and the sequence of communication graphs; both executors (sequential
// lockstep and concurrent goroutine-per-process) therefore produce
// identical runs for identical inputs, which the test suite verifies.
package rounds

import (
	"errors"
	"fmt"

	"kset/internal/graph"
)

// Algorithm is the paper's pair of sending and transition functions,
// instantiated once per process. Implementations must be deterministic:
// the executor may run transitions in any order or concurrently, but each
// process only ever sees its own state plus received messages.
//
// Messages must be treated as immutable by receivers: a broadcast message
// is shared by every receiver in the round.
type Algorithm interface {
	// Init is called exactly once before round 1 with the process's own
	// id (0-based) and the total number of processes n.
	Init(self, n int)

	// Send returns the message this process broadcasts in round r
	// (r >= 1), based on its state at the beginning of round r. The
	// returned message must be non-nil.
	Send(r int) any

	// Transition consumes the messages received in round r and moves the
	// process to its state at the beginning of round r+1. recv has length
	// n; recv[q] is q's round-r message if the edge (q -> self) is in
	// G^r, and nil otherwise. Because round graphs always contain all
	// self-loops, recv[self] is always the process's own message.
	//
	// The recv slice (and the messages in it) are only valid for the
	// duration of the call: executors reuse the buffer for later rounds,
	// and senders reuse message storage. Implementations that need
	// round-r data afterwards must copy it before returning.
	Transition(r int, recv []any)
}

// Decider is implemented by algorithms that solve an agreement problem.
// The trace checker uses it to verify validity, agreement, termination,
// and irrevocability.
type Decider interface {
	// Proposal returns the process's initial proposal value.
	Proposal() int64
	// Decided reports whether the process has irrevocably decided.
	Decided() bool
	// Decision returns the decided value and the round in which the
	// decision was taken; it must only be called when Decided is true.
	Decision() (value int64, round int)
}

// Adversary supplies the per-round communication graphs of a run. The
// paper names systems by communication predicates quantifying over all
// runs; an Adversary is one concrete run generator.
type Adversary interface {
	// N returns the number of processes.
	N() int
	// Graph returns the communication graph of round r (r >= 1). The
	// graph must contain all n nodes and every self-loop, and must be
	// treated as immutable by callers. Implementations may return the
	// same *graph.Digraph for multiple rounds.
	Graph(r int) *graph.Digraph
}

// Stabilizer is an optional Adversary refinement for runs whose graph
// sequence becomes constant: Graph(r) is the same for all
// r >= StabilizationRound. Skeleton trackers use it to compute the stable
// skeleton G^∩∞ in finite time.
type Stabilizer interface {
	// StabilizationRound returns the first round from which the round
	// graphs (and hence the skeleton) no longer change.
	StabilizationRound() int
}

// Observer is notified after every executed round. Observers run on the
// coordinator and may inspect, but must not mutate, the graph or the
// processes.
type Observer interface {
	// OnRound is called after all round-r transitions completed. g is
	// the round-r communication graph.
	OnRound(r int, g *graph.Digraph, procs []Algorithm)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(r int, g *graph.Digraph, procs []Algorithm)

// OnRound implements Observer.
func (f ObserverFunc) OnRound(r int, g *graph.Digraph, procs []Algorithm) { f(r, g, procs) }

// MultiObserver fans a round notification out to several observers in
// order.
type MultiObserver []Observer

// OnRound implements Observer.
func (m MultiObserver) OnRound(r int, g *graph.Digraph, procs []Algorithm) {
	for _, o := range m {
		o.OnRound(r, g, procs)
	}
}

// Config describes one run.
type Config struct {
	// Adversary generates the round graphs; required.
	Adversary Adversary
	// NewProcess builds the algorithm instance for process self;
	// required. Init is called by the executor, not by NewProcess.
	NewProcess func(self int) Algorithm
	// MaxRounds bounds the execution: a run of the model is infinite, a
	// simulation is not. Required, >= 1.
	MaxRounds int
	// StopWhen, if non-nil, is evaluated after each round; returning
	// true ends the run early. Typical use: all processes decided.
	StopWhen func(r int, procs []Algorithm) bool
	// Observer, if non-nil, is notified after every round.
	Observer Observer
}

// Result reports how a run ended.
type Result struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Stopped reports whether StopWhen ended the run before MaxRounds.
	Stopped bool
	// Procs are the process instances in id order, in their final state.
	Procs []Algorithm
}

// AllDecided is a StopWhen helper: true when every process implements
// Decider and has decided.
func AllDecided(_ int, procs []Algorithm) bool {
	for _, p := range procs {
		d, ok := p.(Decider)
		if !ok || !d.Decided() {
			return false
		}
	}
	return true
}

// Validate checks the Config's structural requirements and returns the
// number of processes. Exported for alternative executors (the
// distributed runtime in internal/runtime), which must enforce exactly
// the same contract as the in-package ones.
func (c *Config) Validate() (int, error) {
	if c.Adversary == nil {
		return 0, errors.New("rounds: Config.Adversary is nil")
	}
	if c.NewProcess == nil {
		return 0, errors.New("rounds: Config.NewProcess is nil")
	}
	if c.MaxRounds < 1 {
		return 0, fmt.Errorf("rounds: MaxRounds = %d, need >= 1", c.MaxRounds)
	}
	n := c.Adversary.N()
	if n < 1 {
		return 0, fmt.Errorf("rounds: adversary reports n = %d", n)
	}
	return n, nil
}

// CheckGraph enforces the model's structural requirements on a round
// graph: correct universe, all nodes present, all self-loops (every
// process hears itself; cf. Figure 1's caption). Exported for
// alternative executors (internal/runtime).
func CheckGraph(g *graph.Digraph, n, r int) error {
	if g == nil {
		return fmt.Errorf("rounds: adversary returned nil graph for round %d", r)
	}
	if g.N() != n {
		return fmt.Errorf("rounds: round %d graph universe %d, want %d", r, g.N(), n)
	}
	for v := 0; v < n; v++ {
		if !g.HasNode(v) {
			return fmt.Errorf("rounds: round %d graph missing node p%d", r, v+1)
		}
		if !g.HasEdge(v, v) {
			return fmt.Errorf("rounds: round %d graph missing self-loop of p%d", r, v+1)
		}
	}
	return nil
}
