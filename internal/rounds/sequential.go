package rounds

import "kset/internal/graph"

// RunSequential executes a run in lockstep on the calling goroutine:
// collect all round-r messages, deliver along the round-r graph, apply all
// transitions, notify the observer, repeat. It is the executor of choice
// for tests and benchmarks (no scheduling noise, fully deterministic).
func RunSequential(cfg Config) (*Result, error) {
	n, err := cfg.Validate()
	if err != nil {
		return nil, err
	}

	procs := make([]Algorithm, n)
	for i := 0; i < n; i++ {
		procs[i] = cfg.NewProcess(i)
		procs[i].Init(i, n)
	}

	msgs := make([]any, n)
	// One reusable receive buffer per process; cleared every round.
	recvBufs := make([][]any, n)
	for i := range recvBufs {
		recvBufs[i] = make([]any, n)
	}

	res := &Result{Procs: procs}
	for r := 1; r <= cfg.MaxRounds; r++ {
		for i, p := range procs {
			msgs[i] = p.Send(r)
		}
		g := cfg.Adversary.Graph(r)
		if err := CheckGraph(g, n, r); err != nil {
			return nil, err
		}
		deliver(g, msgs, recvBufs)
		for i, p := range procs {
			p.Transition(r, recvBufs[i])
		}
		res.Rounds = r
		if cfg.Observer != nil {
			cfg.Observer.OnRound(r, g, procs)
		}
		if cfg.StopWhen != nil && cfg.StopWhen(r, procs) {
			res.Stopped = true
			break
		}
	}
	return res, nil
}

// deliver fills recvBufs[q][p] with msgs[p] exactly when the edge p->q is
// in g, and nil otherwise.
func deliver(g *graph.Digraph, msgs []any, recvBufs [][]any) {
	n := len(msgs)
	for q := 0; q < n; q++ {
		buf := recvBufs[q]
		for p := 0; p < n; p++ {
			buf[p] = nil
		}
		g.ForEachIn(q, func(p int) {
			buf[p] = msgs[p]
		})
	}
}
