package rounds

import (
	"fmt"
	"math/rand"
	"testing"

	"kset/internal/graph"
)

// staticAdv returns the same graph every round.
type staticAdv struct {
	g *graph.Digraph
}

func (a staticAdv) N() int                   { return a.g.N() }
func (a staticAdv) Graph(int) *graph.Digraph { return a.g }
func (a staticAdv) StabilizationRound() int  { return 1 }
func complete(n int) staticAdv               { return staticAdv{g: graph.CompleteDigraph(n)} }
func onlySelf(n int) staticAdv {
	g := graph.NewFullDigraph(n)
	g.AddSelfLoops()
	return staticAdv{g: g}
}

// seqAdv replays a fixed finite sequence of graphs, then repeats the last.
type seqAdv struct {
	graphs []*graph.Digraph
}

func (a seqAdv) N() int { return a.graphs[0].N() }
func (a seqAdv) Graph(r int) *graph.Digraph {
	if r-1 < len(a.graphs) {
		return a.graphs[r-1]
	}
	return a.graphs[len(a.graphs)-1]
}
func (a seqAdv) StabilizationRound() int { return len(a.graphs) }

// minFlood is a minimal agreement-ish algorithm used to exercise the
// executors: it tracks the smallest proposal it has heard of.
type minFlood struct {
	self, n int
	min     int64
	history []string // per-round digest, for trace-equality tests
}

func (m *minFlood) Init(self, n int) {
	m.self = self
	m.n = n
	m.min = int64(1000 + self)
}

func (m *minFlood) Send(r int) any { return m.min }

func (m *minFlood) Transition(r int, recv []any) {
	for q, msg := range recv {
		if msg == nil {
			continue
		}
		v := msg.(int64)
		if v < m.min {
			m.min = v
		}
		_ = q
	}
	m.history = append(m.history, fmt.Sprintf("r%d:%d", r, m.min))
}

func TestSequentialMinFloodComplete(t *testing.T) {
	cfg := Config{
		Adversary:  complete(5),
		NewProcess: func(int) Algorithm { return &minFlood{} },
		MaxRounds:  3,
	}
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 || res.Stopped {
		t.Fatalf("Rounds=%d Stopped=%v", res.Rounds, res.Stopped)
	}
	for i, p := range res.Procs {
		if got := p.(*minFlood).min; got != 1000 {
			t.Fatalf("proc %d min = %d, want 1000 (complete graph floods in 1 round)", i, got)
		}
	}
}

func TestSequentialIsolationKeepsOwnValue(t *testing.T) {
	cfg := Config{
		Adversary:  onlySelf(4),
		NewProcess: func(int) Algorithm { return &minFlood{} },
		MaxRounds:  5,
	}
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Procs {
		if got := p.(*minFlood).min; got != int64(1000+i) {
			t.Fatalf("proc %d min = %d, want own value", i, got)
		}
	}
}

func TestChainPropagationTakesDistanceRounds(t *testing.T) {
	// p1 -> p2 -> p3 -> p4: value of p1 reaches p4 after exactly 3 rounds.
	g := graph.NewFullDigraph(4)
	g.AddSelfLoops()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	for rounds := 1; rounds <= 4; rounds++ {
		res, err := RunSequential(Config{
			Adversary:  staticAdv{g: g},
			NewProcess: func(int) Algorithm { return &minFlood{} },
			MaxRounds:  rounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		last := res.Procs[3].(*minFlood).min
		if rounds < 3 && last == 1000 {
			t.Fatalf("value arrived too early (rounds=%d)", rounds)
		}
		if rounds >= 3 && last != 1000 {
			t.Fatalf("value did not arrive after %d rounds: %d", rounds, last)
		}
	}
}

func TestRecvSelfAlwaysDelivered(t *testing.T) {
	sawSelf := make([]bool, 3)
	type probe struct {
		minFlood
	}
	cfg := Config{
		Adversary: onlySelf(3),
		NewProcess: func(self int) Algorithm {
			p := &probe{}
			return p
		},
		MaxRounds: 1,
		Observer: ObserverFunc(func(r int, g *graph.Digraph, procs []Algorithm) {
			for i := range procs {
				sawSelf[i] = true
			}
		}),
	}
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Procs {
		// With only self-loops, the only message each process hears is
		// its own: min stays its own proposal but history records one
		// transition, proving recv[self] was non-nil.
		mf := &p.(*probe).minFlood
		if len(mf.history) != 1 {
			t.Fatalf("proc %d history = %v", i, mf.history)
		}
	}
}

func TestStopWhen(t *testing.T) {
	calls := 0
	cfg := Config{
		Adversary:  complete(3),
		NewProcess: func(int) Algorithm { return &minFlood{} },
		MaxRounds:  100,
		StopWhen: func(r int, procs []Algorithm) bool {
			calls++
			return r == 4
		},
	}
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 || !res.Stopped {
		t.Fatalf("Rounds=%d Stopped=%v", res.Rounds, res.Stopped)
	}
	if calls != 4 {
		t.Fatalf("StopWhen called %d times", calls)
	}
}

func TestObserverSeesEveryRoundInOrder(t *testing.T) {
	var seen []int
	cfg := Config{
		Adversary:  complete(2),
		NewProcess: func(int) Algorithm { return &minFlood{} },
		MaxRounds:  5,
		Observer: ObserverFunc(func(r int, g *graph.Digraph, procs []Algorithm) {
			seen = append(seen, r)
		}),
	}
	if _, err := RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("observer rounds = %v", seen)
	}
	for i, r := range seen {
		if r != i+1 {
			t.Fatalf("observer rounds out of order: %v", seen)
		}
	}
}

func TestMultiObserver(t *testing.T) {
	var a, b int
	obs := MultiObserver{
		ObserverFunc(func(int, *graph.Digraph, []Algorithm) { a++ }),
		ObserverFunc(func(int, *graph.Digraph, []Algorithm) { b++ }),
	}
	cfg := Config{
		Adversary:  complete(2),
		NewProcess: func(int) Algorithm { return &minFlood{} },
		MaxRounds:  3,
		Observer:   obs,
	}
	if _, err := RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	if a != 3 || b != 3 {
		t.Fatalf("a=%d b=%d", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{
		Adversary:  complete(2),
		NewProcess: func(int) Algorithm { return &minFlood{} },
		MaxRounds:  1,
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil adversary", func(c *Config) { c.Adversary = nil }},
		{"nil factory", func(c *Config) { c.NewProcess = nil }},
		{"zero rounds", func(c *Config) { c.MaxRounds = 0 }},
	}
	for _, tc := range cases {
		c := good
		tc.mutate(&c)
		if _, err := RunSequential(c); err == nil {
			t.Errorf("%s: RunSequential accepted invalid config", tc.name)
		}
		if _, err := RunConcurrent(c); err == nil {
			t.Errorf("%s: RunConcurrent accepted invalid config", tc.name)
		}
	}
}

func TestGraphValidationMissingSelfLoop(t *testing.T) {
	g := graph.NewFullDigraph(3)
	g.AddSelfLoops()
	g.RemoveEdge(1, 1)
	cfg := Config{
		Adversary:  staticAdv{g: g},
		NewProcess: func(int) Algorithm { return &minFlood{} },
		MaxRounds:  2,
	}
	if _, err := RunSequential(cfg); err == nil {
		t.Fatal("missing self-loop accepted")
	}
	if _, err := RunConcurrent(cfg); err == nil {
		t.Fatal("missing self-loop accepted (concurrent)")
	}
}

func TestGraphValidationMissingNode(t *testing.T) {
	g := graph.NewDigraph(3)
	g.AddNode(0)
	g.AddNode(1)
	g.AddSelfLoops()
	cfg := Config{
		Adversary:  staticAdv{g: g},
		NewProcess: func(int) Algorithm { return &minFlood{} },
		MaxRounds:  1,
	}
	if _, err := RunSequential(cfg); err == nil {
		t.Fatal("missing node accepted")
	}
}

func TestGraphValidationWrongUniverse(t *testing.T) {
	bad := staticAdv{g: graph.CompleteDigraph(4)}
	cfg := Config{
		Adversary: struct {
			staticAdv
		}{bad},
		NewProcess: func(int) Algorithm { return &minFlood{} },
		MaxRounds:  1,
	}
	// Adversary says N=4 but we want to check mismatch; wrap N.
	cfg.Adversary = fakeN{inner: bad, n: 3}
	if _, err := RunSequential(cfg); err == nil {
		t.Fatal("universe mismatch accepted")
	}
}

type fakeN struct {
	inner Adversary
	n     int
}

func (f fakeN) N() int                     { return f.n }
func (f fakeN) Graph(r int) *graph.Digraph { return f.inner.Graph(r) }

func randomGraphSeq(n, rounds int, rng *rand.Rand) seqAdv {
	gs := make([]*graph.Digraph, rounds)
	for i := range gs {
		gs[i] = graph.RandomDigraph(n, rng.Float64()*0.7, rng)
	}
	return seqAdv{graphs: gs}
}

func runBoth(t *testing.T, cfg Config) (*Result, *Result) {
	t.Helper()
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := RunConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return seq, conc
}

func TestSequentialConcurrentEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		adv := randomGraphSeq(n, 8, rng)
		cfg := Config{
			Adversary:  adv,
			NewProcess: func(int) Algorithm { return &minFlood{} },
			MaxRounds:  12,
		}
		seq, conc := runBoth(t, cfg)
		if seq.Rounds != conc.Rounds {
			t.Fatalf("round counts differ: %d vs %d", seq.Rounds, conc.Rounds)
		}
		for i := range seq.Procs {
			a := seq.Procs[i].(*minFlood)
			b := conc.Procs[i].(*minFlood)
			if len(a.history) != len(b.history) {
				t.Fatalf("proc %d history lengths differ", i)
			}
			for j := range a.history {
				if a.history[j] != b.history[j] {
					t.Fatalf("proc %d diverges at %d: %q vs %q", i, j, a.history[j], b.history[j])
				}
			}
		}
	}
}

func TestConcurrentStopWhen(t *testing.T) {
	cfg := Config{
		Adversary:  complete(4),
		NewProcess: func(int) Algorithm { return &minFlood{} },
		MaxRounds:  100,
		StopWhen:   func(r int, _ []Algorithm) bool { return r == 7 },
	}
	res, err := RunConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 7 || !res.Stopped {
		t.Fatalf("Rounds=%d Stopped=%v", res.Rounds, res.Stopped)
	}
}

func TestConcurrentObserverBarrier(t *testing.T) {
	// The observer must see post-transition state for the notified round.
	cfg := Config{
		Adversary:  complete(3),
		NewProcess: func(int) Algorithm { return &minFlood{} },
		MaxRounds:  4,
		Observer: ObserverFunc(func(r int, _ *graph.Digraph, procs []Algorithm) {
			for i, p := range procs {
				if got := len(p.(*minFlood).history); got != r {
					panic(fmt.Sprintf("observer at round %d sees %d transitions for proc %d", r, got, i))
				}
			}
		}),
	}
	if _, err := RunConcurrent(cfg); err != nil {
		t.Fatal(err)
	}
}

// decidingStub implements Decider for AllDecided tests.
type decidingStub struct {
	minFlood
	decideAt int
	decided  bool
	round    int
}

func (d *decidingStub) Transition(r int, recv []any) {
	d.minFlood.Transition(r, recv)
	if !d.decided && r >= d.decideAt {
		d.decided = true
		d.round = r
	}
}
func (d *decidingStub) Proposal() int64 { return d.min }
func (d *decidingStub) Decided() bool   { return d.decided }
func (d *decidingStub) Decision() (int64, int) {
	return d.min, d.round
}

func TestAllDecidedStop(t *testing.T) {
	cfg := Config{
		Adversary: complete(3),
		NewProcess: func(self int) Algorithm {
			return &decidingStub{decideAt: 2 + self}
		},
		MaxRounds: 50,
		StopWhen:  AllDecided,
	}
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Fatalf("Rounds = %d, want 4 (slowest process decides at 4)", res.Rounds)
	}
}

func TestAllDecidedFalseForNonDeciders(t *testing.T) {
	if AllDecided(1, []Algorithm{&minFlood{}}) {
		t.Fatal("AllDecided true for non-Decider")
	}
}

func TestInitCalledWithCorrectArgs(t *testing.T) {
	var inits []string
	cfg := Config{
		Adversary: complete(3),
		NewProcess: func(self int) Algorithm {
			return initProbe{record: &inits}
		},
		MaxRounds: 1,
	}
	if _, err := RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	want := []string{"0/3", "1/3", "2/3"}
	if len(inits) != len(want) {
		t.Fatalf("inits = %v", inits)
	}
	for i := range want {
		if inits[i] != want[i] {
			t.Fatalf("inits = %v, want %v", inits, want)
		}
	}
}

type initProbe struct {
	record *[]string
}

func (p initProbe) Init(self, n int)      { *p.record = append(*p.record, fmt.Sprintf("%d/%d", self, n)) }
func (p initProbe) Send(int) any          { return struct{}{} }
func (p initProbe) Transition(int, []any) {}
