package adversary

import (
	"math/rand"
	"testing"

	"kset/internal/graph"
	"kset/internal/predicate"
	"kset/internal/rounds"
	"kset/internal/skeleton"
)

// Compile-time interface checks.
var (
	_ rounds.Adversary  = (*Run)(nil)
	_ rounds.Stabilizer = (*Run)(nil)
	_ rounds.Adversary  = (*Churn)(nil)
)

func TestRunPrefixThenStable(t *testing.T) {
	g1 := graph.CompleteDigraph(3)
	stable := selfLoopGraph(3)
	run := NewRun([]*graph.Digraph{g1}, stable)
	if run.Graph(1) != g1 {
		t.Fatal("round 1 should serve prefix")
	}
	for r := 2; r <= 5; r++ {
		if run.Graph(r) != stable {
			t.Fatalf("round %d should serve stable graph", r)
		}
	}
	if run.StabilizationRound() != 2 {
		t.Fatalf("StabilizationRound = %d", run.StabilizationRound())
	}
}

func TestRunValidation(t *testing.T) {
	broken := graph.NewFullDigraph(2) // no self-loops
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing self-loops")
		}
	}()
	NewRun(nil, broken)
}

func TestRunRoundZeroPanics(t *testing.T) {
	run := Complete(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	run.Graph(0)
}

func TestRunStableSkeletonIntersectsPrefix(t *testing.T) {
	run := Eventual(Complete(3), 2)
	skel := run.StableSkeleton()
	if skel.NumEdges() != 3 {
		t.Fatalf("skeleton of isolated-prefix run should be self-loops only, got %v", skel)
	}
}

func TestIsolationAndComplete(t *testing.T) {
	iso := Isolation(4)
	if iso.Graph(1).NumEdges() != 4 {
		t.Fatal("isolation should have only self-loops")
	}
	full := Complete(4)
	if full.Graph(9).NumEdges() != 16 {
		t.Fatal("complete graph wrong")
	}
}

func TestFigure1MatchesPaperStatedProperties(t *testing.T) {
	run := Figure1()
	if run.N() != 6 {
		t.Fatalf("n = %d", run.N())
	}
	skel, rst := skeleton.StableSkeleton(run, 0)
	if !skel.Equal(Figure1StableSkeleton()) {
		t.Fatalf("stable skeleton mismatch:\n got  %v\n want %v", skel, Figure1StableSkeleton())
	}
	if rst != 3 {
		t.Fatalf("r_ST = %d, want 3 (transients die after round 2)", rst)
	}
	roots := graph.RootComponents(skel)
	if len(roots) != 2 ||
		!roots[0].Equal(graph.NodeSetOf(0, 1)) ||
		!roots[1].Equal(graph.NodeSetOf(2, 3, 4)) {
		t.Fatalf("root components = %v", roots)
	}
	// Paper: Psrcs(3) holds for this run.
	if !predicate.Holds(skel, 3) {
		t.Fatal("Psrcs(3) should hold")
	}
	if got := predicate.MinK(skel); got != 3 {
		t.Fatalf("MinK = %d, want 3", got)
	}
}

func TestFigure1TransientEdges(t *testing.T) {
	run := Figure1()
	r1, r2, r3 := run.Graph(1), run.Graph(2), run.Graph(3)
	type e struct{ u, v int }
	transientBoth := []e{{1, 5}, {4, 3}, {3, 2}} // p2->p6, p5->p4, p4->p3
	for _, ed := range transientBoth {
		if !r1.HasEdge(ed.u, ed.v) || !r2.HasEdge(ed.u, ed.v) || r3.HasEdge(ed.u, ed.v) {
			t.Fatalf("edge p%d->p%d should live in rounds 1-2 only", ed.u+1, ed.v+1)
		}
	}
	if !r1.HasEdge(1, 2) || r2.HasEdge(1, 2) {
		t.Fatal("p2->p3 should live in round 1 only")
	}
}

func TestLowerBoundStructure(t *testing.T) {
	for n := 4; n <= 10; n++ {
		for k := 2; k < n; k++ {
			run := LowerBound(n, k)
			skel := run.StableSkeleton()
			s := LowerBoundSource(k)
			L := LowerBoundIsolated(k)
			L.ForEach(func(p int) {
				if got := skel.InNeighbors(p); !got.Equal(graph.NodeSetOf(p)) {
					t.Fatalf("PT(p%d) = %v, want only itself", p+1, got)
				}
			})
			for p := 0; p < n; p++ {
				if L.Has(p) {
					continue
				}
				want := graph.NodeSetOf(p, s)
				if got := skel.InNeighbors(p); !got.Equal(want) {
					t.Fatalf("PT(p%d) = %v, want %v", p+1, got, want)
				}
			}
			if !predicate.Holds(skel, k) {
				t.Fatalf("Psrcs(%d) must hold for LowerBound(n=%d)", k, n)
			}
			if predicate.Holds(skel, k-1) {
				t.Fatalf("Psrcs(%d) must fail for LowerBound(n=%d, k=%d)", k-1, n, k)
			}
		}
	}
}

func TestLowerBoundPanics(t *testing.T) {
	for _, args := range [][2]int{{4, 1}, {4, 4}, {4, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("LowerBound(%d,%d) should panic", args[0], args[1])
				}
			}()
			LowerBound(args[0], args[1])
		}()
	}
}

func TestCrashGraphSemantics(t *testing.T) {
	sched := NewCrashSchedule(4).Crash(1, 2) // p2 crashes in round 2
	run := Crashes(4, sched)
	r1, r2, r3 := run.Graph(1), run.Graph(2), run.Graph(3)
	if !r1.HasEdge(1, 0) {
		t.Fatal("p2 alive in round 1")
	}
	if r2.HasEdge(1, 0) || r2.HasEdge(1, 3) {
		t.Fatal("crash-round message delivered without partial set")
	}
	if !r2.HasEdge(1, 1) || !r3.HasEdge(1, 1) {
		t.Fatal("self-loop of crashed process must survive")
	}
	if r3.HasEdge(1, 2) {
		t.Fatal("post-crash delivery")
	}
	if run.StabilizationRound() != 3 {
		t.Fatalf("StabilizationRound = %d", run.StabilizationRound())
	}
}

func TestCrashPartialDelivery(t *testing.T) {
	sched := NewCrashSchedule(4).CrashPartial(0, 1, graph.NodeSetOf(2))
	run := Crashes(4, sched)
	r1 := run.Graph(1)
	if !r1.HasEdge(0, 2) {
		t.Fatal("partial delivery lost")
	}
	if r1.HasEdge(0, 1) || r1.HasEdge(0, 3) {
		t.Fatal("non-receivers got the crash-round message")
	}
	if run.Graph(2).HasEdge(0, 2) {
		t.Fatal("partial set must not outlive the crash round")
	}
}

func TestRandomCrashesRespectsF(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(6)
		f := rng.Intn(n)
		run, _ := RandomCrashes(n, f, 5, rng)
		skel := run.StableSkeleton()
		crashed := 0
		for p := 0; p < n; p++ {
			// A crashed process has only its self-loop as out-edge.
			if skel.OutNeighbors(p).Equal(graph.NodeSetOf(p)) && n > 1 {
				crashed++
			}
		}
		if crashed != f {
			t.Fatalf("crashed = %d, want %d", crashed, f)
		}
	}
}

func TestPartition(t *testing.T) {
	run := Partition(6, EvenPartition(6, 2))
	skel := run.StableSkeleton()
	if !skel.HasEdge(0, 2) || skel.HasEdge(0, 3) {
		t.Fatal("partition edges wrong")
	}
	roots := graph.RootComponents(skel)
	if len(roots) != 2 {
		t.Fatalf("roots = %v", roots)
	}
	if got := predicate.MinK(skel); got != 2 {
		t.Fatalf("MinK = %d, want 2 (one per partition)", got)
	}
}

func TestPartitionValidation(t *testing.T) {
	for _, blocks := range [][][]int{
		{{0, 1}, {1, 2}}, // overlap
		{{0, 1}},         // does not cover
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Partition(%v) should panic", blocks)
				}
			}()
			Partition(3, blocks)
		}()
	}
}

func TestEvenPartition(t *testing.T) {
	blocks := EvenPartition(7, 3)
	total := 0
	for _, b := range blocks {
		total += len(b)
		if len(b) < 2 || len(b) > 3 {
			t.Fatalf("unbalanced blocks: %v", blocks)
		}
	}
	if total != 7 {
		t.Fatalf("blocks do not cover: %v", blocks)
	}
}

func TestWithNoisePreservesSkeleton(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		base := RandomSources(8, 1+rng.Intn(4), 0, 0, rng)
		noisy := WithNoise(base, 6, 0.4, rng)
		if !noisy.StableSkeleton().Equal(base.StableSkeleton()) {
			t.Fatal("noise changed the stable skeleton")
		}
		// Noise only adds edges.
		for r := 1; r <= 6; r++ {
			if !base.Graph(r).SubgraphOf(noisy.Graph(r)) {
				t.Fatalf("noise removed edges in round %d", r)
			}
		}
	}
}

func TestRandomSourcesRootCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(10)
		roots := 1 + rng.Intn(n)
		run := RandomSources(n, roots, 3, 0.2, rng)
		skel := run.StableSkeleton()
		if got := len(graph.RootComponents(skel)); got != roots {
			t.Fatalf("roots = %d, want %d", got, roots)
		}
		minK := predicate.MinK(skel)
		if minK < roots {
			t.Fatalf("MinK %d < roots %d contradicts Theorem 1", minK, roots)
		}
	}
}

func TestEventualIsolationPrefix(t *testing.T) {
	base := Figure1()
	run := Eventual(base, 3)
	for r := 1; r <= 3; r++ {
		if run.Graph(r).NumEdges() != 6 {
			t.Fatalf("round %d not isolated", r)
		}
	}
	// Base prefix follows after the isolation rounds.
	if !run.Graph(4).Equal(base.Graph(1)) {
		t.Fatal("base prefix not preserved after isolation")
	}
	if !run.Graph(6).Equal(base.Graph(3)) {
		t.Fatal("stable graph wrong after shifted prefix")
	}
}

func TestChurnDeterministicPerRound(t *testing.T) {
	core := Figure1StableSkeleton()
	ch := NewChurn(core, 0.3, 42)
	for r := 1; r <= 5; r++ {
		if !ch.Graph(r).Equal(ch.Graph(r)) {
			t.Fatalf("Graph(%d) not deterministic", r)
		}
	}
	if ch.Graph(1).Equal(ch.Graph(2)) {
		t.Fatal("distinct rounds should differ with overwhelming probability")
	}
}

func TestChurnContainsCore(t *testing.T) {
	core := Figure1StableSkeleton()
	ch := NewChurn(core, 0.5, 7)
	for r := 1; r <= 10; r++ {
		if !core.SubgraphOf(ch.Graph(r)) {
			t.Fatalf("core not contained in round %d", r)
		}
	}
}

func TestChurnSkeletonConvergesToCore(t *testing.T) {
	core := Figure1StableSkeleton()
	ch := NewChurn(core, 0.3, 11)
	tr := skeleton.NewTracker(6, false)
	for r := 1; r <= 60; r++ {
		tr.Observe(r, ch.Graph(r))
	}
	if !tr.Skeleton().Equal(core) {
		t.Fatalf("skeleton did not converge to core after 60 rounds:\n got  %v\n want %v",
			tr.Skeleton(), core)
	}
}

func TestChurnCoreValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing self-loops")
		}
	}()
	NewChurn(graph.NewFullDigraph(3), 0.1, 0)
}

// TestHubClustersProperties pins the analytic claims HubClusters is
// built on: exactly one root component (the hub clique), MinK equal to
// the hub count, and the ~3n edge budget that keeps the per-trial MinK
// computation tractable at large n. Widths on both sides of the one-word
// boundary are covered.
func TestHubClustersProperties(t *testing.T) {
	cases := []struct{ n, hubs int }{
		{8, 1}, {12, 3}, {63, 4}, {64, 2}, {65, 2}, {130, 4},
	}
	for _, c := range cases {
		run := HubClusters(c.n, c.hubs, 0, 0, nil)
		skel := run.StableSkeleton()
		if roots := graph.RootComponents(skel); len(roots) != 1 {
			t.Errorf("n=%d hubs=%d: %d root components, want 1", c.n, c.hubs, len(roots))
		}
		if got := predicate.MinK(skel); got != c.hubs {
			t.Errorf("n=%d hubs=%d: MinK = %d, want %d", c.n, c.hubs, got, c.hubs)
		}
		// Self-loops n, hub clique hubs², hub→member + pred→member 2(n-hubs);
		// minus the overlaps already counted as self-loops is an upper bound.
		if max := c.n + c.hubs*c.hubs + 2*(c.n-c.hubs); skel.NumEdges() > max {
			t.Errorf("n=%d hubs=%d: %d skeleton edges, want <= %d", c.n, c.hubs, skel.NumEdges(), max)
		}
	}
}

// TestHubClustersNoise checks that a noisy prefix leaves the stable
// skeleton untouched (noise only ever adds edges, only before
// stabilization).
func TestHubClustersNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	quiet := HubClusters(20, 2, 0, 0, nil)
	noisy := HubClusters(20, 2, 8, 0.1, rng)
	if !noisy.StableSkeleton().Equal(quiet.StableSkeleton()) {
		t.Fatal("noise changed the stable skeleton")
	}
	if noisy.StabilizationRound() != 9 {
		t.Fatalf("stabilization round = %d, want 9", noisy.StabilizationRound())
	}
}

// TestHubClustersValidation pins the constructor's bounds.
func TestHubClustersValidation(t *testing.T) {
	for _, c := range []struct{ n, hubs int }{{8, 0}, {8, 5}, {4, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HubClusters(%d, %d) did not panic", c.n, c.hubs)
				}
			}()
			HubClusters(c.n, c.hubs, 0, 0, nil)
		}()
	}
}
