package adversary

import (
	"testing"
)

func TestMaterializeRunPassesThroughRuns(t *testing.T) {
	run := Figure1()
	if got := MaterializeRun(run, 50); got != run {
		t.Fatal("materializing a *Run did not return it unchanged")
	}
}

func TestMaterializeRunMatchesGenerator(t *testing.T) {
	// A stabilizing generator: equivalence must hold for every round,
	// even beyond upTo (the Stabilizer short-circuit).
	gen := NewPartitionMerge(8, 4, 2, 3)
	upTo := 12
	mat := MaterializeRun(gen, upTo)
	for r := 1; r <= gen.StabilizationRound()+5; r++ {
		if !mat.Graph(r).Equal(gen.Graph(r)) {
			t.Fatalf("round %d differs between generator and materialization", r)
		}
	}
	if !mat.StableSkeleton().Equal(gen.StableSkeleton()) {
		t.Fatal("stable skeletons differ")
	}

	// A never-stabilizing generator: equivalence is only promised up to
	// upTo.
	vs := NewVertexStableRoot(6, 2, 0.3, 7)
	matVS := MaterializeRun(vs, upTo)
	for r := 1; r <= upTo; r++ {
		if !matVS.Graph(r).Equal(vs.Graph(r)) {
			t.Fatalf("round %d differs for the non-stabilizing generator", r)
		}
	}
}
