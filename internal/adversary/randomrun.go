package adversary

import (
	"fmt"
	"math/rand"

	"kset/internal/graph"
)

// This file holds the schedule-space generators and surgery helpers of
// the falsification engine (internal/check, DESIGN.md §6): arbitrary
// per-round digraph runs, random mutations over existing runs, and the
// graph-level editing primitives the counterexample shrinker uses
// (CloneGraphs, ProjectOut). Everything operates on eventually-constant
// *Run schedules, which are exactly what internal/runfile serializes, so
// any run produced here can be stored and replayed bit-identically.

// RandomRun returns an eventually-constant run of entirely arbitrary
// communication graphs: prefixLen rounds each drawn as an independent
// random digraph (per-round edge density itself drawn uniformly from
// [0, 1)), followed by one arbitrary stable graph repeated forever. All
// self-loops are present, as the round model requires; nothing else is
// constrained — this is the fuzzer's chaos strategy, probing oracle
// invariants outside every named predicate family.
func RandomRun(n, prefixLen int, rng *rand.Rand) *Run {
	if prefixLen < 0 {
		panic(fmt.Sprintf("adversary: negative prefix length %d", prefixLen))
	}
	prefix := make([]*graph.Digraph, prefixLen)
	for i := range prefix {
		prefix[i] = graph.RandomDigraph(n, rng.Float64(), rng)
	}
	return NewRun(prefix, graph.RandomDigraph(n, rng.Float64(), rng))
}

// Mutate returns a copy of run with `flips` random off-diagonal edge
// flips applied: each flip picks a uniformly random round graph (prefix
// or stable) and a uniformly random ordered pair u != v, and toggles the
// edge u->v. Self-loops are never touched. Flipping stable-graph edges
// changes the stable skeleton (and hence MinK), which is fine: the check
// oracles recompute both from the realized run.
func Mutate(run *Run, flips int, rng *rand.Rand) *Run {
	if flips < 0 {
		panic(fmt.Sprintf("adversary: negative flip count %d", flips))
	}
	n := run.N()
	prefix, stable := run.CloneGraphs()
	for i := 0; i < flips; i++ {
		g := stable
		if len(prefix) > 0 {
			if slot := rng.Intn(len(prefix) + 1); slot < len(prefix) {
				g = prefix[slot]
			}
		}
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		if n == 1 {
			continue // only self-loops exist
		}
		if g.HasEdge(u, v) {
			g.RemoveEdge(u, v)
		} else {
			g.AddEdge(u, v)
		}
	}
	return NewRun(prefix, stable)
}

// CloneGraphs returns deep copies of the run's prefix graphs and stable
// graph, in round order. Callers may edit the copies freely and rebuild a
// run with NewRun — the schedule-surgery entry point used by Mutate and
// by the counterexample shrinker.
func (a *Run) CloneGraphs() (prefix []*graph.Digraph, stable *graph.Digraph) {
	prefix = make([]*graph.Digraph, len(a.prefix))
	for i, g := range a.prefix {
		prefix[i] = g.Clone()
	}
	return prefix, a.stable.Clone()
}

// ProjectOut returns the run restricted to the universe without process
// v: every round graph is the induced subgraph on the remaining n-1
// processes, reindexed to 0..n-2 (ids above v shift down by one). This
// is the shrinker's process-merging reduction: if a violation survives
// the projection, the counterexample did not need process v. It panics
// for n == 1 or v out of range.
func (a *Run) ProjectOut(v int) *Run {
	n := a.N()
	if n <= 1 {
		panic("adversary: cannot project the last process out")
	}
	if v < 0 || v >= n {
		panic(fmt.Sprintf("adversary: ProjectOut p%d out of universe %d", v+1, n))
	}
	project := func(g *graph.Digraph) *graph.Digraph {
		h := graph.NewFullDigraph(n - 1)
		h.AddSelfLoops()
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			g.ForEachOut(u, func(w int) {
				if w == v {
					return
				}
				uu, ww := u, w
				if uu > v {
					uu--
				}
				if ww > v {
					ww--
				}
				h.AddEdge(uu, ww)
			})
		}
		return h
	}
	prefix := make([]*graph.Digraph, len(a.prefix))
	for i, g := range a.prefix {
		prefix[i] = project(g)
	}
	return NewRun(prefix, project(a.stable))
}
