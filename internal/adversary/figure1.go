package adversary

import "kset/internal/graph"

// Figure1 returns the 6-process run reconstructed from the paper's
// Figure 1. Psrcs(3) holds; the stable skeleton (Figure 1b) has the two
// root components {p1,p2} and {p3,p4,p5} with p6 downstream of p5.
//
// The stable edges (all rounds, self-loops everywhere):
//
//	p1 -> p2, p2 -> p1            root component {p1, p2}
//	p3 -> p4, p4 -> p5, p5 -> p3  root component {p3, p4, p5}
//	p5 -> p6                      p6's only stable source
//
// The transient edges, chosen so that p6's approximation graphs
// G¹p6..G⁶p6 reproduce the label multisets drawn in Figure 1c-1h:
//
//	p2 -> p6  rounds 1-2   (p6's second timely source early on)
//	p5 -> p4  rounds 1-2   (extra in-edge of p4)
//	p4 -> p3  rounds 1-2   (extra in-edge of p3)
//	p2 -> p3  round 1      (extra in-edge of p3, one round only)
//
// A mechanical execution of Algorithm 1 on this run matches the figure's
// graphs (c)-(f) edge-for-edge and label-for-label; in (g) and (h) it
// additionally retains the stale edge (p5 -1-> p4), which the hand-drawn
// figure omits and which the purge rule (line 24) removes in round 7. See
// EXPERIMENTS.md §E1.
func Figure1() *Run {
	stable := Figure1StableSkeleton()

	r1 := stable.Clone()
	r1.AddEdge(1, 5) // p2 -> p6
	r1.AddEdge(4, 3) // p5 -> p4
	r1.AddEdge(3, 2) // p4 -> p3
	r1.AddEdge(1, 2) // p2 -> p3

	r2 := stable.Clone()
	r2.AddEdge(1, 5) // p2 -> p6
	r2.AddEdge(4, 3) // p5 -> p4
	r2.AddEdge(3, 2) // p4 -> p3

	return NewRun([]*graph.Digraph{r1, r2}, stable)
}

// Figure1StableSkeleton returns the paper's Figure 1b graph G^∩∞.
func Figure1StableSkeleton() *graph.Digraph {
	g := graph.NewFullDigraph(6)
	g.AddSelfLoops()
	g.AddEdge(0, 1) // p1 -> p2
	g.AddEdge(1, 0) // p2 -> p1
	g.AddEdge(2, 3) // p3 -> p4
	g.AddEdge(3, 4) // p4 -> p5
	g.AddEdge(4, 2) // p5 -> p3
	g.AddEdge(4, 5) // p5 -> p6
	return g
}

// Figure1LabelMultisets returns the multisets of non-self-loop edge
// labels of p6's approximation graphs G¹p6..G⁶p6 as printed in the
// paper's Figure 1c-1h, in descending order per round. Index 0 is round 1.
func Figure1LabelMultisets() [][]int {
	return [][]int{
		{1, 1},
		{2, 2, 1, 1},
		{3, 2, 1, 1},
		{4, 3, 2, 2, 1, 1, 1},
		{5, 4, 3, 2, 2},
		{6, 5, 4, 3},
	}
}
