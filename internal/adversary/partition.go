package adversary

import (
	"fmt"
	"math/rand"

	"kset/internal/graph"
)

// PartitionMerge is a partition-driven dynamic-network adversary: the n
// processes start split into c disjoint cliques (a seeded balanced
// partition), and the components re-merge pairwise on a fixed schedule —
// every `every` rounds each surviving component merges with its sibling,
// halving the component count until the graph is one clique. Because
// edges are only ever added, the stable skeleton G^∩∞ is exactly the
// round-1 graph: c disjoint strongly connected components, hence c root
// components and MinK = c. The run therefore satisfies Psrcs(k) exactly
// for k >= c, which makes PartitionMerge the natural stress test for
// Theorem 1's bound (at most k = c decision values, experiment E14) and
// a k-set-agreement cousin of the paper's Theorem 2 construction: no
// algorithm can decide fewer than c values before the partitions have
// exchanged anything.
//
// Graph(r) is deterministic in (seed, r); the seed only shapes the
// initial partition, the merge schedule itself is deterministic.
type PartitionMerge struct {
	n, c  int
	every int
	// member maps node -> initial group id 0..c-1; groups are balanced
	// over a seeded permutation.
	member []int
	// stages is ceil(log2 c): the number of pairwise merge waves until a
	// single component remains.
	stages int
}

// NewPartitionMerge returns a partition adversary on n processes split
// into c groups, with one pairwise merge wave every `every` rounds (the
// first wave happens at round every+1).
func NewPartitionMerge(n, c, every int, seed int64) *PartitionMerge {
	if c < 1 || c > n {
		panic(fmt.Sprintf("adversary: PartitionMerge c=%d out of [1,%d]", c, n))
	}
	if every < 1 {
		panic(fmt.Sprintf("adversary: PartitionMerge every=%d, need >= 1", every))
	}
	rng := rand.New(rand.NewSource(MixSeed(seed, 0)))
	member := make([]int, n)
	for i, v := range rng.Perm(n) {
		member[v] = i % c
	}
	stages := 0
	for 1<<stages < c {
		stages++
	}
	return &PartitionMerge{n: n, c: c, every: every, member: member, stages: stages}
}

// N implements rounds.Adversary.
func (a *PartitionMerge) N() int { return a.n }

// stage returns how many merge waves have happened by round r.
func (a *PartitionMerge) stage(r int) int {
	if r < 1 {
		panic(fmt.Sprintf("adversary: round %d < 1", r))
	}
	s := (r - 1) / a.every
	if s > a.stages {
		s = a.stages
	}
	return s
}

// Components returns the number of connected components of round r's
// graph: ceil(c / 2^stage).
func (a *PartitionMerge) Components(r int) int {
	s := a.stage(r)
	return (a.c + 1<<s - 1) >> s
}

// component returns the component id of node v at merge stage s: initial
// groups g and g' have merged exactly when g >> s == g' >> s.
func (a *PartitionMerge) component(v, s int) int { return a.member[v] >> s }

// Graph implements rounds.Adversary: a disjoint union of cliques, one
// per component of the current merge stage.
func (a *PartitionMerge) Graph(r int) *graph.Digraph {
	s := a.stage(r)
	g := graph.NewFullDigraph(a.n)
	g.AddSelfLoops()
	for u := 0; u < a.n; u++ {
		cu := a.component(u, s)
		for v := 0; v < a.n; v++ {
			if u != v && cu == a.component(v, s) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// StabilizationRound implements rounds.Stabilizer: the round of the final
// merge wave, after which the graph is a single clique forever.
func (a *PartitionMerge) StabilizationRound() int { return a.stages*a.every + 1 }

// StableSkeleton returns G^∩∞: merging only ever adds edges, so the
// intersection of all rounds is the round-1 graph — c disjoint cliques,
// c root components, MinK = c.
func (a *PartitionMerge) StableSkeleton() *graph.Digraph { return a.Graph(1) }
