package adversary

import (
	"testing"

	"kset/internal/graph"
	"kset/internal/predicate"
	"kset/internal/rounds"
)

// Compile-time interface checks for the dynamic-network family.
var (
	_ rounds.Adversary  = (*TInterval)(nil)
	_ rounds.Stabilizer = (*TInterval)(nil)
	_ rounds.Adversary  = (*PartitionMerge)(nil)
	_ rounds.Stabilizer = (*PartitionMerge)(nil)
	_ rounds.Adversary  = (*VertexStableRoot)(nil)
)

// sameGraphSequence checks Graph(r) equality for two adversaries over a
// prefix of rounds.
func sameGraphSequence(t *testing.T, a, b rounds.Adversary, upTo int) {
	t.Helper()
	for r := 1; r <= upTo; r++ {
		if !a.Graph(r).Equal(b.Graph(r)) {
			t.Fatalf("round %d graphs differ for identical seeds", r)
		}
	}
}

func TestTIntervalDeterministic(t *testing.T) {
	a := NewTInterval(12, 3, 24, 4, 77)
	b := NewTInterval(12, 3, 24, 4, 77)
	sameGraphSequence(t, a, b, 40)
	// Repeated queries of the same round must also agree (executor
	// contract, same as Churn).
	if !a.Graph(5).Equal(a.Graph(5)) {
		t.Fatal("Graph(5) not reproducible")
	}
	c := NewTInterval(12, 3, 24, 4, 78)
	differ := false
	for r := 1; r <= 24; r++ {
		if !a.Graph(r).Equal(c.Graph(r)) {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestTIntervalEpochsAndStabilization(t *testing.T) {
	a := NewTInterval(8, 4, 10, 2, 1)
	// Rounds 1-4 epoch 0, 5-8 epoch 1, 9-10 epoch 2, frozen afterwards.
	for r, want := range map[int]int{1: 0, 4: 0, 5: 1, 8: 1, 9: 2, 10: 2, 11: 2, 100: 2} {
		if got := a.Epoch(r); got != want {
			t.Fatalf("Epoch(%d) = %d, want %d", r, got, want)
		}
	}
	if got := a.StabilizationRound(); got != 9 {
		t.Fatalf("StabilizationRound = %d, want 9", got)
	}
	// Within an epoch the graph is constant; the frozen tail equals the
	// final epoch's graph.
	if !a.Graph(5).Equal(a.Graph(8)) {
		t.Fatal("graphs differ within one epoch")
	}
	if !a.Graph(9).Equal(a.Graph(500)) {
		t.Fatal("graph changed after the stabilization round")
	}
}

func TestTIntervalSkeletonIsEpochIntersection(t *testing.T) {
	a := NewTInterval(10, 2, 11, 3, 5)
	want := a.Graph(1).Clone()
	for r := 2; r <= a.StabilizationRound(); r++ {
		want.IntersectWith(a.Graph(r))
	}
	if !a.StableSkeleton().Equal(want) {
		t.Fatal("StableSkeleton is not the intersection of the epoch graphs")
	}
	// Every round graph must satisfy the model requirements.
	for r := 1; r <= 12; r++ {
		g := a.Graph(r)
		for v := 0; v < 10; v++ {
			if !g.HasNode(v) || !g.HasEdge(v, v) {
				t.Fatalf("round %d graph violates self-loop requirement", r)
			}
		}
	}
}

func TestPartitionMergeDeterministic(t *testing.T) {
	a := NewPartitionMerge(16, 4, 3, 9)
	b := NewPartitionMerge(16, 4, 3, 9)
	sameGraphSequence(t, a, b, 20)
}

func TestPartitionMergeSchedule(t *testing.T) {
	a := NewPartitionMerge(12, 4, 5, 2)
	// 4 groups halve twice: stage 0 rounds 1-5 (4 comps), stage 1 rounds
	// 6-10 (2 comps), stage 2 from round 11 (1 comp).
	for r, want := range map[int]int{1: 4, 5: 4, 6: 2, 10: 2, 11: 1, 99: 1} {
		if got := a.Components(r); got != want {
			t.Fatalf("Components(%d) = %d, want %d", r, got, want)
		}
	}
	if got := a.StabilizationRound(); got != 11 {
		t.Fatalf("StabilizationRound = %d, want 11", got)
	}
	if !a.Graph(11).Equal(graph.CompleteDigraph(12)) {
		t.Fatal("fully merged graph is not the complete graph")
	}
}

func TestPartitionMergeSkeletonHasCRootsAndMinKC(t *testing.T) {
	for _, c := range []int{2, 3, 5} {
		a := NewPartitionMerge(15, c, 4, int64(c))
		skel := a.StableSkeleton()
		if got := len(graph.RootComponents(skel)); got != c {
			t.Fatalf("c=%d: %d root components", c, got)
		}
		if got := predicate.MinK(skel); got != c {
			t.Fatalf("c=%d: MinK = %d", c, got)
		}
		// Edges are only added over time: every round graph contains the
		// skeleton.
		for r := 1; r <= a.StabilizationRound()+1; r++ {
			inter := a.Graph(r).Clone()
			inter.IntersectWith(skel)
			if !inter.Equal(skel) {
				t.Fatalf("c=%d round %d: skeleton edge missing from round graph", c, r)
			}
		}
	}
}

func TestVertexStableRootDeterministic(t *testing.T) {
	a := NewVertexStableRoot(14, 4, 0.3, 123)
	b := NewVertexStableRoot(14, 4, 0.3, 123)
	sameGraphSequence(t, a, b, 30)
	if !a.Graph(7).Equal(a.Graph(7)) {
		t.Fatal("Graph(7) not reproducible")
	}
}

func TestVertexStableRootStructure(t *testing.T) {
	n, rootSize := 12, 3
	a := NewVertexStableRoot(n, rootSize, 0.4, 31)
	base := a.Base()
	// The base must be Psrcs(1): a single root component whose apex
	// reaches everyone perpetually.
	if got := len(graph.RootComponents(base)); got != 1 {
		t.Fatalf("base has %d root components", got)
	}
	if got := predicate.MinK(base); got != 1 {
		t.Fatalf("base MinK = %d, want 1", got)
	}
	for r := 1; r <= 25; r++ {
		g := a.Graph(r)
		// Every round contains the perpetual part...
		inter := g.Clone()
		inter.IntersectWith(base)
		if !inter.Equal(base) {
			t.Fatalf("round %d dropped a perpetual edge", r)
		}
		// ...and never adds root-internal edges beyond the clique (the
		// root is vertex-stable by construction, nothing to add) while
		// self-loops are all present.
		for v := 0; v < n; v++ {
			if !g.HasEdge(v, v) {
				t.Fatalf("round %d missing self-loop", r)
			}
		}
	}
	// The periphery actually gets rewired: some round must differ from
	// the base and from another round.
	if a.Graph(1).Equal(base) && a.Graph(2).Equal(base) && a.Graph(3).Equal(base) {
		t.Fatal("no transient edges ever appeared at p=0.4")
	}
	if a.Graph(1).Equal(a.Graph(2)) && a.Graph(2).Equal(a.Graph(3)) {
		t.Fatal("periphery not rewired across rounds")
	}
}

func TestDynamicAdversaryValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("TInterval T=0", func() { NewTInterval(4, 0, 8, 2, 1) })
	mustPanic("TInterval maxRoots", func() { NewTInterval(4, 2, 8, 5, 1) })
	mustPanic("TInterval horizon", func() { NewTInterval(4, 2, 0, 2, 1) })
	mustPanic("PartitionMerge c", func() { NewPartitionMerge(4, 5, 2, 1) })
	mustPanic("PartitionMerge every", func() { NewPartitionMerge(4, 2, 0, 1) })
	mustPanic("VertexStableRoot rootSize", func() { NewVertexStableRoot(4, 0, 0.2, 1) })
	mustPanic("VertexStableRoot p", func() { NewVertexStableRoot(4, 2, 1.5, 1) })
	mustPanic("TInterval round 0", func() { NewTInterval(4, 2, 8, 2, 1).Graph(0) })
	mustPanic("PartitionMerge round 0", func() { NewPartitionMerge(4, 2, 2, 1).Graph(0) })
	mustPanic("VertexStableRoot round 0", func() { NewVertexStableRoot(4, 2, 0.2, 1).Graph(0) })
}
