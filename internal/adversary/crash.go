package adversary

import (
	"fmt"
	"math/rand"
	"sort"

	"kset/internal/graph"
)

// CrashSchedule assigns crash rounds to processes: Rounds[p] = r > 0
// means p crashes in round r (its round-r message reaches only the
// survivors listed in Partial[p], if any, and from round r+1 on nobody
// hears p again except p itself). Rounds[p] = 0 means p never crashes.
//
// This is the paper's crash modelling (Section II): a crashed process is
// an "internally correct" process no other process receives messages from
// after the crash — it keeps taking steps and must still decide.
type CrashSchedule struct {
	Rounds  []int
	Partial []graph.NodeSet // receivers of the crash-round message; nil = nobody
}

// NewCrashSchedule returns a schedule for n processes with no crashes.
func NewCrashSchedule(n int) *CrashSchedule {
	return &CrashSchedule{Rounds: make([]int, n), Partial: make([]graph.NodeSet, n)}
}

// Crash marks process p as crashing in round r with no crash-round
// deliveries.
func (s *CrashSchedule) Crash(p, r int) *CrashSchedule {
	s.Rounds[p] = r
	s.Partial[p] = graph.NodeSet{}
	return s
}

// CrashPartial marks process p as crashing in round r with its round-r
// message still delivered to the given receivers (modelling a crash
// mid-broadcast).
func (s *CrashSchedule) CrashPartial(p, r int, receivers graph.NodeSet) *CrashSchedule {
	s.Rounds[p] = r
	s.Partial[p] = receivers
	return s
}

// NumCrashes returns the number of processes that ever crash.
func (s *CrashSchedule) NumCrashes() int {
	c := 0
	for _, r := range s.Rounds {
		if r > 0 {
			c++
		}
	}
	return c
}

// Crashes builds the run induced by the schedule on top of an otherwise
// fully synchronous system (complete graph). The stable skeleton is the
// complete graph minus all out-edges of crashed processes (self-loops
// kept).
func Crashes(n int, sched *CrashSchedule) *Run {
	if len(sched.Rounds) != n {
		panic(fmt.Sprintf("adversary: schedule for %d processes, want %d", len(sched.Rounds), n))
	}
	last := 0
	for p, r := range sched.Rounds {
		if r < 0 {
			panic(fmt.Sprintf("adversary: negative crash round for p%d", p+1))
		}
		if r > last {
			last = r
		}
	}
	prefix := make([]*graph.Digraph, 0, last)
	for r := 1; r <= last; r++ {
		prefix = append(prefix, crashGraph(n, sched, r))
	}
	// Stable graph: after every crash has happened.
	return NewRun(prefix, crashGraph(n, sched, last+1))
}

// crashGraph materializes the round-r communication graph under the
// schedule.
func crashGraph(n int, sched *CrashSchedule, r int) *graph.Digraph {
	g := graph.CompleteDigraph(n)
	for p := 0; p < n; p++ {
		cr := sched.Rounds[p]
		if cr == 0 || r < cr {
			continue // alive through this round
		}
		for v := 0; v < n; v++ {
			if v == p {
				continue // self-loop survives: p keeps hearing itself
			}
			if r == cr && sched.Partial[p].Has(v) {
				continue // crash-round partial delivery
			}
			g.RemoveEdge(p, v)
		}
	}
	return g
}

// RandomCrashes returns a run in which f distinct random processes crash
// at random rounds in [1, maxRound], each with a random partial delivery
// set, together with the schedule (so callers can distinguish survivors
// from crashed-but-internally-correct processes). The classic t-resilient
// synchronous environment used to exercise the FloodMin/FloodSet
// baselines.
func RandomCrashes(n, f, maxRound int, rng *rand.Rand) (*Run, *CrashSchedule) {
	if f < 0 || f > n {
		panic(fmt.Sprintf("adversary: f=%d out of range [0,%d]", f, n))
	}
	sched := NewCrashSchedule(n)
	victims := rng.Perm(n)[:f]
	sort.Ints(victims)
	for _, p := range victims {
		r := 1 + rng.Intn(maxRound)
		recv := graph.NewNodeSet(n)
		for v := 0; v < n; v++ {
			if v != p && rng.Intn(2) == 0 {
				recv.Add(v)
			}
		}
		sched.CrashPartial(p, r, recv)
	}
	return Crashes(n, sched), sched
}

// Partition returns the run of a permanently partitioned system: blocks
// are disjoint process groups, communication is complete inside a block
// and absent across blocks. Every block is one root component, so MinK of
// the skeleton equals the number of blocks: the motivating scenario for
// k-set agreement in partitionable systems (paper Section I) with
// k = number of partitions.
func Partition(n int, blocks [][]int) *Run {
	g := graph.NewFullDigraph(n)
	g.AddSelfLoops()
	seen := graph.NewNodeSet(n)
	for _, block := range blocks {
		for _, u := range block {
			if seen.Has(u) {
				panic(fmt.Sprintf("adversary: p%d in two partitions", u+1))
			}
			seen.Add(u)
			for _, v := range block {
				g.AddEdge(u, v)
			}
		}
	}
	if seen.Len() != n {
		panic("adversary: partition blocks must cover all processes")
	}
	return Static(g)
}

// EvenPartition splits 0..n-1 into `blocks` contiguous groups of
// near-equal size.
func EvenPartition(n, blocks int) [][]int {
	if blocks < 1 || blocks > n {
		panic(fmt.Sprintf("adversary: cannot split %d processes into %d blocks", n, blocks))
	}
	out := make([][]int, blocks)
	for v := 0; v < n; v++ {
		b := v * blocks / n
		out[b] = append(out[b], v)
	}
	return out
}
