package adversary

import (
	"fmt"

	"kset/internal/graph"
)

// LowerBound builds the run from the paper's Theorem 2 (impossibility of
// (k-1)-set agreement in Psrcs(k)): a set L of k-1 processes hears only
// from themselves, and one process s is heard by every process outside L:
//
//	∀p ∈ L:     PT(p) = {p}
//	∀p ∈ Π\L:   PT(p) = {p, s}
//
// Psrcs(k) holds (s is the 2-source of every (k+1)-set: at least two of
// its members lie outside L), yet with pairwise distinct inputs the k-1
// processes in L plus s can only ever decide their own values, forcing k
// distinct decisions. Processes 0..k-2 form L and process k-1 is s.
func LowerBound(n, k int) *Run {
	if k < 2 || k >= n {
		panic(fmt.Sprintf("adversary: LowerBound needs 2 <= k < n, got k=%d n=%d", k, n))
	}
	g := graph.NewFullDigraph(n)
	g.AddSelfLoops()
	s := k - 1
	for v := k - 1; v < n; v++ {
		g.AddEdge(s, v)
	}
	return Static(g)
}

// LowerBoundIsolated returns the members of L for a LowerBound(n, k) run.
func LowerBoundIsolated(k int) graph.NodeSet {
	set := graph.NewNodeSet(k)
	for v := 0; v < k-1; v++ {
		set.Add(v)
	}
	return set
}

// LowerBoundSource returns the index of the 2-source s in LowerBound(n, k).
func LowerBoundSource(k int) int { return k - 1 }
