package adversary

import (
	"fmt"
	"math/rand"

	"kset/internal/graph"
)

// MixSeed derives an independent sub-seed from (seed, i) with a
// splitmix64 finalizer, so per-round and per-epoch random streams of the
// dynamic adversaries never overlap for nearby indices. It is the single
// mixer behind the determinism scheme of DESIGN.md §5: sim.CellSeed
// wraps it for per-cell sweep seeding. The result is non-negative.
func MixSeed(seed int64, i int) int64 {
	z := uint64(seed) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// TInterval is a T-interval-stable dynamic-network adversary: the
// communication graph is redrawn every T rounds from the rooted-skeleton
// distribution (graph.RandomRootedSkeleton with 1..MaxRoots root
// components), and stops changing once the horizon is reached. It models
// the interval-connectivity regime of the dynamic-network k-set-agreement
// literature (Fraigniaud–Nguyen–Paz and the fault-prone-network lower
// bounds cited in PAPERS.md): inside an epoch the paper's Psrcs machinery
// applies to the epoch graph, but across epochs only the intersection
// survives, so the stable skeleton G^∩∞ — and with it MinK, the bound of
// Theorem 1 — degrades as T shrinks. Experiment E13 measures exactly
// that degradation.
//
// The sequence is eventually constant, so TInterval implements
// rounds.Stabilizer, and Graph(r) is deterministic in (seed, r) as the
// executor contract requires.
type TInterval struct {
	n        int
	t        int // epoch length in rounds
	horizon  int // rounds after which the graph freezes
	maxRoots int
	seed     int64
}

// NewTInterval returns a T-interval adversary on n processes: a fresh
// rooted skeleton with 1..maxRoots root components every T rounds, frozen
// from the epoch containing round horizon onward.
func NewTInterval(n, T, horizon, maxRoots int, seed int64) *TInterval {
	if n < 1 {
		panic(fmt.Sprintf("adversary: TInterval n=%d", n))
	}
	if T < 1 {
		panic(fmt.Sprintf("adversary: TInterval T=%d, need >= 1", T))
	}
	if horizon < 1 {
		panic(fmt.Sprintf("adversary: TInterval horizon=%d, need >= 1", horizon))
	}
	if maxRoots < 1 || maxRoots > n {
		panic(fmt.Sprintf("adversary: TInterval maxRoots=%d out of [1,%d]", maxRoots, n))
	}
	return &TInterval{n: n, t: T, horizon: horizon, maxRoots: maxRoots, seed: seed}
}

// N implements rounds.Adversary.
func (a *TInterval) N() int { return a.n }

// Epoch returns the epoch index (0-based) that round r's graph is drawn
// from; rounds past the horizon stay in the final epoch.
func (a *TInterval) Epoch(r int) int {
	if r < 1 {
		panic(fmt.Sprintf("adversary: round %d < 1", r))
	}
	if r > a.horizon {
		r = a.horizon
	}
	return (r - 1) / a.t
}

// epochGraph draws epoch e's rooted skeleton, deterministically in
// (seed, e).
func (a *TInterval) epochGraph(e int) *graph.Digraph {
	rng := rand.New(rand.NewSource(MixSeed(a.seed, e)))
	roots := 1 + rng.Intn(a.maxRoots)
	return graph.RandomRootedSkeleton(a.n, roots, rng)
}

// Graph implements rounds.Adversary.
func (a *TInterval) Graph(r int) *graph.Digraph { return a.epochGraph(a.Epoch(r)) }

// StabilizationRound implements rounds.Stabilizer: the first round of the
// final epoch, from which the graph sequence is constant.
func (a *TInterval) StabilizationRound() int { return a.Epoch(a.horizon)*a.t + 1 }

// StableSkeleton returns G^∩∞ of this run: the intersection of every
// epoch's graph. For small T (many epochs) it degrades toward the
// self-loop graph, which is what drives MinK — and with it the number of
// decision values Theorem 1 permits — upward in experiment E13.
func (a *TInterval) StableSkeleton() *graph.Digraph {
	skel := a.epochGraph(0)
	for e := 1; e <= a.Epoch(a.horizon); e++ {
		skel.IntersectWith(a.epochGraph(e))
	}
	return skel
}
