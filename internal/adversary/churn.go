package adversary

import (
	"math/rand"

	"kset/internal/graph"
)

// Churn is a non-stabilizing adversary: every round delivers the stable
// core plus fresh random extra edges, forever. The skeleton still
// converges to the core almost surely (each transient pair eventually
// misses a round), but no stabilization round can be promised, so Churn
// deliberately does not implement rounds.Stabilizer — it exercises the
// claim that Algorithm 1's approximation is correct "in all runs,
// regardless of the communication predicate".
//
// Graph(r) is deterministic in (seed, r): calling it twice for the same
// round returns equal graphs, as the executor contract requires.
type Churn struct {
	core *graph.Digraph
	p    float64
	seed int64
}

// NewChurn wraps a core graph (all self-loops required) with per-round
// additive noise of density p.
func NewChurn(core *graph.Digraph, p float64, seed int64) *Churn {
	n := core.N()
	for v := 0; v < n; v++ {
		if !core.HasNode(v) || !core.HasEdge(v, v) {
			panic("adversary: churn core must contain all nodes and self-loops")
		}
	}
	return &Churn{core: core.Clone(), p: p, seed: seed}
}

// N implements rounds.Adversary.
func (c *Churn) N() int { return c.core.N() }

// Graph implements rounds.Adversary.
func (c *Churn) Graph(r int) *graph.Digraph {
	const mix = int64(0x9E3779B97F4A7C15 & 0x7FFFFFFFFFFFFFFF) // golden-ratio round mixer
	rng := rand.New(rand.NewSource(c.seed + int64(r)*mix))
	g := c.core.Clone()
	n := c.core.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && !g.HasEdge(u, v) && rng.Float64() < c.p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Core returns a copy of the noise-free core graph.
func (c *Churn) Core() *graph.Digraph { return c.core.Clone() }
