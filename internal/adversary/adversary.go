// Package adversary provides concrete run generators for the round model.
// The paper quantifies over all runs admissible in a system (a
// communication predicate); an adversary here is one deterministic,
// seedable generator of round communication graphs. The package covers
// every construction the paper itself uses — the Figure 1 run, the
// Theorem 2 lower bound, the ♦Psrcs isolation argument — plus randomized
// families (crash, noise, churn, partitions, rooted skeletons) for
// statistical batteries.
package adversary

import (
	"fmt"
	"math/rand"

	"kset/internal/graph"
)

// Run is an eventually-constant graph sequence: rounds 1..len(prefix)
// replay the prefix, every later round returns the final stable graph. It
// implements rounds.Adversary and rounds.Stabilizer. All graphs must span
// the same universe and contain all nodes and self-loops.
type Run struct {
	prefix []*graph.Digraph
	stable *graph.Digraph
}

// NewRun builds a Run from a (possibly empty) prefix and the graph
// repeated forever afterwards. It validates the self-loop and
// all-nodes-present requirements of the model eagerly so that misbuilt
// adversaries fail at construction, not mid-run.
func NewRun(prefix []*graph.Digraph, stable *graph.Digraph) *Run {
	if stable == nil {
		panic("adversary: nil stable graph")
	}
	n := stable.N()
	validate := func(g *graph.Digraph, what string) {
		if g.N() != n {
			panic(fmt.Sprintf("adversary: %s universe %d, want %d", what, g.N(), n))
		}
		for v := 0; v < n; v++ {
			if !g.HasNode(v) || !g.HasEdge(v, v) {
				panic(fmt.Sprintf("adversary: %s missing node or self-loop p%d", what, v+1))
			}
		}
	}
	validate(stable, "stable graph")
	for i, g := range prefix {
		validate(g, fmt.Sprintf("prefix graph %d", i+1))
	}
	return &Run{prefix: prefix, stable: stable}
}

// Static returns a run whose communication graph is g in every round.
func Static(g *graph.Digraph) *Run { return NewRun(nil, g) }

// N implements rounds.Adversary.
func (a *Run) N() int { return a.stable.N() }

// Graph implements rounds.Adversary.
func (a *Run) Graph(r int) *graph.Digraph {
	if r < 1 {
		panic(fmt.Sprintf("adversary: round %d < 1", r))
	}
	if r-1 < len(a.prefix) {
		return a.prefix[r-1]
	}
	return a.stable
}

// StabilizationRound implements rounds.Stabilizer: from this round on the
// graph sequence is constant.
func (a *Run) StabilizationRound() int { return len(a.prefix) + 1 }

// StableSkeleton returns G^∩∞ of this run: the intersection of every
// round graph. Note this can be strictly smaller than the repeated stable
// graph (e.g. for isolation-prefix runs).
func (a *Run) StableSkeleton() *graph.Digraph {
	skel := a.stable.Clone()
	for _, g := range a.prefix {
		skel.IntersectWith(g)
	}
	return skel
}

// Base returns a copy of the graph repeated after the prefix.
func (a *Run) Base() *graph.Digraph { return a.stable.Clone() }

// PrefixLen returns the number of prefix rounds.
func (a *Run) PrefixLen() int { return len(a.prefix) }

// selfLoopGraph returns the n-process graph with only self-loops: total
// isolation (each process hears only itself).
func selfLoopGraph(n int) *graph.Digraph {
	g := graph.NewFullDigraph(n)
	g.AddSelfLoops()
	return g
}

// Isolation returns a run in which every process is isolated forever:
// admissible in Ptrue and the extreme witness that k-set agreement needs
// some synchrony (any algorithm decides n different values).
func Isolation(n int) *Run { return Static(selfLoopGraph(n)) }

// Complete returns the fully synchronous run: the complete graph forever.
func Complete(n int) *Run { return Static(graph.CompleteDigraph(n)) }

// Eventual wraps a base run with an isolation prefix of the given length:
// for the first `isolated` rounds every process hears only itself, then
// the base run's graphs follow. This realizes the paper's ♦Psrcs(k)
// argument (Section III): the predicate holds only eventually, and if the
// isolation prefix reaches n rounds, Algorithm 1's processes all decide
// their own values.
func Eventual(base *Run, isolated int) *Run {
	if isolated < 0 {
		panic("adversary: negative isolation prefix")
	}
	n := base.N()
	prefix := make([]*graph.Digraph, 0, isolated+base.PrefixLen())
	iso := selfLoopGraph(n)
	for i := 0; i < isolated; i++ {
		prefix = append(prefix, iso)
	}
	prefix = append(prefix, base.prefix...)
	return NewRun(prefix, base.stable)
}

// WithNoise returns a run that behaves like base but with extra random
// edges added during the first `noisy` rounds: each absent ordered pair
// appears independently with probability p in each noisy round. The
// stable skeleton is unchanged (noise only adds edges, and only in a
// finite prefix), so every communication predicate of the base run is
// preserved while early approximation graphs see garbage — exactly the
// regime Figure 1's purge mechanism (line 24) exists for.
func WithNoise(base *Run, noisy int, p float64, rng *rand.Rand) *Run {
	if noisy < 0 {
		panic("adversary: negative noise prefix")
	}
	n := base.N()
	prefix := make([]*graph.Digraph, 0, noisy)
	for r := 1; r <= noisy || r <= base.PrefixLen(); r++ {
		g := base.Graph(r).Clone()
		if r <= noisy {
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if u != v && !g.HasEdge(u, v) && rng.Float64() < p {
						g.AddEdge(u, v)
					}
				}
			}
		}
		prefix = append(prefix, g)
	}
	return NewRun(prefix, base.stable)
}

// RandomSources returns a run whose stable skeleton is a random graph
// with exactly `roots` root components (so Psrcs(k) holds for every
// k >= its MinK >= roots), preceded by `noisy` rounds of additive noise.
func RandomSources(n, roots, noisy int, p float64, rng *rand.Rand) *Run {
	skel := graph.RandomRootedSkeleton(n, roots, rng)
	return WithNoise(Static(skel), noisy, p, rng)
}

// HubClusters returns a run whose stable skeleton is a hub-cluster
// graph: processes 0..hubs-1 are hubs forming a clique (every hub hears
// every hub), and the remaining n-hubs members are dealt round-robin
// into one group per hub; each member hears itself, its hub, and its
// ring-predecessor within the group. A noisy prefix (as in WithNoise)
// is layered on top.
//
// The shape is built for large-n scaling sweeps (experiment E20): the
// skeleton has ~3n edges, exactly one root component (the hub clique),
// and MinK = hubs exactly — the in-neighborhoods {self, hub, pred} of
// members in different groups are disjoint, while any two processes of
// the same group share their hub and any hub shares a hub with
// everyone — so the per-trial MinK computation stays tractable and its
// expected value is known analytically. Hubs decide by connectivity
// (their pruned approximation is the hub clique); members adopt their
// hub's decision broadcast one round later.
func HubClusters(n, hubs, noisy int, p float64, rng *rand.Rand) *Run {
	if hubs < 1 || n < 2*hubs {
		panic(fmt.Sprintf("adversary: HubClusters needs 1 <= hubs <= n/2, got n=%d hubs=%d", n, hubs))
	}
	skel := graph.NewFullDigraph(n)
	skel.AddSelfLoops()
	for u := 0; u < hubs; u++ {
		for v := 0; v < hubs; v++ {
			skel.AddEdge(u, v)
		}
	}
	for m := hubs; m < n; m++ {
		h := (m - hubs) % hubs
		skel.AddEdge(h, m)
		pred := m - hubs // previous member of the same group, wrapping
		if pred < hubs {
			last := m
			for last+hubs < n {
				last += hubs
			}
			pred = last
		}
		skel.AddEdge(pred, m)
	}
	return WithNoise(Static(skel), noisy, p, rng)
}

// RandomSingleSource returns a run whose stable skeleton contains a
// universal 2-source: one process s with a perpetual edge to every
// process. Then s ∈ PT(q) ∩ PT(q') for every pair, so Psrcs(1) holds
// (MinK = 1) and Algorithm 1 is guaranteed to reach consensus — the
// paper's "sufficiently well-behaved" runs of Section V. Random extra
// edges (density extra) and a noisy prefix are layered on top; neither
// can raise MinK above 1.
func RandomSingleSource(n, noisy int, extra, p float64, rng *rand.Rand) *Run {
	skel := graph.NewFullDigraph(n)
	skel.AddSelfLoops()
	s := rng.Intn(n)
	for v := 0; v < n; v++ {
		skel.AddEdge(s, v)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < extra {
				skel.AddEdge(u, v)
			}
		}
	}
	return WithNoise(Static(skel), noisy, p, rng)
}
