package adversary

import (
	"math/rand"
	"testing"

	"kset/internal/graph"
)

// checkModel asserts the round-model requirements on every graph of an
// eventually-constant run: all nodes present, all self-loops.
func checkModel(t *testing.T, run *Run) {
	t.Helper()
	n := run.N()
	for r := 1; r <= run.StabilizationRound(); r++ {
		g := run.Graph(r)
		if g.N() != n {
			t.Fatalf("round %d universe %d, want %d", r, g.N(), n)
		}
		for v := 0; v < n; v++ {
			if !g.HasNode(v) || !g.HasEdge(v, v) {
				t.Fatalf("round %d missing node or self-loop p%d", r, v+1)
			}
		}
	}
}

func TestRandomRunModelRequirements(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(8)
		run := RandomRun(n, rng.Intn(10), rng)
		checkModel(t, run)
	}
}

func TestMutatePreservesModelAndUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := Figure1()
	for i := 0; i < 50; i++ {
		m := Mutate(base, 1+rng.Intn(12), rng)
		if m.N() != base.N() || m.PrefixLen() != base.PrefixLen() {
			t.Fatalf("mutation changed shape: n=%d prefix=%d", m.N(), m.PrefixLen())
		}
		checkModel(t, m)
	}
	// The base run must be untouched by mutations.
	fresh := Figure1()
	for r := 1; r <= base.StabilizationRound(); r++ {
		if !base.Graph(r).Equal(fresh.Graph(r)) {
			t.Fatalf("Mutate modified the base run's round-%d graph", r)
		}
	}
}

func TestMutateZeroFlipsIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := Figure1()
	m := Mutate(base, 0, rng)
	for r := 1; r <= base.StabilizationRound(); r++ {
		if !base.Graph(r).Equal(m.Graph(r)) {
			t.Fatalf("0-flip mutation changed round %d", r)
		}
	}
}

func TestCloneGraphsIsDeep(t *testing.T) {
	base := Figure1()
	prefix, stable := base.CloneGraphs()
	if len(prefix) != base.PrefixLen() {
		t.Fatalf("cloned %d prefix graphs, want %d", len(prefix), base.PrefixLen())
	}
	stable.RemoveEdge(0, 0)
	if !base.Base().HasEdge(0, 0) {
		t.Fatal("editing the clone reached the original stable graph")
	}
	if base.PrefixLen() > 0 {
		prefix[0].RemoveEdge(0, 0)
		if !base.Graph(1).HasEdge(0, 0) {
			t.Fatal("editing the clone reached the original prefix graph")
		}
	}
}

func TestProjectOutReindexes(t *testing.T) {
	// 4-process static run with a distinctive edge pattern:
	// p1->p3, p3->p4, p4->p2 (0-based: 0->2, 2->3, 3->1).
	g := graph.NewFullDigraph(4)
	g.AddSelfLoops()
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	run := Static(g)

	// Removing p2 (index 1): survivors 0,2,3 reindex to 0,1,2 and the
	// surviving edges 0->2, 2->3 become 0->1, 1->2.
	p := run.ProjectOut(1)
	if p.N() != 3 {
		t.Fatalf("projected universe %d, want 3", p.N())
	}
	got := p.Base()
	want := graph.NewFullDigraph(3)
	want.AddSelfLoops()
	want.AddEdge(0, 1)
	want.AddEdge(1, 2)
	if !got.Equal(want) {
		t.Fatalf("projection got %v, want %v", got, want)
	}
	checkModel(t, p)

	// Projecting every process of random runs keeps the model invariants.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		r := RandomRun(5, rng.Intn(4), rng)
		for v := 0; v < 5; v++ {
			checkModel(t, r.ProjectOut(v))
		}
	}
}

func TestProjectOutPanicsOnLastProcess(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic projecting the last process out")
		}
	}()
	Isolation(1).ProjectOut(0)
}
