package adversary

import (
	"kset/internal/graph"
	"kset/internal/rounds"
)

// MaterializeRun snapshots an arbitrary adversary into an eventually-
// constant Run covering at least rounds 1..upTo. The distributed runtime
// needs this in two ways: a transport's Schedule policy queries the
// round graph once per link per round from n concurrent endpoints, so
// the schedule must be a pure read (generator adversaries like Churn
// rebuild an O(n²) graph on every Graph call and are not documented as
// concurrency-safe); and the differential harness must feed the
// simulator and the runtime the very same schedule, so a stateful
// generator must be consumed exactly once.
//
// If adv stabilizes by round upTo+1 (it is a *Run, or a
// rounds.Stabilizer with StabilizationRound <= upTo+1), the
// materialization is equivalent to adv in every round. Otherwise rounds
// beyond upTo repeat Graph(upTo+1), which may diverge from the original
// generator — callers bounding their run at upTo rounds never observe
// the difference.
func MaterializeRun(adv rounds.Adversary, upTo int) *Run {
	if run, ok := adv.(*Run); ok {
		return run
	}
	if upTo < 0 {
		upTo = 0
	}
	last := upTo + 1
	if s, ok := adv.(rounds.Stabilizer); ok {
		if sr := s.StabilizationRound(); sr <= last {
			last = sr
		}
	}
	prefix := make([]*graph.Digraph, 0, last-1)
	for r := 1; r < last; r++ {
		prefix = append(prefix, adv.Graph(r))
	}
	return NewRun(prefix, adv.Graph(last))
}
