package adversary

import (
	"testing"

	"kset/internal/graph"
	"kset/internal/predicate"
	"kset/internal/rounds"
	"kset/internal/skeleton"
)

var _ rounds.Adversary = (*Mobile)(nil)
var _ rounds.Adversary = (*SettledMobile)(nil)
var _ rounds.Stabilizer = (*SettledMobile)(nil)

func TestMobileSilencesExactlyF(t *testing.T) {
	m := NewMobile(6, 2, 0, 99)
	for r := 1; r <= 10; r++ {
		g := m.Graph(r)
		silent := 0
		for p := 0; p < 6; p++ {
			if g.OutNeighbors(p).Equal(graph.NodeSetOf(p)) {
				silent++
			}
		}
		if silent != 2 {
			t.Fatalf("round %d: %d silent, want 2", r, silent)
		}
		if !g.HasEdge(m.SilentAt(r).Min(), m.SilentAt(r).Min()) {
			t.Fatal("silent process lost its self-loop")
		}
	}
}

func TestMobileDeterministicPerRound(t *testing.T) {
	m := NewMobile(5, 1, 0, 7)
	for r := 1; r <= 6; r++ {
		if !m.Graph(r).Equal(m.Graph(r)) {
			t.Fatalf("round %d not deterministic", r)
		}
	}
}

func TestMobileSilenceMoves(t *testing.T) {
	m := NewMobile(8, 2, 0, 3)
	first := m.SilentAt(1)
	moved := false
	for r := 2; r <= 12; r++ {
		if !m.SilentAt(r).Equal(first) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("silent set never moved across 12 rounds")
	}
}

func TestMobileForeverCollapsesSkeleton(t *testing.T) {
	// "Time is not a healer": with moving silence, the skeleton
	// eventually loses every non-self edge (each process is silenced
	// infinitely often with probability 1; 60 rounds suffice for n=5
	// with this seed).
	m := NewMobile(5, 1, 0, 11)
	tr := skeleton.NewTracker(5, false)
	for r := 1; r <= 60; r++ {
		tr.Observe(r, m.Graph(r))
	}
	if got := tr.Skeleton().NumEdges(); got != 5 {
		t.Fatalf("skeleton has %d edges, want 5 self-loops only", got)
	}
	if k := predicate.MinK(tr.Skeleton()); k != 5 {
		t.Fatalf("MinK = %d, want n (no agreement below n possible)", k)
	}
}

func TestMobileSettledStabilizes(t *testing.T) {
	m := NewMobile(6, 2, 5, 13).Settled()
	if m.StabilizationRound() != 5 {
		t.Fatalf("StabilizationRound = %d", m.StabilizationRound())
	}
	for r := 5; r <= 12; r++ {
		if !m.Graph(r).Equal(m.Graph(5)) {
			t.Fatalf("graph changed after settling at round %d", r)
		}
	}
	// The tracker-computed skeleton equals the adversary's own.
	tr := skeleton.NewTracker(6, false)
	for r := 1; r <= 5; r++ {
		tr.Observe(r, m.Graph(r))
	}
	if !tr.Skeleton().Equal(m.StableSkeleton()) {
		t.Fatal("StableSkeleton mismatch")
	}
}

func TestMobileSettledNeverSilencedKernel(t *testing.T) {
	// Any process never silenced in rounds 1..settle is a universal
	// source of the stable skeleton (it reached everyone every round).
	m := NewMobile(7, 2, 4, 17).Settled()
	everSilent := graph.NewNodeSet(7)
	for r := 1; r <= 4; r++ {
		everSilent.UnionWith(m.SilentAt(r))
	}
	skel := m.StableSkeleton()
	kernel := predicate.SkeletonKernel(skel)
	for v := 0; v < 7; v++ {
		if !everSilent.Has(v) && !kernel.Has(v) {
			t.Fatalf("never-silent p%d missing from kernel %v", v+1, kernel)
		}
	}
}

func TestMobileValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMobile(4, -1, 0, 1) },
		func() { NewMobile(4, 5, 0, 1) },
		func() { NewMobile(4, 1, 0, 1).Settled() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMobileRoundRobinSweeps(t *testing.T) {
	n, f := 8, 2
	m := NewMobileRoundRobin(n, f, 0, 0)
	covered := graph.NewNodeSet(n)
	for r := 1; r <= (n+f-1)/f; r++ {
		s := m.SilentAt(r)
		if s.Len() != f {
			t.Fatalf("round %d silences %d, want %d", r, s.Len(), f)
		}
		covered.UnionWith(s)
	}
	if !covered.Equal(graph.FullNodeSet(n)) {
		t.Fatalf("round-robin did not sweep everyone: %v", covered)
	}
	// Deterministic: same round, same set.
	if !m.SilentAt(3).Equal(m.SilentAt(3)) {
		t.Fatal("round-robin not deterministic")
	}
}

func TestMobileRoundRobinSettles(t *testing.T) {
	m := NewMobileRoundRobin(6, 1, 4, 0).Settled()
	want := m.SilentAt(4)
	for r := 4; r <= 10; r++ {
		if !m.SilentAt(r).Equal(want) {
			t.Fatalf("silent set changed after settling (round %d)", r)
		}
	}
}
