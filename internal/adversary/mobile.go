package adversary

import (
	"fmt"
	"math/rand"

	"kset/internal/graph"
)

// Mobile is the Santoro-Widmayer mobile-omission adversary ("Time is not
// a healer", STACS 1989; Theor. Comput. Sci. 384, 2007 — the paper's
// references [15, 16]): in every round an otherwise complete graph loses
// the out-edges (except self-loops) of a freshly chosen set of f "silent"
// processes. No process is permanently faulty, yet if the silence moves
// forever, every process is eventually silenced and the stable skeleton
// collapses to self-loops: the regime in which even 1 mobile omission
// fault makes consensus impossible.
//
// With settleRound > 0 the silence stops moving: from that round on the
// same f processes are silenced forever, so the stable skeleton is the
// complete graph minus those out-edges and Algorithm 1 terminates (the
// skeleton's MinK bounds the decisions as usual). With settleRound == 0
// the adversary never stabilizes and deliberately does not implement
// rounds.Stabilizer.
//
// Graph(r) is deterministic in (seed, r).
type Mobile struct {
	n           int
	f           int
	seed        int64
	settleRound int
	roundRobin  bool
	settledSet  graph.NodeSet
}

// NewMobile returns a mobile-omission adversary on n processes with f
// randomly chosen silent processes per round. If settleRound > 0, the
// silent set freezes from that round on.
func NewMobile(n, f int, settleRound int, seed int64) *Mobile {
	if f < 0 || f > n {
		panic(fmt.Sprintf("adversary: mobile f=%d out of range [0,%d]", f, n))
	}
	m := &Mobile{n: n, f: f, seed: seed, settleRound: settleRound}
	if settleRound > 0 {
		m.settledSet = m.silentSet(settleRound)
	}
	return m
}

// NewMobileRoundRobin returns the classical deterministic mobile
// adversary: round r silences processes (f·(r-1)) mod n, ...,
// (f·(r-1)+f-1) mod n, sweeping the whole system every ⌈n/f⌉ rounds —
// the schedule behind the "time is not a healer" impossibility: every
// skeleton edge (u, v), u ≠ v, is dead by round ⌈n/f⌉.
func NewMobileRoundRobin(n, f int, settleRound int, seed int64) *Mobile {
	m := NewMobile(n, f, settleRound, seed)
	m.roundRobin = true
	if settleRound > 0 {
		m.settledSet = m.silentSet(settleRound)
	}
	return m
}

// N implements rounds.Adversary.
func (m *Mobile) N() int { return m.n }

// Graph implements rounds.Adversary.
func (m *Mobile) Graph(r int) *graph.Digraph {
	silent := m.silentSet(r)
	if m.settleRound > 0 && r >= m.settleRound {
		silent = m.settledSet
	}
	g := graph.CompleteDigraph(m.n)
	silent.ForEach(func(p int) {
		for v := 0; v < m.n; v++ {
			if v != p {
				g.RemoveEdge(p, v)
			}
		}
	})
	return g
}

// silentSet computes the set of processes silenced in round r: a
// round-robin window for the classical deterministic schedule, or a
// seeded random f-subset. (Stabilization is exposed separately, through
// the SettledMobile wrapper returned by Settled.)
func (m *Mobile) silentSet(r int) graph.NodeSet {
	set := graph.NewNodeSet(m.n)
	if m.roundRobin {
		for i := 0; i < m.f; i++ {
			set.Add((m.f*(r-1) + i) % m.n)
		}
		return set
	}
	rng := rand.New(rand.NewSource(m.seed + int64(r)*2654435761))
	for _, p := range rng.Perm(m.n)[:m.f] {
		set.Add(p)
	}
	return set
}

// Settles reports whether the silent set eventually freezes.
func (m *Mobile) Settles() bool { return m.settleRound > 0 }

// Settled returns the adversary wrapped with a rounds.Stabilizer
// implementation; it panics if the silence never settles.
func (m *Mobile) Settled() *SettledMobile {
	if !m.Settles() {
		panic("adversary: Settled on a non-settling mobile adversary")
	}
	return &SettledMobile{Mobile: m}
}

// SilentAt returns the silent set of round r (for tests and experiments).
func (m *Mobile) SilentAt(r int) graph.NodeSet {
	if m.settleRound > 0 && r >= m.settleRound {
		return m.settledSet.Clone()
	}
	return m.silentSet(r)
}

// SettledMobile is a settling mobile adversary with its stabilization
// round exposed.
type SettledMobile struct {
	*Mobile
}

// StabilizationRound implements rounds.Stabilizer.
func (s *SettledMobile) StabilizationRound() int { return s.settleRound }

// StableSkeleton returns G^∩∞ of the settled run: complete minus the
// out-edges of every process that was ever silent... intersected over all
// rounds, which for a moving prefix typically collapses most edges. It is
// computed by explicit intersection up to the settle round.
func (s *SettledMobile) StableSkeleton() *graph.Digraph {
	skel := s.Graph(s.settleRound).Clone()
	for r := 1; r < s.settleRound; r++ {
		skel.IntersectWith(s.Graph(r))
	}
	return skel
}
