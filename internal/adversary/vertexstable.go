package adversary

import (
	"fmt"
	"math/rand"

	"kset/internal/graph"
)

// VertexStableRoot is the weakest dynamic-network premise under which the
// paper's machinery still binds: a fixed root component — a clique of
// rootSize processes containing an apex with a perpetual edge to every
// process — while the entire periphery is rewired randomly every round,
// forever. The perpetual part alone already guarantees Psrcs(1) (the
// apex is a common 2-source of every pair, so MinK = 1 and Theorem 1
// bounds the decisions by a single value), yet no round's graph ever
// repeats: like Churn, the sequence never becomes constant, so
// VertexStableRoot deliberately does not implement rounds.Stabilizer and
// exercises Algorithm 1's "correct in all runs" claim plus the 12n
// fallback round bound of sim.Spec.MaxRounds. The transient periphery
// edges are exactly the stale-edge diet of the line-24 purge; experiment
// E15 measures how long they survive inside approximation graphs.
//
// Graph(r) is deterministic in (seed, r).
type VertexStableRoot struct {
	n        int
	rootSize int
	p        float64
	seed     int64
	base     *graph.Digraph
}

// NewVertexStableRoot returns a vertex-stable-root adversary on n
// processes: processes 0..rootSize-1 form the perpetual root clique, a
// seeded apex among them has a perpetual edge to every process, and each
// round every other ordered pair touching the periphery appears
// independently with probability p.
func NewVertexStableRoot(n, rootSize int, p float64, seed int64) *VertexStableRoot {
	if rootSize < 1 || rootSize > n {
		panic(fmt.Sprintf("adversary: VertexStableRoot rootSize=%d out of [1,%d]", rootSize, n))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("adversary: VertexStableRoot p=%v out of [0,1]", p))
	}
	base := graph.NewFullDigraph(n)
	base.AddSelfLoops()
	for u := 0; u < rootSize; u++ {
		for v := 0; v < rootSize; v++ {
			base.AddEdge(u, v)
		}
	}
	apex := rand.New(rand.NewSource(MixSeed(seed, 0))).Intn(rootSize)
	for v := 0; v < n; v++ {
		base.AddEdge(apex, v)
	}
	return &VertexStableRoot{n: n, rootSize: rootSize, p: p, seed: seed, base: base}
}

// N implements rounds.Adversary.
func (a *VertexStableRoot) N() int { return a.n }

// Graph implements rounds.Adversary: the perpetual base plus fresh
// random edges on every ordered pair that touches the periphery.
func (a *VertexStableRoot) Graph(r int) *graph.Digraph {
	if r < 1 {
		panic(fmt.Sprintf("adversary: round %d < 1", r))
	}
	rng := rand.New(rand.NewSource(MixSeed(a.seed, r)))
	g := a.base.Clone()
	for u := 0; u < a.n; u++ {
		for v := 0; v < a.n; v++ {
			if u == v || (u < a.rootSize && v < a.rootSize) || g.HasEdge(u, v) {
				continue
			}
			if rng.Float64() < a.p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Base returns a copy of the perpetual part of every round graph: the
// root clique, the apex's out-edges, and all self-loops. An edge of an
// approximation graph that is not in Base is stale in the sense of E15 —
// it was real in some recent round but is not part of the stable
// structure the purge (line 24) converges to.
func (a *VertexStableRoot) Base() *graph.Digraph { return a.base.Clone() }

// RootSize returns the number of processes in the fixed root clique.
func (a *VertexStableRoot) RootSize() int { return a.rootSize }
