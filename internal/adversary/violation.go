package adversary

import "kset/internal/graph"

// ConsensusViolation is a deterministic 4-process run satisfying Psrcs(1)
// on which the published Algorithm 1 (line 28 guard "r >= n") decides TWO
// distinct values — a counterexample to Lemma 15/Theorem 16 as stated.
//
// Construction:
//
//	stable skeleton: p4 is a universal 2-source (p4 -> everyone) that
//	hears only itself; p1, p2, p3 form a complete subgraph and all hear
//	p4. Then p4 ∈ PT(q) for every q, so every pair of processes shares
//	the source p4 and Psrcs(1) holds perpetually (MinK = 1): consensus
//	is required.
//
//	noise: one extra edge p1 -> p4 in round 1 only (r_ST = 2).
//
// Use it with the proposals ConsensusViolationProposals:
//
//	v = (5, 1, 2, 4)
//
// What happens under the published guard:
//
//   - p4 hears v1 = 5 in round 1, then only itself: its estimate freezes
//     at min(4, 5) = 4. From round 2 its approximation is the singleton
//     {p4}, strongly connected, so at round n = 4 it decides 4.
//
//   - The stale edge (p1 -1-> p4) recorded by p4 in round 1 is broadcast
//     to everyone in round 2 and then circulates in the complete subgraph
//     {p1, p2, p3}; the purge removes it only in round 5. At round 4 the
//     approximations of p1, p2, p3 therefore contain the fresh edges
//     p4 -> pi AND the stale edge p1 -> p4: strongly connected. All three
//     decide min(5, 1, 2, 4) = 1 in round 4.
//
//   - Result: decisions {1, 1, 1, 4} — two values under Psrcs(1).
//
// The flaw: Lemma 7 only places these round-4 graphs inside the ROUND-1
// components (which the noise round inflates), while Lemma 15's proof
// needs round-n components to apply Lemma 14. With the repaired guard
// r >= 2n-1 (core.Options.ConservativeDecide) the stale edge is long
// purged before anyone may decide: p1, p2, p3 never become strongly
// connected, p4 decides 4 at round 2n-1 = 7, and everyone adopts 4 via
// decide messages — consensus, as Theorem 16 intends.
func ConsensusViolation() *Run {
	stable := graph.NewFullDigraph(4)
	stable.AddSelfLoops()
	for v := 0; v < 4; v++ {
		stable.AddEdge(3, v) // p4 -> everyone
	}
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			stable.AddEdge(u, v) // complete among p1, p2, p3
		}
	}
	r1 := stable.Clone()
	r1.AddEdge(0, 3) // the single noise edge p1 -> p4, round 1 only
	return NewRun([]*graph.Digraph{r1}, stable)
}

// ConsensusViolationProposals returns the proposal vector (5, 1, 2, 4)
// used by the ConsensusViolation counterexample.
func ConsensusViolationProposals() []int64 { return []int64{5, 1, 2, 4} }
