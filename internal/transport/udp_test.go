package transport

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"kset/internal/adversary"
)

// udpTestOpts gives correctness tests a round deadline far beyond any
// plausible scheduler stall, so the deadline-closure path only fires
// when a test *wants* loss (via DropDatagram): on a quiet loopback with
// megabyte socket buffers, real loss in a short test is then
// effectively impossible, and delivery assertions can be exact.
func udpTestOpts() UDPOpts {
	return UDPOpts{RoundTimeout: 5 * time.Second, Grace: 10 * time.Millisecond}
}

func TestUDPPerfectDeliversEverything(t *testing.T) {
	for _, tc := range []struct{ n, nodes int }{{4, 4}, {5, 2}, {6, 3}} {
		t.Run(fmt.Sprintf("n%d-nodes%d", tc.n, tc.nodes), func(t *testing.T) {
			tr, err := NewUDPMeshLoopback(tc.n, tc.nodes, nil, udpTestOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			heard := driveRun(t, tr, 6)
			for r := range heard {
				for q := 0; q < tc.n; q++ {
					for p := 0; p < tc.n; p++ {
						if !heard[r][q][p] {
							t.Fatalf("round %d: p%d never heard p%d on a perfect transport", r+1, q+1, p+1)
						}
					}
				}
			}
		})
	}
}

// bigPayloadFor is a deterministic multi-fragment payload: large enough
// to span many datagrams, patterned so any misplaced fragment shows up
// as corruption.
func bigPayloadFor(p, r, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i*131 + p*31 + r*7)
	}
	return b
}

// TestUDPFragmentationRoundTrip forces every frame across many
// datagrams (tiny MaxDatagram, kilobyte payloads) and requires exact
// reassembly in every round — out-of-order and interleaved fragments
// from all peers included.
func TestUDPFragmentationRoundTrip(t *testing.T) {
	const n, rounds, size = 3, 6, 2000
	opts := udpTestOpts()
	opts.MaxDatagram = minUDPDatagram // chunk of 64 bytes -> ~32 fragments per frame
	tr, err := NewUDPMeshLoopback(n, n, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(self int) {
			defer wg.Done()
			ep, err := tr.Endpoint(self)
			if err != nil {
				errs[self] = err
				return
			}
			var buf [][]byte
			for r := 1; r <= rounds; r++ {
				if err := ep.Broadcast(r, bigPayloadFor(self, r, size+self*97)); err != nil {
					errs[self] = err
					return
				}
				recv, err := ep.Gather(r, buf)
				if err != nil {
					errs[self] = err
					return
				}
				buf = recv
				for p := 0; p < n; p++ {
					want := bigPayloadFor(p, r, size+p*97)
					if !bytes.Equal(recv[p], want) {
						errs[self] = fmt.Errorf("round %d: p%d reassembled %d bytes from p%d incorrectly",
							r, self+1, len(recv[p]), p+1)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process p%d: %v", i+1, err)
		}
	}
	// Every fragment was valid traffic: none may have been miscounted as
	// a bad datagram (reader loops are quiesced once Close returns).
	tr.Close()
	for _, nd := range tr.nodes {
		if nd.badDgrams != 0 {
			t.Fatalf("node %d rejected %d datagrams of well-formed fragmented traffic", nd.id, nd.badDgrams)
		}
	}
}

// driveLockstep drives all n endpoints from one goroutine in
// barrier-synchronized rounds: every process broadcasts round r before
// any process gathers it. Loss tests need this shape — in a
// barrier-free run one deadline stall delays that process's *next*
// broadcast past everyone else's deadline, cascading one injected loss
// into arbitrary extra absences. (The runtime's controller gives real
// runs the same lockstep property.) Returns heard[r-1][q][p] like
// driveRun.
func driveLockstep(t *testing.T, tr Transport, rounds int) [][][]bool {
	t.Helper()
	n := tr.N()
	eps := make([]Endpoint, n)
	for i := range eps {
		ep, err := tr.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	heard := make([][][]bool, rounds)
	bufs := make([][][]byte, n)
	for r := 1; r <= rounds; r++ {
		heard[r-1] = make([][]bool, n)
		for _, ep := range eps {
			if err := ep.Broadcast(r, payloadFor(ep.Self(), r)); err != nil {
				t.Fatalf("round %d broadcast p%d: %v", r, ep.Self()+1, err)
			}
		}
		for q, ep := range eps {
			recv, err := ep.Gather(r, bufs[q])
			if err != nil {
				t.Fatalf("round %d gather p%d: %v", r, q+1, err)
			}
			bufs[q] = recv
			heard[r-1][q] = make([]bool, n)
			for p := 0; p < n; p++ {
				if recv[p] == nil {
					continue
				}
				heard[r-1][q][p] = true
				if want := payloadFor(p, r); !bytes.Equal(recv[p], want) {
					t.Fatalf("round %d: p%d got %q from p%d, want %q", r, q+1, recv[p], p+1, want)
				}
			}
		}
	}
	return heard
}

// TestUDPRealLossIsAbsence kills specific datagrams on the wire (no
// tombstone, nothing for the receiver to parse) and requires the
// deadline+grace closure rule to convert exactly those absences into
// nil deliveries while every untouched link still delivers.
func TestUDPRealLossIsAbsence(t *testing.T) {
	const n, rounds = 3, 4
	lost := func(r, from, to int) bool {
		return (r == 2 && from == 2 && to == 0) || (r == 3 && from == 0 && to == 1)
	}
	opts := UDPOpts{
		RoundTimeout: 30 * time.Millisecond,
		Grace:        2 * time.Millisecond,
		DropDatagram: func(r, from, to, frag int) bool { return lost(r, from, to) },
	}
	tr, err := NewUDPMeshLoopback(n, n, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	heard := driveLockstep(t, tr, rounds)
	for r := 1; r <= rounds; r++ {
		for q := 0; q < n; q++ {
			for p := 0; p < n; p++ {
				want := !lost(r, p, q)
				if got := heard[r-1][q][p]; got != want {
					t.Fatalf("round %d: heard[p%d][p%d] = %v, want %v", r, q+1, p+1, got, want)
				}
			}
		}
	}
}

// TestUDPMeterRecordsRealizedHeardSets runs injected Policy drops and
// real wire loss together and requires the meter's per-round graphs to
// equal exactly what the processes actually received — the ground truth
// the loss-replay differential mode depends on.
func TestUDPMeterRecordsRealizedHeardSets(t *testing.T) {
	const n, seed = 4, 11
	rng := rand.New(rand.NewSource(seed))
	run := adversary.RandomRun(n, 4, rng)
	rounds := run.PrefixLen() + 2
	meter := NewHeardMeter(n)
	opts := udpTestOpts()
	opts.RoundTimeout = 50 * time.Millisecond
	opts.Grace = 2 * time.Millisecond
	opts.Meter = meter
	opts.DropDatagram = func(r, from, to, frag int) bool {
		return r == 1 && from == n-1 && to == 0
	}
	tr, err := NewUDPMeshLoopback(n, n, NewSchedule(run), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	heard := driveLockstep(t, tr, rounds)
	graphs := meter.Graphs()
	if len(graphs) != rounds {
		t.Fatalf("meter recorded %d rounds, want %d", len(graphs), rounds)
	}
	for r := 1; r <= rounds; r++ {
		g := graphs[r-1]
		for q := 0; q < n; q++ {
			for p := 0; p < n; p++ {
				if got, want := g.HasEdge(p, q), heard[r-1][q][p]; got != want {
					t.Fatalf("round %d: meter edge p%d->p%d = %v, heard = %v", r, p+1, q+1, got, want)
				}
			}
		}
	}
}

// TestUDPReasmHardening drives the fragment reassembler directly with
// hostile inputs: oversized fragment counts, inconsistent headers,
// duplicates, stale rounds, and wrong fragment sizes must all be
// rejected without completing a frame or growing state beyond the
// transport-derived bound.
func TestUDPReasmHardening(t *testing.T) {
	const chunk = 64
	ra := newUDPReasm(1, 2, 3, chunk)
	full := make([]byte, chunk)

	if _, ok := ra.place(udpHeader{from: 1, round: 1, fragIdx: 0, fragCount: ra.maxFrags + 1}, full); ok {
		t.Fatal("fragCount beyond the frame limit was accepted")
	}
	if _, ok := ra.place(udpHeader{from: 1, round: 1, fragIdx: 0, fragCount: 2}, full[:10]); ok {
		t.Fatal("short non-final fragment was accepted")
	}
	if _, ok := ra.place(udpHeader{from: 1, round: 1, fragIdx: 1, fragCount: 2}, nil); ok {
		t.Fatal("empty final fragment was accepted")
	}

	// Legitimate two-fragment frame, arriving out of order.
	if body, ok := ra.place(udpHeader{from: 1, round: 1, fragIdx: 1, fragCount: 2}, full[:10]); !ok || body != nil {
		t.Fatalf("first fragment: body %v ok %v, want nil true", body, ok)
	}
	// Mid-reassembly inconsistencies.
	if _, ok := ra.place(udpHeader{from: 1, round: 1, fragIdx: 0, fragCount: 3}, full); ok {
		t.Fatal("fragCount flip mid-round was accepted")
	}
	if _, ok := ra.place(udpHeader{from: 1, round: 1, fragIdx: 1, fragCount: 2}, full[:10]); ok {
		t.Fatal("duplicate fragment was accepted")
	}
	body, ok := ra.place(udpHeader{from: 1, round: 1, fragIdx: 0, fragCount: 2}, full)
	if !ok || len(body) != chunk+10 {
		t.Fatalf("completed frame: %d bytes ok %v, want %d true", len(body), ok, chunk+10)
	}
	// The completed round rejects replays; older rounds are stale once
	// the ring has moved on.
	if _, ok := ra.place(udpHeader{from: 1, round: 1, fragIdx: 0, fragCount: 2}, full); ok {
		t.Fatal("replayed fragment of a completed round was accepted")
	}
	if _, ok := ra.place(udpHeader{from: 1, round: 1 + window, fragIdx: 0, fragCount: 1}, full[:5]); !ok {
		t.Fatal("new round reusing the ring slot was rejected")
	}
	if _, ok := ra.place(udpHeader{from: 1, round: 1, fragIdx: 0, fragCount: 2}, full); ok {
		t.Fatal("stale round was accepted after the slot moved on")
	}
}
