package transport

import (
	"time"

	"kset/internal/rounds"
)

// Policy is the per-link fault injector of a transport: it decides, per
// round and directed link, whether the payload is delivered and how much
// receive latency the link adds. Implementations must be safe for
// concurrent use (every endpoint consults the policy) and deterministic
// in (r, from, to) — determinism is what makes runs replayable.
//
// The self link (from == to) is never submitted to a Policy: the round
// model requires every process to hear itself.
type Policy interface {
	// Deliver reports whether the round-r message on the link
	// from -> to is delivered. Consulted at the sending endpoint: a
	// dropped payload never crosses the wire.
	Deliver(r, from, to int) bool
	// Delay returns the receive latency of the round-r message on the
	// link from -> to. Consulted at the receiving endpoint; it must not
	// be negative. Delays never change decisions (rounds are
	// communication-closed), only real-time phase.
	Delay(r, from, to int) time.Duration
}

// Perfect is the lossless, zero-latency policy.
type Perfect struct{}

// Deliver implements Policy.
func (Perfect) Deliver(r, from, to int) bool { return true }

// Delay implements Policy.
func (Perfect) Delay(r, from, to int) time.Duration { return 0 }

// Schedule replays an adversary's run over a real transport: the round-r
// message on from -> to is delivered iff the edge is in the adversary's
// round-r communication graph. This is how every schedule in
// internal/adversary — and every counterexample runfile — becomes a
// transport fault schedule.
//
// The adversary's Graph method is called concurrently from every
// endpoint; wrap stateful generators with adversary.MaterializeRun
// first (adversary.Run itself is safe: its Graph is a pure read).
type Schedule struct {
	adv rounds.Adversary
}

// NewSchedule returns the drop policy replaying adv.
func NewSchedule(adv rounds.Adversary) Schedule { return Schedule{adv: adv} }

// Deliver implements Policy.
func (s Schedule) Deliver(r, from, to int) bool {
	return s.adv.Graph(r).HasEdge(from, to)
}

// Delay implements Policy.
func (s Schedule) Delay(r, from, to int) time.Duration { return 0 }

// Jitter layers deterministic pseudo-random receive latency in [0, Max)
// on top of an inner policy's drops. The latency is a pure hash of
// (Seed, r, from, to), so a replay with the same seed reproduces the
// same timing skew.
type Jitter struct {
	// Inner supplies the drop decisions (and a base delay, which the
	// jitter adds to). Nil means Perfect.
	Inner Policy
	// Seed selects the jitter stream.
	Seed int64
	// Max bounds the added latency (exclusive); 0 disables jitter.
	Max time.Duration
}

// Deliver implements Policy.
func (j Jitter) Deliver(r, from, to int) bool {
	if j.Inner == nil {
		return true
	}
	return j.Inner.Deliver(r, from, to)
}

// Delay implements Policy.
func (j Jitter) Delay(r, from, to int) time.Duration {
	var base time.Duration
	if j.Inner != nil {
		base = j.Inner.Delay(r, from, to)
	}
	if j.Max <= 0 {
		return base
	}
	h := mix64(uint64(j.Seed) ^ uint64(r)*0x9e3779b97f4a7c15 ^ uint64(from)<<32 ^ uint64(to))
	return base + time.Duration(h%uint64(j.Max))
}

// FrameLoss returns a DropDatagram hook (see UDPOpts) that loses each
// round frame i.i.d. with probability p, deterministically from seed.
// All fragments of a frame share the verdict: a partially-arrived frame
// never completes reassembly anyway, so frame-level loss is what a
// receiver observes either way, and keeping the decision per-frame makes
// the realized heard-sets a pure function of (seed, round, link).
// Returns nil (no injected loss) when p <= 0.
func FrameLoss(p float64, seed int64) func(r, from, to, frag int) bool {
	if p <= 0 {
		return nil
	}
	return func(r, from, to, frag int) bool {
		h := mix64(uint64(seed) ^ uint64(r)*0x9e3779b97f4a7c15 ^ uint64(from)<<32 ^ uint64(to)<<16 ^ 0xd1b54a32d192ed03)
		return float64(h>>11)/(1<<53) < p
	}
}

// mix64 is the splitmix64 finalizer — the same mixer sim.CellSeed uses
// for per-cell determinism, here giving per-(round, link) determinism.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
