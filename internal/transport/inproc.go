package transport

import (
	"fmt"
	"sync"
)

// InProc is the in-process transport: every directed link is a buffered
// Go channel. It is the transport of choice for the agreement service's
// sessions (no OS resources, nanosecond latency) and the reference
// implementation of the transport contract.
type InProc struct {
	n   int
	pol Policy
	// links[from][to] carries from's frames addressed to to.
	links [][]chan frame

	mu      sync.Mutex
	claimed []bool
	done    chan struct{}
	closed  bool
}

// NewInProc returns an in-process transport for n processes under the
// given policy (nil means Perfect).
func NewInProc(n int, pol Policy) *InProc {
	if n < 1 {
		panic(fmt.Sprintf("transport: n = %d, need >= 1", n))
	}
	if pol == nil {
		pol = Perfect{}
	}
	links := make([][]chan frame, n)
	for from := range links {
		links[from] = make([]chan frame, n)
		for to := range links[from] {
			links[from][to] = make(chan frame, linkBuffer)
		}
	}
	return &InProc{
		n:       n,
		pol:     pol,
		links:   links,
		claimed: make([]bool, n),
		done:    make(chan struct{}),
	}
}

// N implements Transport.
func (t *InProc) N() int { return t.n }

// Endpoint implements Transport.
func (t *InProc) Endpoint(self int) (Endpoint, error) {
	if self < 0 || self >= t.n {
		return nil, fmt.Errorf("transport: endpoint id %d out of range [0,%d)", self, t.n)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if t.claimed[self] {
		return nil, fmt.Errorf("transport: endpoint %d already claimed", self)
	}
	t.claimed[self] = true
	ep := &inprocEndpoint{t: t, self: self}
	for q := 0; q < t.n; q++ {
		ep.queues = append(ep.queues, t.links[q][self])
	}
	return ep, nil
}

// Close implements Transport.
func (t *InProc) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.closed = true
		close(t.done)
	}
	return nil
}

// inprocEndpoint is process self's port onto an InProc transport.
type inprocEndpoint struct {
	t      *InProc
	self   int
	queues []chan frame // queues[q] = link q -> self
	errc   chan error   // never written for in-proc; keeps gatherFrames shared
}

// Self implements Endpoint.
func (ep *inprocEndpoint) Self() int { return ep.self }

// N implements Endpoint.
func (ep *inprocEndpoint) N() int { return ep.t.n }

// Broadcast implements Endpoint. The payload is copied once and the copy
// shared (read-only) by all n receivers; dropped links get a tombstone
// frame so the receivers' rounds still close.
func (ep *inprocEndpoint) Broadcast(r int, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("transport: payload %d bytes exceeds MaxPayload %d", len(payload), MaxPayload)
	}
	shared := append([]byte(nil), payload...)
	t := ep.t
	for to := 0; to < t.n; to++ {
		f := frame{from: ep.self, round: r, payload: shared}
		if to != ep.self && !t.pol.Deliver(r, ep.self, to) {
			f = frame{from: ep.self, round: r, dropped: true}
		}
		select {
		case t.links[ep.self][to] <- f:
		case <-t.done:
			return ErrClosed
		}
	}
	return nil
}

// Gather implements Endpoint.
func (ep *inprocEndpoint) Gather(r int, into [][]byte) ([][]byte, error) {
	return gatherFrames(ep.self, r, ep.t.n, ep.queues, ep.t.pol, ep.t.done, ep.errc, into)
}

// Close implements Endpoint. In-process endpoints share the transport's
// lifetime; closing one tears down the whole transport (there is no
// meaningful per-endpoint teardown for channel links).
func (ep *inprocEndpoint) Close() error { return ep.t.Close() }
