package transport

import (
	"fmt"
	"sync"
)

// InProc is the in-process transport: every receiver owns a roundBuffer
// mailbox and Broadcast deposits straight into all n of them — no
// goroutines, no channels, no OS involvement. One pooled copy of the
// payload is shared read-only by every receiver (tracked by a reference
// count), so the steady-state round is allocation-free. It is the
// transport of choice for the agreement service's sessions and the
// reference implementation of the transport contract.
type InProc struct {
	n     int
	pol   Policy
	boxes []*roundBuffer
	done  chan struct{}

	mu      sync.Mutex
	claimed []bool
	closed  bool
}

// NewInProc returns an in-process transport for n processes under the
// given policy (nil means Perfect).
func NewInProc(n int, pol Policy) *InProc {
	if n < 1 {
		panic(fmt.Sprintf("transport: n = %d, need >= 1", n))
	}
	if pol == nil {
		pol = Perfect{}
	}
	t := &InProc{
		n:       n,
		pol:     pol,
		boxes:   make([]*roundBuffer, n),
		done:    make(chan struct{}),
		claimed: make([]bool, n),
	}
	for i := range t.boxes {
		t.boxes[i] = newRoundBuffer(n)
	}
	return t
}

// N implements Transport.
func (t *InProc) N() int { return t.n }

// Endpoint implements Transport.
func (t *InProc) Endpoint(self int) (Endpoint, error) {
	if self < 0 || self >= t.n {
		return nil, fmt.Errorf("transport: endpoint id %d out of range [0,%d)", self, t.n)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if t.claimed[self] {
		return nil, fmt.Errorf("transport: endpoint %d already claimed", self)
	}
	t.claimed[self] = true
	return &inprocEndpoint{t: t, self: self, drops: make([]bool, t.n)}, nil
}

// MarkDead implements DeadMarker: process p's missing deliveries from
// round fromRound onward become permanent nil tombstones at every
// receiver, so their rounds close by count without p. With no deadline
// machinery anywhere in this transport, an announced death verdict is
// the only way an in-proc run survives a crashed process — which is
// also the only way an in-proc process can die, since there is no OS
// boundary for an unannounced crash to hide behind.
func (t *InProc) MarkDead(p, fromRound int) {
	for _, b := range t.boxes {
		b.markDead(p, fromRound)
	}
}

// Close implements Transport: it wakes every parked Gather with
// ErrClosed. Idempotent.
func (t *InProc) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.done)
	for _, b := range t.boxes {
		b.close()
	}
	return nil
}

// inprocEndpoint is process self's port onto an InProc transport.
type inprocEndpoint struct {
	t     *InProc
	self  int
	drops []bool // per-broadcast drop decisions, reused across rounds
}

// Self implements Endpoint.
func (ep *inprocEndpoint) Self() int { return ep.self }

// N implements Endpoint.
func (ep *inprocEndpoint) N() int { return ep.t.n }

// Broadcast implements Endpoint. The payload is copied once into a
// pooled buffer shared (read-only) by all delivered receivers; dropped
// links get a tombstone deposit so the receivers' rounds still close.
func (ep *inprocEndpoint) Broadcast(r int, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("transport: payload %d bytes exceeds MaxPayload %d", len(payload), MaxPayload)
	}
	t := ep.t
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	delivered := int32(0)
	for to := 0; to < t.n; to++ {
		drop := to != ep.self && !t.pol.Deliver(r, ep.self, to)
		ep.drops[to] = drop
		if !drop {
			delivered++
		}
	}
	rb := newRefBuf(payload, delivered) // >= 1: self-delivery is unconditional
	for to := 0; to < t.n; to++ {
		if ep.drops[to] {
			t.boxes[to].deposit(ep.self, r, nil, nil)
		} else {
			t.boxes[to].deposit(ep.self, r, rb.b, rb)
		}
	}
	return nil
}

// Gather implements Endpoint.
func (ep *inprocEndpoint) Gather(r int, into [][]byte) ([][]byte, error) {
	recv, _, err := ep.t.boxes[ep.self].await(r, into, 0, 0)
	if err != nil {
		return nil, err
	}
	if err := applyDelays(ep.t.pol, r, ep.self, recv, ep.t.done); err != nil {
		return nil, err
	}
	return recv, nil
}

// Close implements Endpoint. In-process endpoints share the transport's
// lifetime; closing one tears down the whole transport (there is no
// meaningful per-endpoint teardown for an in-memory mesh).
func (ep *inprocEndpoint) Close() error { return ep.t.Close() }
