package transport

// The batch send path stages a whole round's datagrams — every fragment
// of every peer's frame — in one flat buffer, then ships them in as few
// syscalls as the platform allows: sendmmsg/recvmmsg on Linux
// (udp_batch_linux.go), plain per-datagram reads and writes elsewhere
// (udp_batch_fallback.go). The staging queue is shared; only the flush
// and receive mechanics are platform code. Both buffers reach a steady
// capacity after the first rounds, so the batch layer does not allocate
// in steady state.

// pktRef locates one staged datagram: flat[start:end], destined for
// peer node dst.
type pktRef struct {
	start, end, dst int
}

// udpSendQueue stages datagrams between queue and flush.
type udpSendQueue struct {
	flat []byte
	pkts []pktRef
}

// queue appends one datagram (header + fragment) to the batch.
func (q *udpSendQueue) queue(dst int, hdr udpHeader, frag []byte) {
	start := len(q.flat)
	q.flat = appendUDPHeader(q.flat, hdr)
	q.flat = append(q.flat, frag...)
	q.pkts = append(q.pkts, pktRef{start: start, end: len(q.flat), dst: dst})
}

// reset empties the batch, keeping capacity.
func (q *udpSendQueue) reset() {
	q.flat = q.flat[:0]
	q.pkts = q.pkts[:0]
}
