package transport

import (
	"encoding/binary"
	"fmt"
)

// This file is the pure codec of the UDP transport's datagram layer:
// header encode/parse and the reassembled-frame walk. Everything here is
// a function of its byte inputs — no sockets, no state — which is what
// makes FuzzDecodeUDPFrame (udp_fuzz_test.go) a faithful model of the
// reader goroutine's parse path.
//
// Datagram layout (one UDP packet):
//
//	uvarint fromNode   sending node id
//	uvarint round      round the frame belongs to (>= 1)
//	uvarint fragIndex  0-based fragment number
//	uvarint fragCount  total fragments of this round frame (>= 1)
//	fragment bytes     body[fragIndex*chunk : ...] of the frame body
//
// The frame body is the v2 coalesced round frame of the TCP mesh, minus
// the round (it lives in every datagram header) and the length prefix
// (datagrams are self-delimiting):
//
//	bitmap  ceil(S*R/8) bytes; bit si*R+qi (LSB first) = the sender
//	        node's si-th process reaches the peer's qi-th process
//	        (0 = an injected-drop tombstone)
//	then, for each sender si with at least one bit set:
//	        uvarint payload length, payload bytes
//
// Fragmentation is deterministic: both sides derive the same chunk size
// from the transport's MaxDatagram, every fragment except the last
// carries exactly chunk bytes, and fragment i covers body bytes
// [i*chunk, min((i+1)*chunk, len)). A receiver therefore places
// fragments by index alone, in any arrival order, and validates the
// sizes instead of trusting them.

// udpHeaderMax bounds the encoded datagram header: four uvarints, each
// at most 5 bytes for the int32-bounded values the header carries.
const udpHeaderMax = 4 * 5

// udpHeader is a parsed datagram header.
type udpHeader struct {
	from      int // sending node id
	round     int
	fragIdx   int
	fragCount int
}

// appendUDPHeader encodes hdr onto dst.
func appendUDPHeader(dst []byte, hdr udpHeader) []byte {
	dst = binary.AppendUvarint(dst, uint64(hdr.from))
	dst = binary.AppendUvarint(dst, uint64(hdr.round))
	dst = binary.AppendUvarint(dst, uint64(hdr.fragIdx))
	dst = binary.AppendUvarint(dst, uint64(hdr.fragCount))
	return dst
}

// parseUDPDatagram splits a received packet into its header and fragment
// bytes. Every field is bounds-checked against the protocol's hard
// limits before anything is believed: values are capped below 1<<31 so
// later int arithmetic cannot overflow, and structural inconsistencies
// (fragIdx >= fragCount, round 0) are rejected here rather than at the
// reassembler.
func parseUDPDatagram(pkt []byte) (udpHeader, []byte, error) {
	var hdr udpHeader
	rest := pkt
	read := func(name string) (int, error) {
		v, k := binary.Uvarint(rest)
		if k <= 0 {
			return 0, fmt.Errorf("transport: udp datagram: bad %s varint", name)
		}
		if v >= 1<<31 {
			return 0, fmt.Errorf("transport: udp datagram: %s %d out of range", name, v)
		}
		rest = rest[k:]
		return int(v), nil
	}
	var err error
	if hdr.from, err = read("node"); err != nil {
		return hdr, nil, err
	}
	if hdr.round, err = read("round"); err != nil {
		return hdr, nil, err
	}
	if hdr.round < 1 {
		return hdr, nil, fmt.Errorf("transport: udp datagram: round 0")
	}
	if hdr.fragIdx, err = read("fragIndex"); err != nil {
		return hdr, nil, err
	}
	if hdr.fragCount, err = read("fragCount"); err != nil {
		return hdr, nil, err
	}
	if hdr.fragCount < 1 {
		return hdr, nil, fmt.Errorf("transport: udp datagram: fragCount 0")
	}
	if hdr.fragIdx >= hdr.fragCount {
		return hdr, nil, fmt.Errorf("transport: udp datagram: fragment %d of %d", hdr.fragIdx, hdr.fragCount)
	}
	return hdr, rest, nil
}

// udpFrameLimit bounds a reassembled frame body for an snd-sender,
// rcv-receiver node link — the same ceiling the TCP mesh enforces per
// stream frame. Reassembly buffers are sized from this transport-derived
// bound, never from header fields alone.
func udpFrameLimit(snd, rcv int) int {
	return (snd*rcv+7)/8 + snd*(binary.MaxVarintLen64+MaxPayload)
}

// decodeUDPFrame validates and walks a reassembled frame body for an
// snd-sender, rcv-receiver node link. deliver is called exactly once per
// sender index si in [0, snd): payload is the sender's round payload (a
// view into body, valid only during the call) and delivered the number
// of set bits in its bitmap row — payload is nil iff delivered == 0 (an
// all-links tombstone). bitmap is the frame's full drop bitmap; bit
// si*rcv+qi (LSB first) reports delivery to local receiver qi.
//
// Allocation hardening mirrors the other decoders in the repo: every
// length is validated against the remaining input before it is used, so
// no input can make the walk read past the body or a caller allocate
// more than the bytes actually received.
func decodeUDPFrame(body []byte, snd, rcv int, deliver func(si, delivered int, payload []byte, bitmap []byte)) error {
	if snd < 1 || rcv < 1 {
		return fmt.Errorf("transport: udp frame for %dx%d link", snd, rcv)
	}
	bitmapLen := (snd*rcv + 7) / 8
	if len(body) < bitmapLen {
		return fmt.Errorf("transport: udp frame: truncated bitmap")
	}
	bitmap := body[:bitmapLen]
	rest := body[bitmapLen:]
	for si := 0; si < snd; si++ {
		delivered := 0
		for qi := 0; qi < rcv; qi++ {
			bit := si*rcv + qi
			if bitmap[bit>>3]&(1<<(bit&7)) != 0 {
				delivered++
			}
		}
		if delivered == 0 {
			deliver(si, 0, nil, bitmap)
			continue
		}
		plen, k := binary.Uvarint(rest)
		if k <= 0 || plen > MaxPayload || uint64(len(rest)-k) < plen {
			return fmt.Errorf("transport: udp frame: bad payload length for sender %d", si)
		}
		deliver(si, delivered, rest[k:k+int(plen)], bitmap)
		rest = rest[k+int(plen):]
	}
	if len(rest) != 0 {
		return fmt.Errorf("transport: udp frame: %d trailing bytes", len(rest))
	}
	return nil
}
