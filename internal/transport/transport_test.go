package transport

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"kset/internal/adversary"
)

// payloadFor is the test payload of process p in round r: enough bytes
// to detect cross-link corruption or round misalignment.
func payloadFor(p, r int) []byte {
	return []byte(fmt.Sprintf("p%d/r%d", p, r))
}

// driveRun runs n goroutines (one per endpoint) for the given number of
// rounds with no control barrier — the rawest legal use of the transport
// contract — and returns heard[r-1][q][p] = true iff q received p's
// round-r payload. Payload integrity is verified inline.
func driveRun(t *testing.T, tr Transport, rounds int) [][][]bool {
	t.Helper()
	n := tr.N()
	heard := make([][][]bool, rounds)
	for r := range heard {
		heard[r] = make([][]bool, n)
		for q := range heard[r] {
			heard[r][q] = make([]bool, n)
		}
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(self int) {
			defer wg.Done()
			ep, err := tr.Endpoint(self)
			if err != nil {
				errs[self] = err
				return
			}
			var buf [][]byte
			for r := 1; r <= rounds; r++ {
				if err := ep.Broadcast(r, payloadFor(self, r)); err != nil {
					errs[self] = fmt.Errorf("round %d broadcast: %w", r, err)
					return
				}
				recv, err := ep.Gather(r, buf)
				if err != nil {
					errs[self] = fmt.Errorf("round %d gather: %w", r, err)
					return
				}
				buf = recv
				for p := 0; p < n; p++ {
					if recv[p] == nil {
						continue
					}
					heard[r-1][self][p] = true
					if want := payloadFor(p, r); !bytes.Equal(recv[p], want) {
						errs[self] = fmt.Errorf("round %d: p%d got %q from p%d, want %q",
							r, self+1, recv[p], p+1, want)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process p%d: %v", i+1, err)
		}
	}
	return heard
}

func TestInProcPerfectDeliversEverything(t *testing.T) {
	n, rounds := 5, 8
	tr := NewInProc(n, nil)
	defer tr.Close()
	heard := driveRun(t, tr, rounds)
	for r := range heard {
		for q := 0; q < n; q++ {
			for p := 0; p < n; p++ {
				if !heard[r][q][p] {
					t.Fatalf("round %d: p%d never heard p%d on a perfect transport", r+1, q+1, p+1)
				}
			}
		}
	}
}

func TestTCPPerfectDeliversEverything(t *testing.T) {
	n, rounds := 4, 6
	tr, err := NewTCPLoopback(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	heard := driveRun(t, tr, rounds)
	for r := range heard {
		for q := 0; q < n; q++ {
			for p := 0; p < n; p++ {
				if !heard[r][q][p] {
					t.Fatalf("round %d: p%d never heard p%d on a perfect transport", r+1, q+1, p+1)
				}
			}
		}
	}
}

// TestScheduleDropsMatchHeardSets is the loss/delay-injection property
// test: running a transport under a Schedule policy (with jittered
// receive delays layered on top) must yield, in every round, exactly the
// heard-sets the adversary's round graphs prescribe — no lost payloads
// beyond the schedule, no leaks through dropped links, and delays that
// skew timing but never membership.
//
// On the reliable transports (in-proc, TCP) the assertion is strict
// equality, and must stay strict so the lossy relaxation below can
// never mask a regression there. On the best-effort UDP mesh the
// network may legitimately lose datagrams, so equality splits into the
// two directions that remain guaranteed:
//
//   - no leaks: realized heard-sets ⊆ scheduled edge sets (plus
//     unconditional self-delivery) — loss can only shrink a round;
//   - the Policy-guaranteed floor: deliveries that never cross the
//     socket (self, and scheduled links between co-located processes)
//     are reliable even on UDP, so they must always be heard.
func TestScheduleDropsMatchHeardSets(t *testing.T) {
	kinds := []struct {
		name  string
		nodes func(n int) int // mesh nodes (0 = n, fully distributed)
		lossy bool
		make  func(n int, pol Policy) (Transport, error)
	}{
		{name: "inproc", make: func(n int, pol Policy) (Transport, error) { return NewInProc(n, pol), nil }},
		{name: "tcp", make: func(n int, pol Policy) (Transport, error) { return NewTCPLoopback(n, pol) }},
		// Grouped meshes exercise the coalesced frame path: multiple
		// senders per v2 frame, drop bitmaps folding tombstones, local
		// and remote receivers of the same broadcast.
		{name: "tcp-nodes2", nodes: func(n int) int { return min(2, n) },
			make: func(n int, pol Policy) (Transport, error) { return NewTCPMeshLoopback(n, min(2, n), pol) }},
		{name: "tcp-nodes3", nodes: func(n int) int { return min(3, n) },
			make: func(n int, pol Policy) (Transport, error) { return NewTCPMeshLoopback(n, min(3, n), pol) }},
		{name: "udp", lossy: true,
			make: func(n int, pol Policy) (Transport, error) { return NewUDPMeshLoopback(n, n, pol, udpTestOpts()) }},
		{name: "udp-nodes2", nodes: func(n int) int { return min(2, n) }, lossy: true,
			make: func(n int, pol Policy) (Transport, error) {
				return NewUDPMeshLoopback(n, min(2, n), pol, udpTestOpts())
			}},
	}
	for _, kind := range kinds {
		t.Run(kind.name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				rng := rand.New(rand.NewSource(seed))
				n := 2 + rng.Intn(5)
				run := adversary.RandomRun(n, 3+rng.Intn(4), rng)
				rounds := run.PrefixLen() + 3
				pol := Jitter{Inner: NewSchedule(run), Seed: seed, Max: 300 * time.Microsecond}
				tr, err := kind.make(n, pol)
				if err != nil {
					t.Fatal(err)
				}
				heard := driveRun(t, tr, rounds)
				tr.Close()
				m := n
				if kind.nodes != nil {
					m = kind.nodes(n)
				}
				// node(p) inverts the meshes' contiguous balanced
				// partition nodeLo(i) = i*n/m.
				node := func(p int) int { return ((p+1)*m - 1) / n }
				sameNode := func(p, q int) bool { return node(p) == node(q) }
				for r := 1; r <= rounds; r++ {
					g := run.Graph(r)
					for q := 0; q < n; q++ {
						for p := 0; p < n; p++ {
							sched := g.HasEdge(p, q) || p == q
							got := heard[r-1][q][p]
							if got && !sched {
								t.Fatalf("seed %d n %d round %d: p%d heard p%d through a dropped link",
									seed, n, r, q+1, p+1)
							}
							guaranteed := sched && (!kind.lossy || p == q || sameNode(p, q))
							if guaranteed && !got {
								t.Fatalf("seed %d n %d round %d: heard[p%d][p%d] = false, but delivery is guaranteed",
									seed, n, r, q+1, p+1)
							}
							if !kind.lossy && got != sched {
								t.Fatalf("seed %d n %d round %d: heard[p%d][p%d] = %v, schedule says %v",
									seed, n, r, q+1, p+1, got, sched)
							}
						}
					}
				}
			}
		})
	}
}

func TestJitterIsDeterministic(t *testing.T) {
	j := Jitter{Seed: 42, Max: time.Millisecond}
	for r := 1; r <= 5; r++ {
		for from := 0; from < 3; from++ {
			for to := 0; to < 3; to++ {
				d1, d2 := j.Delay(r, from, to), j.Delay(r, from, to)
				if d1 != d2 {
					t.Fatalf("jitter not deterministic at (%d,%d,%d): %v vs %v", r, from, to, d1, d2)
				}
				if d1 < 0 || d1 >= time.Millisecond {
					t.Fatalf("jitter out of range at (%d,%d,%d): %v", r, from, to, d1)
				}
			}
		}
	}
	if (Jitter{Seed: 43, Max: time.Millisecond}).Delay(3, 1, 2) == j.Delay(3, 1, 2) &&
		(Jitter{Seed: 43, Max: time.Millisecond}).Delay(4, 2, 0) == j.Delay(4, 2, 0) {
		t.Fatal("different seeds produced identical delay streams")
	}
}

func TestEndpointDoubleClaim(t *testing.T) {
	tr := NewInProc(2, nil)
	defer tr.Close()
	if _, err := tr.Endpoint(0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Endpoint(0); err == nil {
		t.Fatal("claiming endpoint 0 twice succeeded")
	}
	if _, err := tr.Endpoint(5); err == nil {
		t.Fatal("claiming out-of-range endpoint succeeded")
	}
}

func TestCloseUnblocksGather(t *testing.T) {
	for _, kind := range []string{"inproc", "tcp", "udp"} {
		t.Run(kind, func(t *testing.T) {
			var tr Transport
			var err error
			switch kind {
			case "inproc":
				tr = NewInProc(2, nil)
			case "tcp":
				tr, err = NewTCPLoopback(2, nil)
				if err != nil {
					t.Fatal(err)
				}
			case "udp":
				// An hour-long deadline: only Close may end the round.
				tr, err = NewUDPMeshLoopback(2, 2, nil, UDPOpts{RoundTimeout: time.Hour, Grace: time.Hour})
				if err != nil {
					t.Fatal(err)
				}
			}
			ep, err := tr.Endpoint(0)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := ep.Gather(1, nil) // blocks: nobody broadcasts
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			tr.Close()
			select {
			case err := <-done:
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("Gather after close returned %v, want ErrClosed", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Gather still blocked after transport close")
			}
		})
	}
}

func TestBroadcastRejectsOversizedPayload(t *testing.T) {
	tr := NewInProc(1, nil)
	defer tr.Close()
	ep, err := tr.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Broadcast(1, make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized broadcast succeeded")
	}
}
