//go:build !race

package transport

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count tests skip under it: sync.Pool intentionally drops
// puts/gets at random when the race detector is on, so pooled paths
// show nondeterministic alloc counts that are not regressions.
const raceEnabled = false
