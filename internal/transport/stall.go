package transport

import (
	"sync/atomic"
	"time"
)

// StallCounters aggregates the chaos layer's transport-health events
// across a transport's lifetime (and, in the agreement service, across
// all sessions sharing one counter set — they back the
// ksetd_peer_stalls_total / ksetd_retries_total metrics).
type StallCounters struct {
	// Stalls counts (round, sender) pairs a deadline closure gave up on:
	// one increment per sender per round a receiver closed without that
	// sender's frame.
	Stalls atomic.Int64
	// Retries counts stream reconnect attempts (TCP mesh only).
	Retries atomic.Int64
	// Dead counts terminal death verdicts (processes declared dead by a
	// stall detector or a reconnect budget running out).
	Dead atomic.Int64
}

// StallOpts tunes a transport's stall detection and recovery — the
// machinery that turns an unannounced peer death into a bounded number
// of wasted deadlines instead of a wedged run. The zero value disables
// everything (reliable lockstep behavior).
type StallOpts struct {
	// RoundTimeout, when positive on the TCP mesh, switches its receive
	// path to deadline closure: a Gather waits at most RoundTimeout (plus
	// Grace extensions while frames are still trickling in) before
	// recording missing senders as losses, exactly the UDP mesh's rule.
	// The UDP mesh has its own RoundTimeout in UDPOpts; this field is
	// ignored there.
	RoundTimeout time.Duration
	// Grace extends a timed-out round while progress continues; 0 means
	// RoundTimeout / 8 (min 100µs) when RoundTimeout is set.
	Grace time.Duration

	// DeadAfter is the stall detector's verdict threshold: a sender
	// missing from this many consecutive deadline-closed rounds at one
	// receiver is declared dead (its whole node, on a grouped mesh — an
	// OS process dying takes all its co-located round participants with
	// it). 0 disables the detector: silence costs a deadline every round
	// but is never terminal.
	DeadAfter int

	// MaxReconnect bounds redials of a broken TCP stream (dialer side).
	// While the budget lasts the peer's frames are treated as loss; when
	// it runs out the peer node gets a terminal death verdict. 0 means a
	// broken stream is immediately terminal (no redial).
	MaxReconnect int
	// ReconnectBase and ReconnectMax bound the jittered exponential
	// backoff between redials: attempt k sleeps base<<(k-1) capped at
	// max, plus up to half that again of seeded jitter. Zero values
	// default to 5ms and 500ms.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// ReconnectSeed selects the backoff jitter stream.
	ReconnectSeed int64

	// Counters, when non-nil, receives stall/retry/death events.
	Counters *StallCounters
}

// withDefaults fills the derived defaults documented on the fields.
func (o StallOpts) withDefaults() StallOpts {
	if o.RoundTimeout > 0 && o.Grace == 0 {
		o.Grace = o.RoundTimeout / 8
		if o.Grace < 100*time.Microsecond {
			o.Grace = 100 * time.Microsecond
		}
	}
	if o.ReconnectBase <= 0 {
		o.ReconnectBase = 5 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 500 * time.Millisecond
	}
	return o
}

// backoff returns the sleep before redial attempt k (1-based):
// exponential from ReconnectBase, capped at ReconnectMax, with up to
// +50% of deterministic jitter so a partitioned mesh's redials don't
// thundering-herd in phase.
func (o StallOpts) backoff(node, peer, attempt int) time.Duration {
	d := o.ReconnectBase << (attempt - 1)
	if d <= 0 || d > o.ReconnectMax {
		d = o.ReconnectMax
	}
	h := mix64(uint64(o.ReconnectSeed) ^ uint64(node)<<40 ^ uint64(peer)<<24 ^ uint64(attempt))
	return d + time.Duration(h%uint64(d/2+1))
}

// stallDetector is one receiving endpoint's view of its senders'
// liveness: it folds the missed-sender lists of deadline-closed rounds
// into per-sender consecutive-miss streaks and escalates a streak of
// DeadAfter to a terminal death verdict. State is endpoint-local (no
// locking — Gather is single-goroutine); verdicts go through the
// transport's DeadMarker, which is idempotent and mesh-wide.
//
// The streak rule distinguishes a stall from a loss burst only by
// length: DeadAfter consecutive misses. Injected Policy drops never
// count (they arrive as explicit tombstones), and a sender already
// declared dead stops being reported missed (its slots are pre-filled),
// so the detector self-quiesces after a verdict.
type stallDetector struct {
	deadAfter int
	counters  *StallCounters
	verdict   func(sender int) // mesh-wide death verdict for sender's node

	lastMiss []int // round of the most recent miss, per sender
	streak   []int // consecutive-miss streak ending at lastMiss, per sender
}

// newStallDetector returns a detector for n senders, or nil when
// detection is disabled (callers nil-check before observing).
func newStallDetector(n, deadAfter int, counters *StallCounters, verdict func(sender int)) *stallDetector {
	if deadAfter <= 0 {
		return nil
	}
	return &stallDetector{
		deadAfter: deadAfter,
		counters:  counters,
		verdict:   verdict,
		lastMiss:  make([]int, n),
		streak:    make([]int, n),
	}
}

// observe folds round r's missed-sender list (from a deadline closure;
// nil when the round closed by count) into the streaks and fires
// verdicts. Senders absent from the list reset lazily: a streak only
// continues when the misses are consecutive rounds.
func (d *stallDetector) observe(r int, missed []int) {
	if d == nil || len(missed) == 0 {
		return
	}
	if d.counters != nil {
		d.counters.Stalls.Add(int64(len(missed)))
	}
	for _, q := range missed {
		if d.lastMiss[q] == r-1 {
			d.streak[q]++
		} else {
			d.streak[q] = 1
		}
		d.lastMiss[q] = r
		if d.streak[q] == d.deadAfter {
			d.verdict(q)
		}
	}
}
