// Package transport provides the wire layer of the distributed runtime
// (internal/runtime): pluggable message transports that carry one
// broadcast payload per process per round and reassemble, on the receive
// side, the per-round message vector the round model prescribes.
//
// Three production implementations exist:
//
//   - InProc — per-receiver mailboxes (roundBuffer) with direct
//     deposits, zero goroutines and zero OS involvement; the transport
//     used by the agreement service (internal/service) for its sessions.
//   - TCPMesh — node-grouped real TCP sockets (loopback or a LAN): one
//     duplex stream per node pair carrying all of a round's messages
//     between the two nodes as a single coalesced v2 frame (per-round
//     header, drop bitmap, each sender's payload once), with one writer
//     event loop and one reader goroutine per stream on each node.
//   - UDPMesh — best-effort datagrams (udp.go): the same coalesced
//     frames packed into MTU-sized datagrams (fragmenting large frames
//     across numbered datagrams), batched through sendmmsg/recvmmsg on
//     Linux, with round closure by deadline + grace instead of by
//     tombstone: a datagram the network loses simply never arrives, and
//     the receiver records the absence as a nil delivery — exactly the
//     heard-set semantics the paper's round model assigns to a lossy
//     link. The algorithm tolerates arbitrary loss given a stable
//     skeleton, so nothing is retransmitted.
//
// All three share the mailbox receive path (mailbox.go, and its
// loss-tolerant variant lossy_mailbox.go): senders deposit into
// per-receiver round slots backed by pooled reference-counted buffers,
// so the steady-state round allocates nothing and a receiver wakes
// exactly once per round.
//
// All are driven by a Policy, the per-link fault injector: drops are
// applied at the sending endpoint (a dropped payload never crosses the
// wire; a header-only tombstone frame still closes the round), delays at
// the receiving endpoint. Because every adversary schedule from
// internal/adversary is a Policy (see Schedule), any simulated run can be
// replayed over a real transport — the differential harness in
// internal/runtime proves the replay is decision-for-decision identical
// to sim.Execute.
//
// # Transport contract
//
// Every process calls Broadcast exactly once per round r = 1, 2, ...,
// then Gather(r) exactly once; rounds are communication-closed. The
// contract every implementation satisfies:
//
//  1. Per-link FIFO: frames from p arrive at q in send order.
//  2. Round closure: Gather(r) returns only after a round-r frame from
//     every process (possibly a drop tombstone) has arrived. On the
//     best-effort UDP mesh a frame may be lost outright, so closure is
//     additionally bounded by a per-round deadline plus grace windows:
//     senders still missing when the deadline expires are recorded as
//     nil deliveries, the same observable outcome as a Policy drop.
//  3. Bounded lookahead: a sender is never more than a constant number of
//     rounds ahead of any receiver (the runtime's pipelined control
//     barrier bounds it at one round past the lowest un-gathered round),
//     so per-receiver buffering is O(1) — a fixed `window`-slot ring.
//  4. Self-delivery: a process always receives its own round-r payload
//     (the model requires all self-loops); Policy is never consulted for
//     the self link.
package transport

import (
	"errors"
)

// ErrClosed is returned by endpoint operations after the transport (or
// the endpoint) has been closed.
var ErrClosed = errors.New("transport: closed")

// MaxPayload bounds a single round payload. Algorithm 1 messages are
// O(n²) varints (see internal/wire); even n = wire.MaxUniverse stays far
// below this, so anything larger is a protocol violation, not traffic.
const MaxPayload = 1 << 24

// Endpoint is one process's port onto the network. An endpoint is owned
// by a single goroutine: Broadcast and Gather must not be called
// concurrently (Close may be called from anywhere).
type Endpoint interface {
	// Self returns the process id this endpoint belongs to.
	Self() int
	// N returns the number of processes on the transport.
	N() int
	// Broadcast sends this process's round-r payload to every process,
	// itself included. The payload is copied (or written to the wire)
	// before Broadcast returns; the caller may reuse the buffer.
	// Per-link drops are applied here, by the configured Policy.
	Broadcast(r int, payload []byte) error
	// Gather blocks until every process's round-r frame has arrived and
	// returns the received vector: recv[q] is q's payload, or nil if the
	// policy dropped the link q -> self in round r. Per-link delays are
	// applied here. recv aliases into (grown as needed); the payloads
	// are valid until the next Gather call on this endpoint.
	Gather(r int, into [][]byte) (recv [][]byte, err error)
	// Close releases the endpoint; pending and future calls fail with
	// ErrClosed.
	Close() error
}

// Transport hands out the n endpoints of one run. Transports are
// single-run: after Close (or a completed run) build a fresh one.
type Transport interface {
	// N returns the number of processes.
	N() int
	// Endpoint returns process self's endpoint. Each id must be claimed
	// at most once, from any goroutine.
	Endpoint(self int) (Endpoint, error)
	// Close tears the transport down and unblocks every endpoint.
	Close() error
}

// DeadMarker is implemented by transports that support the chaos
// layer's death verdicts: MarkDead(p, fromRound) declares that process
// p sends nothing from round fromRound onward (fromRound <= 1 means
// from the beginning). Every receiver's missing deliveries from p are
// converted to permanent nil tombstones — pending rounds close by
// count, deadline-closed rounds stop waiting out the silence — and any
// frame from p still in flight is discarded. The verdict is terminal:
// there is no MarkAlive.
//
// Two callers exist: the runtime's crash injector (a planned crash
// announces itself, round-exactly, the way a real crashed OS process is
// announced by its supervisor) and the transports' own stall detectors
// (an unannounced crash is inferred from consecutive deadline-closed
// rounds; see StallOpts).
type DeadMarker interface {
	MarkDead(p, fromRound int)
}
