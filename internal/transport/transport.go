// Package transport provides the wire layer of the distributed runtime
// (internal/runtime): pluggable message transports that carry one
// broadcast payload per process per round and reassemble, on the receive
// side, the per-round message vector the round model prescribes.
//
// Two production implementations exist:
//
//   - InProc — per-link Go channels, zero OS involvement; the transport
//     used by the agreement service (internal/service) for its sessions.
//   - TCP — length-prefixed frames over real TCP sockets (loopback or a
//     LAN), with one ordered stream per directed link, reusing
//     internal/wire for the payload encoding via runtime's codec.
//
// Both are driven by a Policy, the per-link fault injector: drops are
// applied at the sending endpoint (a dropped payload never crosses the
// wire; a header-only tombstone frame still closes the round), delays at
// the receiving endpoint. Because every adversary schedule from
// internal/adversary is a Policy (see Schedule), any simulated run can be
// replayed over a real transport — the differential harness in
// internal/runtime proves the replay is decision-for-decision identical
// to sim.Execute.
//
// # Transport contract
//
// Every process calls Broadcast exactly once per round r = 1, 2, ...,
// then Gather(r) exactly once; rounds are communication-closed. The
// contract both implementations satisfy:
//
//  1. Per-link FIFO: frames from p arrive at q in send order.
//  2. Round closure: Gather(r) returns only after a round-r frame from
//     every process (possibly a drop tombstone) has arrived.
//  3. Bounded lookahead: a sender is never more than a constant number of
//     rounds ahead of any receiver (the runtime's control barrier bounds
//     it at one), so per-link buffering is O(1).
//  4. Self-delivery: a process always receives its own round-r payload
//     (the model requires all self-loops); Policy is never consulted for
//     the self link.
package transport

import (
	"errors"
	"fmt"
	"time"
)

// ErrClosed is returned by endpoint operations after the transport (or
// the endpoint) has been closed.
var ErrClosed = errors.New("transport: closed")

// MaxPayload bounds a single round payload. Algorithm 1 messages are
// O(n²) varints (see internal/wire); even n = wire.MaxUniverse stays far
// below this, so anything larger is a protocol violation, not traffic.
const MaxPayload = 1 << 24

// Endpoint is one process's port onto the network. An endpoint is owned
// by a single goroutine: Broadcast and Gather must not be called
// concurrently (Close may be called from anywhere).
type Endpoint interface {
	// Self returns the process id this endpoint belongs to.
	Self() int
	// N returns the number of processes on the transport.
	N() int
	// Broadcast sends this process's round-r payload to every process,
	// itself included. The payload is copied (or written to the wire)
	// before Broadcast returns; the caller may reuse the buffer.
	// Per-link drops are applied here, by the configured Policy.
	Broadcast(r int, payload []byte) error
	// Gather blocks until every process's round-r frame has arrived and
	// returns the received vector: recv[q] is q's payload, or nil if the
	// policy dropped the link q -> self in round r. Per-link delays are
	// applied here. recv aliases into (grown as needed); the payloads
	// are valid until the next Gather call on this endpoint.
	Gather(r int, into [][]byte) (recv [][]byte, err error)
	// Close releases the endpoint; pending and future calls fail with
	// ErrClosed.
	Close() error
}

// Transport hands out the n endpoints of one run. Transports are
// single-run: after Close (or a completed run) build a fresh one.
type Transport interface {
	// N returns the number of processes.
	N() int
	// Endpoint returns process self's endpoint. Each id must be claimed
	// at most once, from any goroutine.
	Endpoint(self int) (Endpoint, error)
	// Close tears the transport down and unblocks every endpoint.
	Close() error
}

// frame is one per-link round message. A dropped frame is a tombstone:
// it closes the round at the receiver without delivering a payload —
// the receive-side image of a lossy link in a communication-closed
// round model.
type frame struct {
	from    int
	round   int
	dropped bool
	payload []byte
}

// gatherFrames is the shared receive-side collector: it pops exactly one
// round-r frame per sender from the per-sender FIFO queues, verifies
// round alignment, applies the policy's receive delays (the round is
// gated by its slowest delivered link), and assembles the recv vector.
func gatherFrames(self, r, n int, queues []chan frame, pol Policy, done <-chan struct{}, errc <-chan error, into [][]byte) ([][]byte, error) {
	if cap(into) < n {
		into = make([][]byte, n)
	}
	into = into[:n]
	var maxDelay time.Duration
	for q := 0; q < n; q++ {
		var f frame
		select {
		case f = <-queues[q]:
		case err := <-errc:
			return nil, err
		case <-done:
			return nil, ErrClosed
		}
		if f.round != r {
			return nil, fmt.Errorf("transport: p%d got round-%d frame from p%d while gathering round %d", self+1, f.round, q+1, r)
		}
		if f.dropped {
			into[q] = nil
			continue
		}
		into[q] = f.payload
		if q != self {
			if d := pol.Delay(r, q, self); d > maxDelay {
				maxDelay = d
			}
		}
	}
	if maxDelay > 0 {
		// Receive-side netem: the round completes only after the
		// slowest delivered link's latency has elapsed. Semantically
		// inert (rounds are communication-closed); it skews the
		// processes' real-time phase, which is exactly what the
		// loss/delay property tests exercise.
		select {
		case <-time.After(maxDelay):
		case <-done:
			return nil, ErrClosed
		}
	}
	return into, nil
}

// linkBuffer is the per-link queue capacity. The runtime's per-round
// control barrier bounds sender lookahead at one round, so two slots
// suffice; four absorbs transports driven without a barrier (the
// transport-level property tests) where lookahead can reach two.
const linkBuffer = 4
