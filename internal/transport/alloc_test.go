package transport

import (
	"runtime/debug"
	"testing"
)

// TestInProcSteadyStateAllocs pins the pooled-buffer claim: once the
// refBuf pool and the mailbox rings are warm, a full round (every
// process broadcasts, every process gathers) allocates nothing. The
// in-process transport is fully synchronous, so a single goroutine can
// drive both endpoints deterministically; GC is disabled for the
// measurement so pool evictions cannot masquerade as steady-state
// allocations.
func TestInProcSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; alloc counts are not deterministic")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	const n = 2
	tr := NewInProc(n, nil)
	defer tr.Close()
	eps := make([]Endpoint, n)
	for i := range eps {
		ep, err := tr.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	payload := []byte("steady-state payload")
	bufs := make([][][]byte, n)
	r := 0
	round := func() {
		r++
		for _, ep := range eps {
			if err := ep.Broadcast(r, payload); err != nil {
				t.Fatal(err)
			}
		}
		for i, ep := range eps {
			recv, err := ep.Gather(r, bufs[i])
			if err != nil {
				t.Fatal(err)
			}
			bufs[i] = recv
		}
	}
	// Warm the pool and the gather buffers past the ring window.
	for i := 0; i < 2*window; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Fatalf("steady-state round allocates %.1f times, want 0", avg)
	}
}

// TestUDPSteadyStateAllocs pins the same claim on the datagram path:
// once the frame scratch, batch arrays, reassembly slots, and refBuf
// pool are warm, a full round over real UDP sockets allocates nothing —
// and because AllocsPerRun counts mallocs across all goroutines, the
// pin covers the writer loops and batch readers too, not just the
// endpoint-facing calls.
func TestUDPSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; alloc counts are not deterministic")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	const n = 2
	tr, err := NewUDPMeshLoopback(n, n, nil, udpTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	eps := make([]Endpoint, n)
	for i := range eps {
		ep, err := tr.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	payload := []byte("steady-state payload")
	bufs := make([][][]byte, n)
	r := 0
	round := func() {
		r++
		for _, ep := range eps {
			if err := ep.Broadcast(r, payload); err != nil {
				t.Fatal(err)
			}
		}
		for i, ep := range eps {
			recv, err := ep.Gather(r, bufs[i])
			if err != nil {
				t.Fatal(err)
			}
			bufs[i] = recv
		}
	}
	// Warm everything past the ring window: pools, batch arrays, frame
	// and reassembly scratch all reach their steady capacity.
	for i := 0; i < 4*window; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Fatalf("steady-state round allocates %.1f times, want 0", avg)
	}
}
