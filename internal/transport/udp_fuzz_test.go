package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// udpFuzzSeeds returns representative datagrams for the fuzz corpus:
// single-fragment frames with and without tombstones, a multi-fragment
// header, and a few structurally broken packets.
func udpFuzzSeeds() [][]byte {
	frame := func(snd, rcv int, bits []byte, payloads ...[]byte) []byte {
		body := append([]byte(nil), bits...)
		for _, p := range payloads {
			body = binary.AppendUvarint(body, uint64(len(p)))
			body = append(body, p...)
		}
		return body
	}
	seeds := [][]byte{
		// 1x1 link, delivered payload.
		appendUDPHeader(nil, udpHeader{from: 1, round: 1, fragIdx: 0, fragCount: 1}),
		// 2x2 link, sender 0 delivers to both, sender 1 tombstoned.
		append(appendUDPHeader(nil, udpHeader{from: 0, round: 3, fragIdx: 0, fragCount: 1}),
			frame(2, 2, []byte{0b0011}, []byte("hello"))...),
		// First fragment of a three-fragment frame.
		appendUDPHeader(nil, udpHeader{from: 2, round: 7, fragIdx: 0, fragCount: 3}),
		// Broken: fragIdx beyond fragCount.
		appendUDPHeader(nil, udpHeader{from: 0, round: 1, fragIdx: 5, fragCount: 6})[:4],
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // varint overflow bait
	}
	seeds[0] = append(seeds[0], frame(1, 1, []byte{0x01}, []byte("x"))...)
	return seeds
}

// FuzzDecodeUDPFrame feeds arbitrary bytes through the whole datagram
// decode path the reader goroutine runs — header parse, fragment
// reassembly hardening, and the frame-body walk — mirroring the wire
// and runfile fuzzers that caught the varint-overflow panic. Dims are
// fuzzed alongside the bytes so the walk is exercised over many link
// shapes. Invariants:
//
//   - nothing panics, whatever the input;
//   - every accepted header satisfies its documented bounds, and the
//     reassembler never accepts a fragment count beyond the
//     transport-derived frame limit (allocation stays proportional to
//     configured dimensions, never to header contents);
//   - an accepted frame body walks to exactly snd sender callbacks,
//     payload nil iff no delivery bit is set, and re-encoding the walk
//     reproduces delivery-equivalent decode results.
func FuzzDecodeUDPFrame(f *testing.F) {
	for _, seed := range udpFuzzSeeds() {
		f.Add(seed, uint8(1), uint8(1))
		f.Add(seed, uint8(2), uint8(3))
	}
	f.Fuzz(func(t *testing.T, data []byte, sndB, rcvB uint8) {
		snd, rcv := 1+int(sndB)%8, 1+int(rcvB)%8

		// Layer 1: datagram header parse + reassembly hardening.
		if hdr, frag, err := parseUDPDatagram(data); err == nil {
			if hdr.round < 1 || hdr.fragCount < 1 || hdr.fragIdx >= hdr.fragCount || hdr.from < 0 {
				t.Fatalf("accepted header violates its bounds: %+v", hdr)
			}
			const chunk = 64
			ra := newUDPReasm(0, snd, rcv, chunk)
			if body, ok := ra.place(hdr, frag); ok && body != nil {
				if hdr.fragCount > ra.maxFrags {
					t.Fatalf("reassembler completed a frame with fragCount %d beyond limit %d",
						hdr.fragCount, ra.maxFrags)
				}
				if len(body) > ra.maxFrags*chunk {
					t.Fatalf("reassembled body %d bytes beyond the %d cap", len(body), ra.maxFrags*chunk)
				}
			}
		}

		// Layer 2: frame-body walk over fuzzed link dimensions.
		type delivery struct {
			delivered int
			payload   []byte
		}
		var walked []delivery
		var bitmap []byte
		err := decodeUDPFrame(data, snd, rcv, func(si, delivered int, payload, bits []byte) {
			if si != len(walked) {
				t.Fatalf("sender callbacks out of order: got %d, want %d", si, len(walked))
			}
			if (payload == nil) != (delivered == 0) {
				t.Fatalf("sender %d: payload nil = %v but delivered = %d", si, payload == nil, delivered)
			}
			walked = append(walked, delivery{delivered, append([]byte(nil), payload...)})
			bitmap = append(bitmap[:0], bits...)
		})
		if err != nil {
			return
		}
		if len(walked) != snd {
			t.Fatalf("accepted %dx%d frame walked %d senders", snd, rcv, len(walked))
		}
		// Re-encode canonically and require a delivery-equivalent walk:
		// the decoder tolerates non-minimal varints, so only semantics —
		// not bytes — must round-trip.
		re := append([]byte(nil), bitmap...)
		for _, d := range walked {
			if d.delivered > 0 {
				re = binary.AppendUvarint(re, uint64(len(d.payload)))
				re = append(re, d.payload...)
			}
		}
		i := 0
		if err := decodeUDPFrame(re, snd, rcv, func(si, delivered int, payload, _ []byte) {
			if delivered != walked[i].delivered || !bytes.Equal(payload, walked[i].payload) {
				t.Fatalf("re-encoded frame changed sender %d: %d/%q vs %d/%q",
					si, delivered, payload, walked[i].delivered, walked[i].payload)
			}
			i++
		}); err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
	})
}
