//go:build linux && (amd64 || arm64)

package transport

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// Linux batch I/O: one sendmmsg ships a node's whole round (every
// fragment to every peer) and one recvmmsg drains up to udpBatch
// queued datagrams, so the syscall count per round drops from O(nodes)
// to O(1) per node in each direction. Everything syscall-shaped is
// hand-built from the syscall package — the repo takes no external
// dependencies — with the mmsghdr layout and (for sendmmsg on amd64,
// which the syscall package never picked up) the syscall number
// declared per architecture in udp_sysnum_linux_*.go.
//
// Error philosophy follows the transport: a datagram the kernel
// refuses (ENOBUFS, a peer's closed port, ...) is a lost datagram, not
// a failure — skip it and keep going. Only a dead socket (EBADF, or
// the RawConn reporting closure) surfaces, which happens on teardown
// or a genuinely broken node.

// udpBatch is the recvmmsg batch width.
const udpBatch = 32

// mmsgHdr mirrors struct mmsghdr: a msghdr plus the kernel-written
// datagram length, padded to the 8-byte array stride of the 64-bit
// ABI.
type mmsgHdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// sa4Of converts a loopback peer address to the raw sockaddr the
// kernel wants (sin_port in network byte order).
func sa4Of(ap netip.AddrPort) syscall.RawSockaddrInet4 {
	sa := syscall.RawSockaddrInet4{Family: syscall.AF_INET, Addr: ap.Addr().As4()}
	p := ap.Port()
	b := (*[2]byte)(unsafe.Pointer(&sa.Port))
	b[0], b[1] = byte(p>>8), byte(p)
	return sa
}

// sa4Port reads a raw sockaddr's port back into host order.
func sa4Port(sa *syscall.RawSockaddrInet4) uint16 {
	b := (*[2]byte)(unsafe.Pointer(&sa.Port))
	return uint16(b[0])<<8 | uint16(b[1])
}

// udpSender is the writer loop's batch sender.
type udpSender struct {
	udpSendQueue
	conn   *net.UDPConn
	rc     syscall.RawConn
	sa4    []syscall.RawSockaddrInet4
	iovs   []syscall.Iovec
	hdrs   []mmsgHdr
	sent   int
	fatal  error
	sendFn func(fd uintptr) bool // allocated once; rc.Write(sendFn) is alloc-free
}

func (s *udpSender) init(conn *net.UDPConn, addrs []netip.AddrPort) error {
	s.conn = conn
	rc, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	s.rc = rc
	s.sa4 = make([]syscall.RawSockaddrInet4, len(addrs))
	for i, ap := range addrs {
		s.sa4[i] = sa4Of(ap)
	}
	s.sendFn = func(fd uintptr) bool {
		for s.sent < len(s.hdrs) {
			n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&s.hdrs[s.sent])), uintptr(len(s.hdrs)-s.sent), 0, 0, 0)
			switch {
			case errno == 0:
				s.sent += int(n)
			case errno == syscall.EINTR:
			case errno == syscall.EAGAIN:
				return false // park on the netpoller until writable
			case errno == syscall.EBADF:
				s.fatal = errno
				return true
			default:
				s.sent++ // best-effort: this datagram is lost
			}
		}
		return true
	}
	return nil
}

// flush ships the staged batch. Returns nil unless the socket itself is
// dead.
func (s *udpSender) flush() error {
	if len(s.pkts) == 0 {
		return nil
	}
	if cap(s.iovs) < len(s.pkts) {
		s.iovs = make([]syscall.Iovec, len(s.pkts))
		s.hdrs = make([]mmsgHdr, len(s.pkts))
	}
	s.iovs = s.iovs[:len(s.pkts)]
	s.hdrs = s.hdrs[:len(s.pkts)]
	namelen := uint32(unsafe.Sizeof(syscall.RawSockaddrInet4{}))
	for i, p := range s.pkts {
		s.iovs[i].Base = &s.flat[p.start]
		s.iovs[i].Len = uint64(p.end - p.start)
		h := &s.hdrs[i]
		h.hdr.Name = (*byte)(unsafe.Pointer(&s.sa4[p.dst]))
		h.hdr.Namelen = namelen
		h.hdr.Iov = &s.iovs[i]
		h.hdr.Iovlen = 1
		h.len = 0
	}
	s.sent, s.fatal = 0, nil
	err := s.rc.Write(s.sendFn)
	s.reset()
	if err != nil {
		return err
	}
	return s.fatal
}

// udpReceiver is the reader loop's batch receiver.
type udpReceiver struct {
	conn   *net.UDPConn
	rc     syscall.RawConn
	max    int
	bufs   []byte // udpBatch fixed-stride datagram buffers
	iovs   [udpBatch]syscall.Iovec
	hdrs   [udpBatch]mmsgHdr
	names  [udpBatch]syscall.RawSockaddrInet4
	got    int
	fatal  error
	recvFn func(fd uintptr) bool
}

func (r *udpReceiver) init(conn *net.UDPConn, maxDatagram int) error {
	r.conn = conn
	r.max = maxDatagram
	rc, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	r.rc = rc
	r.bufs = make([]byte, udpBatch*maxDatagram)
	for i := 0; i < udpBatch; i++ {
		r.iovs[i].Base = &r.bufs[i*maxDatagram]
		r.iovs[i].Len = uint64(maxDatagram)
		h := &r.hdrs[i]
		h.hdr.Name = (*byte)(unsafe.Pointer(&r.names[i]))
		h.hdr.Iov = &r.iovs[i]
		h.hdr.Iovlen = 1
	}
	namelen := uint32(unsafe.Sizeof(syscall.RawSockaddrInet4{}))
	r.recvFn = func(fd uintptr) bool {
		for i := range r.hdrs {
			r.hdrs[i].hdr.Namelen = namelen
		}
		for {
			n, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&r.hdrs[0])), udpBatch, 0, 0, 0)
			switch {
			case errno == 0:
				r.got = int(n)
				return true
			case errno == syscall.EINTR:
			case errno == syscall.EAGAIN:
				return false // park on the netpoller until readable
			default:
				r.fatal = errno
				return true
			}
		}
	}
	return nil
}

// recv blocks for at least one datagram, drains up to a batch, and
// hands each to the node. Returns an error only when the socket is
// closed or dead.
func (r *udpReceiver) recv(nd *udpNode) error {
	r.got, r.fatal = 0, nil
	if err := r.rc.Read(r.recvFn); err != nil {
		return err
	}
	if r.fatal != nil {
		return r.fatal
	}
	for i := 0; i < r.got; i++ {
		ln := int(r.hdrs[i].len)
		if ln > r.max {
			ln = r.max // kernel-truncated oversize datagram
		}
		sa := &r.names[i]
		if sa.Family != syscall.AF_INET {
			continue
		}
		ap := netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), sa4Port(sa))
		nd.handleDatagram(r.bufs[i*r.max:i*r.max+ln], ap)
	}
	return nil
}
