package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP is the socket transport: one ordered TCP stream per directed link,
// carrying length-prefixed frames whose payloads are the codec's wire
// encoding (internal/wire for Algorithm 1 messages). NewTCPLoopback
// binds all n listeners on the loopback interface — the configuration
// the CI gauntlet and the E18 measurements use; the frame protocol
// itself is host-agnostic.
//
// Per-link frame layout (after a one-time uvarint sender-id handshake on
// each stream):
//
//	uvarint round
//	byte    flags (bit 0: dropped tombstone)
//	uvarint payload length (0 for tombstones)
//	...     payload bytes
type TCP struct {
	n     int
	pol   Policy
	lns   []net.Listener
	addrs []string

	mu      sync.Mutex
	claimed []bool
	eps     []*tcpEndpoint
	closed  bool
	done    chan struct{}
}

const frameDropped = 1 << 0

// NewTCPLoopback returns a TCP transport whose n listeners are bound to
// 127.0.0.1 on kernel-assigned ports. All listeners exist before any
// endpoint dials, so Endpoint may be called concurrently from the n
// process goroutines without connect races.
func NewTCPLoopback(n int, pol Policy) (*TCP, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: n = %d, need >= 1", n)
	}
	if pol == nil {
		pol = Perfect{}
	}
	t := &TCP{
		n:       n,
		pol:     pol,
		claimed: make([]bool, n),
		done:    make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen endpoint %d: %w", i, err)
		}
		t.lns = append(t.lns, ln)
		t.addrs = append(t.addrs, ln.Addr().String())
	}
	return t, nil
}

// N implements Transport.
func (t *TCP) N() int { return t.n }

// Addrs returns the listen addresses, indexed by process id.
func (t *TCP) Addrs() []string { return append([]string(nil), t.addrs...) }

// Endpoint implements Transport: it starts self's accept loop and dials
// every peer (itself included — self-delivery crosses loopback too, so
// the wire path is uniform across all n² links).
func (t *TCP) Endpoint(self int) (Endpoint, error) {
	if self < 0 || self >= t.n {
		return nil, fmt.Errorf("transport: endpoint id %d out of range [0,%d)", self, t.n)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if t.claimed[self] {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: endpoint %d already claimed", self)
	}
	t.claimed[self] = true
	ep := &tcpEndpoint{
		t:      t,
		self:   self,
		queues: make([]chan frame, t.n),
		errc:   make(chan error, 1),
		seen:   make([]bool, t.n),
	}
	for q := range ep.queues {
		ep.queues[q] = make(chan frame, linkBuffer)
	}
	t.eps = append(t.eps, ep)
	t.mu.Unlock()

	go ep.acceptLoop(t.lns[self])
	for to := 0; to < t.n; to++ {
		c, err := net.Dial("tcp", t.addrs[to])
		if err != nil {
			ep.Close()
			return nil, fmt.Errorf("transport: p%d dial p%d: %w", self+1, to+1, err)
		}
		ep.track(c)
		w := bufio.NewWriter(c)
		var hello [binary.MaxVarintLen64]byte
		if _, err := w.Write(hello[:binary.PutUvarint(hello[:], uint64(self))]); err != nil {
			ep.Close()
			return nil, fmt.Errorf("transport: p%d handshake to p%d: %w", self+1, to+1, err)
		}
		ep.conns = append(ep.conns, c)
		ep.writers = append(ep.writers, w)
	}
	return ep, nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	eps := append([]*tcpEndpoint(nil), t.eps...)
	t.mu.Unlock()
	for _, ln := range t.lns {
		ln.Close()
	}
	for _, ep := range eps {
		ep.closeConns()
	}
	return nil
}

// tcpEndpoint is process self's port onto a TCP transport.
type tcpEndpoint struct {
	t       *TCP
	self    int
	queues  []chan frame // queues[q] = link q -> self
	errc    chan error
	conns   []net.Conn      // dialed, indexed by destination
	writers []*bufio.Writer // one per dialed conn
	scratch []byte

	mu      sync.Mutex
	seen    []bool // sender ids already bound to an accepted stream
	tracked []net.Conn
	torn    bool // closeConns ran; late-tracked conns are closed on sight
}

// Self implements Endpoint.
func (ep *tcpEndpoint) Self() int { return ep.self }

// N implements Endpoint.
func (ep *tcpEndpoint) N() int { return ep.t.n }

// Broadcast implements Endpoint. Dropped links get a header-only
// tombstone frame: the payload genuinely never crosses the wire, but the
// receiver's round still closes.
func (ep *tcpEndpoint) Broadcast(r int, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("transport: payload %d bytes exceeds MaxPayload %d", len(payload), MaxPayload)
	}
	for to := 0; to < ep.t.n; to++ {
		dropped := to != ep.self && !ep.t.pol.Deliver(r, ep.self, to)
		hdr := binary.AppendUvarint(ep.scratch[:0], uint64(r))
		var flags byte
		plen := len(payload)
		if dropped {
			flags, plen = frameDropped, 0
		}
		hdr = append(hdr, flags)
		hdr = binary.AppendUvarint(hdr, uint64(plen))
		ep.scratch = hdr
		w := ep.writers[to]
		if _, err := w.Write(hdr); err != nil {
			return ep.sendErr(to, err)
		}
		if !dropped {
			if _, err := w.Write(payload); err != nil {
				return ep.sendErr(to, err)
			}
		}
		if err := w.Flush(); err != nil {
			return ep.sendErr(to, err)
		}
	}
	return nil
}

func (ep *tcpEndpoint) sendErr(to int, err error) error {
	select {
	case <-ep.t.done:
		return ErrClosed
	default:
		return fmt.Errorf("transport: p%d send to p%d: %w", ep.self+1, to+1, err)
	}
}

// Gather implements Endpoint.
func (ep *tcpEndpoint) Gather(r int, into [][]byte) ([][]byte, error) {
	return gatherFrames(ep.self, r, ep.t.n, ep.queues, ep.t.pol, ep.t.done, ep.errc, into)
}

// Close implements Endpoint: it tears down this endpoint's streams. The
// peers see clean EOFs (normal end of a run); a receiver still waiting
// on this endpoint's frames unblocks when the transport as a whole is
// closed.
func (ep *tcpEndpoint) Close() error {
	ep.closeConns()
	return nil
}

// closeConns tears down every stream this endpoint has tracked —
// dialed and accepted alike (track registers both). ep.conns/ep.writers
// are deliberately not touched here: they are owned by the endpoint's
// process goroutine and may still be mid-append when a concurrent
// Transport.Close fires; their conns are all in the tracked list.
func (ep *tcpEndpoint) closeConns() {
	ep.mu.Lock()
	tracked := ep.tracked
	ep.tracked = nil
	ep.torn = true
	ep.mu.Unlock()
	for _, c := range tracked {
		c.Close()
	}
}

// track registers a stream for teardown; a stream arriving after
// teardown (a dial or accept racing Transport.Close) is closed on the
// spot.
func (ep *tcpEndpoint) track(c net.Conn) {
	ep.mu.Lock()
	torn := ep.torn
	if !torn {
		ep.tracked = append(ep.tracked, c)
	}
	ep.mu.Unlock()
	if torn {
		c.Close()
	}
}

func (ep *tcpEndpoint) acceptLoop(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed by Transport.Close
		}
		ep.track(c)
		go ep.readConn(c)
	}
}

// readConn binds one accepted stream to its sender via the handshake,
// then routes its frames into the per-sender queue. A clean EOF is the
// normal end of a peer's run; any other failure before transport close
// is surfaced to Gather.
func (ep *tcpEndpoint) readConn(c net.Conn) {
	br := bufio.NewReader(c)
	from64, err := binary.ReadUvarint(br)
	if err != nil {
		ep.readErr(fmt.Errorf("transport: p%d handshake read: %w", ep.self+1, err))
		return
	}
	from := int(from64)
	if from64 >= uint64(ep.t.n) {
		ep.readErr(fmt.Errorf("transport: p%d got handshake from out-of-range sender %d", ep.self+1, from64))
		return
	}
	ep.mu.Lock()
	dup := ep.seen[from]
	ep.seen[from] = true
	ep.mu.Unlock()
	if dup {
		ep.readErr(fmt.Errorf("transport: p%d got a second stream claiming sender p%d", ep.self+1, from+1))
		return
	}
	for {
		round, err := binary.ReadUvarint(br)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				ep.readErr(fmt.Errorf("transport: p%d read from p%d: %w", ep.self+1, from+1, err))
			}
			return
		}
		flags, err := br.ReadByte()
		if err != nil {
			ep.readErr(fmt.Errorf("transport: p%d read from p%d: %w", ep.self+1, from+1, err))
			return
		}
		plen, err := binary.ReadUvarint(br)
		if err != nil {
			ep.readErr(fmt.Errorf("transport: p%d read from p%d: %w", ep.self+1, from+1, err))
			return
		}
		if plen > MaxPayload {
			ep.readErr(fmt.Errorf("transport: p%d got %d-byte frame from p%d, exceeds MaxPayload", ep.self+1, plen, from+1))
			return
		}
		f := frame{from: from, round: int(round), dropped: flags&frameDropped != 0}
		if plen > 0 {
			f.payload = make([]byte, plen)
			if _, err := io.ReadFull(br, f.payload); err != nil {
				ep.readErr(fmt.Errorf("transport: p%d read from p%d: %w", ep.self+1, from+1, err))
				return
			}
		}
		select {
		case ep.queues[from] <- f:
		case <-ep.t.done:
			return
		}
	}
}

// readErr surfaces a stream failure to the endpoint's Gather, unless the
// transport is already closing (teardown makes reads fail by design).
func (ep *tcpEndpoint) readErr(err error) {
	select {
	case <-ep.t.done:
		return
	default:
	}
	select {
	case ep.errc <- err:
	default:
	}
}
