package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPMesh is the socket transport, rebuilt around node-grouped links
// (wire-format v2). Processes are partitioned across `nodes` mesh nodes;
// each unordered node pair shares ONE duplex TCP stream, and all of a
// round's messages from one node to another ship as a single
// length-prefixed frame: a per-round header, a drop bitmap over the
// (sender × receiver) link matrix carried by that node link, and each
// sender's payload exactly once — however many receivers the peer node
// hosts. Compared with the v1 transport (one stream and one frame per
// directed process link, n² of each), this cuts connections to
// O(nodes²), syscalls to O(nodes²) per round, and the bytes crossing
// the wire by the receiver fan-in factor; co-located delivery never
// touches a socket at all.
//
// Each node runs exactly one writer event loop (it owns every outbound
// stream half, coalescing all local senders' round-r payloads into one
// frame per peer) and one reader goroutine per peer stream (each owns
// its inbound half, depositing straight into the local receivers'
// mailboxes). Goroutines scale with nodes, not with processes.
//
// With nodes == n (NewTCPLoopback) every process is its own node — the
// fully distributed one-process-per-socket-endpoint shape the E18
// measurements used; with nodes < n the transport models a cluster
// whose co-located sessions multiplex one link per peer, the deployment
// shape the agreement service is growing toward.
//
// Per-link frame layout (after a one-time uvarint node-id handshake by
// the dialing side of each stream):
//
//	uvarint frame length (bytes that follow)
//	uvarint round
//	bitmap  ceil(S*R/8) bytes; bit si*R+qi (LSB first) = the round-r
//	        message of the node's si-th process to the peer's qi-th
//	        process is delivered (0 = drop tombstone)
//	then, for each sender si with at least one bit set:
//	        uvarint payload length, payload bytes
type TCPMesh struct {
	n, m  int
	pol   Policy
	opts  TCPOpts
	stall bool // chaos mode: lossy mailboxes, deadline closure, reconnect
	ready atomic.Bool
	nodes []*meshNode
	lns   []net.Listener
	addrs []string
	done  chan struct{}

	mu        sync.Mutex
	claimed   []bool
	closed    bool
	conns     []net.Conn
	deadNodes []bool
	setupErr  error
}

// TCPOpts tunes a TCP mesh beyond the lockstep-exact defaults. The zero
// value is the classic reliable mesh: a missing frame blocks Gather
// until it arrives or the transport fails — the right contract for
// differential suites, and a wedge under a crashed peer.
type TCPOpts struct {
	// Stall enables chaos mode when Stall.RoundTimeout > 0: receive
	// mailboxes switch to the lossy deadline+grace closure the UDP mesh
	// uses (a dead peer costs a deadline, not the run), the stall
	// detector turns consecutive silence into a terminal death verdict
	// (Stall.DeadAfter), and broken streams are redialed with jittered
	// exponential backoff up to Stall.MaxReconnect before the peer node
	// is declared dead. Off by default so lockstep-exact suites keep the
	// reliable contract.
	Stall StallOpts
}

// nodeLo returns the first process hosted by node i (processes are
// partitioned contiguously and evenly: node i hosts [nodeLo(i),
// nodeLo(i+1))).
func (t *TCPMesh) nodeLo(i int) int { return i * t.n / t.m }

// nodeOf returns the node hosting process p.
func (t *TCPMesh) nodeOf(p int) int {
	// Inverse of nodeLo's balanced split; the scan is O(m) but only runs
	// at Endpoint claim time.
	for i := 0; i < t.m; i++ {
		if p >= t.nodeLo(i) && p < t.nodeLo(i+1) {
			return i
		}
	}
	return -1
}

// NewTCPLoopback returns the fully distributed mesh — one node per
// process, every listener bound to 127.0.0.1 on kernel-assigned ports —
// the same deployment shape (and constructor) as the v1 transport.
func NewTCPLoopback(n int, pol Policy) (*TCPMesh, error) {
	return NewTCPMeshLoopback(n, n, pol)
}

// NewTCPMeshLoopback returns a TCP mesh transport for n processes
// grouped onto `nodes` loopback nodes. The full mesh — listeners,
// streams, handshakes, reader and writer loops — is established before
// the constructor returns, so Endpoint never dials.
func NewTCPMeshLoopback(n, nodes int, pol Policy) (*TCPMesh, error) {
	return NewTCPMeshLoopbackOpts(n, nodes, pol, TCPOpts{})
}

// NewTCPMeshLoopbackOpts is NewTCPMeshLoopback with chaos knobs (see
// TCPOpts).
func NewTCPMeshLoopbackOpts(n, nodes int, pol Policy, opts TCPOpts) (*TCPMesh, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: n = %d, need >= 1", n)
	}
	if nodes < 1 || nodes > n {
		return nil, fmt.Errorf("transport: nodes = %d, need 1 <= nodes <= n = %d", nodes, n)
	}
	if pol == nil {
		pol = Perfect{}
	}
	opts.Stall = opts.Stall.withDefaults()
	t := &TCPMesh{
		n:       n,
		m:       nodes,
		pol:     pol,
		opts:    opts,
		stall:   opts.Stall.RoundTimeout > 0,
		claimed: make([]bool, n),
		done:    make(chan struct{}),
	}
	for i := 0; i < t.m; i++ {
		lo, hi := t.nodeLo(i), t.nodeLo(i+1)
		nd := &meshNode{t: t, id: i, lo: lo, hi: hi}
		nd.cond.L = &nd.mu
		nd.boxes = make([]mailbox, hi-lo)
		for j := range nd.boxes {
			if t.stall {
				nd.boxes[j] = newLossyBuffer(n)
			} else {
				nd.boxes[j] = newRoundBuffer(n)
			}
		}
		for r := range nd.pending {
			nd.pending[r] = make([]*refBuf, hi-lo)
		}
		nd.conns = make([]net.Conn, t.m)
		nd.reconnecting = make([]bool, t.m)
		t.nodes = append(t.nodes, nd)
	}
	if t.m == 1 {
		return t, nil // single node: every delivery is in-memory
	}

	for i := 0; i < t.m; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen node %d: %w", i, err)
		}
		t.lns = append(t.lns, ln)
		t.addrs = append(t.addrs, ln.Addr().String())
	}
	var accepts sync.WaitGroup
	accepts.Add(t.m * (t.m - 1) / 2)
	for i := 0; i < t.m; i++ {
		go t.acceptLoop(t.nodes[i], t.lns[i], &accepts)
	}
	// Node i dials every higher-numbered node; the accept side learns
	// the dialer from the handshake.
	for i := 0; i < t.m; i++ {
		for j := i + 1; j < t.m; j++ {
			c, err := net.Dial("tcp", t.addrs[j])
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("transport: node %d dial node %d: %w", i, j, err)
			}
			t.track(c)
			var hello [binary.MaxVarintLen64]byte
			if _, err := c.Write(hello[:binary.PutUvarint(hello[:], uint64(i))]); err != nil {
				t.Close()
				return nil, fmt.Errorf("transport: node %d handshake to node %d: %w", i, j, err)
			}
			t.nodes[i].conns[j] = c
			go t.readLoop(t.nodes[i], j, c)
		}
	}
	accepts.Wait()
	t.ready.Store(true) // accept handshakes from here on are reconnects
	t.mu.Lock()
	err := t.setupErr
	t.mu.Unlock()
	if err != nil {
		t.Close()
		return nil, err
	}
	for i := 0; i < t.m; i++ {
		go t.nodes[i].writeLoop()
	}
	return t, nil
}

// MarkDead implements DeadMarker: process p's missing deliveries from
// round fromRound onward become permanent nil tombstones at every
// hosted mailbox of every node, and p's own node's writer stops waiting
// for its contributions (its frame slots ship as drop tombstones). This
// single call patches the whole mesh because the loopback mesh is one
// object; on a real multi-host deployment each host applies the same
// verdict to its local view when its own detector fires.
func (t *TCPMesh) MarkDead(p, fromRound int) {
	if p < 0 || p >= t.n {
		return
	}
	for _, nd := range t.nodes {
		for _, b := range nd.boxes {
			b.markDead(p, fromRound)
		}
	}
	nd := t.nodes[t.nodeOf(p)]
	nd.markDeadLocal(p-nd.lo, fromRound)
}

// markNodeDead is the terminal verdict of the stall detector or an
// exhausted reconnect budget: every process hosted by the peer node is
// declared dead from now on. Idempotent.
func (t *TCPMesh) markNodeDead(peer int) {
	t.mu.Lock()
	if t.closed || (t.deadNodes != nil && t.deadNodes[peer]) {
		t.mu.Unlock()
		return
	}
	if t.deadNodes == nil {
		t.deadNodes = make([]bool, t.m)
	}
	t.deadNodes[peer] = true
	t.mu.Unlock()
	lo, hi := t.nodeLo(peer), t.nodeLo(peer+1)
	if c := t.opts.Stall.Counters; c != nil {
		c.Dead.Add(int64(hi - lo))
	}
	for p := lo; p < hi; p++ {
		t.MarkDead(p, 1)
	}
}

// N implements Transport.
func (t *TCPMesh) N() int { return t.n }

// Nodes returns the node count of the mesh.
func (t *TCPMesh) Nodes() int { return t.m }

// Addrs returns the node listen addresses, indexed by node id (empty
// for a single-node mesh, which never opens a socket).
func (t *TCPMesh) Addrs() []string { return append([]string(nil), t.addrs...) }

// Endpoint implements Transport.
func (t *TCPMesh) Endpoint(self int) (Endpoint, error) {
	if self < 0 || self >= t.n {
		return nil, fmt.Errorf("transport: endpoint id %d out of range [0,%d)", self, t.n)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if t.claimed[self] {
		return nil, fmt.Errorf("transport: endpoint %d already claimed", self)
	}
	t.claimed[self] = true
	ep := &meshEndpoint{nd: t.nodes[t.nodeOf(self)], self: self, drops: make([]bool, t.n)}
	if t.stall {
		ep.stall = newStallDetector(t.n, t.opts.Stall.DeadAfter, t.opts.Stall.Counters, func(q int) {
			t.markNodeDead(t.nodeOf(q))
		})
	}
	return ep, nil
}

// Close implements Transport: it tears down listeners, streams and
// loops, and wakes every parked Gather with ErrClosed. Idempotent and
// safe from any goroutine.
func (t *TCPMesh) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = nil
	t.mu.Unlock()
	close(t.done)
	for _, ln := range t.lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, nd := range t.nodes {
		nd.mu.Lock()
		nd.cond.Broadcast() // writer loop re-checks t.done and exits
		nd.mu.Unlock()
		for _, b := range nd.boxes {
			b.close()
		}
	}
	return nil
}

// track registers a stream for teardown; a stream arriving after
// teardown (an accept racing Close) is closed on the spot.
func (t *TCPMesh) track(c net.Conn) bool {
	t.mu.Lock()
	closed := t.closed
	if !closed {
		t.conns = append(t.conns, c)
	}
	t.mu.Unlock()
	if closed {
		c.Close()
	}
	return !closed
}

func (t *TCPMesh) failSetup(err error) {
	t.mu.Lock()
	if t.setupErr == nil {
		t.setupErr = err
	}
	t.mu.Unlock()
}

// acceptLoop accepts the streams dialed by lower-numbered nodes and
// binds each to its peer via the handshake. After setup, in chaos mode,
// it also accepts replacement streams from reconnecting peers: the
// replacement closes whatever stream it supersedes and takes over the
// peer's slot.
func (t *TCPMesh) acceptLoop(nd *meshNode, ln net.Listener, accepts *sync.WaitGroup) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		if !t.track(c) {
			return
		}
		go func() {
			if !t.ready.Load() {
				defer accepts.Done()
			}
			c.SetReadDeadline(time.Now().Add(30 * time.Second))
			from64, err := binary.ReadUvarint(oneByteReader{c})
			c.SetReadDeadline(time.Time{})
			if err != nil {
				t.failSetup(fmt.Errorf("transport: node %d handshake read: %w", nd.id, err))
				return
			}
			from := int(from64)
			var old net.Conn
			nd.mu.Lock()
			switch {
			case from64 >= uint64(nd.id):
				err = fmt.Errorf("transport: node %d got handshake from unexpected node %d", nd.id, from64)
			case nd.conns[from] != nil && !t.stall:
				err = fmt.Errorf("transport: node %d got a second stream claiming node %d", nd.id, from)
			default:
				old = nd.conns[from]
				nd.conns[from] = c
				nd.reconnecting[from] = false
			}
			nd.mu.Unlock()
			if err != nil {
				t.failSetup(err)
				return
			}
			if old != nil {
				old.Close()
			}
			go t.readLoop(nd, from, c)
		}()
	}
}

// streamBroken handles a read or write failure on the stream to peer in
// chaos mode: the first notice (reader and writer can both hit it) tears
// the stream out of the conn table and starts recovery — the original
// dialer side redials with backoff, the accept side waits out the
// dialer's budget for a replacement — and an exhausted budget turns into
// the terminal peer-dead verdict.
func (t *TCPMesh) streamBroken(nd *meshNode, peer int, c net.Conn) {
	if closed(t.done) {
		return
	}
	nd.mu.Lock()
	if nd.conns[peer] != c {
		// A replacement (or a second notice) already took over.
		nd.mu.Unlock()
		return
	}
	nd.conns[peer] = nil
	already := nd.reconnecting[peer]
	nd.reconnecting[peer] = true
	nd.mu.Unlock()
	c.Close()
	if already {
		return
	}
	switch {
	case t.opts.Stall.MaxReconnect <= 0:
		t.markNodeDead(peer)
	case nd.id < peer:
		go t.redial(nd, peer)
	default:
		go t.awaitReplacement(nd, peer)
	}
}

// redial re-establishes the stream this node originally dialed, with
// jittered exponential backoff, up to the reconnect budget. Success
// installs the new stream for both loops; exhaustion is the terminal
// peer-dead verdict.
func (t *TCPMesh) redial(nd *meshNode, peer int) {
	o := t.opts.Stall
	for attempt := 1; attempt <= o.MaxReconnect; attempt++ {
		timer := time.NewTimer(o.backoff(nd.id, peer, attempt))
		select {
		case <-t.done:
			timer.Stop()
			return
		case <-timer.C:
		}
		if o.Counters != nil {
			o.Counters.Retries.Add(1)
		}
		c, err := net.DialTimeout("tcp", t.addrs[peer], time.Second)
		if err != nil {
			continue
		}
		var hello [binary.MaxVarintLen64]byte
		if _, err := c.Write(hello[:binary.PutUvarint(hello[:], uint64(nd.id))]); err != nil {
			c.Close()
			continue
		}
		if !t.track(c) {
			return
		}
		nd.mu.Lock()
		nd.conns[peer] = c
		nd.reconnecting[peer] = false
		nd.mu.Unlock()
		go t.readLoop(nd, peer, c)
		return
	}
	t.markNodeDead(peer)
}

// awaitReplacement is the accept side of stream recovery: it gives the
// dialer its full backoff budget (plus dial slack) to show up with a
// replacement stream, then issues the peer-dead verdict if none did.
func (t *TCPMesh) awaitReplacement(nd *meshNode, peer int) {
	o := t.opts.Stall
	budget := time.Duration(o.MaxReconnect)*(o.ReconnectMax+o.ReconnectMax/2+time.Second) + time.Second
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case <-t.done:
		return
	case <-timer.C:
	}
	nd.mu.Lock()
	gone := nd.reconnecting[peer]
	nd.mu.Unlock()
	if gone {
		t.markNodeDead(peer)
	}
}

// oneByteReader adapts a net.Conn for ReadUvarint without buffering —
// the handshake must not swallow the first frame's bytes.
type oneByteReader struct{ c net.Conn }

func (r oneByteReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(r.c, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// meshNode is one event-loop domain of the mesh: the processes it
// hosts, their receive mailboxes, the outbound round-aggregation state
// its writer loop consumes, and one stream per peer node.
type meshNode struct {
	t      *TCPMesh
	id     int
	lo, hi int       // hosted processes [lo, hi)
	boxes  []mailbox // per hosted process (roundBuffer, or lossyBuffer in chaos mode)

	mu           sync.Mutex
	cond         sync.Cond
	pending      [window][]*refBuf // [r%window][local sender] round contributions
	pcount       [window]int
	conns        []net.Conn // by peer node id; writes owned by the writer loop
	deadFrom     []int      // per local sender: first dead round (0 = alive), lazily allocated
	reconnecting []bool     // per peer node: stream down, replacement pending
}

func (nd *meshNode) localN() int { return nd.hi - nd.lo }

// liveTargetLocked is the number of round-r contributions the writer
// loop must wait for: the hosted senders not yet declared dead for r.
func (nd *meshNode) liveTargetLocked(r int) int {
	target := nd.localN()
	if nd.deadFrom != nil {
		for _, f := range nd.deadFrom {
			if f != 0 && f <= r {
				target--
			}
		}
	}
	return target
}

// markDeadLocal records a hosted sender's death for the writer loop: the
// writer stops waiting for its contributions from fromRound onward and
// ships its frame slots as drop tombstones.
func (nd *meshNode) markDeadLocal(local, fromRound int) {
	if fromRound < 1 {
		fromRound = 1
	}
	nd.mu.Lock()
	if nd.deadFrom == nil {
		nd.deadFrom = make([]int, nd.localN())
	}
	if nd.deadFrom[local] == 0 || nd.deadFrom[local] > fromRound {
		nd.deadFrom[local] = fromRound
		nd.cond.Broadcast()
	}
	nd.mu.Unlock()
}

// contribute hands a local sender's round-r payload to the writer loop.
func (nd *meshNode) contribute(local, r int, rb *refBuf) error {
	nd.mu.Lock()
	if nd.pending[r%window][local] != nil {
		nd.mu.Unlock()
		return fmt.Errorf("transport: p%d round %d overran the writer window", nd.lo+local+1, r)
	}
	nd.pending[r%window][local] = rb
	nd.pcount[r%window]++
	if nd.pcount[r%window] >= nd.liveTargetLocked(r) {
		nd.cond.Broadcast()
	}
	nd.mu.Unlock()
	return nil
}

// writeLoop is the node's single outbound event loop: for each round in
// order, once every live hosted process has contributed its payload, it
// coalesces them into one v2 frame per peer node and writes each with a
// single writev. Send-side drops (the Policy) are folded into the
// frame's bitmap here; a dead local sender's slots ship as bitmap
// tombstones (its contribution is never waited for), and in chaos mode
// a broken stream turns the frame into loss instead of failing the run.
func (nd *meshNode) writeLoop() {
	t := nd.t
	_, perfect := t.pol.(Perfect)
	bufs := make([]*refBuf, nd.localN())
	var body []byte
	var hdr [2 * binary.MaxVarintLen64]byte
	// vecs is re-sliced from a fixed backing array every frame:
	// net.Buffers.WriteTo consumes the slice from the front, so
	// appending to vecs[:0] would reallocate per frame.
	var vecsArr [2][]byte
	var vecs net.Buffers
	for r := 1; ; r++ {
		nd.mu.Lock()
		for {
			target := nd.liveTargetLocked(r)
			if target == 0 {
				// The whole node is dead. Its receivers' slots are already
				// pre-filled mesh-wide by the death verdict; nothing left
				// to ship, ever.
				nd.mu.Unlock()
				return
			}
			if nd.pcount[r%window] >= target || closed(t.done) {
				break
			}
			nd.cond.Wait()
		}
		if closed(t.done) {
			nd.mu.Unlock()
			return
		}
		copy(bufs, nd.pending[r%window])
		for i := range nd.pending[r%window] {
			nd.pending[r%window][i] = nil
		}
		nd.pcount[r%window] = 0
		nd.mu.Unlock()

		failed := false
		for j := 0; j < t.m && !closed(t.done) && !failed; j++ {
			if j == nd.id {
				continue
			}
			conn := nd.conns[j]
			if t.stall {
				nd.mu.Lock()
				conn = nd.conns[j]
				nd.mu.Unlock()
				if conn == nil {
					continue // stream down: this round's frame is loss
				}
			}
			peerLo, peerHi := t.nodeLo(j), t.nodeLo(j+1)
			rcv := peerHi - peerLo
			body = binary.AppendUvarint(body[:0], uint64(r))
			// Drop bitmap over the S x R link matrix of this node link,
			// zero-extended byte-wise so the buffer's capacity is reused
			// across frames instead of allocating a temp per frame.
			bitOff := len(body)
			for i := (nd.localN()*rcv + 7) / 8; i > 0; i-- {
				body = append(body, 0)
			}
			bitmap := body[bitOff:]
			for si := 0; si < nd.localN(); si++ {
				if bufs[si] == nil {
					continue // dead sender: all its bits stay tombstones
				}
				any := false
				for qi := 0; qi < rcv; qi++ {
					if perfect || t.pol.Deliver(r, nd.lo+si, peerLo+qi) {
						bit := si*rcv + qi
						bitmap[bit>>3] |= 1 << (bit & 7)
						any = true
					}
				}
				if any {
					body = binary.AppendUvarint(body, uint64(len(bufs[si].b)))
					body = append(body, bufs[si].b...)
					bitmap = body[bitOff : bitOff+(nd.localN()*rcv+7)/8]
				}
			}
			n := binary.PutUvarint(hdr[:], uint64(len(body)))
			vecsArr[0], vecsArr[1] = hdr[:n], body
			vecs = net.Buffers(vecsArr[:])
			if _, err := vecs.WriteTo(conn); err != nil {
				if t.stall {
					t.streamBroken(nd, j, conn)
				} else {
					nd.failLocal(fmt.Errorf("transport: node %d write to node %d: %w", nd.id, j, err))
					failed = true
				}
			}
		}
		for _, rb := range bufs {
			if rb != nil {
				rb.release()
			}
		}
		if failed || closed(t.done) {
			return
		}
	}
}

// failLocal surfaces a wire failure to every process this node hosts,
// unless the transport is already closing (teardown makes writes and
// reads fail by design).
func (nd *meshNode) failLocal(err error) {
	if closed(nd.t.done) {
		return
	}
	for _, b := range nd.boxes {
		b.fail(err)
	}
}

// readLoop is the inbound half of one node link: it parses the peer's
// coalesced round frames and deposits each sender's payload (shared,
// reference-counted) or drop tombstone straight into the hosted
// receivers' mailboxes. A clean EOF is the normal end of a peer's run
// in reliable mode; in chaos mode any stream end while the transport is
// live routes to streamBroken for reconnect, and forward round gaps are
// tolerated (the frames a dead stream swallowed are loss, closed by the
// receive deadline).
func (t *TCPMesh) readLoop(nd *meshNode, peer int, c net.Conn) {
	peerLo, peerHi := t.nodeLo(peer), t.nodeLo(peer+1)
	snd, rcv := peerHi-peerLo, nd.localN()
	bitmapLen := (snd*rcv + 7) / 8
	frameLimit := uint64(binary.MaxVarintLen64 + bitmapLen + snd*(binary.MaxVarintLen64+MaxPayload))
	br := bufio.NewReaderSize(c, 1<<16)
	var body []byte
	prevRound := 0
	fail := func(err error) {
		if t.stall {
			// Chaos mode: a broken or corrupt stream is a recoverable
			// transport event, not a run failure.
			t.streamBroken(nd, peer, c)
			return
		}
		nd.failLocal(fmt.Errorf("transport: node %d read from node %d: %w", nd.id, peer, err))
	}
	for {
		flen, err := binary.ReadUvarint(br)
		if err != nil {
			if t.stall || !errors.Is(err, io.EOF) {
				fail(err)
			}
			return
		}
		if flen > frameLimit {
			fail(fmt.Errorf("%d-byte frame exceeds limit %d", flen, frameLimit))
			return
		}
		if cap(body) < int(flen) {
			body = make([]byte, flen)
		}
		body = body[:flen]
		if _, err := io.ReadFull(br, body); err != nil {
			fail(err)
			return
		}
		round64, k := binary.Uvarint(body)
		badRound := k <= 0 || int(round64) != prevRound+1
		if badRound && t.stall && k > 0 && int(round64) > prevRound {
			badRound = false // forward gap: the missing rounds were lost with the old stream
		}
		if badRound {
			fail(fmt.Errorf("round %d frame after round %d", round64, prevRound))
			return
		}
		prevRound = int(round64)
		rest := body[k:]
		if len(rest) < bitmapLen {
			fail(fmt.Errorf("truncated bitmap"))
			return
		}
		bitmap := rest[:bitmapLen]
		rest = rest[bitmapLen:]
		ok := true
		for si := 0; si < snd && ok; si++ {
			delivered := 0
			for qi := 0; qi < rcv; qi++ {
				bit := si*rcv + qi
				if bitmap[bit>>3]&(1<<(bit&7)) != 0 {
					delivered++
				}
			}
			if delivered == 0 {
				for qi := 0; qi < rcv; qi++ {
					nd.boxes[qi].deposit(peerLo+si, prevRound, nil, nil)
				}
				continue
			}
			plen, k := binary.Uvarint(rest)
			if k <= 0 || plen > MaxPayload || uint64(len(rest)-k) < plen {
				fail(fmt.Errorf("bad payload length for sender p%d", peerLo+si+1))
				ok = false
				break
			}
			rb := newRefBuf(rest[k:k+int(plen)], int32(delivered))
			rest = rest[k+int(plen):]
			for qi := 0; qi < rcv; qi++ {
				bit := si*rcv + qi
				if bitmap[bit>>3]&(1<<(bit&7)) != 0 {
					nd.boxes[qi].deposit(peerLo+si, prevRound, rb.b, rb)
				} else {
					nd.boxes[qi].deposit(peerLo+si, prevRound, nil, nil)
				}
			}
		}
		if !ok {
			return
		}
		if len(rest) != 0 {
			fail(fmt.Errorf("%d trailing bytes in round-%d frame", len(rest), prevRound))
			return
		}
	}
}

// closed reports whether the done channel is closed without blocking.
func closed(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// meshEndpoint is process self's port onto a TCP mesh.
type meshEndpoint struct {
	nd    *meshNode
	self  int
	drops []bool
	stall *stallDetector // nil outside chaos mode
}

// Self implements Endpoint.
func (ep *meshEndpoint) Self() int { return ep.self }

// N implements Endpoint.
func (ep *meshEndpoint) N() int { return ep.nd.t.n }

// Broadcast implements Endpoint. Co-hosted receivers get the pooled
// payload deposited directly (no socket); one extra reference goes to
// the node's writer loop, which coalesces all local senders' round-r
// payloads into one frame per peer node. Remote drop decisions are the
// writer's (folded into the frame bitmap); local drops are applied
// here, as tombstone deposits.
func (ep *meshEndpoint) Broadcast(r int, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("transport: payload %d bytes exceeds MaxPayload %d", len(payload), MaxPayload)
	}
	nd := ep.nd
	t := nd.t
	if closed(t.done) {
		return ErrClosed
	}
	delivered := int32(0)
	for to := nd.lo; to < nd.hi; to++ {
		drop := to != ep.self && !t.pol.Deliver(r, ep.self, to)
		ep.drops[to] = drop
		if !drop {
			delivered++
		}
	}
	if t.m > 1 {
		delivered++ // the writer loop's reference
	}
	rb := newRefBuf(payload, delivered)
	for to := nd.lo; to < nd.hi; to++ {
		if ep.drops[to] {
			nd.boxes[to-nd.lo].deposit(ep.self, r, nil, nil)
		} else {
			nd.boxes[to-nd.lo].deposit(ep.self, r, rb.b, rb)
		}
	}
	if t.m > 1 {
		return nd.contribute(ep.self-nd.lo, r, rb)
	}
	return nil
}

// Gather implements Endpoint. In chaos mode the await closes by
// deadline+grace and the missed-sender list feeds the stall detector.
func (ep *meshEndpoint) Gather(r int, into [][]byte) ([][]byte, error) {
	o := ep.nd.t.opts.Stall
	recv, missed, err := ep.nd.boxes[ep.self-ep.nd.lo].await(r, into, o.RoundTimeout, o.Grace)
	if err != nil {
		return nil, err
	}
	ep.stall.observe(r, missed)
	if err := applyDelays(ep.nd.t.pol, r, ep.self, recv, ep.nd.t.done); err != nil {
		return nil, err
	}
	return recv, nil
}

// Close implements Endpoint: mesh endpoints share the transport's
// lifetime (the streams are per node pair, not per process), so closing
// one tears down the whole mesh. Idempotent.
func (ep *meshEndpoint) Close() error { return ep.nd.t.Close() }
