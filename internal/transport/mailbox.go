package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// window is the number of rounds a receiver keeps in flight. The round
// loop needs at most three consecutive rounds live at once — round r-1
// (gathered, payloads still valid until the next Gather call), round r
// (filling), and round r+1 (pipelined sends racing ahead of the
// controller barrier; bounded-lookahead caps senders at one round past
// the lowest un-gathered round). Four slots leave one round of slack so
// a violated contract is detected as an error instead of corrupting a
// live slot.
const window = 4

// refBuf is a pooled, reference-counted payload buffer. One broadcast
// payload is copied into a refBuf exactly once and shared read-only by
// every receiver it is delivered to (plus, on the TCP mesh, the writer
// loop that serializes it onto the wire); the last release returns it
// to the pool. Buffers abandoned on teardown paths are deliberately not
// recycled — the GC reclaims them — so a receiver still reading a
// payload during Close can never see the buffer reused.
type refBuf struct {
	b    []byte
	refs atomic.Int32
}

var bufPool = sync.Pool{New: func() any { return new(refBuf) }}

// newRefBuf copies payload into a pooled buffer with the given initial
// reference count.
func newRefBuf(payload []byte, refs int32) *refBuf {
	rb := bufPool.Get().(*refBuf)
	rb.b = append(rb.b[:0], payload...)
	rb.refs.Store(refs)
	return rb
}

// release drops one reference; the last one returns the buffer to the
// pool.
func (rb *refBuf) release() {
	if rb.refs.Add(-1) == 0 {
		bufPool.Put(rb)
	}
}

// slot is one sender's round-r delivery at one receiver: a payload view
// (nil for a drop tombstone — the link was cut but the round still
// closes) plus the backing buffer to release when the round is recycled.
type slot struct {
	payload []byte
	buf     *refBuf
	present bool
}

// mailbox is the receive-side contract shared by the reliable
// (roundBuffer) and best-effort (lossyBuffer) mailboxes, so a transport
// can pick its closure discipline per run (the TCP mesh runs reliable
// mailboxes in lockstep-exact mode and lossy ones under chaos). The
// deadline and grace arguments are ignored by the reliable mailbox, and
// the missed result — senders a deadline closure gave up on — is always
// nil there: a reliable round closes only when every sender (or its
// declared death) is accounted for.
type mailbox interface {
	deposit(from, r int, payload []byte, buf *refBuf)
	await(r int, into [][]byte, deadline, grace time.Duration) ([][]byte, []int, error)
	markDead(from, fromRound int)
	fail(err error)
	close()
}

// roundBuffer is a receiver's mailbox: a fixed ring of `window` round
// slots, each holding one delivery per sender. It replaces the per-link
// channel pairs of the original transports — senders (or reader loops)
// deposit without ever blocking, and the receiving process parks on a
// single condition variable that trips exactly once per round, when the
// last of the n frames lands. All bounds come from the transport
// contract: deposits beyond the window or duplicate (sender, round)
// deliveries are protocol violations and fail the endpoint.
type roundBuffer struct {
	mu   sync.Mutex
	cond sync.Cond
	n    int

	gathered int // highest round already handed to the process
	released int // highest round whose buffers were recycled
	count    [window]int
	slots    [window][]slot
	dead     []int // per sender: first dead round (0 = alive), lazily allocated

	err    error
	closed bool
}

func newRoundBuffer(n int) *roundBuffer {
	b := &roundBuffer{n: n}
	b.cond.L = &b.mu
	for i := range b.slots {
		b.slots[i] = make([]slot, n)
	}
	return b
}

// deposit delivers sender from's round-r frame (payload nil = drop
// tombstone). It never blocks; buf, when non-nil, must already carry
// this receiver's reference.
func (b *roundBuffer) deposit(from, r int, payload []byte, buf *refBuf) {
	b.mu.Lock()
	if b.closed || b.err != nil {
		b.mu.Unlock()
		return
	}
	if b.dead != nil && b.dead[from] != 0 && r >= b.dead[from] {
		// A frame from a declared-dead sender (its slot was pre-filled by
		// markDead): in-flight bytes racing the death verdict are dropped,
		// not a protocol violation.
		b.mu.Unlock()
		if buf != nil {
			buf.release()
		}
		return
	}
	if r <= b.released || r > b.released+window {
		b.failLocked(fmt.Errorf("transport: round-%d frame from p%d outside the receive window (%d, %d]",
			r, from+1, b.released, b.released+window))
		b.mu.Unlock()
		return
	}
	s := &b.slots[r%window][from]
	if s.present {
		b.failLocked(fmt.Errorf("transport: duplicate round-%d frame from p%d", r, from+1))
		b.mu.Unlock()
		return
	}
	s.payload, s.buf, s.present = payload, buf, true
	b.count[r%window]++
	if b.count[r%window] == b.n {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// await blocks until every sender's round-r frame has arrived and fills
// into with the payload views (nil entries for tombstones). Rounds must
// be awaited in order; round r-1's buffers are recycled on entry (the
// caller's validity contract: payloads live until the next Gather).
// The deadline and grace arguments of the mailbox contract are ignored —
// a reliable round closes only by count — and missed is always nil.
func (b *roundBuffer) await(r int, into [][]byte, _, _ time.Duration) ([][]byte, []int, error) {
	if cap(into) < b.n {
		into = make([][]byte, b.n)
	}
	into = into[:b.n]
	b.mu.Lock()
	defer b.mu.Unlock()
	if r != b.gathered+1 {
		err := fmt.Errorf("transport: Gather(%d) after round %d (rounds must be gathered in order)", r, b.gathered)
		b.failLocked(err)
		return nil, nil, err
	}
	b.releaseUpToLocked(r - 1)
	for b.count[r%window] < b.n && b.err == nil && !b.closed {
		b.cond.Wait()
	}
	if b.err != nil {
		return nil, nil, b.err
	}
	if b.closed {
		return nil, nil, ErrClosed
	}
	b.gathered = r
	for q, s := range b.slots[r%window] {
		into[q] = s.payload
	}
	return into, nil, nil
}

// markDead declares sender `from` dead from round fromRound onward
// (fromRound <= 1 means from the beginning): its missing deliveries for
// every affected in-window round are pre-filled as nil payloads so the
// rounds close by count, future rounds are pre-filled as their slots
// recycle, and any frame from it still in flight is silently dropped.
// This is what lets the reliable mailbox survive a crashed sender
// without a deadline: absence is converted to an explicit, permanent
// tombstone the moment the death verdict lands.
func (b *roundBuffer) markDead(from, fromRound int) {
	if fromRound < 1 {
		fromRound = 1
	}
	b.mu.Lock()
	if b.closed || b.err != nil || (b.dead != nil && b.dead[from] != 0 && b.dead[from] <= fromRound) {
		b.mu.Unlock()
		return
	}
	if b.dead == nil {
		b.dead = make([]int, b.n)
	}
	b.dead[from] = fromRound
	for rr := b.released + 1; rr <= b.released+window; rr++ {
		if rr < fromRound {
			continue
		}
		if s := &b.slots[rr%window][from]; !s.present {
			s.present = true
			b.count[rr%window]++
		}
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// releaseUpToLocked recycles every round up to and including r. A
// recycled slot next serves round rr+window, so dead senders' entries
// are pre-filled here — death is permanent.
func (b *roundBuffer) releaseUpToLocked(r int) {
	for rr := b.released + 1; rr <= r; rr++ {
		ss := b.slots[rr%window]
		for i := range ss {
			if ss[i].buf != nil {
				ss[i].buf.release()
			}
			ss[i] = slot{}
		}
		b.count[rr%window] = 0
		if b.dead != nil {
			for i := range ss {
				if b.dead[i] != 0 && rr+window >= b.dead[i] {
					ss[i].present = true
					b.count[rr%window]++
				}
			}
		}
	}
	if r > b.released {
		b.released = r
	}
}

// fail poisons the mailbox: the pending and all future awaits return
// err. Used by reader loops to surface stream failures.
func (b *roundBuffer) fail(err error) {
	b.mu.Lock()
	b.failLocked(err)
	b.mu.Unlock()
}

func (b *roundBuffer) failLocked(err error) {
	if b.err == nil && !b.closed {
		b.err = err
		b.cond.Broadcast()
	}
}

// close wakes any parked await with ErrClosed. In-flight buffers are
// dropped on the floor for the GC — recycling them here could hand a
// buffer a receiver is still reading back to a concurrent sender.
func (b *roundBuffer) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// applyDelays sleeps for the policy's slowest delivered link of round r
// (receive-side netem, semantically inert) — the same gating the
// original per-frame gather applied. The Perfect fast path skips the n
// policy calls per gather.
func applyDelays(pol Policy, r, self int, recv [][]byte, done <-chan struct{}) error {
	if _, perfect := pol.(Perfect); perfect {
		return nil
	}
	var maxDelay time.Duration
	for q, payload := range recv {
		if q == self || payload == nil {
			continue
		}
		if d := pol.Delay(r, q, self); d > maxDelay {
			maxDelay = d
		}
	}
	if maxDelay > 0 {
		select {
		case <-time.After(maxDelay):
		case <-done:
			return ErrClosed
		}
	}
	return nil
}
