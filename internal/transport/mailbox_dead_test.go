package transport

import (
	"bytes"
	"testing"
	"time"
)

// deadBoxes returns both mailbox implementations: the markDead contract
// — pre-fill affected in-window rounds, persist across slot recycling,
// silently drop in-flight frames from the dead sender — is shared, so
// every scenario runs against the reliable and the lossy buffer.
func deadBoxes() map[string]func(n int) mailbox {
	return map[string]func(n int) mailbox{
		"round": func(n int) mailbox { return newRoundBuffer(n) },
		"lossy": func(n int) mailbox { return newLossyBuffer(n) },
	}
}

// noDeadline keeps the lossy buffer from closing rounds on its own: any
// round that completes did so by count (or markDead pre-fill), never by
// a deadline burn. The reliable buffer ignores it either way.
const noDeadline = time.Hour

// awaitChecked runs await under a watchdog: a markDead bug on the
// reliable mailbox has no deadline to fall back on and would hang the
// test forever otherwise.
func awaitChecked(t *testing.T, b mailbox, r int) [][]byte {
	t.Helper()
	type result struct {
		recv   [][]byte
		missed []int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		recv, missed, err := b.await(r, nil, noDeadline, noDeadline)
		done <- result{recv, missed, err}
	}()
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("await(%d): %v", r, res.err)
		}
		if res.missed != nil {
			t.Fatalf("await(%d) reported missed senders %v; dead pre-fill must close by count", r, res.missed)
		}
		return res.recv
	case <-time.After(10 * time.Second):
		t.Fatalf("await(%d) still parked; dead sender's slot was not pre-filled", r)
		return nil
	}
}

// TestMarkDeadUnblocksParkedAwait parks an await on one missing sender
// and lands the death verdict from another goroutine: the round must
// close by count with a nil tombstone in the dead sender's slot and the
// live payloads intact.
func TestMarkDeadUnblocksParkedAwait(t *testing.T) {
	for name, mk := range deadBoxes() {
		t.Run(name, func(t *testing.T) {
			b := mk(3)
			b.deposit(0, 1, []byte("a"), nil)
			b.deposit(1, 1, []byte("b"), nil)
			go func() {
				time.Sleep(10 * time.Millisecond)
				b.markDead(2, 1)
			}()
			recv := awaitChecked(t, b, 1)
			if !bytes.Equal(recv[0], []byte("a")) || !bytes.Equal(recv[1], []byte("b")) {
				t.Errorf("live payloads corrupted: %q %q", recv[0], recv[1])
			}
			if recv[2] != nil {
				t.Errorf("dead sender delivered %q, want nil tombstone", recv[2])
			}
		})
	}
}

// TestMarkDeadPersistsAcrossRecycle drives three full window turnovers
// past a death verdict: every recycled slot must re-materialize the dead
// sender's tombstone, so no later round ever waits on (or hears from)
// the dead peer again.
func TestMarkDeadPersistsAcrossRecycle(t *testing.T) {
	for name, mk := range deadBoxes() {
		t.Run(name, func(t *testing.T) {
			b := mk(2)
			b.markDead(1, 1)
			for r := 1; r <= 3*window; r++ {
				payload := []byte{byte(r)}
				b.deposit(0, r, payload, nil)
				recv := awaitChecked(t, b, r)
				if !bytes.Equal(recv[0], payload) {
					t.Fatalf("round %d: live payload %v, want %v", r, recv[0], payload)
				}
				if recv[1] != nil {
					t.Fatalf("round %d: dead sender resurrected with %v", r, recv[1])
				}
			}
		})
	}
}

// TestMarkDeadDropsInFlightFrames pins the race between a death verdict
// and bytes already on the wire: frames from before the death round are
// delivered, frames at or after it are silently dropped — never a
// duplicate-delivery protocol violation, since the verdict pre-filled
// the slot — and the dropped frame's buffer is released.
func TestMarkDeadDropsInFlightFrames(t *testing.T) {
	for name, mk := range deadBoxes() {
		t.Run(name, func(t *testing.T) {
			b := mk(2)
			b.markDead(1, 2)
			b.deposit(1, 1, []byte("pre-crash"), nil) // before the death round: delivered
			late := newRefBuf([]byte("post-crash"), 1)
			b.deposit(1, 2, late.b, late) // at the death round: dropped
			if got := late.refs.Load(); got != 0 {
				t.Errorf("dropped in-flight frame holds %d references, want 0 (leaked buffer)", got)
			}
			for r := 1; r <= 2; r++ {
				b.deposit(0, r, []byte("live"), nil)
				recv := awaitChecked(t, b, r)
				switch {
				case r == 1 && !bytes.Equal(recv[1], []byte("pre-crash")):
					t.Errorf("round 1: pre-crash frame lost, got %v", recv[1])
				case r == 2 && recv[1] != nil:
					t.Errorf("round 2: in-flight frame from dead sender delivered: %q", recv[1])
				}
			}
		})
	}
}

// TestMarkDeadIsIdempotentAndMonotone re-issues verdicts: repeating one
// is a no-op, a later death round never weakens an earlier one, and an
// earlier round tightens it. None of this may double-count a slot or
// trip the duplicate-delivery check.
func TestMarkDeadIsIdempotentAndMonotone(t *testing.T) {
	for name, mk := range deadBoxes() {
		t.Run(name, func(t *testing.T) {
			b := mk(2)
			b.markDead(1, 3)
			b.markDead(1, 3) // repeat: no-op
			b.markDead(1, 4) // later round: must not resurrect rounds 3..
			b.markDead(1, 2) // earlier round: tightens the verdict
			for r := 1; r <= window+2; r++ {
				b.deposit(0, r, []byte("live"), nil)
				if r < 2 {
					b.deposit(1, r, []byte("dying"), nil)
				}
				recv := awaitChecked(t, b, r)
				if r >= 2 && recv[1] != nil {
					t.Fatalf("round %d: dead sender delivered %q", r, recv[1])
				}
				if r < 2 && recv[1] == nil {
					t.Fatalf("round %d: pre-death frame lost", r)
				}
			}
		})
	}
}
