package transport

import (
	"fmt"
	"sync"
	"time"
)

// lossyBuffer is the receive mailbox of a best-effort transport. It
// keeps roundBuffer's shape — a fixed ring of `window` round slots, one
// delivery per sender — but inverts its failure philosophy: where the
// reliable mailbox treats a missing or out-of-window frame as a protocol
// violation, the lossy mailbox treats absence as the network dropping a
// datagram. Concretely:
//
//   - Deposits outside the window, duplicates, and frames for rounds
//     already gathered are silently ignored (their buffer reference is
//     released): they are late or replayed datagrams, not bugs.
//   - await does not wait forever for the n-th sender. A round closes
//     when every sender is accounted for, or after a deadline followed
//     by grace extensions: once the deadline fires, the round gets one
//     grace window per burst of new arrivals, and closes the first time
//     a grace window passes with no progress. Senders still missing at
//     closure are recorded as nil payloads — to the process above, real
//     loss is indistinguishable from an injected-drop tombstone.
//
// Injected drops (Policy tombstones carried in the frame bitmap) still
// arrive as explicit nil deposits, so a round whose losses are all
// injected closes immediately — the deadline only pays for datagrams
// the network genuinely lost.
//
// Wake-ups use a 1-buffered pulse channel instead of roundBuffer's
// condition variable so await can select between arrivals and its
// round timer without polling. Deposits pulse only when they complete
// the awaited round: a partial arrival changes nothing a parked await
// could act on (the deadline+grace rule samples progress at timer
// fires, not at arrivals), and the skipped wake-park cycles are a
// measurable share of a fast round's budget.
type lossyBuffer struct {
	mu sync.Mutex
	n  int

	gathered int // highest round already handed to the process
	released int // highest round whose buffers were recycled
	awaiting int // round a parked await is blocked on (0 = none)
	count    [window]int
	slots    [window][]slot
	dead     []int // per sender: first dead round (0 = alive), lazily allocated
	missed   []int // senders the last deadline closure gave up on (scratch)

	ready chan struct{} // pulsed on every accepted deposit and state change
	timer *time.Timer   // round-closure timer, owned by the awaiting process

	err    error
	closed bool
}

func newLossyBuffer(n int) *lossyBuffer {
	b := &lossyBuffer{
		n:     n,
		ready: make(chan struct{}, 1),
		timer: time.NewTimer(time.Hour),
	}
	b.timer.Stop()
	for i := range b.slots {
		b.slots[i] = make([]slot, n)
	}
	return b
}

// pulseLocked nudges a parked await; a pulse already pending is enough.
func (b *lossyBuffer) pulseLocked() {
	select {
	case b.ready <- struct{}{}:
	default:
	}
}

// deposit delivers sender from's round-r frame (payload nil = drop
// tombstone). It never blocks. Late, duplicate, and out-of-window
// deliveries are dropped on the floor — on a datagram transport they
// are reordered or replayed packets, and absence is handled by await's
// closure rule anyway. buf, when non-nil, carries this receiver's
// reference and is released here if the deposit is ignored.
func (b *lossyBuffer) deposit(from, r int, payload []byte, buf *refBuf) {
	b.mu.Lock()
	if b.closed || b.err != nil {
		// Teardown: abandon the buffer to the GC (see roundBuffer.close).
		b.mu.Unlock()
		return
	}
	if b.dead != nil && b.dead[from] != 0 && r >= b.dead[from] {
		// Declared-dead sender: its slots are pre-filled, so any frame
		// racing the verdict is dropped like a late datagram.
		b.mu.Unlock()
		if buf != nil {
			buf.release()
		}
		return
	}
	if r <= b.released || r > b.released+window {
		b.mu.Unlock()
		if buf != nil {
			buf.release()
		}
		return
	}
	s := &b.slots[r%window][from]
	if s.present {
		b.mu.Unlock()
		if buf != nil {
			buf.release()
		}
		return
	}
	s.payload, s.buf, s.present = payload, buf, true
	b.count[r%window]++
	if r == b.awaiting && b.count[r%window] == b.n {
		b.pulseLocked()
	}
	b.mu.Unlock()
}

// closeRoundLocked seals round r: every sender still missing becomes a
// nil payload — absence is the drop signal. The senders given up on are
// recorded in b.missed for the stall detector: an injected drop arrives
// as an explicit tombstone and a dead sender's slot is pre-filled, so a
// missed entry here means the network (or a crashed peer) went silent.
func (b *lossyBuffer) closeRoundLocked(r int) {
	ss := b.slots[r%window]
	for i := range ss {
		if !ss[i].present {
			ss[i] = slot{present: true}
			b.missed = append(b.missed, i)
		}
	}
	b.count[r%window] = b.n
}

// await blocks until round r closes — all n senders accounted for, or
// the deadline+grace rule gives up on the missing ones — and fills
// `into` with the payload views (nil entries for drops, injected or
// real). Rounds must be awaited in order; round r-1's buffers are
// recycled on entry. The second result lists the senders the deadline
// closure gave up on (nil when the round closed by count); it is valid
// only until the next await call.
func (b *lossyBuffer) await(r int, into [][]byte, deadline, grace time.Duration) ([][]byte, []int, error) {
	if cap(into) < b.n {
		into = make([][]byte, b.n)
	}
	into = into[:b.n]
	b.mu.Lock()
	defer b.mu.Unlock()
	if r != b.gathered+1 {
		err := fmt.Errorf("transport: Gather(%d) after round %d (rounds must be gathered in order)", r, b.gathered)
		b.failLocked(err)
		return nil, nil, err
	}
	b.releaseUpToLocked(r - 1)
	b.missed = b.missed[:0]
	idx := r % window
	if b.count[idx] < b.n && b.err == nil && !b.closed {
		b.awaiting = r
		b.timer.Reset(deadline)
		inGrace := false
		seen := b.count[idx]
		for b.count[idx] < b.n && b.err == nil && !b.closed {
			b.mu.Unlock()
			select {
			case <-b.ready:
				b.mu.Lock()
			case <-b.timer.C:
				b.mu.Lock()
				if b.count[idx] >= b.n || b.err != nil || b.closed {
					continue
				}
				if inGrace && b.count[idx] == seen {
					b.closeRoundLocked(r)
					continue
				}
				inGrace = true
				seen = b.count[idx]
				b.timer.Reset(grace)
			}
		}
		b.awaiting = 0
		b.timer.Stop()
	}
	if b.err != nil {
		return nil, nil, b.err
	}
	if b.closed {
		return nil, nil, ErrClosed
	}
	b.gathered = r
	for q, s := range b.slots[idx] {
		into[q] = s.payload
	}
	missed := b.missed
	if len(missed) == 0 {
		missed = nil
	}
	return into, missed, nil
}

// markDead declares sender `from` dead from round fromRound onward
// (fromRound <= 1 means from the beginning): missing deliveries in every
// affected in-window round are pre-filled so rounds close by count
// instead of burning the deadline, future rounds are pre-filled as their
// slots recycle, and frames still in flight from it are dropped. This is
// the terminal stall verdict's effect: a dead peer is permanent loss the
// receiver no longer waits out.
func (b *lossyBuffer) markDead(from, fromRound int) {
	if fromRound < 1 {
		fromRound = 1
	}
	b.mu.Lock()
	if b.closed || b.err != nil || (b.dead != nil && b.dead[from] != 0 && b.dead[from] <= fromRound) {
		b.mu.Unlock()
		return
	}
	if b.dead == nil {
		b.dead = make([]int, b.n)
	}
	b.dead[from] = fromRound
	for rr := b.released + 1; rr <= b.released+window; rr++ {
		if rr < fromRound {
			continue
		}
		if s := &b.slots[rr%window][from]; !s.present {
			s.present = true
			b.count[rr%window]++
		}
	}
	b.pulseLocked()
	b.mu.Unlock()
}

// releaseUpToLocked recycles every round up to and including r. A
// recycled slot next serves round rr+window, so dead senders' entries
// are pre-filled here — death is permanent.
func (b *lossyBuffer) releaseUpToLocked(r int) {
	for rr := b.released + 1; rr <= r; rr++ {
		ss := b.slots[rr%window]
		for i := range ss {
			if ss[i].buf != nil {
				ss[i].buf.release()
			}
			ss[i] = slot{}
		}
		b.count[rr%window] = 0
		if b.dead != nil {
			for i := range ss {
				if b.dead[i] != 0 && rr+window >= b.dead[i] {
					ss[i].present = true
					b.count[rr%window]++
				}
			}
		}
	}
	if r > b.released {
		b.released = r
	}
}

// fail poisons the mailbox: the pending and all future awaits return
// err.
func (b *lossyBuffer) fail(err error) {
	b.mu.Lock()
	b.failLocked(err)
	b.mu.Unlock()
}

func (b *lossyBuffer) failLocked(err error) {
	if b.err == nil && !b.closed {
		b.err = err
		b.pulseLocked()
	}
}

// close wakes any parked await with ErrClosed. In-flight buffers are
// abandoned to the GC, for the same reason as roundBuffer.close.
func (b *lossyBuffer) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		b.pulseLocked()
	}
	b.mu.Unlock()
}
