package transport

// sendmmsg on linux/arm64 (the generic unistd.h number, matching
// syscall.SYS_SENDMMSG there; pinned as a literal so both sysnum files
// read the same way).
const sysSendmmsg = 269
