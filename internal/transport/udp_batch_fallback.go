//go:build !linux || (!amd64 && !arm64)

package transport

import (
	"errors"
	"net"
	"net/netip"
)

// Portable batch I/O: without sendmmsg/recvmmsg the batch degrades to
// one syscall per datagram, via the alloc-free AddrPort read/write
// calls. Semantics are identical to the Linux path — per-datagram send
// errors are loss, only a closed socket surfaces.

// udpSender is the writer loop's batch sender.
type udpSender struct {
	udpSendQueue
	conn  *net.UDPConn
	addrs []netip.AddrPort
}

func (s *udpSender) init(conn *net.UDPConn, addrs []netip.AddrPort) error {
	s.conn = conn
	s.addrs = addrs
	return nil
}

// flush ships the staged batch. Returns nil unless the socket itself is
// dead.
func (s *udpSender) flush() error {
	var fatal error
	for _, p := range s.pkts {
		if fatal != nil {
			break
		}
		if _, err := s.conn.WriteToUDPAddrPort(s.flat[p.start:p.end], s.addrs[p.dst]); err != nil {
			if errors.Is(err, net.ErrClosed) {
				fatal = err
			}
			// best-effort: any other error means this datagram is lost
		}
	}
	s.reset()
	return fatal
}

// udpReceiver is the reader loop's receiver.
type udpReceiver struct {
	conn *net.UDPConn
	buf  []byte
}

func (r *udpReceiver) init(conn *net.UDPConn, maxDatagram int) error {
	r.conn = conn
	r.buf = make([]byte, maxDatagram)
	return nil
}

// recv blocks for one datagram and hands it to the node. Returns an
// error only when the socket is closed.
func (r *udpReceiver) recv(nd *udpNode) error {
	n, from, err := r.conn.ReadFromUDPAddrPort(r.buf)
	if err != nil {
		return err
	}
	nd.handleDatagram(r.buf[:n], from)
	return nil
}
