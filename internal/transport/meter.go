package transport

import (
	"sync"

	"kset/internal/graph"
)

// HeardMeter records the realized communication graphs of a run: edge
// q->p in round r's graph means process p actually obtained process q's
// round-r payload at Gather time. On a reliable transport this is
// exactly the Policy's scheduled graph; on a lossy transport it is the
// scheduled graph minus whatever the network dropped — which is what
// makes the meter the ground truth for the loss-replay differential
// mode: the recorded graphs can be replayed through the sequential
// executor as a Schedule adversary.
//
// Recording happens per successful Gather, so the meter is complete for
// every round the run closed, and self-delivery (unconditional on every
// transport) guarantees each recorded graph carries all self-loops —
// the well-formedness the rounds model requires.
type HeardMeter struct {
	n  int
	mu sync.Mutex

	graphs []*graph.Digraph // graphs[r-1] = realized graph of round r
}

// NewHeardMeter returns a meter for an n-process run.
func NewHeardMeter(n int) *HeardMeter {
	return &HeardMeter{n: n}
}

// N returns the process count the meter was built for.
func (m *HeardMeter) N() int { return m.n }

// Record notes the heard-set of receiver self in round r: recv[q] is
// nil iff q's payload did not arrive (injected drop or real loss).
// Safe for concurrent use by all receivers of a round; each (r, self)
// pair must be recorded at most once per run.
func (m *HeardMeter) Record(r, self int, recv [][]byte) {
	m.mu.Lock()
	for len(m.graphs) < r {
		m.graphs = append(m.graphs, graph.NewFullDigraph(m.n))
	}
	g := m.graphs[r-1]
	for q, payload := range recv {
		if payload != nil {
			g.AddEdge(q, self)
		}
	}
	m.mu.Unlock()
}

// Rounds returns the number of rounds with at least one recorded
// gather.
func (m *HeardMeter) Rounds() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.graphs)
}

// Graphs returns the recorded per-round graphs (graphs[r-1] = round r).
// The returned slice is a snapshot; the graphs themselves are shared
// and must be treated as read-only once the run has finished.
func (m *HeardMeter) Graphs() []*graph.Digraph {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*graph.Digraph(nil), m.graphs...)
}

// Metered wraps any transport so every successful Gather records its
// realized heard-set on m. The UDP mesh meters natively (UDPOpts.Meter);
// this wrapper gives the in-proc and TCP transports the same ground
// truth, which is what the crash-replay differential mode feeds back
// through the sequential executor. Death verdicts pass through when the
// underlying transport supports them.
func Metered(tr Transport, m *HeardMeter) Transport {
	return &meteredTransport{tr: tr, m: m}
}

type meteredTransport struct {
	tr Transport
	m  *HeardMeter
}

func (t *meteredTransport) N() int { return t.tr.N() }

func (t *meteredTransport) Endpoint(self int) (Endpoint, error) {
	ep, err := t.tr.Endpoint(self)
	if err != nil {
		return nil, err
	}
	return &meteredEndpoint{Endpoint: ep, m: t.m}, nil
}

func (t *meteredTransport) Close() error { return t.tr.Close() }

// MarkDead implements DeadMarker by forwarding; a verdict on a transport
// without death support is dropped (the wrapped run then simply has no
// crash tolerance, same as the unwrapped one).
func (t *meteredTransport) MarkDead(p, fromRound int) {
	if dm, ok := t.tr.(DeadMarker); ok {
		dm.MarkDead(p, fromRound)
	}
}

type meteredEndpoint struct {
	Endpoint
	m *HeardMeter
}

func (ep *meteredEndpoint) Gather(r int, into [][]byte) ([][]byte, error) {
	recv, err := ep.Endpoint.Gather(r, into)
	if err != nil {
		return nil, err
	}
	ep.m.Record(r, ep.Self(), recv)
	return recv, nil
}
