package transport

// sendmmsg on linux/amd64. The syscall package's amd64 table predates
// the call (it has recvmmsg but not sendmmsg), so the number is pinned
// here from the kernel's syscall_64.tbl.
const sysSendmmsg = 307
