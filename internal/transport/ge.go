package transport

import (
	"fmt"
	"sync"
	"time"
)

// GilbertElliott is the classic two-state Markov loss model: each
// directed link is either Good (delivering) or Bad (dropping), and flips
// state between rounds with the transition probabilities implied by the
// mean sojourn times — a mean loss burst of Burst rounds (P[Bad->Good] =
// 1/Burst) separated by mean loss-free gaps of Gap rounds (P[Good->Bad]
// = 1/Gap). The long-run loss rate is Burst/(Burst+Gap), but unlike the
// i.i.d. FrameLoss model the losses arrive in runs, which is what real
// congested or fading links do — and what stresses the stable-skeleton
// assumption hardest, since a burst on a link is exactly a temporarily
// vanished edge.
//
// Every link's state walk is a pure function of (Seed, from, to, round):
// the initial state is drawn from the stationary distribution and each
// transition is decided by a hash of the round, so runs replay exactly.
// States are memoized per link and advanced on demand; a query for an
// earlier round than the memo recomputes the walk from round 1 (correct,
// just slower — transports query rounds in order per link, so the memo
// path is the hot one).
type GilbertElliott struct {
	seed       int64
	pGB, pBG   float64 // per-round transition probabilities
	stationary float64 // P[Bad] at round 1

	mu    sync.Mutex
	links map[uint64]*geLink
}

type geLink struct {
	round int // round the memoized state applies to (0 = not started)
	bad   bool
}

// NewGilbertElliott returns the bursty-loss policy with mean burst
// length `burst` and mean gap length `gap` (both in rounds, both >= 1;
// a burst of 1 with a large gap degenerates to rare i.i.d. loss).
func NewGilbertElliott(burst, gap float64, seed int64) (*GilbertElliott, error) {
	if burst < 1 || gap < 1 {
		return nil, fmt.Errorf("transport: gilbert-elliott burst = %g, gap = %g, need both >= 1", burst, gap)
	}
	pBG, pGB := 1/burst, 1/gap
	return &GilbertElliott{
		seed:       seed,
		pGB:        pGB,
		pBG:        pBG,
		stationary: pGB / (pGB + pBG),
		links:      make(map[uint64]*geLink),
	}, nil
}

// u returns the round-r transition draw for the link, uniform in [0, 1).
func (g *GilbertElliott) u(r, from, to int) float64 {
	h := mix64(uint64(g.seed) ^ uint64(r)*0x9e3779b97f4a7c15 ^ uint64(from)<<32 ^ uint64(to)<<8 ^ 0xa0761d6478bd642f)
	return float64(h>>11) / (1 << 53)
}

// bad reports whether link from->to is in the Bad state in round r.
func (g *GilbertElliott) bad(r, from, to int) bool {
	key := uint64(from)<<32 | uint64(uint32(to))
	g.mu.Lock()
	defer g.mu.Unlock()
	l := g.links[key]
	if l == nil {
		l = &geLink{}
		g.links[key] = l
	}
	if l.round > r {
		l.round, l.bad = 0, false // backwards query: replay the walk
	}
	for l.round < r {
		l.round++
		if l.round == 1 {
			l.bad = g.u(1, from, to) < g.stationary
		} else if l.bad {
			l.bad = g.u(l.round, from, to) >= g.pBG
		} else {
			l.bad = g.u(l.round, from, to) < g.pGB
		}
	}
	return l.bad
}

// Deliver implements Policy.
func (g *GilbertElliott) Deliver(r, from, to int) bool {
	return !g.bad(r, from, to)
}

// Delay implements Policy.
func (g *GilbertElliott) Delay(r, from, to int) time.Duration { return 0 }

// GEFrameLoss returns a DropDatagram hook (see UDPOpts) driven by a
// Gilbert–Elliott chain per node link: real wire loss that arrives in
// bursts instead of FrameLoss's i.i.d. coin flips. As with FrameLoss,
// all fragments of a frame share the verdict, so the realized heard-sets
// stay a pure function of (seed, round, link). The from/to arguments of
// the hook are node ids — on a grouped mesh a burst takes out the whole
// node link, the failure unit of a congested path.
func GEFrameLoss(burst, gap float64, seed int64) (func(r, from, to, frag int) bool, error) {
	g, err := NewGilbertElliott(burst, gap, seed)
	if err != nil {
		return nil, err
	}
	return func(r, from, to, frag int) bool {
		return g.bad(r, from, to)
	}, nil
}
