package transport

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// leakCheck runs fn and then requires the goroutine count to settle back
// to (at most) its starting value. Hand-rolled on runtime.NumGoroutine —
// no external leak detector — with a settle loop because reader/writer
// goroutines unwind asynchronously after Close.
func leakCheck(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after settle\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestInProcCloseLeaksNoGoroutines pins the in-process transport's
// headline property: it runs on zero goroutines of its own, so a full
// drive-and-close cycle leaves the count untouched.
func TestInProcCloseLeaksNoGoroutines(t *testing.T) {
	leakCheck(t, func() {
		tr := NewInProc(4, nil)
		driveRun(t, tr, 5)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTCPCloseLeaksNoGoroutines drives a full mesh (one node per
// process and a grouped 2-node mesh) through several rounds and
// requires every writer loop, reader loop, and accept helper to unwind
// on Close.
func TestTCPCloseLeaksNoGoroutines(t *testing.T) {
	for _, nodes := range []int{4, 2} {
		leakCheck(t, func() {
			tr, err := NewTCPMeshLoopback(4, nodes, nil)
			if err != nil {
				t.Fatal(err)
			}
			driveRun(t, tr, 5)
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTCPCloseWithoutTrafficLeaksNoGoroutines closes a freshly built
// mesh whose streams never carried a frame: reader loops are parked in
// Read and writer loops in their cond wait, and Close must unwind both.
func TestTCPCloseWithoutTrafficLeaksNoGoroutines(t *testing.T) {
	leakCheck(t, func() {
		tr, err := NewTCPMeshLoopback(6, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestUDPCloseLeaksNoGoroutines drives UDP meshes (fully distributed
// and grouped) through several rounds and requires every writer loop
// and batch reader to unwind on Close.
func TestUDPCloseLeaksNoGoroutines(t *testing.T) {
	for _, nodes := range []int{4, 2} {
		leakCheck(t, func() {
			tr, err := NewUDPMeshLoopback(4, nodes, nil, udpTestOpts())
			if err != nil {
				t.Fatal(err)
			}
			driveRun(t, tr, 5)
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestUDPCloseWithoutTrafficLeaksNoGoroutines closes a freshly built
// mesh whose sockets never carried a datagram: readers are parked on
// the netpoller and writer loops in their cond wait, and Close must
// unwind both.
func TestUDPCloseWithoutTrafficLeaksNoGoroutines(t *testing.T) {
	leakCheck(t, func() {
		tr, err := NewUDPMeshLoopback(6, 3, nil, udpTestOpts())
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestUDPCloseDuringInFlightGather closes the mesh while a Gather is
// parked mid-round on the lossy mailbox's timer/arrival select — with a
// deliberately enormous round deadline, so only Close can release it —
// and requires ErrClosed promptly, with no goroutine left behind, and a
// second Close (from the endpoint side and the transport side) to stay
// a no-op.
func TestUDPCloseDuringInFlightGather(t *testing.T) {
	leakCheck(t, func() {
		opts := UDPOpts{RoundTimeout: time.Hour, Grace: time.Hour}
		tr, err := NewUDPMeshLoopback(3, 3, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := tr.Endpoint(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Broadcast(1, []byte("only sender")); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			// Blocks: endpoints 1 and 2 never broadcast, and the
			// hour-long deadline means only Close can end the round.
			_, err := ep.Gather(1, nil)
			done <- err
		}()
		time.Sleep(20 * time.Millisecond)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("in-flight Gather returned %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Gather still blocked after transport close")
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("double close: %v", err)
		}
		if err := ep.Close(); err != nil {
			t.Fatalf("endpoint close after transport close: %v", err)
		}
	})
}

// driveWithSilentPeer claims every endpoint, has the victim broadcast
// its round-1 frame and then go silent — a crashed process: its endpoint
// is never closed, it simply stops participating — and drives the
// survivors through `rounds` rounds. Survivors must hear the victim in
// round 1 and see its slot as a permanent drop by the final round (the
// death verdict has landed, whether announced via MarkDead or detected
// by the stall machinery). announce, when non-nil, is the supervisor's
// announced-crash path for transports with no detector of their own.
func driveWithSilentPeer(t *testing.T, tr Transport, victim, rounds int, announce func()) {
	t.Helper()
	n := tr.N()
	vep, err := tr.Endpoint(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := vep.Broadcast(1, payloadFor(victim, 1)); err != nil {
		t.Fatal(err)
	}
	if announce != nil {
		announce()
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		if i == victim {
			continue
		}
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			ep, err := tr.Endpoint(self)
			if err != nil {
				errs[self] = err
				return
			}
			var buf [][]byte
			for r := 1; r <= rounds; r++ {
				if err := ep.Broadcast(r, payloadFor(self, r)); err != nil {
					errs[self] = err
					return
				}
				recv, err := ep.Gather(r, buf)
				if err != nil {
					errs[self] = err
					return
				}
				buf = recv
				if r == 1 && recv[victim] == nil {
					errs[self] = fmt.Errorf("round 1 lost the victim's pre-crash frame")
					return
				}
				if r == rounds && recv[victim] != nil {
					errs[self] = fmt.Errorf("round %d still hears the dead victim", r)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("p%d: %v", i+1, err)
		}
	}
}

// TestCloseWithKilledPeerLeaksNoGoroutines extends the leak pin to the
// chaos states: a peer killed mid-run (announced on inproc, detected by
// the stall machinery on tcp and udp) must leave the survivors able to
// finish their rounds, and Close must still unwind every goroutine. The
// tcp case doubles as the dead-peer-unwedge pin — with the zero TCPOpts
// this exact drive would block in Gather forever.
func TestCloseWithKilledPeerLeaksNoGoroutines(t *testing.T) {
	const n, victim, rounds = 4, 2, 6
	t.Run("inproc", func(t *testing.T) {
		leakCheck(t, func() {
			tr := NewInProc(n, nil)
			driveWithSilentPeer(t, tr, victim, rounds, func() { tr.MarkDead(victim, 2) })
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
		})
	})
	t.Run("tcp", func(t *testing.T) {
		var c StallCounters
		leakCheck(t, func() {
			tr, err := NewTCPMeshLoopbackOpts(n, n, nil, TCPOpts{Stall: StallOpts{
				RoundTimeout: 100 * time.Millisecond,
				DeadAfter:    2,
				MaxReconnect: 3,
				Counters:     &c,
			}})
			if err != nil {
				t.Fatal(err)
			}
			driveWithSilentPeer(t, tr, victim, rounds, nil)
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
		})
		if c.Stalls.Load() == 0 {
			t.Error("silent peer burned no deadlines")
		}
		if c.Dead.Load() == 0 {
			t.Error("stall detector never issued the death verdict")
		}
	})
	t.Run("udp", func(t *testing.T) {
		var c StallCounters
		leakCheck(t, func() {
			opts := udpTestOpts()
			opts.RoundTimeout = 100 * time.Millisecond
			opts.DeadAfter = 2
			opts.Counters = &c
			tr, err := NewUDPMeshLoopback(n, n, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			driveWithSilentPeer(t, tr, victim, rounds, nil)
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
		})
		if c.Stalls.Load() == 0 {
			t.Error("silent peer burned no deadlines")
		}
		if c.Dead.Load() == 0 {
			t.Error("stall detector never issued the death verdict")
		}
	})
}

// TestTCPCloseDuringReconnectLeaksNoGoroutines breaks an inter-node
// stream mid-run so both recovery goroutines spawn — the dialer side
// parks in its first backoff sleep (deliberately huge), the accept side
// in its replacement budget — and then closes the transport. Both must
// unwind via the transport's done channel, not their timers.
func TestTCPCloseDuringReconnectLeaksNoGoroutines(t *testing.T) {
	leakCheck(t, func() {
		tr, err := NewTCPMeshLoopbackOpts(4, 2, nil, TCPOpts{Stall: StallOpts{
			RoundTimeout:  time.Minute, // rounds close by count; only the break matters
			MaxReconnect:  64,
			ReconnectBase: 2 * time.Second, // first redial parks well past the Close below
			ReconnectMax:  10 * time.Second,
		}})
		if err != nil {
			t.Fatal(err)
		}
		driveRun(t, tr, 2)
		nd := tr.nodes[0]
		nd.mu.Lock()
		stream := nd.conns[1]
		nd.mu.Unlock()
		stream.Close() // both reader loops fail: node 0 redials, node 1 awaits
		time.Sleep(50 * time.Millisecond)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCloseIsIdempotent closes transports and endpoints repeatedly, in
// every order, and requires every call to succeed without panicking or
// deadlocking. Endpoint Close shares the transport's lifetime on every
// implementation, so endpoint-then-transport and transport-then-
// endpoint must both be safe.
func TestCloseIsIdempotent(t *testing.T) {
	builds := []struct {
		name string
		make func() (Transport, error)
	}{
		{"inproc", func() (Transport, error) { return NewInProc(3, nil), nil }},
		{"tcp", func() (Transport, error) { return NewTCPLoopback(3, nil) }},
		{"tcp-nodes2", func() (Transport, error) { return NewTCPMeshLoopback(3, 2, nil) }},
		{"udp", func() (Transport, error) { return NewUDPMeshLoopback(3, 3, nil, udpTestOpts()) }},
		{"udp-nodes2", func() (Transport, error) { return NewUDPMeshLoopback(3, 2, nil, udpTestOpts()) }},
	}
	for _, b := range builds {
		t.Run(b.name, func(t *testing.T) {
			leakCheck(t, func() {
				tr, err := b.make()
				if err != nil {
					t.Fatal(err)
				}
				ep, err := tr.Endpoint(0)
				if err != nil {
					t.Fatal(err)
				}
				if err := ep.Close(); err != nil {
					t.Fatalf("endpoint close: %v", err)
				}
				if err := ep.Close(); err != nil {
					t.Fatalf("second endpoint close: %v", err)
				}
				if err := tr.Close(); err != nil {
					t.Fatalf("transport close after endpoint close: %v", err)
				}
				if err := tr.Close(); err != nil {
					t.Fatalf("second transport close: %v", err)
				}
				if err := ep.Close(); err != nil {
					t.Fatalf("endpoint close after transport close: %v", err)
				}
				if err := ep.Broadcast(1, []byte("x")); err == nil {
					t.Fatal("broadcast succeeded on a closed endpoint")
				}
			})
		})
	}
}
