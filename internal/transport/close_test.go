package transport

import (
	"runtime"
	"testing"
	"time"
)

// leakCheck runs fn and then requires the goroutine count to settle back
// to (at most) its starting value. Hand-rolled on runtime.NumGoroutine —
// no external leak detector — with a settle loop because reader/writer
// goroutines unwind asynchronously after Close.
func leakCheck(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after settle\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestInProcCloseLeaksNoGoroutines pins the in-process transport's
// headline property: it runs on zero goroutines of its own, so a full
// drive-and-close cycle leaves the count untouched.
func TestInProcCloseLeaksNoGoroutines(t *testing.T) {
	leakCheck(t, func() {
		tr := NewInProc(4, nil)
		driveRun(t, tr, 5)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTCPCloseLeaksNoGoroutines drives a full mesh (one node per
// process and a grouped 2-node mesh) through several rounds and
// requires every writer loop, reader loop, and accept helper to unwind
// on Close.
func TestTCPCloseLeaksNoGoroutines(t *testing.T) {
	for _, nodes := range []int{4, 2} {
		leakCheck(t, func() {
			tr, err := NewTCPMeshLoopback(4, nodes, nil)
			if err != nil {
				t.Fatal(err)
			}
			driveRun(t, tr, 5)
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTCPCloseWithoutTrafficLeaksNoGoroutines closes a freshly built
// mesh whose streams never carried a frame: reader loops are parked in
// Read and writer loops in their cond wait, and Close must unwind both.
func TestTCPCloseWithoutTrafficLeaksNoGoroutines(t *testing.T) {
	leakCheck(t, func() {
		tr, err := NewTCPMeshLoopback(6, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCloseIsIdempotent closes transports and endpoints repeatedly, in
// every order, and requires every call to succeed without panicking or
// deadlocking. Endpoint Close shares the transport's lifetime on both
// implementations, so endpoint-then-transport and transport-then-
// endpoint must both be safe.
func TestCloseIsIdempotent(t *testing.T) {
	builds := []struct {
		name string
		make func() (Transport, error)
	}{
		{"inproc", func() (Transport, error) { return NewInProc(3, nil), nil }},
		{"tcp", func() (Transport, error) { return NewTCPLoopback(3, nil) }},
		{"tcp-nodes2", func() (Transport, error) { return NewTCPMeshLoopback(3, 2, nil) }},
	}
	for _, b := range builds {
		t.Run(b.name, func(t *testing.T) {
			leakCheck(t, func() {
				tr, err := b.make()
				if err != nil {
					t.Fatal(err)
				}
				ep, err := tr.Endpoint(0)
				if err != nil {
					t.Fatal(err)
				}
				if err := ep.Close(); err != nil {
					t.Fatalf("endpoint close: %v", err)
				}
				if err := ep.Close(); err != nil {
					t.Fatalf("second endpoint close: %v", err)
				}
				if err := tr.Close(); err != nil {
					t.Fatalf("transport close after endpoint close: %v", err)
				}
				if err := tr.Close(); err != nil {
					t.Fatalf("second transport close: %v", err)
				}
				if err := ep.Close(); err != nil {
					t.Fatalf("endpoint close after transport close: %v", err)
				}
				if err := ep.Broadcast(1, []byte("x")); err == nil {
					t.Fatal("broadcast succeeded on a closed endpoint")
				}
			})
		})
	}
}
