package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// UDPMesh is the best-effort datagram transport: the node-grouped,
// coalesced-round-frame architecture of the TCP mesh (one writer event
// loop and one reader per node, one v2-style frame per node pair per
// round, co-located delivery never touching a socket) rebuilt on UDP
// sockets — one unconnected socket per node, so a round costs one
// sendmmsg batch instead of n-1 stream writes.
//
// Frames larger than a datagram budget are fragmented across numbered
// datagrams (udp_frame.go documents the layout); receivers reassemble
// by fragment index into a per-peer ring of round slots. There is no
// retransmission and no acknowledgment anywhere: the k-set agreement
// algorithm this repo grows tolerates arbitrary message loss as long as
// a stable skeleton survives, so a lost datagram is semantically just
// another dropped link. Round closure at the receiver is the lossy
// mailbox's deadline+grace rule — absence is the drop signal — while
// Policy-injected drops still travel as explicit bitmap tombstones, so
// simulated faults stay fast and compose with real loss (a tombstone-
// bearing datagram can itself be lost).
//
// The zero-allocation discipline of the TCP path carries over: pooled
// payload buffers, reused frame/fragment scratch, reused reassembly
// slots, and batch send/receive state allocated once — the steady-state
// round trip does not allocate.
type UDPMesh struct {
	n, m  int
	pol   Policy
	opts  UDPOpts
	chunk int // fragment body bytes (all fragments but the last)
	nodes []*udpNode
	addrs []netip.AddrPort
	done  chan struct{}

	mu        sync.Mutex
	claimed   []bool
	closed    bool
	deadNodes []bool
}

// UDPOpts tunes a UDP mesh. The zero value means: 1400-byte datagrams,
// a 2ms round deadline with 300µs grace extensions, 1MiB socket
// buffers, no meter, no simulated wire loss.
type UDPOpts struct {
	// MaxDatagram caps the bytes of one UDP packet, header included.
	// Both sides derive the fragment chunk size from it, so every node
	// of a mesh (and, in a future multi-process deployment, every
	// configured peer) must agree on it.
	MaxDatagram int

	// RoundTimeout is the receiver's per-round closure deadline: how
	// long a Gather waits for senders the bitmap has not accounted for
	// before starting to suspect loss.
	RoundTimeout time.Duration

	// Grace extends a timed-out round while datagrams are still
	// trickling in: after the deadline, the round stays open as long as
	// every Grace window brings at least one new frame, and closes on
	// the first silent window.
	Grace time.Duration

	// SocketBuffer sizes SO_RCVBUF/SO_SNDBUF in bytes (0 = 1MiB). The
	// lossy soak shrinks it to put real kernel-buffer pressure on the
	// mesh.
	SocketBuffer int

	// Meter, when non-nil, records the realized heard-set of every
	// gather — the input of the loss-replay differential mode.
	Meter *HeardMeter

	// DropDatagram, when non-nil, simulates wire loss: a datagram
	// (fragment frag of node from's round-r frame to node to) for which
	// it returns true is silently not sent. Unlike a Policy drop it
	// leaves no tombstone — the receiver must notice the absence — so
	// tests can exercise the deadline closure path deterministically.
	DropDatagram func(r, from, to, frag int) bool

	// DeadAfter enables the stall detector: a sender missing from this
	// many consecutive deadline-closed rounds at one receiver is declared
	// dead — its whole node, since an OS process dying takes every
	// co-located participant with it — and its absences stop costing the
	// deadline. 0 disables detection (every silent round burns the full
	// RoundTimeout, but nothing is ever terminal), which is the right
	// setting when loss is expected to be transient.
	DeadAfter int

	// Counters, when non-nil, receives stall and death events.
	Counters *StallCounters
}

func (o *UDPOpts) withDefaults() UDPOpts {
	opts := *o
	if opts.MaxDatagram == 0 {
		opts.MaxDatagram = 1400
	}
	if opts.RoundTimeout == 0 {
		opts.RoundTimeout = 2 * time.Millisecond
	}
	if opts.Grace == 0 {
		opts.Grace = 300 * time.Microsecond
	}
	if opts.SocketBuffer == 0 {
		opts.SocketBuffer = 1 << 20
	}
	return opts
}

// maxUDPDatagram is the largest UDP payload the protocol allows (the
// IPv4 limit); the floor keeps at least one fragment byte after a
// worst-case header.
const (
	maxUDPDatagram = 65507
	minUDPDatagram = udpHeaderMax + 64
)

// NewUDPLoopback returns the fully distributed mesh — one node and one
// socket per process, bound to 127.0.0.1 on kernel-assigned ports —
// with default options.
func NewUDPLoopback(n int, pol Policy) (*UDPMesh, error) {
	return NewUDPMeshLoopback(n, n, pol, UDPOpts{})
}

// NewUDPMeshLoopback returns a UDP mesh transport for n processes
// grouped onto `nodes` loopback nodes. All sockets are bound and all
// loops running before the constructor returns.
func NewUDPMeshLoopback(n, nodes int, pol Policy, opts UDPOpts) (*UDPMesh, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: n = %d, need >= 1", n)
	}
	if nodes < 1 || nodes > n {
		return nil, fmt.Errorf("transport: nodes = %d, need 1 <= nodes <= n = %d", nodes, n)
	}
	if pol == nil {
		pol = Perfect{}
	}
	opts = opts.withDefaults()
	if opts.MaxDatagram < minUDPDatagram || opts.MaxDatagram > maxUDPDatagram {
		return nil, fmt.Errorf("transport: MaxDatagram = %d, need %d <= MaxDatagram <= %d",
			opts.MaxDatagram, minUDPDatagram, maxUDPDatagram)
	}
	if opts.Meter != nil && opts.Meter.N() != n {
		return nil, fmt.Errorf("transport: meter for n = %d on an n = %d mesh", opts.Meter.N(), n)
	}
	t := &UDPMesh{
		n:       n,
		m:       nodes,
		pol:     pol,
		opts:    opts,
		chunk:   opts.MaxDatagram - udpHeaderMax,
		claimed: make([]bool, n),
		done:    make(chan struct{}),
	}
	for i := 0; i < t.m; i++ {
		lo, hi := t.nodeLo(i), t.nodeLo(i+1)
		nd := &udpNode{t: t, id: i, lo: lo, hi: hi}
		nd.cond.L = &nd.mu
		nd.boxes = make([]*lossyBuffer, hi-lo)
		for j := range nd.boxes {
			nd.boxes[j] = newLossyBuffer(n)
		}
		for r := range nd.pending {
			nd.pending[r] = make([]*refBuf, hi-lo)
		}
		t.nodes = append(t.nodes, nd)
	}
	if t.m == 1 {
		return t, nil // single node: every delivery is in-memory
	}

	for i := 0; i < t.m; i++ {
		conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: bind node %d: %w", i, err)
		}
		conn.SetReadBuffer(opts.SocketBuffer)
		conn.SetWriteBuffer(opts.SocketBuffer)
		t.nodes[i].conn = conn
		t.addrs = append(t.addrs, conn.LocalAddr().(*net.UDPAddr).AddrPort())
	}
	for i := 0; i < t.m; i++ {
		nd := t.nodes[i]
		if err := nd.initIO(); err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: node %d io setup: %w", i, err)
		}
		go nd.readLoop()
		go nd.writeLoop()
	}
	return t, nil
}

// MarkDead implements DeadMarker: process p's missing deliveries from
// round fromRound onward become permanent nil tombstones at every
// hosted mailbox of every node — deadline-closed rounds stop waiting
// out its silence — and p's own node's writer stops waiting for its
// contributions.
func (t *UDPMesh) MarkDead(p, fromRound int) {
	if p < 0 || p >= t.n {
		return
	}
	for _, nd := range t.nodes {
		for _, b := range nd.boxes {
			b.markDead(p, fromRound)
		}
	}
	nd := t.nodes[t.nodeOf(p)]
	nd.markDeadLocal(p-nd.lo, fromRound)
}

// markNodeDead is the stall detector's terminal verdict: every process
// hosted by the peer node is declared dead from now on. Idempotent.
func (t *UDPMesh) markNodeDead(peer int) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if t.deadNodes == nil {
		t.deadNodes = make([]bool, t.m)
	}
	if t.deadNodes[peer] {
		t.mu.Unlock()
		return
	}
	t.deadNodes[peer] = true
	t.mu.Unlock()
	lo, hi := t.nodeLo(peer), t.nodeLo(peer+1)
	if c := t.opts.Counters; c != nil {
		c.Dead.Add(int64(hi - lo))
	}
	for p := lo; p < hi; p++ {
		t.MarkDead(p, 1)
	}
}

// nodeLo returns the first process hosted by node i (the same
// contiguous balanced partition as the TCP mesh).
func (t *UDPMesh) nodeLo(i int) int { return i * t.n / t.m }

// nodeOf returns the node hosting process p.
func (t *UDPMesh) nodeOf(p int) int {
	for i := 0; i < t.m; i++ {
		if p >= t.nodeLo(i) && p < t.nodeLo(i+1) {
			return i
		}
	}
	return -1
}

// N implements Transport.
func (t *UDPMesh) N() int { return t.n }

// Nodes returns the node count of the mesh.
func (t *UDPMesh) Nodes() int { return t.m }

// Addrs returns the node socket addresses, indexed by node id (empty
// for a single-node mesh, which never opens a socket).
func (t *UDPMesh) Addrs() []netip.AddrPort { return append([]netip.AddrPort(nil), t.addrs...) }

// Endpoint implements Transport.
func (t *UDPMesh) Endpoint(self int) (Endpoint, error) {
	if self < 0 || self >= t.n {
		return nil, fmt.Errorf("transport: endpoint id %d out of range [0,%d)", self, t.n)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if t.claimed[self] {
		return nil, fmt.Errorf("transport: endpoint %d already claimed", self)
	}
	t.claimed[self] = true
	ep := &udpEndpoint{nd: t.nodes[t.nodeOf(self)], self: self, drops: make([]bool, t.n)}
	ep.stall = newStallDetector(t.n, t.opts.DeadAfter, t.opts.Counters, func(q int) {
		t.markNodeDead(t.nodeOf(q))
	})
	return ep, nil
}

// Close implements Transport: it tears down sockets and loops and wakes
// every parked Gather with ErrClosed. Idempotent and safe from any
// goroutine.
func (t *UDPMesh) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.done)
	for _, nd := range t.nodes {
		if nd.conn != nil {
			nd.conn.Close() // unblocks the reader and any batch send
		}
		nd.mu.Lock()
		nd.cond.Broadcast() // writer loop re-checks t.done and exits
		nd.mu.Unlock()
		for _, b := range nd.boxes {
			b.close()
		}
	}
	return nil
}

// udpNode is one event-loop domain of the mesh: the processes it hosts,
// their lossy mailboxes, the outbound round-aggregation state its
// writer loop consumes, and the node's one socket.
type udpNode struct {
	t      *UDPMesh
	id     int
	lo, hi int // hosted processes [lo, hi)
	boxes  []*lossyBuffer
	conn   *net.UDPConn

	mu       sync.Mutex
	cond     sync.Cond
	pending  [window][]*refBuf // [r%window][local sender] round contributions
	pcount   [window]int
	deadFrom []int // per local sender: first dead round (0 = alive), lazily allocated

	sender    udpSender   // writer-loop owned
	rcv       udpReceiver // reader-loop owned
	reasm     []*udpReasm // by peer node id, reader-loop owned
	badDgrams int         // datagrams dropped by validation, reader-loop owned
}

func (nd *udpNode) localN() int { return nd.hi - nd.lo }

// initIO prepares the batch send/receive state (platform-specific; see
// udp_batch_linux.go and udp_batch_fallback.go) and the reassembly
// rings. Called once per node after every socket is bound.
func (nd *udpNode) initIO() error {
	t := nd.t
	nd.reasm = make([]*udpReasm, t.m)
	for j := 0; j < t.m; j++ {
		if j == nd.id {
			continue
		}
		snd := t.nodeLo(j+1) - t.nodeLo(j)
		nd.reasm[j] = newUDPReasm(j, snd, nd.localN(), t.chunk)
	}
	if err := nd.sender.init(nd.conn, t.addrs); err != nil {
		return err
	}
	return nd.rcv.init(nd.conn, t.opts.MaxDatagram)
}

// liveTargetLocked is the number of round-r contributions the writer
// loop must wait for: the hosted senders not yet declared dead for r.
func (nd *udpNode) liveTargetLocked(r int) int {
	target := nd.localN()
	if nd.deadFrom != nil {
		for _, f := range nd.deadFrom {
			if f != 0 && f <= r {
				target--
			}
		}
	}
	return target
}

// markDeadLocal records a hosted sender's death for the writer loop: the
// writer stops waiting for its contributions from fromRound onward and
// ships its frame slots as drop tombstones.
func (nd *udpNode) markDeadLocal(local, fromRound int) {
	if fromRound < 1 {
		fromRound = 1
	}
	nd.mu.Lock()
	if nd.deadFrom == nil {
		nd.deadFrom = make([]int, nd.localN())
	}
	if nd.deadFrom[local] == 0 || nd.deadFrom[local] > fromRound {
		nd.deadFrom[local] = fromRound
		nd.cond.Broadcast()
	}
	nd.mu.Unlock()
}

// contribute hands a local sender's round-r payload to the writer loop.
func (nd *udpNode) contribute(local, r int, rb *refBuf) error {
	nd.mu.Lock()
	if nd.pending[r%window][local] != nil {
		nd.mu.Unlock()
		return fmt.Errorf("transport: p%d round %d overran the writer window", nd.lo+local+1, r)
	}
	nd.pending[r%window][local] = rb
	nd.pcount[r%window]++
	if nd.pcount[r%window] >= nd.liveTargetLocked(r) {
		nd.cond.Broadcast()
	}
	nd.mu.Unlock()
	return nil
}

// writeLoop is the node's single outbound event loop: for each round in
// order, once every hosted process has contributed, it coalesces the
// payloads into one frame body per peer node, fragments each into
// datagrams, and ships the whole round as one batch (one sendmmsg on
// Linux). Send-side Policy drops fold into the frame bitmaps here;
// simulated wire loss (DropDatagram) is applied per fragment.
func (nd *udpNode) writeLoop() {
	t := nd.t
	_, perfect := t.pol.(Perfect)
	bufs := make([]*refBuf, nd.localN())
	var body []byte
	for r := 1; ; r++ {
		nd.mu.Lock()
		for {
			target := nd.liveTargetLocked(r)
			if target == 0 {
				// The whole node is dead; its receivers' slots are already
				// pre-filled mesh-wide. Nothing left to ship, ever.
				nd.mu.Unlock()
				return
			}
			if nd.pcount[r%window] >= target || closed(t.done) {
				break
			}
			nd.cond.Wait()
		}
		if closed(t.done) {
			nd.mu.Unlock()
			return
		}
		copy(bufs, nd.pending[r%window])
		for i := range nd.pending[r%window] {
			nd.pending[r%window][i] = nil
		}
		nd.pcount[r%window] = 0
		nd.mu.Unlock()

		for j := 0; j < t.m && !closed(t.done); j++ {
			if j == nd.id {
				continue
			}
			body = nd.appendFrameBody(body[:0], r, j, bufs, perfect)
			nd.queueFrame(r, j, body)
		}
		err := nd.sender.flush()
		for _, rb := range bufs {
			if rb != nil {
				rb.release()
			}
		}
		if closed(t.done) {
			return
		}
		if err != nil {
			// Only a dead socket surfaces here (per-datagram errors are
			// treated as loss); without a socket the node is partitioned
			// for good, so fail its processes rather than stall them.
			nd.failLocal(fmt.Errorf("transport: node %d send: %w", nd.id, err))
			return
		}
	}
}

// appendFrameBody builds the round-r frame body for peer node j: the
// drop bitmap over this node link's sender x receiver matrix, then each
// delivering sender's payload once.
func (nd *udpNode) appendFrameBody(body []byte, r, j int, bufs []*refBuf, perfect bool) []byte {
	t := nd.t
	peerLo, peerHi := t.nodeLo(j), t.nodeLo(j+1)
	rcv := peerHi - peerLo
	bitmapLen := (nd.localN()*rcv + 7) / 8
	bitOff := len(body)
	for i := bitmapLen; i > 0; i-- {
		body = append(body, 0)
	}
	bitmap := body[bitOff:]
	for si := 0; si < nd.localN(); si++ {
		if bufs[si] == nil {
			continue // dead sender: all its bits stay tombstones
		}
		any := false
		for qi := 0; qi < rcv; qi++ {
			if perfect || t.pol.Deliver(r, nd.lo+si, peerLo+qi) {
				bit := si*rcv + qi
				bitmap[bit>>3] |= 1 << (bit & 7)
				any = true
			}
		}
		if any {
			body = binary.AppendUvarint(body, uint64(len(bufs[si].b)))
			body = append(body, bufs[si].b...)
			bitmap = body[bitOff : bitOff+bitmapLen]
		}
	}
	return body
}

// queueFrame fragments a frame body into datagrams and queues them on
// the node's batch sender.
func (nd *udpNode) queueFrame(r, to int, body []byte) {
	t := nd.t
	fragCount := (len(body) + t.chunk - 1) / t.chunk
	if fragCount == 0 {
		fragCount = 1
	}
	for fi := 0; fi < fragCount; fi++ {
		if t.opts.DropDatagram != nil && t.opts.DropDatagram(r, nd.id, to, fi) {
			continue
		}
		lo := fi * t.chunk
		hi := lo + t.chunk
		if hi > len(body) {
			hi = len(body)
		}
		nd.sender.queue(to, udpHeader{from: nd.id, round: r, fragIdx: fi, fragCount: fragCount}, body[lo:hi])
	}
}

// failLocal surfaces a socket failure to every process this node hosts,
// unless the transport is already closing.
func (nd *udpNode) failLocal(err error) {
	if closed(nd.t.done) {
		return
	}
	for _, b := range nd.boxes {
		b.fail(err)
	}
}

// readLoop drains the node's socket until Close, reassembling and
// depositing every valid datagram. Malformed or stale datagrams are
// dropped silently (counted in badDgrams) — on a best-effort transport
// a bad packet is indistinguishable from a lost one.
func (nd *udpNode) readLoop() {
	for {
		if err := nd.rcv.recv(nd); err != nil {
			return // socket closed by Close
		}
	}
}

// handleDatagram validates, reassembles, and (on frame completion)
// deposits one received packet.
func (nd *udpNode) handleDatagram(pkt []byte, from netip.AddrPort) {
	t := nd.t
	hdr, frag, err := parseUDPDatagram(pkt)
	if err != nil || hdr.from >= t.m || hdr.from == nd.id || t.addrs[hdr.from] != from {
		nd.badDgrams++
		return
	}
	ra := nd.reasm[hdr.from]
	body, ok := ra.place(hdr, frag)
	if !ok {
		if body == nil {
			nd.badDgrams++
		}
		return
	}
	if body == nil {
		return // fragment accepted; frame not complete yet
	}
	nd.depositFrame(hdr.from, hdr.round, body)
}

// depositFrame fans a reassembled frame body out to the node's hosted
// mailboxes. A frame that fails validation mid-walk simply stops — the
// deposits already made stand, and the missing ones close as loss.
func (nd *udpNode) depositFrame(peer, round int, body []byte) {
	t := nd.t
	peerLo := t.nodeLo(peer)
	snd := t.nodeLo(peer+1) - peerLo
	rcv := nd.localN()
	err := decodeUDPFrame(body, snd, rcv, func(si, delivered int, payload, bitmap []byte) {
		if delivered == 0 {
			for qi := 0; qi < rcv; qi++ {
				nd.boxes[qi].deposit(peerLo+si, round, nil, nil)
			}
			return
		}
		rb := newRefBuf(payload, int32(delivered))
		for qi := 0; qi < rcv; qi++ {
			bit := si*rcv + qi
			if bitmap[bit>>3]&(1<<(bit&7)) != 0 {
				nd.boxes[qi].deposit(peerLo+si, round, rb.b, rb)
			} else {
				nd.boxes[qi].deposit(peerLo+si, round, nil, nil)
			}
		}
	})
	if err != nil {
		nd.badDgrams++
	}
}

// udpReasm reassembles one peer's fragmented round frames into a ring
// of `window` slots, mirroring the mailbox ring so a frame for any
// depositable round has a slot. All state is owned by the reader
// goroutine; buffers are reused across rounds, so steady state does not
// allocate.
type udpReasm struct {
	peer     int
	chunk    int
	limit    int // reassembled body cap, from transport dims — never from headers
	maxFrags int
	slots    [window]reasmSlot
}

type reasmSlot struct {
	round     int
	fragCount int
	got       int
	lastLen   int
	seen      []uint64
	body      []byte
	done      bool
}

func newUDPReasm(peer, snd, rcv, chunk int) *udpReasm {
	limit := udpFrameLimit(snd, rcv)
	return &udpReasm{
		peer:     peer,
		chunk:    chunk,
		limit:    limit,
		maxFrags: (limit + chunk - 1) / chunk,
	}
}

// place copies one fragment into its round slot. It returns (body,
// true) exactly once per round, when the last fragment lands. A nil
// body with ok == false means the datagram was rejected as invalid (as
// opposed to merely not completing a frame yet).
func (ra *udpReasm) place(hdr udpHeader, frag []byte) ([]byte, bool) {
	if hdr.fragCount > ra.maxFrags {
		return nil, false
	}
	final := hdr.fragIdx == hdr.fragCount-1
	if final {
		if len(frag) == 0 || len(frag) > ra.chunk {
			return nil, false
		}
	} else if len(frag) != ra.chunk {
		return nil, false
	}
	s := &ra.slots[hdr.round%window]
	switch {
	case s.round == hdr.round:
		if s.done || s.fragCount != hdr.fragCount {
			return []byte{}, false // late duplicate or inconsistent header
		}
	case s.round > hdr.round:
		return []byte{}, false // stale round: its slot has moved on
	default:
		// New round claims the slot; whatever partial frame occupied it
		// is lost — which on this transport is always sound.
		s.round = hdr.round
		s.fragCount = hdr.fragCount
		s.got = 0
		s.done = false
		words := (hdr.fragCount + 63) / 64
		if cap(s.seen) < words {
			s.seen = make([]uint64, words)
		}
		s.seen = s.seen[:words]
		for i := range s.seen {
			s.seen[i] = 0
		}
		need := hdr.fragCount * ra.chunk
		if cap(s.body) < need {
			s.body = make([]byte, need)
		}
		s.body = s.body[:need]
	}
	if s.seen[hdr.fragIdx>>6]&(1<<(hdr.fragIdx&63)) != 0 {
		return []byte{}, false // duplicate fragment
	}
	s.seen[hdr.fragIdx>>6] |= 1 << (hdr.fragIdx & 63)
	copy(s.body[hdr.fragIdx*ra.chunk:], frag)
	if final {
		s.lastLen = len(frag)
	}
	s.got++
	if s.got < s.fragCount {
		return nil, true
	}
	s.done = true
	return s.body[:(s.fragCount-1)*ra.chunk+s.lastLen], true
}

// udpEndpoint is process self's port onto a UDP mesh.
type udpEndpoint struct {
	nd    *udpNode
	self  int
	drops []bool
	stall *stallDetector // nil unless DeadAfter > 0
}

// Self implements Endpoint.
func (ep *udpEndpoint) Self() int { return ep.self }

// N implements Endpoint.
func (ep *udpEndpoint) N() int { return ep.nd.t.n }

// Broadcast implements Endpoint. Co-hosted receivers get the pooled
// payload deposited directly (no socket); one extra reference goes to
// the node's writer loop. Same split as the TCP mesh: remote drop
// decisions are the writer's, local drops are applied here.
func (ep *udpEndpoint) Broadcast(r int, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("transport: payload %d bytes exceeds MaxPayload %d", len(payload), MaxPayload)
	}
	nd := ep.nd
	t := nd.t
	if closed(t.done) {
		return ErrClosed
	}
	delivered := int32(0)
	for to := nd.lo; to < nd.hi; to++ {
		drop := to != ep.self && !t.pol.Deliver(r, ep.self, to)
		ep.drops[to] = drop
		if !drop {
			delivered++
		}
	}
	if t.m > 1 {
		delivered++ // the writer loop's reference
	}
	rb := newRefBuf(payload, delivered)
	for to := nd.lo; to < nd.hi; to++ {
		if ep.drops[to] {
			nd.boxes[to-nd.lo].deposit(ep.self, r, nil, nil)
		} else {
			nd.boxes[to-nd.lo].deposit(ep.self, r, rb.b, rb)
		}
	}
	if t.m > 1 {
		return nd.contribute(ep.self-nd.lo, r, rb)
	}
	return nil
}

// Gather implements Endpoint: it blocks until round r closes under the
// lossy mailbox's deadline+grace rule and reports absent senders as nil
// payloads, records the realized heard-set on the meter if one is
// attached, then applies receive-side Policy delays.
func (ep *udpEndpoint) Gather(r int, into [][]byte) ([][]byte, error) {
	t := ep.nd.t
	recv, missed, err := ep.nd.boxes[ep.self-ep.nd.lo].await(r, into, t.opts.RoundTimeout, t.opts.Grace)
	if err != nil {
		return nil, err
	}
	ep.stall.observe(r, missed)
	if t.opts.Meter != nil {
		t.opts.Meter.Record(r, ep.self, recv)
	}
	if err := applyDelays(t.pol, r, ep.self, recv, t.done); err != nil {
		return nil, err
	}
	return recv, nil
}

// Close implements Endpoint: UDP endpoints share the transport's
// lifetime (the socket is per node, not per process), so closing one
// tears down the whole mesh. Idempotent.
func (ep *udpEndpoint) Close() error { return ep.nd.t.Close() }
