package transport

import "testing"

// TestGilbertElliottValidation pins the parameter contract: mean burst
// and gap lengths below one round are rejected, on the policy and on
// the frame-loss hook alike.
func TestGilbertElliottValidation(t *testing.T) {
	if _, err := NewGilbertElliott(0.5, 36, 1); err == nil {
		t.Error("burst < 1 accepted")
	}
	if _, err := NewGilbertElliott(4, 0.5, 1); err == nil {
		t.Error("gap < 1 accepted")
	}
	if _, err := GEFrameLoss(0, 36, 1); err == nil {
		t.Error("GEFrameLoss accepted burst < 1")
	}
}

// TestGilbertElliottStationaryLossRate checks the long-run loss rate
// against the chain's stationary distribution Burst/(Burst+Gap): 30
// directed links over 2000 rounds each, with a ±30% tolerance that
// absorbs the burst correlation's variance inflation.
func TestGilbertElliottStationaryLossRate(t *testing.T) {
	const burst, gap = 4.0, 36.0
	g, err := NewGilbertElliott(burst, gap, 7)
	if err != nil {
		t.Fatal(err)
	}
	lost, total := 0, 0
	for from := 0; from < 6; from++ {
		for to := 0; to < 6; to++ {
			if to == from {
				continue
			}
			for r := 1; r <= 2000; r++ {
				total++
				if !g.Deliver(r, from, to) {
					lost++
				}
			}
		}
	}
	want := burst / (burst + gap)
	got := float64(lost) / float64(total)
	if got < 0.7*want || got > 1.3*want {
		t.Errorf("loss rate %.4f, want %.4f ± 30%%", got, want)
	}
}

// TestGilbertElliottBurstiness distinguishes the chain from i.i.d. loss
// at the same rate: the mean length of a completed loss run must track
// the configured Burst, far above the ~1.1-round runs an i.i.d. 10%%
// coin produces.
func TestGilbertElliottBurstiness(t *testing.T) {
	const burst, gap = 4.0, 36.0
	g, err := NewGilbertElliott(burst, gap, 11)
	if err != nil {
		t.Fatal(err)
	}
	runs, runLen := 0, 0
	for from := 0; from < 8; from++ {
		for to := 0; to < 8; to++ {
			if to == from {
				continue
			}
			cur := 0
			for r := 1; r <= 4000; r++ {
				if !g.Deliver(r, from, to) {
					cur++
				} else if cur > 0 {
					runs++
					runLen += cur
					cur = 0
				}
			}
		}
	}
	if runs == 0 {
		t.Fatal("no loss runs observed")
	}
	mean := float64(runLen) / float64(runs)
	if mean < 0.6*burst || mean > 1.4*burst {
		t.Errorf("mean loss-run length %.2f rounds, want %.1f ± 40%%", mean, burst)
	}
	if mean < 2 {
		t.Errorf("mean run %.2f indistinguishable from i.i.d. loss", mean)
	}
}

// TestGilbertElliottDeterminism pins replayability: the walk is a pure
// function of (seed, link, round) — equal seeds agree verdict-for-
// verdict, a different seed diverges somewhere, and a backwards query
// (which recomputes the memoized walk from round 1) reproduces the
// forward pass exactly.
func TestGilbertElliottDeterminism(t *testing.T) {
	g1, _ := NewGilbertElliott(4, 36, 42)
	g2, _ := NewGilbertElliott(4, 36, 42)
	g3, _ := NewGilbertElliott(4, 36, 43)
	const rounds = 500
	forward := make([]bool, rounds+1)
	diverged := false
	for r := 1; r <= rounds; r++ {
		for from := 0; from < 4; from++ {
			for to := 0; to < 4; to++ {
				if to == from {
					continue
				}
				a := g1.Deliver(r, from, to)
				if a != g2.Deliver(r, from, to) {
					t.Fatalf("equal seeds diverge at round %d link %d->%d", r, from, to)
				}
				if a != g3.Deliver(r, from, to) {
					diverged = true
				}
				if from == 0 && to == 1 {
					forward[r] = a
				}
			}
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 produced identical loss patterns")
	}
	for _, r := range []int{1, 117, 499} {
		if g1.Deliver(r, 0, 1) != forward[r] {
			t.Errorf("backwards query at round %d diverges from the forward pass", r)
		}
	}
}

// TestGEFrameLossSharesVerdictAcrossFragments pins the hook contract:
// all fragments of one frame share the link's round verdict (so heard-
// sets stay a pure function of seed, round, link), and the hook agrees
// with the equivalent Policy.
func TestGEFrameLossSharesVerdictAcrossFragments(t *testing.T) {
	drop, err := GEFrameLoss(4, 36, 9)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := NewGilbertElliott(4, 36, 9)
	for r := 1; r <= 300; r++ {
		want := !g.Deliver(r, 1, 2)
		for frag := 0; frag < 3; frag++ {
			if drop(r, 1, 2, frag) != want {
				t.Fatalf("round %d frag %d: verdict differs from the link's policy verdict", r, frag)
			}
		}
	}
}
