// Package chaos is the crash-fault harness: seeded generators for crash
// and stall plans, and a differential battery that drives live runs with
// real process deaths over every transport and proves each one replays
// bit-for-bit through the lockstep simulator (runtime.CrashReplay).
//
// Determinism discipline: every plan is a pure function of its seed, so
// a battery config names a reproducible chaos scenario — the same
// property that makes the repo's adversary schedules and loss patterns
// replayable extends to who dies, when, where in the round, and who
// hears the dying breath.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/runtime"
	"kset/internal/sim"
	"kset/internal/transport"
)

// RandomCrashPlan builds a seeded plan killing `crashes` distinct
// processes at rounds in [2, maxRound], sites cycling through
// before/mid/after-send with seeded partial sets for the mid-send
// victims. Victims are chosen uniformly; crashes is clamped to n-1 (the
// harness always keeps a survivor).
func RandomCrashPlan(n, crashes, maxRound int, seed int64, notify bool) *runtime.CrashPlan {
	if crashes > n-1 {
		crashes = n - 1
	}
	if maxRound < 2 {
		maxRound = 2
	}
	rng := rand.New(rand.NewSource(seed))
	plan := &runtime.CrashPlan{
		Round:   make([]int, n),
		Site:    make([]runtime.CrashSite, n),
		Partial: make([]graph.NodeSet, n),
		Notify:  notify,
	}
	victims := rng.Perm(n)[:crashes]
	for k, v := range victims {
		plan.Round[v] = 2 + rng.Intn(maxRound-1)
		plan.Site[v] = runtime.CrashSite(k % 3)
		if plan.Site[v] == runtime.CrashMidSend {
			plan.Partial[v] = randomSubset(n, rng)
		}
	}
	return plan
}

// SiteCrashPlan builds a single-victim plan: process victim dies in
// round r at the given site, reaching exactly the receivers in partial
// when the site is mid-send.
func SiteCrashPlan(n, victim, r int, site runtime.CrashSite, notify bool, partial ...int) *runtime.CrashPlan {
	plan := &runtime.CrashPlan{
		Round:   make([]int, n),
		Site:    make([]runtime.CrashSite, n),
		Partial: make([]graph.NodeSet, n),
		Notify:  notify,
	}
	plan.Round[victim] = r
	plan.Site[victim] = site
	if site == runtime.CrashMidSend {
		plan.Partial[victim] = graph.NodeSetOf(partial...)
	}
	return plan
}

// RandomStallPlan builds a seeded plan delaying `stalled` distinct
// processes' sends by delay for a window of `span` rounds starting in
// [2, 2+maxStart).
func RandomStallPlan(n, stalled, span, maxStart int, delay time.Duration, seed int64) *runtime.StallPlan {
	if stalled > n {
		stalled = n
	}
	if maxStart < 1 {
		maxStart = 1
	}
	rng := rand.New(rand.NewSource(seed))
	plan := &runtime.StallPlan{
		From:  make([]int, n),
		To:    make([]int, n),
		Delay: make([]time.Duration, n),
	}
	for _, v := range rng.Perm(n)[:stalled] {
		plan.From[v] = 2 + rng.Intn(maxStart)
		plan.To[v] = plan.From[v] + span - 1
		plan.Delay[v] = delay
	}
	return plan
}

// randomSubset returns a uniformly random subset of {0..n-1} (possibly
// empty: a mid-send crash that reached nobody).
func randomSubset(n int, rng *rand.Rand) graph.NodeSet {
	s := graph.NewNodeSet(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Add(i)
		}
	}
	return s
}

// BatteryConfig names one crash-replay scenario of the differential
// battery.
type BatteryConfig struct {
	Name    string
	Kind    string // "inproc", "tcp", "udp"
	N       int
	Crashes int
	Seed    int64
}

// BatteryConfigs enumerates the acceptance battery: every transport ×
// n ∈ {8, 16}, two crashes each, sites cycling through all three crash
// sites per plan (RandomCrashPlan assigns before/mid/after in victim
// order). In-proc runs announced crashes (the transport has no deadline
// machinery); the socket meshes run silent crashes and must detect them
// by stall.
func BatteryConfigs() []BatteryConfig {
	var cfgs []BatteryConfig
	for _, kind := range []string{"inproc", "tcp", "udp"} {
		for _, n := range []int{8, 16} {
			for seed := int64(1); seed <= 3; seed++ {
				cfgs = append(cfgs, BatteryConfig{
					Name:    fmt.Sprintf("%s-n%d-s%d", kind, n, seed),
					Kind:    kind,
					N:       n,
					Crashes: 2,
					Seed:    seed,
				})
			}
		}
	}
	return cfgs
}

// Run executes one battery config: a seeded adversary schedule, a
// seeded crash plan, a live run over the config's transport, and the
// replay verification. artifactDir, when non-empty, receives a .ksr of
// the realized graphs if the replay diverges.
func Run(cfg BatteryConfig, artifactDir string) (*runtime.CrashReplayReport, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N
	spec := sim.Spec{
		Adversary: adversary.RandomSources(n, 1+rng.Intn(2), n/2, 0.3, rng),
		Proposals: sim.SeqProposals(n),
		Opts:      core.Options{ConservativeDecide: true},
		MaxRounds: 4*n + 20,
	}
	maxCrashRound := n/2 + 2
	plan := RandomCrashPlan(n, cfg.Crashes, maxCrashRound, cfg.Seed, cfg.Kind == "inproc")
	opts := runtime.CrashReplayOpts{Kind: cfg.Kind, ArtifactDir: artifactDir}
	switch cfg.Kind {
	case "inproc":
		// Announced crashes: MarkDead is the supervisor's notice.
	case "tcp":
		opts.TCP.Stall = transport.StallOpts{
			RoundTimeout: 25 * time.Millisecond,
			DeadAfter:    4,
			MaxReconnect: 2,
		}
	case "udp":
		opts.UDP = transport.UDPOpts{
			RoundTimeout: 15 * time.Millisecond,
			Grace:        2 * time.Millisecond,
			DeadAfter:    4,
		}
	default:
		return nil, fmt.Errorf("chaos: unknown transport kind %q", cfg.Kind)
	}
	return runtime.CrashReplay(spec, plan, opts)
}
