package chaos

import (
	"testing"
	"time"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/runtime"
	"kset/internal/sim"
	"kset/internal/transport"
)

// TestCrashReplayBattery is the acceptance battery: every transport ×
// n ∈ {8, 16} × seeded crash plans cycling through all three crash
// sites, each live run verified bit-for-bit against its lockstep replay.
// Zero tolerance: any divergence fails (and drops a .ksr artifact via
// ArtifactDir when debugging locally).
func TestCrashReplayBattery(t *testing.T) {
	for _, cfg := range BatteryConfigs() {
		cfg := cfg
		if testing.Short() && cfg.N > 8 {
			continue
		}
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(cfg, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Crashed != cfg.Crashes {
				t.Errorf("plan killed %d processes, want %d", rep.Crashed, cfg.Crashes)
			}
			if !rep.KBound {
				t.Errorf("%d distinct decisions exceed realized MinK %d", rep.Distinct, rep.Replay.MinK)
			}
		})
	}
}

// TestCrashSitesExactHeardSets pins the site semantics on the announced
// in-proc transport, where nothing is timing-dependent: a before-send
// crash leaves only the victim's self-loop in its crash round, mid-send
// reaches exactly the partial set, after-send reaches everyone the
// schedule allows — and from the next round the victim's row is empty.
func TestCrashSitesExactHeardSets(t *testing.T) {
	const n, crashRound = 6, 3
	for _, tc := range []struct {
		name    string
		site    runtime.CrashSite
		partial []int
	}{
		{"before-send", runtime.CrashBeforeSend, nil},
		{"mid-send", runtime.CrashMidSend, []int{1, 4}},
		{"after-send", runtime.CrashAfterSend, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			victim := 2
			plan := SiteCrashPlan(n, victim, crashRound, tc.site, true, tc.partial...)
			spec := sim.Spec{
				Adversary: adversary.Complete(n),
				Proposals: sim.SeqProposals(n),
				Opts:      core.Options{ConservativeDecide: true},
				MaxRounds: 3*n + 10,
			}
			rep, err := runtime.CrashReplay(spec, plan, runtime.CrashReplayOpts{Kind: "inproc"})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Live.Rounds <= crashRound {
				t.Fatalf("run ended in %d rounds, before the crash at %d played out", rep.Live.Rounds, crashRound)
			}
			g := rep.Realized[crashRound-1]
			for q := 0; q < n; q++ {
				if q == victim {
					continue
				}
				got := g.HasEdge(victim, q)
				var want bool
				switch tc.site {
				case runtime.CrashBeforeSend:
					want = false
				case runtime.CrashMidSend:
					want = false
					for _, p := range tc.partial {
						if p == q {
							want = true
						}
					}
				case runtime.CrashAfterSend:
					want = true
				}
				if got != want {
					t.Errorf("crash round: edge victim->p%d = %v, want %v", q+1, got, want)
				}
			}
			// After the crash round the victim's row is self-loop only.
			for r := crashRound + 1; r <= rep.Live.Rounds; r++ {
				g := rep.Realized[r-1]
				for q := 0; q < n; q++ {
					if q != victim && g.HasEdge(victim, q) {
						t.Errorf("round %d: dead victim still delivered to p%d", r, q+1)
					}
				}
				if !g.HasEdge(victim, victim) {
					t.Errorf("round %d: victim's self-loop missing from the realized graph", r)
				}
			}
			// Survivors all decide (complete graph minus one crash keeps a
			// single root component: consensus among the living).
			for i := 0; i < n; i++ {
				if i != victim && !rep.Live.Decided[i] {
					t.Errorf("survivor p%d never decided", i+1)
				}
			}
		})
	}
}

// TestSilentCrashDetectedByStall runs a silent (unannounced) crash over
// the TCP mesh in chaos mode and over the UDP mesh: no MarkDead is ever
// called by the injector, so the only way the run can finish is the
// transport's own stall detector declaring the victim dead after
// DeadAfter deadline-closed rounds. The counters must show the verdict.
func TestSilentCrashDetectedByStall(t *testing.T) {
	for _, kind := range []string{"tcp", "udp"} {
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			const n = 5
			var counters transport.StallCounters
			plan := SiteCrashPlan(n, 1, 3, runtime.CrashAfterSend, false)
			spec := sim.Spec{
				Adversary: adversary.Complete(n),
				Proposals: sim.SeqProposals(n),
				Opts:      core.Options{ConservativeDecide: true},
				MaxRounds: 3*n + 12,
			}
			opts := runtime.CrashReplayOpts{Kind: kind}
			if kind == "tcp" {
				opts.TCP.Stall = transport.StallOpts{
					RoundTimeout: 25 * time.Millisecond,
					DeadAfter:    3,
					MaxReconnect: 2,
					Counters:     &counters,
				}
			} else {
				opts.UDP = transport.UDPOpts{
					RoundTimeout: 15 * time.Millisecond,
					Grace:        2 * time.Millisecond,
					DeadAfter:    3,
					Counters:     &counters,
				}
			}
			rep, err := runtime.CrashReplay(spec, plan, opts)
			if err != nil {
				t.Fatal(err)
			}
			if counters.Stalls.Load() == 0 {
				t.Error("silent crash closed no rounds by deadline")
			}
			if counters.Dead.Load() == 0 {
				t.Error("stall detector never issued the death verdict")
			}
			for i := 0; i < n; i++ {
				if i != 1 && !rep.Live.Decided[i] {
					t.Errorf("survivor p%d never decided", i+1)
				}
			}
		})
	}
}

// TestStallPlanRecoversWithoutVerdict delays one sender beyond the round
// deadline for a few rounds — long enough to burn deadlines, short
// enough that the miss streak never reaches DeadAfter. The run must
// finish with all processes deciding and zero death verdicts: a slow
// peer is not a dead peer.
func TestStallPlanRecoversWithoutVerdict(t *testing.T) {
	const n = 4
	var counters transport.StallCounters
	stall := &runtime.StallPlan{
		From:  make([]int, n),
		To:    make([]int, n),
		Delay: make([]time.Duration, n),
	}
	// p3 oversleeps the deadline in rounds 2 and 4 (not consecutive
	// enough for DeadAfter=3 even if both close by deadline).
	stall.From[2], stall.To[2], stall.Delay[2] = 2, 2, 40*time.Millisecond
	spec := sim.Spec{
		Adversary: adversary.Complete(n),
		Proposals: sim.SeqProposals(n),
		Opts:      core.Options{ConservativeDecide: true},
		MaxRounds: 3*n + 10,
	}
	rep, err := runtime.CrashReplay(spec, nil, runtime.CrashReplayOpts{
		Kind:  "udp",
		Stall: stall,
		UDP: transport.UDPOpts{
			RoundTimeout: 10 * time.Millisecond,
			Grace:        2 * time.Millisecond,
			DeadAfter:    3,
			Counters:     &counters,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if counters.Dead.Load() != 0 {
		t.Fatalf("a transient stall drew %d death verdicts", counters.Dead.Load())
	}
	for i := 0; i < n; i++ {
		if !rep.Live.Decided[i] {
			t.Errorf("p%d never decided after the stall cleared", i+1)
		}
	}
}
