package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/runtime"
	"kset/internal/sim"
	"kset/internal/transport"
)

// TestChaosNightlySoak is the long-budget crash grid the nightly
// workflow runs (KSET_NIGHTLY=1): every transport × n ∈ {8, 12, 16} ×
// 1–3 crashes × 6 seeds, each scenario replay-verified, plus a
// crashes-under-loss composition lane on UDP (injected deaths *and* 10%
// injected frame loss in the same run). Divergence runfiles land in
// KSET_ARTIFACT_DIR for upload.
func TestChaosNightlySoak(t *testing.T) {
	if os.Getenv("KSET_NIGHTLY") == "" {
		t.Skip("nightly chaos soak; set KSET_NIGHTLY=1 to run")
	}
	artifactDir := os.Getenv("KSET_ARTIFACT_DIR")

	for _, kind := range []string{"inproc", "tcp", "udp"} {
		for _, n := range []int{8, 12, 16} {
			for crashes := 1; crashes <= 3; crashes++ {
				for seed := int64(1); seed <= 6; seed++ {
					cfg := BatteryConfig{
						Name:    fmt.Sprintf("%s-n%d-c%d-s%d", kind, n, crashes, seed),
						Kind:    kind,
						N:       n,
						Crashes: crashes,
						Seed:    seed,
					}
					t.Run(cfg.Name, func(t *testing.T) {
						t.Parallel()
						rep, err := Run(cfg, artifactDir)
						if err != nil {
							t.Fatal(err)
						}
						if !rep.KBound {
							t.Errorf("k-bound violation: %d distinct decisions, realized MinK %d",
								rep.Distinct, rep.Replay.MinK)
						}
					})
				}
			}
		}
	}

	// Composition lane: crashes and wire loss at once. The replay must
	// still be exact — the realized heard-sets absorb both cut and loss.
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("udp-loss-crash-s%d", seed), func(t *testing.T) {
			t.Parallel()
			const n = 8
			rng := rand.New(rand.NewSource(seed))
			spec := sim.Spec{
				Adversary: adversary.RandomSources(n, 1+rng.Intn(2), n/2, 0.3, rng),
				Proposals: sim.SeqProposals(n),
				Opts:      core.Options{ConservativeDecide: true},
				MaxRounds: 4*n + 20,
			}
			plan := RandomCrashPlan(n, 2, n/2+2, seed, false)
			rep, err := runtime.CrashReplay(spec, plan, runtime.CrashReplayOpts{
				Kind: "udp",
				UDP: transport.UDPOpts{
					RoundTimeout: 15 * time.Millisecond,
					Grace:        2 * time.Millisecond,
					DeadAfter:    4,
				},
				Loss:        0.10,
				LossSeed:    seed,
				ArtifactDir: artifactDir,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.KBound {
				t.Errorf("k-bound violation under loss+crash: %d distinct, realized MinK %d",
					rep.Distinct, rep.Replay.MinK)
			}
		})
	}
}
