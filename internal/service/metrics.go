package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// metrics are the service's atomically-updated counters, rendered in
// the Prometheus text exposition format by WriteMetrics. Hand-rolled on
// purpose: the repo carries no external dependencies, and counters +
// gauges in text format are all a scraper needs.
type metrics struct {
	submitted        atomic.Int64
	rejected         atomic.Int64
	shed             atomic.Int64
	completed        atomic.Int64
	failed           atomic.Int64
	crashed          atomic.Int64
	running          atomic.Int64
	roundsTotal      atomic.Int64
	decisionsTotal   atomic.Int64
	kboundViolations atomic.Int64
}

// WriteMetrics renders the /metrics payload.
func (s *Service) WriteMetrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("ksetd_sessions_submitted_total", "Sessions submitted through the batch API.", s.met.submitted.Load())
	counter("ksetd_sessions_rejected_total", "Submissions rejected (validation or backpressure).", s.met.rejected.Load())
	counter("ksetd_sessions_shed_total", "Submissions turned away by load shedding (bounded queue full).", s.met.shed.Load())
	counter("ksetd_sessions_completed_total", "Sessions finished successfully.", s.met.completed.Load())
	counter("ksetd_sessions_failed_total", "Sessions that ended in an execution error.", s.met.failed.Load())
	counter("ksetd_sessions_crashed_total", "Sessions the watchdog declared crashed (partial results flushed).", s.met.crashed.Load())
	counter("ksetd_peer_stalls_total", "Rounds a session transport closed by deadline with senders missing.", s.stall.Stalls.Load())
	counter("ksetd_retries_total", "Transport reconnect attempts to stalled peers.", s.stall.Retries.Load())
	counter("ksetd_peers_dead_total", "Peer-death verdicts issued by session transports.", s.stall.Dead.Load())
	counter("ksetd_rounds_total", "Algorithm rounds executed across all sessions.", s.met.roundsTotal.Load())
	counter("ksetd_decisions_total", "Distinct decision values across all sessions.", s.met.decisionsTotal.Load())
	counter("ksetd_kbound_violations_total", "Sessions whose decisions exceeded the MinK bound (possible only with faithful_guard).", s.met.kboundViolations.Load())
	gauge("ksetd_sessions_running", "Sessions currently executing.", s.met.running.Load())
	gauge("ksetd_queue_depth", "Sessions accepted and waiting for a worker.", int64(len(s.queue)))
	gauge("ksetd_workers", "Size of the session worker pool.", int64(s.cfg.Workers))
	s.mu.Lock()
	retained := len(s.sessions)
	s.mu.Unlock()
	gauge("ksetd_sessions_retained", "Sessions held in the registry.", int64(retained))
	gauge("ksetd_uptime_seconds", "Seconds since the service started.", int64(time.Since(s.start).Seconds()))
}
