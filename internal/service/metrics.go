package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kset/internal/algo"
)

// metrics are the service's atomically-updated counters, rendered in
// the Prometheus text exposition format by WriteMetrics. Hand-rolled on
// purpose: the repo carries no external dependencies, and counters +
// gauges in text format are all a scraper needs.
//
// The unlabeled ksetd_* names are load-bearing: ksetload and the e2e
// harnesses parse them, so they keep their exact spelling and
// aggregate across every algorithm family. The per-family breakdown is
// additive, under labeled ksetd_algorithm_* names.
type metrics struct {
	submitted        atomic.Int64
	rejected         atomic.Int64
	shed             atomic.Int64
	completed        atomic.Int64
	failed           atomic.Int64
	crashed          atomic.Int64
	running          atomic.Int64
	roundsTotal      atomic.Int64
	decisionsTotal   atomic.Int64
	kboundViolations atomic.Int64

	algoMu     sync.Mutex
	algoBucket map[string]*algoMetrics
}

// algoMetrics is one algorithm family's labeled counter set.
type algoMetrics struct {
	completed atomic.Int64
	failed    atomic.Int64
	crashed   atomic.Int64
	rounds    atomic.Int64
	decisions atomic.Int64
}

// algoFamily returns (creating on first use) the labeled counters of
// one algorithm family.
func (m *metrics) algoFamily(name string) *algoMetrics {
	if name == "" {
		name = algo.Default
	}
	m.algoMu.Lock()
	defer m.algoMu.Unlock()
	if m.algoBucket == nil {
		m.algoBucket = make(map[string]*algoMetrics)
	}
	am := m.algoBucket[name]
	if am == nil {
		am = &algoMetrics{}
		m.algoBucket[name] = am
	}
	return am
}

// algoFamilies snapshots the labeled counter map in sorted name order.
func (m *metrics) algoFamilies() ([]string, map[string]*algoMetrics) {
	m.algoMu.Lock()
	defer m.algoMu.Unlock()
	names := make([]string, 0, len(m.algoBucket))
	snap := make(map[string]*algoMetrics, len(m.algoBucket))
	for name, am := range m.algoBucket {
		names = append(names, name)
		snap[name] = am
	}
	sort.Strings(names)
	return names, snap
}

// WriteMetrics renders the /metrics payload.
func (s *Service) WriteMetrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("ksetd_sessions_submitted_total", "Sessions submitted through the batch API.", s.met.submitted.Load())
	counter("ksetd_sessions_rejected_total", "Submissions rejected (validation or backpressure).", s.met.rejected.Load())
	counter("ksetd_sessions_shed_total", "Submissions turned away by load shedding (bounded queue full).", s.met.shed.Load())
	counter("ksetd_sessions_completed_total", "Sessions finished successfully.", s.met.completed.Load())
	counter("ksetd_sessions_failed_total", "Sessions that ended in an execution error.", s.met.failed.Load())
	counter("ksetd_sessions_crashed_total", "Sessions the watchdog declared crashed (partial results flushed).", s.met.crashed.Load())
	counter("ksetd_peer_stalls_total", "Rounds a session transport closed by deadline with senders missing.", s.stall.Stalls.Load())
	counter("ksetd_retries_total", "Transport reconnect attempts to stalled peers.", s.stall.Retries.Load())
	counter("ksetd_peers_dead_total", "Peer-death verdicts issued by session transports.", s.stall.Dead.Load())
	counter("ksetd_rounds_total", "Algorithm rounds executed across all sessions.", s.met.roundsTotal.Load())
	counter("ksetd_decisions_total", "Distinct decision values across all sessions.", s.met.decisionsTotal.Load())
	counter("ksetd_kbound_violations_total", "Sessions whose decisions exceeded the MinK bound (possible only with faithful_guard).", s.met.kboundViolations.Load())
	gauge("ksetd_sessions_running", "Sessions currently executing.", s.met.running.Load())
	gauge("ksetd_queue_depth", "Sessions accepted and waiting for a worker.", int64(len(s.queue)))
	gauge("ksetd_workers", "Size of the session worker pool.", int64(s.cfg.Workers))
	s.mu.Lock()
	retained := len(s.sessions)
	s.mu.Unlock()
	gauge("ksetd_sessions_retained", "Sessions held in the registry.", int64(retained))
	gauge("ksetd_uptime_seconds", "Seconds since the service started.", int64(time.Since(s.start).Seconds()))

	names, fams := s.met.algoFamilies()
	if len(names) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP ksetd_algorithm_sessions_total Finished sessions by algorithm family and terminal status.\n# TYPE ksetd_algorithm_sessions_total counter\n")
	for _, name := range names {
		am := fams[name]
		fmt.Fprintf(w, "ksetd_algorithm_sessions_total{algorithm=%q,status=\"completed\"} %d\n", name, am.completed.Load())
		fmt.Fprintf(w, "ksetd_algorithm_sessions_total{algorithm=%q,status=\"failed\"} %d\n", name, am.failed.Load())
		fmt.Fprintf(w, "ksetd_algorithm_sessions_total{algorithm=%q,status=\"crashed\"} %d\n", name, am.crashed.Load())
	}
	fmt.Fprintf(w, "# HELP ksetd_algorithm_rounds_total Algorithm rounds executed, by algorithm family.\n# TYPE ksetd_algorithm_rounds_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "ksetd_algorithm_rounds_total{algorithm=%q} %d\n", name, fams[name].rounds.Load())
	}
	fmt.Fprintf(w, "# HELP ksetd_algorithm_decisions_total Distinct decision values, by algorithm family.\n# TYPE ksetd_algorithm_decisions_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "ksetd_algorithm_decisions_total{algorithm=%q} %d\n", name, fams[name].decisions.Load())
	}
}
