package service

import (
	"bytes"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestE2EHundredConcurrentSessions is the in-process twin of the CI
// service smoke: 100 sessions submitted concurrently in batches through
// the HTTP API, polled to completion, every decision checked against
// the k-bound, and /metrics scraped for consistent counters.
func TestE2EHundredConcurrentSessions(t *testing.T) {
	s := New(Config{Workers: 8, Queue: 256})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const total, batches = 100, 10
	families := []string{"rooted", "single_source", "lowerbound", "partition_merge", "vertex_stable", "complete"}
	var mu sync.Mutex
	var ids []string
	var wg sync.WaitGroup
	wg.Add(batches)
	for b := 0; b < batches; b++ {
		go func(b int) {
			defer wg.Done()
			var req BatchRequest
			for i := 0; i < total/batches; i++ {
				idx := b*(total/batches) + i
				req.Sessions = append(req.Sessions, SessionSpec{
					N:      4 + idx%8,
					Family: families[idx%len(families)],
					Seed:   int64(idx),
					Noisy:  idx % 5,
					Roots:  1 + idx%3,
				})
			}
			body, _ := json.Marshal(req)
			resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				raw, _ := io.ReadAll(resp.Body)
				t.Errorf("batch %d: status %d: %s", b, resp.StatusCode, raw)
				return
			}
			var br BatchResponse
			if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
				t.Error(err)
				return
			}
			if br.Accepted != total/batches {
				t.Errorf("batch %d: accepted %d of %d: %+v", b, br.Accepted, total/batches, br.Results)
			}
			mu.Lock()
			for _, r := range br.Results {
				if r.ID != "" {
					ids = append(ids, r.ID)
				}
			}
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(ids) != total {
		t.Fatalf("accepted %d sessions, want %d", len(ids), total)
	}

	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("session %s not done before deadline", id)
			}
			resp, err := http.Get(srv.URL + "/v1/sessions/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var sess Session
			err = json.NewDecoder(resp.Body).Decode(&sess)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if sess.Status == "failed" {
				t.Fatalf("session %s failed: %s", id, sess.Error)
			}
			if sess.Status == "done" {
				if !sess.Result.KBound {
					t.Fatalf("session %s: %d distinct decisions exceed MinK %d",
						id, len(sess.Result.Distinct), sess.Result.MinK)
				}
				if !sess.Result.AllDecided {
					t.Fatalf("session %s: undecided processes", id)
				}
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	metrics := scrapeMetrics(t, srv.URL)
	if got := metrics["ksetd_sessions_completed_total"]; got < total {
		t.Fatalf("metrics report %d completed sessions, want >= %d", got, total)
	}
	if got := metrics["ksetd_sessions_submitted_total"]; got < total {
		t.Fatalf("metrics report %d submitted sessions, want >= %d", got, total)
	}
	if metrics["ksetd_rounds_total"] == 0 || metrics["ksetd_decisions_total"] == 0 {
		t.Fatalf("round/decision counters empty: %v", metrics)
	}
	if metrics["ksetd_kbound_violations_total"] != 0 {
		t.Fatalf("conservative-guard sessions produced k-bound violations: %v", metrics)
	}

	// Liveness endpoint sanity.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" {
		t.Fatalf("healthz: %+v", h)
	}
}

var metricLine = regexp.MustCompile(`(?m)^(ksetd_[a-z_]+) (\d+)$`)

func scrapeMetrics(t *testing.T, base string) map[string]int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int{}
	for _, m := range metricLine.FindAllStringSubmatch(string(raw), -1) {
		v, err := strconv.Atoi(m[2])
		if err != nil {
			t.Fatalf("metric %s: %v", m[1], err)
		}
		out[m[1]] = v
	}
	if len(out) == 0 {
		t.Fatalf("no ksetd_ metrics in scrape:\n%s", raw)
	}
	return out
}

func TestHTTPErrors(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		body string
		code int
	}{
		{"{not json", http.StatusBadRequest},
		{`{"sessions":[]}`, http.StatusBadRequest},
		{`{"sessions":[{"n":0,"family":"rooted"}]}`, http.StatusTooManyRequests}, // all rejected
	} {
		resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("body %q: status %d, want %d", tc.body, resp.StatusCode, tc.code)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/sessions/s-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp.StatusCode)
	}
	if _, err := http.Get(srv.URL + "/v1/sessions?status=done"); err != nil {
		t.Fatal(err)
	}
}
