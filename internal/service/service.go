// Package service implements ksetd's core: a long-running agreement
// service that multiplexes many concurrent agreement sessions over the
// distributed runtime (internal/runtime). Each session is one run of a
// registered algorithm family (internal/algo — k-set agreement by
// default, graph approximate agreement via SessionSpec.Algorithm) over
// a transport; the service adds the production plumbing the ROADMAP's
// scaling goal needs — a session registry, a bounded worker pool, a
// batched submission API with backpressure, and Prometheus-style
// observability (see http.go and metrics.go for the HTTP surface).
//
// By default k-set sessions execute with the repaired decision guard
// (core.Options.ConservativeDecide), so every session's decisions are
// guaranteed to satisfy the k-bound distinct <= MinK; the paper's
// published guard is available per session via SessionSpec.FaithfulGuard
// for experimentation (E10 documents how it can violate the bound).
package service

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"kset/internal/adversary"
	"kset/internal/algo"
	"kset/internal/approx"
	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/rounds"
	"kset/internal/runtime"
	"kset/internal/sim"
	"kset/internal/transport"
)

// Config sizes the service.
type Config struct {
	// Workers bounds the number of sessions executing concurrently;
	// default 8.
	Workers int
	// Queue bounds the number of accepted-but-not-yet-running sessions;
	// submissions beyond it are rejected (backpressure). Default 256.
	Queue int
	// MaxN bounds the per-session process count; default 128.
	MaxN int
	// Retain bounds how many finished sessions the registry keeps for
	// polling before the oldest are evicted; default 4096.
	Retain int
	// SessionTimeout is the per-session watchdog deadline: a session
	// still executing this long after it started is declared crashed —
	// its transport is torn down (which kills the run's process
	// goroutines promptly on every transport), the partial outcome
	// observed so far is flushed into the registry under status
	// "crashed", and the worker moves on. 0 disables the watchdog.
	SessionTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Queue <= 0 {
		c.Queue = 256
	}
	if c.MaxN <= 0 {
		c.MaxN = 128
	}
	if c.Retain <= 0 {
		c.Retain = 4096
	}
	return c
}

// SessionSpec is one agreement session request, as submitted through
// the batch API. The adversary family plus seed fully determine the
// schedule, so a session is replayable from its spec alone.
type SessionSpec struct {
	// N is the number of processes (required, 1..Config.MaxN; family
	// figure1 fixes it to 6).
	N int `json:"n"`
	// Family selects the schedule generator: complete, rooted,
	// single_source, lowerbound, eventual, tinterval, partition_merge,
	// vertex_stable, figure1.
	Family string `json:"family"`
	// Seed makes the schedule deterministic.
	Seed int64 `json:"seed"`
	// K is the lower-bound construction's k (family lowerbound only);
	// default n/2.
	K int `json:"k,omitempty"`
	// Roots is the number of root components (family rooted); default 1.
	Roots int `json:"roots,omitempty"`
	// Noisy is the length of the additive-noise prefix where the family
	// supports one.
	Noisy int `json:"noisy,omitempty"`
	// Proposals overrides the canonical 1..n proposal vector. For
	// algorithm approx, proposals are vertices of the target graph and
	// must lie in [0, vertices).
	Proposals []int64 `json:"proposals,omitempty"`
	// Algorithm selects the registered agreement family: "kset"
	// (default) or "approx" (graph approximate agreement). Unknown
	// names are rejected at submission with the valid-name list.
	Algorithm string `json:"algorithm,omitempty"`
	// Vertices sizes the approx target graph (algorithm approx only);
	// 0 defaults to n+1.
	Vertices int `json:"vertices,omitempty"`
	// Cycle makes the approx target graph a cycle instead of a path.
	Cycle bool `json:"cycle,omitempty"`
	// FaithfulGuard runs the paper's published r >= n decision guard
	// instead of the repaired conservative one (see E10: the published
	// guard may exceed the k-bound). Algorithm kset only.
	FaithfulGuard bool `json:"faithful_guard,omitempty"`
	// Transport selects the session's wire layer: "inproc" (default),
	// "tcp" (loopback sockets; costs n listeners + n² streams), or
	// "udp" (best-effort datagrams; the session runs with a generous
	// round deadline so a quiet loopback loses nothing, but any real
	// loss is tolerated by the algorithm, not retransmitted).
	Transport string `json:"transport,omitempty"`
	// MaxRounds overrides the automatic round bound.
	MaxRounds int `json:"max_rounds,omitempty"`
}

// SessionResult is the outcome of a finished session. A crashed
// session (watchdog deadline exceeded) carries a partial result:
// Partial is true, Decisions/Decided/Distinct/Rounds reflect the last
// fully-observed round, and the bound fields (MinK, KBound, RST) are
// zero — the run never finished, so there is no realized skeleton to
// evaluate the theorem against.
type SessionResult struct {
	// Decisions[i] is process i's decision (meaningful where Decided).
	Decisions []int64 `json:"decisions"`
	// Decided[i] reports whether process i decided.
	Decided []bool `json:"decided"`
	// Distinct is the sorted set of decided values.
	Distinct []int64 `json:"distinct"`
	// MinK is the smallest k with Psrcs(k) in the session's run — the
	// theorem-given bound on |Distinct|.
	MinK int `json:"min_k"`
	// KBound reports that the session's agreement-bound oracle held:
	// |Distinct| <= MinK for kset, pairwise-adjacent decisions for
	// approx (vacuously true outside the regime approx claims).
	KBound bool `json:"k_bound"`
	// AllDecided reports whether every process terminated.
	AllDecided bool `json:"all_decided"`
	// Rounds is the number of rounds executed; RST the observed
	// skeleton stabilization round.
	Rounds int `json:"rounds"`
	RST    int `json:"rst"`
	// Partial marks a crashed session's flushed-at-deadline snapshot.
	Partial bool `json:"partial,omitempty"`
}

// Session is one registry entry. Status moves queued -> running ->
// done|failed|crashed.
type Session struct {
	ID     string         `json:"id"`
	Status string         `json:"status"`
	Spec   SessionSpec    `json:"spec"`
	Result *SessionResult `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// SubmitResult is the per-item answer of a batch submission.
type SubmitResult struct {
	ID    string `json:"id,omitempty"`
	Error string `json:"error,omitempty"`
}

// Service is the multiplexed agreement service. Create with New, stop
// with Close.
type Service struct {
	cfg   Config
	start time.Time
	met   metrics
	// stall aggregates the transports' chaos counters across all
	// sessions (deadline-closed rounds, reconnect attempts, peer-death
	// verdicts) for /metrics.
	stall transport.StallCounters

	queue chan *Session
	stop  chan struct{}
	wg    sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	sessions map[string]*Session
	finished []string // eviction order of done/failed sessions
	nextID   uint64
}

// New starts a service with cfg's worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		start:    time.Now(),
		queue:    make(chan *Session, cfg.Queue),
		stop:     make(chan struct{}),
		sessions: make(map[string]*Session),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops accepting submissions, lets running sessions finish, and
// fails whatever is still queued with "service shutting down".
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	// Workers are gone; drain the queue synchronously.
	for {
		select {
		case sess := <-s.queue:
			s.finish(sess, nil, fmt.Errorf("service shutting down"))
		default:
			return
		}
	}
}

// Submit enqueues a batch of sessions. The answer is positional: each
// spec yields either an assigned session id or a rejection error
// (validation failure, or "queue full" backpressure). Accepted sessions
// execute asynchronously; poll Get.
func (s *Service) Submit(specs []SessionSpec) []SubmitResult {
	out := make([]SubmitResult, len(specs))
	for i, spec := range specs {
		out[i] = s.submitOne(spec)
	}
	return out
}

func (s *Service) submitOne(spec SessionSpec) SubmitResult {
	s.met.submitted.Add(1)
	if err := s.validate(&spec); err != nil {
		s.met.rejected.Add(1)
		return SubmitResult{Error: err.Error()}
	}
	// The non-blocking enqueue happens under the same lock as the
	// closed-check: Close sets closed under this lock before draining,
	// so a session can never slip into the queue after the drain and
	// sit "queued" forever.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.met.rejected.Add(1)
		return SubmitResult{Error: "service closed"}
	}
	s.nextID++
	sess := &Session{ID: fmt.Sprintf("s-%06d", s.nextID), Status: "queued", Spec: spec}
	select {
	case s.queue <- sess:
		s.sessions[sess.ID] = sess
		return SubmitResult{ID: sess.ID}
	default:
		// Backpressure: the bounded queue is full. The session was
		// never registered, so rejected ids are not pollable.
		s.met.rejected.Add(1)
		s.met.shed.Add(1)
		return SubmitResult{Error: "queue full"}
	}
}

// Get returns a snapshot of the session with the given id.
func (s *Service) Get(id string) (Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return Session{}, false
	}
	return *sess, true
}

// List returns snapshots of up to limit sessions with the given status
// ("" matches all), in unspecified order.
func (s *Service) List(status string, limit int) []Session {
	if limit <= 0 {
		limit = 100
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Session, 0, limit)
	for _, sess := range s.sessions {
		if status != "" && sess.Status != status {
			continue
		}
		out = append(out, *sess)
		if len(out) == limit {
			break
		}
	}
	return out
}

func (s *Service) validate(spec *SessionSpec) error {
	if spec.Family == "figure1" {
		if spec.N == 0 {
			spec.N = 6
		}
		if spec.N != 6 {
			return fmt.Errorf("family figure1 fixes n = 6, got %d", spec.N)
		}
	}
	if spec.N < 1 || spec.N > s.cfg.MaxN {
		return fmt.Errorf("n = %d out of range [1,%d]", spec.N, s.cfg.MaxN)
	}
	if spec.Proposals != nil && len(spec.Proposals) != spec.N {
		return fmt.Errorf("%d proposals for n = %d", len(spec.Proposals), spec.N)
	}
	switch spec.Transport {
	case "", "inproc", "tcp", "udp":
	default:
		return fmt.Errorf("unknown transport %q", spec.Transport)
	}
	alg, err := algo.Lookup(spec.Algorithm)
	if err != nil {
		return err
	}
	spec.Algorithm = alg.Name
	if alg.Name != algo.Approx && (spec.Vertices != 0 || spec.Cycle) {
		return fmt.Errorf("vertices/cycle apply only to algorithm %q", algo.Approx)
	}
	if alg.Name != algo.KSet && spec.FaithfulGuard {
		return fmt.Errorf("faithful_guard applies only to algorithm %q", algo.KSet)
	}
	adv, err := buildAdversary(*spec)
	if err != nil {
		return err
	}
	// A full dry resolve catches the family-specific problems (approx
	// proposals outside the vertex range, bad graph sizes) at submission
	// time, where the client gets a positional error instead of a failed
	// session.
	dry := sessionSimSpec(*spec, adv, nil)
	if err := dry.Resolve(); err != nil {
		return err
	}
	return nil
}

// sessionSimSpec assembles the sim.Spec a session executes: the family
// name and its session-configured params, the proposal vector, and the
// caller's runner (nil for submission-time dry resolution).
func sessionSimSpec(spec SessionSpec, adv rounds.Adversary, runner func(rounds.Config) (*rounds.Result, error)) sim.Spec {
	props := spec.Proposals
	if props == nil {
		props = sim.SeqProposals(spec.N)
	}
	out := sim.Spec{
		Adversary: adv,
		Proposals: props,
		Algorithm: spec.Algorithm,
		MaxRounds: spec.MaxRounds,
		Runner:    runner,
	}
	switch spec.Algorithm {
	case algo.Approx:
		shape := approx.Path
		if spec.Cycle {
			shape = approx.Cycle
		}
		out.Params = approx.Options{Graph: approx.Graph{Shape: shape, V: spec.Vertices}}
	default:
		out.Params = core.Options{ConservativeDecide: !spec.FaithfulGuard}
	}
	return out
}

// buildAdversary maps a session spec onto the adversary catalogue.
func buildAdversary(spec SessionSpec) (rounds.Adversary, error) {
	n := spec.N
	rng := rand.New(rand.NewSource(spec.Seed))
	roots := spec.Roots
	if roots <= 0 {
		roots = 1
	}
	if roots > n {
		return nil, fmt.Errorf("roots = %d > n = %d", roots, n)
	}
	switch spec.Family {
	case "complete":
		return adversary.Complete(n), nil
	case "rooted":
		return adversary.RandomSources(n, roots, spec.Noisy, 0.25, rng), nil
	case "single_source":
		return adversary.RandomSingleSource(n, spec.Noisy, 0.2, 0.2, rng), nil
	case "lowerbound":
		k := spec.K
		if k == 0 {
			k = n / 2
		}
		if k < 1 || k > n {
			return nil, fmt.Errorf("lowerbound k = %d out of range [1,%d]", k, n)
		}
		if k == n {
			return adversary.Isolation(n), nil
		}
		if k == 1 {
			return adversary.Complete(n), nil
		}
		return adversary.LowerBound(n, k), nil
	case "eventual":
		return adversary.Eventual(adversary.Complete(n), spec.Noisy), nil
	case "tinterval":
		return adversary.NewTInterval(n, 4, 4*n, min(3, n), spec.Seed), nil
	case "partition_merge":
		return adversary.NewPartitionMerge(n, min(4, n), 2, spec.Seed), nil
	case "vertex_stable":
		return adversary.NewVertexStableRoot(n, max(1, n/4), 0.3, spec.Seed), nil
	case "figure1":
		return adversary.Figure1(), nil
	case "":
		return nil, fmt.Errorf("missing adversary family")
	default:
		return nil, fmt.Errorf("unknown adversary family %q", spec.Family)
	}
}

// worker executes queued sessions until Close.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case sess := <-s.queue:
			s.execute(sess)
		case <-s.stop:
			return
		}
	}
}

// execute runs one session over the distributed runtime and records the
// outcome. When Config.SessionTimeout is set, a watchdog arms for the
// duration of the run: firing tears the session's transport down (the
// run's process goroutines die on ErrClosed within a round) and the
// session terminates as "crashed" with the partial outcome the watchdog
// observed — so one wedged session can never pin a worker forever.
func (s *Service) execute(sess *Session) {
	s.setStatus(sess.ID, "running")
	s.met.running.Add(1)
	defer s.met.running.Add(-1)

	lr := newLiveRun(sess.Spec.N)
	if d := s.cfg.SessionTimeout; d > 0 {
		timer := time.AfterFunc(d, lr.kill)
		defer timer.Stop()
	}
	am := s.met.algoFamily(sess.Spec.Algorithm)
	out, err := runSession(sess.Spec, lr, &s.stall)
	if err != nil {
		if lr.killed() {
			s.met.crashed.Add(1)
			am.crashed.Add(1)
			s.terminate(sess, "crashed", lr.partial(),
				fmt.Sprintf("watchdog: session exceeded %v deadline", s.cfg.SessionTimeout))
			return
		}
		am.failed.Add(1)
		s.finish(sess, nil, err)
		return
	}
	res := &SessionResult{
		Decisions:  out.Decisions,
		Decided:    out.Decided,
		Distinct:   out.DistinctDecisions(),
		MinK:       out.MinK,
		Rounds:     out.Rounds,
		RST:        out.RST,
		AllDecided: out.CheckTermination() == nil,
	}
	// The agreement-bound verdict is the family's own oracle now: for
	// kset, a "k-bound" violation fires exactly when |Distinct| > MinK
	// (the historical check, bit for bit); for approx, an "agreement"
	// violation fires when two decisions are not adjacent on the target
	// graph inside the claimed regime.
	res.KBound = true
	for _, v := range out.CheckAlgorithm() {
		if v.Oracle == "k-bound" || v.Oracle == "agreement" {
			res.KBound = false
		}
	}
	if !res.KBound {
		s.met.kboundViolations.Add(1)
	}
	s.met.roundsTotal.Add(int64(out.Rounds))
	s.met.decisionsTotal.Add(int64(len(res.Distinct)))
	am.completed.Add(1)
	am.rounds.Add(int64(out.Rounds))
	am.decisions.Add(int64(len(res.Distinct)))
	s.finish(sess, res, nil)
}

// runSession executes one spec over the runtime (sessions are real
// distributed executions, not simulator calls — the sim package here
// only supplies the measurement pipeline around runtime.NewRunner). lr
// observes the run for the watchdog (partial outcomes, transport
// teardown handle); counters aggregate the transport's stall/retry/
// death tallies into the service's /metrics.
func runSession(spec SessionSpec, lr *liveRun, counters *transport.StallCounters) (*sim.Outcome, error) {
	adv, err := buildAdversary(spec)
	if err != nil {
		return nil, err
	}
	ropts := runtime.RunnerOpts{Kind: spec.Transport, Algorithm: spec.Algorithm, OnTransport: lr.onTransport}
	switch spec.Transport {
	case "udp":
		// Sessions favor fidelity over round latency: with a generous
		// deadline, a quiet loopback effectively never loses a frame, so
		// session results stay replayable in practice while the
		// algorithm still tolerates any loss that does occur.
		ropts.UDP = transport.UDPOpts{RoundTimeout: 250 * time.Millisecond, Grace: 2 * time.Millisecond,
			Counters: counters}
	case "tcp":
		// Counters alone do not switch the mesh into chaos mode (that
		// takes a round deadline); they just surface any verdicts a
		// chaos-tuned future session records.
		ropts.TCPOpts.Stall.Counters = counters
	}
	simSpec := sessionSimSpec(spec, adv, runtime.NewRunner(ropts))
	simSpec.Observer = lr
	return sim.Execute(simSpec)
}

// liveRun is the watchdog's view of one executing session: it observes
// every completed round (rounds.Observer, called on the runtime
// controller's quiescent point) so a crashed session can flush the
// outcome it reached, and it holds the transport handle so the watchdog
// verdict can tear the run down.
type liveRun struct {
	mu       sync.Mutex
	tr       transport.Transport
	dead     bool
	rounds   int
	decided  []bool
	decision []int64
}

func newLiveRun(n int) *liveRun {
	return &liveRun{decided: make([]bool, n), decision: make([]int64, n)}
}

// onTransport is the RunnerOpts hook: it stashes the run's transport
// for the watchdog. A watchdog that fired before the transport existed
// (a session wedged in mesh construction) kills it on arrival.
func (lr *liveRun) onTransport(tr transport.Transport) {
	lr.mu.Lock()
	lr.tr = tr
	dead := lr.dead
	lr.mu.Unlock()
	if dead {
		tr.Close()
	}
}

// OnRound implements rounds.Observer: snapshot the decision state after
// every completed round. Runs on the controller goroutine while all
// processes are parked, so reading the Deciders is race-free.
func (lr *liveRun) OnRound(r int, _ *graph.Digraph, procs []rounds.Algorithm) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.rounds = r
	for i, p := range procs {
		if d, ok := p.(rounds.Decider); ok && d.Decided() {
			lr.decided[i] = true
			lr.decision[i], _ = d.Decision()
		}
	}
}

// kill is the watchdog verdict: mark the session crashed and tear its
// transport down, which wakes every parked Gather with ErrClosed.
func (lr *liveRun) kill() {
	lr.mu.Lock()
	lr.dead = true
	tr := lr.tr
	lr.mu.Unlock()
	if tr != nil {
		tr.Close()
	}
}

// killed reports whether the watchdog fired.
func (lr *liveRun) killed() bool {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.dead
}

// partial flushes the last fully-observed round into a crashed
// session's result.
func (lr *liveRun) partial() *SessionResult {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	res := &SessionResult{
		Partial:   true,
		Rounds:    lr.rounds,
		Decisions: append([]int64(nil), lr.decision...),
		Decided:   append([]bool(nil), lr.decided...),
	}
	seen := map[int64]bool{}
	for i, d := range lr.decided {
		if d && !seen[lr.decision[i]] {
			seen[lr.decision[i]] = true
			res.Distinct = append(res.Distinct, lr.decision[i])
		}
	}
	sort.Slice(res.Distinct, func(i, j int) bool { return res.Distinct[i] < res.Distinct[j] })
	return res
}

func (s *Service) setStatus(id, status string) {
	s.mu.Lock()
	if sess, ok := s.sessions[id]; ok {
		sess.Status = status
	}
	s.mu.Unlock()
}

// finish records a session's terminal state and applies the retention
// bound, evicting the oldest finished sessions beyond Config.Retain.
func (s *Service) finish(sess *Session, res *SessionResult, err error) {
	if err != nil {
		s.terminate(sess, "failed", nil, err.Error())
		s.met.failed.Add(1)
		return
	}
	s.terminate(sess, "done", res, "")
	s.met.completed.Add(1)
}

// terminate moves a session to a terminal status (done, failed, or
// crashed) and evicts the oldest finished sessions beyond Config.Retain.
func (s *Service) terminate(sess *Session, status string, res *SessionResult, errMsg string) {
	s.mu.Lock()
	sess.Status, sess.Result, sess.Error = status, res, errMsg
	s.finished = append(s.finished, sess.ID)
	for len(s.finished) > s.cfg.Retain {
		victim := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.sessions, victim)
	}
	s.mu.Unlock()
}
