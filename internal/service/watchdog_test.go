package service

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// slowSpec is a session that cannot decide before the watchdog fires:
// at n = 128 a round costs ~20ms of O(n^4) merge work and the decision
// sits hundreds of rounds out, so the session is reliably still
// executing (with rounds observed) seconds into its run.
func slowSpec() SessionSpec {
	return SessionSpec{N: 128, Family: "rooted", Roots: 2, Seed: 1}
}

// waitStatus polls until the session reaches the wanted status.
func waitStatus(t *testing.T, s *Service, id, want string) Session {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		sess, ok := s.Get(id)
		if !ok {
			t.Fatalf("session %s vanished", id)
		}
		if sess.Status == want {
			return sess
		}
		if sess.Status == "failed" && want != "failed" {
			t.Fatalf("session %s failed: %s", id, sess.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("session %s never reached status %q", id, want)
	return Session{}
}

// TestWatchdogCrashesWedgedSession pins the per-session watchdog: a
// session that cannot decide is declared crashed at the deadline, its
// partial outcome (rounds observed so far) is flushed into the registry,
// and the crash is counted in /metrics. The worker survives to run the
// next session.
func TestWatchdogCrashesWedgedSession(t *testing.T) {
	s := New(Config{Workers: 1, SessionTimeout: 300 * time.Millisecond})
	defer s.Close()

	r := s.Submit([]SessionSpec{slowSpec()})[0]
	if r.Error != "" {
		t.Fatal(r.Error)
	}
	sess := waitStatus(t, s, r.ID, "crashed")
	if sess.Result == nil || !sess.Result.Partial {
		t.Fatalf("crashed session carries no partial result: %+v", sess)
	}
	if sess.Result.Rounds == 0 {
		t.Error("watchdog flushed zero observed rounds from a session that was executing")
	}
	if !strings.Contains(sess.Error, "watchdog") {
		t.Errorf("crashed session error %q does not name the watchdog", sess.Error)
	}
	for i, d := range sess.Result.Decided {
		if d {
			t.Errorf("p%d decided under permanent noise", i+1)
		}
	}

	// The worker is free again: a fast session completes normally and
	// the watchdog leaves it alone.
	r = s.Submit([]SessionSpec{{N: 4, Family: "complete", Seed: 2}})[0]
	if r.Error != "" {
		t.Fatal(r.Error)
	}
	done := waitStatus(t, s, r.ID, "done")
	if done.Result.Partial {
		t.Error("completed session marked partial")
	}

	var sb strings.Builder
	s.WriteMetrics(&sb)
	for _, want := range []string{
		"ksetd_sessions_crashed_total 1",
		"ksetd_peer_stalls_total",
		"ksetd_retries_total",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDrainFlushesCrashedInFlight is the graceful-drain pin: Close
// arrives while a wedged session is in flight; the watchdog crashes it,
// the partial outcome is flushed (not lost to the shutdown), Close
// returns, and no watchdog or session goroutines leak.
func TestDrainFlushesCrashedInFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 2, SessionTimeout: 300 * time.Millisecond})

	r := s.Submit([]SessionSpec{slowSpec()})[0]
	if r.Error != "" {
		t.Fatal(r.Error)
	}
	waitStatus(t, s, r.ID, "running")
	s.Close() // blocks until the watchdog crashes the in-flight session

	sess, ok := s.Get(r.ID)
	if !ok {
		t.Fatal("session evicted during drain")
	}
	if sess.Status != "crashed" {
		t.Fatalf("in-flight session drained as %q, want crashed (error: %s)", sess.Status, sess.Error)
	}
	if sess.Result == nil || !sess.Result.Partial || sess.Result.Rounds == 0 {
		t.Fatalf("drain lost the partial outcome: %+v", sess.Result)
	}

	// Give exited goroutines a moment to unwind, then check for leaks.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines leaked across drain: %d before, %d after", before, got)
	}
}

// TestLoadSheddingRetryAfter pins the overload answer: with the worker
// parked on a wedged session and the bounded queue full, a fully-shed
// batch gets 503 plus a Retry-After hint, and the shed submissions are
// counted.
func TestLoadSheddingRetryAfter(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 1, SessionTimeout: time.Second})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Fill the worker and the queue: two wedged sessions occupy both
	// (each for ~1s until its watchdog fires), so every further submit
	// sheds. Rejections in between just mean the worker had not yet
	// dequeued the first — retry until both are resident.
	accepted := 0
	for i := 0; i < 100 && accepted < 2; i++ {
		if s.Submit([]SessionSpec{slowSpec()})[0].Error == "" {
			accepted++
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if accepted < 2 {
		t.Fatal("could not park the worker and fill the queue")
	}

	// The worker stays parked for ~1s, so the shed state holds.
	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"sessions":[{"n":4,"family":"complete"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed batch: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var sb strings.Builder
	s.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "ksetd_sessions_shed_total") {
		t.Error("metrics missing shed counter")
	}
}
