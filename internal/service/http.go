package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"kset/internal/algo"
)

// BatchRequest is the body of POST /v1/sessions.
type BatchRequest struct {
	Sessions []SessionSpec `json:"sessions"`
}

// BatchResponse answers a batch submission positionally.
type BatchResponse struct {
	Results []SubmitResult `json:"results"`
	// Accepted counts entries that were enqueued; Rejected the rest.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
}

// Health is the /healthz payload.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Running       int64   `json:"sessions_running"`
	QueueDepth    int     `json:"queue_depth"`
}

// MaxBatch bounds one submission request; bigger batches get a 400
// (clients should split, the queue bound applies regardless).
const MaxBatch = 1024

// RetryAfter is the backoff hint a load-shed submission carries in its
// Retry-After header: the queue is bounded and drains at session
// granularity, so a short fixed hint beats an estimate.
const RetryAfter = 2 * time.Second

// Handler returns the service's HTTP API:
//
//	POST /v1/sessions          batch submission (BatchRequest -> BatchResponse)
//	GET  /v1/sessions/{id}     one session snapshot
//	GET  /v1/sessions?status=  session list (bounded)
//	GET  /healthz              liveness + queue depth
//	GET  /metrics              Prometheus text format
//
// Status codes: 202 when at least one session was accepted, 503 +
// Retry-After when the whole batch was load-shed (queue full or
// draining), 429 when it was rejected outright by validation, 400 for
// malformed requests, 404 for unknown sessions.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleSubmit)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Sessions) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Sessions) > MaxBatch {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds MaxBatch %d", len(req.Sessions), MaxBatch))
		return
	}
	// An unknown algorithm name is a malformed request, not a rejected
	// session: answer 400 before submitting anything, with the
	// valid-name list so the client can fix its spelling.
	for i, spec := range req.Sessions {
		if _, err := algo.Lookup(spec.Algorithm); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error":            fmt.Sprintf("sessions[%d]: unknown algorithm %q", i, spec.Algorithm),
				"valid_algorithms": algo.Names(),
			})
			return
		}
	}
	resp := BatchResponse{Results: s.Submit(req.Sessions)}
	shed := false
	for _, res := range resp.Results {
		switch res.Error {
		case "":
			resp.Accepted++
			continue
		case "queue full", "service closed":
			shed = true
		}
		resp.Rejected++
	}
	code := http.StatusAccepted
	if resp.Accepted == 0 {
		// The whole batch bounced. Load shedding (bounded queue full, or
		// the service is draining) is the overloaded-server case: 503
		// with a Retry-After so well-behaved clients back off and come
		// back; a batch rejected purely by validation stays 429.
		if shed {
			w.Header().Set("Retry-After", strconv.Itoa(int(RetryAfter/time.Second)))
			code = http.StatusServiceUnavailable
		} else {
			code = http.StatusTooManyRequests
		}
	}
	writeJSON(w, code, resp)
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, sess)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"sessions": s.List(r.URL.Query().Get("status"), 100),
	})
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Running:       s.met.running.Load(),
		QueueDepth:    len(s.queue),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
