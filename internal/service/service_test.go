package service

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// waitDone polls until the session reaches a terminal state.
func waitDone(t *testing.T, s *Service, id string) Session {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		sess, ok := s.Get(id)
		if !ok {
			t.Fatalf("session %s vanished", id)
		}
		if sess.Status == "done" || sess.Status == "failed" {
			return sess
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("session %s not finished in time", id)
	return Session{}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	res := s.Submit([]SessionSpec{
		{N: 4, Family: "rooted", Seed: 1},
		{N: 0, Family: "rooted"},
		{N: 4, Family: "no-such-family"},
		{N: 4, Family: "rooted", Proposals: []int64{1, 2}},
		{N: 4, Family: "rooted", Transport: "carrier-pigeon"},
		{N: 7, Family: "figure1"},
		{N: 4, Family: "rooted", Roots: 9},
		{N: 4, Family: "lowerbound", K: 17},
		{N: 129, Family: "rooted"},
	})
	if res[0].Error != "" || res[0].ID == "" {
		t.Fatalf("valid spec rejected: %+v", res[0])
	}
	for i, r := range res[1:] {
		if r.Error == "" {
			t.Errorf("invalid spec %d accepted: %+v", i+1, r)
		}
	}
}

func TestSessionLifecycleAndKBound(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	specs := []SessionSpec{
		{N: 6, Family: "single_source", Seed: 7},
		{N: 8, Family: "rooted", Roots: 3, Noisy: 4, Seed: 8},
		{N: 8, Family: "lowerbound", K: 3, Seed: 9},
		{N: 6, Family: "figure1"},
		{N: 6, Family: "partition_merge", Seed: 10},
		{N: 6, Family: "vertex_stable", Seed: 11},
		{N: 6, Family: "tinterval", Seed: 12},
		{N: 5, Family: "complete", Seed: 13},
		{N: 5, Family: "eventual", Noisy: 3, Seed: 14},
		{N: 4, Family: "single_source", Seed: 15, Transport: "tcp"},
		{N: 4, Family: "rooted", Roots: 2, Seed: 16, Transport: "udp"},
	}
	res := s.Submit(specs)
	for i, r := range res {
		if r.Error != "" {
			t.Fatalf("spec %d rejected: %s", i, r.Error)
		}
		sess := waitDone(t, s, r.ID)
		if sess.Status != "done" {
			t.Fatalf("spec %d (%s): status %s, error %s", i, specs[i].Family, sess.Status, sess.Error)
		}
		if !sess.Result.KBound {
			t.Errorf("spec %d (%s): %d distinct decisions exceed MinK %d",
				i, specs[i].Family, len(sess.Result.Distinct), sess.Result.MinK)
		}
		if !sess.Result.AllDecided {
			t.Errorf("spec %d (%s): not all processes decided", i, specs[i].Family)
		}
	}
	// single_source (MinK = 1) with the conservative guard must reach
	// consensus.
	first, _ := s.Get(res[0].ID)
	if len(first.Result.Distinct) != 1 {
		t.Errorf("single_source session decided %v, want consensus", first.Result.Distinct)
	}
}

// TestSessionAtMaxN pins that the service genuinely accepts and
// executes sessions at the default MaxN (128) — the ceiling is not
// decorative — on the in-process transport and over the full
// 128-socket UDP mesh. Rounds are capped via the spec: deciding at
// n=128 inherently takes ~n rounds of O(n^4) merge work (about a
// minute on one core), so the scale pin runs a fixed prefix and
// asserts clean execution and the k-bound instead of decision.
func TestSessionAtMaxN(t *testing.T) {
	if testing.Short() {
		t.Skip("n=128 sessions exceed the short-test budget")
	}
	s := New(Config{Workers: 2})
	defer s.Close()
	const capRounds = 10
	specs := []SessionSpec{
		{N: 128, Family: "rooted", Roots: 4, Noisy: 16, Seed: 2, MaxRounds: capRounds},
		{N: 128, Family: "rooted", Roots: 4, Seed: 3, MaxRounds: capRounds, Transport: "udp"},
	}
	for i, r := range s.Submit(specs) {
		if r.Error != "" {
			t.Fatalf("n=128 spec %d rejected: %s", i, r.Error)
		}
		sess := waitDone(t, s, r.ID)
		if sess.Status != "done" {
			t.Fatalf("n=128 spec %d (%s/%s): status %s, error %s",
				i, specs[i].Family, specs[i].Transport, sess.Status, sess.Error)
		}
		if sess.Result.Rounds != capRounds {
			t.Errorf("n=128 spec %d: ran %d rounds, want %d", i, sess.Result.Rounds, capRounds)
		}
		if !sess.Result.KBound {
			t.Errorf("n=128 spec %d: %d distinct decisions exceed MinK %d",
				i, len(sess.Result.Distinct), sess.Result.MinK)
		}
	}
}

// TestDeterministicReplay pins that a session is replayable from its
// spec: same spec, same decisions — across fresh service instances and
// across transports.
func TestDeterministicReplay(t *testing.T) {
	spec := SessionSpec{N: 8, Family: "rooted", Roots: 2, Noisy: 6, Seed: 42}
	var results []*SessionResult
	for i := 0; i < 2; i++ {
		s := New(Config{Workers: 2})
		id := s.Submit([]SessionSpec{spec})[0].ID
		sess := waitDone(t, s, id)
		if sess.Status != "done" {
			t.Fatalf("replay %d failed: %s", i, sess.Error)
		}
		results = append(results, sess.Result)
		s.Close()
	}
	s := New(Config{Workers: 2})
	defer s.Close()
	// "udp" rides along here deliberately: over a quiet loopback with the
	// service's generous round deadline the best-effort transport loses
	// nothing, so the realized run equals the scheduled run and even the
	// lossy transport must reproduce the decisions bit for bit.
	for _, kind := range []string{"tcp", "udp"} {
		alt := spec
		alt.Transport = kind
		sess := waitDone(t, s, s.Submit([]SessionSpec{alt})[0].ID)
		if sess.Status != "done" {
			t.Fatalf("%s replay failed: %s", kind, sess.Error)
		}
		results = append(results, sess.Result)
	}
	for i := 1; i < len(results); i++ {
		if fmt.Sprint(results[i].Decisions) != fmt.Sprint(results[0].Decisions) ||
			results[i].Rounds != results[0].Rounds {
			t.Fatalf("replay %d diverged: %+v vs %+v", i, results[i], results[0])
		}
	}
}

func TestBackpressure(t *testing.T) {
	// One worker parked on a slow-ish session, queue of 2: the 4th..nth
	// submissions must bounce with "queue full".
	s := New(Config{Workers: 1, Queue: 2})
	defer s.Close()
	specs := make([]SessionSpec, 8)
	for i := range specs {
		specs[i] = SessionSpec{N: 16, Family: "rooted", Roots: 4, Noisy: 24, Seed: int64(i)}
	}
	res := s.Submit(specs)
	full := 0
	for _, r := range res {
		if r.Error == "queue full" {
			full++
		}
	}
	if full == 0 {
		t.Fatal("no submission was rejected by backpressure")
	}
	for _, r := range res {
		if r.ID == "" {
			continue
		}
		if sess := waitDone(t, s, r.ID); sess.Status != "done" {
			t.Fatalf("accepted session %s: %s", r.ID, sess.Error)
		}
	}
}

func TestRetentionEviction(t *testing.T) {
	s := New(Config{Workers: 2, Retain: 3})
	defer s.Close()
	var ids []string
	for i := 0; i < 6; i++ {
		r := s.Submit([]SessionSpec{{N: 4, Family: "complete", Seed: int64(i)}})[0]
		if r.Error != "" {
			t.Fatal(r.Error)
		}
		waitDone(t, s, r.ID)
		ids = append(ids, r.ID)
	}
	retained := 0
	for _, id := range ids {
		if _, ok := s.Get(id); ok {
			retained++
		}
	}
	if retained != 3 {
		t.Fatalf("retained %d finished sessions, want Retain = 3", retained)
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Fatal("oldest session survived eviction")
	}
}

func TestFaithfulGuardIsObservable(t *testing.T) {
	// The E10 witness under the published guard must violate the
	// k-bound (that is the point of the fire drill) and the service
	// must count it rather than hide it.
	s := New(Config{Workers: 1})
	defer s.Close()
	r := s.Submit([]SessionSpec{{
		N: 6, Family: "single_source", Seed: 3, FaithfulGuard: true,
	}})[0]
	if r.Error != "" {
		t.Fatal(r.Error)
	}
	sess := waitDone(t, s, r.ID)
	if sess.Status != "done" {
		t.Fatal(sess.Error)
	}
	// Whether this particular run violates is seed-dependent; the
	// invariant is that the service reported KBound honestly.
	if sess.Result.KBound != (len(sess.Result.Distinct) <= sess.Result.MinK) {
		t.Fatal("KBound flag inconsistent with result")
	}
	var sb strings.Builder
	s.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "ksetd_kbound_violations_total") {
		t.Fatal("metrics missing kbound violation counter")
	}
}

func TestCloseRejectsAndDrains(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Close()
	res := s.Submit([]SessionSpec{{N: 4, Family: "complete"}})
	if res[0].Error == "" {
		t.Fatal("closed service accepted a session")
	}
	s.Close() // idempotent
}
