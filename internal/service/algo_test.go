package service

// Sessions through the algorithm-generic seam: approx sessions end to
// end on every transport, the validation fences between family-specific
// spec fields, the HTTP 400 contract for unknown algorithm names, and
// the labeled per-family metrics.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kset/internal/approx"
)

func TestApproxSessionLifecycle(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	specs := []SessionSpec{
		{N: 5, Family: "rooted", Roots: 1, Seed: 21, Algorithm: "approx"},
		{N: 6, Family: "single_source", Seed: 22, Algorithm: "approx", Vertices: 9},
		{N: 5, Family: "rooted", Roots: 1, Seed: 23, Algorithm: "approx", Vertices: 8, Cycle: true},
		{N: 4, Family: "rooted", Roots: 1, Seed: 24, Algorithm: "approx", Transport: "tcp"},
		{N: 4, Family: "single_source", Seed: 25, Algorithm: "approx", Transport: "udp"},
	}
	res := s.Submit(specs)
	for i, r := range res {
		if r.Error != "" {
			t.Fatalf("spec %d rejected: %s", i, r.Error)
		}
		sess := waitDone(t, s, r.ID)
		if sess.Status != "done" {
			t.Fatalf("spec %d: status %s, error %s", i, sess.Status, sess.Error)
		}
		if !sess.Result.AllDecided {
			t.Errorf("spec %d: not all processes decided", i)
		}
		if !sess.Result.KBound {
			t.Errorf("spec %d: approx agreement oracle fired", i)
		}
		// Single-rooted stabilizing schedules are inside the regime the
		// family claims convergence in: decisions pairwise adjacent on
		// the session's target graph.
		g := approx.Graph{Shape: approx.Path, V: specs[i].Vertices}
		if specs[i].Cycle {
			g.Shape = approx.Cycle
		}
		if g.V == 0 {
			g.V = specs[i].N + 1
		}
		for a := 0; a < len(sess.Result.Decisions); a++ {
			for b := a + 1; b < len(sess.Result.Decisions); b++ {
				da, db := sess.Result.Decisions[a], sess.Result.Decisions[b]
				if d := approx.Dist(g, da, db); d > 1 {
					t.Errorf("spec %d: p%d=%d and p%d=%d at distance %d on %s-%d",
						i, a+1, da, b+1, db, d, g.Shape, g.V)
				}
			}
		}
	}
}

func TestAlgorithmFieldValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	res := s.Submit([]SessionSpec{
		{N: 4, Family: "rooted", Algorithm: "approx", Seed: 1},                     // valid
		{N: 4, Family: "rooted", Algorithm: "paxos"},                               // unknown family
		{N: 4, Family: "rooted", Vertices: 7},                                      // vertices on kset
		{N: 4, Family: "rooted", Cycle: true},                                      // cycle on kset
		{N: 4, Family: "rooted", Algorithm: "approx", Cycle: true, Vertices: 3},    // cycle too small for adjacency claims? (normalize rejects V<3)
		{N: 4, Family: "rooted", Algorithm: "approx", FaithfulGuard: true},         // kset-only guard
		{N: 3, Family: "rooted", Algorithm: "approx", Proposals: []int64{0, 1, 9}}, // proposal outside vertex range
	})
	if res[0].Error != "" {
		t.Fatalf("valid approx spec rejected: %s", res[0].Error)
	}
	waitDone(t, s, res[0].ID)
	for i, r := range res[1:] {
		if r.Error == "" {
			t.Errorf("invalid spec %d accepted: %+v", i+1, r)
		}
	}
	if !strings.Contains(res[1].Error, "kset") || !strings.Contains(res[1].Error, "approx") {
		t.Errorf("unknown-algorithm error %q does not list the registered names", res[1].Error)
	}
}

// TestSubmitUnknownAlgorithmHTTP pins the HTTP contract: an unknown
// algorithm name fails the whole batch with 400 and the response body
// names the offending session and the valid algorithms.
func TestSubmitUnknownAlgorithmHTTP(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := `{"sessions":[{"n":4,"family":"rooted"},{"n":4,"family":"rooted","algorithm":"raft"}]}`
	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var payload struct {
		Error           string   `json:"error"`
		ValidAlgorithms []string `json:"valid_algorithms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(payload.Error, "sessions[1]") || !strings.Contains(payload.Error, "raft") {
		t.Errorf("error %q does not identify the bad session", payload.Error)
	}
	has := map[string]bool{}
	for _, name := range payload.ValidAlgorithms {
		has[name] = true
	}
	if !has["kset"] || !has["approx"] {
		t.Errorf("valid_algorithms %v missing registered families", payload.ValidAlgorithms)
	}
}

// TestAlgorithmMetricsLabels runs one session of each family and checks
// the labeled per-family counters appear in /metrics — additively: the
// unlabeled load-bearing ksetd_* names (what ksetload and the e2e
// scrape parse) must remain untouched alongside them.
func TestAlgorithmMetricsLabels(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	res := s.Submit([]SessionSpec{
		{N: 4, Family: "rooted", Roots: 1, Seed: 31},
		{N: 4, Family: "rooted", Roots: 1, Seed: 32, Algorithm: "approx"},
	})
	for i, r := range res {
		if r.Error != "" {
			t.Fatalf("spec %d: %s", i, r.Error)
		}
		if sess := waitDone(t, s, r.ID); sess.Status != "done" {
			t.Fatalf("spec %d: %s", i, sess.Error)
		}
	}
	var sb strings.Builder
	s.WriteMetrics(&sb)
	scrape := sb.String()
	for _, want := range []string{
		`ksetd_algorithm_sessions_total{algorithm="kset",status="completed"} 1`,
		`ksetd_algorithm_sessions_total{algorithm="approx",status="completed"} 1`,
		`ksetd_algorithm_rounds_total{algorithm="approx"}`,
		`ksetd_algorithm_decisions_total{algorithm="approx"} 1`, // converged to one vertex
		`ksetd_algorithm_decisions_total{algorithm="kset"} 1`,
		"ksetd_sessions_completed_total 2", // unlabeled aggregate still spans both families
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("metrics scrape missing %q:\n%s", want, scrape)
		}
	}
}
