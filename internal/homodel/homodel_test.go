package homodel

import (
	"math/rand"
	"testing"

	"kset/internal/graph"
	"kset/internal/skeleton"
)

func TestHOAndDComplement(t *testing.T) {
	g := graph.NewFullDigraph(4)
	g.AddSelfLoops()
	g.AddEdge(1, 0)
	g.AddEdge(2, 0)
	ho := HO(g, 0)
	if !ho.Equal(graph.NodeSetOf(0, 1, 2)) {
		t.Fatalf("HO = %v", ho)
	}
	d := D(g, 0)
	if !d.Equal(graph.NodeSetOf(3)) {
		t.Fatalf("D = %v", d)
	}
	if ho.Intersects(d) || ho.Union(d).Len() != 4 {
		t.Fatal("HO and D must partition Π")
	}
}

func TestViewEquation7BothFormulations(t *testing.T) {
	// PT(p, r) = ⋂ HO(p, r') = Π \ ⋃ D(p, r') — the paper's eq. (7).
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		v := NewView(n, false)
		tr := skeleton.NewTracker(n, false)
		for r := 1; r <= 12; r++ {
			g := graph.RandomDigraph(n, rng.Float64()*0.7, rng)
			v.Observe(r, g)
			tr.Observe(r, g)
			for p := 0; p < n; p++ {
				fromHO := v.PTFromHO(p)
				fromD := v.PTFromD(p)
				want := tr.PT(p)
				if !fromHO.Equal(want) || !fromD.Equal(want) {
					t.Fatalf("eq (7) violated at round %d p%d: HO=%v D=%v skel=%v",
						r, p+1, fromHO, fromD, want)
				}
			}
		}
	}
}

func TestViewEquation6SkeletonEquality(t *testing.T) {
	// The HO-reconstructed skeleton equals the intersection skeleton.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		v := NewView(n, false)
		tr := skeleton.NewTracker(n, false)
		for r := 1; r <= 10; r++ {
			g := graph.RandomDigraph(n, 0.5, rng)
			v.Observe(r, g)
			tr.Observe(r, g)
			if !v.Skeleton().Equal(tr.Skeleton()) {
				t.Fatalf("eq (6) violated at round %d", r)
			}
		}
	}
}

func TestSkeletonEdge(t *testing.T) {
	v := NewView(3, false)
	g := graph.NewFullDigraph(3)
	g.AddSelfLoops()
	g.AddEdge(0, 1)
	v.Observe(1, g)
	if !v.SkeletonEdge(0, 1) {
		t.Fatal("edge missing from HO view")
	}
	if v.SkeletonEdge(1, 0) {
		t.Fatal("phantom edge in HO view")
	}
	g2 := graph.NewFullDigraph(3)
	g2.AddSelfLoops()
	v.Observe(2, g2)
	if v.SkeletonEdge(0, 1) {
		t.Fatal("dropped edge still in HO view")
	}
}

func TestViewRecording(t *testing.T) {
	v := NewView(2, true)
	g1 := graph.NewFullDigraph(2)
	g1.AddSelfLoops()
	g1.AddEdge(0, 1)
	g2 := graph.NewFullDigraph(2)
	g2.AddSelfLoops()
	v.Observe(1, g1)
	v.Observe(2, g2)
	if !v.HOAt(1, 1).Equal(graph.NodeSetOf(0, 1)) {
		t.Fatalf("HOAt(1, p2) = %v", v.HOAt(1, 1))
	}
	if !v.HOAt(2, 1).Equal(graph.NodeSetOf(1)) {
		t.Fatalf("HOAt(2, p2) = %v", v.HOAt(2, 1))
	}
	if v.Round() != 2 {
		t.Fatalf("Round = %d", v.Round())
	}
}

func TestViewPanics(t *testing.T) {
	okGraph := func(n int) *graph.Digraph {
		g := graph.NewFullDigraph(n)
		g.AddSelfLoops()
		return g
	}
	for _, fn := range []func(){
		func() { v := NewView(2, false); v.Observe(2, okGraph(2)) },               // out of order
		func() { v := NewView(2, false); v.Observe(1, okGraph(3)) },               // universe mismatch
		func() { v := NewView(2, false); v.Observe(1, okGraph(2)); v.HOAt(1, 0) }, // no recording
		func() { v := NewView(2, true); v.HOAt(1, 0) },                            // not observed
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
