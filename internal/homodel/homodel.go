// Package homodel expresses runs of the skeleton model in the vocabulary
// of the two round-by-round frameworks the paper relates itself to
// (Section II, eqs. (6) and (7)):
//
//   - the Heard-Of model of Charron-Bost and Schiper: HO(p, r) is the set
//     of processes p hears from in round r, and
//   - Gafni's Round-by-Round Fault Detectors: D(p, r) is the set of
//     processes p's detector tells it not to wait for.
//
// Under the paper's convention that a process never receives a round-r
// message from a process in D(p, r), the three views are interchangeable:
//
//	(q -> p) ∈ E^∩r  ⇔  ∀r' ≤ r: q ∈ HO(p, r')  ⇔  ∀r' ≤ r: q ∉ D(p, r')
//
// and the timely neighborhood satisfies
//
//	PT(p, r) = ⋂_{r' ≤ r} HO(p, r') = Π \ ⋃_{r' ≤ r} D(p, r').
package homodel

import (
	"fmt"

	"kset/internal/graph"
	"kset/internal/rounds"
)

// HO returns the Heard-Of set HO(p, r) induced by the round-r
// communication graph: the in-neighborhood of p (self included).
func HO(g *graph.Digraph, p int) graph.NodeSet {
	return g.InNeighbors(p)
}

// D returns the round-by-round fault detector output D(p, r) induced by
// the round-r graph: the complement of HO(p, r) in Π.
func D(g *graph.Digraph, p int) graph.NodeSet {
	all := graph.FullNodeSet(g.N())
	all.SubtractWith(g.InNeighbors(p))
	return all
}

// View accumulates per-round HO and D sets for every process and exposes
// the two PT formulations of eq. (7). It implements rounds.Observer.
type View struct {
	n      int
	round  int
	hoInt  []graph.NodeSet // ⋂_{r' ≤ r} HO(p, r')
	dUnion []graph.NodeSet // ⋃_{r' ≤ r} D(p, r')
	hos    [][]graph.NodeSet
}

// NewView returns a View for n processes. If recordRounds is set, each
// round's HO sets are kept and retrievable via HOAt.
func NewView(n int, recordRounds bool) *View {
	v := &View{n: n}
	v.hoInt = make([]graph.NodeSet, n)
	v.dUnion = make([]graph.NodeSet, n)
	for p := 0; p < n; p++ {
		v.hoInt[p] = graph.FullNodeSet(n)
		v.dUnion[p] = graph.NewNodeSet(n)
	}
	if recordRounds {
		v.hos = [][]graph.NodeSet{}
	}
	return v
}

// Observe folds the round-r graph into the view.
func (v *View) Observe(r int, g *graph.Digraph) {
	if r != v.round+1 {
		panic(fmt.Sprintf("homodel: observed round %d after %d", r, v.round))
	}
	if g.N() != v.n {
		panic(fmt.Sprintf("homodel: graph universe %d, want %d", g.N(), v.n))
	}
	v.round = r
	var snapshot []graph.NodeSet
	if v.hos != nil {
		snapshot = make([]graph.NodeSet, v.n)
	}
	for p := 0; p < v.n; p++ {
		ho := HO(g, p)
		v.hoInt[p].IntersectWith(ho)
		v.dUnion[p].UnionWith(D(g, p))
		if snapshot != nil {
			snapshot[p] = ho
		}
	}
	if v.hos != nil {
		v.hos = append(v.hos, snapshot)
	}
}

// OnRound implements rounds.Observer.
func (v *View) OnRound(r int, g *graph.Digraph, _ []rounds.Algorithm) { v.Observe(r, g) }

// Round returns the last observed round.
func (v *View) Round() int { return v.round }

// HOAt returns HO(p, r) for a recorded round (requires recordRounds).
func (v *View) HOAt(r, p int) graph.NodeSet {
	if v.hos == nil {
		panic("homodel: HOAt requires round recording")
	}
	if r < 1 || r > v.round {
		panic(fmt.Sprintf("homodel: round %d not recorded", r))
	}
	return v.hos[r-1][p].Clone()
}

// PTFromHO returns PT(p, r) computed as ⋂ HO(p, r') — the first
// formulation of eq. (7).
func (v *View) PTFromHO(p int) graph.NodeSet { return v.hoInt[p].Clone() }

// PTFromD returns PT(p, r) computed as Π \ ⋃ D(p, r') — the second
// formulation of eq. (7).
func (v *View) PTFromD(p int) graph.NodeSet {
	all := graph.FullNodeSet(v.n)
	all.SubtractWith(v.dUnion[p])
	return all
}

// SkeletonEdge reports whether (q -> p) ∈ E^∩r according to the HO view —
// the left-hand side of eq. (6).
func (v *View) SkeletonEdge(q, p int) bool { return v.hoInt[p].Has(q) }

// Skeleton reconstructs the round-r skeleton graph from the HO view; by
// eq. (6) it must equal the graph-intersection skeleton, which the test
// suite verifies against skeleton.Tracker.
func (v *View) Skeleton() *graph.Digraph {
	g := graph.NewFullDigraph(v.n)
	for p := 0; p < v.n; p++ {
		v.hoInt[p].ForEach(func(q int) { g.AddEdge(q, p) })
	}
	return g
}
