package approx

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the approx wire decoder against hostile input (the
// fuzz target the algo registry declares for this family): DecodeInto
// must never panic, and every accepted payload must re-encode to the
// identical bytes — the canonical-encoding property the registration
// self-test and decode caches rely on.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(Message{}))
	f.Add(Encode(Message{Lo: -3 * Scale, Hi: 5 * Scale, Decided: true}))
	f.Add(Encode(Message{Lo: maxAbs, Hi: maxAbs}))
	f.Add(Encode(Message{Lo: -maxAbs, Hi: 0}))
	f.Add([]byte{0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := DecodeInto(data, &m); err != nil {
			return
		}
		if m.Hi < m.Lo {
			t.Fatalf("decoded inverted interval %+v from %x", m, data)
		}
		if re := Encode(m); !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical encoding %x of %+v (canonical %x)", data, m, re)
		}
	})
}
