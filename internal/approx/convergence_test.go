package approx_test

// End-to-end convergence tests: run the registered approx family
// through the full sim pipeline (the same execution path E-suite
// experiments and ksetd sessions use) and check the family's own
// whole-run oracles plus the convergence claims directly.

import (
	"math/rand"
	"testing"

	"kset/internal/adversary"
	"kset/internal/algo"
	"kset/internal/approx"
	"kset/internal/sim"
)

// executeApprox runs one approx spec and fails the test on any oracle
// violation.
func executeApprox(t *testing.T, spec sim.Spec) *sim.Outcome {
	t.Helper()
	spec.Algorithm = algo.Approx
	out, err := sim.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.CheckAlgorithm() {
		t.Errorf("oracle violation: %s", v)
	}
	return out
}

// requireAdjacent asserts every decided pair is within distance 1 on g.
func requireAdjacent(t *testing.T, g approx.Graph, out *sim.Outcome) {
	t.Helper()
	for i := 0; i < out.N; i++ {
		for j := i + 1; j < out.N; j++ {
			if !out.Decided[i] || !out.Decided[j] {
				t.Fatalf("p%d/p%d undecided", i+1, j+1)
			}
			if d := approx.Dist(g, out.Decisions[i], out.Decisions[j]); d > 1 {
				t.Errorf("p%d=%d and p%d=%d at distance %d on %s-%d",
					i+1, out.Decisions[i], j+1, out.Decisions[j], d, g.Shape, g.V)
			}
		}
	}
}

func TestPathConvergenceAcrossSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(6)
		adv := adversary.RandomSources(n, 1, 1+rng.Intn(2*n), 0.3, rng)
		props := make([]int64, n)
		for i := range props {
			props[i] = int64(rng.Intn(n + 1))
		}
		out := executeApprox(t, sim.Spec{Adversary: adv, Proposals: props})
		if t.Failed() {
			t.Fatalf("trial %d: n=%d proposals=%v", trial, n, props)
		}
		requireAdjacent(t, approx.Graph{Shape: approx.Path, V: n + 1}, out)
		// Exact termination: everyone decides at precisely DecideRound.
		opts := out.Run.Params.(approx.Options)
		for i := 0; i < out.N; i++ {
			if out.DecideRounds[i] != opts.DecideRound {
				t.Fatalf("trial %d: p%d decided in round %d, want %d",
					trial, i+1, out.DecideRounds[i], opts.DecideRound)
			}
		}
	}
}

func TestPathValidityHull(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(5)
		lo := int64(rng.Intn(n))
		hi := lo + int64(rng.Intn(n+1-int(lo)))
		props := make([]int64, n)
		for i := range props {
			props[i] = lo + rng.Int63n(hi-lo+1)
		}
		adv := adversary.RandomSources(n, 1+rng.Intn(3), rng.Intn(n), 0.25, rng)
		out := executeApprox(t, sim.Spec{Adversary: adv, Proposals: props})
		for i := 0; i < out.N; i++ {
			if d := out.Decisions[i]; d < lo || d > hi {
				t.Errorf("trial %d: p%d decided %d outside input hull [%d,%d]", trial, i+1, d, lo, hi)
			}
		}
	}
}

func TestCycleNarrowArcConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(5)
		v := 6 + rng.Intn(10)
		// A narrow arc of span < V/2 that wraps around vertex 0.
		span := rng.Intn(v/2 - 1)
		start := int64(v - 1 - rng.Intn(span+1))
		props := make([]int64, n)
		for i := range props {
			props[i] = (start + rng.Int63n(int64(span)+1)) % int64(v)
		}
		adv := adversary.RandomSources(n, 1, rng.Intn(n), 0.3, rng)
		out := executeApprox(t, sim.Spec{
			Adversary: adv,
			Proposals: props,
			Params:    approx.Options{Graph: approx.Graph{Shape: approx.Cycle, V: v}},
		})
		if t.Failed() {
			t.Fatalf("trial %d: n=%d V=%d proposals=%v", trial, n, v, props)
		}
		g := approx.Graph{Shape: approx.Cycle, V: v}
		requireAdjacent(t, g, out)
		start0, length := approx.Span(g, props)
		for i := 0; i < out.N; i++ {
			if !approx.InSpan(g, start0, length, out.Decisions[i]) {
				t.Errorf("trial %d: p%d decided %d outside input arc [%d,+%d] on C%d",
					trial, i+1, out.Decisions[i], start0, length, v)
			}
		}
	}
}

// TestCycleWideSpanTerminates covers the regime approximate agreement
// on cycles is unsolvable in: inputs spread over more than half the
// cycle. The implementation promises termination and vertex-range
// validity only — the oracles must stay silent rather than report
// phantom agreement violations.
func TestCycleWideSpanTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(4)
		v := 8
		props := make([]int64, n)
		for i := range props {
			props[i] = rng.Int63n(int64(v)) // spread over the whole cycle
		}
		adv := adversary.RandomSources(n, 1, rng.Intn(n), 0.3, rng)
		out := executeApprox(t, sim.Spec{
			Adversary: adv,
			Proposals: props,
			Params:    approx.Options{Graph: approx.Graph{Shape: approx.Cycle, V: v}},
		})
		for i := 0; i < out.N; i++ {
			if !out.Decided[i] {
				t.Fatalf("trial %d: p%d undecided", trial, i+1)
			}
			if d := out.Decisions[i]; d < 0 || d >= int64(v) {
				t.Errorf("trial %d: p%d decided %d, not a vertex of C%d", trial, i+1, d, v)
			}
		}
	}
}

// TestSequentialConcurrentIdentical pins executor determinism at the
// sim level: the lockstep and goroutine-per-process executors produce
// bit-identical approx outcomes.
func TestSequentialConcurrentIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(5)
		seed := rng.Int63()
		mk := func(concurrent bool) *sim.Outcome {
			r := rand.New(rand.NewSource(seed))
			props := make([]int64, n)
			for i := range props {
				props[i] = int64(r.Intn(n + 1))
			}
			return executeApprox(t, sim.Spec{
				Adversary:  adversary.RandomSources(n, 1+r.Intn(2), r.Intn(n), 0.3, r),
				Proposals:  props,
				Concurrent: concurrent,
			})
		}
		seq, conc := mk(false), mk(true)
		for i := 0; i < n; i++ {
			if seq.Decisions[i] != conc.Decisions[i] || seq.DecideRounds[i] != conc.DecideRounds[i] {
				t.Fatalf("trial %d: executor divergence at p%d: %d@%d vs %d@%d", trial, i+1,
					seq.Decisions[i], seq.DecideRounds[i], conc.Decisions[i], conc.DecideRounds[i])
			}
		}
	}
}
