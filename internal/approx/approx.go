// Package approx implements approximate agreement on graphs — the
// second algorithm family served by this stack (after k-set agreement),
// following the problem statement of Alistarh–Ellen–Rybicki ("Wait-free
// approximate agreement on graphs") transplanted into the paper's
// synchronous communication-closed round model: processes start on
// vertices of a fixed target graph (a path P_V or a cycle C_V), exchange
// values every round, and must terminate on pairwise-adjacent vertices
// while staying inside the convex hull (path) or minimal covering arc
// (cycle) of the inputs.
//
// # Algorithm
//
// Each process keeps a position x on the target graph in fixed-point
// arithmetic (Scale fractional resolution) and runs phase-based
// amortized midpoint: rounds are grouped into phases of
// PhaseLen(n) = max(n-1, 1) rounds; during a phase each process floods
// an interval [lo, hi] — seeded with its own position at the phase
// start, widened every round by every interval it hears — and at the
// phase end jumps to the interval midpoint. After a fixed, globally
// known number of rounds (Options.DecideRound) everyone decides the
// vertex nearest its position.
//
// Why phases: over any window of n-1 consecutive rounds whose
// communication graphs are all the same rooted digraph (what a
// stabilized adversary with one root component provides), every process
// is causally influenced by every root-component member — the window's
// graph product is "nonsplit" in the sense of Charron-Bost, Függer and
// Nowak ("Approximate Consensus in Highly Dynamic Networks"), so any
// two phase-end intervals share a common point and the global value
// range at least halves per phase (up to one unit of fixed-point
// rounding). PhasesFor(V) phases after stabilization shrink the range
// below half a vertex, so rounding to the nearest vertex lands every
// process on one of two adjacent vertices. Midpoints never leave the
// hull of the values heard, so validity holds unconditionally — even
// before stabilization, under arbitrary round graphs.
//
// On cycles there is no global order, so intervals travel in each
// sender's own lift of the cycle's universal cover; receivers shift a
// heard interval by the multiple of the cycle length that brings its
// midpoint nearest their own position. When all inputs fit in an arc
// shorter than half the cycle, every such shift reconstructs the
// geodesic representative and the path analysis applies verbatim; for
// wider input spans approximate agreement on cycles is not solvable in
// general (Alistarh–Ellen–Rybicki), and this implementation stays
// deterministic but promises only termination and hull-free validity.
//
// All state is integer arithmetic on int64, so runs are bit-identical
// across the sequential, concurrent, and distributed executors — the
// property the differential harness (runtime.Diff) enforces.
package approx

import (
	"fmt"
	"math/bits"

	"kset/internal/rounds"
)

// Shape selects the target graph family.
type Shape string

const (
	// Path is the path graph P_V on vertices 0..V-1.
	Path Shape = "path"
	// Cycle is the cycle graph C_V on vertices 0..V-1 (V-1 adjacent to 0).
	Cycle Shape = "cycle"
)

// FracBits is the fixed-point resolution: positions are vertex indices
// scaled by Scale. Phase midpoints lose at most one unit per phase to
// flooring, a drift of PhasesFor(V) ≪ Scale/2 over any run, so the
// final round-to-nearest-vertex step is unaffected.
const FracBits = 24

// Scale is 1 << FracBits.
const Scale = 1 << FracBits

// MaxVertices bounds the target graph so that every intermediate sum
// (2·position ± cycle length, scaled) stays far inside int64.
const MaxVertices = 1 << 16

// Graph names one target graph.
type Graph struct {
	// Shape is Path or Cycle; the zero value means Path.
	Shape Shape
	// V is the number of vertices; 0 means the n+1 default chosen by
	// Options.Normalize, so the canonical 1..n proposal vector is valid.
	V int
}

// Options parameterizes one approximate-agreement run.
type Options struct {
	// Graph is the target graph the processes agree on.
	Graph Graph
	// DecideRound is the round in which every process decides; 0 means
	// DecideRoundFor's bound, computed by Normalize. It must be a
	// positive multiple of PhaseLen(n) — decisions happen on the fresh
	// value of a just-completed phase.
	DecideRound int
}

// PhaseLen returns the phase length for n processes: n-1 rounds (the
// window over which a fixed rooted round graph becomes nonsplit), at
// least 1.
func PhaseLen(n int) int {
	if n <= 2 {
		return 1
	}
	return n - 1
}

// PhasesFor returns how many fully-stabilized phases guarantee the
// global range is below half a vertex: the range starts at most V·Scale
// and at least halves per phase, so ceil(log2(2V)) phases suffice, plus
// one phase of margin absorbing fixed-point rounding drift.
func PhasesFor(v int) int {
	return bits.Len(uint(2*v)) + 1
}

// DecideRoundFor returns the earliest phase-aligned decide round with
// PhasesFor(v) full phases after round stab (the first round from which
// the communication graphs no longer change).
func DecideRoundFor(n, v, stab int) int {
	l := PhaseLen(n)
	if stab < 1 {
		stab = 1
	}
	// First phase whose rounds all lie in the stable suffix: phase p
	// covers rounds ((p-1)l, pl], so it is stable iff (p-1)l+1 >= stab.
	p0 := (stab-2+l)/l + 1
	if stab == 1 {
		p0 = 1
	}
	return (p0 - 1 + PhasesFor(v)) * l
}

// Normalize fills defaults (path graph on n+1 vertices, the
// DecideRoundFor bound given the adversary's stabilization round) and
// validates the options against n and the proposals. stab is the
// adversary's stabilization round when it has one; stabilizes=false
// substitutes a generous 8n budget (no convergence guarantee exists
// without stabilization — the oracles then claim only termination and
// validity).
func (o *Options) Normalize(n int, proposals []int64, stab int, stabilizes bool) error {
	if n < 1 {
		return fmt.Errorf("approx: %d processes", n)
	}
	switch o.Graph.Shape {
	case "":
		o.Graph.Shape = Path
	case Path, Cycle:
	default:
		return fmt.Errorf("approx: unknown graph shape %q (want %q or %q)", o.Graph.Shape, Path, Cycle)
	}
	if o.Graph.V == 0 {
		o.Graph.V = n + 1
	}
	if o.Graph.V < 1 || o.Graph.V > MaxVertices {
		return fmt.Errorf("approx: %d vertices out of range [1,%d]", o.Graph.V, MaxVertices)
	}
	if o.Graph.Shape == Cycle && o.Graph.V < 3 {
		return fmt.Errorf("approx: cycle needs >= 3 vertices, got %d", o.Graph.V)
	}
	for i, p := range proposals {
		if p < 0 || p >= int64(o.Graph.V) {
			return fmt.Errorf("approx: p%d proposes vertex %d outside [0,%d)", i+1, p, o.Graph.V)
		}
	}
	if o.DecideRound == 0 {
		if !stabilizes {
			stab = 8 * n
		}
		o.DecideRound = DecideRoundFor(n, o.Graph.V, stab)
	}
	if l := PhaseLen(n); o.DecideRound < l || o.DecideRound%l != 0 {
		return fmt.Errorf("approx: decide round %d is not a positive multiple of the phase length %d", o.DecideRound, l)
	}
	return nil
}

// Message is one process's per-round broadcast: the interval it has
// accumulated this phase (positions scaled by Scale; on cycles, in the
// sender's own lift of the universal cover) and whether it has decided.
type Message struct {
	Lo, Hi  int64
	Decided bool
}

// Process runs the algorithm for one process. Create with NewFactory.
type Process struct {
	self, n  int
	opts     Options
	period   int64 // cycle length, scaled (0 on paths)
	phaseLen int

	proposal int64
	x        int64 // position at the current phase start, scaled
	lo, hi   int64 // interval accumulated this phase

	decided     bool
	decision    int64
	decideRound int

	// out double-buffers the broadcast so a round-r message stays
	// intact while round r+1's is being built (mirrors core.Process).
	out [2]Message
}

var _ rounds.Algorithm = (*Process)(nil)
var _ rounds.Decider = (*Process)(nil)

// NewFactory returns the per-process constructor for one run. opts must
// already be normalized (Options.Normalize); proposals[i] is process i's
// starting vertex.
func NewFactory(proposals []int64, opts Options) func(self int) rounds.Algorithm {
	return func(self int) rounds.Algorithm {
		return &Process{proposal: proposals[self], opts: opts}
	}
}

// Init implements rounds.Algorithm.
func (p *Process) Init(self, n int) {
	p.self, p.n = self, n
	p.phaseLen = PhaseLen(n)
	if p.opts.Graph.Shape == Cycle {
		p.period = int64(p.opts.Graph.V) * Scale
	}
	p.x = p.proposal * Scale
	p.lo, p.hi = p.x, p.x
}

// Send implements rounds.Algorithm: broadcast the current interval.
func (p *Process) Send(r int) any {
	m := &p.out[r&1]
	m.Lo, m.Hi, m.Decided = p.lo, p.hi, p.decided
	return m
}

// Transition implements rounds.Algorithm: widen the phase interval by
// every heard interval (lifted into this process's frame on cycles),
// jump to the midpoint at phase boundaries, and decide at the fixed
// decide round.
func (p *Process) Transition(r int, recv []any) {
	for _, raw := range recv {
		if raw == nil {
			continue
		}
		m := raw.(*Message)
		lo, hi := m.Lo, m.Hi
		if p.period != 0 {
			lo, hi = p.lift(lo, hi)
		}
		if lo < p.lo {
			p.lo = lo
		}
		if hi > p.hi {
			p.hi = hi
		}
	}
	if r%p.phaseLen == 0 {
		// Phase end: amortized midpoint. Arithmetic shift floors, so the
		// new position never leaves [lo, hi].
		p.x = (p.lo + p.hi) >> 1
		if p.period != 0 {
			p.x = floorMod(p.x, p.period)
		}
		p.lo, p.hi = p.x, p.x
	}
	if r == p.opts.DecideRound && !p.decided {
		p.decided = true
		p.decision = p.vertexOf(p.x)
		p.decideRound = r
	}
}

// lift shifts a heard interval by the multiple of the cycle length that
// brings its midpoint nearest this process's phase-start position —
// the geodesic representative whenever the interval is narrower than
// half the cycle.
func (p *Process) lift(lo, hi int64) (int64, int64) {
	// k = round((x - mid) / period), computed without halving losses by
	// doubling: mid2 = lo + hi is twice the midpoint.
	k := floorDiv(2*p.x-(lo+hi)+p.period, 2*p.period)
	return lo + k*p.period, hi + k*p.period
}

// vertexOf rounds a scaled position to its nearest vertex.
func (p *Process) vertexOf(x int64) int64 {
	v := floorDiv(x+Scale/2, Scale)
	if p.period != 0 {
		v = floorMod(v, int64(p.opts.Graph.V))
	}
	return v
}

// Proposal implements rounds.Decider.
func (p *Process) Proposal() int64 { return p.proposal }

// Decided implements rounds.Decider.
func (p *Process) Decided() bool { return p.decided }

// Decision implements rounds.Decider.
func (p *Process) Decision() (int64, int) { return p.decision, p.decideRound }

// Position returns the process's current scaled position (the value of
// the last completed phase) — test and experiment instrumentation.
func (p *Process) Position() int64 { return p.x }

// Dist returns the graph distance between two vertices of g.
func Dist(g Graph, a, b int64) int64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if g.Shape == Cycle {
		if w := int64(g.V) - d; w < d {
			d = w
		}
	}
	return d
}

// Span returns the length of the minimal interval (path) or arc (cycle)
// containing all the given vertices, and its start vertex.
func Span(g Graph, vs []int64) (start, length int64) {
	if len(vs) == 0 {
		return 0, 0
	}
	if g.Shape != Cycle {
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lo, hi - lo
	}
	// Cycle: the minimal covering arc is the complement of the largest
	// gap between circularly-sorted occupied vertices.
	present := make(map[int64]bool, len(vs))
	var occ []int64
	for _, v := range vs {
		if !present[v] {
			present[v] = true
			occ = append(occ, v)
		}
	}
	sortInt64(occ)
	if len(occ) == 1 {
		return occ[0], 0
	}
	V := int64(g.V)
	bestGap, bestAfter := int64(-1), int64(0)
	for i, v := range occ {
		next := occ[(i+1)%len(occ)]
		gap := floorMod(next-v, V)
		if gap > bestGap {
			bestGap, bestAfter = gap, v
		}
	}
	start = floorMod(bestAfter+bestGap, V)
	return start, V - bestGap
}

// InSpan reports whether vertex v lies in the interval/arc of the given
// start and length on g.
func InSpan(g Graph, start, length, v int64) bool {
	if g.Shape != Cycle {
		return v >= start && v <= start+length
	}
	return floorMod(v-start, int64(g.V)) <= length
}

func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// floorDiv is division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// floorMod is the non-negative remainder for positive b.
func floorMod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}
