package approx

import (
	"encoding/binary"
	"fmt"
)

// Wire format of a Message, mirroring internal/wire's conventions
// (canonical varint encoding, decode hardening against hostile input):
//
//	flag byte     0 running, 1 decided
//	zigzag varint Lo (scaled position, may be negative on cycles)
//	uvarint       Hi - Lo (interval width, never negative)
//
// Encoding is canonical: decode followed by re-encode is byte-identical
// (the fuzz target pins this).

// maxAbs bounds |Lo| and the interval width on the wire. Honest values
// stay within a few cycle lengths of [0, MaxVertices·Scale); one spare
// factor of 2^4 leaves room without admitting values whose sums could
// overflow int64 in Transition.
const maxAbs = int64(MaxVertices) * Scale << 4

// AppendEncode appends m's wire form to dst and returns the extended
// slice.
func AppendEncode(dst []byte, m Message) []byte {
	flag := byte(0)
	if m.Decided {
		flag = 1
	}
	dst = append(dst, flag)
	dst = binary.AppendVarint(dst, m.Lo)
	dst = binary.AppendUvarint(dst, uint64(m.Hi-m.Lo))
	return dst
}

// Encode returns m's wire form.
func Encode(m Message) []byte { return AppendEncode(nil, m) }

// DecodeInto parses buf into m. Like wire.DecodeInto it validates in
// integer space wide enough that no hostile input can overflow: the
// position and width are bounded by maxAbs before any arithmetic, and
// trailing bytes are rejected so the encoding stays canonical.
func DecodeInto(buf []byte, m *Message) error {
	if len(buf) == 0 {
		return fmt.Errorf("approx: empty message")
	}
	switch buf[0] {
	case 0:
		m.Decided = false
	case 1:
		m.Decided = true
	default:
		return fmt.Errorf("approx: unknown flag byte %d", buf[0])
	}
	buf = buf[1:]
	lo, k := binary.Varint(buf)
	if k <= 0 || !minimal(buf, k) {
		return fmt.Errorf("approx: bad lo varint")
	}
	buf = buf[k:]
	width, k := binary.Uvarint(buf)
	if k <= 0 || !minimal(buf, k) {
		return fmt.Errorf("approx: bad width uvarint")
	}
	buf = buf[k:]
	if len(buf) != 0 {
		return fmt.Errorf("approx: %d trailing bytes", len(buf))
	}
	if lo < -maxAbs || lo > maxAbs {
		return fmt.Errorf("approx: position %d out of range", lo)
	}
	if width > uint64(maxAbs) {
		return fmt.Errorf("approx: interval width %d out of range", width)
	}
	m.Lo = lo
	m.Hi = lo + int64(width)
	return nil
}

// minimal reports whether the k-byte varint just consumed from buf is
// its shortest encoding. binary.Varint accepts zero-extended forms (a
// trailing 0x00 group after a continuation byte); rejecting them keeps
// the wire encoding canonical in both directions, so decode followed by
// re-encode is byte-identical for every accepted payload (FuzzDecode
// pins this).
func minimal(buf []byte, k int) bool { return k == 1 || buf[k-1] != 0 }

// Decode parses buf into a fresh Message.
func Decode(buf []byte) (Message, error) {
	var m Message
	err := DecodeInto(buf, &m)
	return m, err
}
