package approx

import (
	"bytes"
	"testing"
)

func TestPhaseLen(t *testing.T) {
	cases := []struct{ n, want int }{{1, 1}, {2, 1}, {3, 2}, {6, 5}, {64, 63}}
	for _, c := range cases {
		if got := PhaseLen(c.n); got != c.want {
			t.Errorf("PhaseLen(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestDecideRoundFor(t *testing.T) {
	for _, n := range []int{2, 3, 6, 9} {
		for _, v := range []int{1, 2, 7, 64} {
			for _, stab := range []int{0, 1, 2, 5, 13} {
				l := PhaseLen(n)
				d := DecideRoundFor(n, v, stab)
				if d < 1 || d%l != 0 {
					t.Fatalf("DecideRoundFor(%d,%d,%d) = %d, not a positive multiple of %d", n, v, stab, d, l)
				}
				// PhasesFor(v) whole phases lie at or after the stabilization
				// round: the first of those phases starts no earlier than stab.
				firstStable := d - PhasesFor(v)*l + 1
				if s := stab; s >= 1 && firstStable < s {
					t.Fatalf("DecideRoundFor(%d,%d,%d) = %d leaves phase start %d before stabilization",
						n, v, stab, d, firstStable)
				}
			}
		}
	}
	if d := DecideRoundFor(6, 7, 1); d != PhasesFor(7)*5 {
		t.Errorf("stab=1 should need exactly PhasesFor(v) phases, got round %d", d)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	var o Options
	if err := o.Normalize(6, []int64{1, 2, 3, 4, 5, 6}, 4, true); err != nil {
		t.Fatal(err)
	}
	if o.Graph.Shape != Path || o.Graph.V != 7 {
		t.Errorf("defaults: got %+v, want path on n+1 vertices", o.Graph)
	}
	if o.DecideRound != DecideRoundFor(6, 7, 4) {
		t.Errorf("DecideRound = %d, want DecideRoundFor bound %d", o.DecideRound, DecideRoundFor(6, 7, 4))
	}
	if err := o.Normalize(6, []int64{1, 2, 3, 4, 5, 6}, 4, true); err != nil {
		t.Fatalf("Normalize is not idempotent: %v", err)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name      string
		opts      Options
		n         int
		proposals []int64
	}{
		{"bad shape", Options{Graph: Graph{Shape: "torus"}}, 4, nil},
		{"zero processes", Options{}, 0, nil},
		{"too many vertices", Options{Graph: Graph{V: MaxVertices + 1}}, 4, nil},
		{"tiny cycle", Options{Graph: Graph{Shape: Cycle, V: 2}}, 4, nil},
		{"proposal below range", Options{}, 3, []int64{-1, 0, 1}},
		{"proposal above range", Options{Graph: Graph{V: 4}}, 3, []int64{0, 1, 4}},
		{"unaligned decide round", Options{DecideRound: 7}, 4, []int64{0, 1, 2}},
		{"negative decide round", Options{DecideRound: -3}, 4, []int64{0, 1, 2}},
	}
	for _, c := range cases {
		if err := c.opts.Normalize(c.n, c.proposals, 1, true); err == nil {
			t.Errorf("%s: Normalize accepted %+v", c.name, c.opts)
		}
	}
}

func TestDist(t *testing.T) {
	path := Graph{Shape: Path, V: 10}
	cyc := Graph{Shape: Cycle, V: 10}
	if d := Dist(path, 2, 9); d != 7 {
		t.Errorf("path dist = %d, want 7", d)
	}
	if d := Dist(cyc, 2, 9); d != 3 {
		t.Errorf("cycle dist = %d, want 3 (wrap)", d)
	}
	if d := Dist(cyc, 4, 4); d != 0 {
		t.Errorf("self dist = %d", d)
	}
}

func TestSpan(t *testing.T) {
	path := Graph{Shape: Path, V: 10}
	if s, l := Span(path, []int64{3, 7, 5}); s != 3 || l != 4 {
		t.Errorf("path span = (%d,%d), want (3,4)", s, l)
	}
	cyc := Graph{Shape: Cycle, V: 10}
	// {8, 9, 0, 1} wraps: minimal arc starts at 8, length 3.
	if s, l := Span(cyc, []int64{9, 1, 8, 0}); s != 8 || l != 3 {
		t.Errorf("cycle span = (%d,%d), want (8,3)", s, l)
	}
	if s, l := Span(cyc, []int64{4}); s != 4 || l != 0 {
		t.Errorf("singleton span = (%d,%d), want (4,0)", s, l)
	}
	for _, v := range []int64{8, 9, 0, 1} {
		if !InSpan(cyc, 8, 3, v) {
			t.Errorf("vertex %d missing from arc [8,+3]", v)
		}
	}
	for _, v := range []int64{2, 5, 7} {
		if InSpan(cyc, 8, 3, v) {
			t.Errorf("vertex %d wrongly inside arc [8,+3]", v)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	msgs := []Message{
		{},
		{Lo: 0, Hi: 0, Decided: true},
		{Lo: -3 * Scale, Hi: 5 * Scale},
		{Lo: 12345678, Hi: 12345678},
		{Lo: -maxAbs, Hi: 0},
		{Lo: 0, Hi: maxAbs},
	}
	for _, m := range msgs {
		enc := Encode(m)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%+v): %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip changed %+v into %+v", m, got)
		}
		if re := Encode(got); !bytes.Equal(enc, re) {
			t.Fatalf("re-encode of %+v not canonical: %x vs %x", m, enc, re)
		}
	}
}

func TestDecodeRejectsHostileInput(t *testing.T) {
	good := Encode(Message{Lo: Scale, Hi: 2 * Scale})
	bad := [][]byte{
		nil,
		{},
		{2},             // unknown flag
		{0},             // missing varints
		{0, 0x80},       // truncated varint
		append(good, 0), // trailing byte
		Encode(Message{Lo: maxAbs + 1, Hi: maxAbs + 1}), // position out of range
		Encode(Message{Lo: 0, Hi: maxAbs + 1}),          // width out of range
	}
	var m Message
	for i, buf := range bad {
		if err := DecodeInto(buf, &m); err == nil {
			t.Errorf("case %d: DecodeInto accepted %x", i, buf)
		}
	}
}

func TestCodecSteadyStateAllocs(t *testing.T) {
	m := Message{Lo: -2 * Scale, Hi: 3 * Scale, Decided: true}
	buf := make([]byte, 0, 64)
	var out Message
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendEncode(buf[:0], m)
		if err := DecodeInto(buf, &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("encode+decode allocates %.1f per round, want 0", allocs)
	}
}
