// Package check is the falsification engine of the reproduction
// (DESIGN.md §6): it turns the simulator into an adversarial
// model-checker that systematically searches the schedule space for
// violations of the paper's correctness claims, instead of trusting the
// hand-picked adversaries of E1–E16.
//
// Three engines share one oracle set:
//
//   - Explore enumerates every communication-graph schedule of a tiny
//     instance (n <= 4, bounded rounds), symmetry-reduced by lex-leader
//     canonicalization under process renaming, and checks every oracle
//     on every branch.
//   - Fuzz generates random predicate-respecting and arbitrary schedules
//     (mutations over the adversary zoo plus unconstrained per-round
//     digraphs) and drives them through the zero-alloc round engine via
//     sim.StreamSweep.
//   - Shrink reduces any failing schedule to a minimal counterexample
//     (drop rounds, drop edges, remove processes) and exports it as a
//     replayable runfile plus a DOT trace.
//
// The oracles encode the paper's invariants as checkable predicates over
// core state: validity, the k-agreement bound (distinct decisions never
// exceed MinK of the realized stable skeleton), termination within the
// Lemma 11 round bound, per-round structure of the approximation graphs
// Gp (label freshness and accuracy, purge window, prune reachability —
// Lemma 3/4), PT consistency with the skeleton tracker, decision
// irrevocability, and skeleton-stabilization detection.
package check

import (
	"fmt"
	"strings"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/sim"
	"kset/internal/trace"
)

// Violation is one oracle failure observed during a checked run.
type Violation struct {
	// Oracle names the violated invariant (e.g. "k-bound", "purge").
	Oracle string
	// Round is the round in which the violation was observed; 0 for
	// post-run (whole-trace) oracles.
	Round int
	// Process is the 0-based process the violation concerns; -1 for
	// run-wide violations.
	Process int
	// Detail is a human-readable account of the failure.
	Detail string
}

func (v Violation) String() string {
	loc := "post-run"
	if v.Round > 0 {
		loc = fmt.Sprintf("round %d", v.Round)
	}
	who := "run"
	if v.Process >= 0 {
		who = fmt.Sprintf("p%d", v.Process+1)
	}
	return fmt.Sprintf("[%s] %s %s: %s", v.Oracle, loc, who, v.Detail)
}

// OracleSet selects which invariants a checked run evaluates.
type OracleSet struct {
	// PerRound enables the structural per-round oracles on every
	// process's live state: approximation-graph label range, freshness
	// and accuracy against the real round graphs, purge window, prune
	// reachability, PT-vs-skeleton consistency, estimate validity, and
	// decision irrevocability.
	PerRound bool
	// Validity checks that every decision is some process's proposal.
	Validity bool
	// KBound checks that the number of distinct decisions never exceeds
	// MinK of the realized stable skeleton — the paper's Theorem 1/
	// Lemma 15 chain, with k instantiated as tightly as the run allows.
	KBound bool
	// Termination checks that every process decides within the run's
	// round bound (stabilization + 3n + 5, generous for Lemma 11 under
	// either guard).
	Termination bool
	// DecisionFloor checks that no decision precedes the line-28 floor
	// (n, or 2n-1 under the conservative guard).
	DecisionFloor bool
	// SkeletonStability checks that the skeleton tracker's G^∩r equals
	// the adversary's exact stable skeleton from the stabilization round
	// on.
	SkeletonStability bool
	// InvertKBound replaces the k-bound oracle with its negation: a
	// violation is reported whenever the run SATISFIES the bound. It is
	// deliberately broken — the fire drill used to demonstrate that the
	// fuzzer finds and the shrinker minimizes counterexamples.
	InvertKBound bool
}

// SoundOracles returns the full set of correct oracles.
func SoundOracles() OracleSet {
	return OracleSet{
		PerRound:          true,
		Validity:          true,
		KBound:            true,
		Termination:       true,
		DecisionFloor:     true,
		SkeletonStability: true,
	}
}

// Config drives one oracle-checked execution.
type Config struct {
	// Opts configures Algorithm 1. The zero value is the paper-faithful
	// configuration — note that the published line-28 guard is unsound
	// (see core.Options.ConservativeDecide), so checking with sound
	// oracles and the zero value WILL surface the E10 flaw; set
	// ConservativeDecide for a guard the oracles hold against.
	Opts core.Options
	// Oracles selects the invariants; the zero value checks nothing, so
	// callers normally start from SoundOracles.
	Oracles OracleSet
	// Proposals overrides the initial values; nil means the canonical
	// distinct vector 1..n. Must have length n when set.
	Proposals []int64
	// MaxViolations caps the violations recorded per run; 0 means 16.
	MaxViolations int
}

func (c Config) maxViolations() int {
	if c.MaxViolations <= 0 {
		return 16
	}
	return c.MaxViolations
}

// Failure describes a run that violated at least one oracle, with enough
// context to report, shrink, and replay it.
type Failure struct {
	// Run is the failing schedule.
	Run *adversary.Run
	// Proposals are the initial values used (the canonical 1..n vector).
	Proposals []int64
	// Violations are the recorded oracle failures, in observation order.
	Violations []Violation
	// Outcome is the decision summary of the failing run.
	Outcome *trace.Outcome
	// MinK and Skeleton describe the realized stable skeleton.
	MinK     int
	Skeleton *graph.Digraph
}

// String renders a compact report of the failure.
func (f *Failure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d oracle violation(s) on a run of %d processes (%d prefix rounds, MinK=%d):\n",
		len(f.Violations), f.Run.N(), f.Run.PrefixLen(), f.MinK)
	for _, v := range f.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if f.Outcome != nil {
		b.WriteString(f.Outcome.String())
	}
	return b.String()
}

// MaxRoundsFor returns the round bound a checked run executes under:
// stabilization + 3n + 5. Lemma 11 bounds termination by r_ST + 2n - 1
// under the published guard; the conservative guard delays the
// connectivity floor to 2n-1 and the decide wave by up to n-1 more
// rounds, so 3n with margin covers both.
func MaxRoundsFor(run *adversary.Run) int {
	return run.StabilizationRound() + 3*run.N() + 5
}

// CheckRun executes one schedule under the oracle set and returns the
// Failure, or nil if every enabled oracle held.
func CheckRun(run *adversary.Run, cfg Config) (*Failure, error) {
	spec, obs := NewCheckedSpec(run, cfg)
	out, err := sim.Execute(spec)
	if err != nil {
		return nil, err
	}
	return obs.Finish(out), nil
}

// NewCheckedSpec builds the sim.Spec for one oracle-checked execution of
// run, with the per-round oracle observer installed. Callers that go
// through sim.Execute directly (or sim.StreamSweep, which echoes the
// observer on the streamed outcome) must pass the returned outcome to
// Observer.Finish to run the post-run oracles and collect the verdict.
func NewCheckedSpec(run *adversary.Run, cfg Config) (sim.Spec, *Observer) {
	proposals := cfg.Proposals
	if proposals == nil {
		proposals = sim.SeqProposals(run.N())
	}
	obs := newObserver(run, proposals, cfg)
	return sim.Spec{
		Adversary: run,
		Proposals: proposals,
		Opts:      cfg.Opts,
		MaxRounds: MaxRoundsFor(run),
		Observer:  obs,
	}, obs
}
