package check

import (
	"kset/internal/adversary"
	"kset/internal/graph"
)

// This file is the counterexample shrinker: given a failing schedule it
// greedily applies three reductions — drop a prefix round, remove a
// process (projecting every round graph onto the survivors), drop a
// non-self-loop edge from any round graph — keeping a reduction only if
// the reduced run still violates the SAME oracle as the original
// failure. The passes repeat until a fixpoint, so the result is
// 1-minimal: no single remaining round, process, or edge can be removed
// without losing the violation.

// ShrinkResult is a minimized counterexample.
type ShrinkResult struct {
	// Failure is the minimized failing run (same oracle as the input).
	Failure *Failure
	// Oracle is the preserved failure class.
	Oracle string
	// Executions is the number of candidate runs executed while
	// shrinking.
	Executions int
}

// Shrink minimizes a failure under the given check configuration,
// executing at most maxExecutions candidate runs (0 means 10000). The
// input failure itself is returned unshrunk if its class cannot be
// reproduced (e.g. the budget is 0) — Shrink never loses a
// counterexample, it only tightens one.
func Shrink(f *Failure, cfg Config, maxExecutions int) (*ShrinkResult, error) {
	if len(f.Violations) == 0 {
		return &ShrinkResult{Failure: f}, nil
	}
	budget := maxExecutions
	if budget <= 0 {
		budget = 10000
	}
	s := &shrinker{cfg: cfg, oracle: f.Violations[0].Oracle, budget: budget}

	cur := f
	for {
		next, err := s.pass(cur)
		if err != nil {
			return nil, err
		}
		if next == nil {
			break
		}
		cur = next
	}
	return &ShrinkResult{Failure: cur, Oracle: s.oracle, Executions: s.used}, nil
}

type shrinker struct {
	cfg    Config
	oracle string
	budget int
	used   int
}

// try executes a candidate and returns its Failure if it still violates
// the target oracle (and budget remains), else nil. A configured
// proposal override is dropped once process removal changes n (the
// canonical 1..n vector takes over — any crafted-proposal violation
// that depends on specific values simply stops shrinking across n).
func (s *shrinker) try(run *adversary.Run) (*Failure, error) {
	if s.used >= s.budget {
		return nil, nil
	}
	s.used++
	cfg := s.cfg
	if cfg.Proposals != nil && len(cfg.Proposals) != run.N() {
		cfg.Proposals = nil
	}
	fail, err := CheckRun(run, cfg)
	if err != nil || fail == nil {
		return nil, err
	}
	for _, v := range fail.Violations {
		if v.Oracle == s.oracle {
			return fail, nil
		}
	}
	return nil, nil
}

// pass applies each reduction once and returns the first improvement,
// or nil at a fixpoint.
func (s *shrinker) pass(cur *Failure) (*Failure, error) {
	run := cur.Run

	// Reduction 1: drop a prefix round (later rounds first, so transient
	// tails vanish before load-bearing early rounds are probed).
	prefix, stable := run.CloneGraphs()
	for i := len(prefix) - 1; i >= 0; i-- {
		shorter := make([]*graph.Digraph, 0, len(prefix)-1)
		shorter = append(shorter, prefix[:i]...)
		shorter = append(shorter, prefix[i+1:]...)
		if fail, err := s.try(adversary.NewRun(shorter, stable)); fail != nil || err != nil {
			return fail, err
		}
	}

	// Reduction 2: remove a process.
	for v := run.N() - 1; v >= 0 && run.N() > 1; v-- {
		if fail, err := s.try(run.ProjectOut(v)); fail != nil || err != nil {
			return fail, err
		}
	}

	// Reduction 3: drop a non-self-loop edge from any round graph
	// (stable graph first: it shapes every round from stabilization on).
	graphs := append([]*graph.Digraph{stable}, prefix...)
	for _, g := range graphs {
		for _, e := range g.Edges() {
			if e.From == e.To {
				continue
			}
			g.RemoveEdge(e.From, e.To)
			fail, err := s.try(adversary.NewRun(prefix, stable))
			if fail != nil || err != nil {
				return fail, err
			}
			g.AddEdge(e.From, e.To)
		}
	}
	return nil, nil
}
