package check

import (
	"fmt"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/rounds"
	"kset/internal/sim"
	"kset/internal/skeleton"
)

// Observer evaluates the per-round oracles on the executor's observer
// path and the whole-trace oracles in Finish. One Observer checks one
// run; it reads live process state through the zero-copy core views
// (PTView, ApproxView) so the checked run allocates no more per round
// than an unchecked one does in core.
type Observer struct {
	run       *adversary.Run
	cfg       Config
	proposals []int64
	propSet   map[int64]bool
	tracker   *skeleton.Tracker
	stab      int
	stable    *graph.Digraph // exact G^∩∞ of the run
	floor     int            // line-28 decision floor under cfg.Opts
	viols     []Violation

	prev []decisionSnap

	// Reverse-reachability scratch for the prune oracle.
	seen  graph.NodeSet
	stack []int
}

// decisionSnap remembers a process's decision state after the previous
// round, for the irrevocability oracle.
type decisionSnap struct {
	decided bool
	value   int64
	round   int
}

var _ rounds.Observer = (*Observer)(nil)

func newObserver(run *adversary.Run, proposals []int64, cfg Config) *Observer {
	n := run.N()
	propSet := make(map[int64]bool, len(proposals))
	for _, v := range proposals {
		propSet[v] = true
	}
	// The decision floor is core's to define (n published, 2n-1
	// conservative); read it off a probe process so the oracle can
	// never drift from the algorithm.
	probe := core.NewWithOptions(0, cfg.Opts)
	probe.Init(0, n)
	return &Observer{
		run:       run,
		cfg:       cfg,
		proposals: proposals,
		propSet:   propSet,
		tracker:   skeleton.NewTracker(n, false),
		stab:      run.StabilizationRound(),
		stable:    run.StableSkeleton(),
		floor:     probe.DecisionFloor(),
		prev:      make([]decisionSnap, n),
		seen:      graph.NewNodeSet(n),
	}
}

// Violations returns the oracle failures recorded so far.
func (o *Observer) Violations() []Violation { return o.viols }

func (o *Observer) record(oracle string, round, process int, format string, args ...any) {
	if len(o.viols) >= o.cfg.maxViolations() {
		return
	}
	o.viols = append(o.viols, Violation{
		Oracle:  oracle,
		Round:   round,
		Process: process,
		Detail:  fmt.Sprintf(format, args...),
	})
}

// OnRound implements rounds.Observer: it folds the round graph into the
// oracle's own skeleton tracker and evaluates the per-round oracles on
// every Algorithm 1 process.
func (o *Observer) OnRound(r int, g *graph.Digraph, procs []rounds.Algorithm) {
	o.tracker.Observe(r, g)

	if o.cfg.Oracles.SkeletonStability && r == o.stab {
		if !o.tracker.Skeleton().Equal(o.stable) {
			o.record("skeleton-stability", r, -1,
				"tracker skeleton %v != stable skeleton %v at stabilization round",
				o.tracker.Skeleton(), o.stable)
		}
	}

	if !o.cfg.Oracles.PerRound || len(o.viols) >= o.cfg.maxViolations() {
		return
	}
	for i, a := range procs {
		cp, ok := a.(*core.Process)
		if !ok {
			continue // per-round oracles are Algorithm-1-specific
		}
		o.checkProcess(r, i, cp)
	}
}

// checkProcess evaluates the per-round structural oracles on one
// process's live state.
func (o *Observer) checkProcess(r, i int, cp *core.Process) {
	gp := cp.ApproxView()
	pt := cp.PTView()
	self := cp.Self()
	purge := cp.PurgeWindow()

	// Line 15: p itself is always part of its approximation graph.
	if !gp.HasNode(self) {
		o.record("self-present", r, i, "p%d absent from its own Gp", self+1)
	}

	// Label structure and accuracy (Lemma 3/4): every edge label lies in
	// the purge window (r - purge, r]; an edge labeled l existed in the
	// real round-l communication graph; and the label-r edges are exactly
	// the line-17 edges (q -r-> p) for timely senders q.
	gp.ForEachEdge(func(u, v, l int) {
		switch {
		case l < 1 || l > r:
			o.record("label-range", r, i, "edge p%d-%d->p%d outside (0, %d]", u+1, l, v+1, r)
		case l <= r-purge:
			o.record("purge", r, i, "stale edge p%d-%d->p%d survived the purge window %d", u+1, l, v+1, purge)
		case l == r && (v != self || !pt.Has(u)):
			o.record("fresh-label", r, i, "label-%d edge p%d->p%d is not a line-17 PT edge", r, u+1, v+1)
		}
		if !o.run.Graph(l).HasEdge(u, v) {
			o.record("edge-accuracy", r, i, "edge p%d-%d->p%d never existed in round %d", u+1, l, v+1, l)
		}
	})
	pt.ForEach(func(q int) {
		if gp.Label(q, self) != r {
			o.record("pt-edge", r, i, "timely sender p%d lacks the label-%d edge into p%d", q+1, r, self+1)
		}
	})

	// Line 25: every node of Gp reaches p.
	o.checkPrune(r, i, gp, self)

	// Line 9: PTp equals p's in-neighborhood in the round-r skeleton.
	if !o.tracker.PT(self).Equal(pt) {
		o.record("pt-skeleton", r, i, "PT %v != skeleton in-neighborhood %v", pt, o.tracker.PT(self))
	}

	// Line 27 only ever adopts received estimates, so xp is always some
	// process's proposal.
	if !o.propSet[cp.Estimate()] {
		o.record("estimate-validity", r, i, "estimate %d is no process's proposal", cp.Estimate())
	}

	// Decisions are irrevocable: value and round never change.
	if o.prev[i].decided {
		if !cp.Decided() {
			o.record("irrevocability", r, i, "decision revoked")
		} else if v, dr := cp.Decision(); v != o.prev[i].value || dr != o.prev[i].round {
			o.record("irrevocability", r, i, "decision changed from %d@%d to %d@%d",
				o.prev[i].value, o.prev[i].round, v, dr)
		}
	}
	snap := decisionSnap{decided: cp.Decided()}
	if snap.decided {
		snap.value, snap.round = cp.Decision()
	}
	o.prev[i] = snap
}

// checkPrune verifies the line-25 invariant: every present node of Gp
// reaches self. It runs a reverse BFS from self over the labeled graph
// using the observer's scratch, so steady-state checks allocate nothing.
func (o *Observer) checkPrune(r, i int, gp *graph.Labeled, self int) {
	o.seen.Clear()
	o.stack = o.stack[:0]
	if gp.HasNode(self) {
		o.seen.Add(self)
		o.stack = append(o.stack, self)
	}
	for len(o.stack) > 0 {
		u := o.stack[len(o.stack)-1]
		o.stack = o.stack[:len(o.stack)-1]
		gp.ForEachNode(func(w int) {
			if !o.seen.Has(w) && gp.HasEdge(w, u) {
				o.seen.Add(w)
				o.stack = append(o.stack, w)
			}
		})
	}
	gp.ForEachNode(func(w int) {
		if !o.seen.Has(w) {
			o.record("prune", r, i, "node p%d cannot reach p%d but survived line 25", w+1, self+1)
		}
	})
}

// Finish evaluates the whole-trace oracles on the finished run's outcome
// and returns the Failure, or nil if every enabled oracle held. It must
// be called exactly once, after the execution that used this observer.
func (o *Observer) Finish(out *sim.Outcome) *Failure {
	ocl := o.cfg.Oracles
	// Termination, validity, and the k-bound are the algorithm family's
	// own whole-run oracles now (internal/algo); the checked spec runs
	// the registered kset family, so CheckAlgorithm reproduces the
	// historical oracle strings bit for bit. The flags below gate which
	// of the family's verdicts this observer records.
	for _, v := range out.CheckAlgorithm() {
		switch v.Oracle {
		case "termination":
			if !ocl.Termination {
				continue
			}
		case "validity":
			if !ocl.Validity {
				continue
			}
		case "k-bound", "agreement":
			if !ocl.KBound {
				continue
			}
		}
		o.record(v.Oracle, 0, -1, "%s", v.Detail)
	}
	distinct := len(out.DistinctDecisions())
	if ocl.InvertKBound && distinct <= out.MinK {
		o.record("inverted-k-bound", 0, -1,
			"deliberately broken oracle: %d distinct decisions within MinK=%d", distinct, out.MinK)
	}
	if ocl.DecisionFloor {
		if err := out.CheckDecisionFloor(o.floor); err != nil {
			o.record("decision-floor", 0, -1, "%v", err)
		}
	}
	if len(o.viols) == 0 {
		return nil
	}
	oc := out.Outcome
	return &Failure{
		Run:        o.run,
		Proposals:  o.proposals,
		Violations: o.viols,
		Outcome:    &oc,
		MinK:       out.MinK,
		Skeleton:   out.Skeleton,
	}
}
