package check

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kset/internal/graph"
	"kset/internal/runfile"
)

// WriteCounterexample exports a failure as replayable artifacts in dir:
//
//	<name>.ksr — the schedule as a runfile (replay with
//	             `skeleton-sim -replay <name>.ksr` or runfile.ReadFile)
//	<name>.dot — Graphviz sources: one digraph per round up to
//	             stabilization, plus the stable skeleton
//	<name>.txt — the violation report, outcome table, and skeleton
//
// It returns the written paths. The directory is created if needed.
func WriteCounterexample(dir, name string, f *Failure) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	ksr := filepath.Join(dir, name+".ksr")
	if err := runfile.WriteFile(ksr, f.Run); err != nil {
		return nil, err
	}

	var dot strings.Builder
	for r := 1; r <= f.Run.StabilizationRound(); r++ {
		dot.WriteString(graph.DOT(f.Run.Graph(r), fmt.Sprintf("round_%d", r), true))
	}
	if f.Skeleton != nil {
		dot.WriteString(graph.DOT(f.Skeleton, "stable_skeleton", true))
	}
	dotPath := filepath.Join(dir, name+".dot")
	if err := os.WriteFile(dotPath, []byte(dot.String()), 0o644); err != nil {
		return nil, err
	}

	var txt strings.Builder
	txt.WriteString(f.String())
	if f.Skeleton != nil {
		txt.WriteString("stable skeleton:\n")
		txt.WriteString(graph.ASCII(f.Skeleton))
	}
	fmt.Fprintf(&txt, "replay: go run ./cmd/skeleton-sim -replay %s\n", ksr)
	txtPath := filepath.Join(dir, name+".txt")
	if err := os.WriteFile(txtPath, []byte(txt.String()), 0o644); err != nil {
		return nil, err
	}
	return []string{ksr, dotPath, txtPath}, nil
}
