package check

import (
	"fmt"
	"math/bits"

	"kset/internal/adversary"
	"kset/internal/graph"
)

// This file is the exhaustive explorer. A configuration of a tiny
// instance is a pair (schedule, proposal order): an eventually-constant
// schedule (G¹, ..., G^D) of round graphs with G^D repeated forever —
// 2^(n(n-1)) choices per round, since self-loops are mandatory and
// everything else is free — together with one of the n! orders in which
// the distinct proposals 1..n are assigned to processes. Proposal order
// matters: Algorithm 1 adopts minima (line 27), so its trajectory is NOT
// invariant under renaming values, and a violation can exist for one
// assignment but not another (the E10 witness needs a crafted vector).
//
// The explorer covers this full 2^(n(n-1)·D)·n! configuration space but
// executes only one representative per isomorphism class. Renaming the
// processes by π maps Run(S, P) to the identical execution
// Run(π(S), P∘π⁻¹), so every configuration is isomorphic to one whose
// schedule is the lex-least of its orbit (lex-leader canonicalization,
// enforced by pruning the DFS: a permutation that strictly reduces some
// prefix of the sequence kills the whole subtree, one that fixes it
// stays "tied" and keeps constraining deeper levels). At a canonical
// schedule C the residual redundancy is exactly its automorphism group —
// Run(C, P) ≅ Run(C, P∘a) for a ∈ Aut(C), the permutations still tied at
// the leaf — so one proposal vector per right coset of Aut(C) remains.
// By orbit–stabilizer the executions sum to exactly 2^(n(n-1)·D): the
// symmetry reduction saves a factor of n! over the configuration space,
// never misses a violation, and never checks the same run twice.

// ExploreConfig describes one exhaustive exploration.
type ExploreConfig struct {
	// N is the number of processes; 1 <= N <= 4 (the per-round graph
	// count is 2^(n(n-1)): 64 for n=3, 4096 for n=4).
	N int
	// Depth is the number of enumerated round graphs; the Depth-th graph
	// repeats forever. Must satisfy 2^(N(N-1)·Depth) <= 2^26.
	Depth int
	// Check configures the per-run oracle evaluation. Its Proposals
	// field must be nil: the explorer quantifies over proposal orders.
	Check Config
	// KeepFailures caps the retained failing runs; 0 means 1.
	KeepFailures int
}

// ExploreReport summarizes an exhaustive exploration.
type ExploreReport struct {
	// Configurations is the size of the unreduced space:
	// schedule sequences × proposal orders.
	Configurations uint64
	// Sequences is the number of schedule sequences, 2^(n(n-1)·Depth).
	Sequences uint64
	// Canonical is the number of lex-least schedule sequences.
	Canonical uint64
	// Executions is the number of oracle-checked runs: one per canonical
	// schedule and proposal-order coset. Always equals Sequences — the
	// explorer proves it by counting.
	Executions uint64
	// FailedRuns is the number of executions with >= 1 oracle violation.
	FailedRuns int
	// Failures holds up to KeepFailures failing runs.
	Failures []*Failure
}

// Reduction returns the symmetry reduction factor
// Configurations/Executions (n! when the count comes out right).
func (r *ExploreReport) Reduction() float64 {
	if r.Executions == 0 {
		return 0
	}
	return float64(r.Configurations) / float64(r.Executions)
}

// maxExploreBits bounds the unreduced schedule space to 2^26 sequences
// (n=3 depth 4, or n=4 depth 2).
const maxExploreBits = 26

// Explore runs an exhaustive symmetry-reduced exploration. The first
// execution error aborts it (oracle violations do not: they are
// collected into the report).
func Explore(cfg ExploreConfig) (*ExploreReport, error) {
	n := cfg.N
	if n < 1 || n > 4 {
		return nil, fmt.Errorf("check: Explore needs 1 <= n <= 4, got %d", n)
	}
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("check: Explore needs depth >= 1, got %d", cfg.Depth)
	}
	if cfg.Check.Proposals != nil {
		return nil, fmt.Errorf("check: Explore quantifies over proposal orders; Config.Proposals must be nil")
	}
	m := n * (n - 1) // free edge slots per round graph
	if m*cfg.Depth > maxExploreBits {
		return nil, fmt.Errorf("check: search space 2^%d sequences exceeds 2^%d; lower -depth or -n",
			m*cfg.Depth, maxExploreBits)
	}
	keep := cfg.KeepFailures
	if keep <= 0 {
		keep = 1
	}

	e := &explorer{
		n:      n,
		m:      m,
		depth:  cfg.Depth,
		cfg:    cfg.Check,
		keep:   keep,
		perms:  schedulePerms(n),
		orders: proposalOrders(n),
		graphs: make([]*graph.Digraph, 1<<m),
		seq:    make([]uint32, cfg.Depth),
		report: &ExploreReport{Sequences: 1 << (m * cfg.Depth)},
	}
	e.report.Configurations = e.report.Sequences * uint64(len(e.orders))

	if err := e.dfs(0, e.perms); err != nil {
		return nil, err
	}
	return e.report, nil
}

type explorer struct {
	n, m, depth int
	cfg         Config
	keep        int
	perms       []schedulePerm   // every non-identity permutation
	orders      [][]int64        // all n! proposal vectors (perms of 1..n)
	graphs      []*graph.Digraph // lazily built graph per edge mask
	seq         []uint32         // current DFS path of edge masks
	report      *ExploreReport
}

// schedulePerm is one non-identity process permutation with its induced
// map on edge-bit indices.
type schedulePerm struct {
	proc []int // proc[i] = π(i)
	bits []int // bit of (u, v) -> bit of (π(u), π(v))
}

// pairIndex assigns one bit per ordered pair u != v, in row-major order.
func pairIndex(n int) [][]int {
	pairs := make([][]int, n)
	idx := 0
	for u := 0; u < n; u++ {
		pairs[u] = make([]int, n)
		for v := 0; v < n; v++ {
			pairs[u][v] = -1
			if u != v {
				pairs[u][v] = idx
				idx++
			}
		}
	}
	return pairs
}

// allPerms returns every permutation of 0..n-1.
func allPerms(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

// schedulePerms returns every non-identity permutation of 0..n-1 with
// its edge-bit map.
func schedulePerms(n int) []schedulePerm {
	pairs := pairIndex(n)
	var perms []schedulePerm
	for _, p := range allPerms(n) {
		identity := true
		for i, pi := range p {
			if pi != i {
				identity = false
				break
			}
		}
		if identity {
			continue
		}
		pm := make([]int, n*(n-1))
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v {
					pm[pairs[u][v]] = pairs[p[u]][p[v]]
				}
			}
		}
		perms = append(perms, schedulePerm{proc: p, bits: pm})
	}
	return perms
}

// proposalOrders returns all n! assignments of the distinct proposals
// 1..n to processes.
func proposalOrders(n int) [][]int64 {
	perms := allPerms(n)
	out := make([][]int64, len(perms))
	for i, p := range perms {
		vec := make([]int64, n)
		for j, pj := range p {
			vec[j] = int64(pj + 1)
		}
		out[i] = vec
	}
	return out
}

// permuteMask applies an edge-bit map to a graph mask.
func permuteMask(mask uint32, pm []int) uint32 {
	var out uint32
	for w := mask; w != 0; {
		b := bits.TrailingZeros32(w)
		w &^= 1 << b
		out |= 1 << pm[b]
	}
	return out
}

// graphFor materializes (and caches) the digraph of an edge mask: all n
// nodes, all self-loops, plus the mask's off-diagonal edges.
func (e *explorer) graphFor(mask uint32) *graph.Digraph {
	if g := e.graphs[mask]; g != nil {
		return g
	}
	g := graph.NewFullDigraph(e.n)
	g.AddSelfLoops()
	for w := mask; w != 0; {
		b := bits.TrailingZeros32(w)
		w &^= 1 << b
		// Invert the row-major pair index: bit b is the b-th ordered
		// pair (u, v), u != v.
		u := b / (e.n - 1)
		r := b % (e.n - 1)
		v := r
		if r >= u {
			v = r + 1
		}
		g.AddEdge(u, v)
	}
	e.graphs[mask] = g
	return g
}

// dfs extends the schedule at the given level with every edge mask that
// survives lex-leader pruning under the still-tied permutations.
func (e *explorer) dfs(level int, tied []schedulePerm) error {
	for mask := uint32(0); mask < 1<<e.m; mask++ {
		var next []schedulePerm
		canonical := true
		for _, sp := range tied {
			switch p := permuteMask(mask, sp.bits); {
			case p < mask:
				canonical = false
			case p == mask:
				next = append(next, sp)
			}
			if !canonical {
				break
			}
		}
		if !canonical {
			continue
		}
		e.seq[level] = mask
		if level < e.depth-1 {
			if err := e.dfs(level+1, next); err != nil {
				return err
			}
			continue
		}
		if err := e.checkLeaf(next); err != nil {
			return err
		}
	}
	return nil
}

// checkLeaf executes and oracle-checks the canonical schedule currently
// on the DFS path, once per proposal-order coset of its automorphism
// group (the permutations still tied at the leaf, plus the identity).
func (e *explorer) checkLeaf(auts []schedulePerm) error {
	e.report.Canonical++
	prefix := make([]*graph.Digraph, e.depth-1)
	for i := range prefix {
		prefix[i] = e.graphFor(e.seq[i])
	}
	run := adversary.NewRun(prefix, e.graphFor(e.seq[e.depth-1]))

	for _, order := range e.orders {
		// Execute only the lex-least vector of each class {order∘a}.
		least := true
		for _, a := range auts {
			if composeLess(order, a.proc) {
				least = false
				break
			}
		}
		if !least {
			continue
		}
		e.report.Executions++
		cfg := e.cfg
		cfg.Proposals = order
		fail, err := CheckRun(run, cfg)
		if err != nil {
			return err
		}
		if fail != nil {
			e.report.FailedRuns++
			if len(e.report.Failures) < e.keep {
				e.report.Failures = append(e.report.Failures, fail)
			}
		}
	}
	return nil
}

// composeLess reports whether order∘a is lexicographically smaller than
// order, i.e. the vector q with q[i] = order[a[i]] precedes order.
func composeLess(order []int64, a []int) bool {
	for i := range order {
		if q := order[a[i]]; q != order[i] {
			return q < order[i]
		}
	}
	return false
}
