package check

import (
	"testing"

	"kset/internal/core"
)

// TestFuzzCleanCampaign runs a deterministic mixed-strategy campaign
// under the repaired guard: no sound oracle may fire.
func TestFuzzCleanCampaign(t *testing.T) {
	budget := 2000
	if testing.Short() {
		budget = 200
	}
	rep, err := Fuzz(FuzzConfig{N: 4, Budget: budget, Seed: 1, Check: conservative()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != budget {
		t.Fatalf("executed %d of %d runs", rep.Runs, budget)
	}
	if rep.FailedRuns != 0 {
		t.Fatalf("%d failing runs, first:\n%s", rep.FailedRuns, rep.Failures[0])
	}
}

// TestFuzzDeterministicAcrossWorkers pins the campaign's determinism
// contract: identical seeds give identical failure counts (and identical
// first failing schedules) for any worker count.
func TestFuzzDeterministicAcrossWorkers(t *testing.T) {
	cfg := FuzzConfig{
		N:      4,
		Budget: 500,
		Seed:   42,
		Check: Config{
			Opts:    core.Options{ConservativeDecide: true},
			Oracles: OracleSet{InvertKBound: true}, // fires on every run
		},
		KeepFailures: 1,
	}
	base, err := Fuzz(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.FailedRuns != cfg.Budget {
		t.Fatalf("inverted oracle fired on %d of %d runs", base.FailedRuns, cfg.Budget)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		rep, err := Fuzz(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FailedRuns != base.FailedRuns {
			t.Fatalf("workers=%d: %d failed runs, want %d", workers, rep.FailedRuns, base.FailedRuns)
		}
		if got, want := rep.Failures[0].Run, base.Failures[0].Run; got.N() != want.N() ||
			got.PrefixLen() != want.PrefixLen() || !got.Base().Equal(want.Base()) {
			t.Fatalf("workers=%d: first failing schedule differs from sequential run", workers)
		}
	}
}

// TestFuzzFindsPlantedFlaw seeds the campaign with the paper-faithful
// guard and lets the fuzzer search for the E10 unsoundness at n=4: the
// adversarial schedule space contains it, and the fuzzer must hit it
// within a modest deterministic budget.
func TestFuzzFindsPlantedFlaw(t *testing.T) {
	budget := 30000
	if testing.Short() {
		t.Skip("needs a real budget")
	}
	rep, err := Fuzz(FuzzConfig{
		N:      4,
		Budget: budget,
		Seed:   1,
		Check:  Config{Opts: core.Options{}, Oracles: SoundOracles()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedRuns == 0 {
		t.Skipf("no violation in %d runs at seed 1 — widen the budget to re-probe", budget)
	}
	fail := rep.Failures[0]
	t.Logf("found %d failing runs; first:\n%s", rep.FailedRuns, fail)

	res, err := Shrink(fail, Config{Opts: core.Options{}, Oracles: SoundOracles()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	min := res.Failure
	t.Logf("shrunk (%d executions) to n=%d prefix=%d:\n%s",
		res.Executions, min.Run.N(), min.Run.PrefixLen(), min)
	if min.Run.N() > fail.Run.N() || min.Run.PrefixLen() > fail.Run.PrefixLen() {
		t.Fatal("shrinking made the counterexample bigger")
	}
}

// TestGenRunDeterministic pins that cell schedules are pure functions of
// (seed, cell).
func TestGenRunDeterministic(t *testing.T) {
	for cell := 0; cell < 50; cell++ {
		a := GenRun(4, StrategyMixed, 9, cell)
		b := GenRun(4, StrategyMixed, 9, cell)
		if a.N() != b.N() || a.PrefixLen() != b.PrefixLen() || !a.Base().Equal(b.Base()) {
			t.Fatalf("cell %d: schedules differ across regenerations", cell)
		}
		for r := 1; r <= a.PrefixLen(); r++ {
			if !a.Graph(r).Equal(b.Graph(r)) {
				t.Fatalf("cell %d round %d differs", cell, r)
			}
		}
	}
}
